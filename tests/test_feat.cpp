#include "feat/normalize.h"
#include "feat/tabular.h"

#include <gtest/gtest.h>

#include <cmath>

#include "verilog/parser.h"

namespace noodle::feat {
namespace {

TEST(Tabular, DimensionAndNames) {
  EXPECT_EQ(tabular_feature_names().size(), kTabularFeatureDim);
  std::set<std::string> unique(tabular_feature_names().begin(),
                               tabular_feature_names().end());
  EXPECT_EQ(unique.size(), kTabularFeatureDim);
}

/// Hand-checkable module: 2 inputs (1 + 8 bits), 1 output, 1 seq always,
/// 1 if, 1 case with 3 items, 1 wide eq-const, 1 assign.
const char* kKnown =
    "module k (input clk, input [7:0] d, output reg [7:0] q, output f);\n"
    "  wire hit;\n"
    "  assign hit = d == 8'hA5;\n"
    "  assign f = hit;\n"
    "  always @(posedge clk)\n"
    "    if (hit)\n"
    "      case (d[1:0])\n"
    "        2'd0: q <= 8'd0;\n"
    "        2'd1: q <= d;\n"
    "        default: q <= q + 8'd1;\n"
    "      endcase\n"
    "endmodule\n";

class KnownModule : public ::testing::Test {
 protected:
  void SetUp() override {
    module_ = verilog::parse_module(kKnown);
    features_ = tabular_features(module_);
    const auto& names = tabular_feature_names();
    for (std::size_t i = 0; i < names.size(); ++i) index_[names[i]] = i;
  }
  double at(const std::string& name) const { return features_.at(index_.at(name)); }

  verilog::Module module_;
  std::vector<double> features_;
  std::map<std::string, std::size_t> index_;
};

TEST_F(KnownModule, InterfaceCounts) {
  EXPECT_DOUBLE_EQ(at("inputs"), 2.0);
  EXPECT_DOUBLE_EQ(at("outputs"), 2.0);
  EXPECT_NEAR(at("log_input_bits"), std::log1p(9.0), 1e-12);
  EXPECT_NEAR(at("log_output_bits"), std::log1p(9.0), 1e-12);
}

TEST_F(KnownModule, ProcessCounts) {
  EXPECT_DOUBLE_EQ(at("seq_always"), 1.0);
  EXPECT_DOUBLE_EQ(at("comb_always"), 0.0);
  EXPECT_DOUBLE_EQ(at("posedges"), 1.0);
  EXPECT_DOUBLE_EQ(at("initial_blocks"), 0.0);
  EXPECT_DOUBLE_EQ(at("instances"), 0.0);
}

TEST_F(KnownModule, BranchCounts) {
  EXPECT_DOUBLE_EQ(at("if_count"), 1.0);
  EXPECT_DOUBLE_EQ(at("case_count"), 1.0);
  EXPECT_NEAR(at("log_case_items"), std::log1p(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(at("max_branch_depth"), 2.0);  // if > case nesting
  EXPECT_DOUBLE_EQ(at("branches_per_always"), 2.0);
}

TEST_F(KnownModule, ComparatorCounts) {
  EXPECT_DOUBLE_EQ(at("eq_ops"), 1.0);
  EXPECT_DOUBLE_EQ(at("eq_const_ops"), 1.0);
  EXPECT_DOUBLE_EQ(at("wide_eq_const"), 1.0);  // 8-bit constant
  EXPECT_DOUBLE_EQ(at("rel_ops"), 0.0);
}

TEST_F(KnownModule, AssignmentCounts) {
  EXPECT_NEAR(at("log_assigns"), std::log1p(2.0), 1e-12);
  EXPECT_NEAR(at("log_nonblocking"), std::log1p(3.0), 1e-12);
  EXPECT_NEAR(at("log_blocking"), std::log1p(0.0), 1e-12);
}

TEST(Tabular, EmptyModuleAllFinite) {
  const verilog::Module m = verilog::parse_module("module e; endmodule");
  const auto f = tabular_features(m);
  ASSERT_EQ(f.size(), kTabularFeatureDim);
  for (const double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(Tabular, WideRegDetected) {
  const verilog::Module m = verilog::parse_module(
      "module w;\n  reg [31:0] big;\n  reg [3:0] small;\nendmodule");
  const auto f = tabular_features(m);
  const auto& names = tabular_feature_names();
  const auto idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "wide_regs") - names.begin());
  EXPECT_DOUBLE_EQ(f[idx], 1.0);
}

// ---------------------------------------------------------------------------
// Normalizers
// ---------------------------------------------------------------------------

TEST(Standardizer, TransformsToZeroMeanUnitVar) {
  Standardizer s;
  s.fit({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  EXPECT_TRUE(s.fitted());
  const auto mid = s.transform(std::vector<double>{2.0, 20.0});
  EXPECT_NEAR(mid[0], 0.0, 1e-12);
  EXPECT_NEAR(mid[1], 0.0, 1e-12);
  const auto high = s.transform(std::vector<double>{3.0, 30.0});
  EXPECT_NEAR(high[0], 1.0, 1e-12);  // (3-2)/1
}

TEST(Standardizer, InverseRoundTrips) {
  Standardizer s;
  s.fit({{1.0, -4.0}, {5.0, 2.0}, {9.0, 0.0}});
  const std::vector<double> original = {3.3, -1.1};
  const auto back = s.inverse(s.transform(original));
  EXPECT_NEAR(back[0], original[0], 1e-9);
  EXPECT_NEAR(back[1], original[1], 1e-9);
}

TEST(Standardizer, ConstantDimensionMapsToZero) {
  Standardizer s;
  s.fit({{7.0, 1.0}, {7.0, 2.0}});
  const auto t = s.transform(std::vector<double>{7.0, 1.5});
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  // Inverse of a constant dimension restores the mean.
  const auto back = s.inverse(t);
  EXPECT_DOUBLE_EQ(back[0], 7.0);
}

TEST(Standardizer, RejectsBadInput) {
  Standardizer s;
  EXPECT_THROW(s.fit({}), std::invalid_argument);
  EXPECT_THROW(s.fit({{1.0}, {1.0, 2.0}}), std::invalid_argument);
  s.fit({{1.0}, {2.0}});
  EXPECT_THROW(s.transform(std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

TEST(Standardizer, TransformAllMatchesSingle) {
  Standardizer s;
  const std::vector<std::vector<double>> rows = {{1.0}, {2.0}, {4.0}};
  s.fit(rows);
  const auto all = s.transform_all(rows);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(all[i], s.transform(rows[i]));
  }
}

TEST(MinMaxScaler, MapsToUnitInterval) {
  MinMaxScaler s;
  s.fit({{0.0, -10.0}, {10.0, 10.0}});
  const auto t = s.transform(std::vector<double>{5.0, 0.0});
  EXPECT_NEAR(t[0], 0.5, 1e-12);
  EXPECT_NEAR(t[1], 0.5, 1e-12);
}

TEST(MinMaxScaler, ClampsOutOfRange) {
  MinMaxScaler s;
  s.fit({{0.0}, {1.0}});
  EXPECT_DOUBLE_EQ(s.transform(std::vector<double>{5.0})[0], 1.0);
  EXPECT_DOUBLE_EQ(s.transform(std::vector<double>{-5.0})[0], 0.0);
}

TEST(MinMaxScaler, ConstantDimensionMapsToHalf) {
  MinMaxScaler s;
  s.fit({{3.0}, {3.0}});
  EXPECT_DOUBLE_EQ(s.transform(std::vector<double>{3.0})[0], 0.5);
}

}  // namespace
}  // namespace noodle::feat
