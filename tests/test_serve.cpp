// Tests for the serving subsystem: binary-IO primitives, the snapshot
// archive format, NoodleDetector save/load round-trip bit-identity, the
// archive's corruption defenses, and DetectionService batching/caching
// returning verdicts identical to direct sequential scans.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <vector>

#include "core/detector.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "util/binary_io.h"

namespace noodle {
namespace {

// --- binary-IO primitives --------------------------------------------------

TEST(BinaryIo, RoundTripsScalarsBitExactly) {
  std::ostringstream os;
  util::write_u8(os, 0xab);
  util::write_u32(os, 0xdeadbeefu);
  util::write_u64(os, 0x0123456789abcdefULL);
  util::write_f64(os, -0.1);
  util::write_f64(os, 0.0);
  util::write_string(os, "noodle");
  util::write_f64_vector(os, {1.5, -2.25, 1e-300});

  std::istringstream is(os.str());
  EXPECT_EQ(util::read_u8(is), 0xab);
  EXPECT_EQ(util::read_u32(is), 0xdeadbeefu);
  EXPECT_EQ(util::read_u64(is), 0x0123456789abcdefULL);
  EXPECT_EQ(util::read_f64(is), -0.1);
  EXPECT_EQ(util::read_f64(is), 0.0);
  EXPECT_EQ(util::read_string(is), "noodle");
  EXPECT_EQ(util::read_f64_vector(is), (std::vector<double>{1.5, -2.25, 1e-300}));
}

TEST(BinaryIo, TruncatedInputThrows) {
  std::istringstream is("\x01\x02");
  EXPECT_THROW(util::read_u64(is), std::runtime_error);
}

TEST(BinaryIo, AbsurdLengthPrefixThrowsInsteadOfAllocating) {
  std::ostringstream os;
  util::write_u64(os, ~0ULL);  // length prefix claiming 2^64-1 entries
  std::istringstream is(os.str());
  EXPECT_THROW(util::read_f64_vector(is), std::runtime_error);
}

TEST(BinaryIo, Fnv1a64MatchesReferenceVector) {
  // FNV-1a test vectors: empty input -> offset basis; "a" -> published value.
  EXPECT_EQ(util::fnv1a64("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(util::fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
}

// --- snapshot archive framing ----------------------------------------------

TEST(SnapshotArchive, RoundTripsSections) {
  serve::SnapshotWriter writer;
  util::write_string(writer.begin_section("AAAA"), "first");
  util::write_string(writer.begin_section("BBBB"), "second");
  std::ostringstream os;
  writer.write_to(os);

  std::istringstream is(os.str());
  serve::SnapshotReader reader(is);
  EXPECT_EQ(reader.section_count(), 2u);
  EXPECT_TRUE(reader.has_section("AAAA"));
  EXPECT_FALSE(reader.has_section("ZZZZ"));
  // Out-of-order access by tag works.
  EXPECT_EQ(util::read_string(reader.section("BBBB")), "second");
  EXPECT_EQ(util::read_string(reader.section("AAAA")), "first");
  EXPECT_THROW(reader.section("AAAA"), serve::SnapshotError);  // consumed
  EXPECT_THROW(reader.section("ZZZZ"), serve::SnapshotError);  // missing
}

TEST(SnapshotArchive, RejectsBadMagicVersionTruncationAndCorruption) {
  serve::SnapshotWriter writer;
  util::write_string(writer.begin_section("DATA"), std::string(256, 'x'));
  std::ostringstream os;
  writer.write_to(os);
  const std::string bytes = os.str();

  {
    std::istringstream is("not a snapshot at all");
    EXPECT_THROW(serve::SnapshotReader reader(is), serve::SnapshotError);
  }
  {
    std::string wrong_version = bytes;
    wrong_version[8] = static_cast<char>(serve::kSnapshotVersion + 1);
    std::istringstream is(wrong_version);
    EXPECT_THROW(serve::SnapshotReader reader(is), serve::SnapshotError);
  }
  {
    std::istringstream is(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(serve::SnapshotReader reader(is), serve::SnapshotError);
  }
  {
    std::string flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;  // single bit flip mid-payload
    std::istringstream is(flipped);
    EXPECT_THROW(serve::SnapshotReader reader(is), serve::SnapshotError);
  }
  {
    std::istringstream is(bytes);  // pristine bytes still parse
    EXPECT_NO_THROW(serve::SnapshotReader reader(is));
  }
}

// --- detector snapshot round trip -------------------------------------------

std::filesystem::path temp_snapshot_path(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

class DetectorSnapshot : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::DetectorConfig config;
    config.seed = 7;
    config.gan_target_per_class = 30;
    config.gan.epochs = 20;
    config.fusion.train.epochs = 8;
    config.fusion.train.validation_fraction = 0.0;
    detector_ = new core::NoodleDetector(config);

    data::CorpusSpec spec;
    spec.design_count = 72;
    spec.infected_fraction = 0.35;
    spec.seed = 7;
    corpus_ = new std::vector<data::CircuitSample>(data::build_corpus(spec));
    detector_->fit(*corpus_);

    samples_ = new std::vector<data::FeatureSample>();
    for (const auto& circuit : *corpus_) samples_->push_back(data::featurize(circuit));
  }

  static void TearDownTestSuite() {
    delete samples_;
    samples_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
    delete detector_;
    detector_ = nullptr;
  }

  static void expect_identical_report(const core::DetectionReport& a,
                                      const core::DetectionReport& b) {
    // Bit-identical, not approximately equal: serialization must be exact.
    EXPECT_EQ(a.predicted_label, b.predicted_label);
    EXPECT_EQ(a.probability, b.probability);
    EXPECT_EQ(a.p_values, b.p_values);
    EXPECT_EQ(a.region.p, b.region.p);
    EXPECT_EQ(a.region.contains, b.region.contains);
    EXPECT_EQ(a.region.confidence, b.region.confidence);
    EXPECT_EQ(a.region.credibility, b.region.credibility);
    EXPECT_EQ(a.fusion_used, b.fusion_used);
  }

  static core::NoodleDetector* detector_;
  static std::vector<data::CircuitSample>* corpus_;
  static std::vector<data::FeatureSample>* samples_;
};

core::NoodleDetector* DetectorSnapshot::detector_ = nullptr;
std::vector<data::CircuitSample>* DetectorSnapshot::corpus_ = nullptr;
std::vector<data::FeatureSample>* DetectorSnapshot::samples_ = nullptr;

TEST_F(DetectorSnapshot, SaveLoadRoundTripIsBitIdentical) {
  const auto path = temp_snapshot_path("noodle_roundtrip.snap");
  // Saving must work through a const reference (a fitted model is
  // immutable at serving time).
  const core::NoodleDetector& fitted = *detector_;
  fitted.save(path);

  const core::NoodleDetector loaded = core::NoodleDetector::from_snapshot(path);
  EXPECT_TRUE(loaded.fitted());
  EXPECT_EQ(loaded.winning_fusion(), detector_->winning_fusion());
  for (const auto& sample : *samples_) {
    expect_identical_report(loaded.scan_features(sample),
                            detector_->scan_features(sample));
  }
  std::filesystem::remove(path);
}

TEST_F(DetectorSnapshot, RoundTripSurvivesASecondGeneration) {
  // save -> load -> save -> load must stay stable (no drift in the format).
  const auto path1 = temp_snapshot_path("noodle_gen1.snap");
  const auto path2 = temp_snapshot_path("noodle_gen2.snap");
  detector_->save(path1);
  core::NoodleDetector first = core::NoodleDetector::from_snapshot(path1);
  first.save(path2);
  const core::NoodleDetector second = core::NoodleDetector::from_snapshot(path2);
  for (std::size_t i = 0; i < 8 && i < samples_->size(); ++i) {
    expect_identical_report(second.scan_features((*samples_)[i]),
                            detector_->scan_features((*samples_)[i]));
  }
  std::filesystem::remove(path1);
  std::filesystem::remove(path2);
}

TEST_F(DetectorSnapshot, ScanVerilogAfterLoadMatches) {
  const auto path = temp_snapshot_path("noodle_verilog.snap");
  detector_->save(path);
  const core::NoodleDetector loaded = core::NoodleDetector::from_snapshot(path);
  for (std::size_t i = 0; i < 4; ++i) {
    expect_identical_report(loaded.scan_verilog((*corpus_)[i].verilog),
                            detector_->scan_verilog((*corpus_)[i].verilog));
  }
  std::filesystem::remove(path);
}

TEST_F(DetectorSnapshot, CorruptedOrTruncatedSnapshotThrowsAndLeavesDetectorIntact) {
  const auto path = temp_snapshot_path("noodle_corrupt.snap");
  detector_->save(path);
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  }

  const auto write_variant = [&path](const std::string& content) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
  };

  // Truncated to half.
  write_variant(bytes.substr(0, bytes.size() / 2));
  core::NoodleDetector victim;
  EXPECT_THROW(victim.load(path), serve::SnapshotError);
  EXPECT_FALSE(victim.fitted());  // failed load must not half-populate

  // One corrupted byte deep inside the weight payload.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x01;
  write_variant(flipped);
  EXPECT_THROW(victim.load(path), serve::SnapshotError);
  EXPECT_FALSE(victim.fitted());

  // Version bump.
  std::string wrong_version = bytes;
  wrong_version[8] = static_cast<char>(serve::kSnapshotVersion + 7);
  write_variant(wrong_version);
  EXPECT_THROW(victim.load(path), serve::SnapshotError);
  EXPECT_FALSE(victim.fitted());

  std::filesystem::remove(path);
}

TEST_F(DetectorSnapshot, ArchiveVersionTracksTheFeaturesUsed) {
  // The writer stamps the LOWEST version able to represent the payload: a
  // pure-f64 archive is byte-compatible with version 1 (old readers keep
  // loading them), f32 weights need version 2, int8 weights version 3.
  // All three must load here.
  const auto version_byte = [](const std::filesystem::path& path) {
    std::ifstream is(path, std::ios::binary);
    std::string header(12, '\0');
    is.read(header.data(), 12);
    return static_cast<unsigned>(static_cast<unsigned char>(header[8]));
  };

  const auto path = temp_snapshot_path("noodle_versions.snap");
  detector_->save(path, nn::WeightPrecision::F64);
  EXPECT_EQ(version_byte(path), serve::kSnapshotVersionMin);
  const core::NoodleDetector full = core::NoodleDetector::from_snapshot(path);
  for (std::size_t i = 0; i < 4; ++i) {
    expect_identical_report(full.scan_features((*samples_)[i]),
                            detector_->scan_features((*samples_)[i]));
  }

  detector_->save(path, nn::WeightPrecision::F32);
  EXPECT_EQ(version_byte(path), 2u);
  EXPECT_NO_THROW(core::NoodleDetector::from_snapshot(path));

  detector_->save(path, nn::WeightPrecision::I8);
  EXPECT_EQ(version_byte(path), serve::kSnapshotVersion);
  EXPECT_NO_THROW(core::NoodleDetector::from_snapshot(path));
  std::filesystem::remove(path);
}

TEST_F(DetectorSnapshot, MissingFileThrows) {
  core::NoodleDetector victim;
  EXPECT_THROW(victim.load(temp_snapshot_path("noodle_does_not_exist.snap")),
               serve::SnapshotError);
}

TEST(DetectorSnapshotUnfitted, SaveThrowsLogicError) {
  const core::NoodleDetector detector;
  EXPECT_THROW(detector.save(temp_snapshot_path("noodle_unfitted.snap")),
               std::logic_error);
}

// --- DetectionService --------------------------------------------------------

TEST_F(DetectorSnapshot, ServiceMatchesSequentialScansUnderConcurrency) {
  const auto path = temp_snapshot_path("noodle_service.snap");
  detector_->save(path);

  serve::ServiceConfig config;
  config.max_batch = 4;
  config.workers = 2;
  serve::DetectionService service(path, config);
  std::filesystem::remove(path);

  std::vector<std::future<core::DetectionReport>> futures;
  futures.reserve(corpus_->size());
  for (const auto& circuit : *corpus_) futures.push_back(service.submit(circuit.verilog));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_identical_report(futures[i].get(),
                            detector_->scan_verilog((*corpus_)[i].verilog));
  }

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, corpus_->size());
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.scans + stats.cache_hits, stats.requests);
  EXPECT_EQ(stats.parse_failures, 0u);
}

TEST_F(DetectorSnapshot, ServiceCacheHitsDoNotChangeResults) {
  serve::ServiceConfig config;
  config.max_batch = 8;
  core::NoodleDetector loaded;
  {
    const auto path = temp_snapshot_path("noodle_cache.snap");
    detector_->save(path);
    loaded.load(path);
    std::filesystem::remove(path);
  }
  serve::DetectionService service(std::move(loaded), config);

  const std::string& source = (*corpus_)[0].verilog;
  const core::DetectionReport first = service.scan(source);
  const core::DetectionReport again = service.scan(source);
  const core::DetectionReport direct = detector_->scan_verilog(source);
  expect_identical_report(first, direct);
  expect_identical_report(again, direct);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);  // second scan of identical RTL is a hit
  EXPECT_EQ(stats.scans, 1u);
  EXPECT_EQ(service.cache_size(), 1u);
}

TEST_F(DetectorSnapshot, ServiceCacheEvictsAtCapacityAndStaysCorrect) {
  serve::ServiceConfig config;
  config.cache_capacity = 2;
  core::NoodleDetector copy = core::NoodleDetector::from_snapshot([&] {
    const auto path = temp_snapshot_path("noodle_evict.snap");
    detector_->save(path);
    return path;
  }());
  serve::DetectionService service(std::move(copy), config);

  for (std::size_t round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < 4; ++i) {
      expect_identical_report(service.scan((*corpus_)[i].verilog),
                              detector_->scan_verilog((*corpus_)[i].verilog));
    }
  }
  EXPECT_LE(service.cache_size(), 2u);
  std::filesystem::remove(temp_snapshot_path("noodle_evict.snap"));
}

TEST_F(DetectorSnapshot, ServiceIsolatesParseErrorsToTheirOwnFuture) {
  serve::ServiceConfig config;
  config.max_batch = 3;
  core::NoodleDetector copy;
  {
    const auto path = temp_snapshot_path("noodle_parse.snap");
    detector_->save(path);
    copy.load(path);
    std::filesystem::remove(path);
  }
  serve::DetectionService service(std::move(copy), config);

  auto good_before = service.submit((*corpus_)[0].verilog);
  auto bad = service.submit("module broken(");
  auto good_after = service.submit((*corpus_)[1].verilog);

  expect_identical_report(good_before.get(),
                          detector_->scan_verilog((*corpus_)[0].verilog));
  EXPECT_ANY_THROW(bad.get());
  expect_identical_report(good_after.get(),
                          detector_->scan_verilog((*corpus_)[1].verilog));
  service.drain();
  EXPECT_EQ(service.stats().parse_failures, 1u);
}

/// The value of one labelled counter in a metrics snapshot (0 if absent).
std::uint64_t sample_counter(const std::vector<obs::MetricsRegistry::Sample>& samples,
                             const std::string& name, const obs::Labels& labels) {
  for (const auto& sample : samples) {
    if (sample.name == name && sample.labels == labels) return sample.counter;
  }
  return 0;
}

std::uint64_t probe_count(serve::DetectionService& service, const char* outcome) {
  return sample_counter(service.metrics_snapshot(), "noodle_cache_probes_total",
                        {{"outcome", outcome}});
}

TEST_F(DetectorSnapshot, DiskTierServesBitIdenticalVerdictsAcrossRestarts) {
  // End-to-end persistence: service A scans cold and persists the verdict;
  // a brand-new service B (empty in-memory cache, same cache directory,
  // same snapshot) must answer from the disk tier — no model scan — with a
  // report bit-identical to a direct cold scan.
  const auto path = temp_snapshot_path("noodle_disk_tier.snap");
  detector_->save(path);
  const auto cache_dir =
      std::filesystem::temp_directory_path() / "noodle_disk_tier_cache";
  std::filesystem::remove_all(cache_dir);

  serve::ServiceConfig config;
  config.disk_cache.directory = cache_dir;
  const std::string& source = (*corpus_)[0].verilog;

  {
    serve::DetectionService service(path, config);
    ASSERT_NE(service.disk_cache(), nullptr);
    expect_identical_report(service.scan(source),
                            detector_->scan_verilog(source));
    service.disk_cache()->flush();
    EXPECT_EQ(service.disk_cache_stats().stores, 1u);
    EXPECT_EQ(service.stats().disk_hits, 0u);
  }
  {
    serve::DetectionService service(path, config);
    EXPECT_EQ(service.disk_cache_stats().loaded, 1u)
        << "restart scanner did not pick up the persisted record";
    const core::DetectionReport warm = service.scan(source);
    expect_identical_report(warm, detector_->scan_verilog(source));
    EXPECT_FALSE(warm.served_by.empty());

    const serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.disk_hits, 1u);
    EXPECT_EQ(stats.scans, 0u) << "disk tier should have spared the model";
    EXPECT_EQ(probe_count(service, "disk_hit"), 1u);

    // The disk hit promoted the entry: the next identical scan is a memory
    // hit, not a second disk probe.
    service.scan(source);
    EXPECT_EQ(service.stats().cache_hits, 1u);
    EXPECT_EQ(service.stats().disk_hits, 1u);
  }
  std::filesystem::remove(path);
  std::filesystem::remove_all(cache_dir);
}

TEST_F(DetectorSnapshot, DiskTierDisabledServiceBehavesExactlyAsBefore) {
  // No disk_cache directory configured: the tier must not exist, stats stay
  // all-zero/disabled, and scans behave identically to the pre-disk world.
  core::NoodleDetector copy;
  {
    const auto path = temp_snapshot_path("noodle_no_disk.snap");
    detector_->save(path);
    copy.load(path);
    std::filesystem::remove(path);
  }
  serve::DetectionService service(std::move(copy), serve::ServiceConfig{});
  EXPECT_EQ(service.disk_cache(), nullptr);
  const serve::DiskCacheStats stats = service.disk_cache_stats();
  EXPECT_FALSE(stats.enabled);
  EXPECT_EQ(stats.entries, 0u);
  expect_identical_report(service.scan((*corpus_)[0].verilog),
                          detector_->scan_verilog((*corpus_)[0].verilog));
  EXPECT_EQ(service.stats().disk_hits, 0u);
}

TEST(DetectionServiceConfig, RejectsUnfittedDetector) {
  EXPECT_THROW(serve::DetectionService(core::NoodleDetector{}, serve::ServiceConfig{}),
               std::invalid_argument);
}

// --- observability: cache-probe accounting, timing, metrics mirror -----------

TEST_F(DetectorSnapshot, CacheProbeAccountingIsExactUnderLintToggles) {
  core::NoodleDetector copy;
  {
    const auto path = temp_snapshot_path("noodle_probes.snap");
    detector_->save(path);
    copy.load(path);
    std::filesystem::remove(path);
  }
  serve::DetectionService service(std::move(copy), serve::ServiceConfig{});
  const std::string& source = (*corpus_)[0].verilog;

  // lint off: first scan misses (absent), second hits.
  service.scan(source);
  service.scan(source);
  // lint on: the cached verdict has no lint findings, so serving it would be
  // wrong — the probe must be a visible lint-state miss, never a phantom hit.
  service.set_lint(true);
  const core::DetectionReport linted = service.scan(source);
  EXPECT_TRUE(linted.lint_ran);
  // Re-cached with lint on: a hit again, and the hit carries the findings.
  const core::DetectionReport linted_hit = service.scan(source);
  EXPECT_TRUE(linted_hit.lint_ran);
  // Toggling back off mismatches the lint-on entry the same way.
  service.set_lint(false);
  EXPECT_FALSE(service.scan(source).lint_ran);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.scans, 3u);

  // The probe taxonomy partitions requests exactly: one outcome per submit.
  EXPECT_EQ(probe_count(service, "hit"), 2u);
  EXPECT_EQ(probe_count(service, "miss_absent"), 1u);
  EXPECT_EQ(probe_count(service, "miss_lint_state"), 2u);
  EXPECT_EQ(probe_count(service, "miss_collision"), 0u);
  EXPECT_EQ(probe_count(service, "miss_bypass"), 0u);
  EXPECT_EQ(probe_count(service, "hit") + probe_count(service, "miss_absent") +
                probe_count(service, "miss_lint_state") +
                probe_count(service, "miss_collision") +
                probe_count(service, "miss_bypass"),
            stats.requests);
}

TEST_F(DetectorSnapshot, StatsAndMetricsMirrorNeverDisagree) {
  core::NoodleDetector copy;
  {
    const auto path = temp_snapshot_path("noodle_mirror.snap");
    detector_->save(path);
    copy.load(path);
    std::filesystem::remove(path);
  }
  serve::DetectionService service(std::move(copy), serve::ServiceConfig{});
  for (std::size_t i = 0; i < 6; ++i) {
    service.scan((*corpus_)[i % 3].verilog);
  }

  const auto samples = service.metrics_snapshot();
  const serve::ServiceStats stats = service.stats();
  const obs::Labels model{{"model", serve::kDefaultModelName}};
  EXPECT_EQ(sample_counter(samples, "noodle_requests_total", model), stats.requests);
  EXPECT_EQ(sample_counter(samples, "noodle_cache_hits_total", model), stats.cache_hits);
  EXPECT_EQ(sample_counter(samples, "noodle_scans_total", model), stats.scans);
  EXPECT_EQ(sample_counter(samples, "noodle_batches_total", model), stats.batches);

  // And the rendered exposition agrees with the same snapshot the stats API
  // hands out (the mirror syncs from ONE StatsBook lock acquisition).
  std::ostringstream os;
  service.render_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("noodle_requests_total{model=\"default\"} " +
                      std::to_string(stats.requests)),
            std::string::npos);
}

TEST_F(DetectorSnapshot, ReportsCarryTimingAndDistinctTraceIds) {
  core::NoodleDetector copy;
  {
    const auto path = temp_snapshot_path("noodle_timing.snap");
    detector_->save(path);
    copy.load(path);
    std::filesystem::remove(path);
  }
  serve::DetectionService service(std::move(copy), serve::ServiceConfig{});

  const core::DetectionReport a = service.scan((*corpus_)[0].verilog);
  const core::DetectionReport b = service.scan((*corpus_)[1].verilog);
  const core::DetectionReport hit = service.scan((*corpus_)[0].verilog);

  // Every request gets a distinct nonzero trace id, hits included.
  EXPECT_NE(a.timing.trace_id, 0u);
  EXPECT_NE(b.timing.trace_id, 0u);
  EXPECT_NE(hit.timing.trace_id, 0u);
  EXPECT_NE(a.timing.trace_id, b.timing.trace_id);
  EXPECT_NE(a.timing.trace_id, hit.timing.trace_id);
  EXPECT_NE(b.timing.trace_id, hit.timing.trace_id);

  EXPECT_FALSE(a.timing.from_cache);
  EXPECT_FALSE(b.timing.from_cache);
  EXPECT_TRUE(hit.timing.from_cache);

  // Scanned requests: the total spans submit -> resolve, so it dominates
  // the queue wait (batch linger alone is ~2ms).
  EXPECT_GT(a.timing.total_us, 0u);
  EXPECT_GE(a.timing.total_us, a.timing.queue_wait_us);
  EXPECT_GE(b.timing.total_us, b.timing.queue_wait_us);

  // The per-stage histograms saw every request: one total recording each.
  const auto samples = service.metrics_snapshot();
  for (const auto& sample : samples) {
    if (sample.name != "noodle_stage_duration_seconds") continue;
    if (sample.labels == obs::Labels{{"stage", "total"}}) {
      EXPECT_EQ(sample.histogram.count, 3u);
    }
  }
}

}  // namespace
}  // namespace noodle
