#include "trojan/inserter.h"

#include <gtest/gtest.h>

#include "data/designgen.h"
#include "feat/tabular.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace noodle::trojan {
namespace {

verilog::Module make_counter(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return verilog::parse_module(
      data::generate_design(data::DesignFamily::Counter, "dut", rng));
}

TEST(Trojan, FindClockPrefersClkName) {
  const verilog::Module m = make_counter();
  EXPECT_EQ(find_clock(m), "clk");
  EXPECT_TRUE(has_clock(m));
}

TEST(Trojan, FindResetDetectsRst) {
  const verilog::Module m = make_counter();
  EXPECT_EQ(find_reset(m), "rst");
}

TEST(Trojan, CombinationalModuleHasNoClock) {
  util::Rng rng(1);
  const verilog::Module m = verilog::parse_module(
      data::generate_design(data::DesignFamily::Shifter, "dut", rng));
  EXPECT_FALSE(has_clock(m));
}

TEST(Trojan, RedirectOutputRenamesAllUses) {
  verilog::Module m = verilog::parse_module(
      "module t (input a, output y);\n"
      "  wire inner;\n"
      "  assign inner = y;\n"  // y read internally
      "  assign y = a;\n"
      "endmodule");
  const std::string internal = redirect_output(m, "y");
  EXPECT_EQ(internal, "y_pre");
  const std::string printed = verilog::print_module(m);
  // The old drivers now drive/read y_pre; y itself is only the port name.
  EXPECT_NE(printed.find("assign y_pre = a"), std::string::npos);
  EXPECT_NE(printed.find("assign inner = y_pre"), std::string::npos);
}

TEST(Trojan, RedirectOutputRegBecomesWirePort) {
  verilog::Module m = verilog::parse_module(
      "module t (input clk, input d, output reg q);\n"
      "  always @(posedge clk) q <= d;\n"
      "endmodule");
  redirect_output(m, "q");
  const verilog::PortDecl* port = m.find_port("q");
  ASSERT_NE(port, nullptr);
  EXPECT_EQ(port->net, verilog::NetKind::Wire);
  // The internal net keeps reg-ness so the always block stays legal.
  const verilog::NetDecl* internal = m.find_net("q_pre");
  ASSERT_NE(internal, nullptr);
  EXPECT_EQ(internal->kind, verilog::NetKind::Reg);
}

TEST(Trojan, RedirectNonOutputThrows) {
  verilog::Module m = make_counter();
  EXPECT_THROW(redirect_output(m, "clk"), std::runtime_error);
  EXPECT_THROW(redirect_output(m, "no_such"), std::runtime_error);
}

struct Combo {
  TriggerKind trigger;
  PayloadKind payload;
};

class EveryCombo : public ::testing::TestWithParam<Combo> {};

TEST_P(EveryCombo, InsertsAndReprintsCleanly) {
  verilog::Module m = make_counter(GetParam().trigger == TriggerKind::TimeBomb ? 3 : 4);
  util::Rng rng(9);
  TrojanConfig config;
  config.trigger = GetParam().trigger;
  config.payload = GetParam().payload;
  const TrojanReport report = insert_trojan(m, config, rng);

  EXPECT_EQ(report.trigger, GetParam().trigger);
  EXPECT_EQ(report.payload, GetParam().payload);
  EXPECT_FALSE(report.trigger_net.empty());
  EXPECT_FALSE(report.victim_output.empty());
  EXPECT_FALSE(report.added_nets.empty());

  // The infected module must re-parse (it will be printed into the corpus).
  const std::string printed = verilog::print_module(m);
  EXPECT_NO_THROW(verilog::parse_module(printed));
  // The trigger net must exist.
  EXPECT_NE(m.find_net(report.trigger_net), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, EveryCombo,
    ::testing::Values(Combo{TriggerKind::TimeBomb, PayloadKind::Corrupt},
                      Combo{TriggerKind::TimeBomb, PayloadKind::Leak},
                      Combo{TriggerKind::TimeBomb, PayloadKind::Disable},
                      Combo{TriggerKind::CheatCode, PayloadKind::Corrupt},
                      Combo{TriggerKind::CheatCode, PayloadKind::Leak},
                      Combo{TriggerKind::CheatCode, PayloadKind::Disable},
                      Combo{TriggerKind::Sequence, PayloadKind::Corrupt},
                      Combo{TriggerKind::Sequence, PayloadKind::Leak},
                      Combo{TriggerKind::Sequence, PayloadKind::Disable}));

TEST(Trojan, SequentialTriggerFallsBackOnCombinationalDesign) {
  util::Rng gen_rng(2);
  verilog::Module m = verilog::parse_module(
      data::generate_design(data::DesignFamily::ComparatorBank, "dut", gen_rng));
  util::Rng rng(5);
  TrojanConfig config;
  config.trigger = TriggerKind::TimeBomb;  // impossible without a clock
  const TrojanReport report = insert_trojan(m, config, rng);
  EXPECT_EQ(report.trigger, TriggerKind::CheatCode);
}

TEST(Trojan, InsertionAddsAlwaysBlockForTimeBomb) {
  verilog::Module m = make_counter(6);
  const std::size_t before = m.always_blocks.size();
  util::Rng rng(1);
  TrojanConfig config;
  config.trigger = TriggerKind::TimeBomb;
  insert_trojan(m, config, rng);
  EXPECT_EQ(m.always_blocks.size(), before + 1);
}

TEST(Trojan, InsertionChangesTabularFeatures) {
  verilog::Module clean = make_counter(7);
  verilog::Module infected = clean.clone();
  util::Rng rng(2);
  TrojanConfig config;
  insert_trojan(infected, config, rng);
  EXPECT_NE(feat::tabular_features(clean), feat::tabular_features(infected));
}

TEST(Trojan, VictimStillDrivenExactlyViaTap) {
  verilog::Module m = make_counter(8);
  util::Rng rng(3);
  TrojanConfig config;
  config.payload = PayloadKind::Disable;
  const TrojanReport report = insert_trojan(m, config, rng);
  // Exactly one continuous assign drives the victim output now.
  std::size_t drivers = 0;
  for (const auto& assign : m.assigns) {
    if (assign.lhs->kind == verilog::ExprKind::Identifier &&
        assign.lhs->name == report.victim_output) {
      ++drivers;
      EXPECT_EQ(assign.rhs->kind, verilog::ExprKind::Ternary);
    }
  }
  EXPECT_EQ(drivers, 1u);
}

TEST(Trojan, ModuleWithoutOutputsThrows) {
  verilog::Module m = verilog::parse_module("module t (input a, input b); endmodule");
  util::Rng rng(1);
  EXPECT_THROW(insert_trojan(m, TrojanConfig{}, rng), std::runtime_error);
}

TEST(Trojan, DeterministicGivenRngState) {
  verilog::Module a = make_counter(11);
  verilog::Module b = make_counter(11);
  util::Rng ra(77), rb(77);
  TrojanConfig config;
  config.trigger = TriggerKind::Sequence;
  insert_trojan(a, config, ra);
  insert_trojan(b, config, rb);
  EXPECT_EQ(verilog::print_module(a), verilog::print_module(b));
}

TEST(Trojan, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(TriggerKind::TimeBomb), "time_bomb");
  EXPECT_STREQ(to_string(TriggerKind::CheatCode), "cheat_code");
  EXPECT_STREQ(to_string(TriggerKind::Sequence), "sequence");
  EXPECT_STREQ(to_string(PayloadKind::Corrupt), "corrupt");
  EXPECT_STREQ(to_string(PayloadKind::Leak), "leak");
  EXPECT_STREQ(to_string(PayloadKind::Disable), "disable");
}

}  // namespace
}  // namespace noodle::trojan
