#include "cp/combine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace noodle::cp {
namespace {

TEST(NormalDist, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(NormalDist, QuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-8);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
}

TEST(NormalDist, QuantileInvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-7) << p;
  }
}

TEST(NormalDist, QuantileRejectsBoundary) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(ChiSquared, SurvivalKnownValues) {
  // 2 dof (k=1): S(x) = exp(-x/2).
  EXPECT_NEAR(chi_squared_survival_even_dof(2.0, 1), std::exp(-1.0), 1e-12);
  // 4 dof (k=2): S(x) = exp(-x/2)(1 + x/2).
  EXPECT_NEAR(chi_squared_survival_even_dof(4.0, 2), std::exp(-2.0) * 3.0, 1e-12);
}

TEST(ChiSquared, SurvivalBoundaries) {
  EXPECT_DOUBLE_EQ(chi_squared_survival_even_dof(0.0, 3), 1.0);
  EXPECT_DOUBLE_EQ(chi_squared_survival_even_dof(-1.0, 2), 1.0);
  EXPECT_LT(chi_squared_survival_even_dof(100.0, 2), 1e-15);
  EXPECT_THROW(chi_squared_survival_even_dof(1.0, 0), std::invalid_argument);
}

TEST(Combine, FisherUniformPair) {
  // For p = (1, 1): statistic 0, combined p = 1.
  const std::vector<double> ones = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(combine_p_values(ones, CombinationMethod::Fisher), 1.0);
  // Small p-values combine to something smaller still.
  const std::vector<double> small = {0.01, 0.02};
  EXPECT_LT(combine_p_values(small, CombinationMethod::Fisher), 0.01);
}

TEST(Combine, FisherKnownValue) {
  // T = -2(ln 0.1 + ln 0.1) = 9.2103; chi^2_4 survival = e^{-T/2}(1+T/2).
  const std::vector<double> ps = {0.1, 0.1};
  const double t = -2.0 * (std::log(0.1) + std::log(0.1));
  const double expected = std::exp(-t / 2.0) * (1.0 + t / 2.0);
  EXPECT_NEAR(combine_p_values(ps, CombinationMethod::Fisher), expected, 1e-12);
}

TEST(Combine, StoufferSymmetricPair) {
  // (0.3, 0.7): z-scores cancel -> combined 0.5.
  const std::vector<double> ps = {0.3, 0.7};
  EXPECT_NEAR(combine_p_values(ps, CombinationMethod::Stouffer), 0.5, 1e-9);
}

TEST(Combine, StoufferAgreementAmplifies) {
  const std::vector<double> ps = {0.05, 0.05};
  // Two agreeing 0.05s are stronger evidence than one.
  EXPECT_LT(combine_p_values(ps, CombinationMethod::Stouffer), 0.05);
}

TEST(Combine, MeanMinMaxFormulas) {
  const std::vector<double> ps = {0.1, 0.3};
  EXPECT_DOUBLE_EQ(combine_p_values(ps, CombinationMethod::ArithmeticMean),
                   std::min(1.0, 2.0 * 0.2));
  EXPECT_DOUBLE_EQ(combine_p_values(ps, CombinationMethod::Min),
                   std::min(1.0, 2.0 * 0.1));
  EXPECT_DOUBLE_EQ(combine_p_values(ps, CombinationMethod::Max), 0.3);
}

TEST(Combine, EmptyThrows) {
  EXPECT_THROW(combine_p_values({}, CombinationMethod::Fisher),
               std::invalid_argument);
}

TEST(Combine, AllMethodsListed) {
  EXPECT_EQ(all_combination_methods().size(), 5u);
  std::set<std::string> names;
  for (const auto method : all_combination_methods()) {
    names.insert(to_string(method));
  }
  EXPECT_EQ(names.size(), 5u);
}

class CombinerProperties : public ::testing::TestWithParam<CombinationMethod> {};

TEST_P(CombinerProperties, OutputInUnitInterval) {
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> ps;
    for (int j = 0; j < 3; ++j) ps.push_back(rng.uniform());
    const double combined = combine_p_values(ps, GetParam());
    EXPECT_GE(combined, 0.0);
    EXPECT_LE(combined, 1.0);
  }
}

TEST_P(CombinerProperties, MonotoneInEachInput) {
  // Raising any input p-value must not lower the combined p-value.
  const std::vector<double> base = {0.2, 0.4};
  const double combined_base = combine_p_values(base, GetParam());
  const std::vector<double> higher = {0.3, 0.4};
  EXPECT_GE(combine_p_values(higher, GetParam()), combined_base - 1e-12);
}

TEST_P(CombinerProperties, ValidUnderUniformNull) {
  // With p_i ~ U(0,1) iid (the conformal null), P(combined <= alpha) must
  // not exceed alpha by more than sampling noise.
  util::Rng rng(17);
  constexpr int kTrials = 5000;
  constexpr double kAlpha = 0.1;
  int rejections = 0;
  for (int i = 0; i < kTrials; ++i) {
    const std::vector<double> ps = {rng.uniform(), rng.uniform()};
    if (combine_p_values(ps, GetParam()) <= kAlpha) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / kTrials;
  const double slack = 3.0 * std::sqrt(kAlpha * (1 - kAlpha) / kTrials);
  EXPECT_LE(rate, kAlpha + slack) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllMethods, CombinerProperties,
                         ::testing::Values(CombinationMethod::Fisher,
                                           CombinationMethod::Stouffer,
                                           CombinationMethod::ArithmeticMean,
                                           CombinationMethod::Min,
                                           CombinationMethod::Max));

}  // namespace
}  // namespace noodle::cp
