// Tests for the batch/parallel subsystem: the thread pool primitives, the
// experiment sweep runner's determinism across thread counts, and the
// detector's batch scan APIs matching their sequential equivalents exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>

#include "core/batch.h"
#include "core/detector.h"
#include "util/thread_pool.h"

namespace noodle {
namespace {

// --- thread pool primitives ------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  util::ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ResolveThreadCount, CapsAtWorkItemsAndNeverReturnsZero) {
  EXPECT_EQ(util::resolve_thread_count(8, 3), 3u);
  EXPECT_EQ(util::resolve_thread_count(2, 100), 2u);
  EXPECT_GE(util::resolve_thread_count(0, 100), 1u);
  EXPECT_EQ(util::resolve_thread_count(4, 0), 4u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> visits(257);
    util::parallel_for(visits.size(), threads,
                       [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  bool called = false;
  util::parallel_for(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, MoreThreadsThanWorkStillCoversAll) {
  std::vector<std::atomic<int>> visits(3);
  util::parallel_for(visits.size(), 16, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      util::parallel_for(64, 4,
                         [](std::size_t i) {
                           if (i == 13) throw std::runtime_error("task 13 failed");
                         }),
      std::runtime_error);
}

TEST(ParallelFor, InlineWhenSingleThreadedPreservesOrder) {
  std::vector<std::size_t> order;
  util::parallel_for(8, 1, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

// --- sweep determinism -----------------------------------------------------

core::ExperimentConfig tiny_experiment(std::uint64_t seed) {
  core::ExperimentConfig config;
  config.seed = seed;
  config.corpus.design_count = 60;
  config.corpus.infected_fraction = 0.35;
  config.gan_target_per_class = 30;
  config.gan.epochs = 20;
  config.fusion.train.epochs = 8;
  config.fusion.train.validation_fraction = 0.0;
  return config;
}

void expect_identical(const core::ExperimentResult& a, const core::ExperimentResult& b) {
  for (std::size_t arm = 0; arm < 4; ++arm) {
    const core::ArmResult& x = *a.arms()[arm];
    const core::ArmResult& y = *b.arms()[arm];
    // Bit-identical, not approximately equal: the parallel runner must not
    // perturb any arithmetic.
    EXPECT_EQ(x.probabilities, y.probabilities) << x.name;
    EXPECT_EQ(x.p_values, y.p_values) << x.name;
    EXPECT_EQ(x.brier, y.brier) << x.name;
  }
  EXPECT_EQ(a.test_labels, b.test_labels);
  EXPECT_EQ(a.winner, b.winner);
}

TEST(ExperimentSweep, ParallelMatchesSerialBitForBit) {
  std::vector<core::ExperimentConfig> configs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    configs.push_back(tiny_experiment(seed));
  }

  core::SweepOptions serial;
  serial.threads = 1;
  const auto serial_results = core::run_experiment_sweep(configs, serial);

  core::SweepOptions parallel;
  parallel.threads = 4;
  const auto parallel_results = core::run_experiment_sweep(configs, parallel);

  ASSERT_EQ(serial_results.size(), configs.size());
  ASSERT_EQ(parallel_results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_identical(serial_results[i], parallel_results[i]);
  }
}

TEST(ExperimentSweep, MatchesDirectRunExperiment) {
  const auto config = tiny_experiment(5);
  const core::ExperimentResult direct = core::run_experiment(config);

  core::SweepOptions options;
  options.threads = 2;
  const auto swept =
      core::run_experiment_sweep(std::vector<core::ExperimentConfig>{config}, options);
  ASSERT_EQ(swept.size(), 1u);
  expect_identical(direct, swept.front());
}

TEST(ExperimentSweep, EmptySweepReturnsEmpty) {
  const auto results = core::run_experiment_sweep(std::vector<core::ExperimentConfig>{});
  EXPECT_TRUE(results.empty());
}

TEST(ExperimentSweep, ReportsProgressForEveryPointInInputIndexTerms) {
  std::vector<core::ExperimentConfig> configs;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    configs.push_back(tiny_experiment(seed));
  }
  std::set<std::size_t> seen;
  core::SweepOptions options;
  options.threads = 3;
  options.on_result = [&seen](std::size_t index, const core::ExperimentResult& result) {
    EXPECT_GT(result.test_size, 0u);
    seen.insert(index);
  };
  core::run_experiment_sweep(configs, options);
  EXPECT_EQ(seen, (std::set<std::size_t>{0u, 1u, 2u}));
}

// --- detector batch scans --------------------------------------------------

class ScanMany : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::DetectorConfig config;
    config.seed = 7;
    config.gan_target_per_class = 30;
    config.gan.epochs = 20;
    config.fusion.train.epochs = 8;
    config.fusion.train.validation_fraction = 0.0;
    detector_ = new core::NoodleDetector(config);

    data::CorpusSpec spec;
    spec.design_count = 72;
    spec.infected_fraction = 0.35;
    spec.seed = 7;
    corpus_ = new std::vector<data::CircuitSample>(data::build_corpus(spec));
    detector_->fit(*corpus_);

    samples_ = new std::vector<data::FeatureSample>();
    for (const auto& circuit : *corpus_) samples_->push_back(data::featurize(circuit));
  }

  static void TearDownTestSuite() {
    delete samples_;
    samples_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
    delete detector_;
    detector_ = nullptr;
  }

  static void expect_same_report(const core::DetectionReport& a,
                                 const core::DetectionReport& b) {
    EXPECT_EQ(a.predicted_label, b.predicted_label);
    EXPECT_EQ(a.probability, b.probability);
    EXPECT_EQ(a.p_values, b.p_values);
    EXPECT_EQ(a.region.contains, b.region.contains);
    EXPECT_EQ(a.fusion_used, b.fusion_used);
  }

  static core::NoodleDetector* detector_;
  static std::vector<data::CircuitSample>* corpus_;
  static std::vector<data::FeatureSample>* samples_;
};

core::NoodleDetector* ScanMany::detector_ = nullptr;
std::vector<data::CircuitSample>* ScanMany::corpus_ = nullptr;
std::vector<data::FeatureSample>* ScanMany::samples_ = nullptr;

TEST_F(ScanMany, MatchesSequentialScanFeaturesAtAnyThreadCount) {
  std::vector<core::DetectionReport> sequential;
  for (const auto& sample : *samples_) {
    sequential.push_back(detector_->scan_features(sample));
  }
  for (const std::size_t threads : {1u, 2u, 4u}) {
    const auto batched = detector_->scan_many(*samples_, threads);
    ASSERT_EQ(batched.size(), sequential.size());
    for (std::size_t i = 0; i < batched.size(); ++i) {
      expect_same_report(batched[i], sequential[i]);
    }
  }
}

TEST_F(ScanMany, ScanVerilogManyMatchesScanVerilog) {
  std::vector<std::string> sources;
  for (std::size_t i = 0; i < 8; ++i) sources.push_back((*corpus_)[i].verilog);

  const auto batched = detector_->scan_verilog_many(sources, 4);
  ASSERT_EQ(batched.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    expect_same_report(batched[i], detector_->scan_verilog(sources[i]));
  }
}

TEST_F(ScanMany, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(detector_->scan_many({}, 4).empty());
  EXPECT_TRUE(detector_->scan_verilog_many({}, 4).empty());
}

TEST_F(ScanMany, MalformedVerilogPropagatesFromWorkers) {
  std::vector<std::string> sources = {(*corpus_)[0].verilog, "module broken(",
                                      (*corpus_)[1].verilog};
  EXPECT_ANY_THROW(detector_->scan_verilog_many(sources, 2));
}

TEST(ScanManyUnfitted, ThrowsLogicError) {
  const core::NoodleDetector detector;
  const std::vector<data::FeatureSample> samples(1);
  EXPECT_THROW(detector.scan_many(samples, 2), std::logic_error);
}

}  // namespace
}  // namespace noodle
