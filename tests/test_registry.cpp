// Tests for the multi-model serving layer: ModelSpec parsing, the
// ModelRegistry's publish/resolve/retire/reload_from semantics, swap
// atomicity under concurrent load (a scan is always answered by exactly one
// generation, bit-identically), generation-scoped verdict caching, f32
// snapshot compaction round-tripping through the registry, and StatsBook
// snapshot consistency.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace noodle {
namespace {

std::filesystem::path temp_path(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

// Two genuinely different fitted generations (different seeds and corpora),
// their snapshot files, and per-sample reference reports. Fitting is the
// expensive part, so everything is built once per suite.
class RegistryFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_a_ = new core::NoodleDetector(quick_config(7));
    gen_a_->fit(data::build_corpus(quick_corpus(7, 72)));
    gen_b_ = new core::NoodleDetector(quick_config(11));
    gen_b_->fit(data::build_corpus(quick_corpus(11, 64)));

    path_a_ = temp_path("noodle_registry_a.snap");
    path_b_ = temp_path("noodle_registry_b.snap");
    gen_a_->save(path_a_);
    gen_b_->save(path_b_);

    samples_ = new std::vector<data::FeatureSample>();
    sources_ = new std::vector<std::string>();
    for (const auto& circuit : data::build_corpus(quick_corpus(19, 12))) {
      samples_->push_back(data::featurize(circuit));
      sources_->push_back(circuit.verilog);
    }
    ref_a_ = new std::vector<core::DetectionReport>(gen_a_->scan_many(*samples_, 1));
    ref_b_ = new std::vector<core::DetectionReport>(gen_b_->scan_many(*samples_, 1));
  }

  static void TearDownTestSuite() {
    std::filesystem::remove(path_a_);
    std::filesystem::remove(path_b_);
    delete ref_b_;
    ref_b_ = nullptr;
    delete ref_a_;
    ref_a_ = nullptr;
    delete sources_;
    sources_ = nullptr;
    delete samples_;
    samples_ = nullptr;
    delete gen_b_;
    gen_b_ = nullptr;
    delete gen_a_;
    gen_a_ = nullptr;
  }

  static core::DetectorConfig quick_config(std::uint64_t seed) {
    core::DetectorConfig config;
    config.seed = seed;
    config.gan_target_per_class = 30;
    config.gan.epochs = 20;
    config.fusion.train.epochs = 8;
    config.fusion.train.validation_fraction = 0.0;
    return config;
  }

  static data::CorpusSpec quick_corpus(std::uint64_t seed, std::size_t designs) {
    data::CorpusSpec spec;
    spec.design_count = designs;
    spec.infected_fraction = 0.35;
    spec.seed = seed;
    return spec;
  }

  static bool identical(const core::DetectionReport& a, const core::DetectionReport& b) {
    return a.predicted_label == b.predicted_label && a.probability == b.probability &&
           a.p_values == b.p_values && a.region.contains == b.region.contains &&
           a.fusion_used == b.fusion_used;
  }

  static core::NoodleDetector* gen_a_;
  static core::NoodleDetector* gen_b_;
  static std::filesystem::path path_a_;
  static std::filesystem::path path_b_;
  static std::vector<data::FeatureSample>* samples_;
  static std::vector<std::string>* sources_;
  static std::vector<core::DetectionReport>* ref_a_;
  static std::vector<core::DetectionReport>* ref_b_;
};

core::NoodleDetector* RegistryFixture::gen_a_ = nullptr;
core::NoodleDetector* RegistryFixture::gen_b_ = nullptr;
std::filesystem::path RegistryFixture::path_a_;
std::filesystem::path RegistryFixture::path_b_;
std::vector<data::FeatureSample>* RegistryFixture::samples_ = nullptr;
std::vector<std::string>* RegistryFixture::sources_ = nullptr;
std::vector<core::DetectionReport>* RegistryFixture::ref_a_ = nullptr;
std::vector<core::DetectionReport>* RegistryFixture::ref_b_ = nullptr;

// --- ModelSpec parsing -------------------------------------------------------

TEST(ModelSpecParsing, AcceptsNameAndNameAtVersion) {
  const serve::ModelSpec bare = serve::parse_model_spec("prod-v2.east_1");
  EXPECT_EQ(bare.name, "prod-v2.east_1");
  EXPECT_EQ(bare.version, 0u);  // 0 = latest
  EXPECT_EQ(bare.to_string(), "prod-v2.east_1");

  const serve::ModelSpec pinned = serve::parse_model_spec("canary@3");
  EXPECT_EQ(pinned.name, "canary");
  EXPECT_EQ(pinned.version, 3u);
  EXPECT_EQ(pinned.to_string(), "canary@3");
}

TEST(ModelSpecParsing, RejectsMalformedSpecs) {
  EXPECT_THROW(serve::parse_model_spec(""), serve::RegistryError);
  EXPECT_THROW(serve::parse_model_spec("@3"), serve::RegistryError);
  EXPECT_THROW(serve::parse_model_spec("name@"), serve::RegistryError);
  EXPECT_THROW(serve::parse_model_spec("name@0"), serve::RegistryError);
  EXPECT_THROW(serve::parse_model_spec("name@two"), serve::RegistryError);
  EXPECT_THROW(serve::parse_model_spec("name@1x"), serve::RegistryError);
  EXPECT_THROW(serve::parse_model_spec("bad name"), serve::RegistryError);
  EXPECT_THROW(serve::parse_model_spec("colon:name"), serve::RegistryError);
}

// --- registry semantics ------------------------------------------------------

TEST_F(RegistryFixture, PublishResolveRetireSemantics) {
  serve::ModelRegistry registry;
  EXPECT_THROW(registry.publish("m", nullptr), serve::RegistryError);
  EXPECT_THROW(registry.publish("bad name", gen_a_->fitted_model()),
               serve::RegistryError);
  EXPECT_THROW(registry.resolve("m"), serve::RegistryError);
  EXPECT_THROW(registry.latest_view("m"), serve::RegistryError);

  const serve::ModelHandle v1 = registry.publish("m", gen_a_->fitted_model());
  const serve::ModelHandle v2 = registry.publish("m", gen_b_->fitted_model());
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_EQ(v1->label(), "m@1");
  EXPECT_NE(v1->id(), v2->id());  // generation ids are process-unique

  EXPECT_EQ(registry.resolve("m"), v2);  // bare name = latest
  EXPECT_EQ(registry.resolve("m@1"), v1);
  EXPECT_EQ(registry.resolve(serve::ModelSpec{"m", 2}), v2);
  EXPECT_EQ(registry.try_resolve(serve::ModelSpec{"m", 9}), nullptr);
  EXPECT_THROW(registry.resolve("m@9"), serve::RegistryError);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"m"});
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.catalog().size(), 2u);

  // Retiring the latest repoints to the highest survivor.
  EXPECT_TRUE(registry.retire("m", 2));
  EXPECT_EQ(registry.resolve("m"), v1);
  EXPECT_FALSE(registry.retire("m", 2));  // versions are never reused
  EXPECT_TRUE(registry.retire("m"));      // version 0 = current latest
  EXPECT_EQ(registry.try_resolve(serve::ModelSpec{"m"}), nullptr);
  EXPECT_TRUE(registry.names().empty());

  // Versions keep counting after a full retire (no id/version recycling).
  const serve::ModelHandle v3 = registry.publish("m", gen_a_->fitted_model());
  EXPECT_EQ(v3->version(), 3u);
}

TEST_F(RegistryFixture, ReloadFromLoadsValidatesAndSwaps) {
  serve::ModelRegistry registry;
  const serve::ModelHandle v1 = registry.reload_from("m", path_a_);
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->source(), path_a_);
  for (std::size_t i = 0; i < samples_->size(); ++i) {
    EXPECT_TRUE(identical(v1->model().scan_features((*samples_)[i]), (*ref_a_)[i]));
  }

  const serve::ModelHandle v2 = registry.reload_from("m", path_b_);
  EXPECT_EQ(registry.resolve("m"), v2);
  for (std::size_t i = 0; i < samples_->size(); ++i) {
    EXPECT_TRUE(identical(v2->model().scan_features((*samples_)[i]), (*ref_b_)[i]));
  }

  // A bad snapshot fails the reload and leaves the latest untouched.
  const auto bad = temp_path("noodle_registry_bad.snap");
  {
    std::ofstream os(bad, std::ios::binary);
    os << "definitely not a snapshot";
  }
  EXPECT_THROW(registry.reload_from("m", bad), serve::SnapshotError);
  EXPECT_EQ(registry.resolve("m"), v2);
  EXPECT_EQ(registry.size(), 2u);
  std::filesystem::remove(bad);
}

TEST_F(RegistryFixture, LatestViewTracksSwapsWithoutLocks) {
  serve::ModelRegistry registry;
  registry.publish("m", gen_a_->fitted_model());
  const serve::ModelRegistry::LatestView view = registry.latest_view("m");
  const serve::ModelHandle first = view.get();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->version(), 1u);

  registry.publish("m", gen_b_->fitted_model());
  EXPECT_EQ(view.get()->version(), 2u);

  registry.retire("m");
  registry.retire("m");
  EXPECT_EQ(view.get(), nullptr);

  // The old handle is still pinned and scannable after full retirement.
  EXPECT_TRUE(identical(first->model().scan_features((*samples_)[0]), (*ref_a_)[0]));
}

// --- swap atomicity ----------------------------------------------------------

TEST_F(RegistryFixture, ReloadDuringScanManyNeitherBlocksNorChangesVerdicts) {
  serve::ModelRegistry registry;
  registry.reload_from("m", path_a_);
  const serve::ModelHandle pinned = registry.resolve("m");

  // Scan on one thread while the registry swaps generations underneath.
  std::atomic<bool> reloading{true};
  std::thread reloader([&] {
    for (int i = 0; i < 4; ++i) {
      registry.reload_from("m", path_b_);
      registry.reload_from("m", path_a_);
    }
    reloading = false;
  });
  std::vector<core::DetectionReport> reports;
  while (reloading.load()) {
    reports = pinned->model().scan_many(*samples_, 2);
    for (std::size_t i = 0; i < reports.size(); ++i) {
      ASSERT_TRUE(identical(reports[i], (*ref_a_)[i]))
          << "pinned handle verdict drifted during reload at sample " << i;
    }
  }
  reloader.join();
  // After 8 swaps the latest is a fresh generation, the pinned handle intact.
  EXPECT_GE(registry.resolve("m")->version(), 9u);
  EXPECT_EQ(pinned->version(), 1u);
}

TEST_F(RegistryFixture, ConcurrentReloadNeverMixesGenerationsInABatch) {
  serve::ModelRegistry registry;
  registry.reload_from("m", path_a_);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> batches_checked{0};
  std::thread reloader([&] {
    for (int i = 0; i < 6; ++i) {
      registry.reload_from("m", path_b_);
      registry.reload_from("m", path_a_);
    }
    stop = true;
  });

  // Scanners resolve latest per batch, exactly like the service does. Every
  // batch must be bit-identical to ONE generation's reference — all-A or
  // all-B, never a mixture.
  std::vector<std::thread> scanners;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 2; ++t) {
    scanners.emplace_back([&] {
      while (!stop.load()) {
        const serve::ModelHandle handle = registry.resolve("m");
        const auto reports = handle->model().scan_many(*samples_, 1);
        bool all_a = true, all_b = true;
        for (std::size_t i = 0; i < reports.size(); ++i) {
          all_a = all_a && identical(reports[i], (*ref_a_)[i]);
          all_b = all_b && identical(reports[i], (*ref_b_)[i]);
        }
        if (!(all_a || all_b)) failed = true;
        ++batches_checked;
      }
    });
  }
  reloader.join();
  for (auto& scanner : scanners) scanner.join();
  EXPECT_FALSE(failed.load()) << "a batch mixed verdicts from two generations";
  EXPECT_GT(batches_checked.load(), 0u);
}

TEST_F(RegistryFixture, ServiceServesBothGenerationsCorrectlyAcrossReload) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->reload_from("m", path_a_);
  serve::ServiceConfig config;
  config.max_batch = 4;
  config.workers = 2;
  serve::DetectionService service(registry, "m", config);

  // Burst against generation A, hot-swap to B, burst again: every verdict
  // must match the generation its served_by label names.
  std::vector<std::future<core::DetectionReport>> first;
  for (const auto& source : *sources_) first.push_back(service.submit(source));
  for (std::size_t i = 0; i < first.size(); ++i) {
    const core::DetectionReport report = first[i].get();
    EXPECT_EQ(report.served_by, "m@1");
    EXPECT_TRUE(identical(report, (*ref_a_)[i]));
  }

  service.reload("m", path_b_);
  std::vector<std::future<core::DetectionReport>> second;
  for (const auto& source : *sources_) second.push_back(service.submit(source));
  for (std::size_t i = 0; i < second.size(); ++i) {
    const core::DetectionReport report = second[i].get();
    EXPECT_EQ(report.served_by, "m@2");
    EXPECT_TRUE(identical(report, (*ref_b_)[i]));
  }

  // Pinned-version requests still hit generation 1 after the swap.
  const core::DetectionReport pinned = service.scan("m@1", (*sources_)[0]);
  EXPECT_EQ(pinned.served_by, "m@1");
  EXPECT_TRUE(identical(pinned, (*ref_a_)[0]));
}

// --- generation-scoped verdict cache ----------------------------------------

TEST_F(RegistryFixture, CacheKeysAreGenerationScoped) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->reload_from("m", path_a_);
  serve::DetectionService service(registry, "m");

  const std::string& source = (*sources_)[0];
  const core::DetectionReport first = service.scan(source);
  const core::DetectionReport again = service.scan(source);
  EXPECT_TRUE(identical(first, (*ref_a_)[0]));
  EXPECT_TRUE(identical(again, (*ref_a_)[0]));
  EXPECT_EQ(service.stats().cache_hits, 1u);  // second scan is a hit

  // After the swap the same source must MISS (different generation id) and
  // be re-scanned by generation B — a cached A-verdict must never leak.
  service.reload("m", path_b_);
  const core::DetectionReport swapped = service.scan(source);
  EXPECT_EQ(swapped.served_by, "m@2");
  EXPECT_TRUE(identical(swapped, (*ref_b_)[0]));

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.scans, 2u);

  // And the old generation's entry still serves version-pinned requests.
  const core::DetectionReport pinned = service.scan("m@1", source);
  EXPECT_TRUE(identical(pinned, (*ref_a_)[0]));
  EXPECT_EQ(service.stats().cache_hits, 2u);  // m@1 entry was still cached
}

TEST_F(RegistryFixture, UnknownModelFailsTheFutureNotTheCall) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->reload_from("m", path_a_);
  serve::DetectionService service(registry, "m");

  auto missing = service.submit("ghost", (*sources_)[0]);
  EXPECT_THROW(missing.get(), serve::RegistryError);
  auto bad_version = service.submit("m@42", (*sources_)[0]);
  EXPECT_THROW(bad_version.get(), serve::RegistryError);
  EXPECT_THROW(service.submit("not a spec", (*sources_)[0]), serve::RegistryError);

  service.drain();
  EXPECT_EQ(service.stats().model_misses, 2u);
  EXPECT_EQ(service.stats("ghost").model_misses, 1u);
  EXPECT_EQ(service.stats("m").model_misses, 1u);

  // Sanity: the healthy model still answers.
  EXPECT_TRUE(identical(service.scan((*sources_)[0]), (*ref_a_)[0]));
}

TEST_F(RegistryFixture, StatsMapIsBoundedAgainstBogusModelNames) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->reload_from("m", path_a_);
  serve::DetectionService service(registry, "m");

  // A client spraying distinct nonexistent model names must not grow the
  // per-model stats map without bound: overflow names share one cell.
  const std::size_t bogus = serve::StatsBook::kMaxTrackedModels + 40;
  std::vector<std::future<core::DetectionReport>> futures;
  futures.reserve(bogus);
  for (std::size_t i = 0; i < bogus; ++i) {
    futures.push_back(service.submit("bogus" + std::to_string(i), (*sources_)[0]));
  }
  for (auto& future : futures) EXPECT_THROW(future.get(), serve::RegistryError);
  service.drain();

  EXPECT_EQ(service.stats().model_misses, bogus);
  const auto by_model = service.stats_by_model();
  EXPECT_LE(by_model.size(), serve::StatsBook::kMaxTrackedModels + 1);
  const auto overflow = by_model.find(serve::StatsBook::kOverflowCell);
  ASSERT_NE(overflow, by_model.end());
  EXPECT_GE(overflow->second.model_misses, 40u);
  std::uint64_t misses = 0;
  for (const auto& [name, stats] : by_model) misses += stats.model_misses;
  EXPECT_EQ(misses, bogus);  // per-model cells still partition the aggregate
}

// --- f32 snapshot compaction -------------------------------------------------

TEST_F(RegistryFixture, F32SnapshotIsSmallerAndVerdictEquivalent) {
  const auto path_f64 = temp_path("noodle_registry_f64.snap");
  const auto path_f32 = temp_path("noodle_registry_f32.snap");
  gen_a_->save(path_f64, nn::WeightPrecision::F64);
  gen_a_->save(path_f32, nn::WeightPrecision::F32);

  // Compaction: the weight payload dominates the archive, so f32 should be
  // close to half the size.
  const auto size_f64 = std::filesystem::file_size(path_f64);
  const auto size_f32 = std::filesystem::file_size(path_f32);
  EXPECT_LT(static_cast<double>(size_f32), 0.65 * static_cast<double>(size_f64));

  // Round trip both through the registry: the f64 load is bit-identical,
  // the f32 load is verdict-identical (same labels and regions; the
  // probability moves by at most the f32 rounding of tiny CNNs).
  serve::ModelRegistry registry;
  const serve::ModelHandle full = registry.reload_from("full", path_f64);
  const serve::ModelHandle compact = registry.reload_from("compact", path_f32);
  for (std::size_t i = 0; i < samples_->size(); ++i) {
    const core::DetectionReport exact = full->model().scan_features((*samples_)[i]);
    EXPECT_TRUE(identical(exact, (*ref_a_)[i]));

    const core::DetectionReport rounded = compact->model().scan_features((*samples_)[i]);
    EXPECT_EQ(rounded.predicted_label, (*ref_a_)[i].predicted_label);
    EXPECT_EQ(rounded.region.contains, (*ref_a_)[i].region.contains);
    EXPECT_EQ(rounded.fusion_used, (*ref_a_)[i].fusion_used);
    EXPECT_NEAR(rounded.probability, (*ref_a_)[i].probability, 5e-3);
    EXPECT_NEAR(rounded.p_values[0], (*ref_a_)[i].p_values[0], 0.05);
    EXPECT_NEAR(rounded.p_values[1], (*ref_a_)[i].p_values[1], 0.05);
  }

  std::filesystem::remove(path_f64);
  std::filesystem::remove(path_f32);
}

TEST_F(RegistryFixture, I8SnapshotIsSmallerAndVerdictEquivalent) {
  const auto path_f64 = temp_path("noodle_registry_i8_ref.snap");
  const auto path_i8 = temp_path("noodle_registry_i8.snap");
  gen_a_->save(path_f64, nn::WeightPrecision::F64);
  gen_a_->save(path_i8, nn::WeightPrecision::I8);

  // One byte plus amortized per-buffer scale per weight against eight bytes:
  // the archive should shrink well past the f32 halving.
  const auto size_f64 = std::filesystem::file_size(path_f64);
  const auto size_i8 = std::filesystem::file_size(path_i8);
  EXPECT_LT(static_cast<double>(size_i8), 0.45 * static_cast<double>(size_f64));

  // int8 rounding is much coarser than f32, so the equivalence bar is the
  // verdict, not the score: labels and regions must agree wherever the
  // reference verdict is confident, and scores stay in the neighborhood.
  serve::ModelRegistry registry;
  const serve::ModelHandle quantized = registry.reload_from("quantized", path_i8);
  for (std::size_t i = 0; i < samples_->size(); ++i) {
    const core::DetectionReport& exact = (*ref_a_)[i];
    const core::DetectionReport coarse =
        quantized->model().scan_features((*samples_)[i]);
    if (std::abs(exact.probability - 0.5) > 0.1) {
      EXPECT_EQ(coarse.predicted_label, exact.predicted_label)
          << "sample " << i << " flipped a confident verdict";
      EXPECT_EQ(coarse.region.contains, exact.region.contains);
    }
    EXPECT_EQ(coarse.fusion_used, exact.fusion_used);
    EXPECT_NEAR(coarse.probability, exact.probability, 0.1);
    EXPECT_NEAR(coarse.p_values[0], exact.p_values[0], 0.15);
    EXPECT_NEAR(coarse.p_values[1], exact.p_values[1], 0.15);
  }

  std::filesystem::remove(path_f64);
  std::filesystem::remove(path_i8);
}

// --- StatsBook consistency ---------------------------------------------------

TEST_F(RegistryFixture, StatsSnapshotsAreNeverTorn) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->reload_from("m", path_a_);
  serve::ServiceConfig config;
  config.max_batch = 4;
  config.workers = 2;
  serve::DetectionService service(registry, "m", config);

  // Hammer the service with every outcome class (scans, cache hits, parse
  // failures, model misses) while a reader thread checks that EVERY stats
  // snapshot is internally consistent: outcomes never exceed requests.
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const serve::ServiceStats s = service.stats();
      if (s.cache_hits + s.scans + s.parse_failures + s.model_misses > s.requests) {
        torn = true;
      }
      const serve::ServiceStats m = service.stats("m");
      if (m.cache_hits + m.scans + m.parse_failures + m.model_misses > m.requests) {
        torn = true;
      }
    }
  });

  std::vector<std::thread> writers;
  constexpr std::size_t kRounds = 12;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      std::vector<std::future<core::DetectionReport>> futures;
      for (std::size_t round = 0; round < kRounds; ++round) {
        futures.push_back(
            service.submit((*sources_)[(round + static_cast<std::size_t>(t)) %
                                       sources_->size()]));
        futures.push_back(service.submit("module broken ("));
        futures.push_back(service.submit("ghost", (*sources_)[0]));
      }
      for (auto& future : futures) {
        try {
          future.get();
        } catch (const std::exception&) {
          // parse failures and model misses are expected here
        }
      }
    });
  }
  for (auto& writer : writers) writer.join();
  service.drain();
  stop = true;
  reader.join();
  EXPECT_FALSE(torn.load()) << "observed a torn stats snapshot";

  // Fully drained, the outcome classes partition the requests exactly.
  const serve::ServiceStats s = service.stats();
  EXPECT_EQ(s.requests, 3u * 3u * kRounds);
  EXPECT_EQ(s.cache_hits + s.scans + s.parse_failures + s.model_misses, s.requests);
  EXPECT_EQ(s.model_misses, 3u * kRounds);
  EXPECT_GE(s.parse_failures, 1u);

  // Per-model snapshots partition the aggregate.
  const auto by_model = service.stats_by_model();
  std::uint64_t requests = 0;
  for (const auto& [name, stats] : by_model) requests += stats.requests;
  EXPECT_EQ(requests, s.requests);
}

// --- reload event log --------------------------------------------------------

TEST_F(RegistryFixture, ReloadEventLogRecordsSuccessesAndFailures) {
  serve::ModelRegistry registry;
  registry.reload_from("m", path_a_);
  EXPECT_THROW(registry.reload_from("m", temp_path("noodle_no_such_file.snap")),
               serve::SnapshotError);
  registry.reload_from("m", path_b_);

  const std::vector<serve::ReloadEvent> events = registry.reload_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[0].ok);
  EXPECT_EQ(events[0].name, "m");
  EXPECT_EQ(events[0].version, 1u);
  EXPECT_GT(events[0].load_micros, 0u);  // a real snapshot load takes time
  EXPECT_FALSE(events[1].ok);
  EXPECT_EQ(events[1].version, 0u);  // nothing was published
  EXPECT_FALSE(events[1].error.empty());
  EXPECT_TRUE(events[2].ok);
  EXPECT_EQ(events[2].version, 2u);  // the failure consumed no version number
  EXPECT_LT(events[0].when, std::chrono::system_clock::now());

  const serve::ReloadStats totals = registry.reload_stats();
  EXPECT_EQ(totals.ok, 2u);
  EXPECT_EQ(totals.errors, 1u);
  EXPECT_GE(totals.load_micros_total, events[0].load_micros);
}

TEST_F(RegistryFixture, ReloadEventLogIsBoundedButTotalsAreNot) {
  serve::ModelRegistry registry;
  const serve::ModelHandle seed = registry.reload_from("m", path_a_);
  // Republishing the already-loaded model is cheap, so we can push far past
  // the ring bound without refitting anything.
  const std::size_t publishes = serve::ModelRegistry::kMaxReloadEvents + 40;
  for (std::size_t i = 0; i < publishes; ++i) {
    registry.publish("m", seed->model_ptr());
  }

  const std::vector<serve::ReloadEvent> events = registry.reload_events();
  EXPECT_EQ(events.size(), serve::ModelRegistry::kMaxReloadEvents);
  // Oldest events aged out: the front of the log is a later publish, and
  // versions stay strictly ascending across the retained window.
  EXPECT_GT(events.front().version, 1u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].version, events[i - 1].version + 1);
  }
  EXPECT_EQ(events.back().version, 1u + publishes);

  const serve::ReloadStats totals = registry.reload_stats();
  EXPECT_EQ(totals.ok, 1u + publishes);  // totals survive the ring's bound
  EXPECT_EQ(totals.errors, 0u);
}

}  // namespace
}  // namespace noodle
