#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace noodle::nn {
namespace {

TEST(BceLoss, PerfectPredictionNearZero) {
  Matrix pred(2, 1);
  pred(0, 0) = 1.0 - 1e-9;
  pred(1, 0) = 1e-9;
  const std::vector<int> y = {1, 0};
  Matrix grad;
  EXPECT_LT(bce_loss(pred, y, grad), 1e-5);
}

TEST(BceLoss, KnownValue) {
  Matrix pred(1, 1);
  pred(0, 0) = 0.5;
  const std::vector<int> y = {1};
  Matrix grad;
  EXPECT_NEAR(bce_loss(pred, y, grad), std::log(2.0), 1e-9);
}

TEST(BceLoss, GradientMatchesFiniteDifference) {
  Matrix pred(3, 1);
  pred(0, 0) = 0.3;
  pred(1, 0) = 0.7;
  pred(2, 0) = 0.5;
  const std::vector<int> y = {1, 0, 1};
  Matrix grad;
  bce_loss(pred, y, grad);
  constexpr double kEps = 1e-6;
  for (std::size_t i = 0; i < 3; ++i) {
    Matrix up = pred, down = pred;
    up(i, 0) += kEps;
    down(i, 0) -= kEps;
    Matrix ignored;
    const double numeric =
        (bce_loss(up, y, ignored) - bce_loss(down, y, ignored)) / (2.0 * kEps);
    EXPECT_NEAR(grad(i, 0), numeric, 1e-5);
  }
}

TEST(BceLoss, RejectsBadInput) {
  Matrix pred(1, 2);
  const std::vector<int> one = {1};
  Matrix grad;
  EXPECT_THROW(bce_loss(pred, one, grad), std::invalid_argument);  // 2 columns
  Matrix ok(1, 1);
  const std::vector<int> bad_label = {2};
  EXPECT_THROW(bce_loss(ok, bad_label, grad), std::invalid_argument);
  const std::vector<int> two = {0, 1};
  EXPECT_THROW(bce_loss(ok, two, grad), std::invalid_argument);  // count mismatch
}

TEST(BceWithLogits, AgreesWithSigmoidPlusBce) {
  Matrix logits(3, 1);
  logits(0, 0) = -1.3;
  logits(1, 0) = 0.2;
  logits(2, 0) = 2.5;
  const std::vector<int> y = {0, 1, 1};
  Matrix grad_a, grad_b;
  const double direct = bce_with_logits_loss(logits, y, grad_a);
  const double indirect = bce_loss(sigmoid(logits), y, grad_b);
  EXPECT_NEAR(direct, indirect, 1e-9);
}

TEST(BceWithLogits, StableAtExtremeLogits) {
  Matrix logits(2, 1);
  logits(0, 0) = 500.0;
  logits(1, 0) = -500.0;
  const std::vector<int> y = {1, 0};
  Matrix grad;
  const double loss = bce_with_logits_loss(logits, y, grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-12);
  // Wrong labels at extremes: loss ~ |z|, still finite.
  const std::vector<int> wrong = {0, 1};
  const double big = bce_with_logits_loss(logits, wrong, grad);
  EXPECT_TRUE(std::isfinite(big));
  EXPECT_NEAR(big, 500.0, 1e-9);
}

TEST(BceWithLogits, GradientIsSigmoidMinusTarget) {
  Matrix logits(2, 1);
  logits(0, 0) = 0.0;
  logits(1, 0) = 1.0;
  const std::vector<int> y = {1, 0};
  Matrix grad;
  bce_with_logits_loss(logits, y, grad);
  EXPECT_NEAR(grad(0, 0), (0.5 - 1.0) / 2.0, 1e-12);
  const double s1 = 1.0 / (1.0 + std::exp(-1.0));
  EXPECT_NEAR(grad(1, 0), s1 / 2.0, 1e-12);
}

TEST(MseLoss, KnownValueAndGradient) {
  Matrix pred(1, 2);
  pred(0, 0) = 1.0;
  pred(0, 1) = 3.0;
  Matrix target(1, 2);
  target(0, 0) = 0.0;
  target(0, 1) = 0.0;
  Matrix grad;
  EXPECT_NEAR(mse_loss(pred, target, grad), (1.0 + 9.0) / 2.0, 1e-12);
  EXPECT_NEAR(grad(0, 0), 2.0 * 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(grad(0, 1), 2.0 * 3.0 / 2.0, 1e-12);
}

TEST(MseLoss, ShapeMismatchThrows) {
  Matrix a(1, 2), b(2, 1);
  Matrix grad;
  EXPECT_THROW(mse_loss(a, b, grad), std::invalid_argument);
}

TEST(SigmoidFn, KnownValues) {
  Matrix logits(1, 3);
  logits(0, 0) = 0.0;
  logits(0, 1) = 100.0;
  logits(0, 2) = -100.0;
  const Matrix s = sigmoid(logits);
  EXPECT_NEAR(s(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(s(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(s(0, 2), 0.0, 1e-12);
}

}  // namespace
}  // namespace noodle::nn
