// End-to-end tests of the experiment harness and the NoodleDetector public
// API, run on deliberately small configurations so ctest stays fast while
// still covering the full corpus -> features -> GAN -> CNN -> ICP -> fusion
// pipeline.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/experiment.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace noodle::core {
namespace {

ExperimentConfig small_experiment(std::uint64_t seed = 5) {
  ExperimentConfig config;
  config.seed = seed;
  config.corpus.design_count = 72;
  config.corpus.infected_fraction = 0.35;
  config.use_gan = true;
  config.gan_target_per_class = 40;
  config.gan.epochs = 30;
  config.fusion.train.epochs = 12;
  config.fusion.train.validation_fraction = 0.0;
  return config;
}

TEST(Experiment, RunsEndToEndWithSaneOutputs) {
  const ExperimentResult result = run_experiment(small_experiment());
  EXPECT_GT(result.test_size, 0u);
  EXPECT_EQ(result.test_labels.size(), result.test_size);
  for (const auto* arm : result.arms()) {
    EXPECT_EQ(arm->probabilities.size(), result.test_size);
    EXPECT_EQ(arm->p_values.size(), result.test_size);
    EXPECT_GE(arm->brier, 0.0);
    EXPECT_LE(arm->brier, 1.0);
    for (const double p : arm->probabilities) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
  EXPECT_TRUE(result.winner == "early_fusion" || result.winner == "late_fusion");
  EXPECT_EQ(&result.winning_arm(),
            result.winner == "early_fusion" ? &result.early_fusion
                                            : &result.late_fusion);
}

TEST(Experiment, DetectsBetterThanChance) {
  const ExperimentResult result = run_experiment(small_experiment(8));
  // Even the weaker arms must clearly beat coin-flipping on this corpus.
  EXPECT_GT(result.winning_arm().consolidated.auc, 0.7);
}

TEST(Experiment, DeterministicGivenSeed) {
  const ExperimentResult a = run_experiment(small_experiment(9));
  const ExperimentResult b = run_experiment(small_experiment(9));
  EXPECT_EQ(a.late_fusion.brier, b.late_fusion.brier);
  EXPECT_EQ(a.early_fusion.probabilities, b.early_fusion.probabilities);
  EXPECT_EQ(a.winner, b.winner);
}

TEST(Experiment, SeedChangesResults) {
  const ExperimentResult a = run_experiment(small_experiment(10));
  const ExperimentResult b = run_experiment(small_experiment(11));
  EXPECT_NE(a.late_fusion.probabilities, b.late_fusion.probabilities);
}

TEST(Experiment, GanOffStillRuns) {
  ExperimentConfig config = small_experiment(12);
  config.use_gan = false;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.test_size, 0u);
  EXPECT_LT(result.total_after_gan, 80u);  // no amplification happened
}

TEST(Experiment, MissingModalityPathWithImputation) {
  ExperimentConfig config = small_experiment(13);
  config.missing_graph_rate = 0.15;
  config.missing_tabular_rate = 0.1;
  config.impute_missing = true;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.test_size, 0u);
  EXPECT_GT(result.winning_arm().consolidated.auc, 0.6);
}

TEST(Experiment, MissingModalityPathWithDropping) {
  ExperimentConfig config = small_experiment(14);
  config.missing_graph_rate = 0.2;
  config.impute_missing = false;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.test_size, 0u);
}

// ---------------------------------------------------------------------------
// NoodleDetector
// ---------------------------------------------------------------------------

DetectorConfig small_detector_config() {
  DetectorConfig config;
  config.seed = 6;
  config.use_gan = true;
  config.gan_target_per_class = 40;
  config.gan.epochs = 30;
  config.fusion.train.epochs = 12;
  config.fusion.train.validation_fraction = 0.0;
  return config;
}

data::CorpusSpec small_corpus_spec(std::uint64_t seed = 21) {
  data::CorpusSpec spec;
  spec.design_count = 72;
  spec.infected_fraction = 0.35;
  spec.seed = seed;
  return spec;
}

TEST(Detector, FitAndScanInfectedVsClean) {
  NoodleDetector detector(small_detector_config());
  EXPECT_FALSE(detector.fitted());
  detector.fit(data::build_corpus(small_corpus_spec()));
  EXPECT_TRUE(detector.fitted());
  EXPECT_TRUE(detector.winning_fusion() == "early_fusion" ||
              detector.winning_fusion() == "late_fusion");

  // Score a held-out corpus: infected circuits must receive higher
  // probabilities than clean ones on average.
  const auto probe = data::build_corpus(small_corpus_spec(99));
  double infected_sum = 0.0, clean_sum = 0.0;
  std::size_t infected_count = 0, clean_count = 0;
  for (const auto& circuit : probe) {
    const DetectionReport report = detector.scan_verilog(circuit.verilog);
    EXPECT_GE(report.probability, 0.0);
    EXPECT_LE(report.probability, 1.0);
    EXPECT_EQ(report.fusion_used, detector.winning_fusion());
    if (circuit.infected) {
      infected_sum += report.probability;
      ++infected_count;
    } else {
      clean_sum += report.probability;
      ++clean_count;
    }
  }
  ASSERT_GT(infected_count, 0u);
  ASSERT_GT(clean_count, 0u);
  EXPECT_GT(infected_sum / static_cast<double>(infected_count),
            clean_sum / static_cast<double>(clean_count) + 0.1);
}

TEST(Detector, ReportFieldsConsistent) {
  NoodleDetector detector(small_detector_config());
  detector.fit(data::build_corpus(small_corpus_spec(31)));
  const auto probe = data::build_corpus(small_corpus_spec(32));
  const DetectionReport report = detector.scan_verilog(probe.front().verilog);
  EXPECT_EQ(report.predicted_label, report.region.point_prediction);
  EXPECT_EQ(report.p_values, report.region.p);
  EXPECT_GE(report.region.credibility, 0.0);
}

TEST(Detector, ScanBeforeFitThrows) {
  NoodleDetector detector(small_detector_config());
  EXPECT_THROW(detector.scan_verilog("module m (input a, output y); endmodule"),
               std::logic_error);
  EXPECT_THROW(detector.winning_fusion(), std::logic_error);
}

TEST(Detector, MalformedVerilogThrowsParseError) {
  NoodleDetector detector(small_detector_config());
  detector.fit(data::build_corpus(small_corpus_spec(41)));
  EXPECT_THROW(detector.scan_verilog("module broken ("), verilog::ParseError);
}

TEST(Detector, EmptyCorpusRejected) {
  NoodleDetector detector(small_detector_config());
  EXPECT_THROW(detector.fit({}), std::invalid_argument);
}

TEST(Detector, MoveSemantics) {
  NoodleDetector a(small_detector_config());
  a.fit(data::build_corpus(small_corpus_spec(51)));
  NoodleDetector b = std::move(a);
  EXPECT_TRUE(b.fitted());
  const auto probe = data::build_corpus(small_corpus_spec(52));
  EXPECT_NO_THROW(b.scan_verilog(probe.front().verilog));
}

}  // namespace
}  // namespace noodle::core
