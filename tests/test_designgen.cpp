#include "data/designgen.h"

#include <gtest/gtest.h>

#include "trojan/inserter.h"
#include "verilog/parser.h"

namespace noodle::data {
namespace {

struct FamilySeed {
  DesignFamily family;
  std::uint64_t seed;
};

class EveryFamily : public ::testing::TestWithParam<FamilySeed> {};

TEST_P(EveryFamily, GeneratesParseableVerilog) {
  util::Rng rng(GetParam().seed);
  const std::string source = generate_design(GetParam().family, "dut", rng);
  const verilog::Module m = verilog::parse_module(source);
  EXPECT_EQ(m.name, "dut");
  EXPECT_FALSE(m.ports.empty());
}

TEST_P(EveryFamily, HasAtLeastOneOutput) {
  util::Rng rng(GetParam().seed);
  const verilog::Module m =
      verilog::parse_module(generate_design(GetParam().family, "dut", rng));
  bool any_output = false;
  for (const auto& port : m.ports) {
    if (port.dir == verilog::PortDir::Output) any_output = true;
  }
  EXPECT_TRUE(any_output);
}

TEST_P(EveryFamily, ClockMatchesCombinationalFlag) {
  util::Rng rng(GetParam().seed);
  const verilog::Module m =
      verilog::parse_module(generate_design(GetParam().family, "dut", rng));
  EXPECT_EQ(trojan::has_clock(m), !is_combinational(GetParam().family));
}

std::vector<FamilySeed> cases() {
  std::vector<FamilySeed> out;
  for (const auto family : all_design_families()) {
    for (std::uint64_t seed : {1u, 7u, 99u}) out.push_back({family, seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EveryFamily, ::testing::ValuesIn(cases()));

TEST(DesignGen, DeterministicGivenSeed) {
  util::Rng a(5), b(5);
  EXPECT_EQ(generate_design(DesignFamily::Alu, "x", a),
            generate_design(DesignFamily::Alu, "x", b));
}

TEST(DesignGen, SeedsVaryStructure) {
  util::Rng a(1), b(2);
  EXPECT_NE(generate_design(DesignFamily::Fsm, "x", a),
            generate_design(DesignFamily::Fsm, "x", b));
}

TEST(DesignGen, FamilyNamesUnique) {
  std::set<std::string> names;
  for (const auto family : all_design_families()) {
    names.insert(to_string(family));
  }
  EXPECT_EQ(names.size(), kDesignFamilyCount);
}

TEST(DesignGen, CombinationalFamiliesIdentified) {
  EXPECT_TRUE(is_combinational(DesignFamily::Shifter));
  EXPECT_TRUE(is_combinational(DesignFamily::ComparatorBank));
  EXPECT_FALSE(is_combinational(DesignFamily::Counter));
  EXPECT_FALSE(is_combinational(DesignFamily::UartTx));
}

TEST(DesignGen, SequentialFamiliesHaveAlwaysBlocks) {
  for (const auto family : all_design_families()) {
    if (is_combinational(family)) continue;
    util::Rng rng(3);
    const verilog::Module m =
        verilog::parse_module(generate_design(family, "dut", rng));
    EXPECT_FALSE(m.always_blocks.empty()) << to_string(family);
  }
}

}  // namespace
}  // namespace noodle::data
