#include "data/corpus.h"

#include <gtest/gtest.h>

#include "verilog/parser.h"

namespace noodle::data {
namespace {

CorpusSpec small_spec(std::uint64_t seed = 1) {
  CorpusSpec spec;
  spec.design_count = 36;
  spec.infected_fraction = 0.4;
  spec.seed = seed;
  return spec;
}

TEST(Corpus, BuildsRequestedCount) {
  const auto corpus = build_corpus(small_spec());
  EXPECT_EQ(corpus.size(), 36u);
}

TEST(Corpus, EveryCircuitParses) {
  for (const auto& circuit : build_corpus(small_spec(3))) {
    EXPECT_NO_THROW(verilog::parse_module(circuit.verilog)) << circuit.name;
  }
}

TEST(Corpus, InfectionRateNearSpec) {
  CorpusSpec spec = small_spec(5);
  spec.design_count = 400;
  const auto corpus = build_corpus(spec);
  std::size_t infected = 0;
  for (const auto& c : corpus) infected += c.infected ? 1 : 0;
  const double rate = static_cast<double>(infected) / 400.0;
  EXPECT_NEAR(rate, 0.4, 0.07);
}

TEST(Corpus, FamiliesRotateRoundRobin) {
  const auto corpus = build_corpus(small_spec());
  EXPECT_EQ(corpus[0].family, all_design_families()[0]);
  EXPECT_EQ(corpus[12].family, all_design_families()[0]);
  EXPECT_EQ(corpus[1].family, all_design_families()[1]);
}

TEST(Corpus, NamesAreUnique) {
  const auto corpus = build_corpus(small_spec());
  std::set<std::string> names;
  for (const auto& c : corpus) names.insert(c.name);
  EXPECT_EQ(names.size(), corpus.size());
}

TEST(Corpus, DeterministicGivenSeed) {
  const auto a = build_corpus(small_spec(9));
  const auto b = build_corpus(small_spec(9));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].verilog, b[i].verilog);
    EXPECT_EQ(a[i].infected, b[i].infected);
  }
}

TEST(Corpus, SeedsProduceDifferentCorpora) {
  const auto a = build_corpus(small_spec(1));
  const auto b = build_corpus(small_spec(2));
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].verilog != b[i].verilog) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Corpus, TriggerPaletteRestrictionHolds) {
  CorpusSpec spec = small_spec(7);
  spec.design_count = 120;
  spec.allowed_triggers = {trojan::TriggerKind::TimeBomb};
  for (const auto& c : build_corpus(spec)) {
    if (c.infected) {
      // CheatCode is the legal fallback for clockless designs.
      EXPECT_TRUE(c.trigger == trojan::TriggerKind::TimeBomb ||
                  c.trigger == trojan::TriggerKind::CheatCode);
    }
  }
}

TEST(Corpus, ZeroInfectionFractionAllClean) {
  CorpusSpec spec = small_spec();
  spec.infected_fraction = 0.0;
  for (const auto& c : build_corpus(spec)) EXPECT_FALSE(c.infected);
}

TEST(Corpus, FullInfectionFractionAllInfected) {
  CorpusSpec spec = small_spec();
  spec.infected_fraction = 1.0;
  for (const auto& c : build_corpus(spec)) EXPECT_TRUE(c.infected);
}

TEST(Corpus, RejectsBadSpecs) {
  CorpusSpec spec = small_spec();
  spec.design_count = 0;
  EXPECT_THROW(build_corpus(spec), std::invalid_argument);

  spec = small_spec();
  spec.infected_fraction = 1.5;
  EXPECT_THROW(build_corpus(spec), std::invalid_argument);

  spec = small_spec();
  spec.allowed_triggers.clear();
  EXPECT_THROW(build_corpus(spec), std::invalid_argument);
}

TEST(Corpus, LookalikesDoNotChangeLabels) {
  CorpusSpec with = small_spec(13);
  with.benign_lookalike_fraction = 1.0;
  CorpusSpec without = small_spec(13);
  without.benign_lookalike_fraction = 0.0;
  const auto a = build_corpus(with);
  const auto b = build_corpus(without);
  // Same infection decisions (same seed-driven draws for labels)...
  std::size_t infected_a = 0, infected_b = 0;
  for (const auto& c : a) infected_a += c.infected;
  for (const auto& c : b) infected_b += c.infected;
  // ...labels may differ slightly because the RNG stream shifts, but both
  // corpora must contain a mix of labels regardless of lookalikes.
  EXPECT_GT(infected_a, 0u);
  EXPECT_GT(infected_b, 0u);
  EXPECT_LT(infected_a, a.size());
  EXPECT_LT(infected_b, b.size());
}

}  // namespace
}  // namespace noodle::data
