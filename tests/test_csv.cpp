#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace noodle::util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("noodle_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvTest, RoundTripSimpleTable) {
  CsvTable table;
  table.header = {"a", "b", "c"};
  table.rows = {{"1", "2", "3"}, {"x", "y", "z"}};
  write_csv(path_, table);
  const CsvTable read = read_csv(path_);
  EXPECT_EQ(read.header, table.header);
  EXPECT_EQ(read.rows, table.rows);
}

TEST_F(CsvTest, RoundTripQuotedCells) {
  CsvTable table;
  table.header = {"text"};
  table.rows = {{"hello, world"}, {"line\nbreak"}, {"quote\"inside"}};
  write_csv(path_, table);
  const CsvTable read = read_csv(path_);
  EXPECT_EQ(read.rows, table.rows);
}

TEST_F(CsvTest, EmptyCellsPreserved) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"", "v"}, {"v", ""}};
  write_csv(path_, table);
  EXPECT_EQ(read_csv(path_).rows, table.rows);
}

TEST_F(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/definitely/not/here.csv"), std::runtime_error);
}

TEST(Csv, ColumnLookup) {
  CsvTable table;
  table.header = {"alpha", "beta"};
  EXPECT_EQ(table.column("alpha"), 0u);
  EXPECT_EQ(table.column("beta"), 1u);
  EXPECT_THROW(table.column("gamma"), std::out_of_range);
}

TEST(Csv, EscapePlainCellUnchanged) { EXPECT_EQ(csv_escape("plain"), "plain"); }

TEST(Csv, EscapeComma) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(Csv, EscapeQuotesDoubled) { EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\""); }

TEST(Csv, FormatFixedDigits) {
  EXPECT_EQ(format_fixed(0.15894, 4), "0.1589");
  EXPECT_EQ(format_fixed(1.0, 2), "1.00");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace noodle::util
