// The crash-loop harness: child processes hammer the persistence layer
// (util::AtomicFile state files, serve::PersistentVerdictCache stores) and
// are SIGKILLed mid-flight, repeatedly — the in-repo equivalent of the CI
// smoke's `kill -9` loop. After every kill the survivor state must satisfy
// the crash-safety contract:
//
//   * an AtomicFile target holds a complete previous or complete new
//     payload — never a torn one;
//   * a reopened verdict cache classifies zero records as corrupt (temps
//     swept, yes; torn records, never) and every surviving record serves a
//     verdict bit-identical to what the killed writer stored.
//
// POSIX-only by construction (fork/kill/waitpid), like the serving stack.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/fitted_model.h"
#include "feat/featurize.h"
#include "serve/disk_cache.h"
#include "util/atomic_file.h"
#include "util/binary_io.h"
#include "util/rng.h"

namespace fs = std::filesystem;
using noodle::core::DetectionReport;
using noodle::serve::DiskCacheConfig;
using noodle::serve::DiskCacheStats;
using noodle::serve::PersistentVerdictCache;
using noodle::util::AtomicFile;

namespace {

constexpr int kKillCycles = 24;  // acceptance floor is 20
constexpr std::size_t kSourceCount = 64;

std::string source_for(std::size_t i) {
  return "module crash_loop_" + std::to_string(i) + "; endmodule";
}

PersistentVerdictCache::Key key_for(std::size_t i) {
  return {noodle::feat::kFeatureVersion, 0xc0ffee0000000000ull,
          noodle::util::fnv1a64(source_for(i))};
}

/// Deterministic per-index verdict: the parent can reconstruct exactly what
/// the killed child stored and assert bit-identity.
DetectionReport report_for(std::size_t i) {
  DetectionReport report;
  report.predicted_label = static_cast<int>(i % 2);
  report.probability = static_cast<double>(i) / kSourceCount;
  report.p_values = {static_cast<double>(i) / 128.0, 1.0 - static_cast<double>(i) / 128.0};
  report.region.p = report.p_values;
  report.region.contains = {i % 2 == 0, i % 2 == 1};
  report.region.point_prediction = static_cast<int>(i % 2);
  report.region.confidence = 0.90625;
  report.region.credibility = static_cast<double>(i) / 256.0;
  report.fusion_used = i % 2 == 0 ? "early_fusion" : "late_fusion";
  return report;
}

/// Runs `child` in a fork, sleeps `delay_us`, SIGKILLs it, reaps it.
/// Returns false if the child exited cleanly before the kill (still fine —
/// it just means the work loop finished early).
void kill_after(void (*child)(const fs::path&), const fs::path& dir,
                unsigned delay_us) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    child(dir);     // never returns into gtest
    _exit(0);       // unreachable for the infinite work loops below
  }
  ::usleep(delay_us);
  ::kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
}

// --- child work loops ------------------------------------------------------

/// Endlessly republishes a self-validating state file: "<n>:" then n 'x's.
void atomic_file_worker(const fs::path& dir) {
  for (std::size_t n = 0;; n = (n + 7) % 4096) {
    AtomicFile file(dir / "state");
    std::string payload = std::to_string(n) + ":";
    payload.append(n, 'x');
    if (!file.write(payload)) _exit(1);
    if (file.commit()) _exit(1);
  }
}

/// Endlessly stores verdicts (flushing so records actually reach disk while
/// the process lives on borrowed time).
void disk_cache_worker(const fs::path& dir) {
  DiskCacheConfig config;
  config.directory = dir;
  PersistentVerdictCache cache(config);
  if (cache.degraded()) _exit(1);
  for (std::size_t i = 0;; ++i) {
    const std::size_t slot = i % kSourceCount;
    cache.store(key_for(slot), source_for(slot), report_for(slot));
    if (i % 4 == 3) cache.flush();
  }
}

// ---------------------------------------------------------------------------

class CrashLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("noodle_crash_loop_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(CrashLoopTest, AtomicFileNeverTorn) {
  noodle::util::Rng rng(20240808);
  std::size_t observed_generations = 0;
  for (int cycle = 0; cycle < kKillCycles; ++cycle) {
    kill_after(atomic_file_worker, dir_,
               1000 + static_cast<unsigned>(rng.uniform_int(0, 25000)));
    // Survivor state: target absent (killed before the first commit) or a
    // complete self-consistent payload. Anything torn fails here.
    const fs::path target = dir_ / "state";
    if (fs::exists(target)) {
      std::ifstream in(target, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string bytes = buffer.str();
      const std::size_t colon = bytes.find(':');
      ASSERT_NE(colon, std::string::npos) << "torn payload: no header";
      const std::size_t n = std::stoul(bytes.substr(0, colon));
      ASSERT_EQ(bytes.size(), colon + 1 + n) << "torn payload: wrong length";
      ASSERT_EQ(bytes.find_first_not_of('x', colon + 1), std::string::npos);
      ++observed_generations;
    }
  }
  EXPECT_GT(observed_generations, 0u) << "no kill cycle ever published a file";
  // Crash-orphaned temps are expected debris; the scanner-side sweep is the
  // disk cache's job, here we only assert they are recognizable as temps.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename() == "state") continue;
    EXPECT_TRUE(AtomicFile::is_temp_path(entry.path()))
        << "unexpected survivor: " << entry.path();
  }
}

TEST_F(CrashLoopTest, DiskCacheZeroTornRecordsAcrossKills) {
  noodle::util::Rng rng(424242);
  std::uint64_t total_swept = 0;
  for (int cycle = 0; cycle < kKillCycles; ++cycle) {
    kill_after(disk_cache_worker, dir_,
               2000 + static_cast<unsigned>(rng.uniform_int(0, 40000)));
    // Every restart must serve: reopen, demand zero corruption, and verify
    // each surviving record answers bit-identically to what was stored.
    DiskCacheConfig config;
    config.directory = dir_;
    PersistentVerdictCache survivor(config);
    const DiskCacheStats stats = survivor.stats();
    ASSERT_FALSE(stats.degraded);
    ASSERT_EQ(stats.corrupt, 0u)
        << "cycle " << cycle << ": a SIGKILL produced a torn/corrupt record";
    total_swept += stats.temps_swept;
    std::size_t verified = 0;
    for (std::size_t i = 0; i < kSourceCount; ++i) {
      DetectionReport got;
      if (!survivor.lookup(key_for(i), source_for(i), got)) continue;
      const DetectionReport want = report_for(i);
      ASSERT_EQ(got.predicted_label, want.predicted_label);
      ASSERT_EQ(got.probability, want.probability);
      ASSERT_EQ(got.p_values, want.p_values);
      ASSERT_EQ(got.region.credibility, want.region.credibility);
      ASSERT_EQ(got.fusion_used, want.fusion_used);
      ++verified;
    }
    ASSERT_EQ(verified, stats.loaded)
        << "cycle " << cycle << ": an indexed record failed verification";
  }
  // With 24 kills at these delays the cache cannot still be empty, and at
  // least some kill should have landed mid-publish (sweeping a temp proves
  // the kill window really does intersect the commit sequence).
  DiskCacheConfig config;
  config.directory = dir_;
  PersistentVerdictCache final_check(config);
  EXPECT_GT(final_check.stats().loaded, 0u) << "no store ever survived a kill";
  (void)total_swept;  // informative only: kills between commits leave no temp
}

TEST_F(CrashLoopTest, WarmRecordsKeepServingWhileKillsContinue) {
  // Seed a warm set cleanly, then crash-loop writers on the same directory:
  // the warm records must remain hit-able after every kill.
  {
    DiskCacheConfig config;
    config.directory = dir_;
    PersistentVerdictCache cache(config);
    for (std::size_t i = 0; i < 8; ++i) {
      cache.store(key_for(i), source_for(i), report_for(i));
    }
    cache.flush();
    ASSERT_EQ(cache.stats().stores, 8u);
  }
  noodle::util::Rng rng(7);
  for (int cycle = 0; cycle < kKillCycles; ++cycle) {
    kill_after(disk_cache_worker, dir_,
               1000 + static_cast<unsigned>(rng.uniform_int(0, 20000)));
    DiskCacheConfig config;
    config.directory = dir_;
    PersistentVerdictCache survivor(config);
    ASSERT_EQ(survivor.stats().corrupt, 0u);
    for (std::size_t i = 0; i < 8; ++i) {
      DetectionReport got;
      ASSERT_TRUE(survivor.lookup(key_for(i), source_for(i), got))
          << "cycle " << cycle << ": warm record " << i << " stopped serving";
      ASSERT_EQ(got.probability, report_for(i).probability);
    }
  }
}

}  // namespace
