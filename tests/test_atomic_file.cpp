// util::AtomicFile + util::FaultInjector — the crash-safety contract,
// exercised at every commit step: short writes, injected EIO/ENOSPC on
// fsync/rename/dirsync, and crash-point callbacks that inspect the on-disk
// state at the exact instants a power loss could interrupt the sequence.
// The invariant under test throughout: the target path either holds its
// previous complete contents or the new complete contents, never anything
// else, and a failed or abandoned commit leaves no temp file behind.

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/atomic_file.h"
#include "util/fault_injector.h"

namespace fs = std::filesystem;
using noodle::util::AtomicFile;
using noodle::util::FaultInjector;

namespace {

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("noodle_atomic_file_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    target_ = dir_ / "state.txt";
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string read_target() const {
    std::ifstream in(target_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  /// Temp files visible next to the target right now.
  std::size_t temp_count() const {
    std::size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (AtomicFile::is_temp_path(entry.path())) ++count;
    }
    return count;
  }

  fs::path dir_;
  fs::path target_;
};

TEST_F(AtomicFileTest, CommitPublishesExactBytes) {
  AtomicFile file(target_);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file.write("hello "));
  EXPECT_TRUE(file.write("world"));
  EXPECT_FALSE(fs::exists(target_)) << "target must not appear before commit";
  EXPECT_FALSE(file.commit());
  EXPECT_TRUE(file.committed());
  EXPECT_EQ(read_target(), "hello world");
  EXPECT_EQ(temp_count(), 0u);
}

TEST_F(AtomicFileTest, CommitIsIdempotent) {
  AtomicFile file(target_);
  file.write("once");
  EXPECT_FALSE(file.commit());
  EXPECT_FALSE(file.commit());  // second commit: success again, no rewrite
  EXPECT_EQ(read_target(), "once");
}

TEST_F(AtomicFileTest, DestructionWithoutCommitLeavesNothing) {
  {
    AtomicFile file(target_);
    file.write("abandoned");
    EXPECT_EQ(temp_count(), 1u);
  }
  EXPECT_FALSE(fs::exists(target_));
  EXPECT_EQ(temp_count(), 0u);
}

TEST_F(AtomicFileTest, FailedCommitPreservesPreviousContents) {
  {
    AtomicFile first(target_);
    first.write("generation 1");
    ASSERT_FALSE(first.commit());
  }
  FaultInjector faults;
  faults.fail_point("atomic_file.fsync", EIO);
  FaultInjector::Arm armed(faults);
  AtomicFile second(target_);
  second.write("generation 2");
  const std::error_code ec = second.commit();
  EXPECT_EQ(ec.value(), EIO);
  EXPECT_EQ(read_target(), "generation 1") << "old target must survive the failure";
  EXPECT_EQ(temp_count(), 0u);
}

TEST_F(AtomicFileTest, InjectedOpenFailure) {
  FaultInjector faults;
  faults.fail_point("atomic_file.open", EACCES);
  FaultInjector::Arm armed(faults);
  AtomicFile file(target_);
  EXPECT_FALSE(file.ok());
  EXPECT_EQ(file.error().value(), EACCES);
  EXPECT_FALSE(file.write("ignored"));
  EXPECT_EQ(file.commit().value(), EACCES);  // latched error surfaces
}

TEST_F(AtomicFileTest, ShortWriteThenPersistentError) {
  FaultInjector faults;
  faults.short_write("atomic_file.write", 4, ENOSPC);
  FaultInjector::Arm armed(faults);
  AtomicFile file(target_);
  ASSERT_TRUE(file.ok());
  // 10 bytes against a 4-byte budget: the first chunk lands short, the
  // retry finds the budget exhausted and surfaces the scripted errno.
  EXPECT_FALSE(file.write("0123456789"));
  EXPECT_EQ(file.error().value(), ENOSPC);
  EXPECT_EQ(file.commit().value(), ENOSPC);
  EXPECT_FALSE(fs::exists(target_));
  EXPECT_EQ(temp_count(), 0u);
}

TEST_F(AtomicFileTest, InjectedRenameFailure) {
  FaultInjector faults;
  faults.fail_point("atomic_file.rename", EIO);
  FaultInjector::Arm armed(faults);
  AtomicFile file(target_);
  file.write("payload");
  const std::error_code ec = file.commit();
  EXPECT_EQ(ec.value(), EIO);
  EXPECT_FALSE(file.committed());
  EXPECT_FALSE(fs::exists(target_));
  EXPECT_EQ(temp_count(), 0u) << "failed rename must clean its temp";
}

TEST_F(AtomicFileTest, DirsyncFailureReportsButTargetIsLive) {
  // The rename already happened when dirsync fails: the new file IS the
  // target (readers see it), but the caller is told durability is suspect.
  FaultInjector faults;
  faults.fail_point("atomic_file.dirsync", EIO);
  FaultInjector::Arm armed(faults);
  AtomicFile file(target_);
  file.write("live but maybe not durable");
  const std::error_code ec = file.commit();
  EXPECT_EQ(ec.value(), EIO);
  EXPECT_TRUE(file.committed());
  EXPECT_EQ(read_target(), "live but maybe not durable");
}

TEST_F(AtomicFileTest, CrashPointBeforeFsyncSeesTempNotTarget) {
  FaultInjector faults;
  bool observed = false;
  faults.crash_point("atomic_file.before_fsync", [&] {
    observed = true;
    EXPECT_FALSE(fs::exists(target_));
    EXPECT_EQ(temp_count(), 1u);
  });
  FaultInjector::Arm armed(faults);
  AtomicFile file(target_);
  file.write("x");
  EXPECT_FALSE(file.commit());
  EXPECT_TRUE(observed);
}

TEST_F(AtomicFileTest, CrashPointBeforeRenameSeesDurableTempOldTarget) {
  {
    AtomicFile first(target_);
    first.write("old");
    ASSERT_FALSE(first.commit());
  }
  FaultInjector faults;
  bool observed = false;
  faults.crash_point("atomic_file.before_rename", [&] {
    observed = true;
    // A power loss here: the temp's bytes are fsynced, the target is the
    // previous generation — restart sweeps the temp, nothing torn.
    EXPECT_EQ(read_target(), "old");
    EXPECT_EQ(temp_count(), 1u);
  });
  FaultInjector::Arm armed(faults);
  AtomicFile file(target_);
  file.write("new");
  EXPECT_FALSE(file.commit());
  EXPECT_TRUE(observed);
  EXPECT_EQ(read_target(), "new");
}

TEST_F(AtomicFileTest, CrashPointAfterRenameSeesNewTarget) {
  FaultInjector faults;
  bool observed = false;
  faults.crash_point("atomic_file.after_rename", [&] {
    observed = true;
    EXPECT_EQ(read_target(), "published");
    EXPECT_EQ(temp_count(), 0u);
  });
  FaultInjector::Arm armed(faults);
  AtomicFile file(target_);
  file.write("published");
  EXPECT_FALSE(file.commit());
  EXPECT_TRUE(observed);
}

TEST_F(AtomicFileTest, CrashHookThrowAbandonsCommit) {
  // A throwing hook models the process dying at the crash point: commit()
  // never completes, and RAII abort must still clean the temp up.
  FaultInjector faults;
  faults.crash_point("atomic_file.before_rename", [] { throw std::runtime_error("crash"); });
  {
    FaultInjector::Arm armed(faults);
    AtomicFile file(target_);
    file.write("never lands");
    EXPECT_THROW(file.commit(), std::runtime_error);
  }
  EXPECT_FALSE(fs::exists(target_));
  EXPECT_EQ(temp_count(), 0u);
}

TEST_F(AtomicFileTest, FailPointTimesBudget) {
  FaultInjector faults;
  faults.fail_point("atomic_file.fsync", EIO, 1);  // fail once, then recover
  FaultInjector::Arm armed(faults);
  {
    AtomicFile first(target_);
    first.write("attempt 1");
    EXPECT_EQ(first.commit().value(), EIO);
  }
  {
    AtomicFile second(target_);
    second.write("attempt 2");
    EXPECT_FALSE(second.commit());
  }
  EXPECT_EQ(read_target(), "attempt 2");
  EXPECT_GE(faults.hits("atomic_file.fsync"), 2u);
}

TEST_F(AtomicFileTest, OnlyOneInjectorArmsAtATime) {
  FaultInjector first;
  FaultInjector second;
  FaultInjector::Arm armed(first);
  EXPECT_THROW(FaultInjector::Arm double_armed(second), std::logic_error);
  EXPECT_EQ(FaultInjector::active(), &first);
}

TEST_F(AtomicFileTest, DisarmedInjectorCostsNothing) {
  EXPECT_EQ(FaultInjector::active(), nullptr);
  AtomicFile file(target_);
  file.write("plain");
  EXPECT_FALSE(file.commit());
  EXPECT_EQ(read_target(), "plain");
}

TEST(AtomicFileTempPath, RecognizesOwnScheme) {
  EXPECT_TRUE(AtomicFile::is_temp_path("metrics.prom.tmp.1234.0"));
  EXPECT_TRUE(AtomicFile::is_temp_path("/a/b/x.ndc.tmp.99.107"));
  EXPECT_FALSE(AtomicFile::is_temp_path("metrics.prom"));
  EXPECT_FALSE(AtomicFile::is_temp_path("x.tmp"));
  EXPECT_FALSE(AtomicFile::is_temp_path("x.tmp.12"));         // missing counter
  EXPECT_FALSE(AtomicFile::is_temp_path("x.tmp.12.34.56"));   // too many fields
  EXPECT_FALSE(AtomicFile::is_temp_path("x.tmp.12.abc"));     // non-digits
  EXPECT_FALSE(AtomicFile::is_temp_path("x.tmp.pid.0"));
}

TEST(AtomicFileTempPath, LiveTempMatchesScheme) {
  const fs::path dir = fs::temp_directory_path() / "noodle_atomic_file_scheme";
  fs::create_directories(dir);
  {
    AtomicFile file(dir / "target");
    EXPECT_TRUE(AtomicFile::is_temp_path(file.temp_path()));
    file.abort();
  }
  fs::remove_all(dir);
}

}  // namespace
