// serve::PersistentVerdictCache — the disk verdict tier's durability and
// corruption contract. The centerpiece is the corruption matrix: every way
// a record file can go bad (truncation, payload bit flip, checksum bit
// flip, stale feature version, stale/mismatched key, zero-length, foreign
// file) is planted on disk and must be (a) skipped without throwing,
// (b) counted under its own reason, and (c) for our own records, removed.
// Plus: store/lookup round-trips, full-source collision defense, byte-
// bounded LRU eviction, queue-overflow drops, fault-injected degradation,
// and the runtime persist toggle.

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "core/fitted_model.h"
#include "feat/featurize.h"
#include "serve/disk_cache.h"
#include "util/binary_io.h"
#include "util/fault_injector.h"

namespace fs = std::filesystem;
using noodle::core::DetectionReport;
using noodle::serve::DiskCacheConfig;
using noodle::serve::DiskCacheSkip;
using noodle::serve::DiskCacheStats;
using noodle::serve::PersistentVerdictCache;
using noodle::util::FaultInjector;

namespace {

std::uint64_t skip_count(const DiskCacheStats& stats, DiskCacheSkip reason) {
  return stats.skipped[static_cast<std::size_t>(reason)];
}

/// A fully-populated verdict whose fields are all distinctive, so a
/// round-trip that drops or reorders any field fails loudly.
DetectionReport sample_report(double salt = 0.0) {
  DetectionReport report;
  report.predicted_label = 1;
  report.probability = 0.875 + salt;
  report.p_values = {0.03125, 0.9375};
  report.region.p = {0.03125, 0.9375};
  report.region.contains = {false, true};
  report.region.point_prediction = 1;
  report.region.confidence = 0.96875;
  report.region.credibility = 0.9375;
  report.fusion_used = "late_fusion";
  return report;
}

void expect_same_verdict(const DetectionReport& got, const DetectionReport& want) {
  EXPECT_EQ(got.predicted_label, want.predicted_label);
  EXPECT_EQ(got.probability, want.probability);
  EXPECT_EQ(got.p_values, want.p_values);
  EXPECT_EQ(got.region.p, want.region.p);
  EXPECT_EQ(got.region.contains, want.region.contains);
  EXPECT_EQ(got.region.point_prediction, want.region.point_prediction);
  EXPECT_EQ(got.region.confidence, want.region.confidence);
  EXPECT_EQ(got.region.credibility, want.region.credibility);
  EXPECT_EQ(got.fusion_used, want.fusion_used);
  // Stamped by the service, never trusted from disk:
  EXPECT_TRUE(got.served_by.empty());
  EXPECT_FALSE(got.lint_ran);
  EXPECT_EQ(got.timing.total_us, 0u);
}

class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("noodle_disk_cache_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    config_.directory = dir_;
  }
  void TearDown() override { fs::remove_all(dir_); }

  PersistentVerdictCache::Key key_for(const std::string& source,
                                      std::uint64_t digest = 0x1122334455667788ull) {
    return {noodle::feat::kFeatureVersion, digest, noodle::util::fnv1a64(source)};
  }

  /// Stores one entry and waits until it is durably on disk.
  void store_flushed(PersistentVerdictCache& cache, const std::string& source,
                     const DetectionReport& report,
                     std::uint64_t digest = 0x1122334455667788ull) {
    cache.store(key_for(source, digest), source, report);
    cache.flush();
  }

  fs::path record_path(const PersistentVerdictCache::Key& key) const {
    return dir_ / PersistentVerdictCache::record_filename(key);
  }

  fs::path dir_;
  DiskCacheConfig config_;
};

TEST_F(DiskCacheTest, StoreThenLookupRoundTrips) {
  PersistentVerdictCache cache(config_);
  const std::string source = "module m; endmodule";
  const DetectionReport want = sample_report();
  store_flushed(cache, source, want);

  DetectionReport got;
  ASSERT_TRUE(cache.lookup(key_for(source), source, got));
  expect_same_verdict(got, want);
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_TRUE(fs::exists(record_path(key_for(source))));
}

TEST_F(DiskCacheTest, SurvivesRestart) {
  const std::string source = "module persisted; endmodule";
  const DetectionReport want = sample_report();
  {
    PersistentVerdictCache cache(config_);
    store_flushed(cache, source, want);
  }
  PersistentVerdictCache reopened(config_);
  const DiskCacheStats stats = reopened.stats();
  EXPECT_EQ(stats.loaded, 1u);
  EXPECT_EQ(stats.corrupt, 0u);
  DetectionReport got;
  ASSERT_TRUE(reopened.lookup(key_for(source), source, got));
  expect_same_verdict(got, want);
}

TEST_F(DiskCacheTest, CleanShutdownDrainsTheWriterQueueBeforeExit) {
  // A clean exit must publish every store already handed to the writer —
  // no flush() call, destruction alone is the drain barrier. (Only a crash
  // may lose queued entries; noodled's drain path relies on this.)
  constexpr int kStores = 64;
  const auto source_for = [](int i) {
    return "module drained_" + std::to_string(i) + "; endmodule";
  };
  {
    PersistentVerdictCache cache(config_);
    for (int i = 0; i < kStores; ++i) {
      const std::string source = source_for(i);
      cache.store(key_for(source, 0x9000u + static_cast<std::uint64_t>(i)),
                  source, sample_report());
    }
  }
  PersistentVerdictCache reopened(config_);
  EXPECT_EQ(reopened.stats().loaded, static_cast<std::uint64_t>(kStores));
  for (int i = 0; i < kStores; ++i) {
    const std::string source = source_for(i);
    DetectionReport got;
    ASSERT_TRUE(reopened.lookup(
        key_for(source, 0x9000u + static_cast<std::uint64_t>(i)), source, got))
        << "store " << i << " lost by shutdown";
  }
}

TEST_F(DiskCacheTest, MissOnAbsentKey) {
  PersistentVerdictCache cache(config_);
  DetectionReport got;
  EXPECT_FALSE(cache.lookup(key_for("never stored"), "never stored", got));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(DiskCacheTest, FullSourceCollisionIsRejected) {
  PersistentVerdictCache cache(config_);
  const std::string source = "module a; endmodule";
  store_flushed(cache, source, sample_report());
  // Same key (forced: identical hash inputs), different bytes — the verdict
  // must NOT be served for the other circuit.
  DetectionReport got;
  EXPECT_FALSE(cache.lookup(key_for(source), "module b; endmodule", got));
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.collisions, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST_F(DiskCacheTest, LintBearingReportsAreRefused) {
  PersistentVerdictCache cache(config_);
  DetectionReport linted = sample_report();
  linted.lint_ran = true;
  cache.store(key_for("m"), "m", linted);
  cache.flush();
  EXPECT_EQ(cache.stats().stores, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// --------------------------------------------------------------------------
// The corruption matrix. Each case plants one kind of bad file, reopens the
// cache, and asserts the scanner classified it under exactly its reason.
// --------------------------------------------------------------------------

class DiskCacheCorruptionTest : public DiskCacheTest {
 protected:
  /// Writes one good record and returns its path.
  fs::path plant_good_record(const std::string& source = "module good; endmodule") {
    PersistentVerdictCache cache(config_);
    store_flushed(cache, source, sample_report());
    return record_path(key_for(source));
  }

  /// Reopens the cache and returns the scanner's verdict counters.
  DiskCacheStats rescan() {
    PersistentVerdictCache cache(config_);
    return cache.stats();
  }

  void flip_byte(const fs::path& path, std::size_t offset_from_end) {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file);
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    ASSERT_GT(size, static_cast<std::streamoff>(offset_from_end));
    const std::streamoff pos = size - static_cast<std::streamoff>(offset_from_end) - 1;
    file.seekg(pos);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(pos);
    file.write(&byte, 1);
  }
};

TEST_F(DiskCacheCorruptionTest, TruncatedRecord) {
  const fs::path path = plant_good_record();
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  const DiskCacheStats stats = rescan();
  EXPECT_EQ(skip_count(stats, DiskCacheSkip::kTruncated), 1u);
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_FALSE(fs::exists(path)) << "unserveable own record must be removed";
}

TEST_F(DiskCacheCorruptionTest, BitFlippedPayload) {
  const fs::path path = plant_good_record();
  // Somewhere in the middle of the body — past the prefix, before the
  // checksum.
  flip_byte(path, fs::file_size(path) / 2);
  const DiskCacheStats stats = rescan();
  EXPECT_EQ(skip_count(stats, DiskCacheSkip::kChecksum), 1u);
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(stats.loaded, 0u);
}

TEST_F(DiskCacheCorruptionTest, BitFlippedChecksum) {
  const fs::path path = plant_good_record();
  flip_byte(path, 3);  // inside the trailing 8-byte checksum
  const DiskCacheStats stats = rescan();
  EXPECT_EQ(skip_count(stats, DiskCacheSkip::kChecksum), 1u);
  EXPECT_EQ(stats.corrupt, 1u);
}

TEST_F(DiskCacheCorruptionTest, StaleFeatureVersion) {
  // A record written by a build with an older featurizer: properly framed
  // and checksummed, but its features mean something else now.
  const std::string source = "module stale; endmodule";
  {
    PersistentVerdictCache cache(config_);
    PersistentVerdictCache::Key old_key{noodle::feat::kFeatureVersion - 1,
                                        0x1122334455667788ull,
                                        noodle::util::fnv1a64(source)};
    cache.store(old_key, source, sample_report());
    cache.flush();
  }
  const DiskCacheStats stats = rescan();
  EXPECT_EQ(skip_count(stats, DiskCacheSkip::kStaleFeature), 1u);
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(stats.loaded, 0u);
}

TEST_F(DiskCacheCorruptionTest, StaleModelDigestKeyMismatch) {
  // A record renamed to another model digest's filename (tampering, or a
  // copy aimed at poisoning another model's cache): the header key echo
  // disagrees with the filename and the record must not serve.
  const std::string source = "module renamed; endmodule";
  const fs::path path = plant_good_record(source);
  PersistentVerdictCache::Key other = key_for(source, 0xdeadbeefdeadbeefull);
  fs::rename(path, record_path(other));
  const DiskCacheStats stats = rescan();
  EXPECT_EQ(skip_count(stats, DiskCacheSkip::kKeyMismatch), 1u);
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(stats.loaded, 0u);
}

TEST_F(DiskCacheCorruptionTest, ZeroLengthRecord) {
  fs::create_directories(dir_);
  const fs::path path = record_path(key_for("module empty; endmodule"));
  std::ofstream(path, std::ios::binary).close();
  const DiskCacheStats stats = rescan();
  EXPECT_EQ(skip_count(stats, DiskCacheSkip::kEmpty), 1u);
  EXPECT_EQ(stats.corrupt, 1u);
}

TEST_F(DiskCacheCorruptionTest, ForeignFileLeftAlone) {
  fs::create_directories(dir_);
  const fs::path foreign = dir_ / "README.txt";
  std::ofstream(foreign) << "operator notes, not a record";
  const DiskCacheStats stats = rescan();
  EXPECT_EQ(skip_count(stats, DiskCacheSkip::kForeign), 1u);
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_TRUE(fs::exists(foreign)) << "files we did not write are not ours to delete";
}

TEST_F(DiskCacheCorruptionTest, ForeignMagicUnderRecordName) {
  // Right filename shape, alien bytes (another tool's file copied in).
  fs::create_directories(dir_);
  const fs::path path = record_path(key_for("module alien; endmodule"));
  std::ofstream(path, std::ios::binary) << "GIF89a definitely not a verdict record";
  const DiskCacheStats stats = rescan();
  EXPECT_EQ(skip_count(stats, DiskCacheSkip::kForeign), 1u);
  EXPECT_EQ(stats.corrupt, 1u);
}

TEST_F(DiskCacheCorruptionTest, OrphanedTempIsSweptNotCorrupt) {
  fs::create_directories(dir_);
  const fs::path temp = dir_ / "0000000a-b-c.ndc.tmp.1234.7";
  std::ofstream(temp, std::ios::binary) << "half-written";
  const DiskCacheStats stats = rescan();
  EXPECT_EQ(stats.temps_swept, 1u);
  EXPECT_EQ(stats.corrupt, 0u) << "a swept temp is a non-event, not corruption";
  EXPECT_FALSE(fs::exists(temp));
}

TEST_F(DiskCacheCorruptionTest, RuntimeCorruptionExpelsEntry) {
  // The record goes bad AFTER being indexed: lookup must expel it, count
  // it, and miss — never crash or serve garbage.
  const std::string source = "module runtime; endmodule";
  const fs::path path = [&] {
    PersistentVerdictCache cache(config_);
    store_flushed(cache, source, sample_report());
    return record_path(key_for(source));
  }();
  PersistentVerdictCache cache(config_);
  ASSERT_EQ(cache.stats().loaded, 1u);
  flip_byte(path, fs::file_size(path) / 2);
  DetectionReport got;
  EXPECT_FALSE(cache.lookup(key_for(source), source, got));
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(skip_count(stats, DiskCacheSkip::kChecksum), 1u);
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_FALSE(fs::exists(path));
}

// --------------------------------------------------------------------------
// Bounds, degradation, toggles.
// --------------------------------------------------------------------------

TEST_F(DiskCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  // Budget sized for roughly two records; storing three must evict the
  // least recently used one and unlink its file.
  PersistentVerdictCache::Key keys[3];
  std::string sources[3];
  std::uint64_t record_bytes = 0;
  {
    PersistentVerdictCache probe(config_);
    store_flushed(probe, "module size_probe; endmodule", sample_report());
    record_bytes = probe.stats().bytes;
  }
  fs::remove_all(dir_);
  config_.max_bytes = record_bytes * 2 + record_bytes / 2;
  PersistentVerdictCache cache(config_);
  for (int i = 0; i < 3; ++i) {
    sources[i] = "module eviction_" + std::to_string(i) + "; endmodule";
    keys[i] = key_for(sources[i]);
    store_flushed(cache, sources[i], sample_report());
  }
  const DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.stores, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, config_.max_bytes);
  EXPECT_FALSE(fs::exists(record_path(keys[0]))) << "oldest record must be evicted";
  DetectionReport got;
  EXPECT_TRUE(cache.lookup(keys[2], sources[2], got));
}

TEST_F(DiskCacheTest, WriteFailureDegradesToMemoryOnly) {
  PersistentVerdictCache cache(config_);
  FaultInjector faults;
  faults.fail_point("atomic_file.fsync", EIO);
  {
    FaultInjector::Arm armed(faults);
    cache.store(key_for("m1"), "m1", sample_report());
    cache.flush();
  }
  DiskCacheStats stats = cache.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.stores, 0u);
  EXPECT_EQ(stats.drops, 1u);
  // Degraded mode: stores and lookups are immediate no-ops, never errors.
  cache.store(key_for("m2"), "m2", sample_report());
  cache.flush();
  DetectionReport got;
  EXPECT_FALSE(cache.lookup(key_for("m1"), "m1", got));
  stats = cache.stats();
  EXPECT_EQ(stats.stores, 0u);
  EXPECT_EQ(stats.drops, 2u);
}

TEST_F(DiskCacheTest, UnusableDirectoryDegradesInsteadOfThrowing) {
  // A regular FILE where the cache directory should be: creation fails.
  fs::create_directories(dir_.parent_path());
  std::ofstream(dir_) << "in the way";
  PersistentVerdictCache cache(config_);
  EXPECT_TRUE(cache.stats().degraded);
  cache.store(key_for("m"), "m", sample_report());
  cache.flush();  // no-op, no crash
  DetectionReport got;
  EXPECT_FALSE(cache.lookup(key_for("m"), "m", got));
  fs::remove(dir_);
}

TEST_F(DiskCacheTest, PersistToggleStopsBothDirections) {
  PersistentVerdictCache cache(config_);
  const std::string source = "module toggled; endmodule";
  store_flushed(cache, source, sample_report());
  cache.set_enabled(false);
  DetectionReport got;
  EXPECT_FALSE(cache.lookup(key_for(source), source, got));
  cache.store(key_for("other"), "other", sample_report());
  cache.flush();
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_EQ(cache.stats().drops, 1u);
  EXPECT_FALSE(cache.stats().enabled);
  cache.set_enabled(true);
  EXPECT_TRUE(cache.lookup(key_for(source), source, got));
}

TEST_F(DiskCacheTest, QueueOverflowDropsInsteadOfBlocking) {
  config_.queue_capacity = 2;
  PersistentVerdictCache cache(config_);
  FaultInjector faults;
  // Stall the writer inside its first publish so the queue backs up.
  std::atomic<bool> release{false};
  faults.crash_point("atomic_file.before_fsync", [&] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  {
    FaultInjector::Arm armed(faults);
    for (int i = 0; i < 8; ++i) {
      const std::string source = "module q" + std::to_string(i) + "; endmodule";
      cache.store(key_for(source), source, sample_report());
    }
    release.store(true);
    cache.flush();
  }
  const DiskCacheStats stats = cache.stats();
  EXPECT_GE(stats.drops, 1u) << "overflow must drop, not block";
  EXPECT_EQ(stats.stores + stats.drops, 8u);
}

TEST_F(DiskCacheTest, RecordFilenameRoundTrips) {
  const PersistentVerdictCache::Key key{noodle::feat::kFeatureVersion,
                                        0x0123456789abcdefull, 0xfedcba9876543210ull};
  const std::string name = PersistentVerdictCache::record_filename(key);
  PersistentVerdictCache::Key parsed;
  ASSERT_TRUE(PersistentVerdictCache::parse_record_filename(name, parsed));
  EXPECT_EQ(parsed, key);
  EXPECT_FALSE(PersistentVerdictCache::parse_record_filename("notarecord.ndc", parsed));
  EXPECT_FALSE(PersistentVerdictCache::parse_record_filename(name + "x", parsed));
  EXPECT_FALSE(PersistentVerdictCache::parse_record_filename("", parsed));
}

}  // namespace
