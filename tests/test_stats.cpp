#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace noodle::util {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Stats, MeanOfKnownSample) { EXPECT_DOUBLE_EQ(mean(kSample), 5.0); }

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, VarianceUnbiased) {
  // Sum of squared deviations = 32, n-1 = 7.
  EXPECT_NEAR(variance(kSample), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const std::vector<double> one = {3.14};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Stats, StddevIsSqrtVariance) {
  EXPECT_NEAR(stddev(kSample), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_value(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max_value(kSample), 9.0);
}

TEST(Stats, MinMaxThrowOnEmpty) {
  EXPECT_THROW(min_value({}), std::invalid_argument);
  EXPECT_THROW(max_value({}), std::invalid_argument);
}

TEST(Stats, MedianEvenCount) {
  EXPECT_NEAR(median(kSample), 4.5, 1e-12);
}

TEST(Stats, MedianOddCount) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
}

TEST(Stats, QuantileEndpoints) {
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(kSample, 1.0), 9.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_NEAR(quantile(xs, 0.25), 2.5, 1e-12);
}

TEST(Stats, QuantileRejectsBadInputs) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(kSample, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(kSample, 1.1), std::invalid_argument);
}

TEST(Stats, PearsonPerfectPositive) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> ys = {5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_THROW(pearson(xs, ys), std::invalid_argument);
}

TEST(Stats, SummaryFields) {
  const Summary s = summarize(kSample);
  EXPECT_EQ(s.count, kSample.size());
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.median, 4.5, 1e-12);
  EXPECT_GT(s.ci95_half_width, 0.0);
  EXPECT_NEAR(s.ci95_half_width, 1.96 * s.stddev / std::sqrt(8.0), 1e-12);
}

TEST(Stats, SummaryOfEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.ci95_half_width, 0.0);
}

TEST(Stats, HistogramCountsAndClamping) {
  const std::vector<double> xs = {-1.0, 0.05, 0.15, 0.15, 0.95, 2.0};
  const auto counts = histogram(xs, 0.0, 1.0, 10);
  ASSERT_EQ(counts.size(), 10u);
  EXPECT_EQ(counts[0], 2u);  // -1.0 clamped into the first bin + 0.05
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[9], 2u);  // 0.95 and clamped 2.0
  std::size_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, xs.size());
}

TEST(Stats, HistogramRejectsBadArgs) {
  const std::vector<double> xs = {0.5};
  EXPECT_THROW(histogram(xs, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(histogram(xs, 1.0, 0.0, 4), std::invalid_argument);
}

class QuantileMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotonicity, NonDecreasingInQ) {
  const double q = GetParam();
  if (q < 1.0) {
    EXPECT_LE(quantile(kSample, q), quantile(kSample, std::min(1.0, q + 0.1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileMonotonicity,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

}  // namespace
}  // namespace noodle::util
