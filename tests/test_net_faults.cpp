// The socket fault matrix (util::FaultInjector): every net.* fail point is
// driven against a live ScanServer and the suite asserts the failure
// contract — accept failures retry instead of killing the listener, a read
// reset drops only the failing connection, write failures settle in-flight
// accounting, transient EAGAIN buffers and flushes, an exhausted write
// budget trips the stall watchdog, a fault storm leaks neither fds nor
// connection slots, and the Prometheus mirror never disagrees with stats().
//
// The service here runs with an EMPTY registry: every scan answers
// "no-model" in one dispatch tick, so the matrix exercises the transport
// without paying for a model fit.

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "net/event_loop.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/service.h"
#include "util/fault_injector.h"

namespace noodle {
namespace {

using namespace std::chrono_literals;

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t put = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(put);
  }
  return true;
}

struct LineClient {
  net::Fd fd;
  std::string acc;

  bool connect(std::uint16_t port) {
    std::error_code ec;
    fd = net::connect_tcp("127.0.0.1", port, ec);
    return static_cast<bool>(fd);
  }
  bool send_line(const std::string& line) { return send_all(fd.get(), line + "\n"); }

  std::optional<std::string> read_line(int timeout_ms = 10000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t pos = acc.find('\n');
      if (pos != std::string::npos) {
        std::string line = acc.substr(0, pos);
        acc.erase(0, pos + 1);
        return line;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return std::nullopt;
      struct pollfd pfd = {fd.get(), POLLIN, 0};
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count());
      const int ready = ::poll(&pfd, 1, std::max(1, wait_ms));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (ready == 0) return std::nullopt;
      char buf[4096];
      const ssize_t got = ::recv(fd.get(), buf, sizeof buf, 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (got == 0) return std::nullopt;
      acc.append(buf, static_cast<std::size_t>(got));
    }
  }

  bool wait_closed(int timeout_ms = 10000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      struct pollfd pfd = {fd.get(), POLLIN, 0};
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count());
      const int ready = ::poll(&pfd, 1, std::max(1, wait_ms));
      if (ready < 0 && errno != EINTR) return true;
      if (ready <= 0) continue;
      char buf[4096];
      const ssize_t got = ::recv(fd.get(), buf, sizeof buf, 0);
      if (got == 0) return true;
      if (got < 0) return errno != EINTR;  // RST counts as closed too
      acc.append(buf, static_cast<std::size_t>(got));
    }
  }
};

struct ServerHarness {
  net::EventLoop loop;
  net::ScanServer server;
  std::thread thread;

  ServerHarness(serve::DetectionService& service, net::ServerConfig config)
      : server(loop, service, std::move(config)) {
    server.set_on_drained([this] { loop.stop(); });
    server.start();
    thread = std::thread([this] { loop.run(); });
  }
  ~ServerHarness() {
    if (thread.joinable()) {
      loop.stop();
      thread.join();
    }
  }
  std::uint16_t port() const { return server.port(); }
};

std::size_t open_fd_count() {
  std::size_t count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++count;
  }
  return count;
}

bool wait_for(const std::function<bool()>& done, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return done();
}

/// Every test runs the transport against an empty registry: scans resolve
/// to "no-model" in one dispatch tick, no fit required.
class NetFaultsTest : public ::testing::Test {
 protected:
  NetFaultsTest()
      : service_(std::make_shared<serve::ModelRegistry>(), "m") {}

  /// Inline RTL reaches the submit path (a bare path would fail the file
  /// read before ever exercising admission or in-flight accounting); with
  /// the empty registry it resolves to a fast "no-model" status line.
  static constexpr const char* kScan = "~inline module t; endmodule";
  static std::string no_model() {
    return net::protocol::status_line("no-model", "m", net::protocol::kInlineEcho);
  }

  serve::DetectionService service_;
  util::FaultInjector faults_;
};

TEST_F(NetFaultsTest, AcceptFailuresAreRetriedUntilTheFaultClears) {
  ServerHarness harness(service_, net::ServerConfig{});
  util::FaultInjector::Arm arm(faults_);
  faults_.fail_point("net.accept", EMFILE, 2);

  // The handshake completes from the client's side via the backlog; the
  // level-triggered listener retries past both scripted failures.
  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));
  ASSERT_TRUE(client.send_line(kScan));
  EXPECT_EQ(client.read_line(), no_model());
  EXPECT_GE(faults_.hits("net.accept"), 2u);
  const net::ServerStats stats = harness.server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.connections, 1u);
}

TEST_F(NetFaultsTest, ReadResetDropsOnlyTheFailingConnection) {
  ServerHarness harness(service_, net::ServerConfig{});
  LineClient victim;
  LineClient bystander;
  ASSERT_TRUE(victim.connect(harness.port()));
  ASSERT_TRUE(bystander.connect(harness.port()));

  {
    util::FaultInjector::Arm arm(faults_);
    faults_.fail_point("net.read", ECONNRESET, 1);
    // Only the victim sends while the fault is armed, so the one scripted
    // failure lands on its read.
    ASSERT_TRUE(victim.send_line(kScan));
    EXPECT_TRUE(victim.wait_closed());
  }

  ASSERT_TRUE(bystander.send_line(kScan));
  EXPECT_EQ(bystander.read_line(), no_model());
  const net::ServerStats stats = harness.server.stats();
  EXPECT_GE(stats.dropped, 1u);
  EXPECT_EQ(stats.connections, 1u);
}

TEST_F(NetFaultsTest, WriteResetMidStreamDropsAndSettlesInflight) {
  ServerHarness harness(service_, net::ServerConfig{});
  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));
  ASSERT_TRUE(client.send_line(kScan));
  EXPECT_EQ(client.read_line(), no_model());  // write #1 clean

  {
    util::FaultInjector::Arm arm(faults_);
    faults_.fail_point("net.write", ECONNRESET);
    ASSERT_TRUE(client.send_line(kScan));
    EXPECT_TRUE(client.wait_closed());  // write #2 reset mid-stream
  }

  // The dropped connection settles its in-flight unit; nothing leaks into
  // the admission-control gauge, and new connections serve normally. (The
  // client sees the RST mid-eviction, so poll for the counters.)
  EXPECT_TRUE(wait_for([&] {
    const net::ServerStats stats = harness.server.stats();
    return stats.inflight == 0 && stats.dropped >= 1;
  }));
  LineClient fresh;
  ASSERT_TRUE(fresh.connect(harness.port()));
  ASSERT_TRUE(fresh.send_line(kScan));
  EXPECT_EQ(fresh.read_line(), no_model());
}

TEST_F(NetFaultsTest, TransientEagainBuffersTheResponseAndFlushesIt) {
  ServerHarness harness(service_, net::ServerConfig{});
  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));

  util::FaultInjector::Arm arm(faults_);
  faults_.fail_point("net.write", EAGAIN, 1);
  ASSERT_TRUE(client.send_line(kScan));
  // First flush attempt "would block"; the response buffers, EPOLLOUT
  // re-drives it, and the client still gets the whole line.
  EXPECT_EQ(client.read_line(), no_model());
  EXPECT_GE(faults_.hits("net.write"), 2u);
  EXPECT_EQ(harness.server.stats().dropped, 0u);
}

TEST_F(NetFaultsTest, ExhaustedWriteBudgetTripsTheStallWatchdog) {
  net::ServerConfig config;
  config.write_stall_timeout = 100ms;
  ServerHarness harness(service_, config);
  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));

  util::FaultInjector::Arm arm(faults_);
  faults_.short_write("net.write", 4, EAGAIN);
  ASSERT_TRUE(client.send_line(kScan));
  // 4 bytes trickle out, then the budget is dry forever: no drain progress,
  // so the stall watchdog must evict rather than hold the buffer open.
  EXPECT_TRUE(client.wait_closed(5000));
  EXPECT_LT(client.acc.size(), no_model().size() + 1);
  // The client sees the FIN mid-eviction; poll for the counters to settle.
  EXPECT_TRUE(wait_for([&] {
    const net::ServerStats stats = harness.server.stats();
    return stats.dropped >= 1 && stats.connections == 0 && stats.inflight == 0;
  }));
}

TEST_F(NetFaultsTest, FaultStormLeaksNoFileDescriptorsOrConnectionSlots) {
  ServerHarness harness(service_, net::ServerConfig{});

  // Warm up once so every lazily-created fd (epoll, wakeup, timers) exists
  // before the baseline count.
  {
    LineClient warmup;
    ASSERT_TRUE(warmup.connect(harness.port()));
    ASSERT_TRUE(warmup.send_line(kScan));
    ASSERT_TRUE(warmup.read_line().has_value());
  }
  ASSERT_TRUE(wait_for([&] { return harness.server.stats().connections == 0; }));
  const std::size_t baseline = open_fd_count();

  for (int i = 0; i < 8; ++i) {  // clean churn
    LineClient client;
    ASSERT_TRUE(client.connect(harness.port()));
    ASSERT_TRUE(client.send_line(kScan));
    EXPECT_EQ(client.read_line(), no_model());
  }
  {
    util::FaultInjector::Arm arm(faults_);
    faults_.fail_point("net.read", ECONNRESET);
    for (int i = 0; i < 8; ++i) {  // every request dies on the read
      LineClient client;
      ASSERT_TRUE(client.connect(harness.port()));
      ASSERT_TRUE(client.send_line(kScan));
      EXPECT_TRUE(client.wait_closed());
    }
  }

  ASSERT_TRUE(wait_for([&] { return harness.server.stats().connections == 0; }));
  EXPECT_EQ(open_fd_count(), baseline);
  const net::ServerStats stats = harness.server.stats();
  EXPECT_EQ(stats.accepted, 17u);  // warmup + 8 clean + 8 doomed
  EXPECT_GE(stats.dropped, 8u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST_F(NetFaultsTest, PrometheusMirrorNeverDisagreesWithTheStatsSnapshot) {
  ServerHarness harness(service_, net::ServerConfig{});
  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.send_line(kScan));
    EXPECT_EQ(client.read_line(), no_model());
  }

  std::atomic<bool> synced{false};
  harness.loop.post([&] {
    harness.server.sync_metrics();
    synced = true;
  });
  ASSERT_TRUE(wait_for([&] { return synced.load(); }));

  std::ostringstream exposition;
  service_.metrics().render_prometheus(exposition);
  const std::string text = exposition.str();
  const net::ServerStats stats = harness.server.stats();
  const auto sample = [&](const std::string& name) -> long {
    const std::size_t pos = text.find("\n" + name + " ");
    if (pos == std::string::npos) return -1;
    return std::stol(text.substr(pos + name.size() + 2));
  };
  EXPECT_EQ(sample("noodle_net_accepted_total"),
            static_cast<long>(stats.accepted));
  EXPECT_EQ(sample("noodle_net_requests_total"),
            static_cast<long>(stats.requests));
  EXPECT_EQ(sample("noodle_net_responses_total"),
            static_cast<long>(stats.responses));
  EXPECT_EQ(sample("noodle_net_shed_total"), static_cast<long>(stats.shed));
  EXPECT_EQ(sample("noodle_net_connections"),
            static_cast<long>(stats.connections));
}

}  // namespace
}  // namespace noodle
