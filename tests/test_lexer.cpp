#include "verilog/lexer.h"

#include <gtest/gtest.h>

namespace noodle::verilog {
namespace {

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].is(TokenKind::End));
}

TEST(Lexer, KeywordsRecognized) {
  const auto tokens = lex("module endmodule always begin end");
  ASSERT_EQ(tokens.size(), 6u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(tokens[i].is(TokenKind::Keyword)) << tokens[i].text;
  }
}

TEST(Lexer, IdentifiersVsKeywords) {
  const auto tokens = lex("module_x wired regs");
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_TRUE(tokens[i].is(TokenKind::Identifier)) << tokens[i].text;
  }
}

TEST(Lexer, DollarIdentifiers) {
  const auto tokens = lex("$display $finish");
  EXPECT_TRUE(tokens[0].is(TokenKind::SystemName));
  EXPECT_EQ(tokens[0].text, "$display");
}

TEST(Lexer, PlainDecimalNumber) {
  const auto tokens = lex("42");
  EXPECT_TRUE(tokens[0].is(TokenKind::Number));
  EXPECT_EQ(tokens[0].value, 42u);
  EXPECT_EQ(tokens[0].width, 0);
}

TEST(Lexer, SizedHexNumber) {
  const auto tokens = lex("8'hFF");
  EXPECT_EQ(tokens[0].value, 255u);
  EXPECT_EQ(tokens[0].width, 8);
}

TEST(Lexer, SizedBinaryNumber) {
  const auto tokens = lex("4'b1010");
  EXPECT_EQ(tokens[0].value, 10u);
  EXPECT_EQ(tokens[0].width, 4);
}

TEST(Lexer, SizedDecimalNumber) {
  const auto tokens = lex("16'd1234");
  EXPECT_EQ(tokens[0].value, 1234u);
  EXPECT_EQ(tokens[0].width, 16);
}

TEST(Lexer, SizedOctalNumber) {
  const auto tokens = lex("6'o17");
  EXPECT_EQ(tokens[0].value, 15u);
  EXPECT_EQ(tokens[0].width, 6);
}

TEST(Lexer, UnderscoresInNumbers) {
  const auto tokens = lex("32'hDEAD_BEEF");
  EXPECT_EQ(tokens[0].value, 0xDEADBEEFu);
}

TEST(Lexer, SignedMarkerSkipped) {
  const auto tokens = lex("8'sh7F");
  EXPECT_EQ(tokens[0].value, 127u);
}

TEST(Lexer, LineCommentsSkipped) {
  const auto tokens = lex("a // comment here\n b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, BlockCommentsSkipped) {
  const auto tokens = lex("a /* multi\nline */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, DirectivesSkipped) {
  const auto tokens = lex("`timescale 1ns/1ps\nmodule");
  EXPECT_TRUE(tokens[0].is_keyword("module"));
}

TEST(Lexer, MaximalMunchOperators) {
  const auto tokens = lex("<= << <<< == === != & && ~^");
  EXPECT_EQ(tokens[0].text, "<=");
  EXPECT_EQ(tokens[1].text, "<<");
  EXPECT_EQ(tokens[2].text, "<<<");
  EXPECT_EQ(tokens[3].text, "==");
  EXPECT_EQ(tokens[4].text, "===");
  EXPECT_EQ(tokens[5].text, "!=");
  EXPECT_EQ(tokens[6].text, "&");
  EXPECT_EQ(tokens[7].text, "&&");
  EXPECT_EQ(tokens[8].text, "~^");
}

TEST(Lexer, LineAndColumnTracked) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, StringLiteralConsumed) {
  const auto tokens = lex("\"hello world\" x");
  EXPECT_TRUE(tokens[0].is(TokenKind::Punct));
  EXPECT_EQ(tokens[1].text, "x");
}

struct BadInput {
  const char* text;
  const char* why;
};

class LexerRejects : public ::testing::TestWithParam<BadInput> {};

TEST_P(LexerRejects, ThrowsLexError) {
  EXPECT_THROW(lex(GetParam().text), LexError) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, LexerRejects,
    ::testing::Values(BadInput{"/* unterminated", "unterminated block comment"},
                      BadInput{"8'hxz", "4-state literal"},
                      BadInput{"4'b", "missing digits"},
                      BadInput{"8'q3", "bad base"},
                      BadInput{"\"unterminated", "unterminated string"},
                      BadInput{"#\x01", "stray control character"}));

TEST(Lexer, ErrorCarriesLocation) {
  try {
    lex("a b\n  8'q1");
    FAIL() << "expected LexError";
  } catch (const LexError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 1);
  }
}

}  // namespace
}  // namespace noodle::verilog
