// Tests for the TCP transport: net::EventLoop semantics (timer wheel,
// cross-thread post, signal fan-in), and net::ScanServer end-to-end over
// real loopback sockets — bit-identical serving vs direct submits, strict
// per-connection FIFO ordering, reload-under-load generation consistency,
// BUSY admission control at 4x overload, deadline TIMEOUT propagation,
// idle-client eviction, and the graceful-drain state machine.

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "data/dataset.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/service.h"
#include "util/csv.h"

namespace noodle {
namespace {

using namespace std::chrono_literals;

// --- EventLoop ---------------------------------------------------------------

TEST(EventLoopTest, TimersFireOnceAndCancelledTimersNever) {
  net::EventLoop loop;
  int fired = 0;
  int cancelled_fired = 0;
  loop.add_timer(10ms, [&] { ++fired; });
  const net::EventLoop::TimerId id = loop.add_timer(10ms, [&] { ++cancelled_fired; });
  loop.cancel_timer(id);
  loop.add_timer(80ms, [&] { loop.stop(); });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(cancelled_fired, 0);
}

TEST(EventLoopTest, TimerNeverFiresEarlyAndParksAcrossWheelRevolutions) {
  // 2700ms > the wheel's 512 x 5ms = 2560ms horizon, so this timer must
  // park with a rounds counter and survive a full revolution.
  net::EventLoop loop;
  const auto t0 = std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point fired_at;
  loop.add_timer(2700ms, [&] {
    fired_at = std::chrono::steady_clock::now();
    loop.stop();
  });
  loop.run();
  EXPECT_GE(fired_at - t0, 2700ms);
  EXPECT_LT(fired_at - t0, 10s);
}

TEST(EventLoopTest, PostedTasksRunOnTheLoopThread) {
  net::EventLoop loop;
  std::thread::id loop_tid;
  std::thread::id runner_tid;
  loop.post([&] { loop_tid = std::this_thread::get_id(); });
  std::thread runner([&] {
    runner_tid = std::this_thread::get_id();
    loop.run();
  });
  std::atomic<int> ran{0};
  for (int i = 0; i < 3; ++i) loop.post([&] { ++ran; });
  loop.post([&] { loop.stop(); });
  runner.join();
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(loop_tid, runner_tid);
}

TEST(EventLoopTest, WatchedSignalsDeliverAsLoopCallbacks) {
  net::EventLoop loop;
  std::atomic<int> got{0};
  std::thread::id cb_tid;
  std::thread::id runner_tid;
  loop.watch_signal(SIGUSR1, [&](int signo) {
    got = signo;
    cb_tid = std::this_thread::get_id();
    loop.stop();
  });
  std::thread runner([&] {
    runner_tid = std::this_thread::get_id();
    loop.run();
  });
  std::raise(SIGUSR1);  // handler writes to the pipe; the LOOP observes it
  runner.join();
  EXPECT_EQ(got.load(), SIGUSR1);
  EXPECT_EQ(cb_tid, runner_tid);
  net::SignalPipe::instance().unhook(SIGUSR1);
}

// --- socket test plumbing ----------------------------------------------------

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t put = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(put);
  }
  return true;
}

/// A blocking line-oriented test client with read deadlines, so a server
/// bug can never hang the suite.
struct LineClient {
  net::Fd fd;
  std::string acc;

  bool connect(std::uint16_t port) {
    std::error_code ec;
    fd = net::connect_tcp("127.0.0.1", port, ec);
    return static_cast<bool>(fd);
  }
  bool send_line(const std::string& line) { return send_all(fd.get(), line + "\n"); }

  std::optional<std::string> read_line(int timeout_ms = 30000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t pos = acc.find('\n');
      if (pos != std::string::npos) {
        std::string line = acc.substr(0, pos);
        acc.erase(0, pos + 1);
        return line;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return std::nullopt;
      struct pollfd pfd = {fd.get(), POLLIN, 0};
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count());
      const int ready = ::poll(&pfd, 1, std::max(1, wait_ms));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (ready == 0) return std::nullopt;
      char buf[4096];
      const ssize_t got = ::recv(fd.get(), buf, sizeof buf, 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (got == 0) return std::nullopt;  // EOF with no complete line
      acc.append(buf, static_cast<std::size_t>(got));
    }
  }

  /// True once the peer closes (EOF or RST) within the deadline.
  bool wait_closed(int timeout_ms = 30000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      struct pollfd pfd = {fd.get(), POLLIN, 0};
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count());
      const int ready = ::poll(&pfd, 1, std::max(1, wait_ms));
      if (ready < 0 && errno != EINTR) return true;
      if (ready <= 0) continue;
      char buf[4096];
      const ssize_t got = ::recv(fd.get(), buf, sizeof buf, 0);
      if (got == 0) return true;
      if (got < 0) return errno != EINTR;  // RST counts as closed
      acc.append(buf, static_cast<std::size_t>(got));
    }
  }
};

/// Runs a ScanServer on its own loop thread. `configure` runs before the
/// loop starts (the window where loop-thread-only setters are legal from
/// the test thread). Drain completion stops the loop.
struct ServerHarness {
  net::EventLoop loop;
  net::ScanServer server;
  std::thread thread;

  ServerHarness(serve::DetectionService& service, net::ServerConfig config,
                const std::function<void(net::ScanServer&)>& configure = {})
      : server(loop, service, std::move(config)) {
    if (configure) configure(server);
    server.set_on_drained([this] { loop.stop(); });
    server.start();
    thread = std::thread([this] { loop.run(); });
  }
  ~ServerHarness() { stop(); }

  void stop() {
    if (thread.joinable()) {
      loop.stop();
      thread.join();
    }
  }
  std::uint16_t port() const { return server.port(); }
};

// --- ScanServer fixture ------------------------------------------------------

// Two genuinely different fitted generations, their snapshots, request
// files on disk, and per-request reference verdict-line prefixes. Fitting
// is the expensive part; everything is built once per suite.
class ScanServerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::NoodleDetector gen_a(quick_config(7));
    gen_a.fit(data::build_corpus(quick_corpus(7, 72)));
    core::NoodleDetector gen_b(quick_config(11));
    gen_b.fit(data::build_corpus(quick_corpus(11, 64)));

    dir_ = std::filesystem::temp_directory_path() / "noodle_net_tests";
    std::filesystem::create_directories(dir_);
    path_a_ = dir_ / "gen_a.snap";
    path_b_ = dir_ / "gen_b.snap";
    gen_a.save(path_a_);
    gen_b.save(path_b_);

    files_ = new std::vector<std::string>();
    prefix_a_ = new std::vector<std::string>();
    prefix_b_ = new std::vector<std::string>();
    for (const auto& circuit : data::build_corpus(quick_corpus(19, 8))) {
      const std::filesystem::path file =
          dir_ / ("req_" + std::to_string(files_->size()) + ".v");
      std::ofstream out(file);
      out << circuit.verilog;
      files_->push_back(file.string());
      const data::FeatureSample sample = data::featurize(circuit);
      prefix_a_->push_back(line_prefix(gen_a.scan_features(sample)));
      prefix_b_->push_back(line_prefix(gen_b.scan_features(sample)));
    }
  }

  static void TearDownTestSuite() {
    delete prefix_b_;
    prefix_b_ = nullptr;
    delete prefix_a_;
    prefix_a_ = nullptr;
    delete files_;
    files_ = nullptr;
    std::filesystem::remove_all(dir_);
  }

  static core::DetectorConfig quick_config(std::uint64_t seed) {
    core::DetectorConfig config;
    config.seed = seed;
    config.gan_target_per_class = 30;
    config.gan.epochs = 20;
    config.fusion.train.epochs = 8;
    config.fusion.train.validation_fraction = 0.0;
    return config;
  }

  static data::CorpusSpec quick_corpus(std::uint64_t seed, std::size_t designs) {
    data::CorpusSpec spec;
    spec.design_count = designs;
    spec.infected_fraction = 0.35;
    spec.seed = seed;
    return spec;
  }

  /// Everything of the expected verdict line up to (and including)
  /// "model=" — label, probability, and region are generation-determined;
  /// the served_by version varies across reloads.
  static std::string line_prefix(const core::DetectionReport& report) {
    std::string line = report.predicted_label == data::kTrojanInfected
                           ? "TROJAN-INFECTED"
                           : "trojan-free";
    line += "\tp=" + util::format_fixed(report.probability, 3);
    line += "\tregion=" + net::protocol::region_text(report.region);
    line += "\tmodel=";
    return line;
  }

  static std::shared_ptr<serve::ModelRegistry> registry_with_a() {
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->reload_from("m", path_a_);
    return registry;
  }

  static std::filesystem::path dir_;
  static std::filesystem::path path_a_;
  static std::filesystem::path path_b_;
  static std::vector<std::string>* files_;
  static std::vector<std::string>* prefix_a_;
  static std::vector<std::string>* prefix_b_;
};

std::filesystem::path ScanServerFixture::dir_;
std::filesystem::path ScanServerFixture::path_a_;
std::filesystem::path ScanServerFixture::path_b_;
std::vector<std::string>* ScanServerFixture::files_ = nullptr;
std::vector<std::string>* ScanServerFixture::prefix_a_ = nullptr;
std::vector<std::string>* ScanServerFixture::prefix_b_ = nullptr;

// --- serving correctness -----------------------------------------------------

TEST_F(ScanServerFixture, ServesBitIdenticalVerdictsInStrictRequestOrder) {
  serve::DetectionService service(registry_with_a(), "m");
  ServerHarness harness(service, net::ServerConfig{});

  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));
  // One pipelined burst; responses must come back in request order even
  // though batching may compute them in any order.
  std::string burst;
  for (const std::string& file : *files_) burst += file + "\n";
  ASSERT_TRUE(send_all(client.fd.get(), burst));
  for (std::size_t i = 0; i < files_->size(); ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value()) << "no response for request " << i;
    EXPECT_EQ(*line, (*prefix_a_)[i] + "m@1\t" + (*files_)[i]);
  }

  // A second pass answers from the verdict cache — byte-identical lines.
  ASSERT_TRUE(send_all(client.fd.get(), burst));
  for (std::size_t i = 0; i < files_->size(); ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, (*prefix_a_)[i] + "m@1\t" + (*files_)[i]);
  }
  EXPECT_GE(service.stats().cache_hits, files_->size());
}

TEST_F(ScanServerFixture, InlineRtlScansAndEchoesTheInlineMarker) {
  serve::DetectionService service(registry_with_a(), "m");
  ServerHarness harness(service, net::ServerConfig{});

  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));
  ASSERT_TRUE(client.send_line(
      "~inline module t(input a, output b); assign b = a; endmodule"));
  const auto line = client.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(line->rfind("trojan-free\t", 0) == 0 ||
              line->rfind("TROJAN-INFECTED\t", 0) == 0)
      << *line;
  EXPECT_NE(line->find("\tmodel=m@1\t"), std::string::npos) << *line;
  EXPECT_EQ(line->substr(line->rfind('\t') + 1), net::protocol::kInlineEcho);
}

TEST_F(ScanServerFixture, UnreadableAndMalformedRequestsGetStatusLines) {
  serve::DetectionService service(registry_with_a(), "m");
  ServerHarness harness(service, net::ServerConfig{});

  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));
  ASSERT_TRUE(client.send_line("no_such_file.v"));
  EXPECT_EQ(client.read_line(),
            net::protocol::status_line("read-error", "m", "no_such_file.v"));
  ASSERT_TRUE(client.send_line("~deadline=abc x.v"));
  EXPECT_EQ(client.read_line(),
            net::protocol::status_line("bad-request", "m", "~deadline=abc x.v"));
  const net::ServerStats stats = harness.server.stats();
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.requests, 2u);
}

// --- reload under load (satellite: bit-identical across !reload storm) -------

TEST_F(ScanServerFixture, ReloadStormUnderLoadKeepsEveryVerdictGenerationTrue) {
  serve::DetectionService service(registry_with_a(), "m");
  net::ServerConfig config;
  ServerHarness harness(service, config, [&](net::ScanServer& server) {
    server.set_control_handler([&service](const std::string& line) -> std::string {
      // "!reload m=<path>" — the test's own minimal control surface.
      const std::size_t space = line.find(' ');
      const std::size_t eq = line.find('=');
      const std::string name = line.substr(space + 1, eq - space - 1);
      const serve::ModelHandle handle =
          service.reload(name, std::filesystem::path(line.substr(eq + 1)));
      return "reloaded " + handle->label() + "\n";
    });
  });

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checked{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 3; ++t) {
    hammers.emplace_back([&, t] {
      LineClient client;
      if (!client.connect(harness.port())) {
        ++wrong;
        return;
      }
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& file = (*files_)[i % files_->size()];
        const std::size_t idx = i % files_->size();
        if (!client.send_line(file)) {
          ++wrong;
          return;
        }
        const auto line = client.read_line();
        if (!line.has_value()) {
          ++wrong;
          return;
        }
        // The line must be EXACTLY one generation's verdict, served_by a
        // parseable m@N whose parity matches that generation (A published
        // first and every reload alternates B, A, B, ...).
        const std::size_t marker = line->find("\tmodel=m@");
        bool ok = marker != std::string::npos;
        if (ok) {
          const std::size_t ver_start = marker + 9;
          const std::size_t ver_end = line->find('\t', ver_start);
          ok = ver_end != std::string::npos;
          if (ok) {
            const std::string version = line->substr(ver_start, ver_end - ver_start);
            const bool odd = (version.back() - '0') % 2 == 1;
            const std::string& prefix = odd ? (*prefix_a_)[idx] : (*prefix_b_)[idx];
            ok = *line == prefix + "m@" + version + "\t" + file;
          }
        }
        if (!ok) {
          ++wrong;
          ADD_FAILURE() << "generation-torn verdict: " << *line;
          return;
        }
        ++checked;
        ++i;
      }
    });
  }

  LineClient control;
  ASSERT_TRUE(control.connect(harness.port()));
  for (int swap = 0; swap < 6; ++swap) {
    const std::filesystem::path& next = swap % 2 == 0 ? path_b_ : path_a_;
    ASSERT_TRUE(control.send_line("!reload m=" + next.string()));
    const auto reply = control.read_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->rfind("reloaded m@", 0), 0u) << *reply;
    std::this_thread::sleep_for(30ms);
  }
  stop = true;
  for (std::thread& hammer : hammers) hammer.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(checked.load(), 0u);
}

// --- admission control, deadlines, watchdogs, drain --------------------------

TEST_F(ScanServerFixture, OverloadAtFourTimesAdmissionLimitShedsExactlyTheExcess) {
  serve::ServiceConfig service_config;
  service_config.cache_capacity = 0;
  service_config.batch_linger = 300ms;  // keep admitted requests in flight
  service_config.max_batch = 16;
  serve::DetectionService service(registry_with_a(), "m", service_config);
  net::ServerConfig config;
  config.max_inflight = 4;
  ServerHarness harness(service, config);

  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));
  std::string burst;
  for (int i = 0; i < 16; ++i) burst += (*files_)[i % files_->size()] + "\n";
  ASSERT_TRUE(send_all(client.fd.get(), burst));

  // FIFO: requests 0-3 were admitted (verdicts), 4-15 shed (BUSY) — and
  // every one of the 16 gets a line; nothing hangs.
  for (int i = 0; i < 16; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value()) << "request " << i << " never answered";
    const std::string& file = (*files_)[static_cast<std::size_t>(i) % files_->size()];
    if (i < 4) {
      EXPECT_EQ(*line, (*prefix_a_)[static_cast<std::size_t>(i)] + "m@1\t" + file);
    } else {
      EXPECT_EQ(*line, net::protocol::status_line("BUSY", "m", file));
    }
  }
  const net::ServerStats stats = harness.server.stats();
  EXPECT_EQ(stats.shed, 12u);
  EXPECT_EQ(stats.requests, 16u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST_F(ScanServerFixture, ExpiredDeadlinesAnswerTimeoutWithoutScanning) {
  serve::ServiceConfig service_config;
  service_config.cache_capacity = 0;
  service_config.batch_linger = 250ms;
  serve::DetectionService service(registry_with_a(), "m", service_config);
  ServerHarness harness(service, net::ServerConfig{});

  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.send_line("~deadline=1 " + (*files_)[0]));
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.read_line(),
              net::protocol::status_line("TIMEOUT", "m", (*files_)[0]));
  }
  // A deadline-free request after the storm still scans normally, and its
  // dispatch sweeps the expired three out of the queue unscanned.
  ASSERT_TRUE(client.send_line((*files_)[1]));
  EXPECT_EQ(client.read_line(), (*prefix_a_)[1] + "m@1\t" + (*files_)[1]);
  EXPECT_EQ(service.stats().deadline_timeouts, 3u);
  EXPECT_EQ(harness.server.stats().timeouts, 3u);
}

TEST_F(ScanServerFixture, IdleConnectionsAreEvictedByTheWatchdog) {
  serve::DetectionService service(registry_with_a(), "m");
  net::ServerConfig config;
  config.idle_timeout = 100ms;
  ServerHarness harness(service, config);

  LineClient idle;
  ASSERT_TRUE(idle.connect(harness.port()));
  // An ACTIVE client keeps its slot across the idle horizon...
  LineClient active;
  ASSERT_TRUE(active.connect(harness.port()));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(active.send_line((*files_)[0]));
    ASSERT_TRUE(active.read_line().has_value());
    std::this_thread::sleep_for(40ms);
  }
  // ...while the idle one was evicted by the watchdog.
  EXPECT_TRUE(idle.wait_closed(5000));
  EXPECT_GE(harness.server.stats().dropped, 1u);
  ASSERT_TRUE(active.send_line((*files_)[0]));
  EXPECT_TRUE(active.read_line().has_value());
}

TEST_F(ScanServerFixture, DrainAnswersEveryInflightRequestThenClosesAndStopsLoop) {
  serve::ServiceConfig service_config;
  service_config.cache_capacity = 0;
  service_config.batch_linger = 150ms;
  serve::DetectionService service(registry_with_a(), "m", service_config);
  ServerHarness harness(service, net::ServerConfig{});

  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));
  std::string burst;
  for (int i = 0; i < 5; ++i) burst += (*files_)[static_cast<std::size_t>(i)] + "\n";
  burst += "!drain\n";
  ASSERT_TRUE(send_all(client.fd.get(), burst));

  // All five in-flight verdicts land (drain never abandons admitted work),
  // then the drain acknowledgment, then EOF.
  for (int i = 0; i < 5; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value()) << "in-flight request " << i << " lost by drain";
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(*line, (*prefix_a_)[idx] + "m@1\t" + (*files_)[idx]);
  }
  EXPECT_EQ(client.read_line(), "noodled: draining");
  EXPECT_TRUE(client.wait_closed());

  // Drain completion stopped the loop; the listener is gone.
  harness.thread.join();
  EXPECT_TRUE(harness.server.draining());
  LineClient late;
  EXPECT_FALSE(late.connect(harness.port()));
  EXPECT_EQ(service.stats().deadline_timeouts, 0u);
  const net::ServerStats stats = harness.server.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.connections, 0u);
}

TEST_F(ScanServerFixture, TraceToggleAddsTheTraceColumnToSocketVerdicts) {
  serve::DetectionService service(registry_with_a(), "m");
  ServerHarness harness(service, net::ServerConfig{});

  std::atomic<bool> applied{false};
  harness.loop.post([&] {
    harness.server.set_trace(true);
    applied = true;
  });
  while (!applied.load()) std::this_thread::sleep_for(1ms);

  LineClient client;
  ASSERT_TRUE(client.connect(harness.port()));
  ASSERT_TRUE(client.send_line((*files_)[0]));
  const auto line = client.read_line();
  ASSERT_TRUE(line.has_value());
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t pos; (pos = line->find('\t', start)) != std::string::npos;
       start = pos + 1) {
    fields.push_back(line->substr(start, pos - start));
  }
  fields.push_back(line->substr(start));
  ASSERT_EQ(fields.size(), 6u) << *line;
  EXPECT_EQ(fields[4].rfind("trace=", 0), 0u) << *line;
}

}  // namespace
}  // namespace noodle
