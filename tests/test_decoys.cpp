#include "data/decoys.h"

#include <gtest/gtest.h>

#include "data/designgen.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace noodle::data {
namespace {

verilog::Module make_design(DesignFamily family, std::uint64_t seed) {
  util::Rng rng(seed);
  return verilog::parse_module(generate_design(family, "dut", rng));
}

class EveryDecoy : public ::testing::TestWithParam<DecoyKind> {};

TEST_P(EveryDecoy, InsertsParseableStructure) {
  verilog::Module m = make_design(DesignFamily::Counter, 1);
  util::Rng rng(4);
  const DecoyKind used = insert_decoy(m, GetParam(), rng);
  EXPECT_EQ(used, GetParam());
  EXPECT_NO_THROW(verilog::parse_module(verilog::print_module(m)));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EveryDecoy,
                         ::testing::Values(DecoyKind::Watchdog,
                                           DecoyKind::AddressDecode,
                                           DecoyKind::ErrorGate,
                                           DecoyKind::StatusShadow));

TEST(Decoys, CombinationalDesignFallsBackToErrorGate) {
  verilog::Module m = make_design(DesignFamily::Shifter, 2);
  util::Rng rng(9);
  EXPECT_EQ(insert_decoy(m, DecoyKind::Watchdog, rng), DecoyKind::ErrorGate);
}

TEST(Decoys, WatchdogAddsAlwaysBlock) {
  verilog::Module m = make_design(DesignFamily::Counter, 3);
  const std::size_t before = m.always_blocks.size();
  util::Rng rng(1);
  insert_decoy(m, DecoyKind::Watchdog, rng);
  EXPECT_EQ(m.always_blocks.size(), before + 1);
}

TEST(Decoys, ErrorGateTapsAnOutput) {
  verilog::Module m = make_design(DesignFamily::Counter, 5);
  util::Rng rng(2);
  insert_decoy(m, DecoyKind::ErrorGate, rng);
  // Some output is now driven by a ternary whose else-arm is a _pre net.
  bool found_tap = false;
  for (const auto& assign : m.assigns) {
    if (assign.rhs->kind == verilog::ExprKind::Ternary) {
      const auto& else_arm = assign.rhs->operands[2];
      if (else_arm->kind == verilog::ExprKind::Identifier &&
          else_arm->name.find("_pre") != std::string::npos) {
        found_tap = true;
      }
    }
  }
  EXPECT_TRUE(found_tap);
}

TEST(Decoys, AddBenignDecoysBoundedCount) {
  verilog::Module m = make_design(DesignFamily::Alu, 6);
  const std::size_t nets_before = m.nets.size();
  util::Rng rng(3);
  add_benign_decoys(m, rng, /*max_decoys=*/3, /*first_decoy_probability=*/1.0);
  // Each decoy adds at most 2 nets; at least one decoy was inserted.
  EXPECT_GT(m.nets.size(), nets_before);
  EXPECT_LE(m.nets.size(), nets_before + 6);
}

TEST(Decoys, ZeroProbabilityAddsNothing) {
  verilog::Module m = make_design(DesignFamily::Alu, 7);
  const std::string before = verilog::print_module(m);
  util::Rng rng(4);
  add_benign_decoys(m, rng, 3, 0.0);
  EXPECT_EQ(verilog::print_module(m), before);
}

TEST(Decoys, DeterministicGivenRng) {
  verilog::Module a = make_design(DesignFamily::Fsm, 8);
  verilog::Module b = make_design(DesignFamily::Fsm, 8);
  util::Rng ra(11), rb(11);
  add_benign_decoys(a, ra);
  add_benign_decoys(b, rb);
  EXPECT_EQ(verilog::print_module(a), verilog::print_module(b));
}

}  // namespace
}  // namespace noodle::data
