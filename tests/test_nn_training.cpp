#include "nn/trainer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace noodle::nn {
namespace {

/// Two Gaussian blobs, linearly separable with margin.
void make_blobs(std::size_t n, Matrix& x, std::vector<int>& y, std::uint64_t seed) {
  util::Rng rng(seed);
  x = Matrix(n, 8);
  y.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    y.push_back(label);
    const double center = label == 1 ? 1.5 : -1.5;
    for (std::size_t c = 0; c < 8; ++c) x(i, c) = rng.normal(center, 1.0);
  }
}

TEST(Optimizer, SgdMinimizesQuadratic) {
  // One parameter, loss = (w-3)^2; gradient descent must approach w = 3.
  double w = 0.0, g = 0.0;
  const std::vector<ParamView> params = {{&w, &g, 1}};
  Sgd optimizer(0.1);
  for (int i = 0; i < 200; ++i) {
    g = 2.0 * (w - 3.0);
    optimizer.step(params);
  }
  EXPECT_NEAR(w, 3.0, 1e-4);
}

TEST(Optimizer, SgdMomentumAcceleratesDescent) {
  double w1 = 0.0, g1 = 0.0, w2 = 0.0, g2 = 0.0;
  Sgd plain(0.01), momentum(0.01, 0.9);
  for (int i = 0; i < 50; ++i) {
    g1 = 2.0 * (w1 - 3.0);
    plain.step({{&w1, &g1, 1}});
    g2 = 2.0 * (w2 - 3.0);
    momentum.step({{&w2, &g2, 1}});
  }
  EXPECT_GT(std::abs(w2 - 0.0), std::abs(w1 - 0.0));  // momentum moved further
}

TEST(Optimizer, AdamMinimizesQuadratic) {
  double w = 10.0, g = 0.0;
  Adam optimizer(0.1);
  for (int i = 0; i < 500; ++i) {
    g = 2.0 * (w - 3.0);
    optimizer.step({{&w, &g, 1}});
  }
  EXPECT_NEAR(w, 3.0, 1e-2);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  double w = 1.0, g = 0.0;  // zero task gradient, pure decay
  Sgd optimizer(0.1, 0.0, 0.5);
  for (int i = 0; i < 10; ++i) {
    g = 0.0;
    optimizer.step({{&w, &g, 1}});
  }
  EXPECT_LT(w, 1.0);
}

TEST(Optimizer, ChangedParameterListThrows) {
  double w = 0.0, g = 0.0, w2 = 0.0, g2 = 0.0;
  Adam optimizer;
  optimizer.step({{&w, &g, 1}});
  EXPECT_THROW(optimizer.step({{&w, &g, 1}, {&w2, &g2, 1}}), std::invalid_argument);
}

TEST(Trainer, LearnsSeparableBlobs) {
  Matrix x;
  std::vector<int> y;
  make_blobs(160, x, y, 3);

  util::Rng rng(7);
  Sequential model = make_mlp(8, {16}, 1, rng);
  TrainConfig config;
  config.epochs = 60;
  config.validation_fraction = 0.0;
  const TrainResult result = train_binary_classifier(model, x, y, config);
  EXPECT_GT(result.epochs_run, 0u);
  EXPECT_LT(result.final_train_loss, 0.2);

  // Training accuracy should be high on separable data.
  const std::vector<double> probs = predict_proba(model, x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    correct += ((probs[i] > 0.5) == (y[i] == 1)) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(y.size()), 0.95);
}

TEST(Trainer, CnnFactoryLearnsBlobs) {
  Matrix x;
  std::vector<int> y;
  make_blobs(120, x, y, 11);
  util::Rng rng(5);
  Sequential model = make_cnn(8, rng);
  TrainConfig config;
  config.epochs = 40;
  config.validation_fraction = 0.0;
  train_binary_classifier(model, x, y, config);
  const std::vector<double> probs = predict_proba(model, x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    correct += ((probs[i] > 0.5) == (y[i] == 1)) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(y.size()), 0.9);
}

TEST(Trainer, EarlyStoppingTriggersOnPlateau) {
  // Pure-noise labels: validation loss cannot keep improving, so the
  // patience counter must fire well before the epoch budget.
  util::Rng noise_rng(13);
  Matrix x(100, 8);
  for (double& v : x.data()) v = noise_rng.normal();
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) y.push_back(noise_rng.bernoulli(0.5) ? 1 : 0);
  util::Rng rng(9);
  Sequential model = make_mlp(8, {8}, 1, rng);
  TrainConfig config;
  config.epochs = 500;
  config.validation_fraction = 0.25;
  config.patience = 5;
  const TrainResult result = train_binary_classifier(model, x, y, config);
  EXPECT_LT(result.epochs_run, 500u);  // stopped early
  EXPECT_FALSE(result.validation_loss_curve.empty());
}

TEST(Trainer, DeterministicGivenSeed) {
  Matrix x;
  std::vector<int> y;
  make_blobs(60, x, y, 17);
  TrainConfig config;
  config.epochs = 10;
  config.seed = 99;

  util::Rng rng_a(21);
  Sequential a = make_mlp(8, {8}, 1, rng_a);
  train_binary_classifier(a, x, y, config);
  util::Rng rng_b(21);
  Sequential b = make_mlp(8, {8}, 1, rng_b);
  train_binary_classifier(b, x, y, config);

  EXPECT_EQ(predict_proba(a, x), predict_proba(b, x));
}

TEST(Trainer, RejectsBadInput) {
  Sequential model;
  Matrix empty;
  const std::vector<int> y = {};
  TrainConfig config;
  EXPECT_THROW(train_binary_classifier(model, empty, y, config),
               std::invalid_argument);
}

TEST(Trainer, PredictProbaRequiresSingleLogit) {
  util::Rng rng(1);
  Sequential model = make_mlp(4, {}, 2, rng);
  Matrix x(1, 4);
  EXPECT_THROW(predict_proba(model, x), std::invalid_argument);
}

TEST(Trainer, MakeCnnRejectsNarrowInput) {
  util::Rng rng(1);
  EXPECT_THROW(make_cnn(4, rng), std::invalid_argument);
}

TEST(Model, SaveLoadRoundTrip) {
  util::Rng rng(31);
  Sequential a = make_mlp(6, {12}, 1, rng);
  const auto path = std::filesystem::temp_directory_path() /
                    ("noodle_weights_" + std::to_string(::getpid()) + ".bin");
  a.save_weights(path);

  util::Rng rng2(99);  // different init
  Sequential b = make_mlp(6, {12}, 1, rng2);
  Matrix x(3, 6, 0.5);
  EXPECT_NE(a.forward(x, false).data(), b.forward(x, false).data());
  b.load_weights(path);
  EXPECT_EQ(a.forward(x, false).data(), b.forward(x, false).data());
  std::filesystem::remove(path);
}

TEST(Model, LoadRejectsArchitectureMismatch) {
  util::Rng rng(1);
  Sequential a = make_mlp(6, {12}, 1, rng);
  const auto path = std::filesystem::temp_directory_path() /
                    ("noodle_weights_mismatch_" + std::to_string(::getpid()) + ".bin");
  a.save_weights(path);
  Sequential b = make_mlp(6, {13}, 1, rng);
  EXPECT_THROW(b.load_weights(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Model, LoadMissingFileThrows) {
  util::Rng rng(1);
  Sequential m = make_mlp(2, {}, 1, rng);
  EXPECT_THROW(m.load_weights("/no/such/file.bin"), std::runtime_error);
}

}  // namespace
}  // namespace noodle::nn
