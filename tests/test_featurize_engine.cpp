// The featurization front end's contract: the arena path (string_view
// lexer -> arena AST -> interned NetGraph -> scratch-based extractors,
// driven by feat::FeaturizeWorkspace) produces feature vectors bit-identical
// to the classic owning path it replaced, preserves lexer line/column
// information, keeps the intern pool stable under growth and collisions,
// and — the headline — performs zero heap allocations in steady state
// (counted by the global operator new override below; this suite is its own
// executable, so the override is scoped to it).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/corpus.h"
#include "data/dataset.h"
#include "feat/featurize.h"
#include "feat/tabular.h"
#include "graph/builder.h"
#include "graph/features.h"
#include "util/intern.h"
#include "verilog/lexer.h"
#include "verilog/parser.h"
#include "verilog/symbols.h"

namespace {
std::atomic<std::size_t> g_allocation_count{0};
}

// GCC's -Wmismatched-new-delete heuristic cannot see that these replaced
// operators form a consistent malloc/free pair; the diagnostic is a false
// positive here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace noodle {
namespace {

// ---------------------------------------------------------------------------
// Reference path: the classic owning pipeline, unchanged semantics. The
// arena path must reproduce it bit for bit.
// ---------------------------------------------------------------------------

struct FeaturePair {
  std::vector<double> graph;
  std::vector<double> tabular;
};

FeaturePair reference_features(const std::string& source) {
  const verilog::Module module = verilog::parse_module(source);
  FeaturePair out;
  out.graph = graph::graph_features(graph::build_netgraph(module));
  out.tabular = feat::tabular_features(module);
  return out;
}

FeaturePair workspace_features(feat::FeaturizeWorkspace& ws, const std::string& source) {
  FeaturePair out;
  ws.featurize(source, out.graph, out.tabular);
  return out;
}

void expect_identical(const FeaturePair& want, const FeaturePair& got,
                      const std::string& context) {
  EXPECT_EQ(want.graph, got.graph) << "graph features diverge: " << context;
  EXPECT_EQ(want.tabular, got.tabular) << "tabular features diverge: " << context;
}

const std::vector<data::CircuitSample>& bundled_corpus() {
  static const auto circuits = [] {
    data::CorpusSpec spec;
    spec.design_count = 48;
    spec.infected_fraction = 0.35;
    spec.seed = 20260726;
    return data::build_corpus(spec);
  }();
  return circuits;
}

// ---------------------------------------------------------------------------
// Bit-identity, bundled corpus
// ---------------------------------------------------------------------------

TEST(FeaturizeIdentity, BitIdenticalAcrossBundledCorpus) {
  feat::FeaturizeWorkspace ws;
  for (const auto& circuit : bundled_corpus()) {
    const FeaturePair want = reference_features(circuit.verilog);
    expect_identical(want, workspace_features(ws, circuit.verilog), circuit.name);

    // The convenience path (thread workspace under data::featurize).
    const data::FeatureSample sample = data::featurize(circuit);
    EXPECT_EQ(want.graph, sample.graph) << circuit.name;
    EXPECT_EQ(want.tabular, sample.tabular) << circuit.name;
    EXPECT_EQ(sample.label,
              circuit.infected ? data::kTrojanInfected : data::kTrojanFree);
  }
}

TEST(FeaturizeIdentity, FeaturizeCorpusMatchesPerCircuit) {
  const auto& circuits = bundled_corpus();
  const data::FeatureDataset dataset = data::featurize_corpus(circuits);
  ASSERT_EQ(dataset.size(), circuits.size());
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const FeaturePair want = reference_features(circuits[i].verilog);
    EXPECT_EQ(dataset.samples[i].graph, want.graph) << circuits[i].name;
    EXPECT_EQ(dataset.samples[i].tabular, want.tabular) << circuits[i].name;
  }
}

// ---------------------------------------------------------------------------
// Bit-identity, pathological RTL
// ---------------------------------------------------------------------------

std::string deeply_nested_expression(int depth) {
  std::string expr = "a";
  for (int i = 0; i < depth; ++i) {
    expr = "(" + expr + (i % 3 == 0 ? " + b" : i % 3 == 1 ? " ^ c" : " & d") + ")";
  }
  return "module deep_expr(input [7:0] a, b, c, d, output [7:0] y);\n"
         "  assign y = " + expr + ";\n"
         "endmodule\n";
}

std::string long_identifier_module() {
  // Identifiers far past any SSO threshold; interning must store them once.
  const std::string big_a(300, 'a');
  const std::string big_b = std::string(250, 'b') + "_$tail";
  return "module long_idents(input [15:0] " + big_a + ", output reg [15:0] " + big_b +
         ");\n"
         "  always @(*) " + big_b + " = " + big_a + " ^ {8{" + big_a + "[1]}};\n"
         "endmodule\n";
}

std::string deeply_nested_statements(int depth) {
  std::string source =
      "module deep_stmt(input clk, input [31:0] s, output reg [31:0] q);\n"
      "  always @(posedge clk) begin\n";
  for (int i = 0; i < depth; ++i) {
    source += "    if (s > " + std::to_string(i) + ") begin\n";
  }
  source += "      q <= s;\n";
  for (int i = 0; i < depth; ++i) {
    source += "    end else q <= " + std::to_string(i) + ";\n";
  }
  source += "  end\nendmodule\n";
  return source;
}

std::string wide_case_module(int items) {
  std::string source =
      "module wide_case(input [15:0] s, output reg [15:0] y);\n"
      "  always @(*)\n    case (s)\n";
  for (int i = 0; i < items; ++i) {
    source += "      16'd" + std::to_string(i * 3) + ", 16'd" + std::to_string(i * 3 + 1) +
              ": y = 16'd" + std::to_string(i) + ";\n";
  }
  source += "      default: case (s[3:0])\n        4'h5: y = 16'hBEEF;\n"
            "        default: y = 16'd0;\n      endcase\n";
  source += "    endcase\nendmodule\n";
  return source;
}

std::string kitchen_sink_module() {
  // Every grammar production the subset supports, in one module.
  return R"(
`timescale 1ns/1ps
module kitchen #(parameter W = 8, parameter D = W * 2) (
    input clk, input rst_n, input signed [W-1:0] a, b,
    output reg [D-1:0] acc, output valid);
  localparam HALF = D / 2;
  wire [W-1:0] mixed = a ^ b;       // comment
  wire [D-1:0] spread;
  reg [HALF-1:0] state;
  integer i;
  assign spread = {mixed, {(W/8){{4'b1010, 4'hF}}}}, valid = |state & ~^spread[HALF-1:2];
  /* block
     comment */
  always @(posedge clk or negedge rst_n)
    if (!rst_n) begin
      acc <= {D{1'b0}};
      state <= 8'h00;
    end else begin
      for (i = 0; i < 4; i = i + 1)
        acc <= acc + {spread[3:0], mixed};
      state <= (state == 8'hA5) ? 8'd0 : state + 8'd1;
    end
  always @(*) ;
  initial begin
    $display("hello %d", 1 + 2);
    $finish;
  end
  sub u0 (.x(mixed[3]), .y(), .z(a[0]));
  sub u1 (mixed[0], valid, b[1]);
endmodule
)";
}

TEST(FeaturizeIdentity, PathologicalRtl) {
  feat::FeaturizeWorkspace ws;
  const std::vector<std::pair<const char*, std::string>> cases = {
      {"deep_expr", deeply_nested_expression(150)},
      {"long_idents", long_identifier_module()},
      {"deep_stmt", deeply_nested_statements(60)},
      {"wide_case", wide_case_module(120)},
      {"kitchen_sink", kitchen_sink_module()},
  };
  for (const auto& [name, source] : cases) {
    SCOPED_TRACE(name);
    const FeaturePair want = reference_features(source);
    expect_identical(want, workspace_features(ws, source), name);
    // And again on the same (already warm) workspace — reuse must not leak
    // state between featurize calls.
    expect_identical(want, workspace_features(ws, source), name);
  }
}

TEST(FeaturizeIdentity, ManyModulesFile) {
  std::string source;
  const int module_count = 30;
  for (int i = 0; i < module_count; ++i) {
    source += "module m" + std::to_string(i) +
              "(input [7:0] x_" + std::to_string(i) + ", output [7:0] y);\n"
              "  assign y = x_" + std::to_string(i) + " + 8'd" + std::to_string(i) +
              ";\nendmodule\n";
  }
  // Owning and arena parses of the same multi-module file must agree
  // module by module.
  const verilog::SourceFile owned = verilog::parse_source(source);
  verilog::ParserWorkspace pws;
  const verilog::fast::SourceFile& fast_file = pws.parse(source);
  ASSERT_EQ(owned.modules.size(), static_cast<std::size_t>(module_count));
  ASSERT_EQ(fast_file.modules.size(), owned.modules.size());

  graph::NetGraph g(pws.symbols());
  graph::BuildScratch build_scratch;
  graph::FeatureScratch feature_scratch;
  feat::TabularScratch tabular_scratch;
  for (std::size_t i = 0; i < owned.modules.size(); ++i) {
    std::vector<double> want_graph = graph::graph_features(
        graph::build_netgraph(owned.modules[i]));
    std::vector<double> want_tab = feat::tabular_features(owned.modules[i]);

    std::vector<double> got_graph(graph::kGraphFeatureDim);
    std::vector<double> got_tab(feat::kTabularFeatureDim);
    graph::build_netgraph(fast_file.modules[i], g, build_scratch);
    graph::graph_features(g, got_graph, feature_scratch);
    feat::tabular_features(fast_file.modules[i], got_tab, tabular_scratch);
    EXPECT_EQ(want_graph, got_graph) << "module " << i;
    EXPECT_EQ(want_tab, got_tab) << "module " << i;
  }
}

TEST(FeaturizeIdentity, ParseErrorLeavesWorkspaceReusable) {
  feat::FeaturizeWorkspace ws;
  std::vector<double> g, t;
  EXPECT_THROW(ws.featurize("module broken(input a; endmodule", g, t),
               verilog::ParseError);
  EXPECT_THROW(ws.featurize("module a; endmodule module b; endmodule", g, t),
               verilog::ParseError);
  EXPECT_THROW(ws.featurize("module bad; wire w = 4'bxx01; endmodule", g, t),
               verilog::LexError);
  const std::string good = bundled_corpus().front().verilog;
  expect_identical(reference_features(good), workspace_features(ws, good), "post-error");
}

// ---------------------------------------------------------------------------
// Lexer: line/column preservation under the string_view rewrite
// ---------------------------------------------------------------------------

TEST(LexerPositions, LineAndColumnSurviveViews) {
  const std::string source =
      "module top; // trailing comment\n"
      "  wire /* inline */ w;\n"
      "  /* block\n"
      "     spanning */ assign w = 8'hFF;\n"
      "endmodule";
  const auto tokens = verilog::lex(source);
  struct Want {
    const char* text;
    int line;
    int column;
  };
  const std::vector<Want> want = {
      {"module", 1, 1}, {"top", 1, 8},    {";", 1, 11},   {"wire", 2, 3},
      {"w", 2, 21},     {";", 2, 22},     {"assign", 4, 18}, {"w", 4, 25},
      {"=", 4, 27},     {"8'hFF", 4, 29}, {";", 4, 34},   {"endmodule", 5, 1},
  };
  ASSERT_EQ(tokens.size(), want.size() + 1);  // + End
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(tokens[i].text, want[i].text) << "token " << i;
    EXPECT_EQ(tokens[i].line, want[i].line) << "token " << i;
    EXPECT_EQ(tokens[i].column, want[i].column) << "token " << i;
  }
  EXPECT_TRUE(tokens.back().is(verilog::TokenKind::End));
  EXPECT_EQ(tokens.back().line, 5);
}

TEST(LexerPositions, TokensAreViewsIntoTheSource) {
  const std::string source = "module m(input abcdef); endmodule";
  std::vector<verilog::Token> tokens;
  verilog::lex_into(source, tokens);
  const auto* ident = &tokens[4];  // module m ( input abcdef
  ASSERT_EQ(ident->text, "abcdef");
  // Zero-copy contract: identifier text points into the source buffer.
  EXPECT_GE(ident->text.data(), source.data());
  EXPECT_LT(ident->text.data(), source.data() + source.size());

  // Reusing the buffer re-lexes without losing positions.
  const std::string source2 = "//c\nwire x;";
  verilog::lex_into(source2, tokens);
  ASSERT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 6);
}

TEST(LexerPositions, PunctIdsMatchTheTable) {
  const auto tokens = verilog::lex("a <= b << {c, d} === e;");
  for (const auto& tok : tokens) {
    if (tok.is(verilog::TokenKind::Punct)) {
      ASSERT_NE(tok.punct, 0) << tok.text;
      EXPECT_EQ(verilog::kPunctSpellings[tok.punct - 1], tok.text);
    }
  }
}

TEST(LexerPositions, KeywordSetMatchesTheSubset) {
  // The exact reserved-word list of the supported subset (the pre-refactor
  // lexer's table, verbatim). The switch-based recognizer must accept all
  // of these and nothing near them.
  const char* keywords[] = {
      "module",   "endmodule", "input",  "output", "inout",     "wire",
      "reg",      "assign",    "always", "initial", "begin",    "end",
      "if",       "else",      "case",   "casez",  "casex",     "endcase",
      "default",  "for",       "posedge", "negedge", "or",      "parameter",
      "localparam", "integer", "signed", "and",    "not",       "nand",
      "nor",      "xor",       "xnor",   "buf",    "function",  "endfunction",
      "generate", "endgenerate",
  };
  for (const char* kw : keywords) {
    EXPECT_TRUE(verilog::is_verilog_keyword(kw)) << kw;
  }
  for (const char* not_kw : {"", "modul", "modules", "endgener", "endgenerates",
                             "Or", "IF", "wired", "regs", "xnor2", "cased"}) {
    EXPECT_FALSE(verilog::is_verilog_keyword(not_kw)) << not_kw;
  }
}

TEST(LexerPositions, ErrorsKeepCoordinates) {
  try {
    verilog::lex("wire w;\n  /* never closed");
    FAIL() << "expected LexError";
  } catch (const verilog::LexError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 3);
  }
  try {
    verilog::parse_source("module m;\n  wire = 1;\nendmodule");
    FAIL() << "expected ParseError";
  } catch (const verilog::ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

// ---------------------------------------------------------------------------
// Intern pool: growth, collisions, stability
// ---------------------------------------------------------------------------

TEST(SymbolTable, GrowthKeepsIdsAndSpellingsStable) {
  util::SymbolTable table;
  std::unordered_map<std::string, util::Symbol> reference;
  std::vector<std::string> spellings;
  // Enough strings to force several rehashes; mix of short/long and shared
  // prefixes maximizes bucket collisions along the way.
  for (int i = 0; i < 20000; ++i) {
    std::string s = (i % 3 == 0 ? "sig_" : i % 3 == 1 ? "net$" : "very_long_prefix_");
    s += std::to_string(i * 7919 % 4096);
    if (i % 5 == 0) s += std::string(1 + i % 40, 'x');
    spellings.push_back(std::move(s));
  }
  for (const auto& s : spellings) {
    const util::Symbol id = table.intern(s);
    const auto [it, inserted] = reference.emplace(s, id);
    if (!inserted) {
      EXPECT_EQ(it->second, id) << s;  // re-intern returns the same id
    }
  }
  EXPECT_EQ(table.size(), reference.size());
  // After all growth, every id still resolves to its original spelling and
  // every spelling still finds its original id.
  for (const auto& [s, id] : reference) {
    EXPECT_EQ(table.text(id), s);
    EXPECT_EQ(table.find(s), id);
    EXPECT_EQ(table.intern(s), id);
  }
  EXPECT_EQ(table.find("never_interned"), util::kNoSymbol);
  EXPECT_THROW(table.text(util::kNoSymbol), std::out_of_range);
}

TEST(SymbolTable, PreinternedVocabularyHasFixedIds) {
  util::SymbolTable table;
  verilog::preintern_verilog_symbols(table);
  EXPECT_EQ(table.size(), verilog::kPreinternedSymbolCount);
  for (std::size_t i = 0; i < verilog::kPunctSpellings.size(); ++i) {
    EXPECT_EQ(table.intern(verilog::kPunctSpellings[i]), static_cast<util::Symbol>(i));
  }
  EXPECT_EQ(table.text(verilog::kSymTernaryMux), "?:");
  EXPECT_EQ(table.text(verilog::kSymLhsConcat), "{lhs}");
  // Operator classification dispatches on these fixed ids.
  EXPECT_EQ(graph::op_bucket(table.intern("==")), 0);
  EXPECT_EQ(graph::op_bucket(table.intern("<")), 1);
  EXPECT_EQ(graph::op_bucket(table.intern("^")), 2);
  EXPECT_EQ(graph::op_bucket(table.intern("<<")), 7);
  EXPECT_EQ(graph::op_bucket(table.intern("?")), 9);  // not an operator bucket
}

TEST(SymbolTable, ResetKeepsCapacityAndReissuesIds) {
  util::SymbolTable table;
  verilog::preintern_verilog_symbols(table);
  const util::Symbol a = table.intern("alpha");
  table.intern("beta");
  table.reset();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find("alpha"), util::kNoSymbol);
  verilog::preintern_verilog_symbols(table);  // vocabulary ids come back fixed
  EXPECT_EQ(table.text(verilog::kSymTernaryMux), "?:");
  EXPECT_EQ(table.intern("alpha"), a);  // same insert order -> same dense id
}

TEST(SymbolTable, RetentionLimitBoundsLongLivedWorkers) {
  // A tiny limit makes the trim observable: the pool must never exceed
  // limit + one parse's worth of fresh symbols, and results stay correct
  // across resets.
  feat::FeaturizeWorkspace ws(verilog::kPreinternedSymbolCount + 64);
  std::vector<double> g, t;
  for (int round = 0; round < 20; ++round) {
    // Every round uses a disjoint identifier vocabulary.
    std::string source = "module m(input [7:0] in_" + std::to_string(round) +
                         ", output [7:0] out_" + std::to_string(round) + ");\n";
    for (int w = 0; w < 40; ++w) {
      source += "  wire u" + std::to_string(round) + "_" + std::to_string(w) + ";\n";
    }
    source += "  assign out_" + std::to_string(round) + " = in_" +
              std::to_string(round) + ";\nendmodule\n";
    ws.featurize(source, g, t);
    EXPECT_EQ(std::vector<double>(g), reference_features(source).graph) << round;
    EXPECT_LT(ws.parser().symbols()->size(),
              static_cast<std::size_t>(verilog::kPreinternedSymbolCount) + 200)
        << "intern pool must stay bounded under diverse inputs";
  }
}

TEST(SymbolMap, PutFindOverwriteAcrossGrowth) {
  util::SymbolMap<std::size_t> map;
  EXPECT_EQ(map.find(7), nullptr);
  for (util::Symbol k = 0; k < 5000; ++k) map.put(k * 3, k);
  EXPECT_EQ(map.size(), 5000u);
  for (util::Symbol k = 0; k < 5000; ++k) {
    const auto* v = map.find(k * 3);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(map.find(1), nullptr);
  map.put(9, 999);  // overwrite
  EXPECT_EQ(*map.find(9), 999u);
  EXPECT_EQ(map.size(), 5000u);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(9), nullptr);
  map.put(9, 1);  // reusable after clear
  EXPECT_EQ(*map.find(9), 1u);
}

// ---------------------------------------------------------------------------
// Graph: interned labels, in-place histogram, capacity-preserving clear
// ---------------------------------------------------------------------------

TEST(NetGraphInterning, LabelsResolveAndHistogramMatches) {
  graph::NetGraph g;
  const auto a = g.add_node(graph::NodeType::Input, "a", 4);
  const auto op = g.add_node(graph::NodeType::Op, "==");
  const auto y = g.add_node(graph::NodeType::Output, "y");
  g.add_edge(a, op);
  g.add_edge(op, y);
  EXPECT_EQ(g.label(a), "a");
  EXPECT_EQ(g.label(op), "==");
  EXPECT_EQ(g.node(op).label, verilog::punct_symbol(verilog::punct_id_of("==")));

  const std::vector<double> allocated = g.type_histogram();
  std::vector<double> in_place(graph::kNodeTypeCount, -1.0);
  g.type_histogram(in_place);
  EXPECT_EQ(allocated, in_place);

  g.clear();
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  // Labels interned before clear() stay valid (the pool is untouched).
  const auto b = g.add_node(graph::NodeType::Wire, "a");
  EXPECT_EQ(g.label(b), "a");
  EXPECT_THROW(g.node(1), std::out_of_range);
  EXPECT_THROW(g.successors(1), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Zero allocations in steady state + workspace reuse across sizes
// ---------------------------------------------------------------------------

TEST(FeaturizeAllocations, SteadyStateIsAllocationFree) {
  feat::FeaturizeWorkspace ws;
  const std::string& source = bundled_corpus().front().verilog;
  std::vector<double> graph_out, tabular_out;
  // Warm-up: grows the token buffer, arena, intern pool, graph, scratch.
  ws.featurize(source, graph_out, tabular_out);
  ws.featurize(source, graph_out, tabular_out);

  const std::size_t before = g_allocation_count.load();
  for (int i = 0; i < 50; ++i) ws.featurize(source, graph_out, tabular_out);
  EXPECT_EQ(g_allocation_count.load() - before, 0u)
      << "steady-state featurize must not touch the heap";
}

TEST(FeaturizeAllocations, SteadyStateAcrossAlternatingSources) {
  feat::FeaturizeWorkspace ws;
  const auto& circuits = bundled_corpus();
  std::vector<double> graph_out, tabular_out;
  // Two different circuits; warm on both, then alternate.
  const std::string& small = circuits[0].verilog;
  const std::string& large = circuits[1].verilog;
  for (int i = 0; i < 2; ++i) {
    ws.featurize(small, graph_out, tabular_out);
    ws.featurize(large, graph_out, tabular_out);
  }
  const std::size_t before = g_allocation_count.load();
  for (int i = 0; i < 20; ++i) {
    ws.featurize(i % 2 == 0 ? small : large, graph_out, tabular_out);
  }
  EXPECT_EQ(g_allocation_count.load() - before, 0u);
}

TEST(FeaturizeAllocations, ReuseAcrossShrinkingAndGrowingSources) {
  // Results after aggressive reuse must match a fresh workspace exactly,
  // whatever order sizes arrive in.
  const std::string small = "module s(input a, output y); assign y = !a; endmodule";
  const std::string big = wide_case_module(80);
  const std::string medium = deeply_nested_expression(40);

  feat::FeaturizeWorkspace reused;
  for (const std::string* source : {&big, &small, &medium, &small, &big, &medium}) {
    feat::FeaturizeWorkspace fresh;
    expect_identical(workspace_features(fresh, *source),
                     workspace_features(reused, *source), "shrink/grow reuse");
    expect_identical(reference_features(*source), workspace_features(reused, *source),
                     "shrink/grow vs reference");
  }
}

}  // namespace
}  // namespace noodle
