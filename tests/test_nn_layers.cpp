#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "nn/model.h"

namespace noodle::nn {
namespace {

/// Finite-difference gradient check: for every input element and every
/// parameter, compare the analytic gradient of a scalar loss L = sum(out^2)/2
/// against the central difference.
void gradient_check(Layer& layer, Matrix input, double tolerance = 1e-6) {
  constexpr double kEps = 1e-5;

  const auto loss_of = [&layer](const Matrix& x) {
    // Dropout must be off / deterministic for the check: use train=true so
    // BatchNorm uses batch stats, but callers avoid stochastic layers here.
    Matrix out = layer.forward(x, /*train=*/true);
    double total = 0.0;
    for (const double v : out.data()) total += 0.5 * v * v;
    return total;
  };

  // Analytic gradients.
  layer.zero_grad();
  Matrix out = layer.forward(input, /*train=*/true);
  Matrix grad_out = out;  // dL/dout = out for L = sum(out^2)/2
  const Matrix grad_in = layer.backward(grad_out);

  // Input gradient check.
  for (std::size_t i = 0; i < input.size(); ++i) {
    Matrix plus = input, minus = input;
    plus.data()[i] += kEps;
    minus.data()[i] -= kEps;
    const double numeric = (loss_of(plus) - loss_of(minus)) / (2.0 * kEps);
    EXPECT_NEAR(grad_in.data()[i], numeric, tolerance)
        << "input grad mismatch at " << i;
  }

  // Parameter gradient check.
  for (ParamView p : layer.params()) {
    for (std::size_t j = 0; j < p.size; ++j) {
      const double saved = p.values[j];
      p.values[j] = saved + kEps;
      const double up = loss_of(input);
      p.values[j] = saved - kEps;
      const double down = loss_of(input);
      p.values[j] = saved;
      const double numeric = (up - down) / (2.0 * kEps);
      EXPECT_NEAR(p.grads[j], numeric, tolerance) << "param grad mismatch at " << j;
    }
  }
}

Matrix random_input(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal();
  return m;
}

TEST(Dense, GradientCheck) {
  util::Rng rng(1);
  Dense layer(5, 3, rng);
  gradient_check(layer, random_input(4, 5, 2));
}

TEST(Dense, ForwardShapeAndBias) {
  util::Rng rng(1);
  Dense layer(2, 1, rng);
  // Zero the weights; output must equal the (zero) bias.
  for (ParamView p : layer.params()) std::fill(p.values, p.values + p.size, 0.0);
  const Matrix out = layer.forward(random_input(3, 2, 4), false);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 1u);
  for (const double v : out.data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Dense, RejectsWrongWidth) {
  util::Rng rng(1);
  Dense layer(4, 2, rng);
  EXPECT_THROW(layer.forward(random_input(1, 5, 3), false), std::invalid_argument);
  EXPECT_THROW(layer.output_cols(5), std::invalid_argument);
  EXPECT_EQ(layer.output_cols(4), 2u);
}

TEST(Dense, ZeroSizeThrows) {
  util::Rng rng(1);
  EXPECT_THROW(Dense(0, 3, rng), std::invalid_argument);
}

TEST(Conv1D, GradientCheck) {
  util::Rng rng(3);
  Conv1D layer(2, 6, 3, 3, rng);  // 2 channels x len 6 -> 3 channels x len 4
  gradient_check(layer, random_input(2, 12, 5));
}

TEST(Conv1D, KnownConvolutionValue) {
  util::Rng rng(1);
  Conv1D layer(1, 4, 1, 2, rng);
  // Set kernel = [1, -1], bias = 0: output is the discrete difference.
  auto params = layer.params();
  params[0].values[0] = 1.0;
  params[0].values[1] = -1.0;
  params[1].values[0] = 0.0;
  Matrix input(1, 4);
  input(0, 0) = 1.0;
  input(0, 1) = 4.0;
  input(0, 2) = 9.0;
  input(0, 3) = 16.0;
  const Matrix out = layer.forward(input, false);
  ASSERT_EQ(out.cols(), 3u);
  EXPECT_DOUBLE_EQ(out(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(out(0, 1), -5.0);
  EXPECT_DOUBLE_EQ(out(0, 2), -7.0);
}

TEST(Conv1D, OutputColsAndValidation) {
  util::Rng rng(1);
  Conv1D layer(2, 8, 4, 3, rng);
  EXPECT_EQ(layer.output_cols(16), 4u * 6u);
  EXPECT_THROW(layer.output_cols(15), std::invalid_argument);
  EXPECT_THROW(Conv1D(1, 4, 1, 5, rng), std::invalid_argument);  // kernel > len
  EXPECT_THROW(Conv1D(0, 4, 1, 2, rng), std::invalid_argument);
}

TEST(ReLU, ForwardClampsAndBackwardMasks) {
  ReLU layer;
  Matrix input(1, 4);
  input(0, 0) = -2.0;
  input(0, 1) = -0.5;
  input(0, 2) = 0.5;
  input(0, 3) = 2.0;
  const Matrix out = layer.forward(input, true);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 3), 2.0);
  Matrix grad(1, 4, 1.0);
  const Matrix grad_in = layer.backward(grad);
  EXPECT_DOUBLE_EQ(grad_in(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grad_in(0, 2), 1.0);
}

TEST(ReLU, GradientCheck) {
  ReLU layer;
  // Shift away from the kink to keep finite differences clean.
  Matrix input = random_input(3, 6, 7);
  for (double& v : input.data()) {
    if (std::abs(v) < 0.1) v += 0.2;
  }
  gradient_check(layer, input);
}

TEST(LeakyReLU, NegativeSlope) {
  LeakyReLU layer(0.1);
  Matrix input(1, 2);
  input(0, 0) = -10.0;
  input(0, 1) = 10.0;
  const Matrix out = layer.forward(input, true);
  EXPECT_DOUBLE_EQ(out(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 10.0);
}

TEST(LeakyReLU, GradientCheck) {
  LeakyReLU layer(0.2);
  Matrix input = random_input(2, 5, 8);
  for (double& v : input.data()) {
    if (std::abs(v) < 0.1) v += 0.2;
  }
  gradient_check(layer, input);
}

TEST(Sigmoid, ForwardRangeAndGradient) {
  Sigmoid layer;
  const Matrix out = layer.forward(random_input(2, 4, 9), true);
  for (const double v : out.data()) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  Sigmoid fresh;
  gradient_check(fresh, random_input(2, 4, 10));
}

TEST(Tanh, GradientCheck) {
  Tanh layer;
  gradient_check(layer, random_input(2, 4, 11));
}

TEST(Dropout, EvalModeIsIdentity) {
  util::Rng rng(1);
  Dropout layer(0.5, rng);
  const Matrix input = random_input(2, 8, 12);
  const Matrix out = layer.forward(input, /*train=*/false);
  EXPECT_EQ(out.data(), input.data());
}

TEST(Dropout, TrainModeZeroesApproxRate) {
  util::Rng rng(2);
  Dropout layer(0.4, rng);
  const Matrix input(10, 100, 1.0);
  const Matrix out = layer.forward(input, /*train=*/true);
  std::size_t zeros = 0;
  for (const double v : out.data()) zeros += v == 0.0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.4, 0.06);
  // Kept activations are scaled by 1/(1-rate).
  for (const double v : out.data()) {
    if (v != 0.0) {
      EXPECT_NEAR(v, 1.0 / 0.6, 1e-12);
    }
  }
}

TEST(Dropout, BackwardUsesSameMask) {
  util::Rng rng(3);
  Dropout layer(0.5, rng);
  const Matrix input(1, 50, 1.0);
  const Matrix out = layer.forward(input, true);
  const Matrix grad_in = layer.backward(Matrix(1, 50, 1.0));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(grad_in.data()[i], out.data()[i]);  // same scaling/zeros
  }
}

TEST(Dropout, RejectsBadRate) {
  util::Rng rng(1);
  EXPECT_THROW(Dropout(-0.1, rng), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0, rng), std::invalid_argument);
}

TEST(BatchNorm, NormalizesBatchInTraining) {
  BatchNorm1d layer(2);
  Matrix input(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    input(r, 0) = static_cast<double>(r) * 10.0;
    input(r, 1) = 5.0;  // constant feature
  }
  const Matrix out = layer.forward(input, true);
  double mean0 = 0.0;
  for (std::size_t r = 0; r < 4; ++r) mean0 += out(r, 0);
  EXPECT_NEAR(mean0 / 4.0, 0.0, 1e-9);
}

TEST(BatchNorm, GradientCheck) {
  BatchNorm1d layer(3);
  gradient_check(layer, random_input(6, 3, 13), 1e-5);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm1d layer(1, /*momentum=*/1.0);  // running stats = last batch
  Matrix batch(4, 1);
  batch(0, 0) = 0.0;
  batch(1, 0) = 2.0;
  batch(2, 0) = 4.0;
  batch(3, 0) = 6.0;  // mean 3, var 5
  layer.forward(batch, true);
  Matrix probe(1, 1);
  probe(0, 0) = 3.0;
  const Matrix out = layer.forward(probe, false);
  EXPECT_NEAR(out(0, 0), 0.0, 1e-6);  // (3 - 3)/sqrt(5+eps)
}

TEST(BatchNorm, BackwardWithoutTrainingForwardThrows) {
  BatchNorm1d layer(2);
  layer.forward(random_input(3, 2, 14), /*train=*/false);
  EXPECT_THROW(layer.backward(Matrix(3, 2, 1.0)), std::logic_error);
}

TEST(Sequential, ChainsLayersAndValidatesShapes) {
  util::Rng rng(5);
  Sequential model;
  model.add(std::make_unique<Dense>(4, 8, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(8, 1, rng));
  EXPECT_EQ(model.output_cols(4), 1u);
  EXPECT_THROW(model.output_cols(3), std::invalid_argument);
  const Matrix out = model.forward(random_input(5, 4, 15), false);
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 1u);
  EXPECT_GT(model.parameter_count(), 0u);
}

TEST(Activations, BackwardRejectsMismatchedGradShape) {
  // Backward indexes grad_output by the cached forward tensor; a wrong
  // batch shape must throw instead of reading out of bounds.
  const Matrix input = random_input(3, 4, 21);
  const Matrix wrong_rows(2, 4, 1.0);
  const Matrix wrong_cols(3, 5, 1.0);

  ReLU relu;
  relu.forward(input, /*train=*/true);
  EXPECT_THROW(relu.backward(wrong_rows), std::invalid_argument);
  EXPECT_THROW(relu.backward(wrong_cols), std::invalid_argument);
  EXPECT_NO_THROW(relu.backward(Matrix(3, 4, 1.0)));

  LeakyReLU leaky(0.2);
  leaky.forward(input, /*train=*/true);
  EXPECT_THROW(leaky.backward(wrong_rows), std::invalid_argument);

  Sigmoid sigmoid;
  sigmoid.forward(input, /*train=*/true);
  EXPECT_THROW(sigmoid.backward(wrong_rows), std::invalid_argument);
  EXPECT_THROW(sigmoid.backward(wrong_cols), std::invalid_argument);

  Tanh tanh_layer;
  tanh_layer.forward(input, /*train=*/true);
  EXPECT_THROW(tanh_layer.backward(wrong_cols), std::invalid_argument);
}

TEST(Activations, BackwardWithoutForwardRejectsNonEmptyGrad) {
  // No cached forward at all: the 0x0 cache can never match a real batch.
  ReLU relu;
  EXPECT_THROW(relu.backward(Matrix(2, 2, 1.0)), std::invalid_argument);
  Sigmoid sigmoid;
  EXPECT_THROW(sigmoid.backward(Matrix(1, 1, 1.0)), std::invalid_argument);
}

TEST(Dropout, BackwardRejectsMismatchedGradShape) {
  util::Rng rng(4);
  Dropout layer(0.5, rng);
  layer.forward(random_input(4, 6, 22), /*train=*/true);
  EXPECT_THROW(layer.backward(Matrix(3, 6, 1.0)), std::invalid_argument);
  EXPECT_THROW(layer.backward(Matrix(4, 5, 1.0)), std::invalid_argument);
  EXPECT_NO_THROW(layer.backward(Matrix(4, 6, 1.0)));
  // Rate 0 has no mask (forward is the identity): backward passes through.
  Dropout identity(0.0, rng);
  identity.forward(random_input(2, 3, 23), /*train=*/true);
  EXPECT_NO_THROW(identity.backward(Matrix(2, 3, 1.0)));
}

TEST(BatchNorm, BackwardRejectsMismatchedBatch) {
  BatchNorm1d layer(3);
  layer.forward(random_input(6, 3, 24), /*train=*/true);
  EXPECT_THROW(layer.backward(Matrix(4, 3, 1.0)), std::invalid_argument);
  EXPECT_NO_THROW(layer.backward(Matrix(6, 3, 1.0)));
}

TEST(Matrix, FromRowsAndGather) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.rows(), 3u);
  const std::vector<std::size_t> idx = {2, 0};
  const Matrix g = m.gather_rows(idx);
  EXPECT_DOUBLE_EQ(g(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 2.0);
  EXPECT_THROW(m.gather_rows(std::vector<std::size_t>{7}), std::out_of_range);
  EXPECT_THROW(Matrix::from_rows({{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecksBothDimensions) {
  const Matrix m(2, 3);
  EXPECT_NO_THROW(m.at(1, 2));
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 3), std::out_of_range);
}

TEST(Matrix, DegenerateZeroColumnMatrixRejectsEveryColumnIndex) {
  // A rows x 0 matrix has valid (empty) rows but NO valid element: at(r, 0)
  // must throw instead of silently passing the bounds check and indexing
  // into nothing.
  Matrix m(3, 0);
  EXPECT_EQ(m.row(1).size(), 0u);
  EXPECT_THROW(m.row(3), std::out_of_range);
  EXPECT_THROW(m.at(0, 0), std::out_of_range);
  EXPECT_THROW(m.at(2, 5), std::out_of_range);
  const Matrix& cm = m;
  EXPECT_THROW(cm.at(0, 0), std::out_of_range);
  EXPECT_EQ(cm.row(0).size(), 0u);
}

}  // namespace
}  // namespace noodle::nn
