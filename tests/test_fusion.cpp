#include "fusion/models.h"

#include <gtest/gtest.h>

#include "metrics/roc.h"

namespace noodle::fusion {
namespace {

/// Synthetic bimodal dataset: graph features separate at +-1.5, tabular at
/// -+1.0 (inverted), so both modalities carry signal.
data::FeatureDataset blob_dataset(std::size_t per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  data::FeatureDataset ds;
  for (const int label : {0, 1}) {
    for (std::size_t i = 0; i < per_class; ++i) {
      data::FeatureSample s;
      const double g = label == 1 ? 1.5 : -1.5;
      const double t = label == 1 ? -1.0 : 1.0;
      for (int d = 0; d < 10; ++d) s.graph.push_back(rng.normal(g, 1.0));
      for (int d = 0; d < 9; ++d) s.tabular.push_back(rng.normal(t, 1.0));
      s.label = label;
      ds.samples.push_back(std::move(s));
    }
  }
  // Interleave labels for realism.
  util::Rng shuffle_rng(seed + 1);
  shuffle_rng.shuffle(ds.samples);
  return ds;
}

FusionConfig fast_config() {
  FusionConfig config;
  config.train.epochs = 25;
  config.train.validation_fraction = 0.0;
  config.seed = 7;
  return config;
}

class ArmBehaviour : public ::testing::Test {
 protected:
  void SetUp() override {
    train_ = blob_dataset(40, 1);
    cal_ = blob_dataset(15, 2);
    test_ = blob_dataset(15, 3);
  }
  data::FeatureDataset train_, cal_, test_;
};

TEST_F(ArmBehaviour, SingleModalityGraphLearns) {
  SingleModalityModel model(Modality::Graph, fast_config());
  model.fit(train_, cal_);
  const auto predictions = model.predict_all(test_);
  std::vector<double> probs;
  for (const auto& p : predictions) probs.push_back(p.probability);
  EXPECT_GT(metrics::roc_auc(probs, test_.labels()), 0.85);
}

TEST_F(ArmBehaviour, SingleModalityTabularLearns) {
  SingleModalityModel model(Modality::Tabular, fast_config());
  model.fit(train_, cal_);
  const auto predictions = model.predict_all(test_);
  std::vector<double> probs;
  for (const auto& p : predictions) probs.push_back(p.probability);
  EXPECT_GT(metrics::roc_auc(probs, test_.labels()), 0.85);
}

TEST_F(ArmBehaviour, EarlyFusionLearns) {
  EarlyFusionModel model(fast_config());
  model.fit(train_, cal_);
  const auto predictions = model.predict_all(test_);
  std::vector<double> probs;
  for (const auto& p : predictions) probs.push_back(p.probability);
  EXPECT_GT(metrics::roc_auc(probs, test_.labels()), 0.9);
}

TEST_F(ArmBehaviour, LateFusionLearnsAndExposesModalities) {
  LateFusionModel model(fast_config());
  model.fit(train_, cal_);
  std::vector<double> probs;
  for (const auto& sample : test_.samples) {
    const Prediction p = model.predict(sample);
    probs.push_back(p.probability);
    // Per-modality p-values exposed after each prediction.
    const auto& per_modality = model.last_modality_p_values();
    for (const auto& pv : per_modality) {
      EXPECT_GT(pv[0], 0.0);
      EXPECT_LE(pv[0], 1.0);
      EXPECT_GT(pv[1], 0.0);
      EXPECT_LE(pv[1], 1.0);
    }
  }
  EXPECT_GT(metrics::roc_auc(probs, test_.labels()), 0.9);
}

TEST_F(ArmBehaviour, PredictionsWellFormed) {
  for (const bool late : {false, true}) {
    std::unique_ptr<ClassifierArm> arm;
    if (late) arm = std::make_unique<LateFusionModel>(fast_config());
    else arm = std::make_unique<EarlyFusionModel>(fast_config());
    arm->fit(train_, cal_);
    for (const auto& p : arm->predict_all(test_)) {
      EXPECT_GE(p.probability, 0.0);
      EXPECT_LE(p.probability, 1.0);
      EXPECT_GT(p.p_values[0], 0.0);
      EXPECT_LE(p.p_values[0], 1.0);
      EXPECT_GT(p.p_values[1], 0.0);
      EXPECT_LE(p.p_values[1], 1.0);
    }
  }
}

TEST_F(ArmBehaviour, MissingModalityRejected) {
  train_.samples[0].graph_missing = true;
  SingleModalityModel model(Modality::Graph, fast_config());
  EXPECT_THROW(model.fit(train_, cal_), std::invalid_argument);
}

TEST_F(ArmBehaviour, DeterministicGivenConfig) {
  SingleModalityModel a(Modality::Graph, fast_config());
  SingleModalityModel b(Modality::Graph, fast_config());
  a.fit(train_, cal_);
  b.fit(train_, cal_);
  const Prediction pa = a.predict(test_.samples[0]);
  const Prediction pb = b.predict(test_.samples[0]);
  EXPECT_DOUBLE_EQ(pa.probability, pb.probability);
  EXPECT_EQ(pa.p_values, pb.p_values);
}

TEST(FusionHelpers, ModalityAndJointMatrices) {
  const data::FeatureDataset ds = blob_dataset(3, 4);
  const nn::Matrix g = modality_matrix(ds, Modality::Graph);
  const nn::Matrix t = modality_matrix(ds, Modality::Tabular);
  const nn::Matrix j = joint_matrix(ds);
  EXPECT_EQ(g.cols(), 10u);
  EXPECT_EQ(t.cols(), 9u);
  EXPECT_EQ(j.cols(), 19u);
  EXPECT_EQ(j.rows(), ds.size());
  // Joint layout: graph first, then tabular.
  EXPECT_DOUBLE_EQ(j(0, 0), g(0, 0));
  EXPECT_DOUBLE_EQ(j(0, 10), t(0, 0));
}

TEST(FusionHelpers, PValueProbability) {
  EXPECT_DOUBLE_EQ(p_value_probability({0.2, 0.8}), 0.8);
  EXPECT_DOUBLE_EQ(p_value_probability({0.5, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(p_value_probability({0.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(p_value_probability({1.0, 0.0}), 0.0);
}

TEST(FusionHelpers, ModalityNames) {
  EXPECT_STREQ(to_string(Modality::Graph), "graph");
  EXPECT_STREQ(to_string(Modality::Tabular), "tabular");
  EXPECT_EQ(SingleModalityModel(Modality::Graph, FusionConfig{}).name(), "graph_only");
}

class CombinerSweep : public ::testing::TestWithParam<cp::CombinationMethod> {};

TEST_P(CombinerSweep, LateFusionWorksWithEveryCombiner) {
  FusionConfig config;
  config.train.epochs = 15;
  config.train.validation_fraction = 0.0;
  config.combiner = GetParam();
  LateFusionModel model(config);
  const auto train = blob_dataset(30, 5);
  const auto cal = blob_dataset(12, 6);
  const auto test = blob_dataset(12, 7);
  model.fit(train, cal);
  std::vector<double> probs;
  for (const auto& sample : test.samples) {
    probs.push_back(model.predict(sample).probability);
  }
  EXPECT_GT(metrics::roc_auc(probs, test.labels()), 0.8)
      << cp::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllCombiners, CombinerSweep,
                         ::testing::Values(cp::CombinationMethod::Fisher,
                                           cp::CombinationMethod::Stouffer,
                                           cp::CombinationMethod::ArithmeticMean,
                                           cp::CombinationMethod::Min,
                                           cp::CombinationMethod::Max));

}  // namespace
}  // namespace noodle::fusion
