#include "metrics/brier.h"
#include "metrics/calibration.h"
#include "metrics/classification.h"
#include "metrics/roc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace noodle::metrics {
namespace {

TEST(Brier, PerfectAndWorst) {
  const std::vector<double> perfect = {1.0, 0.0};
  const std::vector<int> y = {1, 0};
  EXPECT_DOUBLE_EQ(brier_score(perfect, y), 0.0);
  const std::vector<double> worst = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(brier_score(worst, y), 1.0);
}

TEST(Brier, HandComputedValue) {
  const std::vector<double> p = {0.8, 0.3};
  const std::vector<int> y = {1, 0};
  // ((0.2)^2 + (0.3)^2) / 2 = 0.065.
  EXPECT_NEAR(brier_score(p, y), 0.065, 1e-12);
}

TEST(Brier, RejectsBadInput) {
  EXPECT_THROW(brier_score({}, {}), std::invalid_argument);
  const std::vector<double> p = {0.5};
  const std::vector<int> bad = {2};
  EXPECT_THROW(brier_score(p, bad), std::invalid_argument);
  const std::vector<int> two = {0, 1};
  EXPECT_THROW(brier_score(p, two), std::invalid_argument);
}

TEST(BrierDecomposition, IdentityWithinBinConstantForecasts) {
  // Forecasts exactly at bin centers: the Murphy identity
  // BS = REL - RES + UNC is exact.
  std::vector<double> p;
  std::vector<int> y;
  // 40 forecasts of 0.25 with 30% positives; 40 of 0.75 with 80% positives.
  for (int i = 0; i < 40; ++i) {
    p.push_back(0.25);
    y.push_back(i < 12 ? 1 : 0);
  }
  for (int i = 0; i < 40; ++i) {
    p.push_back(0.75);
    y.push_back(i < 32 ? 1 : 0);
  }
  const BrierDecomposition d = brier_decomposition(p, y, 10);
  EXPECT_NEAR(d.brier, d.reliability - d.resolution + d.uncertainty, 1e-12);
  EXPECT_NEAR(d.refinement, d.uncertainty - d.resolution, 1e-12);
  EXPECT_GT(d.resolution, 0.0);
}

TEST(BrierDecomposition, UncertaintyIsBaseRateVariance) {
  const std::vector<double> p = {0.5, 0.5, 0.5, 0.5};
  const std::vector<int> y = {1, 0, 0, 0};
  const BrierDecomposition d = brier_decomposition(p, y);
  EXPECT_NEAR(d.uncertainty, 0.25 * 0.75, 1e-12);
}

TEST(BrierSkill, PerfectForecastIsOne) {
  const std::vector<double> p = {1.0, 0.0, 0.0};
  const std::vector<int> y = {1, 0, 0};
  EXPECT_NEAR(brier_skill_score(p, y), 1.0, 1e-12);
}

TEST(BrierSkill, ClimatologyIsZero) {
  const std::vector<double> p = {0.25, 0.25, 0.25, 0.25};
  const std::vector<int> y = {1, 0, 0, 0};
  EXPECT_NEAR(brier_skill_score(p, y), 0.0, 1e-12);
}

TEST(BrierSkill, SingleClassDataReturnsZero) {
  const std::vector<double> p = {0.1, 0.2};
  const std::vector<int> y = {0, 0};
  EXPECT_DOUBLE_EQ(brier_skill_score(p, y), 0.0);
}

// ---------------------------------------------------------------------------
// ROC / AUC
// ---------------------------------------------------------------------------

TEST(Roc, PerfectSeparationAucOne) {
  const std::vector<double> s = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int> y = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(s, y), 1.0);
}

TEST(Roc, ReversedSeparationAucZero) {
  const std::vector<double> s = {0.1, 0.2, 0.8, 0.9};
  const std::vector<int> y = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(s, y), 0.0);
}

TEST(Roc, AllTiedScoresAucHalf) {
  const std::vector<double> s = {0.5, 0.5, 0.5, 0.5};
  const std::vector<int> y = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(roc_auc(s, y), 0.5);
}

TEST(Roc, SingleClassAucHalf) {
  const std::vector<double> s = {0.5, 0.7};
  const std::vector<int> y = {1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(s, y), 0.5);
}

TEST(Roc, HandComputedPartialOverlap) {
  // Positives: 0.8, 0.4; negatives: 0.6, 0.2.
  // Pairs: (0.8>0.6), (0.8>0.2), (0.4<0.6), (0.4>0.2) -> 3/4.
  const std::vector<double> s = {0.8, 0.4, 0.6, 0.2};
  const std::vector<int> y = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(s, y), 0.75);
}

TEST(Roc, TiesCountHalf) {
  // Positive at 0.5, negative at 0.5 -> AUC 0.5.
  const std::vector<double> s = {0.5, 0.5, 0.9, 0.1};
  const std::vector<int> y = {1, 0, 1, 0};
  // Pairs: (p0.5 vs n0.5)=0.5, (p0.5 vs n0.1)=1, (p0.9 vs n0.5)=1, (p0.9 vs n0.1)=1.
  EXPECT_DOUBLE_EQ(roc_auc(s, y), 3.5 / 4.0);
}

TEST(Roc, CurveEndpointsAndMonotonicity) {
  util::Rng rng(3);
  std::vector<double> s;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    y.push_back(rng.bernoulli(0.4) ? 1 : 0);
    s.push_back(std::clamp((y.back() ? 0.6 : 0.4) + rng.normal(0.0, 0.2), 0.0, 1.0));
  }
  const auto curve = roc_curve(s, y);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].false_positive_rate, curve[i - 1].false_positive_rate);
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
  }
}

TEST(Roc, RejectsBadInput) {
  EXPECT_THROW(roc_auc({}, {}), std::invalid_argument);
  const std::vector<double> s = {0.5};
  const std::vector<int> bad = {7};
  EXPECT_THROW(roc_auc(s, bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Calibration curve
// ---------------------------------------------------------------------------

TEST(Calibration, PerfectlyCalibratedBins) {
  std::vector<double> p;
  std::vector<int> y;
  // Bin [0.2,0.3): forecasts 0.25, 25% positive (4 samples).
  for (int i = 0; i < 4; ++i) {
    p.push_back(0.25);
    y.push_back(i == 0 ? 1 : 0);
  }
  const CalibrationCurve curve = calibration_curve(p, y, 10);
  ASSERT_EQ(curve.bins.size(), 1u);
  EXPECT_NEAR(curve.bins[0].mean_predicted, 0.25, 1e-12);
  EXPECT_NEAR(curve.bins[0].observed_rate, 0.25, 1e-12);
  EXPECT_NEAR(curve.expected_calibration_error, 0.0, 1e-12);
}

TEST(Calibration, MiscalibrationMeasured) {
  const std::vector<double> p = {0.9, 0.9, 0.9, 0.9};
  const std::vector<int> y = {1, 0, 0, 0};  // observed 25%, predicted 90%
  const CalibrationCurve curve = calibration_curve(p, y, 10);
  EXPECT_NEAR(curve.expected_calibration_error, 0.65, 1e-12);
  EXPECT_NEAR(curve.max_calibration_error, 0.65, 1e-12);
}

TEST(Calibration, SharpnessIsPredictionVariance) {
  const std::vector<double> p = {0.0, 1.0};
  const std::vector<int> y = {0, 1};
  const CalibrationCurve curve = calibration_curve(p, y, 10);
  EXPECT_NEAR(curve.sharpness, 0.25, 1e-12);  // var of {0,1}
}

TEST(Calibration, HistogramCountsAllSamples) {
  util::Rng rng(9);
  std::vector<double> p;
  std::vector<int> y;
  for (int i = 0; i < 109; ++i) {
    p.push_back(rng.uniform());
    y.push_back(rng.bernoulli(0.3) ? 1 : 0);
  }
  const CalibrationCurve curve = calibration_curve(p, y, 10);
  std::size_t total = 0;
  for (const auto count : curve.sharpness_histogram) total += count;
  EXPECT_EQ(total, 109u);
}

TEST(Calibration, RejectsBadInput) {
  EXPECT_THROW(calibration_curve({}, {}, 10), std::invalid_argument);
  const std::vector<double> p = {0.5};
  const std::vector<int> y = {1};
  EXPECT_THROW(calibration_curve(p, y, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Classification / consolidated
// ---------------------------------------------------------------------------

TEST(Confusion, CountsAndDerivedMetrics) {
  const std::vector<double> p = {0.9, 0.8, 0.4, 0.2, 0.7, 0.1};
  const std::vector<int> y = {1, 1, 1, 0, 0, 0};
  const ConfusionMatrix cm = confusion_at(p, y, 0.5);
  EXPECT_EQ(cm.true_positive, 2u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_EQ(cm.true_negative, 2u);
  EXPECT_NEAR(cm.accuracy(), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(cm.sensitivity(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.specificity(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.f1(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.balanced_accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(Confusion, EmptyDenominatorsAreZero) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.sensitivity(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(Consolidated, AllFieldsPopulated) {
  util::Rng rng(4);
  std::vector<double> p;
  std::vector<int> y;
  for (int i = 0; i < 150; ++i) {
    y.push_back(rng.bernoulli(0.3) ? 1 : 0);
    p.push_back(std::clamp((y.back() ? 0.7 : 0.3) + rng.normal(0.0, 0.2), 0.0, 1.0));
  }
  const ConsolidatedMetrics m = consolidated_metrics(p, y);
  EXPECT_GT(m.auc, 0.7);
  EXPECT_GT(m.resolution, 0.0);
  EXPECT_GT(m.brier, 0.0);
  EXPECT_GT(m.sensitivity, 0.0);
  EXPECT_GT(m.accuracy, 0.5);
}

TEST(Radar, AxesMatchValuesAndRange) {
  ConsolidatedMetrics m;
  m.auc = 0.93;
  m.resolution = 0.1;
  m.refinement_loss = 0.12;
  m.brier = 0.16;
  m.brier_skill = 0.2;
  m.sensitivity = 0.6;
  m.specificity = 0.9;
  m.accuracy = 0.85;
  const auto values = radar_values(m);
  EXPECT_EQ(values.size(), radar_axis_names().size());
  for (const double v : values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Brier axis inverted: low Brier -> high radar value.
  EXPECT_NEAR(values[3], 1.0 - 0.16, 1e-12);
}

}  // namespace
}  // namespace noodle::metrics
