#include "verilog/printer.h"

#include <gtest/gtest.h>

#include "data/designgen.h"
#include "util/rng.h"
#include "verilog/parser.h"

namespace noodle::verilog {
namespace {

TEST(Printer, ExprNumbers) {
  EXPECT_EQ(print_expr(*Expr::number(42)), "42");
  EXPECT_EQ(print_expr(*Expr::number(255, 8)), "8'hff");
  EXPECT_EQ(print_expr(*Expr::number(3, 2)), "2'd3");
}

TEST(Printer, ExprPrecedenceParens) {
  // (a + b) * c needs parens; a + b * c does not.
  auto mul = Expr::binary("*", Expr::binary("+", Expr::ident("a"), Expr::ident("b")),
                          Expr::ident("c"));
  EXPECT_EQ(print_expr(*mul), "(a + b) * c");
  auto add = Expr::binary("+", Expr::ident("a"),
                          Expr::binary("*", Expr::ident("b"), Expr::ident("c")));
  EXPECT_EQ(print_expr(*add), "a + b * c");
}

TEST(Printer, LeftAssociativityParens) {
  // a - (b - c) must keep parens on the right operand.
  auto e = Expr::binary("-", Expr::ident("a"),
                        Expr::binary("-", Expr::ident("b"), Expr::ident("c")));
  EXPECT_EQ(print_expr(*e), "a - (b - c)");
}

TEST(Printer, UnaryParenthesizesCompound) {
  auto e = Expr::unary("!", Expr::binary("&&", Expr::ident("a"), Expr::ident("b")));
  EXPECT_EQ(print_expr(*e), "!(a && b)");
  auto simple = Expr::unary("~", Expr::ident("x"));
  EXPECT_EQ(print_expr(*simple), "~x");
}

TEST(Printer, ConcatAndReplicate) {
  std::vector<ExprPtr> parts;
  parts.push_back(Expr::ident("a"));
  parts.push_back(Expr::number(5, 4));
  EXPECT_EQ(print_expr(*Expr::concat(std::move(parts))), "{a, 4'd5}");
  EXPECT_EQ(print_expr(*Expr::replicate(Expr::number(4), Expr::ident("b"))),
            "{4{b}}");
}

TEST(Printer, SelectForms) {
  EXPECT_EQ(print_expr(*Expr::index(Expr::ident("a"), Expr::number(3))), "a[3]");
  EXPECT_EQ(print_expr(*Expr::range(Expr::ident("a"), Expr::number(7), Expr::number(0))),
            "a[7:0]");
}

/// The round-trip property: parse(print(parse(text))) produces a module
/// whose printed form is identical to the first print. This guarantees the
/// Trojan inserter's AST edits re-enter the pipeline losslessly.
void expect_roundtrip(const std::string& source) {
  const Module first = parse_module(source);
  const std::string printed = print_module(first);
  const Module second = parse_module(printed);
  EXPECT_EQ(print_module(second), printed) << "non-idempotent print for:\n" << source;
}

TEST(Printer, RoundTripHandWritten) {
  expect_roundtrip(
      "module m #(parameter W = 4) (input clk, input [W-1:0] d, output reg [W-1:0] q,"
      " output valid);\n"
      "  wire [W-1:0] next = d ^ q;\n"
      "  assign valid = |q;\n"
      "  always @(posedge clk)\n"
      "    begin\n"
      "      if (next > d)\n"
      "        q <= next;\n"
      "      else\n"
      "        case (d)\n"
      "          4'd0: q <= 4'd1;\n"
      "          default: q <= {q[2:0], q[3]};\n"
      "        endcase\n"
      "    end\n"
      "endmodule\n");
}

TEST(Printer, RoundTripInstances) {
  const SourceFile f = parse_source(
      "module leaf (input a, output y); assign y = !a; endmodule\n"
      "module top (input x, output z); leaf u0 (.a(x), .y(z)); endmodule");
  const std::string printed = print_source(f);
  const SourceFile again = parse_source(printed);
  EXPECT_EQ(print_source(again), printed);
}

struct FamilySeed {
  data::DesignFamily family;
  std::uint64_t seed;
};

class GeneratedDesignRoundTrip : public ::testing::TestWithParam<FamilySeed> {};

TEST_P(GeneratedDesignRoundTrip, PrintParseIdempotent) {
  util::Rng rng(GetParam().seed);
  const std::string source =
      data::generate_design(GetParam().family, "dut", rng);
  expect_roundtrip(source);
}

std::vector<FamilySeed> all_family_seeds() {
  std::vector<FamilySeed> cases;
  for (const auto family : data::all_design_families()) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      cases.push_back({family, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GeneratedDesignRoundTrip,
                         ::testing::ValuesIn(all_family_seeds()));

}  // namespace
}  // namespace noodle::verilog
