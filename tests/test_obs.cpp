// Tests for the observability layer: the log-scaled latency histogram's
// bucket ladder and quantile semantics (exact at bucket bounds, bounded
// error off them, exact totals under concurrent recording), the
// zero-warm-allocation recording discipline (counting operator new, the
// same contract the featurize/inference workspaces carry), MetricsRegistry
// naming/typing rules and Prometheus text exposition, TraceSpan recording,
// and trace-id uniqueness across threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {
std::atomic<std::size_t> g_allocation_count{0};
}

// GCC's -Wmismatched-new-delete heuristic cannot see that these replaced
// operators form a consistent malloc/free pair; the diagnostic is a false
// positive here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace noodle {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket ladder
// ---------------------------------------------------------------------------

TEST(HistogramBuckets, LadderIsAscendingAndSpans100nsTo10s) {
  ASSERT_GE(obs::kHistogramBoundCount, 2u);
  EXPECT_EQ(obs::kHistogramBounds.front(), 100u);
  EXPECT_EQ(obs::kHistogramBounds.back(), 10'000'000'000u);
  for (std::size_t i = 1; i < obs::kHistogramBounds.size(); ++i) {
    EXPECT_LT(obs::kHistogramBounds[i - 1], obs::kHistogramBounds[i]) << "at " << i;
    // Geometric: each step multiplies by ~1.5 (integer b += b/2), except the
    // final clamp to exactly 10s which may be a shorter step.
    if (i + 1 < obs::kHistogramBounds.size()) {
      EXPECT_EQ(obs::kHistogramBounds[i],
                obs::kHistogramBounds[i - 1] + obs::kHistogramBounds[i - 1] / 2)
          << "at " << i;
    }
  }
}

TEST(HistogramBuckets, BucketForMatchesLadderSemantics) {
  // Bucket 0 is [0, 100ns); a value equal to a bound starts that bound's
  // bucket; the overflow bucket holds everything >= 10s.
  EXPECT_EQ(obs::Histogram::bucket_for(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_for(99), 0u);
  for (std::size_t i = 0; i < obs::kHistogramBounds.size(); ++i) {
    const std::uint64_t bound = obs::kHistogramBounds[i];
    EXPECT_EQ(obs::Histogram::bucket_for(bound), i + 1) << "bound " << bound;
    EXPECT_EQ(obs::Histogram::bucket_for(bound - 1), i) << "bound " << bound;
  }
  EXPECT_EQ(obs::Histogram::bucket_for(~0ULL), obs::Histogram::kBuckets - 1);
  // bucket_lower_bound is the inverse on bucket starts.
  EXPECT_EQ(obs::Histogram::bucket_lower_bound(0), 0u);
  for (std::size_t b = 1; b < obs::Histogram::kBuckets; ++b) {
    const std::uint64_t lower = obs::Histogram::bucket_lower_bound(b);
    EXPECT_EQ(obs::Histogram::bucket_for(lower), b) << "bucket " << b;
  }
}

// ---------------------------------------------------------------------------
// Quantiles
// ---------------------------------------------------------------------------

/// The reference the histogram's quantile contract is anchored to: the
/// rank-th smallest recording with rank = max(1, ceil(q * n)).
std::uint64_t reference_quantile(std::vector<std::uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::max<std::size_t>(rank, 1);
  return values[rank - 1];
}

TEST(HistogramQuantiles, ExactForBucketBoundaryInputs) {
  // Every recorded value sits exactly on a bucket lower bound, so the
  // estimator (lower bound of the rank's bucket) must equal the sorted
  // reference exactly — no approximation slack allowed.
  obs::Histogram hist;
  std::vector<std::uint64_t> values;
  for (std::size_t i = 0; i < obs::kHistogramBounds.size(); i += 3) {
    for (std::size_t repeat = 0; repeat < i % 5 + 1; ++repeat) {
      values.push_back(obs::kHistogramBounds[i]);
    }
  }
  for (const std::uint64_t v : values) hist.record(v);

  const obs::Histogram::Snapshot snap = hist.snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (const double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0}) {
    EXPECT_EQ(snap.quantile_nanos(q), reference_quantile(values, q)) << "q=" << q;
  }
  EXPECT_EQ(snap.p50(), reference_quantile(values, 0.50));
  EXPECT_EQ(snap.p90(), reference_quantile(values, 0.90));
  EXPECT_EQ(snap.p99(), reference_quantile(values, 0.99));
}

TEST(HistogramQuantiles, OffBoundaryErrorIsBoundedByOneBucketRatio) {
  // Arbitrary in-range values: the estimate is the lower bound of the true
  // value's bucket, so estimate <= truth < estimate * 1.5 + 1.
  obs::Histogram hist;
  std::vector<std::uint64_t> values;
  std::uint64_t v = 137;  // pseudo-random walk across the range, off-ladder
  while (v < obs::kHistogramBounds.back()) {
    values.push_back(v);
    v = v * 2 + v / 3 + 1;
  }
  for (const std::uint64_t value : values) hist.record(value);

  const obs::Histogram::Snapshot snap = hist.snapshot();
  for (const double q : {0.05, 0.50, 0.90, 0.99}) {
    const std::uint64_t truth = reference_quantile(values, q);
    const std::uint64_t estimate = snap.quantile_nanos(q);
    EXPECT_LE(estimate, truth) << "q=" << q;
    EXPECT_LT(truth, estimate + estimate / 2 + 1) << "q=" << q;
  }
}

TEST(HistogramQuantiles, EmptyAndSingletonEdgeCases) {
  obs::Histogram hist;
  EXPECT_EQ(hist.snapshot().count, 0u);
  EXPECT_EQ(hist.snapshot().p50(), 0u);
  EXPECT_EQ(hist.snapshot().mean_nanos(), 0.0);

  hist.record(1'000'000);  // 1ms, on a ladder bound? not necessarily — use bucket lower
  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum_nanos, 1'000'000u);
  const std::uint64_t lower =
      obs::Histogram::bucket_lower_bound(obs::Histogram::bucket_for(1'000'000));
  EXPECT_EQ(snap.p50(), lower);
  EXPECT_EQ(snap.quantile_nanos(0.0), lower);  // rank clamps to 1
  EXPECT_EQ(snap.quantile_nanos(1.0), lower);
}

// ---------------------------------------------------------------------------
// Concurrency: totals stay exact when 8 threads record at once
// ---------------------------------------------------------------------------

TEST(HistogramConcurrency, EightThreadsRecordExactly) {
  obs::Histogram hist;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20'000;
  // Each thread records a distinct bound value, so per-bucket counts are
  // attributable: any lost update would show up as a short bucket.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      const std::uint64_t value = obs::kHistogramBounds[t * 4];
      for (std::size_t i = 0; i < kPerThread; ++i) hist.record(value);
    });
  }
  for (std::thread& thread : threads) thread.join();

  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    const std::uint64_t value = obs::kHistogramBounds[t * 4];
    expected_sum += value * kPerThread;
    EXPECT_EQ(snap.counts[obs::Histogram::bucket_for(value)], kPerThread)
        << "thread " << t;
  }
  EXPECT_EQ(snap.sum_nanos, expected_sum);
}

// ---------------------------------------------------------------------------
// Zero-warm-allocation recording
// ---------------------------------------------------------------------------

TEST(ObsAllocations, WarmRecordingNeverTouchesTheHeap) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("noodle_test_events_total", "test");
  obs::Gauge& gauge = registry.gauge("noodle_test_depth", "test");
  obs::Histogram& hist = registry.histogram("noodle_test_latency_seconds", "test");

  // Warm: the first record on a thread assigns its shard slot.
  hist.record(500);
  counter.inc();
  gauge.set(1);
  { obs::TraceSpan span(&hist); }

  const std::size_t before = g_allocation_count.load();
  std::uint64_t out_micros = 0;
  for (int i = 0; i < 1000; ++i) {
    hist.record(1000 + static_cast<std::uint64_t>(i));
    counter.inc();
    gauge.add(1);
    gauge.sub(1);
    obs::TraceSpan span(&hist, &out_micros);
    span.finish();
  }
  EXPECT_EQ(g_allocation_count.load() - before, 0u)
      << "warm metric recording and span timing must not touch the heap";
}

// ---------------------------------------------------------------------------
// MetricsRegistry naming, typing, identity
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsStableIdentity) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("noodle_x_total", "x");
  obs::Counter& b = registry.counter("noodle_x_total", "x");
  EXPECT_EQ(&a, &b);
  obs::Counter& lab1 = registry.counter("noodle_y_total", "y", {{"model", "m1"}});
  obs::Counter& lab2 = registry.counter("noodle_y_total", "y", {{"model", "m2"}});
  obs::Counter& lab1_again = registry.counter("noodle_y_total", "y", {{"model", "m1"}});
  EXPECT_NE(&lab1, &lab2);
  EXPECT_EQ(&lab1, &lab1_again);
  EXPECT_EQ(registry.family_count(), 2u);
}

TEST(MetricsRegistry, RejectsBadNamesAndTypeConflicts) {
  obs::MetricsRegistry registry;
  EXPECT_THROW(registry.counter("", "empty"), std::invalid_argument);
  EXPECT_THROW(registry.counter("0starts_with_digit", "bad"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has space", "bad"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has-dash", "bad"), std::invalid_argument);
  EXPECT_NO_THROW(registry.counter("ok:colon_total", "good"));
  EXPECT_NO_THROW(registry.counter("_leading_underscore", "good"));

  registry.gauge("noodle_depth", "a gauge");
  EXPECT_THROW(registry.counter("noodle_depth", "now a counter?"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("noodle_depth", "now a histogram?"),
               std::invalid_argument);

  // Label keys follow the same rules minus the colon.
  EXPECT_THROW(registry.counter("noodle_l_total", "l", {{"bad key", "v"}}),
               std::invalid_argument);
  EXPECT_THROW(registry.counter("noodle_l_total", "l", {{"bad:colon", "v"}}),
               std::invalid_argument);
}

TEST(MetricsRegistry, SnapshotCarriesValuesAndTypes) {
  obs::MetricsRegistry registry;
  registry.counter("noodle_a_total", "a").inc(5);
  registry.gauge("noodle_b", "b").set(-3);
  registry.histogram("noodle_c_seconds", "c").record(1000);

  const std::vector<obs::MetricsRegistry::Sample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);  // sorted by name: a, b, c
  EXPECT_EQ(samples[0].name, "noodle_a_total");
  EXPECT_EQ(samples[0].type, obs::MetricType::kCounter);
  EXPECT_EQ(samples[0].counter, 5u);
  EXPECT_EQ(samples[1].name, "noodle_b");
  EXPECT_EQ(samples[1].gauge, -3);
  EXPECT_EQ(samples[2].name, "noodle_c_seconds");
  EXPECT_EQ(samples[2].histogram.count, 1u);
  EXPECT_EQ(samples[2].histogram.sum_nanos, 1000u);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

std::vector<std::string> render_lines(obs::MetricsRegistry& registry) {
  std::ostringstream os;
  registry.render_prometheus(os);
  std::vector<std::string> lines;
  std::istringstream is(os.str());
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  return lines;
}

TEST(PrometheusRendering, CounterAndGaugeGolden) {
  obs::MetricsRegistry registry;
  registry.counter("noodle_requests_total", "Total requests.", {{"model", "prod"}})
      .inc(42);
  registry.gauge("noodle_queue_depth", "Requests waiting.").set(7);

  const std::vector<std::string> lines = render_lines(registry);
  const std::vector<std::string> expected = {
      "# HELP noodle_queue_depth Requests waiting.",
      "# TYPE noodle_queue_depth gauge",
      "noodle_queue_depth 7",
      "# HELP noodle_requests_total Total requests.",
      "# TYPE noodle_requests_total counter",
      "noodle_requests_total{model=\"prod\"} 42",
  };
  EXPECT_EQ(lines, expected);
}

TEST(PrometheusRendering, EscapesLabelValues) {
  obs::MetricsRegistry registry;
  registry.counter("noodle_esc_total", "esc", {{"path", "a\"b\\c\nd"}}).inc();
  const std::vector<std::string> lines = render_lines(registry);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "noodle_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1");
}

TEST(PrometheusRendering, HistogramExpositionIsCumulativeAndComplete) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist =
      registry.histogram("noodle_lat_seconds", "Latency.", {{"stage", "infer"}});
  hist.record(150);            // bucket for 150ns
  hist.record(1'000'000);      // 1ms
  hist.record(20'000'000'000); // 20s -> overflow, only counted by +Inf

  const std::vector<std::string> lines = render_lines(registry);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0], "# HELP noodle_lat_seconds Latency.");
  EXPECT_EQ(lines[1], "# TYPE noodle_lat_seconds histogram");

  std::vector<std::pair<double, std::uint64_t>> buckets;  // (le, cumulative)
  std::uint64_t inf_count = 0, count = 0;
  double sum = -1.0;
  bool saw_inf = false;
  for (const std::string& line : lines) {
    if (line.rfind("noodle_lat_seconds_bucket", 0) == 0) {
      const std::size_t le = line.find("le=\"");
      const std::size_t end = line.find('"', le + 4);
      const std::string bound = line.substr(le + 4, end - le - 4);
      const std::uint64_t value = std::stoull(line.substr(line.rfind(' ') + 1));
      if (bound == "+Inf") {
        saw_inf = true;
        inf_count = value;
      } else {
        buckets.emplace_back(std::stod(bound), value);
      }
    } else if (line.rfind("noodle_lat_seconds_sum", 0) == 0) {
      sum = std::stod(line.substr(line.rfind(' ') + 1));
    } else if (line.rfind("noodle_lat_seconds_count", 0) == 0) {
      count = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  // One line per finite bound plus +Inf; bounds ascending in seconds and
  // cumulative counts monotone; +Inf equals _count.
  ASSERT_EQ(buckets.size(), obs::kHistogramBoundCount);
  ASSERT_TRUE(saw_inf);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1].first, buckets[i].first);
    EXPECT_LE(buckets[i - 1].second, buckets[i].second);
  }
  EXPECT_EQ(buckets.front().second, 0u);   // nothing under 100ns
  EXPECT_EQ(buckets.back().second, 2u);    // 20s recording is past the last bound
  EXPECT_EQ(inf_count, 3u);
  EXPECT_EQ(count, 3u);
  EXPECT_NEAR(sum, (150.0 + 1e6 + 2e10) / 1e9, 1e-9);
  // Every labelled series keeps the stage label alongside le.
  for (const std::string& line : lines) {
    if (line.rfind("noodle_lat_seconds_bucket", 0) == 0) {
      EXPECT_NE(line.find("stage=\"infer\""), std::string::npos);
    }
  }
}

// ---------------------------------------------------------------------------
// TraceSpan + trace ids
// ---------------------------------------------------------------------------

TEST(TraceSpan, RecordsIntoHistogramAndOutParam) {
  obs::Histogram hist;
  std::uint64_t out_micros = ~0ULL;
  {
    obs::TraceSpan span(&hist, &out_micros);
    const std::uint64_t first = span.finish();
    EXPECT_EQ(span.finish(), first) << "finish() must be idempotent";
  }
  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u) << "destructor after finish() must not double-record";
  EXPECT_NE(out_micros, ~0ULL);

  // A null histogram/out pointer is a no-op timer, still usable.
  obs::TraceSpan bare;
  EXPECT_GE(bare.elapsed_nanos(), 0u);
}

TEST(TraceIds, UniqueNonZeroAcrossThreads) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10'000;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      ids[t].reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) ids[t].push_back(obs::next_trace_id());
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::set<std::uint64_t> unique;
  for (const auto& per_thread : ids) {
    for (const std::uint64_t id : per_thread) {
      EXPECT_NE(id, 0u);
      unique.insert(id);
    }
  }
  EXPECT_EQ(unique.size(), kThreads * kPerThread);
}

}  // namespace
}  // namespace noodle
