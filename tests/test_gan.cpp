#include "gan/augment.h"
#include "gan/gan.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace noodle::gan {
namespace {

GanConfig fast_config() {
  GanConfig config;
  config.epochs = 60;
  config.hidden = 24;
  config.latent_dim = 8;
  config.seed = 3;
  return config;
}

std::vector<std::vector<double>> gaussian_rows(std::size_t n, double mean_x,
                                               double mean_y, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back({rng.normal(mean_x, 1.0), rng.normal(mean_y, 0.5)});
  }
  return rows;
}

TEST(Gan, FitAndSampleShapes) {
  TabularGan gan(2, fast_config());
  EXPECT_FALSE(gan.trained());
  gan.fit(gaussian_rows(64, 0.0, 0.0, 1));
  EXPECT_TRUE(gan.trained());
  const auto samples = gan.sample(10);
  ASSERT_EQ(samples.size(), 10u);
  for (const auto& row : samples) EXPECT_EQ(row.size(), 2u);
}

TEST(Gan, SamplesLandNearTrainingDistribution) {
  TabularGan gan(2, fast_config());
  gan.fit(gaussian_rows(128, 5.0, -3.0, 2));
  const auto samples = gan.sample(200);
  std::vector<double> xs, ys;
  for (const auto& row : samples) {
    xs.push_back(row[0]);
    ys.push_back(row[1]);
  }
  // Generous tolerance: the point is gross distributional placement.
  EXPECT_NEAR(util::mean(xs), 5.0, 1.5);
  EXPECT_NEAR(util::mean(ys), -3.0, 1.5);
}

TEST(Gan, TraceHasPerEpochLosses) {
  TabularGan gan(2, fast_config());
  const GanTrainTrace trace = gan.fit(gaussian_rows(32, 0.0, 0.0, 4));
  EXPECT_EQ(trace.discriminator_loss.size(), fast_config().epochs);
  EXPECT_EQ(trace.generator_loss.size(), fast_config().epochs);
  for (const double loss : trace.discriminator_loss) EXPECT_TRUE(std::isfinite(loss));
}

TEST(Gan, SampleBeforeFitThrows) {
  TabularGan gan(2, fast_config());
  EXPECT_THROW(gan.sample(1), std::logic_error);
}

TEST(Gan, RejectsBadInput) {
  EXPECT_THROW(TabularGan(0, fast_config()), std::invalid_argument);
  TabularGan gan(3, fast_config());
  EXPECT_THROW(gan.fit({}), std::invalid_argument);
  EXPECT_THROW(gan.fit({{1.0, 2.0}}), std::invalid_argument);  // wrong dim
}

TEST(Gan, DeterministicGivenSeed) {
  TabularGan a(2, fast_config()), b(2, fast_config());
  const auto rows = gaussian_rows(48, 1.0, 1.0, 6);
  a.fit(rows);
  b.fit(rows);
  EXPECT_EQ(a.sample(5), b.sample(5));
}

// ---------------------------------------------------------------------------
// augment_with_gan
// ---------------------------------------------------------------------------

data::FeatureDataset tiny_dataset(std::size_t per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  data::FeatureDataset ds;
  for (const int label : {0, 1}) {
    for (std::size_t i = 0; i < per_class; ++i) {
      data::FeatureSample s;
      const double center = label == 1 ? 2.0 : -2.0;
      for (int d = 0; d < 5; ++d) s.graph.push_back(rng.normal(center, 1.0));
      for (int d = 0; d < 3; ++d) s.tabular.push_back(rng.normal(-center, 1.0));
      s.label = label;
      ds.samples.push_back(std::move(s));
    }
  }
  return ds;
}

TEST(Augment, GrowsEachClassToTarget) {
  const auto ds = tiny_dataset(12, 7);
  const auto grown = augment_with_gan(ds, 30, fast_config());
  EXPECT_EQ(grown.count_label(0), 30u);
  EXPECT_EQ(grown.count_label(1), 30u);
  // Originals preserved at the front.
  EXPECT_EQ(grown.samples[0].graph, ds.samples[0].graph);
}

TEST(Augment, SyntheticSamplesHaveRightShapeAndLabel) {
  const auto ds = tiny_dataset(10, 8);
  const auto grown = augment_with_gan(ds, 20, fast_config());
  for (std::size_t i = ds.size(); i < grown.size(); ++i) {
    EXPECT_EQ(grown.samples[i].graph.size(), 5u);
    EXPECT_EQ(grown.samples[i].tabular.size(), 3u);
    EXPECT_FALSE(grown.samples[i].graph_missing);
  }
}

TEST(Augment, ClassAlreadyAtTargetUntouched) {
  const auto ds = tiny_dataset(25, 9);
  const auto grown = augment_with_gan(ds, 20, fast_config());
  EXPECT_EQ(grown.size(), ds.size());
}

TEST(Augment, TooFewSamplesThrows) {
  const auto ds = tiny_dataset(3, 10);
  EXPECT_THROW(augment_with_gan(ds, 10, fast_config()), std::invalid_argument);
}

TEST(Augment, EmptyDatasetThrows) {
  EXPECT_THROW(augment_with_gan(data::FeatureDataset{}, 10, fast_config()),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CrossModalImputer
// ---------------------------------------------------------------------------

/// Dataset where tabular = -graph-center: cross-modal mapping is learnable.
TEST(Imputer, RecoversCorrelatedModalities) {
  const auto train = tiny_dataset(40, 11);
  CrossModalImputer imputer(5);
  imputer.fit(train);
  EXPECT_TRUE(imputer.fitted());

  // Build a probe set with graph present, tabular missing.
  data::FeatureDataset probe = tiny_dataset(10, 12);
  std::vector<std::vector<double>> truth;
  for (auto& s : probe.samples) {
    truth.push_back(s.tabular);
    s.tabular.clear();
    s.tabular_missing = true;
  }
  imputer.impute(probe);

  // Imputed values must beat the trivial zero prediction on MSE.
  double imputed_mse = 0.0, zero_mse = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < probe.samples.size(); ++i) {
    EXPECT_FALSE(probe.samples[i].tabular_missing);
    ASSERT_EQ(probe.samples[i].tabular.size(), truth[i].size());
    for (std::size_t d = 0; d < truth[i].size(); ++d) {
      const double e = probe.samples[i].tabular[d] - truth[i][d];
      imputed_mse += e * e;
      zero_mse += truth[i][d] * truth[i][d];
      ++count;
    }
  }
  EXPECT_LT(imputed_mse / count, zero_mse / count);
}

TEST(Imputer, ImputesGraphDirectionToo) {
  const auto train = tiny_dataset(30, 13);
  CrossModalImputer imputer(6);
  imputer.fit(train);
  data::FeatureDataset probe = tiny_dataset(4, 14);
  for (auto& s : probe.samples) {
    s.graph.clear();
    s.graph_missing = true;
  }
  imputer.impute(probe);
  for (const auto& s : probe.samples) {
    EXPECT_FALSE(s.graph_missing);
    EXPECT_EQ(s.graph.size(), 5u);
  }
}

TEST(Imputer, UnfittedThrows) {
  CrossModalImputer imputer;
  data::FeatureDataset ds = tiny_dataset(2, 15);
  EXPECT_THROW(imputer.impute(ds), std::logic_error);
}

TEST(Imputer, BothModalitiesMissingThrows) {
  const auto train = tiny_dataset(30, 16);
  CrossModalImputer imputer(7);
  imputer.fit(train);
  data::FeatureDataset probe = tiny_dataset(1, 17);
  probe.samples[0].graph_missing = true;
  probe.samples[0].tabular_missing = true;
  EXPECT_THROW(imputer.impute(probe), std::invalid_argument);
}

TEST(Imputer, TooFewCompleteSamplesThrows) {
  data::FeatureDataset ds = tiny_dataset(2, 18);
  for (auto& s : ds.samples) s.graph_missing = true;
  CrossModalImputer imputer;
  EXPECT_THROW(imputer.fit(ds), std::invalid_argument);
}

}  // namespace
}  // namespace noodle::gan
