#include "cp/icp.h"

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

namespace noodle::cp {
namespace {

TEST(Nonconformity, InverseProbability) {
  EXPECT_DOUBLE_EQ(nonconformity(0.8, 1, NonconformityKind::InverseProbability), 0.2);
  EXPECT_DOUBLE_EQ(nonconformity(0.8, 0, NonconformityKind::InverseProbability), 0.8);
}

TEST(Nonconformity, Margin) {
  // p(y)=0.8, p(other)=0.2 -> (1 - 0.8 + 0.2)/2 = 0.2.
  EXPECT_DOUBLE_EQ(nonconformity(0.8, 1, NonconformityKind::Margin), 0.2);
  EXPECT_DOUBLE_EQ(nonconformity(0.8, 0, NonconformityKind::Margin), 0.8);
}

TEST(Nonconformity, RejectsBadLabel) {
  EXPECT_THROW(nonconformity(0.5, 2, NonconformityKind::Margin),
               std::invalid_argument);
}

class IcpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Calibration: class 1 gets high probs, class 0 low probs.
    probs_ = {0.9, 0.8, 0.7, 0.95, 0.1, 0.2, 0.15, 0.3, 0.25, 0.05};
    labels_ = {1, 1, 1, 1, 0, 0, 0, 0, 0, 0};
    icp_.calibrate(probs_, labels_);
  }
  std::vector<double> probs_;
  std::vector<int> labels_;
  MondrianIcp icp_;
};

TEST_F(IcpFixture, CalibrationCountsPerClass) {
  EXPECT_EQ(icp_.calibration_count(1), 4u);
  EXPECT_EQ(icp_.calibration_count(0), 6u);
  EXPECT_TRUE(icp_.calibrated());
}

TEST_F(IcpFixture, ConformingExampleGetsHighPValue) {
  // prob1 = 0.97 conforms with class 1 better than every calibration point.
  EXPECT_DOUBLE_EQ(icp_.p_value(0.97, 1), 1.0);
  // And is maximally strange for class 0.
  EXPECT_DOUBLE_EQ(icp_.p_value(0.97, 0), 1.0 / 7.0);
}

TEST_F(IcpFixture, PValueBoundsAndRange) {
  for (const double prob : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (const int label : {0, 1}) {
      const double p = icp_.p_value(prob, label);
      EXPECT_GT(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST_F(IcpFixture, PValueMonotoneInConformity) {
  // For class 1, higher prob1 = more conforming = higher p-value.
  EXPECT_GE(icp_.p_value(0.9, 1), icp_.p_value(0.5, 1));
  EXPECT_GE(icp_.p_value(0.5, 1), icp_.p_value(0.1, 1));
}

TEST_F(IcpFixture, SmoothedNeverExceedsDeterministic) {
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double prob = 0.05 + 0.9 * static_cast<double>(i) / 49.0;
    const double smoothed = icp_.smoothed_p_value(prob, 1, rng);
    EXPECT_LE(smoothed, icp_.p_value(prob, 1) + 1e-12);
    EXPECT_GT(smoothed, 0.0);
  }
}

TEST(MondrianIcp, RequiresBothClasses) {
  MondrianIcp icp;
  const std::vector<double> probs = {0.1, 0.2};
  const std::vector<int> labels = {0, 0};
  EXPECT_THROW(icp.calibrate(probs, labels), std::invalid_argument);
}

TEST(MondrianIcp, RejectsSizeMismatchAndBadLabels) {
  MondrianIcp icp;
  const std::vector<double> probs = {0.1, 0.2};
  const std::vector<int> short_labels = {0};
  EXPECT_THROW(icp.calibrate(probs, short_labels), std::invalid_argument);
  const std::vector<int> bad = {0, 3};
  EXPECT_THROW(icp.calibrate(probs, bad), std::invalid_argument);
}

TEST(MondrianIcp, UncalibratedUseThrows) {
  MondrianIcp icp;
  EXPECT_THROW(icp.p_value(0.5, 1), std::logic_error);
}

/// Statistical validity: under exchangeability, P(p-value <= alpha) <= alpha
/// per class. We simulate a well-specified model and check the empirical
/// error of smoothed p-values across significance levels.
class IcpValidity : public ::testing::TestWithParam<double> {};

TEST_P(IcpValidity, LabelConditionalErrorBounded) {
  const double alpha = GetParam();
  util::Rng rng(1234);

  // World: P(y=1)=0.3; model prob1 = true prob + noise, clamped.
  const auto draw = [&rng](int& label, double& prob) {
    label = rng.bernoulli(0.3) ? 1 : 0;
    const double base = label == 1 ? 0.7 : 0.3;
    prob = std::clamp(base + rng.normal(0.0, 0.15), 0.01, 0.99);
  };

  std::vector<double> cal_probs;
  std::vector<int> cal_labels;
  for (int i = 0; i < 400; ++i) {
    int y;
    double p;
    draw(y, p);
    cal_probs.push_back(p);
    cal_labels.push_back(y);
  }
  MondrianIcp icp;
  icp.calibrate(cal_probs, cal_labels);

  std::array<std::size_t, 2> errors{0, 0}, counts{0, 0};
  for (int i = 0; i < 2000; ++i) {
    int y;
    double p;
    draw(y, p);
    const double p_value = icp.smoothed_p_value(p, y, rng);
    ++counts[static_cast<std::size_t>(y)];
    if (p_value <= alpha) ++errors[static_cast<std::size_t>(y)];
  }
  for (const int label : {0, 1}) {
    const auto idx = static_cast<std::size_t>(label);
    const double rate = static_cast<double>(errors[idx]) / static_cast<double>(counts[idx]);
    // Allow sampling slack: 3 standard errors of a binomial at alpha.
    const double slack =
        3.0 * std::sqrt(alpha * (1.0 - alpha) / static_cast<double>(counts[idx]));
    EXPECT_LE(rate, alpha + slack + 0.02) << "label " << label << " alpha " << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, IcpValidity,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3));

TEST(Region, ContainsLabelsAbovethreshold) {
  const PredictionRegion region = region_at_confidence({0.4, 0.05}, 0.9);
  EXPECT_TRUE(region.contains[0]);   // 0.4 > 0.1
  EXPECT_FALSE(region.contains[1]);  // 0.05 <= 0.1
  EXPECT_TRUE(region.is_singleton());
  EXPECT_EQ(region.point_prediction, 0);
  EXPECT_DOUBLE_EQ(region.credibility, 0.4);
  EXPECT_DOUBLE_EQ(region.confidence, 0.95);
}

TEST(Region, UncertainWhenBothPValuesHigh) {
  const PredictionRegion region = region_at_confidence({0.5, 0.6}, 0.9);
  EXPECT_TRUE(region.is_uncertain());
  EXPECT_EQ(region.point_prediction, 1);
}

TEST(Region, EmptyWhenBothPValuesLow) {
  const PredictionRegion region = region_at_confidence({0.01, 0.02}, 0.9);
  EXPECT_TRUE(region.is_empty());
}

TEST(Region, RejectsBadConfidenceLevel) {
  EXPECT_THROW(region_at_confidence({0.5, 0.5}, 0.0), std::invalid_argument);
  EXPECT_THROW(region_at_confidence({0.5, 0.5}, 1.0), std::invalid_argument);
}

TEST(ConformalStats, AggregatesRegions) {
  const std::vector<std::array<double, 2>> p_values = {
      {0.9, 0.05},  // singleton TF, correct for label 0
      {0.05, 0.9},  // singleton TI, correct for label 1
      {0.5, 0.5},   // uncertain, contains both
      {0.01, 0.02}, // empty, error for any label
  };
  const std::vector<int> labels = {0, 1, 0, 1};
  const ConformalStats stats = evaluate_regions(p_values, labels, 0.9);
  EXPECT_EQ(stats.total, 4u);
  EXPECT_EQ(stats.singletons, 2u);
  EXPECT_EQ(stats.uncertain, 1u);
  EXPECT_EQ(stats.empty, 1u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_DOUBLE_EQ(stats.average_region_size, (1 + 1 + 2 + 0) / 4.0);
  EXPECT_DOUBLE_EQ(stats.error_rate(), 0.25);
  EXPECT_DOUBLE_EQ(stats.error_rate_for(1), 0.5);
  EXPECT_DOUBLE_EQ(stats.error_rate_for(0), 0.0);
}

TEST(ConformalStats, SizeMismatchThrows) {
  const std::vector<std::array<double, 2>> p_values = {{0.5, 0.5}};
  const std::vector<int> labels = {0, 1};
  EXPECT_THROW(evaluate_regions(p_values, labels, 0.9), std::invalid_argument);
}

}  // namespace
}  // namespace noodle::cp
