// serve::SnapshotStore — the drop-directory watcher's publication and
// failure contract: a dropped archive publishes through the registry, a
// corrupt archive is rejected (counted, remembered by digest, reload-log
// entry) while the previous generation keeps serving, an identical re-copy
// is a digest no-op, and overwritten bytes re-validate. One quick detector
// fit is shared across the suite (same recipe as test_serve's
// DetectorSnapshot fixture).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/detector.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "serve/snapshot_store.h"
#include "util/atomic_file.h"

namespace noodle {
namespace fs = std::filesystem;
namespace {

class SnapshotStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::DetectorConfig config;
    config.seed = 7;
    config.gan_target_per_class = 30;
    config.gan.epochs = 20;
    config.fusion.train.epochs = 8;
    config.fusion.train.validation_fraction = 0.0;
    detector_ = new core::NoodleDetector(config);

    data::CorpusSpec spec;
    spec.design_count = 72;
    spec.infected_fraction = 0.35;
    spec.seed = 7;
    detector_->fit(data::build_corpus(spec));

    archive_ = fs::temp_directory_path() / "noodle_store_suite.snap";
    detector_->save(archive_);
  }

  static void TearDownTestSuite() {
    fs::remove(archive_);
    delete detector_;
    detector_ = nullptr;
  }

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("noodle_store_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Drops the suite's known-good archive into the store as `name`.
  fs::path drop(const std::string& name) const {
    const fs::path destination = dir_ / name;
    fs::copy_file(archive_, destination, fs::copy_options::overwrite_existing);
    return destination;
  }

  static core::NoodleDetector* detector_;
  static fs::path archive_;
  fs::path dir_;
};

core::NoodleDetector* SnapshotStoreTest::detector_ = nullptr;
fs::path SnapshotStoreTest::archive_;

TEST_F(SnapshotStoreTest, DroppedArchivePublishesUnderItsStem) {
  serve::ModelRegistry registry;
  serve::SnapshotStoreConfig config;
  config.directory = dir_;
  serve::SnapshotStore store(config, registry);

  drop("alpha.snap");
  EXPECT_EQ(store.rescan_now(), 1u);

  const serve::ModelHandle handle = registry.resolve("alpha");
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->name(), "alpha");
  EXPECT_EQ(handle->version(), 1u);

  const serve::SnapshotStoreStats stats = store.stats();
  EXPECT_EQ(stats.scans, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.known, 1u);
  EXPECT_TRUE(stats.last_error.empty());
}

TEST_F(SnapshotStoreTest, IdenticalRecopyIsADigestNoOp) {
  serve::ModelRegistry registry;
  serve::SnapshotStoreConfig config;
  config.directory = dir_;
  serve::SnapshotStore store(config, registry);

  drop("alpha.snap");
  ASSERT_EQ(store.rescan_now(), 1u);
  // Same bytes again — even with a fresh mtime, content decides.
  drop("alpha.snap");
  EXPECT_EQ(store.rescan_now(), 0u);
  EXPECT_EQ(registry.resolve("alpha")->version(), 1u);
  EXPECT_EQ(store.stats().accepted, 1u);
}

TEST_F(SnapshotStoreTest, OverwrittenBytesPublishANewVersion) {
  serve::ModelRegistry registry;
  serve::SnapshotStoreConfig config;
  config.directory = dir_;
  serve::SnapshotStore store(config, registry);

  drop("alpha.snap");
  ASSERT_EQ(store.rescan_now(), 1u);

  // A save/load round trip re-serializes the same model; append nothing —
  // instead republish the archive under new bytes by re-saving a reloaded
  // detector (identical verdicts, but a fresh serialization is not
  // guaranteed byte-identical... so force distinct bytes the honest way:
  // save a genuinely distinct generation from a reloaded copy).
  core::NoodleDetector reloaded = core::NoodleDetector::from_snapshot(archive_);
  const fs::path regenerated = fs::temp_directory_path() / "noodle_store_regen.snap";
  reloaded.save(regenerated);
  std::uintmax_t size_before = fs::file_size(dir_ / "alpha.snap");
  fs::copy_file(regenerated, dir_ / "alpha.snap",
                fs::copy_options::overwrite_existing);
  fs::remove(regenerated);

  if (fs::file_size(dir_ / "alpha.snap") == size_before &&
      store.rescan_now() == 0) {
    // Round trip happened to be byte-identical — that is the digest no-op
    // contract doing its job, and the version must not have moved.
    EXPECT_EQ(registry.resolve("alpha")->version(), 1u);
  } else {
    EXPECT_EQ(registry.resolve("alpha")->version(), 2u);
  }
}

TEST_F(SnapshotStoreTest, CorruptArchiveRejectedOldGenerationKeepsServing) {
  serve::ModelRegistry registry;
  obs::MetricsRegistry metrics;
  serve::SnapshotStoreConfig config;
  config.directory = dir_;
  serve::SnapshotStore store(config, registry, &metrics);

  drop("alpha.snap");
  ASSERT_EQ(store.rescan_now(), 1u);
  const serve::ModelHandle generation1 = registry.resolve("alpha");

  // Overwrite with a truncated copy: first half of the archive only.
  std::string bytes;
  {
    std::ifstream in(archive_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  {
    std::ofstream out(dir_ / "alpha.snap", std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  EXPECT_EQ(store.rescan_now(), 0u);
  const serve::SnapshotStoreStats stats = store.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_FALSE(stats.last_error.empty());
  EXPECT_NE(stats.last_error.find("alpha.snap"), std::string::npos);

  // The previously published generation is untouched and still resolves.
  EXPECT_EQ(registry.resolve("alpha"), generation1);
  EXPECT_EQ(registry.resolve("alpha")->version(), 1u);

  // The failure is on the registry's reload event log.
  bool failure_logged = false;
  for (const auto& event : registry.reload_events()) {
    if (!event.ok && event.name == "alpha") failure_logged = true;
  }
  EXPECT_TRUE(failure_logged);

  // ...and the same bad bytes are NOT retried next sweep (digest memory).
  EXPECT_EQ(store.rescan_now(), 0u);
  EXPECT_EQ(store.stats().rejected, 1u) << "bad digest was re-judged";

  // Mirrored counters agree with the store's own numbers.
  std::ostringstream exposition;
  metrics.render_prometheus(exposition);
  EXPECT_NE(exposition.str().find("noodle_snapshot_store_accepted_total 1"),
            std::string::npos);
  EXPECT_NE(exposition.str().find("noodle_snapshot_store_rejected_total 1"),
            std::string::npos);
}

TEST_F(SnapshotStoreTest, FixedBytesAreRetried) {
  serve::ModelRegistry registry;
  serve::SnapshotStoreConfig config;
  config.directory = dir_;
  serve::SnapshotStore store(config, registry);

  // Drop garbage first: rejected, remembered.
  {
    std::ofstream out(dir_ / "alpha.snap", std::ios::binary);
    out << "this is not a snapshot archive";
  }
  EXPECT_EQ(store.rescan_now(), 0u);
  EXPECT_EQ(store.stats().rejected, 1u);
  EXPECT_EQ(registry.try_resolve(serve::ModelSpec{"alpha"}), nullptr);

  // Fix the file (new bytes, new digest): picked up and published.
  drop("alpha.snap");
  EXPECT_EQ(store.rescan_now(), 1u);
  EXPECT_EQ(registry.resolve("alpha")->version(), 1u);
}

TEST_F(SnapshotStoreTest, SkipsTempsInvalidNamesAndSubdirectories) {
  serve::ModelRegistry registry;
  serve::SnapshotStoreConfig config;
  config.directory = dir_;
  serve::SnapshotStore store(config, registry);

  // A publisher crashed mid-copy: AtomicFile temp must be left alone.
  fs::copy_file(archive_, dir_ / "alpha.snap.tmp.1234.7");
  // Invalid model stem (space) and a subdirectory: both skipped.
  fs::copy_file(archive_, dir_ / "bad name.snap");
  fs::create_directories(dir_ / "nested");

  EXPECT_EQ(store.rescan_now(), 0u);
  const serve::SnapshotStoreStats stats = store.stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_TRUE(registry.names().empty());
  // Nothing was deleted — the store never owns the files.
  EXPECT_TRUE(fs::exists(dir_ / "alpha.snap.tmp.1234.7"));
  EXPECT_TRUE(fs::exists(dir_ / "bad name.snap"));
}

TEST_F(SnapshotStoreTest, PollThreadPublishesWithoutRescanNow) {
  serve::ModelRegistry registry;
  serve::SnapshotStoreConfig config;
  config.directory = dir_;
  config.poll_interval = std::chrono::milliseconds(20);
  serve::SnapshotStore store(config, registry);
  store.start();
  store.start();  // idempotent

  drop("alpha.snap");
  store.poke();
  // The poll thread owns publication now; wait for it (bounded).
  serve::ModelHandle handle = nullptr;
  for (int i = 0; i < 500 && handle == nullptr; ++i) {
    handle = registry.try_resolve(serve::ModelSpec{"alpha"});
    if (handle == nullptr) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_NE(handle, nullptr) << "poll thread never published the drop";
  EXPECT_EQ(handle->version(), 1u);
  store.stop();
  store.stop();  // idempotent
  EXPECT_GE(store.stats().scans, 1u);
}

TEST_F(SnapshotStoreTest, MissingDirectoryYieldsEmptySweeps) {
  serve::ModelRegistry registry;
  serve::SnapshotStoreConfig config;
  config.directory = dir_ / "does_not_exist";
  serve::SnapshotStore store(config, registry);
  EXPECT_EQ(store.rescan_now(), 0u);
  EXPECT_EQ(store.stats().scans, 1u);
  EXPECT_TRUE(registry.names().empty());
}

}  // namespace
}  // namespace noodle
