#include "util/string_util.h"

#include <gtest/gtest.h>

namespace noodle::util {
namespace {

TEST(StringUtil, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, SplitKeepsEmptyParts) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitNoSeparator) {
  const auto parts = split("whole", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "whole");
}

TEST(StringUtil, JoinInvertsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, "::"), "x::y::z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, TrimBothSides) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no_trim"), "no_trim");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("module foo", "module"));
  EXPECT_FALSE(starts_with("mod", "module"));
  EXPECT_TRUE(ends_with("file.v", ".v"));
  EXPECT_FALSE(ends_with("v", ".v"));
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("MiXeD_123"), "mixed_123");
}

TEST(StringUtil, VerilogIdentifierAccepts) {
  EXPECT_TRUE(is_verilog_identifier("clk"));
  EXPECT_TRUE(is_verilog_identifier("_state"));
  EXPECT_TRUE(is_verilog_identifier("a$b"));
  EXPECT_TRUE(is_verilog_identifier("x123"));
}

TEST(StringUtil, VerilogIdentifierRejects) {
  EXPECT_FALSE(is_verilog_identifier(""));
  EXPECT_FALSE(is_verilog_identifier("2bad"));
  EXPECT_FALSE(is_verilog_identifier("$display"));
  EXPECT_FALSE(is_verilog_identifier("a-b"));
}

TEST(StringUtil, ZeroPad) {
  EXPECT_EQ(zero_pad(7, 3), "007");
  EXPECT_EQ(zero_pad(1234, 3), "1234");
  EXPECT_EQ(zero_pad(0, 1), "0");
}

}  // namespace
}  // namespace noodle::util
