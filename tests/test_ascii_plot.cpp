#include "util/ascii_plot.h"

#include <gtest/gtest.h>

#include <vector>

namespace noodle::util {
namespace {

TEST(AsciiPlot, XyPlotContainsMarks) {
  const std::vector<double> xs = {0.0, 0.5, 1.0};
  const std::vector<double> ys = {0.0, 0.5, 1.0};
  const std::string plot = ascii_xy_plot(xs, ys);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("1.000"), std::string::npos);
  EXPECT_NE(plot.find("0.000"), std::string::npos);
}

TEST(AsciiPlot, XyPlotDiagonalDrawn) {
  const std::vector<double> xs = {0.0, 1.0};
  const std::vector<double> ys = {0.0, 1.0};
  const std::string plot =
      ascii_xy_plot(xs, ys, 31, 11, '*', /*draw_diagonal=*/true);
  EXPECT_NE(plot.find('.'), std::string::npos);
}

TEST(AsciiPlot, XyPlotSizeMismatchThrows) {
  const std::vector<double> xs = {0.0};
  const std::vector<double> ys = {0.0, 1.0};
  EXPECT_THROW(ascii_xy_plot(xs, ys), std::invalid_argument);
}

TEST(AsciiPlot, XyPlotTooSmallGridThrows) {
  const std::vector<double> xs = {0.0};
  const std::vector<double> ys = {0.0};
  EXPECT_THROW(ascii_xy_plot(xs, ys, 1, 5), std::invalid_argument);
}

TEST(AsciiPlot, XyPlotConstantSeriesHandled) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {2.0, 2.0, 2.0};
  EXPECT_NO_THROW(ascii_xy_plot(xs, ys));
}

TEST(AsciiPlot, BarChartScalesToMax) {
  const std::vector<std::string> labels = {"small", "big"};
  const std::vector<double> values = {1.0, 2.0};
  const std::string chart = ascii_bar_chart(labels, values, 20);
  // The larger bar must contain more '#' characters.
  const auto first_line = chart.substr(0, chart.find('\n'));
  const auto second_line = chart.substr(chart.find('\n') + 1);
  const auto count_hash = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_LT(count_hash(first_line), count_hash(second_line));
}

TEST(AsciiPlot, BarChartMismatchThrows) {
  const std::vector<std::string> labels = {"a"};
  const std::vector<double> values = {1.0, 2.0};
  EXPECT_THROW(ascii_bar_chart(labels, values), std::invalid_argument);
}

TEST(AsciiPlot, BoxPlotShowsMedianAndMean) {
  const std::vector<std::string> labels = {"arm"};
  const std::vector<std::vector<double>> samples = {{0.1, 0.2, 0.3, 0.4, 0.5}};
  const std::string plot = ascii_box_plot(labels, samples);
  EXPECT_NE(plot.find('M'), std::string::npos);
  EXPECT_NE(plot.find("mean=0.3000"), std::string::npos);
}

TEST(AsciiPlot, BoxPlotEmptySampleThrows) {
  const std::vector<std::string> labels = {"arm"};
  const std::vector<std::vector<double>> samples = {{}};
  EXPECT_THROW(ascii_box_plot(labels, samples), std::invalid_argument);
}

TEST(AsciiPlot, RadarRendersAllAxes) {
  const std::vector<std::string> axes = {"AUC", "Brier"};
  const std::vector<double> values = {0.9, 0.2};
  const std::string radar = ascii_radar(axes, values);
  EXPECT_NE(radar.find("AUC"), std::string::npos);
  EXPECT_NE(radar.find("Brier"), std::string::npos);
  EXPECT_NE(radar.find("0.900"), std::string::npos);
}

TEST(AsciiPlot, RadarClampsOutOfRange) {
  const std::vector<std::string> axes = {"x"};
  const std::vector<double> values = {1.7};
  const std::string radar = ascii_radar(axes, values);
  EXPECT_NE(radar.find("1.000"), std::string::npos);
}

TEST(AsciiPlot, RadarMismatchThrows) {
  const std::vector<std::string> axes = {"x", "y"};
  const std::vector<double> values = {0.5};
  EXPECT_THROW(ascii_radar(axes, values), std::invalid_argument);
}

}  // namespace
}  // namespace noodle::util
