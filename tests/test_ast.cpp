#include "verilog/ast.h"

#include <gtest/gtest.h>

#include "verilog/parser.h"

namespace noodle::verilog {
namespace {

const char* kSource =
    "module m (input clk, input [3:0] a, output reg [3:0] q);\n"
    "  wire [3:0] t = a ^ 4'h5;\n"
    "  always @(posedge clk)\n"
    "    if (t == 4'd0)\n"
    "      q <= a;\n"
    "    else\n"
    "      q <= t;\n"
    "endmodule\n";

TEST(Ast, CloneIsDeep) {
  Module m = parse_module(kSource);
  Module copy = m.clone();
  // Mutating the copy must not affect the original.
  // nets[0] is q's reg declaration (from the ANSI header); "t" follows.
  copy.nets[1].name = "renamed";
  copy.always_blocks[0].body->cond->name = "changed";
  EXPECT_EQ(m.nets[1].name, "t");
  EXPECT_EQ(m.always_blocks[0].body->cond->name, "==");
}

TEST(Ast, ExprCloneDeep) {
  auto e = Expr::binary("+", Expr::ident("a"), Expr::number(1, 4));
  auto copy = e->clone();
  copy->operands[0]->name = "b";
  EXPECT_EQ(e->operands[0]->name, "a");
}

TEST(Ast, StmtCloneCoversAllFields) {
  const Module m = parse_module(kSource);
  const StmtPtr copy = m.always_blocks[0].body->clone();
  EXPECT_EQ(copy->kind, StmtKind::If);
  ASSERT_NE(copy->then_branch, nullptr);
  ASSERT_NE(copy->else_branch, nullptr);
}

TEST(Ast, ForEachExprVisitsAllNodes) {
  auto e = Expr::ternary(Expr::ident("c"),
                         Expr::binary("+", Expr::ident("a"), Expr::number(1)),
                         Expr::unary("~", Expr::ident("b")));
  std::size_t count = 0;
  for_each_expr(*e, [&count](const Expr&) { ++count; });
  EXPECT_EQ(count, 7u);  // ternary, c, +, a, 1, ~, b
}

TEST(Ast, ForEachModuleExprSeesDeclInitsAndBodies) {
  const Module m = parse_module(kSource);
  std::size_t identifiers = 0;
  for_each_module_expr(m, [&identifiers](const Expr& e) {
    if (e.kind == ExprKind::Identifier) ++identifiers;
  });
  // t's init: a; if cond: t; then: q, a; else: q, t.
  EXPECT_EQ(identifiers, 6u);
}

TEST(Ast, ForEachModuleStmtCountsStatements) {
  const Module m = parse_module(kSource);
  std::size_t assignments = 0;
  for_each_module_stmt(m, [&assignments](const Stmt& s) {
    if (s.kind == StmtKind::NonBlockingAssign) ++assignments;
  });
  EXPECT_EQ(assignments, 2u);
}

TEST(Ast, CollectIdentifiers) {
  auto e = Expr::binary("&", Expr::ident("x"),
                        Expr::index(Expr::ident("y"), Expr::ident("i")));
  std::vector<std::string> names;
  collect_identifiers(*e, names);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "x");
}

TEST(Ast, BitRangeWidth) {
  EXPECT_EQ((BitRange{7, 0}).width(), 8);
  EXPECT_EQ((BitRange{0, 0}).width(), 1);
  EXPECT_TRUE((BitRange{0, 0}).is_scalar());
  EXPECT_FALSE((BitRange{3, 1}).is_scalar());
}

TEST(Ast, SequentialDetection) {
  AlwaysBlock comb;
  comb.star = true;
  EXPECT_FALSE(comb.is_sequential());
  AlwaysBlock seq;
  seq.sensitivity.push_back(SensItem{EdgeKind::Posedge, "clk"});
  EXPECT_TRUE(seq.is_sequential());
}

TEST(Ast, FindModuleInSourceFile) {
  const SourceFile f = parse_source(
      "module a; endmodule\nmodule b; endmodule");
  EXPECT_NE(f.find_module("a"), nullptr);
  EXPECT_NE(f.find_module("b"), nullptr);
  EXPECT_EQ(f.find_module("c"), nullptr);
}

TEST(Ast, SourceFileCloneIndependent) {
  SourceFile f = parse_source("module a (input x); endmodule");
  SourceFile copy = f.clone();
  copy.modules[0].name = "changed";
  EXPECT_EQ(f.modules[0].name, "a");
}

}  // namespace
}  // namespace noodle::verilog
