#include "data/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "feat/tabular.h"
#include "graph/features.h"

namespace noodle::data {
namespace {

std::vector<CircuitSample> tiny_corpus() {
  CorpusSpec spec;
  spec.design_count = 24;
  spec.infected_fraction = 0.5;
  spec.seed = 2;
  return build_corpus(spec);
}

TEST(Dataset, FeaturizeDimensions) {
  const auto corpus = tiny_corpus();
  const FeatureSample sample = featurize(corpus.front());
  EXPECT_EQ(sample.graph.size(), graph::kGraphFeatureDim);
  EXPECT_EQ(sample.tabular.size(), feat::kTabularFeatureDim);
  EXPECT_FALSE(sample.graph_missing);
  EXPECT_FALSE(sample.tabular_missing);
}

TEST(Dataset, FeaturizeCorpusPreservesOrderAndLabels) {
  const auto corpus = tiny_corpus();
  const FeatureDataset ds = featurize_corpus(corpus);
  ASSERT_EQ(ds.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(ds.samples[i].label,
              corpus[i].infected ? kTrojanInfected : kTrojanFree);
  }
}

TEST(Dataset, CountLabelMatchesLabels) {
  const FeatureDataset ds = featurize_corpus(tiny_corpus());
  EXPECT_EQ(ds.count_label(kTrojanFree) + ds.count_label(kTrojanInfected), ds.size());
  const auto labels = ds.labels();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(labels.begin(), labels.end(), kTrojanInfected)),
            ds.count_label(kTrojanInfected));
}

TEST(Dataset, DropModalitiesNeverDropsBoth) {
  FeatureDataset ds = featurize_corpus(tiny_corpus());
  util::Rng rng(5);
  drop_modalities(ds, 0.9, 0.9, rng);
  for (const auto& s : ds.samples) {
    EXPECT_FALSE(s.graph_missing && s.tabular_missing);
  }
}

TEST(Dataset, DropModalitiesRatesApproximate) {
  FeatureDataset ds;
  for (int i = 0; i < 4000; ++i) {
    FeatureSample s;
    s.graph = {0.0};
    s.tabular = {0.0};
    ds.samples.push_back(s);
  }
  util::Rng rng(6);
  drop_modalities(ds, 0.2, 0.0, rng);
  std::size_t dropped = 0;
  for (const auto& s : ds.samples) dropped += s.graph_missing ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(dropped) / 4000.0, 0.2, 0.03);
}

class SplitFractions : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SplitFractions, PartitionIsExactAndDisjoint) {
  const auto [train_fraction, cal_fraction] = GetParam();
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) labels.push_back(i % 4 == 0 ? 1 : 0);
  util::Rng rng(7);
  const SplitIndices split = stratified_split(labels, train_fraction, cal_fraction, rng);

  std::set<std::size_t> all;
  for (const auto idx : split.train) all.insert(idx);
  for (const auto idx : split.cal) all.insert(idx);
  for (const auto idx : split.test) all.insert(idx);
  EXPECT_EQ(all.size(), labels.size());  // disjoint and complete
  EXPECT_EQ(split.train.size() + split.cal.size() + split.test.size(), labels.size());
}

TEST_P(SplitFractions, EveryPartHasBothClasses) {
  const auto [train_fraction, cal_fraction] = GetParam();
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) labels.push_back(i % 4 == 0 ? 1 : 0);
  util::Rng rng(8);
  const SplitIndices split = stratified_split(labels, train_fraction, cal_fraction, rng);
  for (const auto* part : {&split.train, &split.cal, &split.test}) {
    std::set<int> classes;
    for (const auto idx : *part) classes.insert(labels[idx]);
    EXPECT_EQ(classes.size(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplitFractions,
                         ::testing::Values(std::make_pair(0.5, 0.2),
                                           std::make_pair(0.56, 0.22),
                                           std::make_pair(0.7, 0.15),
                                           std::make_pair(0.34, 0.33)));

TEST(Dataset, StratifiedSplitProportionsRoughlyHold) {
  std::vector<int> labels(1000, 0);
  for (int i = 0; i < 300; ++i) labels[static_cast<std::size_t>(i)] = 1;
  util::Rng rng(9);
  const SplitIndices split = stratified_split(labels, 0.6, 0.2, rng);
  std::size_t train_positive = 0;
  for (const auto idx : split.train) train_positive += labels[idx];
  // 60% of 300 positives ~ 180.
  EXPECT_NEAR(static_cast<double>(train_positive), 180.0, 10.0);
}

TEST(Dataset, StratifiedSplitRejectsBadFractions) {
  std::vector<int> labels = {0, 1, 0, 1};
  util::Rng rng(1);
  EXPECT_THROW(stratified_split(labels, 0.0, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split(labels, 0.8, 0.3, rng), std::invalid_argument);
}

TEST(Dataset, StratifiedSplitGuaranteesCalAndTestPerClass) {
  // 5 positives in 50: every part still sees the minority class.
  std::vector<int> labels(50, 0);
  for (int i = 0; i < 5; ++i) labels[static_cast<std::size_t>(i * 10)] = 1;
  util::Rng rng(3);
  const SplitIndices split = stratified_split(labels, 0.6, 0.2, rng);
  auto count_positive = [&labels](const std::vector<std::size_t>& part) {
    std::size_t n = 0;
    for (const auto idx : part) n += static_cast<std::size_t>(labels[idx]);
    return n;
  };
  EXPECT_GE(count_positive(split.cal), 1u);
  EXPECT_GE(count_positive(split.test), 1u);
}

TEST(Dataset, SubsetSelectsByIndex) {
  const FeatureDataset ds = featurize_corpus(tiny_corpus());
  const FeatureDataset sub = subset(ds, {0, 2, 4});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.samples[1].label, ds.samples[2].label);
  EXPECT_EQ(sub.samples[1].graph, ds.samples[2].graph);
}

TEST(Dataset, SubsetThrowsOnBadIndex) {
  const FeatureDataset ds = featurize_corpus(tiny_corpus());
  EXPECT_THROW(subset(ds, {ds.size()}), std::out_of_range);
}

}  // namespace
}  // namespace noodle::data
