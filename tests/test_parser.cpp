#include "verilog/parser.h"

#include <gtest/gtest.h>

#include "verilog/printer.h"

namespace noodle::verilog {
namespace {

TEST(Parser, MinimalModule) {
  const Module m = parse_module("module empty; endmodule");
  EXPECT_EQ(m.name, "empty");
  EXPECT_TRUE(m.ports.empty());
}

TEST(Parser, AnsiPortsWithRanges) {
  const Module m = parse_module(
      "module top (input clk, input [7:0] data, output reg [3:0] out); endmodule");
  ASSERT_EQ(m.ports.size(), 3u);
  EXPECT_EQ(m.ports[0].dir, PortDir::Input);
  EXPECT_FALSE(m.ports[0].range.has_value());
  ASSERT_TRUE(m.ports[1].range.has_value());
  EXPECT_EQ(m.ports[1].range->width(), 8);
  EXPECT_EQ(m.ports[2].net, NetKind::Reg);
  // output reg also registers a net declaration.
  EXPECT_NE(m.find_net("out"), nullptr);
}

TEST(Parser, AnsiPortsDirectionPersistsAcrossCommas) {
  const Module m =
      parse_module("module top (input [3:0] a, b, output y); endmodule");
  ASSERT_EQ(m.ports.size(), 3u);
  EXPECT_EQ(m.ports[1].dir, PortDir::Input);
  ASSERT_TRUE(m.ports[1].range.has_value());
  EXPECT_EQ(m.ports[1].range->width(), 4);
  EXPECT_EQ(m.ports[2].dir, PortDir::Output);
}

TEST(Parser, NonAnsiPortDeclarations) {
  const Module m = parse_module(
      "module top (clk, data, out);\n"
      "  input clk;\n"
      "  input [15:0] data;\n"
      "  output reg [7:0] out;\n"
      "endmodule");
  ASSERT_EQ(m.ports.size(), 3u);
  EXPECT_EQ(m.ports[1].range->width(), 16);
  EXPECT_EQ(m.ports[2].net, NetKind::Reg);
}

TEST(Parser, ParameterHeaderAndBody) {
  const Module m = parse_module(
      "module top #(parameter W = 8, parameter D = W * 2) (input [W-1:0] x);\n"
      "  localparam HALF = W / 2;\n"
      "  wire [D-1:0] wide;\n"
      "endmodule");
  ASSERT_EQ(m.params.size(), 3u);
  EXPECT_FALSE(m.params[0].local);
  EXPECT_TRUE(m.params[2].local);
  EXPECT_EQ(m.ports[0].range->width(), 8);    // W-1:0
  EXPECT_EQ(m.find_net("wide")->range->width(), 16);  // D-1:0 with D = 16
}

TEST(Parser, WireWithInitializer) {
  const Module m = parse_module(
      "module top (input a, input b);\n  wire x = a & b;\nendmodule");
  const NetDecl* net = m.find_net("x");
  ASSERT_NE(net, nullptr);
  ASSERT_NE(net->init, nullptr);
  EXPECT_EQ(net->init->name, "&");
}

TEST(Parser, MultipleNetsPerDeclaration) {
  const Module m = parse_module(
      "module top;\n  reg [3:0] a, b, c;\n  integer i;\nendmodule");
  EXPECT_EQ(m.nets.size(), 4u);
  EXPECT_EQ(m.find_net("b")->range->width(), 4);
  EXPECT_EQ(m.find_net("i")->kind, NetKind::Integer);
}

TEST(Parser, ContinuousAssign) {
  const Module m = parse_module(
      "module top (input [3:0] a, output [3:0] y);\n  assign y = a + 4'd1;\nendmodule");
  ASSERT_EQ(m.assigns.size(), 1u);
  EXPECT_EQ(m.assigns[0].rhs->name, "+");
}

TEST(Parser, ExpressionPrecedence) {
  // a + b * c must parse as a + (b * c).
  const Module m = parse_module(
      "module top (input [7:0] a, b, c, output [7:0] y);\n"
      "  assign y = a + b * c;\nendmodule");
  const Expr& root = *m.assigns[0].rhs;
  EXPECT_EQ(root.name, "+");
  EXPECT_EQ(root.operands[1]->name, "*");
}

TEST(Parser, ComparisonBindsLooserThanShift) {
  const Module m = parse_module(
      "module top (input [7:0] a, output y);\n"
      "  assign y = a << 1 > a;\nendmodule");
  EXPECT_EQ(m.assigns[0].rhs->name, ">");
}

TEST(Parser, TernaryNestsRight) {
  const Module m = parse_module(
      "module top (input s, t, input [1:0] a, b, c, output [1:0] y);\n"
      "  assign y = s ? a : t ? b : c;\nendmodule");
  const Expr& root = *m.assigns[0].rhs;
  EXPECT_EQ(root.kind, ExprKind::Ternary);
  EXPECT_EQ(root.operands[2]->kind, ExprKind::Ternary);
}

TEST(Parser, UnaryReductionAndConcat) {
  const Module m = parse_module(
      "module top (input [7:0] a, output y, output [15:0] z);\n"
      "  assign y = ^a;\n"
      "  assign z = {a, 8'h55};\nendmodule");
  EXPECT_EQ(m.assigns[0].rhs->kind, ExprKind::Unary);
  EXPECT_EQ(m.assigns[1].rhs->kind, ExprKind::Concat);
}

TEST(Parser, Replication) {
  const Module m = parse_module(
      "module top (input b, output [7:0] y);\n  assign y = {8{b}};\nendmodule");
  EXPECT_EQ(m.assigns[0].rhs->kind, ExprKind::Replicate);
}

TEST(Parser, IndexAndRangeSelect) {
  const Module m = parse_module(
      "module top (input [7:0] a, output y, output [3:0] z);\n"
      "  assign y = a[3];\n"
      "  assign z = a[7:4];\nendmodule");
  EXPECT_EQ(m.assigns[0].rhs->kind, ExprKind::Index);
  EXPECT_EQ(m.assigns[1].rhs->kind, ExprKind::Range);
}

TEST(Parser, AlwaysPosedgeWithReset) {
  const Module m = parse_module(
      "module top (input clk, input rst, output reg q);\n"
      "  always @(posedge clk or negedge rst)\n"
      "    if (!rst) q <= 1'd0; else q <= 1'd1;\n"
      "endmodule");
  ASSERT_EQ(m.always_blocks.size(), 1u);
  const AlwaysBlock& block = m.always_blocks[0];
  ASSERT_EQ(block.sensitivity.size(), 2u);
  EXPECT_EQ(block.sensitivity[0].edge, EdgeKind::Posedge);
  EXPECT_EQ(block.sensitivity[1].edge, EdgeKind::Negedge);
  EXPECT_TRUE(block.is_sequential());
  EXPECT_EQ(block.body->kind, StmtKind::If);
}

TEST(Parser, AlwaysStarForms) {
  const Module a = parse_module(
      "module top (input x, output reg y);\n  always @(*) y = x;\nendmodule");
  EXPECT_TRUE(a.always_blocks[0].star);
  const Module b = parse_module(
      "module top (input x, output reg y);\n  always @* y = x;\nendmodule");
  EXPECT_TRUE(b.always_blocks[0].star);
  EXPECT_FALSE(b.always_blocks[0].is_sequential());
}

TEST(Parser, CaseWithMultipleLabelsAndDefault) {
  const Module m = parse_module(
      "module top (input [1:0] s, output reg y);\n"
      "  always @(*)\n"
      "    case (s)\n"
      "      2'd0, 2'd1: y = 1'd0;\n"
      "      default: y = 1'd1;\n"
      "    endcase\n"
      "endmodule");
  const Stmt& body = *m.always_blocks[0].body;
  ASSERT_EQ(body.kind, StmtKind::Case);
  ASSERT_EQ(body.case_items.size(), 2u);
  EXPECT_EQ(body.case_items[0].labels.size(), 2u);
  EXPECT_TRUE(body.case_items[1].labels.empty());  // default
}

TEST(Parser, ForLoop) {
  const Module m = parse_module(
      "module top (output reg [7:0] y);\n"
      "  integer i;\n"
      "  always @(*)\n"
      "    begin\n"
      "      y = 8'd0;\n"
      "      for (i = 0; i < 8; i = i + 1)\n"
      "        y = y + 8'd1;\n"
      "    end\n"
      "endmodule");
  const Stmt& block = *m.always_blocks[0].body;
  ASSERT_EQ(block.body.size(), 2u);
  EXPECT_EQ(block.body[1]->kind, StmtKind::For);
}

TEST(Parser, SystemTasksIgnored) {
  const Module m = parse_module(
      "module top;\n  initial begin $display(\"hi\", 1+2); $finish; end\nendmodule");
  ASSERT_EQ(m.initial_blocks.size(), 1u);
}

TEST(Parser, InstanceWithNamedConnections) {
  const SourceFile f = parse_source(
      "module leaf (input a, output y); assign y = a; endmodule\n"
      "module top (input x, output z);\n"
      "  leaf u0 (.a(x), .y(z));\n"
      "endmodule");
  ASSERT_EQ(f.modules.size(), 2u);
  const Module& top = f.modules[1];
  ASSERT_EQ(top.instances.size(), 1u);
  EXPECT_EQ(top.instances[0].module_name, "leaf");
  EXPECT_EQ(top.instances[0].connections[0].port, "a");
}

TEST(Parser, InstanceWithPositionalConnections) {
  const Module m = parse_module(
      "module top (input x, output z);\n  leaf u0 (x, z);\nendmodule");
  ASSERT_EQ(m.instances[0].connections.size(), 2u);
  EXPECT_TRUE(m.instances[0].connections[0].port.empty());
}

TEST(Parser, UnconnectedNamedPort) {
  const Module m = parse_module(
      "module top (input x);\n  leaf u0 (.a(x), .y());\nendmodule");
  EXPECT_EQ(m.instances[0].connections[1].actual, nullptr);
}

TEST(Parser, WidthOfQueries) {
  const Module m = parse_module(
      "module top (input [7:0] a, input b);\n  wire [3:0] w;\nendmodule");
  EXPECT_EQ(m.width_of("a"), 8);
  EXPECT_EQ(m.width_of("b"), 1);
  EXPECT_EQ(m.width_of("w"), 4);
  EXPECT_EQ(m.width_of("nope"), 0);
}

TEST(Parser, ParseModuleRejectsMultiModuleFile) {
  EXPECT_THROW(parse_module("module a; endmodule module b; endmodule"),
               ParseError);
}

struct BadSource {
  const char* text;
};

class ParserRejects : public ::testing::TestWithParam<BadSource> {};

TEST_P(ParserRejects, ThrowsParseError) {
  EXPECT_THROW(parse_source(GetParam().text), ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ParserRejects,
    ::testing::Values(
        BadSource{""},                                        // no modules
        BadSource{"module"},                                  // truncated
        BadSource{"module m (input a; endmodule"},            // bad port list
        BadSource{"module m; assign = 1; endmodule"},         // missing lhs
        BadSource{"module m; wire [x:0] w; endmodule"},       // non-const range
        BadSource{"module m; always @(posedge) ; endmodule"}, // missing signal
        BadSource{"module m; if (1) ; endmodule"},            // stmt outside always
        BadSource{"module m; begin end endmodule"}));         // bare block

TEST(Parser, ErrorMessagesCarryLocation) {
  try {
    parse_source("module m;\n  wire [bad:0] w;\nendmodule");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

}  // namespace
}  // namespace noodle::verilog
