#include "graph/builder.h"
#include "graph/features.h"
#include "graph/netgraph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/designgen.h"
#include "verilog/parser.h"

namespace noodle::graph {
namespace {

TEST(NetGraph, AddNodesAndEdges) {
  NetGraph g;
  const auto a = g.add_node(NodeType::Input, "a");
  const auto b = g.add_node(NodeType::Wire, "b");
  g.add_edge(a, b);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.out_degree(a), 1u);
  EXPECT_EQ(g.in_degree(b), 1u);
  EXPECT_EQ(g.successors(a).front(), b);
  EXPECT_EQ(g.predecessors(b).front(), a);
}

TEST(NetGraph, ParallelEdgesAndSelfLoopsAllowed) {
  NetGraph g;
  const auto a = g.add_node(NodeType::Reg, "a");
  g.add_edge(a, a);
  g.add_edge(a, a);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.out_degree(a), 2u);
}

TEST(NetGraph, EdgeToInvalidNodeThrows) {
  NetGraph g;
  const auto a = g.add_node(NodeType::Wire, "a");
  EXPECT_THROW(g.add_edge(a, a + 1), std::out_of_range);
}

TEST(NetGraph, ComponentCount) {
  NetGraph g;
  const auto a = g.add_node(NodeType::Wire, "a");
  const auto b = g.add_node(NodeType::Wire, "b");
  g.add_node(NodeType::Wire, "c");  // isolated
  g.add_edge(a, b);
  EXPECT_EQ(g.component_count(), 2u);
  EXPECT_EQ(NetGraph{}.component_count(), 0u);
}

TEST(NetGraph, DepthFromInputs) {
  NetGraph g;
  const auto in = g.add_node(NodeType::Input, "in");
  const auto mid = g.add_node(NodeType::Op, "+");
  const auto out = g.add_node(NodeType::Output, "out");
  g.add_edge(in, mid);
  g.add_edge(mid, out);
  EXPECT_EQ(g.depth_from_inputs(), 2u);
}

TEST(NetGraph, DepthZeroWithoutInputs) {
  NetGraph g;
  const auto a = g.add_node(NodeType::Wire, "a");
  const auto b = g.add_node(NodeType::Wire, "b");
  g.add_edge(a, b);
  EXPECT_EQ(g.depth_from_inputs(), 0u);
}

TEST(NetGraph, TypeHistogramNormalized) {
  NetGraph g;
  g.add_node(NodeType::Input, "a");
  g.add_node(NodeType::Input, "b");
  g.add_node(NodeType::Output, "y");
  g.add_node(NodeType::Op, "+");
  const auto hist = g.type_histogram();
  ASSERT_EQ(hist.size(), kNodeTypeCount);
  EXPECT_DOUBLE_EQ(hist[static_cast<std::size_t>(NodeType::Input)], 0.5);
  double total = 0.0;
  for (const double h : hist) total += h;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(NetGraph, SpectralSketchKnownGraph) {
  // Complete bipartite-ish star: center connected to 4 leaves. Symmetrized
  // adjacency of a star K_{1,4} has top eigenvalue 2*sqrt(4)=4 (edges count
  // twice because add_edge adds both directions to the symmetrized matrix).
  NetGraph g;
  const auto center = g.add_node(NodeType::Wire, "c");
  for (int i = 0; i < 4; ++i) {
    const auto leaf = g.add_node(NodeType::Wire, "l");
    g.add_edge(center, leaf);
  }
  const auto spectrum = g.spectral_sketch(2, 200);
  ASSERT_EQ(spectrum.size(), 2u);
  EXPECT_NEAR(spectrum[0], 2.0, 0.05);  // star adjacency eigenvalue sqrt(n)=2
  EXPECT_GE(spectrum[0], spectrum[1] - 1e-9);
}

TEST(NetGraph, SpectralSketchEmptyGraph) {
  const auto spectrum = NetGraph{}.spectral_sketch(3);
  ASSERT_EQ(spectrum.size(), 3u);
  for (const double v : spectrum) EXPECT_DOUBLE_EQ(v, 0.0);
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

TEST(Builder, SimpleAssignDataflow) {
  const verilog::Module m = verilog::parse_module(
      "module t (input a, input b, output y);\n  assign y = a & b;\nendmodule");
  const NetGraph g = build_netgraph(m);
  // Nodes: a, b, y, '&' op.
  EXPECT_EQ(g.node_count(), 4u);
  const auto ops = g.nodes_of_type(NodeType::Op);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(g.in_degree(ops[0]), 2u);
  EXPECT_EQ(g.out_degree(ops[0]), 1u);
}

TEST(Builder, PortTypesMapped) {
  const verilog::Module m = verilog::parse_module(
      "module t (input [3:0] a, output y);\n  reg [7:0] r;\n  wire w;\nendmodule");
  const NetGraph g = build_netgraph(m);
  EXPECT_EQ(g.nodes_of_type(NodeType::Input).size(), 1u);
  EXPECT_EQ(g.nodes_of_type(NodeType::Output).size(), 1u);
  EXPECT_EQ(g.nodes_of_type(NodeType::Reg).size(), 1u);
  EXPECT_EQ(g.nodes_of_type(NodeType::Wire).size(), 1u);
  // Widths preserved on signal nodes.
  const auto inputs = g.nodes_of_type(NodeType::Input);
  EXPECT_EQ(g.node(inputs[0]).width, 4);
}

TEST(Builder, TernaryBecomesMux) {
  const verilog::Module m = verilog::parse_module(
      "module t (input s, input a, input b, output y);\n"
      "  assign y = s ? a : b;\nendmodule");
  const NetGraph g = build_netgraph(m);
  const auto muxes = g.nodes_of_type(NodeType::Mux);
  ASSERT_EQ(muxes.size(), 1u);
  EXPECT_EQ(g.in_degree(muxes[0]), 3u);
}

TEST(Builder, ControlDependenciesFromIf) {
  const verilog::Module m = verilog::parse_module(
      "module t (input clk, input c, input d, output reg q);\n"
      "  always @(posedge clk)\n"
      "    if (c)\n      q <= d;\n"
      "endmodule");
  const NetGraph g = build_netgraph(m);
  // q receives edges from: d (data), c (control), clk (sequential skeleton).
  const auto outputs = g.nodes_of_type(NodeType::Output);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(g.in_degree(outputs[0]), 3u);
}

TEST(Builder, SequentialFeedbackSelfLoop) {
  const verilog::Module m = verilog::parse_module(
      "module t (input clk, output reg [3:0] q);\n"
      "  always @(posedge clk) q <= q + 4'd1;\nendmodule");
  const NetGraph g = build_netgraph(m);
  // q feeds the adder, which feeds q: a cycle through the op node exists.
  const auto ops = g.nodes_of_type(NodeType::Op);
  ASSERT_EQ(ops.size(), 1u);
  const auto outputs = g.nodes_of_type(NodeType::Output);
  bool q_feeds_add = false;
  for (const auto succ : g.successors(outputs[0])) {
    if (succ == ops[0]) q_feeds_add = true;
  }
  EXPECT_TRUE(q_feeds_add);
}

TEST(Builder, InstanceNodeBidirectional) {
  const verilog::Module m = verilog::parse_module(
      "module t (input x, output z);\n  leaf u0 (.a(x), .y(z));\nendmodule");
  const NetGraph g = build_netgraph(m);
  const auto instances = g.nodes_of_type(NodeType::Instance);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(g.in_degree(instances[0]), 2u);
  EXPECT_EQ(g.out_degree(instances[0]), 2u);
}

TEST(Builder, ConstantsBecomeConstNodes) {
  const verilog::Module m = verilog::parse_module(
      "module t (input [7:0] a, output y);\n  assign y = a == 8'hAB;\nendmodule");
  const NetGraph g = build_netgraph(m);
  const auto consts = g.nodes_of_type(NodeType::Const);
  ASSERT_EQ(consts.size(), 1u);
  EXPECT_EQ(g.node(consts[0]).width, 8);
}

TEST(Builder, UndeclaredIdentifierGetsImplicitWire) {
  const verilog::Module m = verilog::parse_module(
      "module t (output y);\n  assign y = mystery;\nendmodule");
  EXPECT_NO_THROW(build_netgraph(m));
}

// ---------------------------------------------------------------------------
// Features
// ---------------------------------------------------------------------------

TEST(GraphFeatures, DimensionAndNames) {
  EXPECT_EQ(graph_feature_names().size(), kGraphFeatureDim);
  std::set<std::string> unique(graph_feature_names().begin(),
                               graph_feature_names().end());
  EXPECT_EQ(unique.size(), kGraphFeatureDim);
}

TEST(GraphFeatures, EmptyGraphIsFiniteZeroish) {
  const auto f = graph_features(NetGraph{});
  ASSERT_EQ(f.size(), kGraphFeatureDim);
  for (const double v : f) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(GraphFeatures, DeterministicForSameModule) {
  util::Rng rng_a(4), rng_b(4);
  const auto src_a = data::generate_design(data::DesignFamily::Crc, "d", rng_a);
  const auto src_b = data::generate_design(data::DesignFamily::Crc, "d", rng_b);
  const auto fa = graph_features(build_netgraph(verilog::parse_module(src_a)));
  const auto fb = graph_features(build_netgraph(verilog::parse_module(src_b)));
  EXPECT_EQ(fa, fb);
}

TEST(GraphFeatures, HistogramEntriesSumToOne) {
  util::Rng rng(5);
  const auto src = data::generate_design(data::DesignFamily::Alu, "d", rng);
  const auto f = graph_features(build_netgraph(verilog::parse_module(src)));
  double type_sum = 0.0;
  for (std::size_t i = 0; i < kNodeTypeCount; ++i) type_sum += f[i];
  EXPECT_NEAR(type_sum, 1.0, 1e-9);
}

TEST(GraphFeatures, AllFamiliesProduceFiniteFeatures) {
  for (const auto family : data::all_design_families()) {
    util::Rng rng(11);
    const auto src = data::generate_design(family, "d", rng);
    const auto f = graph_features(build_netgraph(verilog::parse_module(src)));
    for (const double v : f) {
      EXPECT_TRUE(std::isfinite(v)) << data::to_string(family);
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked spectral sketch vs dense ground truth (feature version 2)
// ---------------------------------------------------------------------------

/// The feature-version-1 sketch, verbatim: deflated power iteration that
/// scatters over the out-adjacency edge by edge, zero-fills w every
/// iteration, and always runs the full iteration budget. The v2 blocked
/// subspace iteration replaces it outright, so this reference exists to
/// QUANTIFY the change rather than to match it: the fixture below measures
/// both implementations against a dense eigensolve and asserts the v2
/// values are far closer to the true spectrum — which is what justifies
/// bumping feat::kFeatureVersion instead of claiming any identity.
std::vector<double> pre_csr_spectral_sketch(const NetGraph& g, std::size_t count,
                                            std::size_t iterations) {
  const std::size_t n = g.node_count();
  std::vector<double> out(count, 0.0);
  if (n == 0 || count == 0) return out;
  std::vector<std::vector<double>> basis(count);
  std::vector<double> v, w;
  for (std::size_t k = 0; k < count; ++k) {
    v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = 1.0 + 0.1 * static_cast<double>((i + k + 1) % 7);
    }
    double eigenvalue = 0.0;
    for (std::size_t iter = 0; iter < iterations; ++iter) {
      for (std::size_t f = 0; f < k; ++f) {
        const std::vector<double>& u = basis[f];
        double dot = 0.0;
        for (std::size_t i = 0; i < n; ++i) dot += v[i] * u[i];
        for (std::size_t i = 0; i < n; ++i) v[i] -= dot * u[i];
      }
      w.assign(n, 0.0);
      for (NetGraph::NodeId src = 0; src < n; ++src) {
        for (const NetGraph::NodeId dst : g.successors(src)) {
          w[dst] += v[src];
          w[src] += v[dst];
        }
      }
      double norm = 0.0;
      for (const double x : w) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-12) {
        eigenvalue = 0.0;
        v.assign(n, 0.0);
        break;
      }
      eigenvalue = norm;
      for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / norm;
    }
    out[k] = eigenvalue;
    basis[k] = v;
  }
  return out;
}

/// Dense cyclic-Jacobi eigensolve of the symmetrized adjacency — the
/// ground truth the sketches estimate. O(n³) per sweep, test-only.
std::vector<double> dense_spectrum_magnitudes(const NetGraph& g, std::size_t count) {
  const std::size_t n = g.node_count();
  std::vector<double> a(n * n, 0.0);
  for (NetGraph::NodeId i = 0; i < n; ++i) {
    for (const NetGraph::NodeId d : g.successors(i)) {
      a[i * n + d] += 1.0;
      a[d * n + i] += 1.0;
    }
  }
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a[p * n + q] * a[p * n + q];
    }
    if (off < 1e-22) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-18) continue;
        const double tau = (a[q * n + q] - a[p * n + p]) / (2.0 * apq);
        const double t =
            (tau >= 0.0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a[i * n + p];
          const double aiq = a[i * n + q];
          a[i * n + p] = c * aip - s * aiq;
          a[i * n + q] = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = a[p * n + i];
          const double aqi = a[q * n + i];
          a[p * n + i] = c * api - s * aqi;
          a[q * n + i] = s * api + c * aqi;
        }
      }
    }
  }
  std::vector<double> mags(n);
  for (std::size_t i = 0; i < n; ++i) mags[i] = std::abs(a[i * n + i]);
  std::sort(mags.rbegin(), mags.rend());
  mags.resize(count, 0.0);
  return mags;
}

TEST(SpectralSketch, TracksDenseSpectrumFarTighterThanV1OnGeneratedCorpus) {
  // Every design family at several seeds — the same generator the training
  // corpus uses, so this is the population the version bump must be judged
  // on. The v2 blocked sketch at its default 24-pass budget must beat the
  // v1 deflated power iteration at 50 passes against dense ground truth by
  // a wide aggregate margin (measured ~30x; asserted at 2x for slack), stay
  // small in the mean, and never be catastrophically wrong on any graph.
  double sum_v1 = 0.0;
  double sum_v2 = 0.0;
  double max_v2 = 0.0;
  std::size_t values = 0;
  for (const auto family : data::all_design_families()) {
    for (const std::uint64_t seed : {1u, 7u, 23u, 51u, 104u, 999u}) {
      util::Rng rng(seed);
      const auto src = data::generate_design(family, "d", rng);
      const NetGraph g = build_netgraph(verilog::parse_module(src));
      const auto truth = dense_spectrum_magnitudes(g, 3);
      const auto v1 = pre_csr_spectral_sketch(g, 3, 50);
      const auto v2 = g.spectral_sketch(3);
      ASSERT_EQ(v2.size(), truth.size());
      for (std::size_t i = 0; i < truth.size(); ++i) {
        sum_v1 += std::abs(v1[i] - truth[i]);
        const double err = std::abs(v2[i] - truth[i]);
        sum_v2 += err;
        max_v2 = std::max(max_v2, err);
        ++values;
      }
    }
  }
  EXPECT_LT(sum_v2, 0.5 * sum_v1) << "v2 aggregate error should crush v1's";
  EXPECT_LT(sum_v2 / static_cast<double>(values), 0.05) << "v2 mean error";
  EXPECT_LT(max_v2, 2.0) << "v2 worst-case error";
}

TEST(SpectralSketch, ConvergenceExitTriggersOnWellSeparatedSpectra) {
  // A star K_{1,4} has a well-separated spectrum, so every column-norm
  // estimate goes stationary long before any reasonable cap — and once the
  // exit triggers, raising the cap cannot change the answer (the break
  // happens at the same pass with the same block, bit for bit). Graphs
  // whose spectra converge slower than the cap are deliberately NOT
  // cap-insensitive; the dense-truth fixture above bounds their error
  // instead.
  NetGraph g;
  const auto center = g.add_node(NodeType::Wire, "c");
  for (int i = 0; i < 4; ++i) {
    g.add_edge(center, g.add_node(NodeType::Wire, "l"));
  }
  const auto at_50 = g.spectral_sketch(2, 50);
  const auto at_4000 = g.spectral_sketch(2, 4000);
  EXPECT_EQ(at_50, at_4000);
}

TEST(SpectralSketch, ScratchAndConvenienceFormsAgree) {
  // The convenience overload routes through thread_analysis_scratch(), so
  // the two forms must be bit-identical — and a reused scratch must not
  // leak state between differently-shaped graphs.
  util::Rng rng(9);
  AnalysisScratch scratch;
  for (const auto family : data::all_design_families()) {
    const auto src = data::generate_design(family, "d", rng);
    const NetGraph g = build_netgraph(verilog::parse_module(src));
    std::vector<double> via_scratch(3, -1.0);
    g.spectral_sketch(via_scratch, 50, scratch);
    EXPECT_EQ(via_scratch, g.spectral_sketch(3, 50)) << data::to_string(family);
  }
}

}  // namespace
}  // namespace noodle::graph
