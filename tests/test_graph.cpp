#include "graph/builder.h"
#include "graph/features.h"
#include "graph/netgraph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/designgen.h"
#include "verilog/parser.h"

namespace noodle::graph {
namespace {

TEST(NetGraph, AddNodesAndEdges) {
  NetGraph g;
  const auto a = g.add_node(NodeType::Input, "a");
  const auto b = g.add_node(NodeType::Wire, "b");
  g.add_edge(a, b);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.out_degree(a), 1u);
  EXPECT_EQ(g.in_degree(b), 1u);
  EXPECT_EQ(g.successors(a).front(), b);
  EXPECT_EQ(g.predecessors(b).front(), a);
}

TEST(NetGraph, ParallelEdgesAndSelfLoopsAllowed) {
  NetGraph g;
  const auto a = g.add_node(NodeType::Reg, "a");
  g.add_edge(a, a);
  g.add_edge(a, a);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.out_degree(a), 2u);
}

TEST(NetGraph, EdgeToInvalidNodeThrows) {
  NetGraph g;
  const auto a = g.add_node(NodeType::Wire, "a");
  EXPECT_THROW(g.add_edge(a, a + 1), std::out_of_range);
}

TEST(NetGraph, ComponentCount) {
  NetGraph g;
  const auto a = g.add_node(NodeType::Wire, "a");
  const auto b = g.add_node(NodeType::Wire, "b");
  g.add_node(NodeType::Wire, "c");  // isolated
  g.add_edge(a, b);
  EXPECT_EQ(g.component_count(), 2u);
  EXPECT_EQ(NetGraph{}.component_count(), 0u);
}

TEST(NetGraph, DepthFromInputs) {
  NetGraph g;
  const auto in = g.add_node(NodeType::Input, "in");
  const auto mid = g.add_node(NodeType::Op, "+");
  const auto out = g.add_node(NodeType::Output, "out");
  g.add_edge(in, mid);
  g.add_edge(mid, out);
  EXPECT_EQ(g.depth_from_inputs(), 2u);
}

TEST(NetGraph, DepthZeroWithoutInputs) {
  NetGraph g;
  const auto a = g.add_node(NodeType::Wire, "a");
  const auto b = g.add_node(NodeType::Wire, "b");
  g.add_edge(a, b);
  EXPECT_EQ(g.depth_from_inputs(), 0u);
}

TEST(NetGraph, TypeHistogramNormalized) {
  NetGraph g;
  g.add_node(NodeType::Input, "a");
  g.add_node(NodeType::Input, "b");
  g.add_node(NodeType::Output, "y");
  g.add_node(NodeType::Op, "+");
  const auto hist = g.type_histogram();
  ASSERT_EQ(hist.size(), kNodeTypeCount);
  EXPECT_DOUBLE_EQ(hist[static_cast<std::size_t>(NodeType::Input)], 0.5);
  double total = 0.0;
  for (const double h : hist) total += h;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(NetGraph, SpectralSketchKnownGraph) {
  // Complete bipartite-ish star: center connected to 4 leaves. Symmetrized
  // adjacency of a star K_{1,4} has top eigenvalue 2*sqrt(4)=4 (edges count
  // twice because add_edge adds both directions to the symmetrized matrix).
  NetGraph g;
  const auto center = g.add_node(NodeType::Wire, "c");
  for (int i = 0; i < 4; ++i) {
    const auto leaf = g.add_node(NodeType::Wire, "l");
    g.add_edge(center, leaf);
  }
  const auto spectrum = g.spectral_sketch(2, 200);
  ASSERT_EQ(spectrum.size(), 2u);
  EXPECT_NEAR(spectrum[0], 2.0, 0.05);  // star adjacency eigenvalue sqrt(n)=2
  EXPECT_GE(spectrum[0], spectrum[1] - 1e-9);
}

TEST(NetGraph, SpectralSketchEmptyGraph) {
  const auto spectrum = NetGraph{}.spectral_sketch(3);
  ASSERT_EQ(spectrum.size(), 3u);
  for (const double v : spectrum) EXPECT_DOUBLE_EQ(v, 0.0);
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

TEST(Builder, SimpleAssignDataflow) {
  const verilog::Module m = verilog::parse_module(
      "module t (input a, input b, output y);\n  assign y = a & b;\nendmodule");
  const NetGraph g = build_netgraph(m);
  // Nodes: a, b, y, '&' op.
  EXPECT_EQ(g.node_count(), 4u);
  const auto ops = g.nodes_of_type(NodeType::Op);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(g.in_degree(ops[0]), 2u);
  EXPECT_EQ(g.out_degree(ops[0]), 1u);
}

TEST(Builder, PortTypesMapped) {
  const verilog::Module m = verilog::parse_module(
      "module t (input [3:0] a, output y);\n  reg [7:0] r;\n  wire w;\nendmodule");
  const NetGraph g = build_netgraph(m);
  EXPECT_EQ(g.nodes_of_type(NodeType::Input).size(), 1u);
  EXPECT_EQ(g.nodes_of_type(NodeType::Output).size(), 1u);
  EXPECT_EQ(g.nodes_of_type(NodeType::Reg).size(), 1u);
  EXPECT_EQ(g.nodes_of_type(NodeType::Wire).size(), 1u);
  // Widths preserved on signal nodes.
  const auto inputs = g.nodes_of_type(NodeType::Input);
  EXPECT_EQ(g.node(inputs[0]).width, 4);
}

TEST(Builder, TernaryBecomesMux) {
  const verilog::Module m = verilog::parse_module(
      "module t (input s, input a, input b, output y);\n"
      "  assign y = s ? a : b;\nendmodule");
  const NetGraph g = build_netgraph(m);
  const auto muxes = g.nodes_of_type(NodeType::Mux);
  ASSERT_EQ(muxes.size(), 1u);
  EXPECT_EQ(g.in_degree(muxes[0]), 3u);
}

TEST(Builder, ControlDependenciesFromIf) {
  const verilog::Module m = verilog::parse_module(
      "module t (input clk, input c, input d, output reg q);\n"
      "  always @(posedge clk)\n"
      "    if (c)\n      q <= d;\n"
      "endmodule");
  const NetGraph g = build_netgraph(m);
  // q receives edges from: d (data), c (control), clk (sequential skeleton).
  const auto outputs = g.nodes_of_type(NodeType::Output);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(g.in_degree(outputs[0]), 3u);
}

TEST(Builder, SequentialFeedbackSelfLoop) {
  const verilog::Module m = verilog::parse_module(
      "module t (input clk, output reg [3:0] q);\n"
      "  always @(posedge clk) q <= q + 4'd1;\nendmodule");
  const NetGraph g = build_netgraph(m);
  // q feeds the adder, which feeds q: a cycle through the op node exists.
  const auto ops = g.nodes_of_type(NodeType::Op);
  ASSERT_EQ(ops.size(), 1u);
  const auto outputs = g.nodes_of_type(NodeType::Output);
  bool q_feeds_add = false;
  for (const auto succ : g.successors(outputs[0])) {
    if (succ == ops[0]) q_feeds_add = true;
  }
  EXPECT_TRUE(q_feeds_add);
}

TEST(Builder, InstanceNodeBidirectional) {
  const verilog::Module m = verilog::parse_module(
      "module t (input x, output z);\n  leaf u0 (.a(x), .y(z));\nendmodule");
  const NetGraph g = build_netgraph(m);
  const auto instances = g.nodes_of_type(NodeType::Instance);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(g.in_degree(instances[0]), 2u);
  EXPECT_EQ(g.out_degree(instances[0]), 2u);
}

TEST(Builder, ConstantsBecomeConstNodes) {
  const verilog::Module m = verilog::parse_module(
      "module t (input [7:0] a, output y);\n  assign y = a == 8'hAB;\nendmodule");
  const NetGraph g = build_netgraph(m);
  const auto consts = g.nodes_of_type(NodeType::Const);
  ASSERT_EQ(consts.size(), 1u);
  EXPECT_EQ(g.node(consts[0]).width, 8);
}

TEST(Builder, UndeclaredIdentifierGetsImplicitWire) {
  const verilog::Module m = verilog::parse_module(
      "module t (output y);\n  assign y = mystery;\nendmodule");
  EXPECT_NO_THROW(build_netgraph(m));
}

// ---------------------------------------------------------------------------
// Features
// ---------------------------------------------------------------------------

TEST(GraphFeatures, DimensionAndNames) {
  EXPECT_EQ(graph_feature_names().size(), kGraphFeatureDim);
  std::set<std::string> unique(graph_feature_names().begin(),
                               graph_feature_names().end());
  EXPECT_EQ(unique.size(), kGraphFeatureDim);
}

TEST(GraphFeatures, EmptyGraphIsFiniteZeroish) {
  const auto f = graph_features(NetGraph{});
  ASSERT_EQ(f.size(), kGraphFeatureDim);
  for (const double v : f) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(GraphFeatures, DeterministicForSameModule) {
  util::Rng rng_a(4), rng_b(4);
  const auto src_a = data::generate_design(data::DesignFamily::Crc, "d", rng_a);
  const auto src_b = data::generate_design(data::DesignFamily::Crc, "d", rng_b);
  const auto fa = graph_features(build_netgraph(verilog::parse_module(src_a)));
  const auto fb = graph_features(build_netgraph(verilog::parse_module(src_b)));
  EXPECT_EQ(fa, fb);
}

TEST(GraphFeatures, HistogramEntriesSumToOne) {
  util::Rng rng(5);
  const auto src = data::generate_design(data::DesignFamily::Alu, "d", rng);
  const auto f = graph_features(build_netgraph(verilog::parse_module(src)));
  double type_sum = 0.0;
  for (std::size_t i = 0; i < kNodeTypeCount; ++i) type_sum += f[i];
  EXPECT_NEAR(type_sum, 1.0, 1e-9);
}

TEST(GraphFeatures, AllFamiliesProduceFiniteFeatures) {
  for (const auto family : data::all_design_families()) {
    util::Rng rng(11);
    const auto src = data::generate_design(family, "d", rng);
    const auto f = graph_features(build_netgraph(verilog::parse_module(src)));
    for (const double v : f) {
      EXPECT_TRUE(std::isfinite(v)) << data::to_string(family);
    }
  }
}

}  // namespace
}  // namespace noodle::graph
