// The lint engine's contract: every rule fires on its archetypal positive
// fixture and stays silent on the matching negative (including the decoy
// shapes the trojan heuristics must not flag), findings carry accurate
// 1-based line/column positions from the lexer, detector verdicts are
// bit-identical with lint enabled or disabled, and a warm LintWorkspace
// performs zero heap allocations per run() (counted by the global operator
// new override below; this suite is its own executable, so the override is
// scoped to it).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "core/detector.h"
#include "data/corpus.h"
#include "graph/builder.h"
#include "graph/netgraph.h"
#include "lint/lint.h"
#include "verilog/parser.h"

namespace {
std::atomic<std::size_t> g_allocation_count{0};
}

// GCC's -Wmismatched-new-delete heuristic cannot see that these replaced
// operators form a consistent malloc/free pair; the diagnostic is a false
// positive here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace noodle {
namespace {

// ---------------------------------------------------------------------------
// Fixture driver: parse one module, lower its NetGraph, lint it, and hand
// back owned findings. Fresh state per call — warmth is the allocation
// test's concern, not the rule tests'.
// ---------------------------------------------------------------------------

std::vector<lint::OwnedFinding> lint_source(const std::string& source) {
  verilog::ParserWorkspace parser;
  graph::NetGraph netgraph(parser.symbols());
  graph::BuildScratch scratch;
  lint::LintWorkspace workspace;
  const verilog::fast::Module& module = parser.parse_single(source);
  graph::build_netgraph(module, netgraph, scratch);
  std::vector<lint::OwnedFinding> out;
  for (const lint::Finding& finding :
       workspace.run(module, netgraph, *parser.symbols())) {
    out.push_back(lint::to_owned(finding, *parser.symbols()));
  }
  return out;
}

const lint::OwnedFinding* find_rule(const std::vector<lint::OwnedFinding>& findings,
                                    lint::RuleId rule, std::string_view subject = "") {
  for (const lint::OwnedFinding& finding : findings) {
    if (finding.rule != rule) continue;
    if (!subject.empty() && finding.subject != subject) continue;
    return &finding;
  }
  return nullptr;
}

bool has_rule(const std::vector<lint::OwnedFinding>& findings, lint::RuleId rule,
              std::string_view subject = "") {
  return find_rule(findings, rule, subject) != nullptr;
}

// Asserts the finding exists and sits exactly where the lexer saw it.
void expect_at(const std::vector<lint::OwnedFinding>& findings, lint::RuleId rule,
               std::string_view subject, int line, int column) {
  const lint::OwnedFinding* finding = find_rule(findings, rule, subject);
  ASSERT_NE(finding, nullptr)
      << "expected " << lint::rule_info(rule).code << " on '" << subject << "'";
  EXPECT_EQ(finding->line, line) << lint::rule_info(rule).code;
  EXPECT_EQ(finding->column, column) << lint::rule_info(rule).code;
}

// ---------------------------------------------------------------------------
// Rule metadata
// ---------------------------------------------------------------------------

TEST(LintRuleInfo, CatalogIsStable) {
  // Codes are part of the CLI/report surface; renumbering would break
  // downstream tooling parsing `lint=N:CODE@line` columns.
  EXPECT_STREQ(lint::rule_info(lint::RuleId::UndrivenNet).code, "W101");
  EXPECT_STREQ(lint::rule_info(lint::RuleId::MultiplyDrivenNet).code, "W102");
  EXPECT_STREQ(lint::rule_info(lint::RuleId::UnusedSignal).code, "W103");
  EXPECT_STREQ(lint::rule_info(lint::RuleId::CombinationalLoop).code, "W104");
  EXPECT_STREQ(lint::rule_info(lint::RuleId::InferredLatch).code, "W105");
  EXPECT_STREQ(lint::rule_info(lint::RuleId::CaseWithoutDefault).code, "W106");
  EXPECT_STREQ(lint::rule_info(lint::RuleId::DeadAlwaysBlock).code, "W107");
  EXPECT_STREQ(lint::rule_info(lint::RuleId::RareTriggerComparator).code, "T201");
  EXPECT_STREQ(lint::rule_info(lint::RuleId::FreeRunningCounter).code, "T202");
  EXPECT_STREQ(lint::rule_info(lint::RuleId::OutputBypass).code, "T203");
  EXPECT_STREQ(lint::rule_info(lint::RuleId::OutputDisableGate).code, "T204");
  for (std::size_t i = 0; i < lint::kRuleCount; ++i) {
    const lint::RuleInfo& info = lint::rule_info(static_cast<lint::RuleId>(i));
    EXPECT_EQ(info.trojan_signature, info.code[0] == 'T');
  }
}

// ---------------------------------------------------------------------------
// Structural hygiene rules: positive fixture with exact position, then the
// matching negative.
// ---------------------------------------------------------------------------

TEST(LintHygiene, W101FlagsUndrivenNetReadByLogic) {
  const auto findings = lint_source(
      "module undriven(input wire a, output wire y);\n"
      "  wire ghost;\n"
      "  assign y = a & ghost;\n"
      "endmodule\n");
  expect_at(findings, lint::RuleId::UndrivenNet, "ghost", 2, 8);
}

TEST(LintHygiene, W101SilentOnceDriven) {
  const auto findings = lint_source(
      "module driven(input wire a, output wire y);\n"
      "  wire ghost;\n"
      "  assign ghost = ~a;\n"
      "  assign y = a & ghost;\n"
      "endmodule\n");
  EXPECT_FALSE(has_rule(findings, lint::RuleId::UndrivenNet));
}

TEST(LintHygiene, W102FlagsTwoContinuousDrivers) {
  const auto findings = lint_source(
      "module multi(input wire a, input wire b, output wire y);\n"
      "  wire n;\n"
      "  assign n = a;\n"
      "  assign n = b;\n"
      "  assign y = n;\n"
      "endmodule\n");
  expect_at(findings, lint::RuleId::MultiplyDrivenNet, "n", 2, 8);
}

TEST(LintHygiene, W102FlagsContinuousPlusProceduralDriver) {
  const auto findings = lint_source(
      "module mixed(input wire clk, input wire a, input wire b, output wire y);\n"
      "  reg n;\n"
      "  always @(posedge clk) begin\n"
      "    n <= a;\n"
      "  end\n"
      "  assign n = b;\n"
      "  assign y = n;\n"
      "endmodule\n");
  EXPECT_TRUE(has_rule(findings, lint::RuleId::MultiplyDrivenNet, "n"));
}

TEST(LintHygiene, W102SilentOnSingleDriver) {
  const auto findings = lint_source(
      "module single(input wire a, output wire y);\n"
      "  wire n;\n"
      "  assign n = a;\n"
      "  assign y = n;\n"
      "endmodule\n");
  EXPECT_FALSE(has_rule(findings, lint::RuleId::MultiplyDrivenNet));
}

TEST(LintHygiene, W103FlagsUnreadInternalSignal) {
  const auto findings = lint_source(
      "module unused(input wire a, output wire y);\n"
      "  wire spare;\n"
      "  assign y = a;\n"
      "endmodule\n");
  expect_at(findings, lint::RuleId::UnusedSignal, "spare", 2, 8);
  // Ports are exempt: the unused input does not fire W103.
  EXPECT_FALSE(has_rule(findings, lint::RuleId::UnusedSignal, "a"));
}

TEST(LintHygiene, W104FlagsCombinationalLoop) {
  const auto findings = lint_source(
      "module looped(input wire a, output wire y);\n"
      "  wire p;\n"
      "  wire q;\n"
      "  assign p = ~q;\n"
      "  assign q = p & a;\n"
      "  assign y = p;\n"
      "endmodule\n");
  // The reported node is a signal on the cycle, located at its declaration.
  expect_at(findings, lint::RuleId::CombinationalLoop, "q", 3, 8);
}

TEST(LintHygiene, W104SilentOnSequentialFeedback) {
  const auto findings = lint_source(
      "module seqfeed(input wire clk, input wire rst, output wire [7:0] y);\n"
      "  reg [7:0] acc;\n"
      "  always @(posedge clk) begin\n"
      "    if (rst) acc <= 8'h00;\n"
      "    else acc <= acc + 8'h01;\n"
      "  end\n"
      "  assign y = acc;\n"
      "endmodule\n");
  EXPECT_FALSE(has_rule(findings, lint::RuleId::CombinationalLoop));
}

TEST(LintHygiene, W105FlagsIfWithoutElseInCombBlock) {
  const auto findings = lint_source(
      "module latchy(input wire a, input wire b, output wire y);\n"
      "  reg r;\n"
      "  always @(*) begin\n"
      "    if (a) r = b;\n"
      "  end\n"
      "  assign y = r;\n"
      "endmodule\n");
  expect_at(findings, lint::RuleId::InferredLatch, "r", 3, 3);
}

TEST(LintHygiene, W105SilentWhenEveryPathAssigns) {
  const auto findings = lint_source(
      "module nolatch(input wire a, input wire b, output wire y);\n"
      "  reg r;\n"
      "  always @(*) begin\n"
      "    if (a) r = b;\n"
      "    else r = ~b;\n"
      "  end\n"
      "  assign y = r;\n"
      "endmodule\n");
  EXPECT_FALSE(has_rule(findings, lint::RuleId::InferredLatch));
}

TEST(LintHygiene, W106FlagsCaseWithoutDefault) {
  const auto findings = lint_source(
      "module nodefault(input wire a, input wire b, output wire y);\n"
      "  reg r;\n"
      "  always @(*) begin\n"
      "    case (a)\n"
      "      1'b0: r = b;\n"
      "      1'b1: r = ~b;\n"
      "    endcase\n"
      "  end\n"
      "  assign y = r;\n"
      "endmodule\n");
  expect_at(findings, lint::RuleId::CaseWithoutDefault, "", 4, 5);
}

TEST(LintHygiene, W106SilentWithDefaultItem) {
  const auto findings = lint_source(
      "module gooddefault(input wire a, input wire b, output wire y);\n"
      "  reg r;\n"
      "  always @(*) begin\n"
      "    case (a)\n"
      "      1'b0: r = b;\n"
      "      default: r = ~b;\n"
      "    endcase\n"
      "  end\n"
      "  assign y = r;\n"
      "endmodule\n");
  EXPECT_FALSE(has_rule(findings, lint::RuleId::CaseWithoutDefault));
  EXPECT_FALSE(has_rule(findings, lint::RuleId::InferredLatch));
}

TEST(LintHygiene, W107FlagsAlwaysBlockAssigningNothing) {
  const auto findings = lint_source(
      "module deadblock(input wire clk, output wire y);\n"
      "  always @(posedge clk) begin\n"
      "  end\n"
      "  assign y = clk;\n"
      "endmodule\n");
  expect_at(findings, lint::RuleId::DeadAlwaysBlock, "", 2, 3);
}

// ---------------------------------------------------------------------------
// Trojan-signature rules: the inserter's archetypes fire; the designgen
// decoy shapes (watchdog timers, error gates, plain muxes) stay silent.
// ---------------------------------------------------------------------------

TEST(LintTrojan, T201FlagsWideRareTriggerComparator) {
  const auto findings = lint_source(
      "module cheat(input wire [15:0] bus, input wire d, output wire y);\n"
      "  wire trig;\n"
      "  assign trig = bus == 16'hBEEF;\n"
      "  assign y = trig ? ~d : d;\n"
      "endmodule\n");
  expect_at(findings, lint::RuleId::RareTriggerComparator, "trig", 3, 17);
}

TEST(LintTrojan, T201SilentOnNarrowComparator) {
  // A 4-bit compare hits 1/16 of the input space — routine decode logic,
  // not a rare trigger.
  const auto findings = lint_source(
      "module narrow(input wire [3:0] n, input wire d, output wire y);\n"
      "  wire trig;\n"
      "  assign trig = n == 4'h7;\n"
      "  assign y = trig ? ~d : d;\n"
      "endmodule\n");
  EXPECT_FALSE(has_rule(findings, lint::RuleId::RareTriggerComparator));
}

TEST(LintTrojan, T202FlagsFreeRunningCounterTimeBomb) {
  const auto findings = lint_source(
      "module bomb(input wire clk, input wire rst, input wire d, output wire y);\n"
      "  reg [15:0] cnt;\n"
      "  wire fire;\n"
      "  always @(posedge clk) begin\n"
      "    if (rst) cnt <= 16'h0000;\n"
      "    else cnt <= cnt + 16'h0001;\n"
      "  end\n"
      "  assign fire = cnt == 16'hFFAA;\n"
      "  assign y = fire ? ~d : d;\n"
      "endmodule\n");
  expect_at(findings, lint::RuleId::FreeRunningCounter, "cnt", 2, 14);
  // The trigger tap itself also reads as a rare comparator.
  EXPECT_TRUE(has_rule(findings, lint::RuleId::RareTriggerComparator, "fire"));
}

TEST(LintTrojan, T202SilentOnSelfResettingWatchdog) {
  // A watchdog wraps on its own compare: the counter bounds itself, so it
  // is not the unguarded time-bomb shape.
  const auto findings = lint_source(
      "module watchdog(input wire clk, input wire d, output wire y);\n"
      "  reg [15:0] cnt;\n"
      "  always @(posedge clk) begin\n"
      "    if (cnt == 16'hFFFF) cnt <= 16'h0000;\n"
      "    else cnt <= cnt + 16'h0001;\n"
      "  end\n"
      "  assign y = cnt[0] ^ d;\n"
      "endmodule\n");
  EXPECT_FALSE(has_rule(findings, lint::RuleId::FreeRunningCounter));
}

TEST(LintTrojan, T203FlagsOutputBypassOfTamperedCarrier) {
  const auto findings = lint_source(
      "module leak(input wire sel, input wire [7:0] d, output wire [7:0] y);\n"
      "  wire [7:0] carrier;\n"
      "  wire tap;\n"
      "  assign carrier = d + 8'h01;\n"
      "  assign tap = sel;\n"
      "  assign y = tap ? carrier : (carrier ^ 8'h5A);\n"
      "endmodule\n");
  expect_at(findings, lint::RuleId::OutputBypass, "tap", 6, 10);
}

TEST(LintTrojan, T203SilentOnMuxBetweenUnrelatedNets) {
  const auto findings = lint_source(
      "module fairmux(input wire sel, input wire [7:0] a, input wire [7:0] b,\n"
      "               output wire [7:0] y);\n"
      "  wire pick;\n"
      "  assign pick = sel;\n"
      "  assign y = pick ? a : b;\n"
      "endmodule\n");
  EXPECT_FALSE(has_rule(findings, lint::RuleId::OutputBypass));
}

TEST(LintTrojan, T204FlagsConstantDisableGateWithTriggerEvidence) {
  const auto findings = lint_source(
      "module gate(input wire [15:0] bus, input wire [7:0] d, output wire [7:0] y);\n"
      "  wire kill;\n"
      "  wire [7:0] path;\n"
      "  assign kill = bus == 16'hDEAD;\n"
      "  assign path = d + 8'h02;\n"
      "  assign y = kill ? 8'h00 : path;\n"
      "endmodule\n");
  expect_at(findings, lint::RuleId::OutputDisableGate, "kill", 6, 10);
}

TEST(LintTrojan, T204SilentOnBenignErrorGate) {
  // designgen's ErrorGate decoy: the select is a plain reduction of an
  // input, with no rare-trigger evidence behind it.
  const auto findings = lint_source(
      "module errgate(input wire [7:0] din, input wire [7:0] d, output wire [7:0] y);\n"
      "  wire err;\n"
      "  wire [7:0] path;\n"
      "  assign err = &din;\n"
      "  assign path = d + 8'h02;\n"
      "  assign y = err ? 8'h00 : path;\n"
      "endmodule\n");
  EXPECT_FALSE(has_rule(findings, lint::RuleId::OutputDisableGate));
}

TEST(LintTrojan, CleanNegativesProduceNoFindingsAtAll) {
  // The negative fixtures above assert per-rule silence; the watchdog (the
  // richest decoy) must additionally produce nothing from any rule.
  const auto findings = lint_source(
      "module watchdog(input wire clk, input wire d, output wire y);\n"
      "  reg [15:0] cnt;\n"
      "  always @(posedge clk) begin\n"
      "    if (cnt == 16'hFFFF) cnt <= 16'h0000;\n"
      "    else cnt <= cnt + 16'h0001;\n"
      "  end\n"
      "  assign y = cnt[0] ^ d;\n"
      "endmodule\n");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

TEST(LintRendering, FormatFindingCarriesCodeSlugPositionAndSeverity) {
  const auto findings = lint_source(
      "module unused(input wire a, output wire y);\n"
      "  wire spare;\n"
      "  assign y = a;\n"
      "endmodule\n");
  const lint::OwnedFinding* finding =
      find_rule(findings, lint::RuleId::UnusedSignal, "spare");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(lint::format_finding(*finding),
            "W103 unused-signal unused.spare:2:8 [info] signal 'spare' is never read");
}

// ---------------------------------------------------------------------------
// Verdict bit-identity: lint is strictly additive to DetectionReport.
// ---------------------------------------------------------------------------

class LintVerdictIdentity : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::DetectorConfig config;
    config.seed = 11;
    config.gan_target_per_class = 20;
    config.gan.epochs = 10;
    config.fusion.train.epochs = 5;
    config.fusion.train.validation_fraction = 0.0;
    detector_ = new core::NoodleDetector(config);

    data::CorpusSpec spec;
    spec.design_count = 48;
    spec.infected_fraction = 0.35;
    spec.seed = 11;
    corpus_ = new std::vector<data::CircuitSample>(data::build_corpus(spec));
    detector_->fit(*corpus_);
  }

  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
    delete detector_;
    detector_ = nullptr;
  }

  static void expect_identical_verdict(const core::DetectionReport& a,
                                       const core::DetectionReport& b) {
    EXPECT_EQ(a.predicted_label, b.predicted_label);
    EXPECT_EQ(a.probability, b.probability);
    EXPECT_EQ(a.p_values, b.p_values);
    EXPECT_EQ(a.region.p, b.region.p);
    EXPECT_EQ(a.region.contains, b.region.contains);
    EXPECT_EQ(a.region.confidence, b.region.confidence);
    EXPECT_EQ(a.region.credibility, b.region.credibility);
    EXPECT_EQ(a.fusion_used, b.fusion_used);
  }

  static core::NoodleDetector* detector_;
  static std::vector<data::CircuitSample>* corpus_;
};

core::NoodleDetector* LintVerdictIdentity::detector_ = nullptr;
std::vector<data::CircuitSample>* LintVerdictIdentity::corpus_ = nullptr;

TEST_F(LintVerdictIdentity, ScanVerilogVerdictUnchangedByLint) {
  for (std::size_t i = 0; i < corpus_->size(); i += 7) {
    const std::string& source = (*corpus_)[i].verilog;
    const core::DetectionReport plain = detector_->scan_verilog(source);
    const core::DetectionReport linted = detector_->scan_verilog(source, true);
    expect_identical_verdict(plain, linted);
    EXPECT_FALSE(plain.lint_ran);
    EXPECT_TRUE(plain.lint_findings.empty());
    EXPECT_TRUE(linted.lint_ran);
  }
}

TEST_F(LintVerdictIdentity, ScanVerilogManyVerdictUnchangedByLint) {
  std::vector<std::string> sources;
  for (std::size_t i = 0; i < corpus_->size() && sources.size() < 12; i += 4) {
    sources.push_back((*corpus_)[i].verilog);
  }
  const auto plain = detector_->scan_verilog_many(sources, 2);
  const auto linted = detector_->scan_verilog_many(sources, 2, true);
  ASSERT_EQ(plain.size(), linted.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    expect_identical_verdict(plain[i], linted[i]);
    EXPECT_FALSE(plain[i].lint_ran);
    EXPECT_TRUE(linted[i].lint_ran);
  }
}

TEST_F(LintVerdictIdentity, InfectedScanSurfacesTrojanSignatureFindings) {
  // Every infected corpus sample must carry at least one T2xx finding when
  // scanned with lint on — the report-level echo of bench_lint_matrix.
  std::size_t infected_checked = 0;
  for (const data::CircuitSample& circuit : *corpus_) {
    if (!circuit.infected) continue;
    if (++infected_checked > 6) break;
    const core::DetectionReport report = detector_->scan_verilog(circuit.verilog, true);
    bool trojan_flagged = false;
    for (const lint::OwnedFinding& finding : report.lint_findings) {
      trojan_flagged |= lint::rule_info(finding.rule).trojan_signature;
    }
    EXPECT_TRUE(trojan_flagged) << "no T2xx finding for " << circuit.name;
  }
  EXPECT_GT(infected_checked, 0u);
}

// ---------------------------------------------------------------------------
// Steady-state allocation discipline
// ---------------------------------------------------------------------------

TEST(LintAllocation, WarmRunIsAllocationFree) {
  // A fixture broad enough to exercise every rule path: hygiene findings,
  // a latch, a counter, and trojan-shaped comparators and muxes.
  const std::string source =
      "module busy(input wire clk, input wire rst, input wire [15:0] bus,\n"
      "            input wire d, output wire y, output wire [7:0] out);\n"
      "  wire ghost;\n"
      "  wire spare;\n"
      "  reg r;\n"
      "  reg [15:0] cnt;\n"
      "  wire fire;\n"
      "  wire [7:0] carrier;\n"
      "  always @(*) begin\n"
      "    if (d) r = 1'b1;\n"
      "  end\n"
      "  always @(posedge clk) begin\n"
      "    if (rst) cnt <= 16'h0000;\n"
      "    else cnt <= cnt + 16'h0001;\n"
      "  end\n"
      "  assign fire = cnt == 16'hFFAA;\n"
      "  assign carrier = bus[7:0] + 8'h01;\n"
      "  assign y = fire ? ~d : (d & ghost & r);\n"
      "  assign out = fire ? carrier : (carrier ^ 8'h5A);\n"
      "endmodule\n";

  verilog::ParserWorkspace parser;
  graph::NetGraph netgraph(parser.symbols());
  graph::BuildScratch scratch;
  lint::LintWorkspace workspace;

  // Warm every grow-only buffer: parser arena, graph, and lint workspace.
  for (int warm = 0; warm < 3; ++warm) {
    const verilog::fast::Module& module = parser.parse_single(source);
    graph::build_netgraph(module, netgraph, scratch);
    workspace.run(module, netgraph, *parser.symbols());
  }

  const verilog::fast::Module& module = parser.parse_single(source);
  graph::build_netgraph(module, netgraph, scratch);
  const std::size_t before = g_allocation_count.load();
  const std::span<const lint::Finding> findings =
      workspace.run(module, netgraph, *parser.symbols());
  EXPECT_EQ(g_allocation_count.load() - before, 0u)
      << "warm LintWorkspace::run() must not touch the heap";
  bool counter_flagged = false;
  for (const lint::Finding& finding : findings) {
    counter_flagged |= finding.rule == lint::RuleId::FreeRunningCounter;
  }
  EXPECT_TRUE(counter_flagged);  // the run still found the planted shapes
}

}  // namespace
}  // namespace noodle
