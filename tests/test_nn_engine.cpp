// The batched inference engine's contract: gemm/im2col kernels and the
// workspace forward path are bit-identical to the naive scalar loops they
// replaced, batched fusion predictions are bit-identical to per-sample
// predict(), and steady-state workspace inference performs zero heap
// allocations (counted by the global operator new override below — this
// suite is its own executable, so the override is scoped to it).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <span>

#include "fusion/models.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "nn/trainer.h"

namespace {
std::atomic<std::size_t> g_allocation_count{0};
}

// GCC's -Wmismatched-new-delete heuristic cannot see that these replaced
// operators form a consistent malloc/free pair; the diagnostic is a false
// positive here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace noodle {
namespace {

using nn::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal();
  return m;
}

// ---------------------------------------------------------------------------
// gemm_bt vs naive dot products
// ---------------------------------------------------------------------------

/// The reference gemm_bt claims bit-identity with: bias-seeded, k-ascending
/// dot products.
void naive_gemm_bt(std::size_t m, std::size_t n, std::size_t k, const double* a,
                   std::size_t lda, const double* b, std::size_t ldb,
                   const double* bias, double* c, std::size_t c_row_stride,
                   std::size_t c_col_stride) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = bias ? bias[j] : 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a[i * lda + kk] * b[j * ldb + kk];
      c[i * c_row_stride + j * c_col_stride] = acc;
    }
  }
}

TEST(GemmBt, BitIdenticalToNaiveAcrossShapes) {
  // Cover the 4x4 blocked path, every edge-tile shape, and k spanning tiny
  // to past the block size.
  for (const std::size_t m : {1u, 3u, 4u, 5u, 8u, 13u}) {
    for (const std::size_t n : {1u, 2u, 4u, 7u, 16u}) {
      for (const std::size_t k : {1u, 3u, 5u, 24u}) {
        const Matrix a = random_matrix(m, k, 100 * m + 10 * n + k);
        const Matrix b = random_matrix(n, k, 200 * m + 10 * n + k);
        std::vector<double> bias(n);
        util::Rng rng(m + n + k);
        for (double& v : bias) v = rng.normal();

        std::vector<double> got(m * n, -1.0), want(m * n, -2.0);
        nn::gemm_bt(m, n, k, a.data().data(), k, b.data().data(), k, bias.data(),
                    got.data(), n, 1);
        naive_gemm_bt(m, n, k, a.data().data(), k, b.data().data(), k, bias.data(),
                      want.data(), n, 1);
        EXPECT_EQ(got, want) << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(GemmBt, StridedOutputAndNullBias) {
  // Conv1D writes C transposed via strides: row stride 1, column stride m.
  const std::size_t m = 6, n = 5, k = 7;
  const Matrix a = random_matrix(m, k, 1);
  const Matrix b = random_matrix(n, k, 2);
  std::vector<double> got(m * n, 0.0), want(m * n, 0.0);
  nn::gemm_bt(m, n, k, a.data().data(), k, b.data().data(), k, nullptr, got.data(),
              1, m);
  naive_gemm_bt(m, n, k, a.data().data(), k, b.data().data(), k, nullptr,
                want.data(), 1, m);
  EXPECT_EQ(got, want);
}

TEST(GemmBt, RespectsLeadingDimensions) {
  // A and B embedded in wider buffers: only the first k of each row count.
  const std::size_t m = 5, n = 6, k = 4, lda = 9, ldb = 11;
  const Matrix a = random_matrix(m, lda, 3);
  const Matrix b = random_matrix(n, ldb, 4);
  std::vector<double> got(m * n), want(m * n);
  nn::gemm_bt(m, n, k, a.data().data(), lda, b.data().data(), ldb, nullptr,
              got.data(), n, 1);
  naive_gemm_bt(m, n, k, a.data().data(), lda, b.data().data(), ldb, nullptr,
                want.data(), n, 1);
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------------
// im2col + layer forwards vs the original scalar loops
// ---------------------------------------------------------------------------

TEST(Im2col, LaysOutReceptiveFieldsChannelMajor) {
  // 2 channels x len 4, kernel 2: col row t must read [c0 t..t+1 | c1 t..t+1].
  const std::size_t ic = 2, len = 4, kernel = 2, olen = 3;
  std::vector<double> row = {0, 1, 2, 3, 10, 11, 12, 13};
  std::vector<double> col(olen * ic * kernel, -1.0);
  nn::im2col_1d(row.data(), ic, len, kernel, col.data());
  const std::vector<double> want = {0, 1, 10, 11, 1, 2, 11, 12, 2, 3, 12, 13};
  EXPECT_EQ(col, want);
}

/// The pre-refactor Conv1D forward: 5-deep scalar loops.
Matrix naive_conv1d_forward(const Matrix& input, const std::vector<double>& weight,
                            const std::vector<double>& bias, std::size_t in_channels,
                            std::size_t in_len, std::size_t out_channels,
                            std::size_t kernel) {
  const std::size_t olen = in_len - kernel + 1;
  Matrix out(input.rows(), out_channels * olen);
  for (std::size_t r = 0; r < input.rows(); ++r) {
    for (std::size_t oc = 0; oc < out_channels; ++oc) {
      for (std::size_t t = 0; t < olen; ++t) {
        double acc = bias[oc];
        for (std::size_t ic = 0; ic < in_channels; ++ic) {
          for (std::size_t k = 0; k < kernel; ++k) {
            acc += weight[(oc * in_channels + ic) * kernel + k] *
                   input(r, ic * in_len + t + k);
          }
        }
        out(r, oc * olen + t) = acc;
      }
    }
  }
  return out;
}

TEST(Conv1D, Im2colGemmBitIdenticalToNaiveLoops) {
  for (const std::size_t rows : {1u, 3u, 9u}) {
    util::Rng rng(17);
    nn::Conv1D layer(3, 10, 5, 4, rng);
    // Snapshot the initialized weights through the param views.
    const auto params = layer.params();
    const std::vector<double> weight(params[0].values, params[0].values + params[0].size);
    std::vector<double> bias(params[1].values, params[1].values + params[1].size);
    util::Rng bias_rng(rows);
    for (double& v : bias) v = bias_rng.normal();
    std::copy(bias.begin(), bias.end(), params[1].values);

    const Matrix input = random_matrix(rows, 30, 40 + rows);
    const Matrix got = layer.forward(input, /*train=*/false);
    const Matrix want = naive_conv1d_forward(input, weight, bias, 3, 10, 5, 4);
    EXPECT_EQ(got.data(), want.data()) << "rows=" << rows;
  }
}

/// The pre-refactor Dense forward: per-element dot products.
Matrix naive_dense_forward(const Matrix& input, const std::vector<double>& weight,
                           const std::vector<double>& bias, std::size_t in,
                           std::size_t out_features) {
  Matrix out(input.rows(), out_features);
  for (std::size_t r = 0; r < input.rows(); ++r) {
    for (std::size_t o = 0; o < out_features; ++o) {
      double acc = bias[o];
      const double* w_row = weight.data() + o * in;
      for (std::size_t i = 0; i < in; ++i) acc += w_row[i] * input(r, i);
      out(r, o) = acc;
    }
  }
  return out;
}

TEST(Dense, GemmBitIdenticalToNaiveLoops) {
  for (const std::size_t rows : {1u, 5u, 16u, 33u}) {
    util::Rng rng(23);
    nn::Dense layer(13, 7, rng);
    const auto params = layer.params();
    const std::vector<double> weight(params[0].values, params[0].values + params[0].size);
    std::vector<double> bias(params[1].values, params[1].values + params[1].size);
    util::Rng bias_rng(rows + 1);
    for (double& v : bias) v = bias_rng.normal();
    std::copy(bias.begin(), bias.end(), params[1].values);

    const Matrix input = random_matrix(rows, 13, 60 + rows);
    const Matrix got = layer.forward(input, /*train=*/false);
    const Matrix want = naive_dense_forward(input, weight, bias, 13, 7);
    EXPECT_EQ(got.data(), want.data()) << "rows=" << rows;
  }
}

// ---------------------------------------------------------------------------
// Workspace inference: bit-identity, reuse across batch sizes, zero allocs
// ---------------------------------------------------------------------------

TEST(InferenceWorkspace, BitIdenticalToAllocatingInferAcrossBatchSizes) {
  util::Rng rng(3);
  const nn::Sequential model = nn::make_cnn(40, rng);
  nn::InferenceWorkspace ws;  // deliberately not reserved: grows on demand
  // Shrinking and regrowing exercises reuse across differently-sized batches.
  for (const std::size_t rows : {64u, 1u, 16u, 5u, 64u, 37u}) {
    const Matrix input = random_matrix(rows, 40, 70 + rows);
    const Matrix want = model.infer(input);
    const Matrix& got = model.infer(input, ws);
    EXPECT_EQ(got.rows(), want.rows());
    EXPECT_EQ(got.cols(), want.cols());
    EXPECT_EQ(got.data(), want.data()) << "rows=" << rows;
  }
}

TEST(InferenceWorkspace, SteadyStateInferDoesZeroAllocations) {
  util::Rng rng(5);
  const nn::Sequential model = nn::make_cnn(40, rng);
  const Matrix big = random_matrix(64, 40, 9);
  const Matrix small = random_matrix(7, 40, 10);

  nn::InferenceWorkspace ws;
  model.reserve_workspace(ws, big.rows(), big.cols());

  // reserve_workspace pre-sizes everything: even the FIRST batch is free.
  std::size_t before = g_allocation_count.load();
  (void)model.infer(big, ws);
  EXPECT_EQ(g_allocation_count.load() - before, 0u) << "first batch after reserve";

  // Smaller batches reuse the grown buffers.
  before = g_allocation_count.load();
  (void)model.infer(small, ws);
  (void)model.infer(big, ws);
  EXPECT_EQ(g_allocation_count.load() - before, 0u) << "steady state";
}

TEST(InferenceWorkspace, RejectsInputAliasingAWorkspaceBuffer) {
  // Feeding a workspace-owned matrix back in (chaining two models through
  // one workspace) would be silently corrupted by the ping-pong reshapes.
  util::Rng rng(8);
  const nn::Sequential model = nn::make_cnn(24, rng);
  nn::InferenceWorkspace ws;
  ws.ping.reshape(2, 24);
  ws.pong.reshape(2, 24);
  EXPECT_THROW(model.infer(ws.ping, ws), std::invalid_argument);
  EXPECT_THROW(model.infer(ws.pong, ws), std::invalid_argument);
  // A second workspace makes chaining legal.
  nn::InferenceWorkspace ws2;
  const Matrix input = random_matrix(2, 24, 12);
  const Matrix& mid = model.infer(input, ws);  // (2, 1) logits, owned by ws
  nn::Sequential head;
  head.add(std::make_unique<nn::Sigmoid>());
  EXPECT_NO_THROW(head.infer(mid, ws2));
}

TEST(InferenceWorkspace, LazyGrowthReachesSteadyState) {
  util::Rng rng(6);
  const nn::Sequential model = nn::make_cnn(24, rng);
  const Matrix input = random_matrix(12, 24, 11);
  nn::InferenceWorkspace ws;
  (void)model.infer(input, ws);  // warm-up growth
  const std::size_t before = g_allocation_count.load();
  (void)model.infer(input, ws);
  EXPECT_EQ(g_allocation_count.load() - before, 0u);
}

// ---------------------------------------------------------------------------
// Batched fusion predictions vs per-sample predict()
// ---------------------------------------------------------------------------

data::FeatureDataset blob_dataset(std::size_t per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  data::FeatureDataset ds;
  for (const int label : {0, 1}) {
    for (std::size_t i = 0; i < per_class; ++i) {
      data::FeatureSample s;
      const double g = label == 1 ? 1.5 : -1.5;
      const double t = label == 1 ? -1.0 : 1.0;
      for (int d = 0; d < 10; ++d) s.graph.push_back(rng.normal(g, 1.0));
      for (int d = 0; d < 9; ++d) s.tabular.push_back(rng.normal(t, 1.0));
      s.label = label;
      ds.samples.push_back(std::move(s));
    }
  }
  util::Rng shuffle_rng(seed + 1);
  shuffle_rng.shuffle(ds.samples);
  return ds;
}

class BatchedPrediction : public ::testing::Test {
 protected:
  static fusion::FusionConfig fast_config() {
    fusion::FusionConfig config;
    config.train.epochs = 10;
    config.train.validation_fraction = 0.0;
    config.seed = 7;
    return config;
  }
  void SetUp() override {
    train_ = blob_dataset(25, 1);
    cal_ = blob_dataset(10, 2);
    test_ = blob_dataset(19, 3);  // 38 samples: several partial batch shapes
  }
  data::FeatureDataset train_, cal_, test_;
};

void expect_batch_matches_per_sample(const fusion::ClassifierArm& arm,
                                     const data::FeatureDataset& test) {
  // Several batch sizes, including 1 and a non-divisor of the test size.
  for (const std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{16},
                                  test.samples.size()}) {
    for (std::size_t start = 0; start < test.samples.size(); start += batch) {
      const std::size_t count = std::min(batch, test.samples.size() - start);
      const std::span<const data::FeatureSample> chunk(test.samples.data() + start,
                                                       count);
      const std::vector<fusion::Prediction> batched = arm.predict_batch(chunk);
      ASSERT_EQ(batched.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        const fusion::Prediction single = arm.predict(chunk[i]);
        EXPECT_EQ(batched[i].probability, single.probability)
            << arm.name() << " batch=" << batch << " i=" << i;
        EXPECT_EQ(batched[i].p_values, single.p_values)
            << arm.name() << " batch=" << batch << " i=" << i;
      }
    }
  }
}

TEST_F(BatchedPrediction, SingleModalityBitIdentical) {
  fusion::SingleModalityModel model(fusion::Modality::Graph, fast_config());
  model.fit(train_, cal_);
  expect_batch_matches_per_sample(model, test_);
}

TEST_F(BatchedPrediction, EarlyFusionBitIdentical) {
  fusion::EarlyFusionModel model(fast_config());
  model.fit(train_, cal_);
  expect_batch_matches_per_sample(model, test_);
}

TEST_F(BatchedPrediction, LateFusionBitIdentical) {
  fusion::LateFusionModel model(fast_config());
  model.fit(train_, cal_);
  expect_batch_matches_per_sample(model, test_);
  // predict_batch must also match predict_detail's fused result and leave
  // the interpretability cache untouched.
  const auto before = model.last_modality_p_values();
  const auto batched = model.predict_batch(test_.samples);
  for (std::size_t i = 0; i < test_.samples.size(); ++i) {
    const fusion::LateFusionDetail detail = model.predict_detail(test_.samples[i]);
    EXPECT_EQ(batched[i].probability, detail.fused.probability);
    EXPECT_EQ(batched[i].p_values, detail.fused.p_values);
  }
  EXPECT_EQ(model.last_modality_p_values(), before);
}

TEST_F(BatchedPrediction, EmptyBatchIsEmpty) {
  fusion::EarlyFusionModel model(fast_config());
  model.fit(train_, cal_);
  EXPECT_TRUE(model.predict_batch({}).empty());
  EXPECT_TRUE(model.predict_all(data::FeatureDataset{}).empty());
}

TEST_F(BatchedPrediction, PredictAllDelegatesToBatch) {
  fusion::SingleModalityModel model(fusion::Modality::Tabular, fast_config());
  model.fit(train_, cal_);
  const auto all = model.predict_all(test_);
  const auto batched = model.predict_batch(test_.samples);
  ASSERT_EQ(all.size(), batched.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].probability, batched[i].probability);
    EXPECT_EQ(all[i].p_values, batched[i].p_values);
  }
}

}  // namespace
}  // namespace noodle
