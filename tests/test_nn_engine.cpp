// The batched inference engine's contract: gemm/im2col kernels and the
// workspace forward path are bit-identical to the naive scalar loops they
// replaced, batched fusion predictions are bit-identical to per-sample
// predict(), and steady-state workspace inference performs zero heap
// allocations (counted by the global operator new override below — this
// suite is its own executable, so the override is scoped to it).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <span>
#include <sstream>

#include "fusion/models.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "nn/trainer.h"

namespace {
std::atomic<std::size_t> g_allocation_count{0};
}

// GCC's -Wmismatched-new-delete heuristic cannot see that these replaced
// operators form a consistent malloc/free pair; the diagnostic is a false
// positive here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocation_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace noodle {
namespace {

using nn::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal();
  return m;
}

// ---------------------------------------------------------------------------
// gemm_bt vs naive dot products
// ---------------------------------------------------------------------------

/// The reference gemm_bt claims bit-identity with: bias-seeded, k-ascending
/// dot products.
void naive_gemm_bt(std::size_t m, std::size_t n, std::size_t k, const double* a,
                   std::size_t lda, const double* b, std::size_t ldb,
                   const double* bias, double* c, std::size_t c_row_stride,
                   std::size_t c_col_stride) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = bias ? bias[j] : 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a[i * lda + kk] * b[j * ldb + kk];
      c[i * c_row_stride + j * c_col_stride] = acc;
    }
  }
}

TEST(GemmBt, BitIdenticalToNaiveAcrossShapes) {
  // Cover the 4x4 blocked path, every edge-tile shape, and k spanning tiny
  // to past the block size.
  for (const std::size_t m : {1u, 3u, 4u, 5u, 8u, 13u}) {
    for (const std::size_t n : {1u, 2u, 4u, 7u, 16u}) {
      for (const std::size_t k : {1u, 3u, 5u, 24u}) {
        const Matrix a = random_matrix(m, k, 100 * m + 10 * n + k);
        const Matrix b = random_matrix(n, k, 200 * m + 10 * n + k);
        std::vector<double> bias(n);
        util::Rng rng(m + n + k);
        for (double& v : bias) v = rng.normal();

        std::vector<double> got(m * n, -1.0), want(m * n, -2.0);
        nn::gemm_bt(m, n, k, a.data().data(), k, b.data().data(), k, bias.data(),
                    got.data(), n, 1);
        naive_gemm_bt(m, n, k, a.data().data(), k, b.data().data(), k, bias.data(),
                      want.data(), n, 1);
        EXPECT_EQ(got, want) << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(GemmBt, StridedOutputAndNullBias) {
  // Conv1D writes C transposed via strides: row stride 1, column stride m.
  const std::size_t m = 6, n = 5, k = 7;
  const Matrix a = random_matrix(m, k, 1);
  const Matrix b = random_matrix(n, k, 2);
  std::vector<double> got(m * n, 0.0), want(m * n, 0.0);
  nn::gemm_bt(m, n, k, a.data().data(), k, b.data().data(), k, nullptr, got.data(),
              1, m);
  naive_gemm_bt(m, n, k, a.data().data(), k, b.data().data(), k, nullptr,
                want.data(), 1, m);
  EXPECT_EQ(got, want);
}

TEST(GemmBt, RespectsLeadingDimensions) {
  // A and B embedded in wider buffers: only the first k of each row count.
  const std::size_t m = 5, n = 6, k = 4, lda = 9, ldb = 11;
  const Matrix a = random_matrix(m, lda, 3);
  const Matrix b = random_matrix(n, ldb, 4);
  std::vector<double> got(m * n), want(m * n);
  nn::gemm_bt(m, n, k, a.data().data(), lda, b.data().data(), ldb, nullptr,
              got.data(), n, 1);
  naive_gemm_bt(m, n, k, a.data().data(), lda, b.data().data(), ldb, nullptr,
                want.data(), n, 1);
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------------
// Kernel dispatch: every registered implementation vs the naive reference
// ---------------------------------------------------------------------------

/// Restores the dispatch target (and the env override) on scope exit, so a
/// test can never leak a pinned kernel into the rest of the suite.
class KernelGuard {
 public:
  KernelGuard() : previous_(nn::active_gemm_kernel()) {}
  ~KernelGuard() {
    unsetenv("NOODLE_GEMM_KERNEL");
    nn::set_gemm_kernel(previous_);
  }

 private:
  nn::GemmKernel previous_;
};

class GemmKernelSuite : public ::testing::TestWithParam<nn::GemmKernel> {
 protected:
  void SetUp() override {
    if (!nn::gemm_kernel_available(GetParam())) {
      GTEST_SKIP() << nn::to_string(GetParam()) << " is not available on this CPU";
    }
  }
};

/// Runs one implementation directly against naive_gemm_bt. Bit-identical
/// kernels must match exactly; Avx2Fma (fused multiply-adds) to a relative
/// 1e-12 — the documented verdict-equivalence contract.
void expect_kernel_matches_reference(nn::GemmKernel kernel, std::size_t m,
                                     std::size_t n, std::size_t k, std::size_t lda,
                                     std::size_t ldb, std::size_t c_row_stride,
                                     std::size_t c_col_stride, bool with_bias) {
  const Matrix a = random_matrix(m, lda, 1000 + 100 * m + 10 * n + k);
  const Matrix b = random_matrix(n, ldb, 2000 + 100 * m + 10 * n + k);
  std::vector<double> bias(n);
  util::Rng rng(3000 + m + n + k);
  for (double& v : bias) v = rng.normal();
  const double* bias_ptr = with_bias ? bias.data() : nullptr;

  std::vector<double> got(m * n, -1.0), want(m * n, -2.0);
  nn::gemm_bt_variant(kernel, m, n, k, a.data().data(), lda, b.data().data(), ldb,
                      bias_ptr, got.data(), c_row_stride, c_col_stride);
  naive_gemm_bt(m, n, k, a.data().data(), lda, b.data().data(), ldb, bias_ptr,
                want.data(), c_row_stride, c_col_stride);
  if (nn::gemm_kernel_bit_identical(kernel)) {
    EXPECT_EQ(got, want) << nn::to_string(kernel) << " m=" << m << " n=" << n
                         << " k=" << k;
  } else {
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-12 * (1.0 + std::abs(want[i])))
          << nn::to_string(kernel) << " m=" << m << " n=" << n << " k=" << k
          << " i=" << i;
    }
  }
}

TEST_P(GemmKernelSuite, MatchesReferenceAcrossShapeGrid) {
  // The PR 4 grid plus n ∈ {8, 9} (exact AVX2 panel width and one past it)
  // and k = 300 (past the 256-deep k-chunk, so the accumulator round-trip
  // through C is exercised).
  for (const std::size_t m : {1u, 3u, 4u, 5u, 8u, 13u}) {
    for (const std::size_t n : {1u, 2u, 4u, 7u, 8u, 9u, 16u}) {
      for (const std::size_t k : {1u, 3u, 5u, 24u, 300u}) {
        expect_kernel_matches_reference(GetParam(), m, n, k, k, k, n, 1, true);
      }
    }
  }
}

TEST_P(GemmKernelSuite, StridedOutputAndNullBias) {
  // Conv1D's transposed write: row stride 1, column stride m — the SIMD
  // kernels must fall back to lane-extracted stores here.
  expect_kernel_matches_reference(GetParam(), 6, 5, 7, 7, 7, 1, 6, false);
  expect_kernel_matches_reference(GetParam(), 9, 16, 24, 24, 24, 1, 9, false);
}

TEST_P(GemmKernelSuite, RespectsLeadingDimensions) {
  expect_kernel_matches_reference(GetParam(), 5, 9, 4, 9, 11, 9, 1, false);
}

TEST_P(GemmKernelSuite, ZeroKWritesBias) {
  expect_kernel_matches_reference(GetParam(), 4, 9, 0, 1, 1, 9, 1, true);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, GemmKernelSuite,
                         ::testing::Values(nn::GemmKernel::Scalar,
                                           nn::GemmKernel::Sse2,
                                           nn::GemmKernel::Avx2,
                                           nn::GemmKernel::Avx2Fma),
                         [](const auto& info) { return nn::to_string(info.param); });

TEST(GemmKernelDispatch, EnvOverrideForcesScalar) {
  KernelGuard guard;
  setenv("NOODLE_GEMM_KERNEL", "scalar", 1);
  nn::reset_gemm_kernel();
  EXPECT_EQ(nn::active_gemm_kernel(), nn::GemmKernel::Scalar);
}

TEST(GemmKernelDispatch, AutoSelectionIsAlwaysBitIdentical) {
  KernelGuard guard;
  // Unrecognized values fall back to auto, and auto never picks Avx2Fma.
  for (const char* value : {"auto", "bogus-kernel"}) {
    setenv("NOODLE_GEMM_KERNEL", value, 1);
    nn::reset_gemm_kernel();
    EXPECT_TRUE(nn::gemm_kernel_bit_identical(nn::active_gemm_kernel())) << value;
  }
  unsetenv("NOODLE_GEMM_KERNEL");
  nn::reset_gemm_kernel();
  EXPECT_TRUE(nn::gemm_kernel_bit_identical(nn::active_gemm_kernel()));
}

TEST(GemmKernelDispatch, SetKernelReturnsPreviousAndRoundTrips) {
  KernelGuard guard;
  const nn::GemmKernel original = nn::active_gemm_kernel();
  const nn::GemmKernel previous = nn::set_gemm_kernel(nn::GemmKernel::Scalar);
  EXPECT_EQ(previous, original);
  EXPECT_EQ(nn::active_gemm_kernel(), nn::GemmKernel::Scalar);
  EXPECT_EQ(nn::set_gemm_kernel(original), nn::GemmKernel::Scalar);
}

TEST(GemmKernelDispatch, FmaOptInIsVerdictEquivalentAtModelLevel) {
  if (!nn::gemm_kernel_available(nn::GemmKernel::Avx2Fma)) {
    GTEST_SKIP() << "avx2fma is not available on this CPU";
  }
  KernelGuard guard;
  util::Rng rng(31);
  const nn::Sequential model = nn::make_cnn(40, rng);
  const Matrix input = random_matrix(16, 40, 77);

  nn::set_gemm_kernel(nn::GemmKernel::Scalar);
  const Matrix reference = model.infer(input);
  nn::set_gemm_kernel(nn::GemmKernel::Avx2Fma);
  const Matrix fused = model.infer(input);
  ASSERT_EQ(fused.rows(), reference.rows());
  ASSERT_EQ(fused.cols(), reference.cols());
  for (std::size_t i = 0; i < fused.data().size(); ++i) {
    EXPECT_NEAR(fused.data()[i], reference.data()[i],
                1e-9 * (1.0 + std::abs(reference.data()[i])));
  }
}

// ---------------------------------------------------------------------------
// int8 weight encoding
// ---------------------------------------------------------------------------

TEST(WeightPrecisionI8, RoundTripsWithinOneHalfScalePerBuffer) {
  util::Rng rng(41);
  const nn::Sequential model = nn::make_cnn(40, rng);
  std::stringstream blob;
  model.save_weights(blob, nn::WeightPrecision::I8);

  util::Rng rng2(41);
  nn::Sequential restored = nn::make_cnn(40, rng2);
  restored.load_weights(blob);

  const auto original = model.const_params();
  const auto loaded = restored.const_params();
  ASSERT_EQ(original.size(), loaded.size());
  for (std::size_t p = 0; p < original.size(); ++p) {
    ASSERT_EQ(original[p].size, loaded[p].size);
    double peak = 0.0;
    for (std::size_t i = 0; i < original[p].size; ++i) {
      peak = std::max(peak, std::abs(original[p].values[i]));
    }
    const double scale = peak > 0.0 ? peak / 127.0 : 1.0;
    for (std::size_t i = 0; i < original[p].size; ++i) {
      EXPECT_NEAR(loaded[p].values[i], original[p].values[i], 0.5 * scale + 1e-15)
          << "buffer " << p << " index " << i;
    }
  }
}

TEST(WeightPrecisionI8, BlobIsRoughlyEightfoldSmallerThanF64) {
  util::Rng rng(43);
  const nn::Sequential model = nn::make_cnn(40, rng);
  std::stringstream f64_blob, i8_blob;
  model.save_weights(f64_blob, nn::WeightPrecision::F64);
  model.save_weights(i8_blob, nn::WeightPrecision::I8);
  // Per-buffer framing (size + scale) keeps it off exactly 8x; 0.2 leaves
  // room for the tiny-buffer overhead while still proving the compaction.
  EXPECT_LT(static_cast<double>(i8_blob.str().size()),
            0.2 * static_cast<double>(f64_blob.str().size()));
}

// ---------------------------------------------------------------------------
// im2col + layer forwards vs the original scalar loops
// ---------------------------------------------------------------------------

TEST(Im2col, LaysOutReceptiveFieldsChannelMajor) {
  // 2 channels x len 4, kernel 2: col row t must read [c0 t..t+1 | c1 t..t+1].
  const std::size_t ic = 2, len = 4, kernel = 2, olen = 3;
  std::vector<double> row = {0, 1, 2, 3, 10, 11, 12, 13};
  std::vector<double> col(olen * ic * kernel, -1.0);
  nn::im2col_1d(row.data(), ic, len, kernel, col.data());
  const std::vector<double> want = {0, 1, 10, 11, 1, 2, 11, 12, 2, 3, 12, 13};
  EXPECT_EQ(col, want);
}

/// The pre-refactor Conv1D forward: 5-deep scalar loops.
Matrix naive_conv1d_forward(const Matrix& input, const std::vector<double>& weight,
                            const std::vector<double>& bias, std::size_t in_channels,
                            std::size_t in_len, std::size_t out_channels,
                            std::size_t kernel) {
  const std::size_t olen = in_len - kernel + 1;
  Matrix out(input.rows(), out_channels * olen);
  for (std::size_t r = 0; r < input.rows(); ++r) {
    for (std::size_t oc = 0; oc < out_channels; ++oc) {
      for (std::size_t t = 0; t < olen; ++t) {
        double acc = bias[oc];
        for (std::size_t ic = 0; ic < in_channels; ++ic) {
          for (std::size_t k = 0; k < kernel; ++k) {
            acc += weight[(oc * in_channels + ic) * kernel + k] *
                   input(r, ic * in_len + t + k);
          }
        }
        out(r, oc * olen + t) = acc;
      }
    }
  }
  return out;
}

TEST(Conv1D, Im2colGemmBitIdenticalToNaiveLoops) {
  for (const std::size_t rows : {1u, 3u, 9u}) {
    util::Rng rng(17);
    nn::Conv1D layer(3, 10, 5, 4, rng);
    // Snapshot the initialized weights through the param views.
    const auto params = layer.params();
    const std::vector<double> weight(params[0].values, params[0].values + params[0].size);
    std::vector<double> bias(params[1].values, params[1].values + params[1].size);
    util::Rng bias_rng(rows);
    for (double& v : bias) v = bias_rng.normal();
    std::copy(bias.begin(), bias.end(), params[1].values);

    const Matrix input = random_matrix(rows, 30, 40 + rows);
    const Matrix got = layer.forward(input, /*train=*/false);
    const Matrix want = naive_conv1d_forward(input, weight, bias, 3, 10, 5, 4);
    EXPECT_EQ(got.data(), want.data()) << "rows=" << rows;
  }
}

/// The pre-refactor Dense forward: per-element dot products.
Matrix naive_dense_forward(const Matrix& input, const std::vector<double>& weight,
                           const std::vector<double>& bias, std::size_t in,
                           std::size_t out_features) {
  Matrix out(input.rows(), out_features);
  for (std::size_t r = 0; r < input.rows(); ++r) {
    for (std::size_t o = 0; o < out_features; ++o) {
      double acc = bias[o];
      const double* w_row = weight.data() + o * in;
      for (std::size_t i = 0; i < in; ++i) acc += w_row[i] * input(r, i);
      out(r, o) = acc;
    }
  }
  return out;
}

TEST(Dense, GemmBitIdenticalToNaiveLoops) {
  for (const std::size_t rows : {1u, 5u, 16u, 33u}) {
    util::Rng rng(23);
    nn::Dense layer(13, 7, rng);
    const auto params = layer.params();
    const std::vector<double> weight(params[0].values, params[0].values + params[0].size);
    std::vector<double> bias(params[1].values, params[1].values + params[1].size);
    util::Rng bias_rng(rows + 1);
    for (double& v : bias) v = bias_rng.normal();
    std::copy(bias.begin(), bias.end(), params[1].values);

    const Matrix input = random_matrix(rows, 13, 60 + rows);
    const Matrix got = layer.forward(input, /*train=*/false);
    const Matrix want = naive_dense_forward(input, weight, bias, 13, 7);
    EXPECT_EQ(got.data(), want.data()) << "rows=" << rows;
  }
}

// ---------------------------------------------------------------------------
// Workspace inference: bit-identity, reuse across batch sizes, zero allocs
// ---------------------------------------------------------------------------

TEST(InferenceWorkspace, BitIdenticalToAllocatingInferAcrossBatchSizes) {
  util::Rng rng(3);
  const nn::Sequential model = nn::make_cnn(40, rng);
  nn::InferenceWorkspace ws;  // deliberately not reserved: grows on demand
  // Shrinking and regrowing exercises reuse across differently-sized batches.
  for (const std::size_t rows : {64u, 1u, 16u, 5u, 64u, 37u}) {
    const Matrix input = random_matrix(rows, 40, 70 + rows);
    const Matrix want = model.infer(input);
    const Matrix& got = model.infer(input, ws);
    EXPECT_EQ(got.rows(), want.rows());
    EXPECT_EQ(got.cols(), want.cols());
    EXPECT_EQ(got.data(), want.data()) << "rows=" << rows;
  }
}

TEST(InferenceWorkspace, SteadyStateInferDoesZeroAllocations) {
  util::Rng rng(5);
  const nn::Sequential model = nn::make_cnn(40, rng);
  const Matrix big = random_matrix(64, 40, 9);
  const Matrix small = random_matrix(7, 40, 10);

  nn::InferenceWorkspace ws;
  model.reserve_workspace(ws, big.rows(), big.cols());

  // reserve_workspace pre-sizes everything: even the FIRST batch is free.
  std::size_t before = g_allocation_count.load();
  (void)model.infer(big, ws);
  EXPECT_EQ(g_allocation_count.load() - before, 0u) << "first batch after reserve";

  // Smaller batches reuse the grown buffers.
  before = g_allocation_count.load();
  (void)model.infer(small, ws);
  (void)model.infer(big, ws);
  EXPECT_EQ(g_allocation_count.load() - before, 0u) << "steady state";
}

TEST(InferenceWorkspace, RejectsInputAliasingAWorkspaceBuffer) {
  // Feeding a workspace-owned matrix back in (chaining two models through
  // one workspace) would be silently corrupted by the ping-pong reshapes.
  util::Rng rng(8);
  const nn::Sequential model = nn::make_cnn(24, rng);
  nn::InferenceWorkspace ws;
  ws.ping.reshape(2, 24);
  ws.pong.reshape(2, 24);
  EXPECT_THROW(model.infer(ws.ping, ws), std::invalid_argument);
  EXPECT_THROW(model.infer(ws.pong, ws), std::invalid_argument);
  // A second workspace makes chaining legal.
  nn::InferenceWorkspace ws2;
  const Matrix input = random_matrix(2, 24, 12);
  const Matrix& mid = model.infer(input, ws);  // (2, 1) logits, owned by ws
  nn::Sequential head;
  head.add(std::make_unique<nn::Sigmoid>());
  EXPECT_NO_THROW(head.infer(mid, ws2));
}

TEST(InferenceWorkspace, LazyGrowthReachesSteadyState) {
  util::Rng rng(6);
  const nn::Sequential model = nn::make_cnn(24, rng);
  const Matrix input = random_matrix(12, 24, 11);
  nn::InferenceWorkspace ws;
  (void)model.infer(input, ws);  // warm-up growth
  const std::size_t before = g_allocation_count.load();
  (void)model.infer(input, ws);
  EXPECT_EQ(g_allocation_count.load() - before, 0u);
}

// ---------------------------------------------------------------------------
// Batched fusion predictions vs per-sample predict()
// ---------------------------------------------------------------------------

data::FeatureDataset blob_dataset(std::size_t per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  data::FeatureDataset ds;
  for (const int label : {0, 1}) {
    for (std::size_t i = 0; i < per_class; ++i) {
      data::FeatureSample s;
      const double g = label == 1 ? 1.5 : -1.5;
      const double t = label == 1 ? -1.0 : 1.0;
      for (int d = 0; d < 10; ++d) s.graph.push_back(rng.normal(g, 1.0));
      for (int d = 0; d < 9; ++d) s.tabular.push_back(rng.normal(t, 1.0));
      s.label = label;
      ds.samples.push_back(std::move(s));
    }
  }
  util::Rng shuffle_rng(seed + 1);
  shuffle_rng.shuffle(ds.samples);
  return ds;
}

class BatchedPrediction : public ::testing::Test {
 protected:
  static fusion::FusionConfig fast_config() {
    fusion::FusionConfig config;
    config.train.epochs = 10;
    config.train.validation_fraction = 0.0;
    config.seed = 7;
    return config;
  }
  void SetUp() override {
    train_ = blob_dataset(25, 1);
    cal_ = blob_dataset(10, 2);
    test_ = blob_dataset(19, 3);  // 38 samples: several partial batch shapes
  }
  data::FeatureDataset train_, cal_, test_;
};

void expect_batch_matches_per_sample(const fusion::ClassifierArm& arm,
                                     const data::FeatureDataset& test) {
  // Several batch sizes, including 1 and a non-divisor of the test size.
  for (const std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{16},
                                  test.samples.size()}) {
    for (std::size_t start = 0; start < test.samples.size(); start += batch) {
      const std::size_t count = std::min(batch, test.samples.size() - start);
      const std::span<const data::FeatureSample> chunk(test.samples.data() + start,
                                                       count);
      const std::vector<fusion::Prediction> batched = arm.predict_batch(chunk);
      ASSERT_EQ(batched.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        const fusion::Prediction single = arm.predict(chunk[i]);
        EXPECT_EQ(batched[i].probability, single.probability)
            << arm.name() << " batch=" << batch << " i=" << i;
        EXPECT_EQ(batched[i].p_values, single.p_values)
            << arm.name() << " batch=" << batch << " i=" << i;
      }
    }
  }
}

TEST_F(BatchedPrediction, SingleModalityBitIdentical) {
  fusion::SingleModalityModel model(fusion::Modality::Graph, fast_config());
  model.fit(train_, cal_);
  expect_batch_matches_per_sample(model, test_);
}

TEST_F(BatchedPrediction, EarlyFusionBitIdentical) {
  fusion::EarlyFusionModel model(fast_config());
  model.fit(train_, cal_);
  expect_batch_matches_per_sample(model, test_);
}

TEST_F(BatchedPrediction, LateFusionBitIdentical) {
  fusion::LateFusionModel model(fast_config());
  model.fit(train_, cal_);
  expect_batch_matches_per_sample(model, test_);
  // predict_batch must also match predict_detail's fused result and leave
  // the interpretability cache untouched.
  const auto before = model.last_modality_p_values();
  const auto batched = model.predict_batch(test_.samples);
  for (std::size_t i = 0; i < test_.samples.size(); ++i) {
    const fusion::LateFusionDetail detail = model.predict_detail(test_.samples[i]);
    EXPECT_EQ(batched[i].probability, detail.fused.probability);
    EXPECT_EQ(batched[i].p_values, detail.fused.p_values);
  }
  EXPECT_EQ(model.last_modality_p_values(), before);
}

TEST_F(BatchedPrediction, EmptyBatchIsEmpty) {
  fusion::EarlyFusionModel model(fast_config());
  model.fit(train_, cal_);
  EXPECT_TRUE(model.predict_batch({}).empty());
  EXPECT_TRUE(model.predict_all(data::FeatureDataset{}).empty());
}

TEST_F(BatchedPrediction, PredictAllDelegatesToBatch) {
  fusion::SingleModalityModel model(fusion::Modality::Tabular, fast_config());
  model.fit(train_, cal_);
  const auto all = model.predict_all(test_);
  const auto batched = model.predict_batch(test_.samples);
  ASSERT_EQ(all.size(), batched.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].probability, batched[i].probability);
    EXPECT_EQ(all[i].p_values, batched[i].p_values);
  }
}

}  // namespace
}  // namespace noodle
