#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "data/designgen.h"
#include "trojan/inserter.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace noodle::sim {
namespace {

using verilog::parse_module;

TEST(Simulator, CombinationalAssign) {
  const auto m = parse_module(
      "module t (input [3:0] a, input [3:0] b, output [3:0] s, output c);\n"
      "  wire [4:0] sum;\n"
      "  assign sum = {1'd0, a} + {1'd0, b};\n"
      "  assign s = sum[3:0];\n"
      "  assign c = sum[4];\nendmodule");
  Simulator sim(m);
  sim.set_input("a", 9);
  sim.set_input("b", 10);
  sim.settle();
  EXPECT_EQ(sim.get("s"), 3u);  // 19 mod 16
  EXPECT_EQ(sim.get("c"), 1u);
}

TEST(Simulator, OperatorSemantics) {
  const auto m = parse_module(
      "module t (input [7:0] a, input [7:0] b, output [7:0] x, output y, output z,"
      " output p);\n"
      "  assign x = (a & b) | (a ^ b);\n"
      "  assign y = a >= b;\n"
      "  assign z = &a;\n"
      "  assign p = ^a;\nendmodule");
  Simulator sim(m);
  sim.set_input("a", 0xF0);
  sim.set_input("b", 0x0F);
  sim.settle();
  EXPECT_EQ(sim.get("x"), 0xFFu);  // (a&b)|(a^b) == a|b
  EXPECT_EQ(sim.get("y"), 1u);
  EXPECT_EQ(sim.get("z"), 0u);
  EXPECT_EQ(sim.get("p"), 0u);  // 4 ones -> even parity
  sim.set_input("a", 0xFF);
  sim.settle();
  EXPECT_EQ(sim.get("z"), 1u);
  EXPECT_EQ(sim.get("p"), 0u);
}

TEST(Simulator, TernaryAndSelects) {
  const auto m = parse_module(
      "module t (input s, input [7:0] v, output [3:0] hi, output b0);\n"
      "  assign hi = s ? v[7:4] : v[3:0];\n"
      "  assign b0 = v[0];\nendmodule");
  Simulator sim(m);
  sim.set_input("v", 0xA5);
  sim.set_input("s", 1);
  sim.settle();
  EXPECT_EQ(sim.get("hi"), 0xAu);
  EXPECT_EQ(sim.get("b0"), 1u);
  sim.set_input("s", 0);
  sim.settle();
  EXPECT_EQ(sim.get("hi"), 0x5u);
}

TEST(Simulator, ConcatAndReplicate) {
  const auto m = parse_module(
      "module t (input [3:0] a, output [7:0] cc, output [7:0] rep);\n"
      "  assign cc = {a, 4'h7};\n"
      "  assign rep = {8{a[0]}};\nendmodule");
  Simulator sim(m);
  sim.set_input("a", 0x9);
  sim.settle();
  EXPECT_EQ(sim.get("cc"), 0x97u);
  EXPECT_EQ(sim.get("rep"), 0xFFu);
}

TEST(Simulator, SequentialCounterCounts) {
  util::Rng rng(1);
  const auto m = parse_module(
      data::generate_design(data::DesignFamily::Counter, "dut", rng));
  Simulator sim(m);
  EXPECT_TRUE(sim.is_sequential());
  sim.pulse_reset("rst");
  EXPECT_EQ(sim.get("count"), 0u);
  sim.set_input("en", 1);
  sim.step(5);
  // Counter steps by a per-design constant; 5 cycles => 5 * step.
  const std::uint64_t after5 = sim.get("count");
  EXPECT_GT(after5, 0u);
  sim.step(5);
  EXPECT_EQ(sim.get("count"), 2 * after5);
}

TEST(Simulator, CounterLoadPath) {
  util::Rng rng(2);
  const auto m = parse_module(
      data::generate_design(data::DesignFamily::Counter, "dut", rng));
  Simulator sim(m);
  sim.pulse_reset("rst");
  sim.set_input("load", 1);
  sim.set_input("load_value", 42);
  sim.step();
  EXPECT_EQ(sim.get("count"), 42u);
}

TEST(Simulator, LfsrAdvancesDeterministically) {
  util::Rng rng(3);
  const auto m = parse_module(
      data::generate_design(data::DesignFamily::Lfsr, "dut", rng));
  Simulator a(m), b(m);
  a.pulse_reset("rst");
  b.pulse_reset("rst");
  a.set_input("en", 1);
  b.set_input("en", 1);
  a.step(20);
  b.step(20);
  EXPECT_EQ(a.get("value"), b.get("value"));
  const std::uint64_t v20 = a.get("value");
  a.step(1);
  EXPECT_NE(a.get("value"), v20);  // LFSR state changes every enabled cycle
}

TEST(Simulator, NonblockingSemanticsSwapSafe) {
  // Classic register swap: with NBA semantics both reads see pre-edge values.
  const auto m = parse_module(
      "module t (input clk, input set, output reg [3:0] x, output reg [3:0] y);\n"
      "  always @(posedge clk)\n"
      "    begin\n"
      "      if (set)\n"
      "        begin\n          x <= 4'd1;\n          y <= 4'd2;\n        end\n"
      "      else\n"
      "        begin\n          x <= y;\n          y <= x;\n        end\n"
      "    end\n"
      "endmodule");
  Simulator sim(m);
  sim.set_input("set", 1);
  sim.step();
  sim.set_input("set", 0);
  sim.step();
  EXPECT_EQ(sim.get("x"), 2u);
  EXPECT_EQ(sim.get("y"), 1u);
  sim.step();
  EXPECT_EQ(sim.get("x"), 1u);
  EXPECT_EQ(sim.get("y"), 2u);
}

TEST(Simulator, SetInputValidates) {
  const auto m = parse_module("module t (input a, output y);\n  assign y = a;\nendmodule");
  Simulator sim(m);
  EXPECT_THROW(sim.set_input("y", 1), std::invalid_argument);
  EXPECT_THROW(sim.set_input("nope", 1), std::invalid_argument);
  EXPECT_THROW(sim.get("nope"), std::out_of_range);
}

TEST(Simulator, InputsMaskedToWidth) {
  const auto m = parse_module(
      "module t (input [3:0] a, output [3:0] y);\n  assign y = a;\nendmodule");
  Simulator sim(m);
  sim.set_input("a", 0x1234);
  sim.settle();
  EXPECT_EQ(sim.get("y"), 4u);  // 0x1234 & 0xF
}

// ---------------------------------------------------------------------------
// Trojan functional validation: the property that makes a Trojan a Trojan.
// ---------------------------------------------------------------------------

struct TrojanCase {
  data::DesignFamily family;
  trojan::TriggerKind trigger;
  trojan::PayloadKind payload;
};

class TrojanFunctional : public ::testing::TestWithParam<TrojanCase> {};

TEST_P(TrojanFunctional, DormantUntilTriggered) {
  util::Rng gen_rng(11);
  const std::string source =
      data::generate_design(GetParam().family, "dut", gen_rng);
  const verilog::Module clean = parse_module(source);
  verilog::Module infected = clean.clone();

  trojan::TrojanConfig config;
  config.trigger = GetParam().trigger;
  config.payload = GetParam().payload;
  config.counter_width = 8;  // time bombs fire within 256 cycles
  util::Rng trojan_rng(7);
  trojan::insert_trojan(infected, config, trojan_rng);

  // Under bounded random stimulus, clean and infected outputs agree on the
  // overwhelming majority of cycles (cheat codes can fire by chance only
  // with probability ~2^-8 per cycle; time bombs fire deterministically
  // after 2^8 cycles, beyond this horizon).
  const std::size_t horizon = GetParam().trigger == trojan::TriggerKind::TimeBomb
                                  ? 100   // below the 256-cycle bomb
                                  : 200;
  const std::size_t divergences =
      count_output_divergences(clean, infected, 5, horizon);
  EXPECT_LE(divergences, horizon / 20) << "Trojan is not dormant";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TrojanFunctional,
    ::testing::Values(
        TrojanCase{data::DesignFamily::Counter, trojan::TriggerKind::TimeBomb,
                   trojan::PayloadKind::Corrupt},
        TrojanCase{data::DesignFamily::Lfsr, trojan::TriggerKind::TimeBomb,
                   trojan::PayloadKind::Disable},
        TrojanCase{data::DesignFamily::Parity, trojan::TriggerKind::CheatCode,
                   trojan::PayloadKind::Corrupt},
        TrojanCase{data::DesignFamily::Alu, trojan::TriggerKind::Sequence,
                   trojan::PayloadKind::Corrupt},
        TrojanCase{data::DesignFamily::Shifter, trojan::TriggerKind::CheatCode,
                   trojan::PayloadKind::Disable}));

TEST(TrojanFunctionalTargeted, TimeBombFiresAtMagicCount) {
  util::Rng gen_rng(13);
  const std::string source =
      data::generate_design(data::DesignFamily::Counter, "dut", gen_rng);
  verilog::Module infected = parse_module(source);
  trojan::TrojanConfig config;
  config.trigger = trojan::TriggerKind::TimeBomb;
  config.payload = trojan::PayloadKind::Disable;
  config.counter_width = 8;
  util::Rng trojan_rng(9);
  const trojan::TrojanReport report = trojan::insert_trojan(infected, config, trojan_rng);

  Simulator sim(infected);
  sim.pulse_reset("rst");
  bool fired = false;
  for (int cycle = 0; cycle < 300 && !fired; ++cycle) {
    sim.step();
    if (sim.get(report.trigger_net) != 0) fired = true;
  }
  EXPECT_TRUE(fired) << "8-bit time bomb must fire within 256 cycles of reset";
}

TEST(TrojanFunctionalTargeted, DisablePayloadZeroesVictimWhenFired) {
  util::Rng gen_rng(17);
  const std::string source =
      data::generate_design(data::DesignFamily::Parity, "dut", gen_rng);
  verilog::Module infected = parse_module(source);
  trojan::TrojanConfig config;
  config.trigger = trojan::TriggerKind::TimeBomb;
  config.payload = trojan::PayloadKind::Disable;
  config.counter_width = 8;
  util::Rng trojan_rng(3);
  const trojan::TrojanReport report = trojan::insert_trojan(infected, config, trojan_rng);

  Simulator sim(infected);
  sim.pulse_reset("rst");
  sim.set_input("valid", 1);
  sim.set_input("word", 0xABCD);
  for (int cycle = 0; cycle < 300; ++cycle) {
    sim.step();
    if (sim.get(report.trigger_net) != 0) {
      EXPECT_EQ(sim.get(report.victim_output), 0u)
          << "disable payload must force the victim output to zero";
      return;
    }
  }
  FAIL() << "trigger never fired";
}

TEST(TrojanFunctionalTargeted, CleanDesignEquivalentToItself) {
  util::Rng gen_rng(19);
  const auto m = parse_module(
      data::generate_design(data::DesignFamily::Crc, "dut", gen_rng));
  EXPECT_EQ(count_output_divergences(m, m, 23, 100), 0u);
}

}  // namespace
}  // namespace noodle::sim
