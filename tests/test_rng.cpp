#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace noodle::util {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(42);
  double total = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(5);
  constexpr int kN = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalScaleShift) {
  Rng rng(6);
  constexpr int kN = 20000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::array<int, 4> counts{};
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);  // zero weight never drawn
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kN, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[3]) / kN, 0.6, 0.02);
}

TEST(Rng, CategoricalTreatsNegativeAsZero) {
  Rng rng(14);
  const std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(22);
  std::vector<int> values(50);
  for (int i = 0; i < 50; ++i) values[i] = i;
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(31);
  const auto sample = rng.sample_indices(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(32);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleIndicesThrowsWhenKExceedsN) {
  Rng rng(33);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.split();
  // The child stream must differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace noodle::util
