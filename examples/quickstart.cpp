// Quickstart: train a NoodleDetector on a synthetic Trust-Hub-style corpus
// and scan two circuits — one clean, one with a freshly planted Trojan.
//
//   ./build/example_quickstart [snapshot-file]
//
// With a snapshot argument, the detector is loaded from the file when it
// exists and saved to it after the first fit — the train-once, scan-forever
// workflow (run it twice: the second run skips training entirely).

#include <filesystem>
#include <iostream>

#include "core/detector.h"
#include "data/decoys.h"
#include "data/designgen.h"
#include "trojan/inserter.h"
#include "util/csv.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

using namespace noodle;

namespace {

void report(const std::string& label, const core::DetectionReport& r) {
  std::cout << label << "\n"
            << "  verdict      : "
            << (r.predicted_label == data::kTrojanInfected ? "TROJAN-INFECTED"
                                                           : "trojan-free")
            << "\n"
            << "  P(infected)  : " << util::format_fixed(r.probability, 3) << "\n"
            << "  p-values     : p(TF)=" << util::format_fixed(r.p_values[0], 3)
            << "  p(TI)=" << util::format_fixed(r.p_values[1], 3) << "\n"
            << "  region @90%  : "
            << (r.region.is_uncertain()
                    ? "{TF, TI}  -> uncertain, escalate to manual review"
                    : (r.region.is_empty()
                           ? "{} (outlier for both classes)"
                           : (r.region.contains[1] ? "{TI}" : "{TF}")))
            << "\n"
            << "  confidence   : " << util::format_fixed(r.region.confidence, 3)
            << "  credibility: " << util::format_fixed(r.region.credibility, 3)
            << "\n"
            << "  fusion used  : " << r.fusion_used << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "NOODLE quickstart: uncertainty-aware hardware Trojan detection\n\n";

  // 1. Train — or reload a previous fit. fit_default() builds a synthetic
  //    corpus (12 design families, ~30% Trojan-infected), GAN-amplifies it,
  //    trains both fusion arms, and picks the winner by calibration Brier
  //    score; a snapshot makes that cost a one-time event.
  const std::filesystem::path snapshot = argc > 1 ? argv[1] : "";
  core::DetectorConfig config;
  config.seed = 42;
  core::NoodleDetector detector(config);
  if (!snapshot.empty() && std::filesystem::exists(snapshot)) {
    std::cout << "loading fitted detector from " << snapshot.string() << "..."
              << std::flush;
    detector.load(snapshot);
  } else {
    std::cout << "training detector on the default synthetic corpus..." << std::flush;
    detector.fit_default();
    if (!snapshot.empty()) {
      detector.save(snapshot);
      std::cout << " (snapshot saved to " << snapshot.string() << ")" << std::flush;
    }
  }
  std::cout << " done (winner: " << detector.winning_fusion() << ")\n\n";

  // 2. A clean circuit: a fresh LFSR the detector has never seen, decorated
  //    with the benign watchdog/decode structure real IP carries (the same
  //    background the training corpus has — see data/decoys.h).
  util::Rng rng(2024);
  verilog::Module clean = verilog::parse_module(
      data::generate_design(data::DesignFamily::Lfsr, "prng_unit", rng));
  util::Rng decoy_rng(31);
  data::add_benign_decoys(clean, decoy_rng);
  const std::string clean_verilog = verilog::print_module(clean);
  report("[clean LFSR]", detector.scan_verilog(clean_verilog));

  // 3. The same design with a time-bomb Trojan leaking internal state.
  verilog::Module infected = clean.clone();
  trojan::TrojanConfig trojan_config;
  trojan_config.trigger = trojan::TriggerKind::TimeBomb;
  trojan_config.payload = trojan::PayloadKind::Leak;
  util::Rng trojan_rng(7);
  const trojan::TrojanReport planted =
      trojan::insert_trojan(infected, trojan_config, trojan_rng);
  std::cout << "(planted a " << trojan::to_string(planted.trigger) << "/"
            << trojan::to_string(planted.payload) << " Trojan on output '"
            << planted.victim_output << "')\n";
  report("[infected LFSR]", detector.scan_verilog(verilog::print_module(infected)));

  return 0;
}
