// zero_day_hunt: the zero-day scenario from the paper's introduction.
// Train a detector that has NEVER seen sequence-trigger Trojans, then
// confront it with them, and compare against a detector trained on all
// trigger families. Shows both the generalization NOODLE's structural
// features buy and the gap that remains.
//
//   ./build/examples/zero_day_hunt

#include <iostream>

#include "core/detector.h"
#include "data/corpus.h"
#include "util/csv.h"

using namespace noodle;

namespace {

core::NoodleDetector train_detector(const std::vector<trojan::TriggerKind>& triggers,
                                    std::uint64_t seed) {
  data::CorpusSpec spec;
  spec.design_count = 120;
  spec.infected_fraction = 0.3;
  spec.seed = seed;
  spec.allowed_triggers = triggers;

  core::DetectorConfig config;
  config.seed = seed;
  core::NoodleDetector detector(config);
  detector.fit(data::build_corpus(spec));
  return detector;
}

struct Score {
  double detection_rate = 0.0;   // sensitivity on zero-day Trojans
  double false_alarm_rate = 0.0; // on clean circuits of the same batch
};

Score evaluate(const core::NoodleDetector& detector,
               const std::vector<data::CircuitSample>& batch) {
  std::size_t hits = 0, positives = 0, alarms = 0, negatives = 0;
  for (const auto& circuit : batch) {
    const auto report = detector.scan_verilog(circuit.verilog);
    const bool flagged = report.predicted_label == data::kTrojanInfected;
    if (circuit.infected) {
      ++positives;
      if (flagged) ++hits;
    } else {
      ++negatives;
      if (flagged) ++alarms;
    }
  }
  Score score;
  if (positives > 0)
    score.detection_rate = static_cast<double>(hits) / static_cast<double>(positives);
  if (negatives > 0)
    score.false_alarm_rate =
        static_cast<double>(alarms) / static_cast<double>(negatives);
  return score;
}

}  // namespace

int main() {
  std::cout << "zero-day hunt: sequence-trigger Trojans withheld from training\n\n";

  std::cout << "training detector A (never saw sequence triggers)..." << std::flush;
  const auto detector_a = train_detector(
      {trojan::TriggerKind::TimeBomb, trojan::TriggerKind::CheatCode}, 42);
  std::cout << " done\ntraining detector B (saw all trigger families)..."
            << std::flush;
  const auto detector_b = train_detector(
      {trojan::TriggerKind::TimeBomb, trojan::TriggerKind::CheatCode,
       trojan::TriggerKind::Sequence},
      42);
  std::cout << " done\n\n";

  // Attack batch: every infection is a sequence trigger (zero-day for A).
  data::CorpusSpec attack;
  attack.design_count = 120;
  attack.infected_fraction = 0.3;
  attack.seed = 4242;
  attack.allowed_triggers = {trojan::TriggerKind::Sequence};
  const auto batch = data::build_corpus(attack);

  const Score a = evaluate(detector_a, batch);
  const Score b = evaluate(detector_b, batch);

  std::cout << "attack batch: " << batch.size()
            << " circuits, all infections sequence-triggered\n\n";
  std::cout << "                      detection rate   false alarms\n";
  std::cout << "A (zero-day)          "
            << util::format_fixed(a.detection_rate, 3) << "            "
            << util::format_fixed(a.false_alarm_rate, 3) << "\n";
  std::cout << "B (in-distribution)   "
            << util::format_fixed(b.detection_rate, 3) << "            "
            << util::format_fixed(b.false_alarm_rate, 3) << "\n\n";
  std::cout << "reading: detector A still catches a large share of the unseen "
               "family — sequence triggers leave\nthe same structural residue "
               "(rare comparators, extra FSM state, output muxes) the features "
               "key on —\nbut the gap to detector B is the zero-day cost the "
               "paper's data-amplification argument targets.\n";
  return 0;
}
