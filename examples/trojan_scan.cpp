// trojan_scan: batch-scan a directory of Verilog files and print a triage
// table sorted by Trojan probability — the IP-qualification workflow the
// paper's introduction motivates.
//
//   ./build/example_trojan_scan [directory-of-.v-files] [snapshot-file]
//
// Without an argument, the example writes a demo directory of 12 circuits
// (3 of them infected) under ./scan_demo/ and scans that, so it is runnable
// out of the box. With a snapshot argument, the fitted detector is loaded
// from the file when it exists and saved after the first fit, so repeated
// triage runs skip training entirely.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/detector.h"
#include "data/corpus.h"
#include "util/csv.h"

using namespace noodle;

namespace {

std::filesystem::path make_demo_directory() {
  const std::filesystem::path dir = "scan_demo";
  std::filesystem::create_directories(dir);
  data::CorpusSpec spec;
  spec.design_count = 12;
  spec.infected_fraction = 0.25;
  spec.seed = 911;
  for (const auto& circuit : data::build_corpus(spec)) {
    std::ofstream out(dir / (circuit.name + (circuit.infected ? ".infected.v" : ".v")));
    out << circuit.verilog;
  }
  std::cout << "wrote demo circuits to " << dir.string()
            << "/ (names marked .infected.v for checking the triage)\n\n";
  return dir;
}

struct ScanRow {
  std::string file;
  core::DetectionReport report;
};

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? std::filesystem::path(argv[1]) : make_demo_directory();
  if (!std::filesystem::is_directory(dir)) {
    std::cerr << "error: " << dir.string() << " is not a directory\n";
    return 1;
  }

  const std::filesystem::path snapshot = argc > 2 ? argv[2] : "";
  core::DetectorConfig config;
  config.seed = 42;
  core::NoodleDetector detector(config);
  if (!snapshot.empty() && std::filesystem::exists(snapshot)) {
    std::cout << "loading detector snapshot " << snapshot.string() << "..." << std::flush;
    detector.load(snapshot);
  } else {
    std::cout << "training detector..." << std::flush;
    detector.fit_default();
    if (!snapshot.empty()) detector.save(snapshot);
  }
  std::cout << " done\n\n";

  std::vector<ScanRow> rows;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".v") continue;
    std::ifstream in(entry.path());
    const std::string source((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    try {
      rows.push_back({entry.path().filename().string(), detector.scan_verilog(source)});
    } catch (const std::exception& e) {
      std::cerr << "skipping " << entry.path().filename().string() << ": " << e.what()
                << "\n";
    }
  }
  if (rows.empty()) {
    std::cerr << "no .v files found in " << dir.string() << "\n";
    return 1;
  }

  std::sort(rows.begin(), rows.end(), [](const ScanRow& a, const ScanRow& b) {
    return a.report.probability > b.report.probability;
  });

  std::cout << "P(TI)   region@90%   file\n";
  std::cout << "-----   ----------   ----\n";
  for (const auto& row : rows) {
    const char* region = row.report.region.is_uncertain() ? "{TF,TI}"
                         : row.report.region.is_empty()   ? "{}"
                         : (row.report.region.contains[1] ? "{TI}  " : "{TF}  ");
    std::cout << util::format_fixed(row.report.probability, 3) << "   " << region
              << "      " << row.file << "\n";
  }
  std::cout << "\ncircuits in uncertain regions deserve manual review before "
               "tape-out; the ordering above is the review queue.\n";
  return 0;
}
