// uncertainty_triage: demonstrates the risk-aware decision-making the paper
// argues for (Sec. II-B/II-C). Instead of thresholding a probability, the
// conformal prediction regions split a batch of circuits into three queues:
//
//   ACCEPT   — region = {TF} at the chosen confidence: ship it,
//   REJECT   — region = {TI}: quarantine the IP block,
//   REVIEW   — region = {TF, TI} (or empty): the model abstains; a human
//              looks at exactly these, and validity guarantees bound how
//              often the accepted queue hides a real Trojan.
//
//   ./build/examples/uncertainty_triage [confidence=0.9]

#include <iostream>
#include <vector>

#include "core/detector.h"
#include "cp/icp.h"
#include "data/corpus.h"
#include "data/dataset.h"
#include "util/csv.h"

using namespace noodle;

int main(int argc, char** argv) {
  const double confidence = argc > 1 ? std::stod(argv[1]) : 0.9;

  std::cout << "uncertainty-aware triage at " << util::format_fixed(confidence * 100, 0)
            << "% confidence\n\ntraining detector..." << std::flush;
  core::DetectorConfig config;
  config.seed = 42;
  config.confidence_level = confidence;
  core::NoodleDetector detector(config);
  detector.fit_default();
  std::cout << " done\n";

  // A fresh batch of unseen circuits with ground truth for scoring.
  data::CorpusSpec spec;
  spec.design_count = 120;
  spec.infected_fraction = 0.3;
  spec.seed = 777;
  const auto batch = data::build_corpus(spec);

  std::size_t accept = 0, reject = 0, review = 0;
  std::size_t accept_wrong = 0, reject_wrong = 0;
  std::size_t review_infected = 0;
  for (const auto& circuit : batch) {
    const core::DetectionReport report = detector.scan_verilog(circuit.verilog);
    if (report.region.is_singleton()) {
      if (report.region.contains[1]) {
        ++reject;
        if (!circuit.infected) ++reject_wrong;
      } else {
        ++accept;
        if (circuit.infected) ++accept_wrong;
      }
    } else {
      ++review;
      if (circuit.infected) ++review_infected;
    }
  }

  const auto pct = [&batch](std::size_t n) {
    return util::format_fixed(100.0 * static_cast<double>(n) /
                                  static_cast<double>(batch.size()),
                              1) + "%";
  };
  std::cout << "\nbatch of " << batch.size() << " unseen circuits:\n";
  std::cout << "  ACCEPT (region {TF}): " << accept << " (" << pct(accept)
            << "), containing " << accept_wrong << " missed Trojans\n";
  std::cout << "  REJECT (region {TI}): " << reject << " (" << pct(reject)
            << "), containing " << reject_wrong << " false alarms\n";
  std::cout << "  REVIEW (uncertain)  : " << review << " (" << pct(review)
            << "), containing " << review_infected << " real Trojans\n";

  std::cout << "\nreading: raising the confidence level moves circuits from the "
               "automatic queues into REVIEW;\nthe conformal validity guarantee "
               "bounds the per-class error of the automatic decisions near "
            << util::format_fixed((1.0 - confidence) * 100, 0)
            << "%.\nre-run with a different confidence, e.g. "
               "./build/examples/uncertainty_triage 0.8\n";
  return 0;
}
