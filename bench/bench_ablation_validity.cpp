// Ablation A4 — conformal validity: empirical error rate of the prediction
// regions vs significance level, overall and per class. Mondrian (label-
// conditional) calibration must keep even the rare TI class's error near
// the nominal level (Sec. II-C's claim).

#include "bench_common.h"
#include "cp/icp.h"

using namespace noodle;

int main() {
  bench::banner("Ablation A4: conformal validity across significance levels");

  const core::ExperimentResult result = bench::run_one(bench::paper_config());
  const core::ArmResult& arm = result.late_fusion;

  util::CsvTable csv;
  csv.header = {"significance", "error_rate", "error_TF", "error_TI",
                "singletons", "uncertain", "empty", "avg_region_size"};
  std::cout << "alpha   err(all)  err(TF)  err(TI)  single  uncertain  empty  avg|R|\n";
  for (const double alpha : {0.05, 0.10, 0.15, 0.20, 0.30}) {
    const cp::ConformalStats stats =
        cp::evaluate_regions(arm.p_values, result.test_labels, 1.0 - alpha);
    std::cout << util::format_fixed(alpha, 2) << "    "
              << util::format_fixed(stats.error_rate(), 3) << "     "
              << util::format_fixed(stats.error_rate_for(0), 3) << "    "
              << util::format_fixed(stats.error_rate_for(1), 3) << "    "
              << stats.singletons << "      " << stats.uncertain << "         "
              << stats.empty << "      "
              << util::format_fixed(stats.average_region_size, 2) << "\n";
    csv.rows.push_back({util::format_fixed(alpha, 2),
                        util::format_fixed(stats.error_rate(), 4),
                        util::format_fixed(stats.error_rate_for(0), 4),
                        util::format_fixed(stats.error_rate_for(1), 4),
                        std::to_string(stats.singletons),
                        std::to_string(stats.uncertain),
                        std::to_string(stats.empty),
                        util::format_fixed(stats.average_region_size, 3)});
  }
  std::cout << "\nexpected: error rate tracks (stays at or below) alpha for both "
               "classes; lower alpha => more uncertain (two-label) regions.\n"
               "note: fused p-values via Fisher assume cross-modality "
               "independence, so mild deviations are expected (documented in "
               "EXPERIMENTS.md).\n";
  bench::write_table("ablation_validity", csv);
  return 0;
}
