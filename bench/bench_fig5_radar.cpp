// Fig. 5 — Radar plot of consolidated metrics for the winning model:
// discrimination (AUC, resolution, refinement loss), combined calibration +
// discrimination (Brier score, Brier skill score), then threshold metrics.
// Paper's qualitative reading: high accuracy but lower sensitivity (the
// model misses some true TI cases — false negatives on the rare class).

#include "bench_common.h"
#include "metrics/classification.h"
#include "util/ascii_plot.h"

using namespace noodle;

int main() {
  bench::banner("Fig. 5: Radar plot of consolidated metrics");

  const core::ExperimentResult result = bench::run_one(bench::paper_config());
  const core::ArmResult& arm = result.winning_arm();
  const metrics::ConsolidatedMetrics& m = arm.consolidated;

  std::cout << "model: " << arm.name << "\n\nraw metrics:\n";
  util::CsvTable csv;
  csv.header = {"metric", "raw", "radar_value"};
  const auto raw = std::vector<std::pair<std::string, double>>{
      {"AUC", m.auc},
      {"Resolution", m.resolution},
      {"Refinement loss", m.refinement_loss},
      {"Brier score", m.brier},
      {"Brier skill", m.brier_skill},
      {"Sensitivity", m.sensitivity},
      {"Specificity", m.specificity},
      {"Accuracy", m.accuracy},
  };
  const auto values = metrics::radar_values(m);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::cout << "  " << raw[i].first << ": " << util::format_fixed(raw[i].second, 4)
              << "\n";
    csv.rows.push_back({raw[i].first, util::format_fixed(raw[i].second, 4),
                        util::format_fixed(values[i], 4)});
  }

  std::cout << "\nradar axes (normalized to [0,1], larger = better):\n";
  std::cout << util::ascii_radar(metrics::radar_axis_names(), values, 40);

  std::cout << "\nshape check: accuracy > sensitivity (misses on the rare TI "
               "class, paper Fig. 5): "
            << (m.accuracy > m.sensitivity ? "OK" : "MISS") << "\n";

  bench::write_table("fig5_radar", csv);
  return 0;
}
