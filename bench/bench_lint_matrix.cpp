// Analyzer-vs-inserter evaluation matrix for the lint:: trojan-signature
// rules — the static-analysis counterpart of the detector-vs-inserter grid
// ROADMAP calls for.
//
// For every TriggerKind × PayloadKind cell it generates designs across all
// 12 families, inserts a trojan of that cell, lints the re-printed Verilog,
// and reports the fraction of infected designs any T2xx rule flags (joint
// recall) plus per-rule hit counts. False positives are measured twice:
// on the bare designgen corpus (no decoys — the headline FP rate) and on a
// decoy-enriched clean corpus built like the training set (watchdogs,
// address decoders, error gates — the adversarial rate; AddressDecode is a
// deliberate CheatCode lookalike, so this rate is nonzero by construction).
//
// Exit status: 0 when every cell's joint recall is >= 0.90, 1 otherwise —
// the acceptance gate of PR 6. Results are printed as a markdown table for
// pasting into DESIGN.md §7.

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "data/designgen.h"
#include "graph/builder.h"
#include "graph/netgraph.h"
#include "lint/lint.h"
#include "trojan/inserter.h"
#include "util/rng.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace {

using namespace noodle;

/// Lints one single-module source; returns the per-rule hit vector and
/// whether any trojan-signature rule fired.
struct LintOutcome {
  std::array<unsigned, lint::kRuleCount> by_rule{};
  bool trojan_flagged = false;
};

LintOutcome lint_source(verilog::ParserWorkspace& parser, graph::NetGraph& netgraph,
                        graph::BuildScratch& build_scratch,
                        lint::LintWorkspace& workspace, const std::string& source) {
  LintOutcome outcome;
  const verilog::fast::Module& module = parser.parse_single(source);
  graph::build_netgraph(module, netgraph, build_scratch);
  for (const lint::Finding& finding :
       workspace.run(module, netgraph, *parser.symbols())) {
    ++outcome.by_rule[static_cast<std::size_t>(finding.rule)];
    if (lint::rule_info(finding.rule).trojan_signature) outcome.trojan_flagged = true;
  }
  return outcome;
}

constexpr std::array<trojan::TriggerKind, 3> kTriggers = {
    trojan::TriggerKind::TimeBomb, trojan::TriggerKind::CheatCode,
    trojan::TriggerKind::Sequence};
constexpr std::array<trojan::PayloadKind, 3> kPayloads = {
    trojan::PayloadKind::Corrupt, trojan::PayloadKind::Leak,
    trojan::PayloadKind::Disable};

}  // namespace

int main(int argc, char** argv) {
  unsigned reps_per_family = 8;  // 12 families x 8 reps = 96 designs per cell
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") reps_per_family = 2;
  }

  verilog::ParserWorkspace parser;
  graph::NetGraph netgraph(parser.symbols());
  graph::BuildScratch build_scratch;
  lint::LintWorkspace workspace;

  auto run = [&](const std::string& source) {
    return lint_source(parser, netgraph, build_scratch, workspace, source);
  };

  // ---- infected matrix -------------------------------------------------
  std::printf("## Trojan-signature recall (joint = any T2xx rule fires)\n\n");
  std::printf("| trigger \\ payload | Corrupt | Leak | Disable |\n");
  std::printf("|---|---|---|---|\n");

  std::array<unsigned, lint::kRuleCount> infected_by_rule{};
  unsigned infected_total = 0;
  bool all_cells_pass = true;
  std::uint64_t seed = 1;

  for (const trojan::TriggerKind trigger : kTriggers) {
    std::printf("| %s |", trojan::to_string(trigger));
    for (const trojan::PayloadKind payload : kPayloads) {
      unsigned cell_total = 0;
      unsigned cell_flagged = 0;
      for (const data::DesignFamily family : data::all_design_families()) {
        for (unsigned rep = 0; rep < reps_per_family; ++rep) {
          util::Rng rng(++seed);
          const std::string clean =
              data::generate_design(family, "dut", rng);
          verilog::Module module = verilog::parse_module(clean);
          trojan::TrojanConfig config;
          config.trigger = trigger;
          config.payload = payload;
          config.counter_width = static_cast<int>(rng.uniform_int(16, 32));
          config.sequence_length = static_cast<int>(rng.uniform_int(2, 4));
          trojan::insert_trojan(module, config, rng);
          const LintOutcome outcome = run(verilog::print_module(module));
          ++cell_total;
          if (outcome.trojan_flagged) ++cell_flagged;
          for (std::size_t r = 0; r < lint::kRuleCount; ++r) {
            infected_by_rule[r] += outcome.by_rule[r];
          }
        }
      }
      infected_total += cell_total;
      const double recall =
          cell_total == 0 ? 0.0 : static_cast<double>(cell_flagged) / cell_total;
      if (recall < 0.90) all_cells_pass = false;
      std::printf(" %.1f%% (%u/%u) |", 100.0 * recall, cell_flagged, cell_total);
    }
    std::printf("\n");
  }

  std::printf("\nPer-rule hits over %u infected designs:\n", infected_total);
  for (std::size_t r = 0; r < lint::kRuleCount; ++r) {
    const lint::RuleInfo& info = lint::rule_info(static_cast<lint::RuleId>(r));
    if (!info.trojan_signature) continue;
    std::printf("  %s %-24s %u\n", info.code, info.slug, infected_by_rule[r]);
  }

  // ---- clean corpora ---------------------------------------------------
  // Headline FP rate: bare designgen output, no decoys, no lookalikes.
  unsigned bare_total = 0;
  unsigned bare_fp = 0;
  std::array<unsigned, lint::kRuleCount> bare_by_rule{};
  for (const data::DesignFamily family : data::all_design_families()) {
    for (unsigned rep = 0; rep < reps_per_family * 2; ++rep) {
      util::Rng rng(++seed);
      const LintOutcome outcome = run(data::generate_design(family, "dut", rng));
      ++bare_total;
      if (outcome.trojan_flagged) ++bare_fp;
      for (std::size_t r = 0; r < lint::kRuleCount; ++r) {
        bare_by_rule[r] += outcome.by_rule[r];
      }
    }
  }
  std::printf("\n## Clean-corpus false positives\n\n");
  std::printf("Bare designgen corpus: %u/%u designs flagged (%.1f%%)\n", bare_fp,
              bare_total, bare_total ? 100.0 * bare_fp / bare_total : 0.0);

  // Adversarial rate: the training-style clean corpus with benign decoys
  // (every design gets up to three) and trojan-lookalike debug hooks.
  data::CorpusSpec spec;
  spec.design_count = bare_total;
  spec.infected_fraction = 0.0;
  spec.seed = 7;
  unsigned decoy_total = 0;
  unsigned decoy_fp = 0;
  std::array<unsigned, lint::kRuleCount> decoy_by_rule{};
  for (const data::CircuitSample& sample : data::build_corpus(spec)) {
    const LintOutcome outcome = run(sample.verilog);
    ++decoy_total;
    if (outcome.trojan_flagged) ++decoy_fp;
    for (std::size_t r = 0; r < lint::kRuleCount; ++r) {
      decoy_by_rule[r] += outcome.by_rule[r];
    }
  }
  std::printf(
      "Decoy-enriched clean corpus (benign lookalikes included): "
      "%u/%u designs flagged (%.1f%%)\n",
      decoy_fp, decoy_total, decoy_total ? 100.0 * decoy_fp / decoy_total : 0.0);

  std::printf("\nPer-rule hits on clean corpora (bare / decoy-enriched):\n");
  for (std::size_t r = 0; r < lint::kRuleCount; ++r) {
    const lint::RuleInfo& info = lint::rule_info(static_cast<lint::RuleId>(r));
    std::printf("  %s %-24s %u / %u\n", info.code, info.slug, bare_by_rule[r],
                decoy_by_rule[r]);
  }

  std::printf("\n%s\n", all_cells_pass
                            ? "PASS: every cell's joint recall >= 90%"
                            : "FAIL: a cell's joint recall fell below 90%");
  return all_cells_pass ? 0 : 1;
}
