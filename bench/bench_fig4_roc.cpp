// Fig. 4 — ROC-AUC curve under late fusion. Paper reports AUC = 0.928;
// the shape requirement is an AUC clearly in the "performing well" band
// (~0.9), far above random guessing.

#include "bench_common.h"
#include "metrics/roc.h"
#include "util/ascii_plot.h"

using namespace noodle;

int main() {
  bench::banner("Fig. 4: ROC-AUC curve under late fusion");

  const core::ExperimentResult result = bench::run_one(bench::paper_config());
  const core::ArmResult& arm = result.late_fusion;

  const auto curve = metrics::roc_curve(arm.probabilities, result.test_labels);
  const double auc = metrics::roc_auc(arm.probabilities, result.test_labels);

  std::vector<double> fpr, tpr;
  util::CsvTable csv;
  csv.header = {"threshold", "fpr", "tpr"};
  for (const auto& point : curve) {
    fpr.push_back(point.false_positive_rate);
    tpr.push_back(point.true_positive_rate);
    csv.rows.push_back({util::format_fixed(point.threshold, 4),
                        util::format_fixed(point.false_positive_rate, 4),
                        util::format_fixed(point.true_positive_rate, 4)});
  }

  std::cout << "ROC curve (x: FPR, y: TPR; .: chance diagonal):\n";
  std::cout << util::ascii_xy_plot(fpr, tpr, 51, 17, '*', /*draw_diagonal=*/true);
  std::cout << "\nAUC (ours):  " << util::format_fixed(auc, 3) << "\n";
  std::cout << "AUC (paper): 0.928\n";
  std::cout << "shape check: well above random (0.5), below perfect: "
            << ((auc > 0.8 && auc < 1.0) ? "OK" : "MISS") << "\n";

  bench::write_table("fig4_roc", csv);
  return 0;
}
