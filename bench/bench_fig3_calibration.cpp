// Fig. 3 — Confidence calibration curve (reliability diagram) plus the
// sharpness histogram of the predicted probabilities on the test set.
// The paper shows an imperfectly calibrated model (points off the diagonal)
// due to class imbalance, over 109 test predictions.

#include "bench_common.h"
#include "metrics/calibration.h"
#include "util/ascii_plot.h"

using namespace noodle;

int main() {
  bench::banner("Fig. 3: Confidence calibration curve");

  const core::ExperimentResult result = bench::run_one(bench::paper_config());
  const core::ArmResult& arm = result.winning_arm();
  const metrics::CalibrationCurve curve =
      metrics::calibration_curve(arm.probabilities, result.test_labels, 10);

  std::cout << "model: " << arm.name << ", test predictions: " << result.test_size
            << " (paper: 109)\n\n";

  std::vector<double> xs, ys;
  util::CsvTable csv;
  csv.header = {"mean_predicted", "observed_rate", "count"};
  for (const auto& bin : curve.bins) {
    xs.push_back(bin.mean_predicted);
    ys.push_back(bin.observed_rate);
    csv.rows.push_back({util::format_fixed(bin.mean_predicted, 4),
                        util::format_fixed(bin.observed_rate, 4),
                        std::to_string(bin.count)});
  }
  std::cout << "reliability diagram (.: perfect calibration diagonal):\n";
  std::cout << util::ascii_xy_plot(xs, ys, 51, 17, '*', /*draw_diagonal=*/true);

  std::cout << "\nsharpness histogram (predicted probability, " << result.test_size
            << " samples):\n";
  std::vector<std::string> bin_labels;
  std::vector<double> bin_counts;
  for (std::size_t b = 0; b < curve.sharpness_histogram.size(); ++b) {
    bin_labels.push_back("[" + util::format_fixed(0.1 * static_cast<double>(b), 1) +
                         "," + util::format_fixed(0.1 * static_cast<double>(b + 1), 1) +
                         ")");
    bin_counts.push_back(static_cast<double>(curve.sharpness_histogram[b]));
  }
  std::cout << util::ascii_bar_chart(bin_labels, bin_counts, 40);

  std::cout << "\nexpected calibration error: "
            << util::format_fixed(curve.expected_calibration_error, 4)
            << "  max: " << util::format_fixed(curve.max_calibration_error, 4)
            << "  sharpness (variance): " << util::format_fixed(curve.sharpness, 4)
            << "\n";
  std::cout << "shape check: imperfect calibration expected on the imbalanced "
               "TI class (paper Fig. 3): "
            << (curve.expected_calibration_error > 0.01 ? "OK" : "surprisingly perfect")
            << "\n";

  bench::write_table("fig3_calibration", csv);
  util::CsvTable hist_csv;
  hist_csv.header = {"bin_low", "bin_high", "count"};
  for (std::size_t b = 0; b < curve.sharpness_histogram.size(); ++b) {
    hist_csv.rows.push_back({util::format_fixed(0.1 * static_cast<double>(b), 1),
                             util::format_fixed(0.1 * static_cast<double>(b + 1), 1),
                             std::to_string(curve.sharpness_histogram[b])});
  }
  bench::write_table("fig3_sharpness_histogram", hist_csv);
  return 0;
}
