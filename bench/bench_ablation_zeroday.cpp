// Ablation A5 — zero-day Trojans (Sec. I motivation): train on corpora
// whose infected samples never use one trigger family, then test on a
// corpus where *all* infections use the held-out family.

#include <array>

#include "bench_common.h"
#include "data/dataset.h"
#include "fusion/models.h"
#include "gan/augment.h"
#include "metrics/roc.h"
#include "util/thread_pool.h"

using namespace noodle;

namespace {

struct ZeroDayResult {
  double auc;
  double sensitivity_at_half;
};

ZeroDayResult run_holdout(trojan::TriggerKind held_out, std::uint64_t seed) {
  // Training corpus: all triggers except the held-out one.
  data::CorpusSpec train_spec;
  train_spec.design_count = 360;
  train_spec.infected_fraction = 0.3;
  train_spec.seed = seed;
  train_spec.allowed_triggers.clear();
  for (const auto kind : {trojan::TriggerKind::TimeBomb, trojan::TriggerKind::CheatCode,
                          trojan::TriggerKind::Sequence}) {
    if (kind != held_out) train_spec.allowed_triggers.push_back(kind);
  }

  // Test corpus: only the held-out trigger.
  data::CorpusSpec test_spec = train_spec;
  test_spec.design_count = 120;
  test_spec.seed = seed + 1000;
  test_spec.allowed_triggers = {held_out};

  data::FeatureDataset train_all = data::featurize_corpus(data::build_corpus(train_spec));
  const data::FeatureDataset test = data::featurize_corpus(data::build_corpus(test_spec));

  util::Rng rng(seed);
  const data::SplitIndices split =
      data::stratified_split(train_all.labels(), 0.7, 0.29, rng);
  data::FeatureDataset train = data::subset(train_all, split.train);
  const data::FeatureDataset cal = data::subset(train_all, split.cal);

  gan::GanConfig gan_config;
  gan_config.epochs = 120;
  gan_config.seed = seed + 7;
  train = gan::augment_with_gan(train, 250, gan_config);

  fusion::FusionConfig fusion_config;
  fusion_config.train.epochs = 60;
  fusion_config.train.patience = 12;
  fusion_config.seed = seed + 13;
  fusion::LateFusionModel model(fusion_config);
  model.fit(train, cal);

  std::vector<double> probs;
  for (const auto& sample : test.samples) {
    probs.push_back(model.predict(sample).probability);
  }
  const auto labels = test.labels();
  ZeroDayResult result{};
  result.auc = metrics::roc_auc(probs, labels);
  std::size_t hits = 0, positives = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) {
      ++positives;
      if (probs[i] > 0.5) ++hits;
    }
  }
  result.sensitivity_at_half =
      positives == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(positives);
  return result;
}

}  // namespace

int main() {
  bench::banner("Ablation A5: zero-day trigger family hold-out (late fusion)");

  // Each hold-out trains its own models from its own seed chain, so the
  // three of them fan across cores with bit-identical results.
  const std::array<trojan::TriggerKind, 3> kinds = {trojan::TriggerKind::TimeBomb,
                                                    trojan::TriggerKind::CheatCode,
                                                    trojan::TriggerKind::Sequence};
  std::array<ZeroDayResult, 3> results{};
  util::parallel_for(kinds.size(), bench::bench_threads(),
                     [&](std::size_t i) { results[i] = run_holdout(kinds[i], 11); });

  util::CsvTable csv;
  csv.header = {"held_out_trigger", "auc_on_unseen", "sensitivity_at_0.5"};
  std::cout << "held-out trigger   AUC on unseen family   sensitivity@0.5\n";
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const auto kind = kinds[i];
    const ZeroDayResult& result = results[i];
    const std::string name = trojan::to_string(kind);
    std::cout << name << std::string(19 - name.size(), ' ')
              << util::format_fixed(result.auc, 3) << "                  "
              << util::format_fixed(result.sensitivity_at_half, 3) << "\n";
    csv.rows.push_back({name, util::format_fixed(result.auc, 4),
                        util::format_fixed(result.sensitivity_at_half, 4)});
  }
  std::cout << "\nexpected: above-chance detection of unseen trigger families "
               "(shared structural fingerprints), below the in-distribution "
               "AUC of Fig. 4 — the zero-day gap the paper motivates.\n";
  bench::write_table("ablation_zeroday", csv);
  return 0;
}
