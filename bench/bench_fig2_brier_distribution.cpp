// Fig. 2 — Brier score distribution with mean interval, early (a) vs late
// (b) fusion. The paper shows the spread of the Brier score across runs;
// we resample the whole experiment over independent seeds/splits and render
// the distribution as box plots with the mean +/- 95% CI.

#include "bench_common.h"
#include "util/ascii_plot.h"
#include "util/stats.h"

using namespace noodle;

int main(int argc, char** argv) {
  const std::size_t runs = argc > 1 ? std::stoul(argv[1]) : 12;
  bench::banner("Fig. 2: Brier score distribution with mean interval (" +
                std::to_string(runs) + " runs)");

  std::vector<core::ExperimentConfig> configs;
  for (std::size_t run = 0; run < runs; ++run) {
    core::ExperimentConfig config = bench::paper_config();
    config.seed = run + 1;
    configs.push_back(config);
  }
  const std::vector<core::ExperimentResult> results = bench::run_sweep(configs);

  std::vector<double> graph, tabular, early, late;
  util::CsvTable csv;
  csv.header = {"seed", "graph", "tabular", "early_fusion", "late_fusion", "winner"};
  for (std::size_t run = 0; run < runs; ++run) {
    const core::ExperimentResult& result = results[run];
    graph.push_back(result.graph_only.brier);
    tabular.push_back(result.tabular_only.brier);
    early.push_back(result.early_fusion.brier);
    late.push_back(result.late_fusion.brier);
    csv.rows.push_back({std::to_string(configs[run].seed),
                        util::format_fixed(result.graph_only.brier, 4),
                        util::format_fixed(result.tabular_only.brier, 4),
                        util::format_fixed(result.early_fusion.brier, 4),
                        util::format_fixed(result.late_fusion.brier, 4),
                        result.winner});
  }
  std::cout << "\n";

  const std::vector<std::string> labels = {"(a) early fusion", "(b) late fusion",
                                           "graph only", "tabular only"};
  const std::vector<std::vector<double>> samples = {early, late, graph, tabular};
  std::cout << util::ascii_box_plot(labels, samples, 56) << "\n";

  const util::Summary se = util::summarize(early);
  const util::Summary sl = util::summarize(late);
  std::cout << "early fusion: mean " << util::format_fixed(se.mean, 4) << " +/- "
            << util::format_fixed(se.ci95_half_width, 4) << " (95% CI), paper 0.1685\n";
  std::cout << "late fusion:  mean " << util::format_fixed(sl.mean, 4) << " +/- "
            << util::format_fixed(sl.ci95_half_width, 4) << " (95% CI), paper 0.1589\n";

  std::size_t late_wins = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    if (late[i] <= early[i]) ++late_wins;
  }
  std::cout << "late fusion wins " << late_wins << "/" << runs
            << " runs (paper: neither fusion deterministically superior; "
               "Algorithm 2 picks per-run winner)\n";

  bench::write_table("fig2_brier_distribution", csv);
  return 0;
}
