// Ablation A2 — GAN amplification on/off and target-size sweep (the
// paper's small-data claim: amplifying the scarce TI class to 500 points
// enables effective multimodal training).

#include "bench_common.h"

using namespace noodle;

int main() {
  bench::banner("Ablation A2: GAN amplification");

  struct Setting {
    const char* label;
    bool use_gan;
    std::size_t target;
  };
  const Setting settings[] = {
      {"no GAN (raw corpus)", false, 0},
      {"GAN to 125/class (250)", true, 125},
      {"GAN to 250/class (500, paper)", true, 250},
      {"GAN to 400/class (800)", true, 400},
  };

  // One flat sweep over every (setting, seed) point; the parallel runner
  // hands results back in config order, so point k belongs to
  // settings[k / kSeeds] with seed (k % kSeeds) + 1.
  constexpr std::uint64_t kSeeds = 3;
  std::vector<core::ExperimentConfig> configs;
  for (const Setting& setting : settings) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      core::ExperimentConfig config = bench::paper_config();
      config.seed = seed;
      config.use_gan = setting.use_gan;
      if (setting.use_gan) config.gan_target_per_class = setting.target;
      configs.push_back(config);
    }
  }
  const std::vector<core::ExperimentResult> results = bench::run_sweep(configs);

  util::CsvTable csv;
  csv.header = {"setting", "seed", "winner_brier", "winner_auc", "winner"};
  std::cout << "setting                         mean winner Brier   mean winner AUC\n";
  std::size_t point = 0;
  for (const Setting& setting : settings) {
    double brier_sum = 0.0, auc_sum = 0.0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed, ++point) {
      const core::ExperimentResult& result = results[point];
      brier_sum += result.winning_arm().brier;
      auc_sum += result.winning_arm().consolidated.auc;
      csv.rows.push_back({setting.label, std::to_string(seed),
                          util::format_fixed(result.winning_arm().brier, 4),
                          util::format_fixed(result.winning_arm().consolidated.auc, 4),
                          result.winner});
    }
    std::cout << setting.label
              << std::string(32 - std::string(setting.label).size(), ' ')
              << util::format_fixed(brier_sum / kSeeds, 4) << "              "
              << util::format_fixed(auc_sum / kSeeds, 4) << "\n";
  }
  std::cout << "\nexpected: amplification helps the imbalanced minority class; "
               "returns diminish past the paper's 500-point setting.\n";
  bench::write_table("ablation_gan", csv);
  return 0;
}
