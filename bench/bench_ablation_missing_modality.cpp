// Ablation A3 — missing modalities: GAN/MLP imputation vs dropping
// incomplete samples (Sec. III's missing-modality handling claim).

#include "bench_common.h"

using namespace noodle;

int main() {
  bench::banner("Ablation A3: missing-modality handling");

  struct Setting {
    const char* label;
    double graph_rate;
    double tabular_rate;
    bool impute;
  };
  const Setting settings[] = {
      {"complete data (reference)", 0.0, 0.0, true},
      {"15%/10% missing, imputed", 0.15, 0.10, true},
      {"15%/10% missing, dropped", 0.15, 0.10, false},
      {"30%/20% missing, imputed", 0.30, 0.20, true},
      {"30%/20% missing, dropped", 0.30, 0.20, false},
  };

  std::vector<core::ExperimentConfig> configs;
  for (const Setting& setting : settings) {
    core::ExperimentConfig config = bench::paper_config();
    config.missing_graph_rate = setting.graph_rate;
    config.missing_tabular_rate = setting.tabular_rate;
    config.impute_missing = setting.impute;
    configs.push_back(config);
  }
  const std::vector<core::ExperimentResult> results = bench::run_sweep(configs);

  util::CsvTable csv;
  csv.header = {"setting", "winner_brier", "winner_auc", "test_size"};
  std::cout << "setting                          winner Brier   winner AUC   test n\n";
  std::size_t point = 0;
  for (const Setting& setting : settings) {
    const core::ExperimentResult& result = results[point++];
    std::cout << setting.label
              << std::string(33 - std::string(setting.label).size(), ' ')
              << util::format_fixed(result.winning_arm().brier, 4) << "         "
              << util::format_fixed(result.winning_arm().consolidated.auc, 4)
              << "       " << result.test_size << "\n";
    csv.rows.push_back({setting.label,
                        util::format_fixed(result.winning_arm().brier, 4),
                        util::format_fixed(result.winning_arm().consolidated.auc, 4),
                        std::to_string(result.test_size)});
  }
  std::cout << "\nexpected: imputation retains the full sample budget and "
               "degrades more gracefully than dropping.\n";
  bench::write_table("ablation_missing_modality", csv);
  return 0;
}
