// Table I — Brier score comparison for different modalities.
//
// Paper reference values (Trust-Hub RTL + GAN, 109 test points):
//   graph 0.1798 | tabular 0.1913 | early fusion 0.1685 | late fusion 0.1589
// Expected shape: graph < tabular; both fusions < both single modalities;
// late fusion lowest.

#include "bench_common.h"

using namespace noodle;

int main() {
  bench::banner("Table I: Brier score comparison for different modalities");

  const core::ExperimentConfig config = bench::paper_config();
  const core::ExperimentResult result = bench::run_one(config);

  struct Row {
    const char* label;
    const core::ArmResult* arm;
    double paper;
  };
  const Row rows[] = {
      {"Graph-based Data", &result.graph_only, 0.1798},
      {"Tabular-based Data", &result.tabular_only, 0.1913},
      {"NOODLE - Early Fusion (Graph + Tabular)", &result.early_fusion, 0.1685},
      {"NOODLE - Late Fusion (Graph + Tabular)", &result.late_fusion, 0.1589},
  };

  std::cout << "test set: " << result.test_size << " circuits, total corpus "
            << result.total_after_gan << " (train GAN-amplified)\n\n";
  std::cout << "Dataset                                    Brier (ours)  Brier (paper)\n";
  util::CsvTable csv;
  csv.header = {"dataset", "brier", "brier_paper"};
  for (const Row& row : rows) {
    std::cout << row.label << std::string(43 - std::string(row.label).size(), ' ')
              << util::format_fixed(row.arm->brier, 4) << "        "
              << util::format_fixed(row.paper, 4) << "\n";
    csv.rows.push_back({row.label, util::format_fixed(row.arm->brier, 4),
                        util::format_fixed(row.paper, 4)});
  }
  std::cout << "\nwinning fusion (Algorithm 2, step 8): " << result.winner << "\n";

  const bool graph_beats_tabular = result.graph_only.brier < result.tabular_only.brier;
  const bool late_beats_early = result.late_fusion.brier < result.early_fusion.brier;
  const bool fusion_wins =
      result.winning_arm().brier <
      std::min(result.graph_only.brier, result.tabular_only.brier);
  std::cout << "shape check: graph<tabular " << (graph_beats_tabular ? "OK" : "MISS")
            << " | late<early " << (late_beats_early ? "OK" : "MISS")
            << " | fusion<singles " << (fusion_wins ? "OK" : "MISS") << "\n";

  bench::write_table("table1_brier", csv);
  return 0;
}
