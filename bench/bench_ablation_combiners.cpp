// Ablation A1 — p-value combination method for late fusion (the design
// choice Algorithm 1 leaves open; cf. Balasubramanian et al.'s comparative
// study). Same corpus/seed across rows; only the combiner changes.

#include "bench_common.h"
#include "cp/combine.h"

using namespace noodle;

int main() {
  bench::banner("Ablation A1: p-value combiner for late fusion");

  std::vector<core::ExperimentConfig> configs;
  for (const auto method : cp::all_combination_methods()) {
    core::ExperimentConfig config = bench::paper_config();
    config.fusion.combiner = method;
    configs.push_back(config);
  }
  const std::vector<core::ExperimentResult> results = bench::run_sweep(configs);

  util::CsvTable csv;
  csv.header = {"combiner", "late_brier", "late_auc", "late_sensitivity"};
  std::cout << "combiner          Brier    AUC      sensitivity\n";
  std::size_t point = 0;
  for (const auto method : cp::all_combination_methods()) {
    const core::ExperimentResult& result = results[point++];
    const core::ArmResult& arm = result.late_fusion;
    const std::string name = cp::to_string(method);
    std::cout << name << std::string(18 - name.size(), ' ')
              << util::format_fixed(arm.brier, 4) << "   "
              << util::format_fixed(arm.consolidated.auc, 4) << "   "
              << util::format_fixed(arm.consolidated.sensitivity, 4) << "\n";
    csv.rows.push_back({name, util::format_fixed(arm.brier, 4),
                        util::format_fixed(arm.consolidated.auc, 4),
                        util::format_fixed(arm.consolidated.sensitivity, 4)});
  }
  std::cout << "\nexpected: Fisher/Stouffer (evidence-pooling) competitive; "
               "max most conservative (largest regions).\n";
  bench::write_table("ablation_combiners", csv);
  return 0;
}
