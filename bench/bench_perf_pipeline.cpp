// P1-P3 — throughput micro-benchmarks (google-benchmark) for the pipeline
// stages: Verilog parsing, graph/tabular feature extraction, CNN inference,
// and Mondrian ICP p-value computation — plus P4, the batch subsystem's
// scaling benchmarks: the experiment sweep runner and detector batch scans
// at 1/2/4 worker threads, and P5, the serving subsystem: snapshot
// save/load round trips and DetectionService request throughput with and
// without the verdict cache. Wall-clock (real time) is the metric that
// matters there; every thread count must produce bit-identical results, and
// the benchmark aborts if it does not.

#include <benchmark/benchmark.h>
#include <sys/socket.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <filesystem>
#include <future>
#include <thread>

#include "net/event_loop.h"
#include "net/server.h"
#include "net/socket.h"

#include "core/batch.h"
#include "core/detector.h"
#include "cp/icp.h"
#include "data/corpus.h"
#include "data/dataset.h"
#include "feat/featurize.h"
#include "feat/tabular.h"
#include "graph/builder.h"
#include "graph/features.h"
#include "lint/lint.h"
#include "nn/trainer.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "verilog/lexer.h"
#include "verilog/parser.h"

namespace {

using namespace noodle;

const std::vector<data::CircuitSample>& corpus() {
  static const auto circuits = [] {
    data::CorpusSpec spec;
    spec.design_count = 48;
    spec.infected_fraction = 0.3;
    spec.seed = 7;
    return data::build_corpus(spec);
  }();
  return circuits;
}

void BM_ParseVerilog(benchmark::State& state) {
  const auto& circuits = corpus();
  std::size_t i = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto& circuit = circuits[i++ % circuits.size()];
    benchmark::DoNotOptimize(verilog::parse_module(circuit.verilog));
    bytes += circuit.verilog.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ParseVerilog);

void BM_BuildNetGraph(benchmark::State& state) {
  std::vector<verilog::Module> modules;
  for (const auto& circuit : corpus()) {
    modules.push_back(verilog::parse_module(circuit.verilog));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_netgraph(modules[i++ % modules.size()]));
  }
}
BENCHMARK(BM_BuildNetGraph);

void BM_GraphFeatures(benchmark::State& state) {
  std::vector<graph::NetGraph> graphs;
  for (const auto& circuit : corpus()) {
    graphs.push_back(graph::build_netgraph(verilog::parse_module(circuit.verilog)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::graph_features(graphs[i++ % graphs.size()]));
  }
}
BENCHMARK(BM_GraphFeatures);

void BM_SpectralSketch(benchmark::State& state) {
  // Isolates the blocked CSR subspace-iteration sketch (PR 8) from the rest
  // of graph_features, at the production pass budget featurization uses. The
  // expected values are pinned once up front and every timed call is checked
  // against them, so a dispatch or convergence regression aborts the
  // benchmark instead of publishing a bogus number.
  std::vector<graph::NetGraph> graphs;
  std::vector<std::vector<double>> expected;
  for (const auto& circuit : corpus()) {
    graphs.push_back(graph::build_netgraph(verilog::parse_module(circuit.verilog)));
    expected.push_back(graphs.back().spectral_sketch(3));
  }
  graph::AnalysisScratch scratch;
  std::array<double, 3> sketch{};
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t at = i++ % graphs.size();
    graphs[at].spectral_sketch(sketch, graph::NetGraph::kSpectralSketchIterations,
                               scratch);
    benchmark::DoNotOptimize(sketch);
    if (!std::equal(sketch.begin(), sketch.end(), expected[at].begin())) {
      state.SkipWithError("spectral sketch deviated from the pinned values");
      break;
    }
  }
}
BENCHMARK(BM_SpectralSketch);

void BM_TabularFeatures(benchmark::State& state) {
  std::vector<verilog::Module> modules;
  for (const auto& circuit : corpus()) {
    modules.push_back(verilog::parse_module(circuit.verilog));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::tabular_features(modules[i++ % modules.size()]));
  }
}
BENCHMARK(BM_TabularFeatures);

void BM_Lex(benchmark::State& state) {
  // Zero-copy lexing into a reused token buffer (the front of every parse).
  const auto& circuits = corpus();
  std::vector<verilog::Token> tokens;
  std::size_t i = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto& circuit = circuits[i++ % circuits.size()];
    verilog::lex_into(circuit.verilog, tokens);
    benchmark::DoNotOptimize(tokens.data());
    bytes += circuit.verilog.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Lex);

/// Reference features via the classic owning pipeline, for the in-bench
/// identity checks below (the arena path must reproduce them bit for bit).
const std::vector<std::pair<std::vector<double>, std::vector<double>>>&
reference_features() {
  static const auto reference = [] {
    std::vector<std::pair<std::vector<double>, std::vector<double>>> out;
    for (const auto& circuit : corpus()) {
      const verilog::Module module = verilog::parse_module(circuit.verilog);
      out.emplace_back(graph::graph_features(graph::build_netgraph(module)),
                       feat::tabular_features(module));
    }
    return out;
  }();
  return reference;
}

void BM_Featurize(benchmark::State& state) {
  // The full front end through data::featurize (thread-local workspace
  // underneath); was BM_FullFeaturize before PR 5. Aborts on any deviation
  // from the owning reference pipeline.
  const auto& circuits = corpus();
  const auto& reference = reference_features();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t at = i++ % circuits.size();
    const data::FeatureSample sample = data::featurize(circuits[at]);
    benchmark::DoNotOptimize(sample);
    if (sample.graph != reference[at].first || sample.tabular != reference[at].second) {
      state.SkipWithError("featurize diverged from the owning reference path");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Featurize);

void BM_FeaturizeWorkspace(benchmark::State& state) {
  // Explicit workspace with reused output vectors: the zero-allocation
  // steady state (asserted in tests/test_featurize_engine.cpp).
  const auto& circuits = corpus();
  const auto& reference = reference_features();
  feat::FeaturizeWorkspace workspace;
  std::vector<double> graph_out, tabular_out;
  workspace.featurize(circuits[0].verilog, graph_out, tabular_out);  // warm-up
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t at = i++ % circuits.size();
    workspace.featurize(circuits[at].verilog, graph_out, tabular_out);
    benchmark::DoNotOptimize(graph_out.data());
    benchmark::DoNotOptimize(tabular_out.data());
    if (graph_out != reference[at].first || tabular_out != reference[at].second) {
      state.SkipWithError("workspace featurize diverged from the reference path");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FeaturizeWorkspace);

void BM_Lint(benchmark::State& state) {
  // Per-circuit cost of the static-analysis pass over the 48-circuit
  // corpus, measured on warm workspaces the way the service runs it:
  // parse + graph via FeaturizeWorkspace, then LintWorkspace::run on the
  // resident arena AST (allocation-free at steady state).
  const auto& circuits = corpus();
  feat::FeaturizeWorkspace workspace;
  lint::LintWorkspace lint_workspace;
  std::vector<double> graph_out, tabular_out;
  workspace.featurize(circuits[0].verilog, graph_out, tabular_out);  // warm-up
  std::size_t i = 0;
  std::size_t findings = 0;
  for (auto _ : state) {
    const auto& circuit = circuits[i++ % circuits.size()];
    workspace.featurize(circuit.verilog, graph_out, tabular_out);
    const auto span = lint_workspace.run(*workspace.last_module(),
                                         workspace.last_graph(),
                                         workspace.last_graph().symbols());
    findings += span.size();
    benchmark::DoNotOptimize(span.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["findings_per_circuit"] =
      benchmark::Counter(static_cast<double>(findings),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Lint);

void BM_CnnForward(benchmark::State& state) {
  util::Rng rng(3);
  nn::Sequential model = nn::make_cnn(40, rng);
  nn::Matrix batch(static_cast<std::size_t>(state.range(0)), 40);
  for (double& v : batch.data()) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(batch, false));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CnnForward)->Arg(1)->Arg(16)->Arg(128);

void BM_CnnInferWorkspace(benchmark::State& state) {
  // The allocation-free engine path: same math as BM_CnnForward (results
  // are bit-identical, asserted below), but zero heap allocations per batch
  // once the workspace is warm.
  util::Rng rng(3);
  const nn::Sequential model = nn::make_cnn(40, rng);
  nn::Matrix batch(static_cast<std::size_t>(state.range(0)), 40);
  for (double& v : batch.data()) v = rng.normal();
  nn::InferenceWorkspace ws;
  model.reserve_workspace(ws, batch.rows(), batch.cols());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.infer(batch, ws));
  }
  if (model.infer(batch, ws).data() != model.infer(batch).data()) {
    state.SkipWithError("workspace inference diverged from the allocating path");
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CnnInferWorkspace)->Arg(1)->Arg(16)->Arg(128);

void BM_CnnTrainEpoch(benchmark::State& state) {
  util::Rng rng(5);
  nn::Matrix x(128, 40);
  for (double& v : x.data()) v = rng.normal();
  std::vector<int> y;
  for (int i = 0; i < 128; ++i) y.push_back(rng.bernoulli(0.3) ? 1 : 0);
  for (auto _ : state) {
    state.PauseTiming();
    util::Rng init(7);
    nn::Sequential model = nn::make_cnn(40, init);
    nn::TrainConfig config;
    config.epochs = 1;
    config.validation_fraction = 0.0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(nn::train_binary_classifier(model, x, y, config));
  }
}
BENCHMARK(BM_CnnTrainEpoch);

void BM_IcpPValues(benchmark::State& state) {
  util::Rng rng(9);
  std::vector<double> probs;
  std::vector<int> labels;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    labels.push_back(rng.bernoulli(0.3) ? 1 : 0);
    probs.push_back(std::clamp((labels.back() ? 0.7 : 0.3) + rng.normal(0.0, 0.15),
                               0.01, 0.99));
  }
  cp::MondrianIcp icp;
  icp.calibrate(probs, labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(icp.p_values(rng.uniform()));
  }
  state.SetLabel("cal_size=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_IcpPValues)->Arg(100)->Arg(1000)->Arg(10000);

// ---------------------------------------------------------------------------
// P4 — batch subsystem scaling
// ---------------------------------------------------------------------------

core::ExperimentConfig sweep_point(std::uint64_t seed) {
  core::ExperimentConfig config;
  config.seed = seed;
  config.corpus.design_count = 72;
  config.corpus.infected_fraction = 0.35;
  config.gan_target_per_class = 40;
  config.gan.epochs = 30;
  config.fusion.train.epochs = 12;
  config.fusion.train.validation_fraction = 0.0;
  return config;
}

const std::vector<core::ExperimentConfig>& sweep_configs() {
  static const auto configs = [] {
    std::vector<core::ExperimentConfig> points;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) points.push_back(sweep_point(seed));
    return points;
  }();
  return configs;
}

/// Serial (1-thread) reference results, computed once; every parallel run
/// must reproduce these bit-for-bit.
const std::vector<core::ExperimentResult>& sweep_reference() {
  static const auto reference = [] {
    core::SweepOptions options;
    options.threads = 1;
    return core::run_experiment_sweep(sweep_configs(), options);
  }();
  return reference;
}

bool identical_results(const std::vector<core::ExperimentResult>& a,
                       const std::vector<core::ExperimentResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t arm = 0; arm < 4; ++arm) {
      const core::ArmResult& x = *a[i].arms()[arm];
      const core::ArmResult& y = *b[i].arms()[arm];
      if (x.probabilities != y.probabilities || x.p_values != y.p_values ||
          x.brier != y.brier) {
        return false;
      }
    }
    if (a[i].winner != b[i].winner) return false;
  }
  return true;
}

void BM_ExperimentSweep(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto& reference = sweep_reference();  // built outside the timed loop
  core::SweepOptions options;
  options.threads = threads;
  for (auto _ : state) {
    const auto results = core::run_experiment_sweep(sweep_configs(), options);
    benchmark::DoNotOptimize(results);
    if (!identical_results(results, reference)) {
      state.SkipWithError("sweep results diverged from the 1-thread reference");
      break;
    }
  }
  state.SetLabel("threads=" + std::to_string(threads) + " sweep_points=" +
                 std::to_string(sweep_configs().size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sweep_configs().size()));
}
BENCHMARK(BM_ExperimentSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

const core::NoodleDetector& fitted_detector() {
  static const auto detector = [] {
    core::DetectorConfig config;
    config.seed = 3;
    config.gan_target_per_class = 40;
    config.gan.epochs = 30;
    config.fusion.train.epochs = 12;
    config.fusion.train.validation_fraction = 0.0;
    core::NoodleDetector d(config);
    data::CorpusSpec spec;
    spec.design_count = 96;
    spec.infected_fraction = 0.35;
    spec.seed = 3;
    d.fit(data::build_corpus(spec));
    return d;
  }();
  return detector;
}

const std::vector<data::FeatureSample>& scan_samples() {
  static const auto samples = [] {
    std::vector<data::FeatureSample> featurized;
    for (const auto& circuit : corpus()) featurized.push_back(data::featurize(circuit));
    return featurized;
  }();
  return samples;
}

bool identical_reports(const std::vector<core::DetectionReport>& a,
                       const std::vector<core::DetectionReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].predicted_label != b[i].predicted_label ||
        a[i].probability != b[i].probability || a[i].p_values != b[i].p_values) {
      return false;
    }
  }
  return true;
}

/// Serial (1-thread) reference scans, computed once.
const std::vector<core::DetectionReport>& scan_reference() {
  static const auto reference = fitted_detector().scan_many(scan_samples(), 1);
  return reference;
}

void BM_ScanMany(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto& detector = fitted_detector();
  const auto& samples = scan_samples();
  const auto& reference = scan_reference();  // built outside the timed loop
  for (auto _ : state) {
    const auto reports = detector.scan_many(samples, threads);
    benchmark::DoNotOptimize(reports);
    if (!identical_reports(reports, reference)) {
      state.SkipWithError("scan reports diverged from the 1-thread reference");
      break;
    }
  }
  state.SetLabel("threads=" + std::to_string(threads));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_ScanMany)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// P5 — serving subsystem: snapshot persistence and service throughput
// ---------------------------------------------------------------------------

void BM_SnapshotSaveLoad(benchmark::State& state) {
  const auto precision = state.range(0) == 2   ? nn::WeightPrecision::I8
                         : state.range(0) == 1 ? nn::WeightPrecision::F32
                                               : nn::WeightPrecision::F64;
  const bool f32 = precision == nn::WeightPrecision::F32;
  const bool i8 = precision == nn::WeightPrecision::I8;
  const auto& detector = fitted_detector();
  const auto path = std::filesystem::temp_directory_path() / "noodle_bench.snap";
  const core::DetectionReport reference = detector.scan_features(scan_samples()[0]);
  std::uintmax_t snapshot_bytes = 0;
  for (auto _ : state) {
    detector.save(path, precision);
    const core::NoodleDetector loaded = core::NoodleDetector::from_snapshot(path);
    benchmark::DoNotOptimize(loaded);
    state.PauseTiming();
    snapshot_bytes = std::filesystem::file_size(path);
    const core::DetectionReport check = loaded.scan_features(scan_samples()[0]);
    // F64 round-trips bit-exactly; F32 rounds each weight, so the verdict
    // only has to stay label-identical and probability-close; I8 is coarser
    // still, so the bar is the label plus a wide probability neighborhood.
    const double probability_tol = i8 ? 0.1 : 5e-3;
    const bool diverged =
        (f32 || i8) ? check.predicted_label != reference.predicted_label ||
                          std::abs(check.probability - reference.probability) >
                              probability_tol
                    : check.probability != reference.probability ||
                          check.p_values != reference.p_values;
    if (diverged) {
      state.SkipWithError("loaded detector diverged from the fitted original");
      break;  // no ResumeTiming after SkipWithError (library precondition)
    }
    state.ResumeTiming();
  }
  std::filesystem::remove(path);
  state.SetLabel(std::string(i8 ? "i8" : f32 ? "f32" : "f64") +
                 " snapshot_bytes=" + std::to_string(snapshot_bytes));
}
BENCHMARK(BM_SnapshotSaveLoad)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// P6 — multi-model registry: resolve fast paths and atomic hot reload
// ---------------------------------------------------------------------------

void BM_RegistryResolve(benchmark::State& state) {
  const bool via_view = state.range(0) != 0;
  serve::ModelRegistry registry;
  registry.publish("prod", fitted_detector().fitted_model());
  registry.publish("canary", fitted_detector().fitted_model());
  const serve::ModelRegistry::LatestView view = registry.latest_view("prod");
  for (auto _ : state) {
    if (via_view) {
      benchmark::DoNotOptimize(view.get());  // the scan fast path: one atomic load
    } else {
      benchmark::DoNotOptimize(registry.resolve("prod"));  // name lookup + atomic load
    }
  }
  state.SetLabel(via_view ? "latest_view" : "resolve_by_name");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegistryResolve)->Arg(0)->Arg(1);

void BM_HotReload(benchmark::State& state) {
  // One reload = snapshot read + full validation + arm rebuild + atomic
  // publish — the latency floor for a zero-downtime model upgrade.
  const auto path = std::filesystem::temp_directory_path() / "noodle_bench_reload.snap";
  fitted_detector().save(path);
  const core::DetectionReport reference = fitted_detector().scan_features(scan_samples()[0]);
  serve::ModelRegistry registry;
  registry.reload_from("prod", path);
  for (auto _ : state) {
    const serve::ModelHandle handle = registry.reload_from("prod", path);
    benchmark::DoNotOptimize(handle);
    state.PauseTiming();
    registry.retire("prod", handle->version() - 1);  // keep the catalog flat
    state.ResumeTiming();
  }
  const core::DetectionReport check =
      registry.resolve("prod")->model().scan_features(scan_samples()[0]);
  if (check.probability != reference.probability ||
      check.p_values != reference.p_values) {
    state.SkipWithError("reloaded generation diverged from the fitted original");
  }
  std::filesystem::remove(path);
  state.SetLabel("live_generations=" + std::to_string(registry.size()));
}
BENCHMARK(BM_HotReload)->Unit(benchmark::kMillisecond);

void BM_ServiceThroughput(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  const auto path = std::filesystem::temp_directory_path() / "noodle_bench_svc.snap";
  fitted_detector().save(path);
  serve::ServiceConfig config;
  config.max_batch = 16;
  config.cache_capacity = cached ? 4096 : 0;
  config.workers = 2;
  serve::DetectionService service(path, config);
  std::filesystem::remove(path);

  const auto& circuits = corpus();
  const auto& reference = scan_reference();  // sequential scans of the same samples
  for (auto _ : state) {
    std::vector<std::future<core::DetectionReport>> futures;
    futures.reserve(circuits.size());
    for (const auto& circuit : circuits) futures.push_back(service.submit(circuit.verilog));
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const core::DetectionReport report = futures[i].get();
      if (report.probability != reference[i].probability ||
          report.p_values != reference[i].p_values) {
        state.SkipWithError("service verdict diverged from direct scans");
        break;
      }
    }
  }
  const serve::ServiceStats stats = service.stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(circuits.size()));
  state.SetLabel(std::string(cached ? "cache=on" : "cache=off") +
                 " hit_rate=" + std::to_string(stats.cache_hit_rate()).substr(0, 4) +
                 " avg_batch=" + std::to_string(stats.average_batch_size()).substr(0, 4));
}
BENCHMARK(BM_ServiceThroughput)->Arg(0)->Arg(1)->UseRealTime()->Unit(benchmark::kMillisecond);

// One full TCP round trip over loopback: request line in, verdict line out,
// through the epoll loop, admission control, the dispatcher hand-off, and
// the FIFO write path. After the first iteration the verdict cache is hot,
// so this measures transport + protocol overhead, not inference.

void BM_NetRoundTrip(benchmark::State& state) {
  const auto path = std::filesystem::temp_directory_path() / "noodle_bench_net.snap";
  fitted_detector().save(path);
  serve::DetectionService service(path, serve::ServiceConfig{});
  std::filesystem::remove(path);

  net::EventLoop loop;
  net::ScanServer server(loop, service, net::ServerConfig{});
  server.start();
  std::thread loop_thread([&] { loop.run(); });

  std::error_code ec;
  net::Fd client = net::connect_tcp("127.0.0.1", server.port(), ec);
  const std::string request =
      "~inline module bench_net(input a, input b, output y);"
      " assign y = a & b; endmodule\n";
  std::string acc;
  char buf[4096];
  for (auto _ : state) {
    if (!client) {
      state.SkipWithError("connect failed");
      break;
    }
    std::size_t off = 0;
    while (off < request.size()) {
      const ssize_t put = ::send(client.get(), request.data() + off,
                                 request.size() - off, MSG_NOSIGNAL);
      if (put < 0) {
        state.SkipWithError("send failed");
        break;
      }
      off += static_cast<std::size_t>(put);
    }
    while (acc.find('\n') == std::string::npos) {
      const ssize_t got = ::recv(client.get(), buf, sizeof buf, 0);
      if (got <= 0) {
        state.SkipWithError("recv failed");
        break;
      }
      acc.append(buf, static_cast<std::size_t>(got));
    }
    acc.clear();
  }
  client = net::Fd();
  loop.stop();
  loop_thread.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetRoundTrip)->UseRealTime()->Unit(benchmark::kMicrosecond);

// --- P6: observability ------------------------------------------------------
// The warm instrumentation path a request pays per stage: one histogram
// record plus a counter bump. This is the number that proves the metrics
// layer is cheap enough to leave on (tens of nanoseconds against a
// millisecond-scale scan).

void BM_MetricsRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist =
      registry.histogram("noodle_stage_duration_seconds", "bench", {{"stage", "infer"}});
  obs::Counter& counter =
      registry.counter("noodle_cache_probes_total", "bench", {{"outcome", "hit"}});
  std::uint64_t nanos = 100;
  for (auto _ : state) {
    hist.record(nanos);
    counter.inc();
    nanos = nanos * 3 % 10'000'000'000ULL;  // walk across the bucket range
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsRecord);

// The read side: merging every shard of a populated histogram into a
// Snapshot, as render_prometheus()/metrics_snapshot() do per scrape. Scrape
// cost scales with (families x buckets), not with traffic.

void BM_HistogramMerge(benchmark::State& state) {
  obs::Histogram hist;
  std::uint64_t nanos = 137;
  for (std::size_t i = 0; i < 100'000; ++i) {
    hist.record(nanos);
    nanos = nanos * 3 % 10'000'000'000ULL;
  }
  for (auto _ : state) {
    const obs::Histogram::Snapshot snap = hist.snapshot();
    benchmark::DoNotOptimize(snap.count);
    benchmark::DoNotOptimize(snap.quantile_nanos(0.99));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramMerge);

}  // namespace

BENCHMARK_MAIN();
