// P1-P3 — throughput micro-benchmarks (google-benchmark) for the pipeline
// stages: Verilog parsing, graph/tabular feature extraction, CNN inference,
// and Mondrian ICP p-value computation.

#include <benchmark/benchmark.h>

#include "cp/icp.h"
#include "data/corpus.h"
#include "data/dataset.h"
#include "feat/tabular.h"
#include "graph/builder.h"
#include "graph/features.h"
#include "nn/trainer.h"
#include "verilog/parser.h"

namespace {

using namespace noodle;

const std::vector<data::CircuitSample>& corpus() {
  static const auto circuits = [] {
    data::CorpusSpec spec;
    spec.design_count = 48;
    spec.infected_fraction = 0.3;
    spec.seed = 7;
    return data::build_corpus(spec);
  }();
  return circuits;
}

void BM_ParseVerilog(benchmark::State& state) {
  const auto& circuits = corpus();
  std::size_t i = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto& circuit = circuits[i++ % circuits.size()];
    benchmark::DoNotOptimize(verilog::parse_module(circuit.verilog));
    bytes += circuit.verilog.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ParseVerilog);

void BM_BuildNetGraph(benchmark::State& state) {
  std::vector<verilog::Module> modules;
  for (const auto& circuit : corpus()) {
    modules.push_back(verilog::parse_module(circuit.verilog));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_netgraph(modules[i++ % modules.size()]));
  }
}
BENCHMARK(BM_BuildNetGraph);

void BM_GraphFeatures(benchmark::State& state) {
  std::vector<graph::NetGraph> graphs;
  for (const auto& circuit : corpus()) {
    graphs.push_back(graph::build_netgraph(verilog::parse_module(circuit.verilog)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::graph_features(graphs[i++ % graphs.size()]));
  }
}
BENCHMARK(BM_GraphFeatures);

void BM_TabularFeatures(benchmark::State& state) {
  std::vector<verilog::Module> modules;
  for (const auto& circuit : corpus()) {
    modules.push_back(verilog::parse_module(circuit.verilog));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::tabular_features(modules[i++ % modules.size()]));
  }
}
BENCHMARK(BM_TabularFeatures);

void BM_FullFeaturize(benchmark::State& state) {
  const auto& circuits = corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::featurize(circuits[i++ % circuits.size()]));
  }
}
BENCHMARK(BM_FullFeaturize);

void BM_CnnForward(benchmark::State& state) {
  util::Rng rng(3);
  nn::Sequential model = nn::make_cnn(40, rng);
  nn::Matrix batch(static_cast<std::size_t>(state.range(0)), 40);
  for (double& v : batch.data()) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(batch, false));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CnnForward)->Arg(1)->Arg(16)->Arg(128);

void BM_CnnTrainEpoch(benchmark::State& state) {
  util::Rng rng(5);
  nn::Matrix x(128, 40);
  for (double& v : x.data()) v = rng.normal();
  std::vector<int> y;
  for (int i = 0; i < 128; ++i) y.push_back(rng.bernoulli(0.3) ? 1 : 0);
  for (auto _ : state) {
    state.PauseTiming();
    util::Rng init(7);
    nn::Sequential model = nn::make_cnn(40, init);
    nn::TrainConfig config;
    config.epochs = 1;
    config.validation_fraction = 0.0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(nn::train_binary_classifier(model, x, y, config));
  }
}
BENCHMARK(BM_CnnTrainEpoch);

void BM_IcpPValues(benchmark::State& state) {
  util::Rng rng(9);
  std::vector<double> probs;
  std::vector<int> labels;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    labels.push_back(rng.bernoulli(0.3) ? 1 : 0);
    probs.push_back(std::clamp((labels.back() ? 0.7 : 0.3) + rng.normal(0.0, 0.15),
                               0.01, 0.99));
  }
  cp::MondrianIcp icp;
  icp.calibrate(probs, labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(icp.p_values(rng.uniform()));
  }
  state.SetLabel("cal_size=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_IcpPValues)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
