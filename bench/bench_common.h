#pragma once
// Shared plumbing for the table/figure benches: each bench prints the
// paper-shaped rows/series to stdout and drops the exact numbers as CSV
// into ./bench_out/ for external plotting.
//
// Every bench that evaluates more than one ExperimentConfig goes through
// run_sweep(), which fans the points across cores via the batch subsystem
// (core/batch.h). Results are bit-identical at any thread count, so the
// parallel sweep changes nothing but the wall clock. Set
// NOODLE_BENCH_THREADS to pin the worker count (default:
// hardware_concurrency).

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/batch.h"
#include "core/experiment.h"
#include "util/csv.h"

namespace noodle::bench {

inline std::filesystem::path output_dir() {
  const std::filesystem::path dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

inline void write_table(const std::string& name, const util::CsvTable& table) {
  const auto path = output_dir() / (name + ".csv");
  util::write_csv(path, table);
  std::cout << "[csv] " << path.string() << "\n";
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// The canonical experiment configuration used by every figure bench
/// (see DESIGN.md experiment index; seed documented in ExperimentConfig).
inline core::ExperimentConfig paper_config() { return core::ExperimentConfig{}; }

/// Worker count for bench sweeps: NOODLE_BENCH_THREADS if set and positive,
/// else 0 (= hardware_concurrency inside the sweep runner).
inline std::size_t bench_threads() {
  if (const char* env = std::getenv("NOODLE_BENCH_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 0;
}

/// Runs a sweep through the parallel runner with a progress ticker.
/// Results come back in config order regardless of completion order.
inline std::vector<core::ExperimentResult> run_sweep(
    const std::vector<core::ExperimentConfig>& configs) {
  core::SweepOptions options;
  options.threads = bench_threads();
  std::size_t done = 0;
  options.on_result = [&done, &configs](std::size_t, const core::ExperimentResult&) {
    ++done;
    std::cout << "\r[sweep] " << done << "/" << configs.size() << " experiments"
              << std::flush;
    if (done == configs.size()) std::cout << "\n";
  };
  return core::run_experiment_sweep(configs, options);
}

/// Single-point convenience so one-shot benches share the sweep entry path.
inline core::ExperimentResult run_one(const core::ExperimentConfig& config) {
  core::SweepOptions options;
  options.threads = 1;
  return core::run_experiment_sweep(std::vector<core::ExperimentConfig>{config},
                                    options)
      .front();
}

}  // namespace noodle::bench
