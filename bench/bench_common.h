#pragma once
// Shared plumbing for the table/figure benches: each bench prints the
// paper-shaped rows/series to stdout and drops the exact numbers as CSV
// into ./bench_out/ for external plotting.

#include <filesystem>
#include <iostream>
#include <string>

#include "core/experiment.h"
#include "util/csv.h"

namespace noodle::bench {

inline std::filesystem::path output_dir() {
  const std::filesystem::path dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

inline void write_table(const std::string& name, const util::CsvTable& table) {
  const auto path = output_dir() / (name + ".csv");
  util::write_csv(path, table);
  std::cout << "[csv] " << path.string() << "\n";
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// The canonical experiment configuration used by every figure bench
/// (see DESIGN.md experiment index; seed documented in ExperimentConfig).
inline core::ExperimentConfig paper_config() { return core::ExperimentConfig{}; }

}  // namespace noodle::bench
