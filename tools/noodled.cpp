// noodled — the detection daemon: load one or more detector snapshots into
// a serve::ModelRegistry, then serve Trojan scans over newline-delimited
// request lines — on stdin (the default), or over TCP with --listen. The
// end-to-end proof that fitted models are named, versioned, hot-swappable
// artifacts:
//
//   ./build/noodled --snapshot detector.noodle --quick    # first run: fits + saves
//   ls designs/*.v | ./build/noodled --snapshot detector.noodle --stats
//   ./build/noodled --model prod=a.snap --model canary=b.snap
//   ./build/noodled --snapshot detector.noodle --listen 7077   # TCP mode
//
// Request lines (identical grammar on stdin and socket — net/protocol.h is
// the single definition):
//   designs/foo.v          scan with the default model
//   canary:designs/foo.v   scan with model "canary" (latest version)
//   canary@2:designs/foo.v scan with a pinned version
//   ~deadline=250 PATH     answer TIMEOUT instead of scanning if the
//                          verdict cannot dispatch within 250 ms
//   ~inline module m; ...  body is one-line Verilog source, not a path
//   !reload NAME=PATH      hot-swap: load PATH and publish it as the next
//                          version of NAME — in-flight scans are neither
//                          blocked nor re-answered (atomic registry swap)
//   !models                list registered models (and recent reload events)
//   !stats                 print service (and, in TCP mode, transport) counters
//   !metrics               dump the Prometheus text exposition
//                          (exposition lines only: `# ...` and `noodle_...`)
//   !drain                 stdin: block until every pending verdict has been
//                          printed (deterministic cache state for scripts);
//                          socket: begin graceful drain — stop accepting,
//                          finish in-flight work, then exit 0
//   !lint on|off           toggle the static-analysis pass at runtime
//   !trace on|off          toggle the per-verdict trace= timing column
//   !cache persist on|off  toggle the persistent disk verdict tier at
//                          runtime (needs --disk-cache)
//   !store rescan          sweep the --store directory for new snapshot
//                          archives now (SIGHUP does the same)
// Control output goes to stderr on stdin, back to the issuing client on TCP.
//
// Options:
//   --snapshot FILE   load the default model from FILE if it exists;
//                     otherwise fit and save to FILE (train once, scan forever)
//   --model NAME=PATH register snapshot PATH as model NAME (repeatable);
//                     the first --model becomes the default when --snapshot
//                     is absent
//   --refit           fit even when the snapshot exists, then overwrite it
//   --f32             save fitted snapshots with compact f32 weights (~2x smaller)
//   --int8            save fitted snapshots with per-buffer-scaled int8
//                     weights (~8x smaller; verdict-equivalent, not
//                     bit-identical — see DESIGN.md §9)
//   --fma             opt into the AVX2+FMA GEMM kernel (fastest, but fused
//                     multiply-adds change low-order bits; verdicts stay
//                     equivalent). Default dispatch picks the fastest
//                     bit-identical kernel; NOODLE_GEMM_KERNEL overrides.
//   --quick           small training config (CI smoke / demos; seconds not
//                     minutes)
//   --batch N         max requests coalesced per detector batch (default 16)
//   --cache N         LRU verdict-cache capacity (default 4096, 0 disables)
//   --workers N       service worker threads (default 1)
//   --lint            run the lint:: static-analysis pass on every scan and
//                     attach findings to verdict lines as a lint= column
//   --trace           start with the per-verdict trace= column on
//   --metrics-file PATH   dump the Prometheus exposition to PATH every
//                     --metrics-interval seconds, at clean exit, and on
//                     SIGTERM/SIGINT — through util::AtomicFile (write-temp,
//                     fsync, atomic rename), so a scraper never reads a torn
//                     or half-durable file
//   --disk-cache DIR  persistent verdict cache: verdicts are published to
//                     DIR (checksummed record per entry, crash-safe) and
//                     answer in-memory misses across restarts; a fleet can
//                     share one DIR. Disk failure degrades to memory-only —
//                     requests are never failed by persistence
//   --disk-cache-bytes N  byte budget for --disk-cache before LRU records
//                     are evicted (default 64 MiB)
//   --store DIR       content-addressed snapshot store: archives dropped
//                     into DIR as <model>.snap are validated off-thread and
//                     hot-published as the next version of <model>; corrupt
//                     archives are rejected (reload event log) while the old
//                     generation keeps serving. Polled every
//                     --store-interval seconds; SIGHUP rescans immediately
//   --store-interval N  seconds between store polls (default 2)
//   --metrics-interval N  seconds between metrics dumps (default 10; 0 =
//                     only at exit/signal)
//   --seed N          training seed (default 42)
//   --stats           print service counters (total + per model) on exit
//   --demo N          write N demo circuits under ./noodled_demo/ and print
//                     their paths to stdout, then exit — composable with a
//                     serving run:  noodled --demo 6 | noodled --snapshot S
//
// TCP transport (net::ScanServer; see DESIGN.md §11):
//   --listen PORT     serve the request grammar over TCP instead of stdin
//                     (port 0 = kernel-assigned; the bound port is printed
//                     to stderr as "noodled: listening on ADDR:PORT").
//                     SIGTERM/SIGINT begin a graceful drain: stop accepting,
//                     answer BUSY to new work, finish or deadline-out
//                     in-flight scans, flush the disk cache, exit 0
//   --bind ADDR       listen address (default 127.0.0.1)
//   --max-conns N     connection cap; excess accepts close immediately
//                     (default 1024)
//   --max-inflight N  socket scans in flight with the service; excess
//                     answers BUSY instantly (default 256)
//   --deadline-ms N   default per-request deadline for socket requests that
//                     carry no ~deadline= flag (default 0 = none)
//   --net-idle-ms N   evict connections idle this long (default 30000; 0 off)
//   --net-stall-ms N  evict clients whose write buffer made no progress
//                     this long (default 10000; 0 off)
//   --drain-grace-ms N  force-close laggards this long after drain starts
//                     (default 5000)
//
// Verdict line format (tab-separated):
//   TROJAN-INFECTED|trojan-free|parse-error|read-error|no-model|TIMEOUT|
//   BUSY|bad-request
//       p=...  region=...  model=name@version  [lint=...]  [trace=...]  <path>
// The lint= column appears only on verdicts scanned with lint enabled:
// "lint=0" for a clean design, else "lint=N:CODE@line,CODE@line,..."
// (first findings; N is the full count). The trace= column appears only
// while `!trace on` / --trace is active: one field, microseconds per stage,
//   trace=<id>:cache=hit,lookup=2,total=5            (cache hits)
//   trace=<id>:queue=120,feat=63,infer=85,lint=4,total=311
// so `awk -F'\t'` still sees one column per request attribute.

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "lint/lint.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "nn/kernels.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "util/atomic_file.h"
#include "util/csv.h"

using namespace noodle;

namespace {

struct Options {
  std::filesystem::path snapshot;
  std::vector<std::pair<std::string, std::filesystem::path>> models;
  bool refit = false;
  bool f32 = false;
  bool int8 = false;
  bool fma = false;
  bool quick = false;
  bool stats = false;
  bool lint = false;
  bool trace = false;
  std::filesystem::path metrics_file;
  std::size_t metrics_interval = 10;
  std::filesystem::path disk_cache_dir;
  std::uint64_t disk_cache_bytes = 64ull << 20;
  std::filesystem::path store_dir;
  std::size_t store_interval = 2;
  std::size_t batch = 16;
  std::size_t cache = 4096;
  std::size_t workers = 1;
  std::uint64_t seed = 42;
  std::size_t demo = 0;
  int listen = -1;  ///< --listen PORT; -1 = stdin mode, 0 = kernel-assigned
  std::string bind_address = "127.0.0.1";
  std::size_t net_max_conns = 1024;
  std::size_t net_max_inflight = 256;
  std::size_t net_deadline_ms = 0;
  std::size_t net_idle_ms = 30000;
  std::size_t net_stall_ms = 10000;
  std::size_t net_grace_ms = 5000;
};

[[noreturn]] void usage(const char* argv0, const std::string& error = {}) {
  if (!error.empty()) std::cerr << "noodled: " << error << "\n";
  std::cerr << "usage: " << argv0
            << " [--snapshot FILE] [--model NAME=PATH ...] [--refit] [--f32]"
               " [--int8] [--fma]"
               " [--quick] [--batch N] [--cache N] [--workers N] [--lint]"
               " [--trace] [--metrics-file PATH] [--metrics-interval N]"
               " [--disk-cache DIR] [--disk-cache-bytes N] [--store DIR]"
               " [--store-interval N] [--seed N] [--stats] [--demo N]"
               " [--listen PORT] [--bind ADDR] [--max-conns N]"
               " [--max-inflight N] [--deadline-ms N] [--net-idle-ms N]"
               " [--net-stall-ms N] [--drain-grace-ms N]\n"
               "reads newline-delimited request lines from stdin (or, with"
               " --listen, over TCP):\n"
               "  PATH | MODEL:PATH | MODEL@VER:PATH | ~deadline=MS PATH |"
               " ~inline RTL | !reload NAME=PATH |"
               " !models | !stats | !metrics | !drain | !lint on|off |"
               " !trace on|off | !cache persist on|off | !store rescan\n";
  std::exit(2);
}

/// "NAME=PATH" → {NAME, PATH}; nullopt when either side is empty. Shared
/// by --model flags and !reload control lines so the grammar can't drift.
std::optional<std::pair<std::string, std::filesystem::path>> try_parse_name_path(
    const std::string& value) {
  const std::size_t eq = value.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
    return std::nullopt;
  }
  return {{value.substr(0, eq), std::filesystem::path(value.substr(eq + 1))}};
}

Options parse_options(int argc, char** argv) {
  Options options;
  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0], std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--snapshot") {
        options.snapshot = next_value(i);
      } else if (arg == "--model") {
        const std::string value = next_value(i);
        const auto model = try_parse_name_path(value);
        if (!model) usage(argv[0], "--model wants NAME=PATH, got '" + value + "'");
        options.models.push_back(*model);
      } else if (arg == "--refit") {
        options.refit = true;
      } else if (arg == "--f32") {
        options.f32 = true;
      } else if (arg == "--int8") {
        options.int8 = true;
      } else if (arg == "--fma") {
        options.fma = true;
      } else if (arg == "--quick") {
        options.quick = true;
      } else if (arg == "--stats") {
        options.stats = true;
      } else if (arg == "--lint") {
        options.lint = true;
      } else if (arg == "--trace") {
        options.trace = true;
      } else if (arg == "--metrics-file") {
        options.metrics_file = next_value(i);
      } else if (arg == "--metrics-interval") {
        options.metrics_interval = std::stoul(next_value(i));
      } else if (arg == "--disk-cache") {
        options.disk_cache_dir = next_value(i);
      } else if (arg == "--disk-cache-bytes") {
        options.disk_cache_bytes = std::stoull(next_value(i));
      } else if (arg == "--store") {
        options.store_dir = next_value(i);
      } else if (arg == "--store-interval") {
        options.store_interval = std::stoul(next_value(i));
      } else if (arg == "--batch") {
        options.batch = std::stoul(next_value(i));
      } else if (arg == "--cache") {
        options.cache = std::stoul(next_value(i));
      } else if (arg == "--workers") {
        options.workers = std::stoul(next_value(i));
      } else if (arg == "--seed") {
        options.seed = std::stoull(next_value(i));
      } else if (arg == "--demo") {
        options.demo = std::stoul(next_value(i));
      } else if (arg == "--listen") {
        const unsigned long port = std::stoul(next_value(i));
        if (port > 65535) usage(argv[0], "--listen wants a port (0-65535)");
        options.listen = static_cast<int>(port);
      } else if (arg == "--bind") {
        options.bind_address = next_value(i);
      } else if (arg == "--max-conns") {
        options.net_max_conns = std::stoul(next_value(i));
      } else if (arg == "--max-inflight") {
        options.net_max_inflight = std::stoul(next_value(i));
      } else if (arg == "--deadline-ms") {
        options.net_deadline_ms = std::stoul(next_value(i));
      } else if (arg == "--net-idle-ms") {
        options.net_idle_ms = std::stoul(next_value(i));
      } else if (arg == "--net-stall-ms") {
        options.net_stall_ms = std::stoul(next_value(i));
      } else if (arg == "--drain-grace-ms") {
        options.net_grace_ms = std::stoul(next_value(i));
      } else {
        usage(argv[0], "unknown option " + arg);
      }
    } catch (const std::exception&) {  // stoul: invalid_argument or out_of_range
      usage(argv[0], "bad numeric value for " + arg);
    }
  }
  if (options.batch == 0) usage(argv[0], "--batch must be positive");
  if (options.workers == 0) usage(argv[0], "--workers must be positive");
  if (options.f32 && options.int8) usage(argv[0], "--f32 and --int8 are exclusive");
  if (options.listen >= 0 && options.net_max_conns == 0) {
    usage(argv[0], "--max-conns must be positive");
  }
  if (options.listen >= 0 && options.net_max_inflight == 0) {
    usage(argv[0], "--max-inflight must be positive");
  }
  return options;
}

core::DetectorConfig training_config(const Options& options) {
  core::DetectorConfig config;
  config.seed = options.seed;
  if (options.quick) {
    config.gan_target_per_class = 40;
    config.gan.epochs = 30;
    config.fusion.train.epochs = 12;
    config.fusion.train.validation_fraction = 0.0;
  }
  return config;
}

/// Loads or fits the default model and publishes it into the registry.
void publish_default(serve::ModelRegistry& registry, const Options& options) {
  const bool can_load = !options.snapshot.empty() && !options.refit &&
                        std::filesystem::exists(options.snapshot);
  if (can_load) {
    std::cerr << "noodled: loading snapshot " << options.snapshot.string() << "\n";
    registry.reload_from(serve::kDefaultModelName, options.snapshot);
    return;
  }
  std::cerr << "noodled: fitting detector (seed " << options.seed
            << (options.quick ? ", quick config" : "") << ")...\n";
  core::NoodleDetector detector(training_config(options));
  if (options.quick) {
    data::CorpusSpec spec;
    spec.design_count = 96;
    spec.infected_fraction = 0.35;
    spec.seed = options.seed;
    detector.fit(data::build_corpus(spec));
  } else {
    detector.fit_default();
  }
  if (!options.snapshot.empty()) {
    nn::WeightPrecision precision = nn::WeightPrecision::F64;
    const char* note = "";
    if (options.f32) {
      precision = nn::WeightPrecision::F32;
      note = " (f32 weights)";
    } else if (options.int8) {
      precision = nn::WeightPrecision::I8;
      note = " (int8 weights)";
    }
    detector.save(options.snapshot, precision);
    std::cerr << "noodled: saved snapshot to " << options.snapshot.string() << note
              << "\n";
  }
  registry.publish(serve::kDefaultModelName, detector.fitted_model(),
                   options.snapshot);
}

void print_stats_line(std::ostream& out, const char* label,
                      const serve::ServiceStats& stats) {
  out << "noodled stats[" << label << "]: requests=" << stats.requests
      << " cache_hits=" << stats.cache_hits << " disk_hits=" << stats.disk_hits
      << " scans=" << stats.scans << " batches=" << stats.batches
      << " max_batch=" << stats.max_batch_size
      << " parse_failures=" << stats.parse_failures
      << " model_misses=" << stats.model_misses
      << " deadline_timeouts=" << stats.deadline_timeouts
      << " avg_batch=" << util::format_fixed(stats.average_batch_size(), 2)
      << " avg_scan_us=" << util::format_fixed(stats.average_scan_micros(), 1);
  if (stats.lint_runs > 0) {
    out << " lint_runs=" << stats.lint_runs
        << " lint_findings=" << stats.lint_findings;
    for (std::size_t r = 0; r < lint::kRuleCount; ++r) {
      if (stats.lint_by_rule[r] == 0) continue;
      out << " lint[" << lint::rule_info(static_cast<lint::RuleId>(r)).code
          << "]=" << stats.lint_by_rule[r];
    }
  }
  out << "\n";
}

void print_stats(std::ostream& out, const serve::DetectionService& service,
                 const serve::SnapshotStore* store = nullptr,
                 const net::ScanServer* server = nullptr) {
  print_stats_line(out, "total", service.stats());
  for (const auto& [name, stats] : service.stats_by_model()) {
    print_stats_line(out, name.c_str(), stats);
  }
  if (service.disk_cache() != nullptr) {
    // One stats() call — the identical snapshot the Prometheus mirror
    // reads, so `!stats` and `!metrics` can never disagree on the tier.
    const serve::DiskCacheStats disk = service.disk_cache_stats();
    out << "noodled stats[disk-cache]: hits=" << disk.hits
        << " misses=" << disk.misses << " stores=" << disk.stores
        << " drops=" << disk.drops << " corrupt=" << disk.corrupt
        << " evictions=" << disk.evictions << " collisions=" << disk.collisions
        << " temps_swept=" << disk.temps_swept << " loaded=" << disk.loaded
        << " entries=" << disk.entries << " bytes=" << disk.bytes
        << " degraded=" << (disk.degraded ? 1 : 0)
        << " enabled=" << (disk.enabled ? 1 : 0) << "\n";
  }
  if (store != nullptr) {
    const serve::SnapshotStoreStats s = store->stats();
    out << "noodled stats[snapshot-store]: scans=" << s.scans
        << " accepted=" << s.accepted << " rejected=" << s.rejected;
    if (!s.last_error.empty()) out << " last_error=" << s.last_error;
    out << "\n";
  }
  if (server != nullptr) {
    // Same discipline: one snapshot feeds the whole line.
    const net::ServerStats n = server->stats();
    out << "noodled stats[net]: accepted=" << n.accepted
        << " dropped=" << n.dropped << " requests=" << n.requests
        << " responses=" << n.responses << " shed=" << n.shed
        << " timeouts=" << n.timeouts << " protocol_errors=" << n.protocol_errors
        << " bytes_rx=" << n.bytes_rx << " bytes_tx=" << n.bytes_tx
        << " connections=" << n.connections << " inflight=" << n.inflight << "\n";
  }
}

void print_models(std::ostream& out, const serve::ModelRegistry& registry) {
  for (const serve::ModelHandle& handle : registry.catalog()) {
    out << "noodled: model " << handle->label()
        << " fusion=" << handle->model().winning_fusion();
    if (!handle->source().empty()) out << " source=" << handle->source().string();
    out << "\n";
  }
  const std::vector<serve::ReloadEvent> events = registry.reload_events();
  constexpr std::size_t kMaxShown = 8;
  const std::size_t shown = std::min(events.size(), kMaxShown);
  for (std::size_t i = events.size() - shown; i < events.size(); ++i) {
    const serve::ReloadEvent& event = events[i];
    const auto epoch_seconds = std::chrono::duration_cast<std::chrono::seconds>(
                                   event.when.time_since_epoch())
                                   .count();
    out << "noodled: reload t=" << epoch_seconds << " " << event.name;
    if (event.ok) {
      out << "@" << event.version << " ok load_us=" << event.load_micros;
    } else {
      out << " FAILED load_us=" << event.load_micros << " error=" << event.error;
    }
    out << "\n";
  }
}

/// Writes the Prometheus exposition to `path` through util::AtomicFile
/// (write-temp in the same directory, fsync, atomic rename): a scraper
/// polling the file either sees the previous complete dump or this one,
/// never a torn — or, after a power loss, half-durable — write.
bool dump_metrics(serve::DetectionService& service, const std::filesystem::path& path) {
  std::ostringstream exposition;
  service.render_prometheus(exposition);
  util::AtomicFile file(path);
  if (!file.write(exposition.str())) return false;
  return !file.commit();
}

/// Everything a "!..." control line may touch, for both serving modes.
/// `server` is null on stdin; `trace_on` is the live toggle (the socket
/// mode syncs it into ScanServer after each control line).
struct ControlContext {
  serve::DetectionService& service;
  serve::ModelRegistry& registry;
  serve::SnapshotStore* store = nullptr;
  net::ScanServer* server = nullptr;
  bool trace_on = false;
};

/// Handles every control line except "!drain" (whose meaning is per-mode:
/// the stdin loop flushes its pending deque, the server runs its drain
/// state machine before this is ever called). Output goes to `out` —
/// stderr on stdin, the response buffer for the issuing TCP client.
/// Returns false for malformed or failed controls.
bool handle_control_line(const std::string& line, ControlContext& ctx,
                         std::ostream& out) {
  std::istringstream control(line);
  std::string command;
  control >> command;
  if (command == "!reload") {
    std::string value;
    control >> value;
    const auto target = try_parse_name_path(value);
    if (!target) {
      out << "noodled: !reload wants NAME=PATH, got '" << value << "'\n";
      return false;
    }
    try {
      const serve::ModelHandle handle =
          ctx.service.reload(target->first, target->second);
      out << "noodled: reloaded " << handle->label() << " from "
          << handle->source().string() << "\n";
    } catch (const std::exception& e) {
      out << "noodled: reload failed: " << e.what() << "\n";
      return false;
    }
  } else if (command == "!models") {
    print_models(out, ctx.registry);
  } else if (command == "!stats") {
    print_stats(out, ctx.service, ctx.store, ctx.server);
  } else if (command == "!cache") {
    std::string subject, value;
    control >> subject >> value;
    if (subject != "persist" || (value != "on" && value != "off")) {
      out << "noodled: !cache wants 'persist on|off', got '" << line << "'\n";
      return false;
    }
    if (ctx.service.disk_cache() == nullptr) {
      out << "noodled: no disk cache configured (--disk-cache DIR)\n";
      return false;
    }
    ctx.service.disk_cache()->set_enabled(value == "on");
    out << "noodled: cache persist " << value << "\n";
  } else if (command == "!store") {
    std::string value;
    control >> value;
    if (value != "rescan") {
      out << "noodled: !store wants 'rescan', got '" << line << "'\n";
      return false;
    }
    if (ctx.store == nullptr) {
      out << "noodled: no snapshot store configured (--store DIR)\n";
      return false;
    }
    const std::size_t published = ctx.store->rescan_now();
    out << "noodled: store rescan published=" << published << "\n";
  } else if (command == "!metrics") {
    // The net mirror is loop-thread-only; control lines already run there.
    if (ctx.server != nullptr) ctx.server->sync_metrics();
    ctx.service.render_prometheus(out);
  } else if (command == "!trace") {
    std::string value;
    control >> value;
    if (value != "on" && value != "off") {
      out << "noodled: !trace wants on|off, got '" << value << "'\n";
      return false;
    }
    ctx.trace_on = value == "on";
    out << "noodled: trace " << value << "\n";
  } else if (command == "!lint") {
    std::string value;
    control >> value;
    if (value != "on" && value != "off") {
      out << "noodled: !lint wants on|off, got '" << value << "'\n";
      return false;
    }
    ctx.service.set_lint(value == "on");
    out << "noodled: lint " << value << "\n";
  } else {
    out << "noodled: unknown control line '" << line << "'\n";
    return false;
  }
  return true;
}

/// The stdin serving loop: request lines in, verdict lines out, plus the
/// SignalPipe watcher thread (periodic + signal-triggered metrics dumps,
/// SIGHUP store rescans). Returns the failure count.
int run_stdin_mode(const Options& options, serve::DetectionService& service,
                   serve::ModelRegistry& registry, serve::SnapshotStore* store,
                   const std::string& default_model) {
  // The signal-watcher thread: both serving modes observe signals through
  // the one net::SignalPipe funnel — the handler writes a byte, and this
  // thread (the event loop, in TCP mode) does the work as ordinary code.
  // SIGTERM/SIGINT dump metrics, restore SIG_DFL, and re-raise, so the
  // process still dies as expected; SIGHUP rescans the snapshot store.
  std::atomic<bool> watcher_stop{false};
  std::thread watcher_thread;
  if (!options.metrics_file.empty() || store != nullptr) {
    net::SignalPipe& signals = net::SignalPipe::instance();
    if (!options.metrics_file.empty()) {
      signals.hook(SIGTERM);
      signals.hook(SIGINT);
    }
    if (store != nullptr) signals.hook(SIGHUP);
    watcher_thread = std::thread([&service, &watcher_stop, &options, store] {
      net::SignalPipe& signals = net::SignalPipe::instance();
      using clock = std::chrono::steady_clock;
      auto last_dump = clock::now();
      while (!watcher_stop.load(std::memory_order_relaxed)) {
        struct pollfd pfd = {signals.read_fd(), POLLIN, 0};
        ::poll(&pfd, 1, 100);
        int fatal = 0;
        signals.drain([&](int signo) {
          if (signo == SIGHUP) {
            if (store != nullptr) {
              std::cerr << "noodled: SIGHUP — rescanning snapshot store\n";
              store->poke();
            }
          } else {
            fatal = signo;
          }
        });
        if (fatal != 0) {
          dump_metrics(service, options.metrics_file);
          signals.unhook(fatal);
          std::raise(fatal);
          return;
        }
        if (!options.metrics_file.empty() && options.metrics_interval > 0 &&
            clock::now() - last_dump >=
                std::chrono::seconds(options.metrics_interval)) {
          if (!dump_metrics(service, options.metrics_file)) {
            std::cerr << "noodled: metrics dump to "
                      << options.metrics_file.string() << " failed\n";
          }
          last_dump = clock::now();
        }
      }
    });
  }

  ControlContext ctx{service, registry, store, nullptr, options.trace};
  int failures = 0;

  struct Pending {
    std::string echo;    ///< path, or "<inline>" for inline RTL
    std::string model;   ///< requested spec; verdict lines prefer served_by
    std::string status;  ///< early failure status ("read-error", "bad-request")
    std::future<core::DetectionReport> verdict;
  };
  std::deque<Pending> pending;

  // Verdicts stream out in input order as they complete, so a producer
  // that keeps the pipe open sees results live instead of at EOF.
  const auto print_front = [&] {
    Pending& request = pending.front();
    if (!request.status.empty()) {
      std::cout << net::protocol::status_line(request.status.c_str(), request.model,
                                              request.echo)
                << "\n";
      ++failures;
    } else {
      try {
        const core::DetectionReport report = request.verdict.get();
        std::cout << net::protocol::verdict_line(report, request.echo, ctx.trace_on)
                  << "\n";
      } catch (const serve::DeadlineError&) {
        // The request asked for a deadline and missed it — expected
        // behaviour under load, not a serving failure.
        std::cout << net::protocol::status_line("TIMEOUT", request.model,
                                                request.echo)
                  << "\n";
      } catch (const serve::RegistryError& e) {
        std::cout << net::protocol::status_line("no-model", request.model,
                                                request.echo)
                  << "\n";
        std::cerr << "noodled: " << request.echo << ": " << e.what() << "\n";
        ++failures;
      } catch (const std::exception& e) {
        std::cout << net::protocol::status_line("parse-error", request.model,
                                                request.echo)
                  << "\n";
        std::cerr << "noodled: " << request.echo << ": " << e.what() << "\n";
        ++failures;
      }
    }
    std::cout.flush();
    pending.pop_front();
  };
  const auto flush_ready = [&] {
    while (!pending.empty() &&
           (!pending.front().status.empty() ||
            pending.front().verdict.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready)) {
      print_front();
    }
  };

  // Blocking backpressure bound: never hold more in-flight requests than a
  // few dispatch rounds' worth, so arbitrarily long input stays bounded.
  const std::size_t max_pending =
      std::max<std::size_t>(256, options.batch * options.workers * 4);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;

    if (line.front() == '!') {  // control line
      std::istringstream control(line);
      std::string command;
      control >> command;
      if (command == "!drain") {
        while (!pending.empty()) print_front();
        continue;
      }
      if (!handle_control_line(line, ctx, std::cerr)) ++failures;
      continue;
    }

    const net::protocol::RequestLine request_line = net::protocol::parse_request_line(
        line, [&registry](const std::string& name) {
          return static_cast<bool>(registry.try_resolve(serve::ModelSpec{name, 0}));
        });
    Pending request;
    request.model = request_line.spec.empty() ? default_model : request_line.spec;
    if (!request_line.error.empty()) {
      request.echo = line;
      request.status = "bad-request";
      std::cerr << "noodled: bad request: " << request_line.error << "\n";
    } else if (request_line.inline_rtl) {
      request.echo = net::protocol::kInlineEcho;
      request.verdict = service.submit(request.model, request_line.body,
                                       serve::SubmitOptions{request_line.deadline});
    } else {
      request.echo = request_line.body;
      std::ifstream file(request_line.body);
      if (!file) {
        request.status = "read-error";
      } else {
        std::ostringstream source;
        source << file.rdbuf();
        request.verdict = service.submit(request.model, source.str(),
                                         serve::SubmitOptions{request_line.deadline});
      }
    }
    pending.push_back(std::move(request));
    flush_ready();
    while (pending.size() >= max_pending) print_front();
  }
  while (!pending.empty()) print_front();

  watcher_stop.store(true, std::memory_order_relaxed);
  if (watcher_thread.joinable()) watcher_thread.join();
  return failures;
}

/// The TCP serving mode: one net::EventLoop thread runs the ScanServer
/// until a graceful drain (SIGTERM/SIGINT/!drain) completes. Returns the
/// control-failure count (request failures are the clients' to observe).
int run_socket_mode(const Options& options, serve::DetectionService& service,
                    serve::ModelRegistry& registry, serve::SnapshotStore* store,
                    const std::string& /*default_model*/) {
  net::EventLoop loop;
  net::ServerConfig config;
  config.bind_address = options.bind_address;
  config.port = static_cast<std::uint16_t>(options.listen);
  config.max_connections = options.net_max_conns;
  config.max_inflight = options.net_max_inflight;
  config.default_deadline = std::chrono::milliseconds(options.net_deadline_ms);
  config.idle_timeout = std::chrono::milliseconds(options.net_idle_ms);
  config.write_stall_timeout = std::chrono::milliseconds(options.net_stall_ms);
  config.drain_grace = std::chrono::milliseconds(options.net_grace_ms);
  net::ScanServer server(loop, service, config);
  server.set_trace(options.trace);

  ControlContext ctx{service, registry, store, &server, options.trace};
  int failures = 0;
  server.set_control_handler([&](const std::string& line) {
    std::ostringstream out;
    if (!handle_control_line(line, ctx, out)) ++failures;
    server.set_trace(ctx.trace_on);
    return out.str();
  });
  server.set_on_drained([&loop] { loop.stop(); });

  // Same SignalPipe funnel as stdin mode, observed by epoll instead of a
  // watcher thread: SIGTERM/SIGINT begin the drain (and the loop exits
  // when it completes), SIGHUP rescans the snapshot store.
  const auto drain_on_signal = [&server](int signo) {
    std::cerr << "noodled: signal " << signo << " — draining\n";
    server.begin_drain();
  };
  loop.watch_signal(SIGTERM, drain_on_signal);
  loop.watch_signal(SIGINT, drain_on_signal);
  if (store != nullptr) {
    loop.watch_signal(SIGHUP, [store](int) {
      std::cerr << "noodled: SIGHUP — rescanning snapshot store\n";
      store->poke();
    });
  }

  // Periodic metrics dumps ride the loop's own timer wheel; the tick
  // re-arms itself. `dump_tick` outlives loop.run(), so the callback's
  // pointer into it stays valid without a shared_ptr self-cycle.
  auto dump_tick = std::make_shared<std::function<void()>>();
  if (!options.metrics_file.empty() && options.metrics_interval > 0) {
    const auto interval = std::chrono::seconds(options.metrics_interval);
    std::function<void()>* tick = dump_tick.get();
    *dump_tick = [&service, &server, &options, &loop, tick, interval] {
      server.sync_metrics();
      if (!dump_metrics(service, options.metrics_file)) {
        std::cerr << "noodled: metrics dump to " << options.metrics_file.string()
                  << " failed\n";
      }
      loop.add_timer(interval, *tick);
    };
    loop.add_timer(interval, *dump_tick);
  }

  try {
    server.start();
  } catch (const std::system_error& e) {
    std::cerr << "noodled: cannot listen on " << options.bind_address << ":"
              << options.listen << ": " << e.what() << "\n";
    return 1;
  }
  std::cerr << "noodled: listening on " << options.bind_address << ":"
            << server.port() << "\n";
  loop.run();

  const net::ServerStats n = server.stats();
  std::cerr << "noodled: drained — accepted=" << n.accepted
            << " requests=" << n.requests << " responses=" << n.responses
            << " shed=" << n.shed << " timeouts=" << n.timeouts << "\n";
  if (options.stats) print_stats(std::cerr, service, store, &server);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);

  if (options.fma) {
    try {
      nn::set_gemm_kernel(nn::GemmKernel::Avx2Fma);
      std::cerr << "noodled: gemm kernel avx2fma (opt-in; verdict-equivalent)\n";
    } catch (const std::invalid_argument& e) {
      std::cerr << "noodled: --fma ignored: " << e.what() << "\n";
    }
  }

  if (options.demo > 0) {
    const std::filesystem::path dir = "noodled_demo";
    std::filesystem::create_directories(dir);
    data::CorpusSpec spec;
    spec.design_count = options.demo;
    spec.infected_fraction = 0.25;
    spec.seed = options.seed;
    for (const auto& circuit : data::build_corpus(spec)) {
      const auto path = dir / (circuit.name + (circuit.infected ? ".infected.v" : ".v"));
      std::ofstream out(path);
      out << circuit.verilog;
      std::cout << path.string() << "\n";
    }
    return 0;
  }

  auto registry = std::make_shared<serve::ModelRegistry>();
  try {
    for (const auto& [name, path] : options.models) {
      registry->reload_from(name, path);
      std::cerr << "noodled: loaded model " << name << " from " << path.string()
                << "\n";
    }
    if (!options.snapshot.empty() || options.models.empty()) {
      publish_default(*registry, options);
    }
  } catch (const serve::SnapshotError& e) {
    std::cerr << "noodled: snapshot rejected: " << e.what()
              << " (use --refit to retrain)\n";
    return 1;
  } catch (const serve::RegistryError& e) {
    std::cerr << "noodled: " << e.what() << "\n";
    return 1;
  }
  const std::string default_model = !options.snapshot.empty() || options.models.empty()
                                        ? std::string(serve::kDefaultModelName)
                                        : options.models.front().first;
  print_models(std::cerr, *registry);
  std::cerr << "noodled: serving (default model " << default_model << ")\n";

  serve::ServiceConfig service_config;
  service_config.max_batch = options.batch;
  service_config.cache_capacity = options.cache;
  service_config.workers = options.workers;
  service_config.lint = options.lint;
  service_config.disk_cache.directory = options.disk_cache_dir;
  service_config.disk_cache.max_bytes = options.disk_cache_bytes;
  serve::DetectionService service(registry, default_model, service_config);
  if (service.disk_cache() != nullptr) {
    const serve::DiskCacheStats disk = service.disk_cache_stats();
    std::cerr << "noodled: disk cache " << options.disk_cache_dir.string()
              << " loaded=" << disk.loaded << " corrupt=" << disk.corrupt
              << " temps_swept=" << disk.temps_swept
              << (disk.degraded ? " DEGRADED" : "") << "\n";
  }

  // The snapshot-store watcher: archives dropped into --store publish as new
  // model versions; validation failures are logged and the old generation
  // keeps serving. The first sweep runs before serving starts, so archives
  // already in the store are live for the first request line.
  std::unique_ptr<serve::SnapshotStore> store;
  if (!options.store_dir.empty()) {
    serve::SnapshotStoreConfig store_config;
    store_config.directory = options.store_dir;
    store_config.poll_interval = std::chrono::seconds(options.store_interval);
    store = std::make_unique<serve::SnapshotStore>(store_config, *registry,
                                                   &service.metrics());
    const std::size_t published = store->rescan_now();
    std::cerr << "noodled: snapshot store " << options.store_dir.string()
              << " published=" << published << "\n";
    store->start();
  }

  int failures =
      options.listen >= 0
          ? run_socket_mode(options, service, *registry, store.get(), default_model)
          : run_stdin_mode(options, service, *registry, store.get(), default_model);

  if (store != nullptr) store->stop();
  if (!options.metrics_file.empty()) {
    // Final dump at clean exit, so short-lived runs leave a complete
    // scrape behind even when no interval ever elapsed.
    if (!dump_metrics(service, options.metrics_file)) {
      std::cerr << "noodled: metrics dump to " << options.metrics_file.string()
                << " failed\n";
      ++failures;
    }
  }

  if (service.disk_cache() != nullptr) {
    // Orderly exit gets queued verdicts onto disk; a crash would drop them
    // (by design), but there is no reason to imitate one here.
    service.disk_cache()->flush();
  }
  if (options.stats && options.listen < 0) print_stats(std::cerr, service, store.get());
  return failures == 0 ? 0 : 1;
}
