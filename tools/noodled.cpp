// noodled — the detection daemon: load one or more detector snapshots into
// a serve::ModelRegistry, then serve Trojan scans over newline-delimited
// request lines on stdin, one verdict line per request. The end-to-end
// proof that fitted models are named, versioned, hot-swappable artifacts:
//
//   ./build/noodled --snapshot detector.noodle --quick    # first run: fits + saves
//   ls designs/*.v | ./build/noodled --snapshot detector.noodle --stats
//   ./build/noodled --model prod=a.snap --model canary=b.snap
//
// Request lines:
//   designs/foo.v          scan with the default model
//   canary:designs/foo.v   scan with model "canary" (latest version)
//   canary@2:designs/foo.v scan with a pinned version
//   !reload NAME=PATH      hot-swap: load PATH and publish it as the next
//                          version of NAME — in-flight scans are neither
//                          blocked nor re-answered (atomic registry swap)
//   !models                list registered models (and recent reload
//                          events) to stderr
//   !stats                 print service counters to stderr
//   !metrics               dump the Prometheus text exposition to stderr
//                          (exposition lines only: `# ...` and `noodle_...`)
//   !drain                 block until every pending verdict has been
//                          printed (deterministic cache state for scripts:
//                          requests after a !drain probe a fully warm cache)
//   !lint on|off           toggle the static-analysis pass at runtime
//   !trace on|off          toggle the per-verdict trace= timing column
//   !cache persist on|off  toggle the persistent disk verdict tier at
//                          runtime (needs --disk-cache)
//   !store rescan          sweep the --store directory for new snapshot
//                          archives now (SIGHUP does the same)
//
// Options:
//   --snapshot FILE   load the default model from FILE if it exists;
//                     otherwise fit and save to FILE (train once, scan forever)
//   --model NAME=PATH register snapshot PATH as model NAME (repeatable);
//                     the first --model becomes the default when --snapshot
//                     is absent
//   --refit           fit even when the snapshot exists, then overwrite it
//   --f32             save fitted snapshots with compact f32 weights (~2x smaller)
//   --int8            save fitted snapshots with per-buffer-scaled int8
//                     weights (~8x smaller; verdict-equivalent, not
//                     bit-identical — see DESIGN.md §9)
//   --fma             opt into the AVX2+FMA GEMM kernel (fastest, but fused
//                     multiply-adds change low-order bits; verdicts stay
//                     equivalent). Default dispatch picks the fastest
//                     bit-identical kernel; NOODLE_GEMM_KERNEL overrides.
//   --quick           small training config (CI smoke / demos; seconds not
//                     minutes)
//   --batch N         max requests coalesced per detector batch (default 16)
//   --cache N         LRU verdict-cache capacity (default 4096, 0 disables)
//   --workers N       service worker threads (default 1)
//   --lint            run the lint:: static-analysis pass on every scan and
//                     attach findings to verdict lines as a lint= column
//   --trace           start with the per-verdict trace= column on
//   --metrics-file PATH   dump the Prometheus exposition to PATH every
//                     --metrics-interval seconds, at clean exit, and on
//                     SIGTERM/SIGINT — through util::AtomicFile (write-temp,
//                     fsync, atomic rename), so a scraper never reads a torn
//                     or half-durable file
//   --disk-cache DIR  persistent verdict cache: verdicts are published to
//                     DIR (checksummed record per entry, crash-safe) and
//                     answer in-memory misses across restarts; a fleet can
//                     share one DIR. Disk failure degrades to memory-only —
//                     requests are never failed by persistence
//   --disk-cache-bytes N  byte budget for --disk-cache before LRU records
//                     are evicted (default 64 MiB)
//   --store DIR       content-addressed snapshot store: archives dropped
//                     into DIR as <model>.snap are validated off-thread and
//                     hot-published as the next version of <model>; corrupt
//                     archives are rejected (reload event log) while the old
//                     generation keeps serving. Polled every
//                     --store-interval seconds; SIGHUP rescans immediately
//   --store-interval N  seconds between store polls (default 2)
//   --metrics-interval N  seconds between metrics dumps (default 10; 0 =
//                     only at exit/signal)
//   --seed N          training seed (default 42)
//   --stats           print service counters (total + per model) on exit
//   --demo N          write N demo circuits under ./noodled_demo/ and print
//                     their paths to stdout, then exit — composable with a
//                     serving run:  noodled --demo 6 | noodled --snapshot S
//
// Verdict line format (tab-separated):
//   TROJAN-INFECTED|trojan-free|parse-error|read-error|no-model
//       p=...  region=...  model=name@version  [lint=...]  [trace=...]  <path>
// The lint= column appears only on verdicts scanned with lint enabled:
// "lint=0" for a clean design, else "lint=N:CODE@line,CODE@line,..."
// (first findings; N is the full count). The trace= column appears only
// while `!trace on` / --trace is active: one field, microseconds per stage,
//   trace=<id>:cache=hit,lookup=2,total=5            (cache hits)
//   trace=<id>:queue=120,feat=63,infer=85,lint=4,total=311
// so `awk -F'\t'` still sees one column per request attribute.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "lint/lint.h"
#include "nn/kernels.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "util/atomic_file.h"
#include "util/csv.h"

using namespace noodle;

namespace {

struct Options {
  std::filesystem::path snapshot;
  std::vector<std::pair<std::string, std::filesystem::path>> models;
  bool refit = false;
  bool f32 = false;
  bool int8 = false;
  bool fma = false;
  bool quick = false;
  bool stats = false;
  bool lint = false;
  bool trace = false;
  std::filesystem::path metrics_file;
  std::size_t metrics_interval = 10;
  std::filesystem::path disk_cache_dir;
  std::uint64_t disk_cache_bytes = 64ull << 20;
  std::filesystem::path store_dir;
  std::size_t store_interval = 2;
  std::size_t batch = 16;
  std::size_t cache = 4096;
  std::size_t workers = 1;
  std::uint64_t seed = 42;
  std::size_t demo = 0;
};

[[noreturn]] void usage(const char* argv0, const std::string& error = {}) {
  if (!error.empty()) std::cerr << "noodled: " << error << "\n";
  std::cerr << "usage: " << argv0
            << " [--snapshot FILE] [--model NAME=PATH ...] [--refit] [--f32]"
               " [--int8] [--fma]"
               " [--quick] [--batch N] [--cache N] [--workers N] [--lint]"
               " [--trace] [--metrics-file PATH] [--metrics-interval N]"
               " [--disk-cache DIR] [--disk-cache-bytes N] [--store DIR]"
               " [--store-interval N] [--seed N] [--stats] [--demo N]\n"
               "reads newline-delimited request lines from stdin:\n"
               "  PATH | MODEL:PATH | MODEL@VER:PATH | !reload NAME=PATH |"
               " !models | !stats | !metrics | !drain | !lint on|off |"
               " !trace on|off | !cache persist on|off | !store rescan\n";
  std::exit(2);
}

/// "NAME=PATH" → {NAME, PATH}; nullopt when either side is empty. Shared
/// by --model flags and !reload control lines so the grammar can't drift.
std::optional<std::pair<std::string, std::filesystem::path>> try_parse_name_path(
    const std::string& value) {
  const std::size_t eq = value.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
    return std::nullopt;
  }
  return {{value.substr(0, eq), std::filesystem::path(value.substr(eq + 1))}};
}

Options parse_options(int argc, char** argv) {
  Options options;
  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0], std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--snapshot") {
        options.snapshot = next_value(i);
      } else if (arg == "--model") {
        const std::string value = next_value(i);
        const auto model = try_parse_name_path(value);
        if (!model) usage(argv[0], "--model wants NAME=PATH, got '" + value + "'");
        options.models.push_back(*model);
      } else if (arg == "--refit") {
        options.refit = true;
      } else if (arg == "--f32") {
        options.f32 = true;
      } else if (arg == "--int8") {
        options.int8 = true;
      } else if (arg == "--fma") {
        options.fma = true;
      } else if (arg == "--quick") {
        options.quick = true;
      } else if (arg == "--stats") {
        options.stats = true;
      } else if (arg == "--lint") {
        options.lint = true;
      } else if (arg == "--trace") {
        options.trace = true;
      } else if (arg == "--metrics-file") {
        options.metrics_file = next_value(i);
      } else if (arg == "--metrics-interval") {
        options.metrics_interval = std::stoul(next_value(i));
      } else if (arg == "--disk-cache") {
        options.disk_cache_dir = next_value(i);
      } else if (arg == "--disk-cache-bytes") {
        options.disk_cache_bytes = std::stoull(next_value(i));
      } else if (arg == "--store") {
        options.store_dir = next_value(i);
      } else if (arg == "--store-interval") {
        options.store_interval = std::stoul(next_value(i));
      } else if (arg == "--batch") {
        options.batch = std::stoul(next_value(i));
      } else if (arg == "--cache") {
        options.cache = std::stoul(next_value(i));
      } else if (arg == "--workers") {
        options.workers = std::stoul(next_value(i));
      } else if (arg == "--seed") {
        options.seed = std::stoull(next_value(i));
      } else if (arg == "--demo") {
        options.demo = std::stoul(next_value(i));
      } else {
        usage(argv[0], "unknown option " + arg);
      }
    } catch (const std::exception&) {  // stoul: invalid_argument or out_of_range
      usage(argv[0], "bad numeric value for " + arg);
    }
  }
  if (options.batch == 0) usage(argv[0], "--batch must be positive");
  if (options.workers == 0) usage(argv[0], "--workers must be positive");
  if (options.f32 && options.int8) usage(argv[0], "--f32 and --int8 are exclusive");
  return options;
}

core::DetectorConfig training_config(const Options& options) {
  core::DetectorConfig config;
  config.seed = options.seed;
  if (options.quick) {
    config.gan_target_per_class = 40;
    config.gan.epochs = 30;
    config.fusion.train.epochs = 12;
    config.fusion.train.validation_fraction = 0.0;
  }
  return config;
}

/// Loads or fits the default model and publishes it into the registry.
void publish_default(serve::ModelRegistry& registry, const Options& options) {
  const bool can_load = !options.snapshot.empty() && !options.refit &&
                        std::filesystem::exists(options.snapshot);
  if (can_load) {
    std::cerr << "noodled: loading snapshot " << options.snapshot.string() << "\n";
    registry.reload_from(serve::kDefaultModelName, options.snapshot);
    return;
  }
  std::cerr << "noodled: fitting detector (seed " << options.seed
            << (options.quick ? ", quick config" : "") << ")...\n";
  core::NoodleDetector detector(training_config(options));
  if (options.quick) {
    data::CorpusSpec spec;
    spec.design_count = 96;
    spec.infected_fraction = 0.35;
    spec.seed = options.seed;
    detector.fit(data::build_corpus(spec));
  } else {
    detector.fit_default();
  }
  if (!options.snapshot.empty()) {
    nn::WeightPrecision precision = nn::WeightPrecision::F64;
    const char* note = "";
    if (options.f32) {
      precision = nn::WeightPrecision::F32;
      note = " (f32 weights)";
    } else if (options.int8) {
      precision = nn::WeightPrecision::I8;
      note = " (int8 weights)";
    }
    detector.save(options.snapshot, precision);
    std::cerr << "noodled: saved snapshot to " << options.snapshot.string() << note
              << "\n";
  }
  registry.publish(serve::kDefaultModelName, detector.fitted_model(),
                   options.snapshot);
}

std::string region_text(const cp::PredictionRegion& region) {
  if (region.is_uncertain()) return "{TF,TI}";
  if (region.is_empty()) return "{}";
  return region.contains[1] ? "{TI}" : "{TF}";
}

void print_stats_line(const char* label, const serve::ServiceStats& stats) {
  std::cerr << "noodled stats[" << label << "]: requests=" << stats.requests
            << " cache_hits=" << stats.cache_hits
            << " disk_hits=" << stats.disk_hits << " scans=" << stats.scans
            << " batches=" << stats.batches << " max_batch=" << stats.max_batch_size
            << " parse_failures=" << stats.parse_failures
            << " model_misses=" << stats.model_misses
            << " avg_batch=" << util::format_fixed(stats.average_batch_size(), 2)
            << " avg_scan_us=" << util::format_fixed(stats.average_scan_micros(), 1);
  if (stats.lint_runs > 0) {
    std::cerr << " lint_runs=" << stats.lint_runs
              << " lint_findings=" << stats.lint_findings;
    for (std::size_t r = 0; r < lint::kRuleCount; ++r) {
      if (stats.lint_by_rule[r] == 0) continue;
      std::cerr << " lint[" << lint::rule_info(static_cast<lint::RuleId>(r)).code
                << "]=" << stats.lint_by_rule[r];
    }
  }
  std::cerr << "\n";
}

/// The verdict line's lint= column: total count, then the first findings as
/// CODE@line so a grep of the stream surfaces the rule and position without
/// another lint run. No spaces — the column must stay one awk field.
std::string lint_column(const core::DetectionReport& report) {
  std::string column = "lint=" + std::to_string(report.lint_findings.size());
  constexpr std::size_t kMaxListed = 8;
  const std::size_t listed = std::min(report.lint_findings.size(), kMaxListed);
  for (std::size_t i = 0; i < listed; ++i) {
    const lint::OwnedFinding& finding = report.lint_findings[i];
    column += i == 0 ? ':' : ',';
    column += lint::rule_info(finding.rule).code;
    column += '@';
    column += std::to_string(finding.line);
  }
  if (report.lint_findings.size() > kMaxListed) column += ",+more";
  return column;
}

/// The verdict line's trace= column: the request's trace id plus per-stage
/// wall time in microseconds, comma-joined with no spaces so the column
/// stays one awk field. Cache hits report the lookup instead of the
/// pipeline stages they never ran.
std::string trace_column(const core::DetectionReport& report) {
  const core::RequestTiming& timing = report.timing;
  std::string column = "trace=" + std::to_string(timing.trace_id) + ":";
  if (timing.from_cache) {
    column += "cache=hit,lookup=" + std::to_string(timing.cache_lookup_us) +
              ",total=" + std::to_string(timing.total_us);
  } else {
    column += "queue=" + std::to_string(timing.queue_wait_us) +
              ",feat=" + std::to_string(timing.featurize_us) +
              ",infer=" + std::to_string(timing.infer_us) +
              ",lint=" + std::to_string(timing.lint_us) +
              ",total=" + std::to_string(timing.total_us);
  }
  return column;
}

void print_stats(const serve::DetectionService& service,
                 const serve::SnapshotStore* store = nullptr) {
  print_stats_line("total", service.stats());
  for (const auto& [name, stats] : service.stats_by_model()) {
    print_stats_line(name.c_str(), stats);
  }
  if (service.disk_cache() != nullptr) {
    // One stats() call — the identical snapshot the Prometheus mirror
    // reads, so `!stats` and `!metrics` can never disagree on the tier.
    const serve::DiskCacheStats disk = service.disk_cache_stats();
    std::cerr << "noodled stats[disk-cache]: hits=" << disk.hits
              << " misses=" << disk.misses << " stores=" << disk.stores
              << " drops=" << disk.drops << " corrupt=" << disk.corrupt
              << " evictions=" << disk.evictions
              << " collisions=" << disk.collisions
              << " temps_swept=" << disk.temps_swept << " loaded=" << disk.loaded
              << " entries=" << disk.entries << " bytes=" << disk.bytes
              << " degraded=" << (disk.degraded ? 1 : 0)
              << " enabled=" << (disk.enabled ? 1 : 0) << "\n";
  }
  if (store != nullptr) {
    const serve::SnapshotStoreStats s = store->stats();
    std::cerr << "noodled stats[snapshot-store]: scans=" << s.scans
              << " accepted=" << s.accepted << " rejected=" << s.rejected;
    if (!s.last_error.empty()) std::cerr << " last_error=" << s.last_error;
    std::cerr << "\n";
  }
}

void print_models(const serve::ModelRegistry& registry) {
  for (const serve::ModelHandle& handle : registry.catalog()) {
    std::cerr << "noodled: model " << handle->label()
              << " fusion=" << handle->model().winning_fusion();
    if (!handle->source().empty()) std::cerr << " source=" << handle->source().string();
    std::cerr << "\n";
  }
  const std::vector<serve::ReloadEvent> events = registry.reload_events();
  constexpr std::size_t kMaxShown = 8;
  const std::size_t shown = std::min(events.size(), kMaxShown);
  for (std::size_t i = events.size() - shown; i < events.size(); ++i) {
    const serve::ReloadEvent& event = events[i];
    const auto epoch_seconds = std::chrono::duration_cast<std::chrono::seconds>(
                                   event.when.time_since_epoch())
                                   .count();
    std::cerr << "noodled: reload t=" << epoch_seconds << " " << event.name;
    if (event.ok) {
      std::cerr << "@" << event.version << " ok load_us=" << event.load_micros;
    } else {
      std::cerr << " FAILED load_us=" << event.load_micros << " error="
                << event.error;
    }
    std::cerr << "\n";
  }
}

/// Writes the Prometheus exposition to `path` through util::AtomicFile
/// (write-temp in the same directory, fsync, atomic rename): a scraper
/// polling the file either sees the previous complete dump or this one,
/// never a torn — or, after a power loss, half-durable — write.
bool dump_metrics(serve::DetectionService& service, const std::filesystem::path& path) {
  std::ostringstream exposition;
  service.render_prometheus(exposition);
  util::AtomicFile file(path);
  if (!file.write(exposition.str())) return false;
  return !file.commit();
}

/// Signals observed by the signal-watcher thread; async-signal-safe because
/// the handlers only store into a sig_atomic_t. SIGTERM/SIGINT are hooked
/// only when --metrics-file is given (dump, then die); SIGHUP only when
/// --store is given (rescan, keep serving).
volatile std::sig_atomic_t g_signal = 0;
volatile std::sig_atomic_t g_hup = 0;

extern "C" void noodled_signal_handler(int sig) { g_signal = sig; }
extern "C" void noodled_hup_handler(int) { g_hup = 1; }

/// Splits "spec:path" when the prefix names a registered model; otherwise
/// the whole line is a path for the default model.
std::pair<std::string, std::string> split_request(const std::string& line,
                                                  const serve::ModelRegistry& registry,
                                                  const std::string& default_model) {
  const std::size_t colon = line.find(':');
  if (colon != std::string::npos && colon > 0) {
    try {
      const serve::ModelSpec spec = serve::parse_model_spec(
          std::string_view(line).substr(0, colon));
      if (registry.try_resolve(serve::ModelSpec{spec.name, 0})) {
        return {line.substr(0, colon), line.substr(colon + 1)};
      }
    } catch (const serve::RegistryError&) {
      // Not a model prefix; treat the whole line as a path.
    }
  }
  return {default_model, line};
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);

  if (options.fma) {
    try {
      nn::set_gemm_kernel(nn::GemmKernel::Avx2Fma);
      std::cerr << "noodled: gemm kernel avx2fma (opt-in; verdict-equivalent)\n";
    } catch (const std::invalid_argument& e) {
      std::cerr << "noodled: --fma ignored: " << e.what() << "\n";
    }
  }

  if (options.demo > 0) {
    const std::filesystem::path dir = "noodled_demo";
    std::filesystem::create_directories(dir);
    data::CorpusSpec spec;
    spec.design_count = options.demo;
    spec.infected_fraction = 0.25;
    spec.seed = options.seed;
    for (const auto& circuit : data::build_corpus(spec)) {
      const auto path = dir / (circuit.name + (circuit.infected ? ".infected.v" : ".v"));
      std::ofstream out(path);
      out << circuit.verilog;
      std::cout << path.string() << "\n";
    }
    return 0;
  }

  auto registry = std::make_shared<serve::ModelRegistry>();
  try {
    for (const auto& [name, path] : options.models) {
      registry->reload_from(name, path);
      std::cerr << "noodled: loaded model " << name << " from " << path.string()
                << "\n";
    }
    if (!options.snapshot.empty() || options.models.empty()) {
      publish_default(*registry, options);
    }
  } catch (const serve::SnapshotError& e) {
    std::cerr << "noodled: snapshot rejected: " << e.what()
              << " (use --refit to retrain)\n";
    return 1;
  } catch (const serve::RegistryError& e) {
    std::cerr << "noodled: " << e.what() << "\n";
    return 1;
  }
  const std::string default_model = !options.snapshot.empty() || options.models.empty()
                                        ? std::string(serve::kDefaultModelName)
                                        : options.models.front().first;
  print_models(*registry);
  std::cerr << "noodled: serving (default model " << default_model << ")\n";

  serve::ServiceConfig service_config;
  service_config.max_batch = options.batch;
  service_config.cache_capacity = options.cache;
  service_config.workers = options.workers;
  service_config.lint = options.lint;
  service_config.disk_cache.directory = options.disk_cache_dir;
  service_config.disk_cache.max_bytes = options.disk_cache_bytes;
  serve::DetectionService service(registry, default_model, service_config);
  if (service.disk_cache() != nullptr) {
    const serve::DiskCacheStats disk = service.disk_cache_stats();
    std::cerr << "noodled: disk cache " << options.disk_cache_dir.string()
              << " loaded=" << disk.loaded << " corrupt=" << disk.corrupt
              << " temps_swept=" << disk.temps_swept
              << (disk.degraded ? " DEGRADED" : "") << "\n";
  }

  // The snapshot-store watcher: archives dropped into --store publish as new
  // model versions; validation failures are logged and the old generation
  // keeps serving. The first sweep runs before serving starts, so archives
  // already in the store are live for the first request line.
  std::unique_ptr<serve::SnapshotStore> store;
  if (!options.store_dir.empty()) {
    serve::SnapshotStoreConfig store_config;
    store_config.directory = options.store_dir;
    store_config.poll_interval = std::chrono::seconds(options.store_interval);
    store = std::make_unique<serve::SnapshotStore>(store_config, *registry,
                                                   &service.metrics());
    const std::size_t published = store->rescan_now();
    std::cerr << "noodled: snapshot store " << options.store_dir.string()
              << " published=" << published << "\n";
    store->start();
    std::signal(SIGHUP, noodled_hup_handler);
  }

  // The signal-watcher thread: periodic + signal-triggered + exit metrics
  // dumps, and SIGHUP-triggered store rescans. Handlers only raise flags;
  // this thread does the work (and for SIGTERM/SIGINT restores the default
  // disposition and re-raises, so the process still dies as expected).
  std::atomic<bool> watcher_stop{false};
  std::thread watcher_thread;
  if (!options.metrics_file.empty() || store != nullptr) {
    if (!options.metrics_file.empty()) {
      std::signal(SIGTERM, noodled_signal_handler);
      std::signal(SIGINT, noodled_signal_handler);
    }
    serve::SnapshotStore* store_ptr = store.get();
    watcher_thread = std::thread([&service, &watcher_stop, &options, store_ptr] {
      using clock = std::chrono::steady_clock;
      auto last_dump = clock::now();
      while (!watcher_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (g_hup != 0) {
          g_hup = 0;
          if (store_ptr != nullptr) {
            std::cerr << "noodled: SIGHUP — rescanning snapshot store\n";
            store_ptr->poke();
          }
        }
        if (g_signal != 0) {
          const int sig = static_cast<int>(g_signal);
          dump_metrics(service, options.metrics_file);
          std::signal(sig, SIG_DFL);
          std::raise(sig);
          return;
        }
        if (!options.metrics_file.empty() && options.metrics_interval > 0 &&
            clock::now() - last_dump >=
                std::chrono::seconds(options.metrics_interval)) {
          if (!dump_metrics(service, options.metrics_file)) {
            std::cerr << "noodled: metrics dump to "
                      << options.metrics_file.string() << " failed\n";
          }
          last_dump = clock::now();
        }
      }
    });
  }

  bool trace_on = options.trace;

  struct Pending {
    std::string path;
    std::string model;  ///< requested spec; verdict lines prefer served_by
    std::future<core::DetectionReport> verdict;
    std::string error;  // set when the file could not even be read
  };
  std::deque<Pending> pending;
  int failures = 0;

  // Verdicts stream out in input order as they complete, so a producer
  // that keeps the pipe open sees results live instead of at EOF.
  const auto print_front = [&] {
    Pending& request = pending.front();
    if (!request.error.empty()) {
      std::cout << "read-error\t-\t-\tmodel=" << request.model << "\t" << request.path
                << "\n";
      ++failures;
    } else {
      try {
        const core::DetectionReport report = request.verdict.get();
        std::cout << (report.predicted_label == data::kTrojanInfected
                          ? "TROJAN-INFECTED"
                          : "trojan-free")
                  << "\tp=" << util::format_fixed(report.probability, 3)
                  << "\tregion=" << region_text(report.region)
                  << "\tmodel=" << report.served_by;
        if (report.lint_ran) std::cout << "\t" << lint_column(report);
        if (trace_on) std::cout << "\t" << trace_column(report);
        std::cout << "\t" << request.path << "\n";
      } catch (const serve::RegistryError& e) {
        std::cout << "no-model\t-\t-\tmodel=" << request.model << "\t" << request.path
                  << "\n";
        std::cerr << "noodled: " << request.path << ": " << e.what() << "\n";
        ++failures;
      } catch (const std::exception& e) {
        std::cout << "parse-error\t-\t-\tmodel=" << request.model << "\t"
                  << request.path << "\n";
        std::cerr << "noodled: " << request.path << ": " << e.what() << "\n";
        ++failures;
      }
    }
    std::cout.flush();
    pending.pop_front();
  };
  const auto flush_ready = [&] {
    while (!pending.empty() &&
           (!pending.front().error.empty() ||
            pending.front().verdict.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready)) {
      print_front();
    }
  };

  // Blocking backpressure bound: never hold more in-flight requests than a
  // few dispatch rounds' worth, so arbitrarily long input stays bounded.
  const std::size_t max_pending =
      std::max<std::size_t>(256, options.batch * options.workers * 4);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;

    if (line.front() == '!') {  // control line
      std::istringstream control(line);
      std::string command;
      control >> command;
      if (command == "!reload") {
        std::string value;
        control >> value;
        const auto target = try_parse_name_path(value);
        if (!target) {
          std::cerr << "noodled: !reload wants NAME=PATH, got '" << value << "'\n";
          ++failures;
          continue;
        }
        try {
          const serve::ModelHandle handle = service.reload(target->first, target->second);
          std::cerr << "noodled: reloaded " << handle->label() << " from "
                    << handle->source().string() << "\n";
        } catch (const std::exception& e) {
          std::cerr << "noodled: reload failed: " << e.what() << "\n";
          ++failures;
        }
      } else if (command == "!models") {
        print_models(*registry);
      } else if (command == "!stats") {
        print_stats(service, store.get());
      } else if (command == "!cache") {
        std::string subject, value;
        control >> subject >> value;
        if (subject != "persist" || (value != "on" && value != "off")) {
          std::cerr << "noodled: !cache wants 'persist on|off', got '" << line
                    << "'\n";
          ++failures;
        } else if (service.disk_cache() == nullptr) {
          std::cerr << "noodled: no disk cache configured (--disk-cache DIR)\n";
          ++failures;
        } else {
          service.disk_cache()->set_enabled(value == "on");
          std::cerr << "noodled: cache persist " << value << "\n";
        }
      } else if (command == "!store") {
        std::string value;
        control >> value;
        if (value != "rescan") {
          std::cerr << "noodled: !store wants 'rescan', got '" << line << "'\n";
          ++failures;
        } else if (store == nullptr) {
          std::cerr << "noodled: no snapshot store configured (--store DIR)\n";
          ++failures;
        } else {
          const std::size_t published = store->rescan_now();
          std::cerr << "noodled: store rescan published=" << published << "\n";
        }
      } else if (command == "!metrics") {
        service.render_prometheus(std::cerr);
      } else if (command == "!drain") {
        while (!pending.empty()) print_front();
      } else if (command == "!trace") {
        std::string value;
        control >> value;
        if (value == "on" || value == "off") {
          trace_on = value == "on";
          std::cerr << "noodled: trace " << value << "\n";
        } else {
          std::cerr << "noodled: !trace wants on|off, got '" << value << "'\n";
          ++failures;
        }
      } else if (command == "!lint") {
        std::string value;
        control >> value;
        if (value == "on" || value == "off") {
          service.set_lint(value == "on");
          std::cerr << "noodled: lint " << value << "\n";
        } else {
          std::cerr << "noodled: !lint wants on|off, got '" << value << "'\n";
          ++failures;
        }
      } else {
        std::cerr << "noodled: unknown control line '" << line << "'\n";
        ++failures;
      }
      continue;
    }

    auto [model, path] = split_request(line, *registry, default_model);
    Pending request;
    request.path = path;
    request.model = model;
    std::ifstream file(path);
    if (!file) {
      request.error = "cannot open file";
    } else {
      std::ostringstream source;
      source << file.rdbuf();
      request.verdict = service.submit(model, source.str());
    }
    pending.push_back(std::move(request));
    flush_ready();
    while (pending.size() >= max_pending) print_front();
  }
  while (!pending.empty()) print_front();

  watcher_stop.store(true, std::memory_order_relaxed);
  if (watcher_thread.joinable()) watcher_thread.join();
  if (store != nullptr) store->stop();
  if (!options.metrics_file.empty()) {
    // Final dump at clean exit, so short-lived runs leave a complete
    // scrape behind even when no interval ever elapsed.
    if (!dump_metrics(service, options.metrics_file)) {
      std::cerr << "noodled: metrics dump to " << options.metrics_file.string()
                << " failed\n";
      ++failures;
    }
  }

  if (service.disk_cache() != nullptr) {
    // Orderly exit gets queued verdicts onto disk; a crash would drop them
    // (by design), but there is no reason to imitate one here.
    service.disk_cache()->flush();
  }
  if (options.stats) print_stats(service, store.get());
  return failures == 0 ? 0 : 1;
}
