// noodled — the detection daemon: fit-or-load a detector snapshot, then
// serve Trojan scans over newline-delimited Verilog file paths on stdin,
// one verdict line per request. The end-to-end proof that a fitted model
// is a reusable, servable artifact:
//
//   ./build/noodled --snapshot detector.noodle --quick   # first run: fits + saves
//   ls designs/*.v | ./build/noodled --snapshot detector.noodle --stats
//
// Options:
//   --snapshot FILE   load the detector from FILE if it exists; otherwise
//                     fit and save to FILE (train once, scan forever)
//   --refit           fit even when the snapshot exists, then overwrite it
//   --quick           small training config (CI smoke / demos; seconds not
//                     minutes)
//   --batch N         max requests coalesced per detector batch (default 16)
//   --cache N         LRU verdict-cache capacity (default 4096, 0 disables)
//   --workers N       service worker threads (default 1)
//   --seed N          training seed (default 42)
//   --stats           print service counters to stderr on exit
//   --demo N          write N demo circuits under ./noodled_demo/ and print
//                     their paths to stdout, then exit — composable with a
//                     serving run:  noodled --demo 6 | noodled --snapshot S
//
// Verdict line format (tab-separated):
//   TROJAN-INFECTED|trojan-free|parse-error|read-error  p=...  region=...  <path>

#include <algorithm>
#include <chrono>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "util/csv.h"

using namespace noodle;

namespace {

struct Options {
  std::filesystem::path snapshot;
  bool refit = false;
  bool quick = false;
  bool stats = false;
  std::size_t batch = 16;
  std::size_t cache = 4096;
  std::size_t workers = 1;
  std::uint64_t seed = 42;
  std::size_t demo = 0;
};

[[noreturn]] void usage(const char* argv0, const std::string& error = {}) {
  if (!error.empty()) std::cerr << "noodled: " << error << "\n";
  std::cerr << "usage: " << argv0
            << " [--snapshot FILE] [--refit] [--quick] [--batch N] [--cache N]"
               " [--workers N] [--seed N] [--stats] [--demo N]\n"
               "reads newline-delimited Verilog file paths from stdin\n";
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options options;
  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0], std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--snapshot") {
        options.snapshot = next_value(i);
      } else if (arg == "--refit") {
        options.refit = true;
      } else if (arg == "--quick") {
        options.quick = true;
      } else if (arg == "--stats") {
        options.stats = true;
      } else if (arg == "--batch") {
        options.batch = std::stoul(next_value(i));
      } else if (arg == "--cache") {
        options.cache = std::stoul(next_value(i));
      } else if (arg == "--workers") {
        options.workers = std::stoul(next_value(i));
      } else if (arg == "--seed") {
        options.seed = std::stoull(next_value(i));
      } else if (arg == "--demo") {
        options.demo = std::stoul(next_value(i));
      } else {
        usage(argv[0], "unknown option " + arg);
      }
    } catch (const std::exception&) {  // stoul: invalid_argument or out_of_range
      usage(argv[0], "bad numeric value for " + arg);
    }
  }
  if (options.batch == 0) usage(argv[0], "--batch must be positive");
  if (options.workers == 0) usage(argv[0], "--workers must be positive");
  return options;
}

core::DetectorConfig training_config(const Options& options) {
  core::DetectorConfig config;
  config.seed = options.seed;
  if (options.quick) {
    config.gan_target_per_class = 40;
    config.gan.epochs = 30;
    config.fusion.train.epochs = 12;
    config.fusion.train.validation_fraction = 0.0;
  }
  return config;
}

core::NoodleDetector fit_or_load(const Options& options) {
  const bool can_load = !options.snapshot.empty() && !options.refit &&
                        std::filesystem::exists(options.snapshot);
  if (can_load) {
    std::cerr << "noodled: loading snapshot " << options.snapshot.string() << "\n";
    return core::NoodleDetector::from_snapshot(options.snapshot);
  }
  std::cerr << "noodled: fitting detector (seed " << options.seed
            << (options.quick ? ", quick config" : "") << ")...\n";
  core::NoodleDetector detector(training_config(options));
  if (options.quick) {
    data::CorpusSpec spec;
    spec.design_count = 96;
    spec.infected_fraction = 0.35;
    spec.seed = options.seed;
    detector.fit(data::build_corpus(spec));
  } else {
    detector.fit_default();
  }
  if (!options.snapshot.empty()) {
    detector.save(options.snapshot);
    std::cerr << "noodled: saved snapshot to " << options.snapshot.string() << "\n";
  }
  return detector;
}

std::string region_text(const cp::PredictionRegion& region) {
  if (region.is_uncertain()) return "{TF,TI}";
  if (region.is_empty()) return "{}";
  return region.contains[1] ? "{TI}" : "{TF}";
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);

  if (options.demo > 0) {
    const std::filesystem::path dir = "noodled_demo";
    std::filesystem::create_directories(dir);
    data::CorpusSpec spec;
    spec.design_count = options.demo;
    spec.infected_fraction = 0.25;
    spec.seed = options.seed;
    for (const auto& circuit : data::build_corpus(spec)) {
      const auto path = dir / (circuit.name + (circuit.infected ? ".infected.v" : ".v"));
      std::ofstream out(path);
      out << circuit.verilog;
      std::cout << path.string() << "\n";
    }
    return 0;
  }

  core::NoodleDetector detector = [&] {
    try {
      return fit_or_load(options);
    } catch (const serve::SnapshotError& e) {
      std::cerr << "noodled: snapshot rejected: " << e.what()
                << " (use --refit to retrain)\n";
      std::exit(1);
    }
  }();
  std::cerr << "noodled: serving (fusion=" << detector.winning_fusion() << ")\n";

  serve::ServiceConfig service_config;
  service_config.max_batch = options.batch;
  service_config.cache_capacity = options.cache;
  service_config.workers = options.workers;
  serve::DetectionService service(std::move(detector), service_config);

  struct Pending {
    std::string path;
    std::future<core::DetectionReport> verdict;
    std::string error;  // set when the file could not even be read
  };
  std::deque<Pending> pending;
  int failures = 0;

  // Verdicts stream out in input order as they complete, so a producer
  // that keeps the pipe open sees results live instead of at EOF.
  const auto print_front = [&] {
    Pending& request = pending.front();
    if (!request.error.empty()) {
      std::cout << "read-error\t-\t-\t" << request.path << "\n";
      ++failures;
    } else {
      try {
        const core::DetectionReport report = request.verdict.get();
        std::cout << (report.predicted_label == data::kTrojanInfected
                          ? "TROJAN-INFECTED"
                          : "trojan-free")
                  << "\tp=" << util::format_fixed(report.probability, 3)
                  << "\tregion=" << region_text(report.region) << "\t" << request.path
                  << "\n";
      } catch (const std::exception& e) {
        std::cout << "parse-error\t-\t-\t" << request.path << "\n";
        std::cerr << "noodled: " << request.path << ": " << e.what() << "\n";
        ++failures;
      }
    }
    std::cout.flush();
    pending.pop_front();
  };
  const auto flush_ready = [&] {
    while (!pending.empty() &&
           (!pending.front().error.empty() ||
            pending.front().verdict.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready)) {
      print_front();
    }
  };

  // Blocking backpressure bound: never hold more in-flight requests than a
  // few dispatch rounds' worth, so arbitrarily long input stays bounded.
  const std::size_t max_pending =
      std::max<std::size_t>(256, options.batch * options.workers * 4);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    Pending request;
    request.path = line;
    std::ifstream file(line);
    if (!file) {
      request.error = "cannot open file";
    } else {
      std::ostringstream source;
      source << file.rdbuf();
      request.verdict = service.submit(source.str());
    }
    pending.push_back(std::move(request));
    flush_ready();
    while (pending.size() >= max_pending) print_front();
  }
  while (!pending.empty()) print_front();

  if (options.stats) {
    const serve::ServiceStats stats = service.stats();
    std::cerr << "noodled stats: requests=" << stats.requests
              << " cache_hits=" << stats.cache_hits << " scans=" << stats.scans
              << " batches=" << stats.batches
              << " max_batch=" << stats.max_batch_size
              << " parse_failures=" << stats.parse_failures
              << " avg_batch=" << util::format_fixed(stats.average_batch_size(), 2)
              << " avg_scan_us=" << util::format_fixed(stats.average_scan_micros(), 1)
              << "\n";
  }
  return failures == 0 ? 0 : 1;
}
