// noodle_client — the load-driving counterpart to `noodled --listen`: read
// request lines from stdin, spray them across N concurrent TCP connections,
// and print every response line to stdout. The CI socket smoke and the
// drain/overload acceptance checks are scripted with it:
//
//   ls designs/*.v | ./build/noodle_client --port 7077 --connections 8
//   ls designs/*.v | ./build/noodle_client --port 7077 --repeat 25
//
// Lines are dealt round-robin to connections; each connection sends its
// share --repeat times, then shutdown(SHUT_WR) and reads until the server
// closes. Responses print whole lines only (a reader thread reassembles
// socket chunks), so downstream awk always sees untorn records — and a
// torn final line, the signature of a server that died mid-write, is
// itself counted as a failure.
//
// Exit status: 0 iff every connection connected, wrote its full share, and
// drained to EOF with no error and no torn trailing line. The CONTENT of
// responses (BUSY, TIMEOUT, verdicts) is the caller's to judge; transport
// health is this tool's.

#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"

using namespace noodle;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = -1;
  std::size_t connections = 1;
  std::size_t repeat = 1;
};

[[noreturn]] void usage(const char* argv0, const std::string& error = {}) {
  if (!error.empty()) std::cerr << "noodle_client: " << error << "\n";
  std::cerr << "usage: " << argv0
            << " --port PORT [--host ADDR] [--connections N] [--repeat K]\n"
               "reads request lines from stdin, deals them round-robin across"
               " N concurrent connections (each sent K times), prints every"
               " response line to stdout; exit 0 iff transport stayed clean\n";
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options options;
  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0], std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--host") {
        options.host = next_value(i);
      } else if (arg == "--port") {
        const unsigned long port = std::stoul(next_value(i));
        if (port == 0 || port > 65535) usage(argv[0], "--port wants 1-65535");
        options.port = static_cast<int>(port);
      } else if (arg == "--connections") {
        options.connections = std::stoul(next_value(i));
      } else if (arg == "--repeat") {
        options.repeat = std::stoul(next_value(i));
      } else {
        usage(argv[0], "unknown option " + arg);
      }
    } catch (const std::exception&) {
      usage(argv[0], "bad numeric value for " + arg);
    }
  }
  if (options.port < 0) usage(argv[0], "--port is required");
  if (options.connections == 0) usage(argv[0], "--connections must be positive");
  if (options.repeat == 0) usage(argv[0], "--repeat must be positive");
  return options;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t put =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(put);
  }
  return true;
}

std::mutex g_out_mu;

/// Reads until EOF, printing complete lines only. Returns false on a read
/// error or a torn (newline-less) trailing fragment.
bool drain_responses(int fd) {
  std::string acc;
  char buf[16384];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      std::lock_guard<std::mutex> lock(g_out_mu);
      std::cerr << "noodle_client: recv: " << std::strerror(errno) << "\n";
      return false;
    }
    if (got == 0) break;
    acc.append(buf, static_cast<std::size_t>(got));
    std::size_t pos;
    while ((pos = acc.find('\n')) != std::string::npos) {
      std::lock_guard<std::mutex> lock(g_out_mu);
      std::cout.write(acc.data(), static_cast<std::streamsize>(pos + 1));
      std::cout.flush();
      acc.erase(0, pos + 1);
    }
  }
  if (!acc.empty()) {
    std::lock_guard<std::mutex> lock(g_out_mu);
    std::cerr << "noodle_client: torn trailing response line (" << acc.size()
              << " bytes, no newline)\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty()) lines.push_back(line);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  for (std::size_t c = 0; c < options.connections; ++c) {
    threads.emplace_back([&, c] {
      std::error_code ec;
      net::Fd fd = net::connect_tcp(options.host,
                                    static_cast<std::uint16_t>(options.port), ec);
      if (!fd) {
        std::lock_guard<std::mutex> lock(g_out_mu);
        std::cerr << "noodle_client: connect " << options.host << ":"
                  << options.port << ": " << ec.message() << "\n";
        ++failures;
        return;
      }
      // Reader runs concurrently with the writer: a pipelined burst must
      // never deadlock on the server's write-buffer backpressure.
      bool read_ok = false;
      std::thread reader([&] { read_ok = drain_responses(fd.get()); });
      bool write_ok = true;
      for (std::size_t r = 0; r < options.repeat && write_ok; ++r) {
        for (std::size_t i = c; i < lines.size(); i += options.connections) {
          if (!send_all(fd.get(), lines[i] + "\n")) {
            std::lock_guard<std::mutex> lock(g_out_mu);
            std::cerr << "noodle_client: send: " << std::strerror(errno) << "\n";
            write_ok = false;
            break;
          }
        }
      }
      ::shutdown(fd.get(), SHUT_WR);
      reader.join();
      if (!write_ok || !read_ok) ++failures;
    });
  }
  for (std::thread& t : threads) t.join();
  return failures.load() == 0 ? 0 : 1;
}
