// noodle-lint — standalone front-end for the lint:: static-analysis engine.
//
// Usage: noodle-lint [options] <file.v> [more.v ...]
//   --trojan-only   print only the T2xx trojan-signature findings
//   --quiet         print nothing; exit status carries the answer
//
// Exit status: 0 = clean, 1 = findings were emitted, 2 = a file failed to
// read or parse (remaining files are still processed).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "graph/builder.h"
#include "graph/netgraph.h"
#include "lint/lint.h"
#include "verilog/lexer.h"
#include "verilog/parser.h"

namespace {

void print_usage() {
  std::cerr << "usage: noodle-lint [--trojan-only] [--quiet] <file.v> [more.v ...]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noodle;

  bool trojan_only = false;
  bool quiet = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--trojan-only") {
      trojan_only = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "noodle-lint: unknown option '" << arg << "'\n";
      print_usage();
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    print_usage();
    return 2;
  }

  verilog::ParserWorkspace parser;
  graph::NetGraph netgraph(parser.symbols());
  graph::BuildScratch build_scratch;
  lint::LintWorkspace workspace;

  bool any_findings = false;
  bool any_errors = false;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << path << ": error: cannot open file\n";
      any_errors = true;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();

    try {
      const verilog::fast::SourceFile& file = parser.parse(source);
      for (const verilog::fast::Module& module : file.modules) {
        graph::build_netgraph(module, netgraph, build_scratch);
        for (const lint::Finding& finding :
             workspace.run(module, netgraph, *parser.symbols())) {
          if (trojan_only && !lint::rule_info(finding.rule).trojan_signature) {
            continue;
          }
          any_findings = true;
          if (!quiet) {
            std::cout << path << ": "
                      << lint::format_finding(
                             lint::to_owned(finding, *parser.symbols()))
                      << '\n';
          }
        }
      }
    } catch (const verilog::ParseError& e) {
      std::cerr << path << ':' << e.line() << ':' << e.column()
                << ": parse error: " << e.what() << '\n';
      any_errors = true;
    } catch (const verilog::LexError& e) {
      std::cerr << path << ": lex error: " << e.what() << '\n';
      any_errors = true;
    }
  }

  if (any_errors) return 2;
  return any_findings ? 1 : 0;
}
