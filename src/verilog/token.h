#pragma once
// Token definitions for the Verilog-2001 synthesizable-subset front end.
//
// Tokens are zero-copy: `text` is a std::string_view into either the source
// buffer being lexed (identifiers, numbers, string literals) or the static
// punctuation table below, so a token vector costs no per-token heap
// traffic. A token stream is therefore only valid while its source buffer
// is alive — the parser and feat::FeaturizeWorkspace both guarantee that.

#include <array>
#include <cstdint>
#include <string_view>

namespace noodle::verilog {

enum class TokenKind {
  End,          // end of input
  Identifier,   // foo, _bar, a$b
  Number,       // 42, 8'hFF, 4'b1010
  Keyword,      // module, endmodule, input, ...
  Punct,        // operators and punctuation, text holds the exact spelling
  SystemName,   // $display etc. (recognized, skipped by the parser)
};

/// Operators and punctuation, longest first so maximal munch works. Indexed
/// by PunctId - 1; the table order is part of the interned-symbol contract
/// (see preintern_verilog_symbols in fast_ast.h), so append, don't reorder.
inline constexpr std::array<std::string_view, 42> kPunctSpellings = {
    "<<<", ">>>", "===", "!==", "<=", ">=", "==", "!=", "&&", "||", "<<",
    ">>",  "~&",  "~|",  "~^",  "^~", "+",  "-",  "*",  "/",  "%",  "!",
    "~",   "&",   "|",   "^",   "<",  ">",  "=",  "?",  ":",  ";",  ",",
    ".",   "(",   ")",   "[",   "]",  "{",  "}",  "@",  "#",
};

/// 1-based index into kPunctSpellings; 0 means "not a table punct" (string
/// literals keep their spelling in text but carry no table id).
using PunctId = std::uint16_t;

/// Compile-time lookup so hot paths can name puncts as constants,
/// e.g. `kPunctEq == tok.punct` instead of comparing spellings.
consteval PunctId punct_id_of(std::string_view spelling) {
  for (std::size_t i = 0; i < kPunctSpellings.size(); ++i) {
    if (kPunctSpellings[i] == spelling) return static_cast<PunctId>(i + 1);
  }
  return 0;  // unreachable for valid spellings; callers assert non-zero
}

struct Token {
  TokenKind kind = TokenKind::End;
  std::string_view text;    // exact source spelling (or static punct table)
  std::uint64_t value = 0;  // numeric value for Number tokens
  int width = 0;            // declared bit width for sized Numbers, 0 if unsized
  int line = 0;             // 1-based source line, for diagnostics
  int column = 0;           // 1-based source column
  PunctId punct = 0;        // table id for Punct tokens (0 for string literals)

  bool is(TokenKind k) const noexcept { return kind == k; }
  bool is_keyword(std::string_view kw) const noexcept {
    return kind == TokenKind::Keyword && text == kw;
  }
  bool is_punct(std::string_view p) const noexcept {
    return kind == TokenKind::Punct && text == p;
  }
};

/// True if `word` is a reserved word of the supported subset. Dispatches on
/// (length, first char) before a single full comparison, so the hot loop
/// never builds a std::string and rarely compares more than once.
bool is_verilog_keyword(std::string_view word) noexcept;

}  // namespace noodle::verilog
