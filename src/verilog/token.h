#pragma once
// Token definitions for the Verilog-2001 synthesizable-subset front end.

#include <cstdint>
#include <string>

namespace noodle::verilog {

enum class TokenKind {
  End,          // end of input
  Identifier,   // foo, _bar, a$b
  Number,       // 42, 8'hFF, 4'b1010
  Keyword,      // module, endmodule, input, ...
  Punct,        // operators and punctuation, text holds the exact spelling
  SystemName,   // $display etc. (recognized, skipped by the parser)
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;       // exact source spelling
  std::uint64_t value = 0;  // numeric value for Number tokens
  int width = 0;            // declared bit width for sized Numbers, 0 if unsized
  int line = 0;             // 1-based source line, for diagnostics
  int column = 0;           // 1-based source column

  bool is(TokenKind k) const noexcept { return kind == k; }
  bool is_keyword(const std::string& kw) const {
    return kind == TokenKind::Keyword && text == kw;
  }
  bool is_punct(const std::string& p) const {
    return kind == TokenKind::Punct && text == p;
  }
};

/// True if `word` is a reserved word of the supported subset.
bool is_verilog_keyword(const std::string& word);

}  // namespace noodle::verilog
