#include "verilog/ast.h"

#include <utility>

namespace noodle::verilog {

// ---------------------------------------------------------------------------
// Expr
// ---------------------------------------------------------------------------

ExprPtr Expr::clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->value = value;
  copy->width = width;
  copy->name = name;
  copy->operands.reserve(operands.size());
  for (const auto& op : operands) copy->operands.push_back(op ? op->clone() : nullptr);
  return copy;
}

ExprPtr Expr::number(std::uint64_t value, int width) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Number;
  e->value = value;
  e->width = width;
  return e;
}

ExprPtr Expr::ident(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Identifier;
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::unary(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Unary;
  e->name = std::move(op);
  e->operands.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->name = std::move(op);
  e->operands.push_back(std::move(lhs));
  e->operands.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::ternary(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Ternary;
  e->operands.push_back(std::move(cond));
  e->operands.push_back(std::move(then_e));
  e->operands.push_back(std::move(else_e));
  return e;
}

ExprPtr Expr::index(ExprPtr base, ExprPtr idx) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Index;
  e->operands.push_back(std::move(base));
  e->operands.push_back(std::move(idx));
  return e;
}

ExprPtr Expr::range(ExprPtr base, ExprPtr msb, ExprPtr lsb) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Range;
  e->operands.push_back(std::move(base));
  e->operands.push_back(std::move(msb));
  e->operands.push_back(std::move(lsb));
  return e;
}

ExprPtr Expr::concat(std::vector<ExprPtr> parts) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Concat;
  e->operands = std::move(parts);
  return e;
}

ExprPtr Expr::replicate(ExprPtr count, ExprPtr part) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Replicate;
  e->operands.push_back(std::move(count));
  e->operands.push_back(std::move(part));
  return e;
}

// ---------------------------------------------------------------------------
// Stmt
// ---------------------------------------------------------------------------

CaseItem CaseItem::clone() const {
  CaseItem copy;
  copy.labels.reserve(labels.size());
  for (const auto& l : labels) copy.labels.push_back(l ? l->clone() : nullptr);
  copy.body = body ? body->clone() : nullptr;
  return copy;
}

StmtPtr Stmt::clone() const {
  auto copy = std::make_unique<Stmt>();
  copy->kind = kind;
  copy->cond = cond ? cond->clone() : nullptr;
  copy->then_branch = then_branch ? then_branch->clone() : nullptr;
  copy->else_branch = else_branch ? else_branch->clone() : nullptr;
  copy->body.reserve(body.size());
  for (const auto& s : body) copy->body.push_back(s ? s->clone() : nullptr);
  copy->case_items.reserve(case_items.size());
  for (const auto& item : case_items) copy->case_items.push_back(item.clone());
  copy->lhs = lhs ? lhs->clone() : nullptr;
  copy->rhs = rhs ? rhs->clone() : nullptr;
  copy->for_init = for_init ? for_init->clone() : nullptr;
  copy->for_step = for_step ? for_step->clone() : nullptr;
  return copy;
}

StmtPtr Stmt::block(std::vector<StmtPtr> stmts) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Block;
  s->body = std::move(stmts);
  return s;
}

StmtPtr Stmt::if_stmt(ExprPtr cond, StmtPtr then_branch, StmtPtr else_branch) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::If;
  s->cond = std::move(cond);
  s->then_branch = std::move(then_branch);
  s->else_branch = std::move(else_branch);
  return s;
}

StmtPtr Stmt::case_stmt(ExprPtr subject, std::vector<CaseItem> items) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Case;
  s->cond = std::move(subject);
  s->case_items = std::move(items);
  return s;
}

StmtPtr Stmt::for_stmt(StmtPtr init, ExprPtr cond, StmtPtr step, StmtPtr body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::For;
  s->for_init = std::move(init);
  s->cond = std::move(cond);
  s->for_step = std::move(step);
  s->body.push_back(std::move(body));
  return s;
}

StmtPtr Stmt::blocking(ExprPtr lhs, ExprPtr rhs) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::BlockingAssign;
  s->lhs = std::move(lhs);
  s->rhs = std::move(rhs);
  return s;
}

StmtPtr Stmt::non_blocking(ExprPtr lhs, ExprPtr rhs) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::NonBlockingAssign;
  s->lhs = std::move(lhs);
  s->rhs = std::move(rhs);
  return s;
}

StmtPtr Stmt::null_stmt() { return std::make_unique<Stmt>(); }

// ---------------------------------------------------------------------------
// Module items
// ---------------------------------------------------------------------------

NetDecl NetDecl::clone() const {
  NetDecl copy;
  copy.kind = kind;
  copy.name = name;
  copy.range = range;
  copy.init = init ? init->clone() : nullptr;
  return copy;
}

ParamDecl ParamDecl::clone() const {
  ParamDecl copy;
  copy.local = local;
  copy.name = name;
  copy.value = value ? value->clone() : nullptr;
  return copy;
}

ContAssign ContAssign::clone() const {
  ContAssign copy;
  copy.lhs = lhs ? lhs->clone() : nullptr;
  copy.rhs = rhs ? rhs->clone() : nullptr;
  return copy;
}

AlwaysBlock AlwaysBlock::clone() const {
  AlwaysBlock copy;
  copy.star = star;
  copy.sensitivity = sensitivity;
  copy.body = body ? body->clone() : nullptr;
  return copy;
}

bool AlwaysBlock::is_sequential() const noexcept {
  for (const auto& item : sensitivity) {
    if (item.edge != EdgeKind::None) return true;
  }
  return false;
}

InitialBlock InitialBlock::clone() const {
  InitialBlock copy;
  copy.body = body ? body->clone() : nullptr;
  return copy;
}

Instance Instance::clone() const {
  Instance copy;
  copy.module_name = module_name;
  copy.instance_name = instance_name;
  copy.connections.reserve(connections.size());
  for (const auto& conn : connections) {
    copy.connections.push_back(
        PortConnection{conn.port, conn.actual ? conn.actual->clone() : nullptr});
  }
  return copy;
}

Module Module::clone() const {
  Module copy;
  copy.name = name;
  copy.params.reserve(params.size());
  for (const auto& p : params) copy.params.push_back(p.clone());
  copy.ports = ports;
  copy.nets.reserve(nets.size());
  for (const auto& n : nets) copy.nets.push_back(n.clone());
  copy.assigns.reserve(assigns.size());
  for (const auto& a : assigns) copy.assigns.push_back(a.clone());
  copy.always_blocks.reserve(always_blocks.size());
  for (const auto& b : always_blocks) copy.always_blocks.push_back(b.clone());
  copy.initial_blocks.reserve(initial_blocks.size());
  for (const auto& b : initial_blocks) copy.initial_blocks.push_back(b.clone());
  copy.instances.reserve(instances.size());
  for (const auto& inst : instances) copy.instances.push_back(inst.clone());
  return copy;
}

const PortDecl* Module::find_port(const std::string& port_name) const {
  for (const auto& p : ports) {
    if (p.name == port_name) return &p;
  }
  return nullptr;
}

const NetDecl* Module::find_net(const std::string& net_name) const {
  for (const auto& n : nets) {
    if (n.name == net_name) return &n;
  }
  return nullptr;
}

int Module::width_of(const std::string& signal) const {
  if (const PortDecl* p = find_port(signal)) return p->range ? p->range->width() : 1;
  if (const NetDecl* n = find_net(signal)) return n->range ? n->range->width() : 1;
  return 0;
}

SourceFile SourceFile::clone() const {
  SourceFile copy;
  copy.modules.reserve(modules.size());
  for (const auto& m : modules) copy.modules.push_back(m.clone());
  return copy;
}

const Module* SourceFile::find_module(const std::string& module_name) const {
  for (const auto& m : modules) {
    if (m.name == module_name) return &m;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Traversal
// ---------------------------------------------------------------------------

void for_each_expr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const auto& child : e.operands) {
    if (child) for_each_expr(*child, fn);
  }
}

void for_each_stmt(const Stmt& s, const std::function<void(const Stmt&)>& fn) {
  fn(s);
  if (s.then_branch) for_each_stmt(*s.then_branch, fn);
  if (s.else_branch) for_each_stmt(*s.else_branch, fn);
  for (const auto& child : s.body) {
    if (child) for_each_stmt(*child, fn);
  }
  for (const auto& item : s.case_items) {
    if (item.body) for_each_stmt(*item.body, fn);
  }
  if (s.for_init) for_each_stmt(*s.for_init, fn);
  if (s.for_step) for_each_stmt(*s.for_step, fn);
}

namespace {

void visit_stmt_exprs(const Stmt& s, const std::function<void(const Expr&)>& fn) {
  if (s.cond) for_each_expr(*s.cond, fn);
  if (s.lhs) for_each_expr(*s.lhs, fn);
  if (s.rhs) for_each_expr(*s.rhs, fn);
  for (const auto& item : s.case_items) {
    for (const auto& label : item.labels) {
      if (label) for_each_expr(*label, fn);
    }
  }
}

}  // namespace

void for_each_module_expr(const Module& m, const std::function<void(const Expr&)>& fn) {
  for (const auto& p : m.params) {
    if (p.value) for_each_expr(*p.value, fn);
  }
  for (const auto& n : m.nets) {
    if (n.init) for_each_expr(*n.init, fn);
  }
  for (const auto& a : m.assigns) {
    if (a.lhs) for_each_expr(*a.lhs, fn);
    if (a.rhs) for_each_expr(*a.rhs, fn);
  }
  for_each_module_stmt(m, [&fn](const Stmt& s) { visit_stmt_exprs(s, fn); });
  for (const auto& inst : m.instances) {
    for (const auto& conn : inst.connections) {
      if (conn.actual) for_each_expr(*conn.actual, fn);
    }
  }
}

void for_each_module_stmt(const Module& m, const std::function<void(const Stmt&)>& fn) {
  for (const auto& b : m.always_blocks) {
    if (b.body) for_each_stmt(*b.body, fn);
  }
  for (const auto& b : m.initial_blocks) {
    if (b.body) for_each_stmt(*b.body, fn);
  }
}

void collect_identifiers(const Expr& e, std::vector<std::string>& out) {
  for_each_expr(e, [&out](const Expr& node) {
    if (node.kind == ExprKind::Identifier) out.push_back(node.name);
  });
}

}  // namespace noodle::verilog
