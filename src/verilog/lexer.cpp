#include "verilog/lexer.h"

#include <array>
#include <cstdint>
#include <string>

namespace noodle::verilog {

namespace {

// Character classes as one 256-byte table instead of <cctype> calls: the
// locale-aware is*() functions cost an indirect load per character, and the
// lexer asks several times per byte. The table reproduces the "C"-locale
// answers exactly (bytes >= 128 are in no class), so token boundaries are
// unchanged.
enum : std::uint8_t {
  kClassSpace = 1,
  kClassDigit = 2,
  kClassIdentStart = 4,
  kClassIdentChar = 8,
};

constexpr std::array<std::uint8_t, 256> kCharClass = [] {
  std::array<std::uint8_t, 256> table{};
  for (int c = 0; c < 256; ++c) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r') {
      table[c] |= kClassSpace;
    }
    if (digit) table[c] |= kClassDigit;
    if (alpha || c == '_') table[c] |= kClassIdentStart;
    if (alpha || digit || c == '_' || c == '$') table[c] |= kClassIdentChar;
  }
  return table;
}();

constexpr std::uint8_t char_class(char c) noexcept {
  return kCharClass[static_cast<unsigned char>(c)];
}

// Punct spellings grouped by first byte (stable counting sort), so matching
// probes only the handful of spellings that can possibly start here instead
// of walking all 42. Within a group the original kPunctSpellings order is
// preserved, which is what implements maximal munch ("<=" before "<") — the
// match result is identical to the old linear scan, just without the misses.
struct PunctDispatch {
  std::array<std::uint8_t, 257> begin{};  // per first byte: offset into order
  std::array<std::uint8_t, kPunctSpellings.size()> order{};
};

constexpr PunctDispatch kPunctDispatch = [] {
  PunctDispatch d{};
  std::array<std::uint8_t, 256> count{};
  for (const std::string_view spelling : kPunctSpellings) {
    ++count[static_cast<unsigned char>(spelling[0])];
  }
  std::uint8_t total = 0;
  for (int c = 0; c < 256; ++c) {
    d.begin[c] = total;
    total = static_cast<std::uint8_t>(total + count[c]);
  }
  d.begin[256] = total;
  std::array<std::uint8_t, 256> next = {};
  for (int c = 0; c < 256; ++c) next[c] = d.begin[c];
  for (std::size_t p = 0; p < kPunctSpellings.size(); ++p) {
    d.order[next[static_cast<unsigned char>(kPunctSpellings[p][0])]++] =
        static_cast<std::uint8_t>(p);
  }
  return d;
}();

int base_digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool done() const noexcept { return pos_ >= text_.size(); }
  char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  bool consume(std::string_view expected) noexcept {
    // Punct spellings never contain newlines, so line/column tracking is a
    // plain column bump — no per-character advance, no temporary strings.
    if (text_.compare(pos_, expected.size(), expected) != 0) return false;
    pos_ += expected.size();
    column_ += static_cast<int>(expected.size());
    return true;
  }

  /// Consumes the maximal run of characters in `mask`'s classes. None of
  /// the classes include '\n', so line tracking reduces to one column bump
  /// for the whole run — the per-character advance() and its bounds check
  /// disappear from the identifier/number hot paths.
  void consume_run(std::uint8_t mask) noexcept {
    std::size_t p = pos_;
    while (p < text_.size() &&
           (kCharClass[static_cast<unsigned char>(text_[p])] & mask) != 0) {
      ++p;
    }
    column_ += static_cast<int>(p - pos_);
    pos_ = p;
  }

  std::size_t pos() const noexcept { return pos_; }
  std::string_view slice(std::size_t begin) const noexcept {
    return text_.substr(begin, pos_ - begin);
  }

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

LexError::LexError(const std::string& message, int line, int column)
    : std::runtime_error(message + " at line " + std::to_string(line) + ", column " +
                         std::to_string(column)),
      line_(line),
      column_(column) {}

bool is_verilog_keyword(std::string_view word) noexcept {
  // Poor man's perfect hash: switch on length, then on a discriminating
  // character, with one final full comparison. Every reserved word of the
  // subset appears exactly once.
  switch (word.size()) {
    case 2:
      return word == "if" || word == "or";
    case 3:
      switch (word[0]) {
        case 'a': return word == "and";
        case 'b': return word == "buf";
        case 'e': return word == "end";
        case 'f': return word == "for";
        case 'n': return word == "not" || word == "nor";
        case 'r': return word == "reg";
        case 'x': return word == "xor";
        default: return false;
      }
    case 4:
      switch (word[0]) {
        case 'c': return word == "case";
        case 'e': return word == "else";
        case 'n': return word == "nand";
        case 'w': return word == "wire";
        case 'x': return word == "xnor";
        default: return false;
      }
    case 5:
      switch (word[0]) {
        case 'b': return word == "begin";
        case 'c': return word == "casez" || word == "casex";
        case 'i': return word == "input" || word == "inout";
        default: return false;
      }
    case 6:
      switch (word[0]) {
        case 'a': return word == "always" || word == "assign";
        case 'm': return word == "module";
        case 'o': return word == "output";
        case 's': return word == "signed";
        default: return false;
      }
    case 7:
      switch (word[0]) {
        case 'd': return word == "default";
        case 'e': return word == "endcase";
        case 'i': return word == "integer" || word == "initial";
        case 'n': return word == "negedge";
        case 'p': return word == "posedge";
        default: return false;
      }
    case 8:
      return word == "function" || word == "generate";
    case 9:
      return word == "endmodule" || word == "parameter";
    case 10:
      return word == "localparam";
    case 11:
      return word == "endfunction" || word == "endgenerate";
    default:
      return false;
  }
}

void lex_into(std::string_view source, std::vector<Token>& tokens) {
  tokens.clear();
  Cursor cur(source);

  const auto skip_trivia = [&] {
    while (!cur.done()) {
      const char c = cur.peek();
      if ((char_class(c) & kClassSpace) != 0) {
        cur.advance();
      } else if (c == '/' && cur.peek(1) == '/') {
        while (!cur.done() && cur.peek() != '\n') cur.advance();
      } else if (c == '/' && cur.peek(1) == '*') {
        const int line = cur.line(), col = cur.column();
        cur.advance();
        cur.advance();
        while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/')) cur.advance();
        if (cur.done()) throw LexError("unterminated block comment", line, col);
        cur.advance();
        cur.advance();
      } else if (c == '`') {
        // Compiler directives (`timescale, `define) — skip to end of line.
        while (!cur.done() && cur.peek() != '\n') cur.advance();
      } else {
        return;
      }
    }
  };

  const auto lex_based_number = [&](Token& tok, std::uint64_t size_prefix, bool sized) {
    // cur points at the apostrophe.
    cur.advance();  // '
    if (cur.peek() == 's' || cur.peek() == 'S') cur.advance();
    const char base_char = static_cast<char>(
        std::tolower(static_cast<unsigned char>(cur.advance())));
    int base = 0;
    switch (base_char) {
      case 'b': base = 2; break;
      case 'o': base = 8; break;
      case 'd': base = 10; break;
      case 'h': base = 16; break;
      default:
        throw LexError(std::string("invalid number base '") + base_char + "'", tok.line,
                       tok.column);
    }
    std::uint64_t value = 0;
    bool any_digit = false;
    while (!cur.done()) {
      const char c = cur.peek();
      if (c == '_') {
        cur.advance();
        continue;
      }
      const int digit = base_digit_value(c);
      if (digit < 0 || digit >= base) {
        // x/z digits are outside the supported subset: treat as error so the
        // corpus generator can never silently emit 4-state literals.
        if (c == 'x' || c == 'z' || c == 'X' || c == 'Z')
          throw LexError("4-state literals (x/z) are not supported", tok.line, tok.column);
        break;
      }
      value = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
      any_digit = true;
      cur.advance();
    }
    if (!any_digit) throw LexError("number literal missing digits", tok.line, tok.column);
    tok.kind = TokenKind::Number;
    tok.value = value;
    tok.width = sized ? static_cast<int>(size_prefix) : 0;
  };

  while (true) {
    skip_trivia();
    Token tok;
    tok.line = cur.line();
    tok.column = cur.column();
    const std::size_t start = cur.pos();
    if (cur.done()) {
      tok.kind = TokenKind::End;
      tokens.push_back(tok);
      return;
    }

    const char c = cur.peek();
    if ((char_class(c) & kClassIdentStart) != 0) {
      cur.consume_run(kClassIdentChar);
      const std::string_view word = cur.slice(start);
      tok.text = word;
      tok.kind = is_verilog_keyword(word) ? TokenKind::Keyword : TokenKind::Identifier;
      tokens.push_back(tok);
      continue;
    }

    if (c == '$') {
      cur.advance();
      cur.consume_run(kClassIdentChar);
      tok.text = cur.slice(start);
      tok.kind = TokenKind::SystemName;
      tokens.push_back(tok);
      continue;
    }

    if ((char_class(c) & kClassDigit) != 0) {
      std::uint64_t value = 0;
      while (!cur.done() &&
             ((char_class(cur.peek()) & kClassDigit) != 0 || cur.peek() == '_')) {
        const char d = cur.advance();
        if (d == '_') continue;
        value = value * 10 + static_cast<std::uint64_t>(d - '0');
      }
      if (cur.peek() == '\'') {
        lex_based_number(tok, value, /*sized=*/true);
      } else {
        tok.kind = TokenKind::Number;
        tok.value = value;
        tok.width = 0;
      }
      tok.text = cur.slice(start);  // full literal spelling, for diagnostics
      tokens.push_back(tok);
      continue;
    }

    if (c == '\'') {
      lex_based_number(tok, 0, /*sized=*/false);
      tok.text = cur.slice(start);
      tokens.push_back(tok);
      continue;
    }

    if (c == '"') {
      // String literals appear only in $display arguments; lex and discard
      // content, representing them as a SystemName-like punct token.
      cur.advance();
      while (!cur.done() && cur.peek() != '"') cur.advance();
      if (cur.done()) throw LexError("unterminated string literal", tok.line, tok.column);
      cur.advance();
      tok.kind = TokenKind::Punct;
      tok.text = cur.slice(start);  // includes both quotes
      tokens.push_back(tok);
      continue;
    }

    bool matched = false;
    const unsigned char first = static_cast<unsigned char>(c);
    for (std::size_t s = kPunctDispatch.begin[first]; s < kPunctDispatch.begin[first + 1];
         ++s) {
      const std::size_t p = kPunctDispatch.order[s];
      if (cur.consume(kPunctSpellings[p])) {
        tok.kind = TokenKind::Punct;
        tok.text = kPunctSpellings[p];  // static storage — outlives any source
        tok.punct = static_cast<PunctId>(p + 1);
        tokens.push_back(tok);
        matched = true;
        break;
      }
    }
    if (!matched) {
      throw LexError(std::string("unexpected character '") + c + "'", tok.line, tok.column);
    }
  }
}

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  lex_into(source, tokens);
  return tokens;
}

}  // namespace noodle::verilog
