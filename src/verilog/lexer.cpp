#include "verilog/lexer.h"

#include <array>
#include <cctype>
#include <string>

namespace noodle::verilog {

namespace {

constexpr std::array kKeywords = {
    "module",   "endmodule", "input",  "output", "inout",     "wire",
    "reg",      "assign",    "always", "initial", "begin",    "end",
    "if",       "else",      "case",   "casez",  "casex",     "endcase",
    "default",  "for",       "posedge", "negedge", "or",      "parameter",
    "localparam", "integer", "signed", "and",    "not",       "nand",
    "nor",      "xor",       "xnor",   "buf",    "function",  "endfunction",
    "generate", "endgenerate",
};

// Multi-character punctuation, longest first so maximal munch works.
constexpr std::array kPuncts = {
    "<<<", ">>>", "===", "!==", "<=", ">=", "==", "!=", "&&", "||", "<<",
    ">>",  "~&",  "~|",  "~^",  "^~", "+",  "-",  "*",  "/",  "%",  "!",
    "~",   "&",   "|",   "^",   "<",  ">",  "=",  "?",  ":",  ";",  ",",
    ".",   "(",   ")",   "[",   "]",  "{",  "}",  "@",  "#",
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

int base_digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool done() const noexcept { return pos_ >= text_.size(); }
  char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  bool consume(std::string_view expected) noexcept {
    if (text_.substr(pos_).substr(0, expected.size()) != expected) return false;
    for (std::size_t i = 0; i < expected.size(); ++i) advance();
    return true;
  }

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

LexError::LexError(const std::string& message, int line, int column)
    : std::runtime_error(message + " at line " + std::to_string(line) + ", column " +
                         std::to_string(column)),
      line_(line),
      column_(column) {}

bool is_verilog_keyword(const std::string& word) {
  for (const char* kw : kKeywords) {
    if (word == kw) return true;
  }
  return false;
}

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  const auto skip_trivia = [&] {
    while (!cur.done()) {
      const char c = cur.peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        cur.advance();
      } else if (c == '/' && cur.peek(1) == '/') {
        while (!cur.done() && cur.peek() != '\n') cur.advance();
      } else if (c == '/' && cur.peek(1) == '*') {
        const int line = cur.line(), col = cur.column();
        cur.advance();
        cur.advance();
        while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/')) cur.advance();
        if (cur.done()) throw LexError("unterminated block comment", line, col);
        cur.advance();
        cur.advance();
      } else if (c == '`') {
        // Compiler directives (`timescale, `define) — skip to end of line.
        while (!cur.done() && cur.peek() != '\n') cur.advance();
      } else {
        return;
      }
    }
  };

  const auto lex_based_number = [&](Token& tok, std::uint64_t size_prefix, bool sized) {
    // cur points at the apostrophe.
    cur.advance();  // '
    if (cur.peek() == 's' || cur.peek() == 'S') cur.advance();
    const char base_char = static_cast<char>(
        std::tolower(static_cast<unsigned char>(cur.advance())));
    int base = 0;
    switch (base_char) {
      case 'b': base = 2; break;
      case 'o': base = 8; break;
      case 'd': base = 10; break;
      case 'h': base = 16; break;
      default:
        throw LexError(std::string("invalid number base '") + base_char + "'", tok.line,
                       tok.column);
    }
    std::uint64_t value = 0;
    bool any_digit = false;
    std::string spelling;
    while (!cur.done()) {
      const char c = cur.peek();
      if (c == '_') {
        cur.advance();
        continue;
      }
      const int digit = base_digit_value(c);
      if (digit < 0 || digit >= base) {
        // x/z digits are outside the supported subset: treat as error so the
        // corpus generator can never silently emit 4-state literals.
        if (c == 'x' || c == 'z' || c == 'X' || c == 'Z')
          throw LexError("4-state literals (x/z) are not supported", tok.line, tok.column);
        break;
      }
      value = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
      spelling += c;
      any_digit = true;
      cur.advance();
    }
    if (!any_digit) throw LexError("number literal missing digits", tok.line, tok.column);
    tok.kind = TokenKind::Number;
    tok.value = value;
    tok.width = sized ? static_cast<int>(size_prefix) : 0;
  };

  while (true) {
    skip_trivia();
    Token tok;
    tok.line = cur.line();
    tok.column = cur.column();
    if (cur.done()) {
      tok.kind = TokenKind::End;
      tokens.push_back(tok);
      return tokens;
    }

    const char c = cur.peek();
    if (is_ident_start(c)) {
      std::string word;
      while (!cur.done() && is_ident_char(cur.peek())) word += cur.advance();
      tok.text = word;
      tok.kind = is_verilog_keyword(word) ? TokenKind::Keyword : TokenKind::Identifier;
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '$') {
      std::string word;
      word += cur.advance();
      while (!cur.done() && is_ident_char(cur.peek())) word += cur.advance();
      tok.text = word;
      tok.kind = TokenKind::SystemName;
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t value = 0;
      std::string digits;
      while (!cur.done() &&
             (std::isdigit(static_cast<unsigned char>(cur.peek())) || cur.peek() == '_')) {
        const char d = cur.advance();
        if (d == '_') continue;
        digits += d;
        value = value * 10 + static_cast<std::uint64_t>(d - '0');
      }
      if (cur.peek() == '\'') {
        lex_based_number(tok, value, /*sized=*/true);
        tok.text = digits;  // keep the size prefix spelling for diagnostics
      } else {
        tok.kind = TokenKind::Number;
        tok.value = value;
        tok.width = 0;
        tok.text = digits;
      }
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      lex_based_number(tok, 0, /*sized=*/false);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '"') {
      // String literals appear only in $display arguments; lex and discard
      // content, representing them as a SystemName-like punct token.
      cur.advance();
      std::string body;
      while (!cur.done() && cur.peek() != '"') body += cur.advance();
      if (cur.done()) throw LexError("unterminated string literal", tok.line, tok.column);
      cur.advance();
      tok.kind = TokenKind::Punct;
      tok.text = "\"" + body + "\"";
      tokens.push_back(std::move(tok));
      continue;
    }

    bool matched = false;
    for (const char* p : kPuncts) {
      if (cur.consume(p)) {
        tok.kind = TokenKind::Punct;
        tok.text = p;
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (!matched) {
      throw LexError(std::string("unexpected character '") + c + "'", tok.line, tok.column);
    }
  }
}

}  // namespace noodle::verilog
