#pragma once
// Arena AST — the allocation-free mirror of ast.h used by the featurization
// hot path.
//
// Nodes live in a util::Arena owned by a verilog::ParserWorkspace: child
// lists are arena-resident spans, identifiers are u32 symbols interned once
// into the workspace's SymbolTable, and operator spellings are PunctIds
// into the static punct table — so a steady-state parse touches the heap
// zero times and the whole tree is dropped by one Arena::reset().
//
// The mutable owned AST in ast.h remains the tree for everything that
// *rewrites* RTL (trojan::TrojanInserter, data::designgen, the printer);
// parse_source()/parse_module() convert this arena form into it. Field
// names deliberately match ast.h so the feature extractors can be written
// once as templates over either representation.

#include <cstdint>
#include <optional>
#include <span>

#include "util/intern.h"
#include "verilog/ast.h"
#include "verilog/symbols.h"

namespace noodle::verilog::fast {

using util::Symbol;

/// 1-based source position of the token that started a node's production,
/// threaded through from the lexer so downstream analyses (lint) can point
/// diagnostics at the offending RTL. {0, 0} means "position unknown".
struct SrcLoc {
  int line = 0;
  int column = 0;
};

struct Expr {
  ExprKind kind = ExprKind::Number;
  PunctId op = 0;       // operator spelling for Unary/Binary
  int width = 0;        // Number payload
  std::uint64_t value = 0;
  Symbol name = util::kNoSymbol;  // Identifier payload
  SrcLoc loc;
  std::span<const Expr* const> operands{};  // layout by kind, as in ast.h
};

struct Stmt;

struct CaseItem {
  std::span<const Expr* const> labels{};  // empty => default
  const Stmt* body = nullptr;
};

struct Stmt {
  StmtKind kind = StmtKind::Null;
  SrcLoc loc;

  const Expr* cond = nullptr;         // If condition / Case subject / For condition
  const Stmt* then_branch = nullptr;  // If
  const Stmt* else_branch = nullptr;  // If (may be null)
  std::span<const Stmt* const> body{};  // Block children / For body (single element)
  std::span<const CaseItem> case_items{};

  const Expr* lhs = nullptr;  // assignments
  const Expr* rhs = nullptr;
  const Stmt* for_init = nullptr;
  const Stmt* for_step = nullptr;
};

struct PortDecl {
  PortDir dir = PortDir::Input;
  NetKind net = NetKind::Wire;
  Symbol name = util::kNoSymbol;
  std::optional<BitRange> range;
  SrcLoc loc;
};

struct NetDecl {
  NetKind kind = NetKind::Wire;
  Symbol name = util::kNoSymbol;
  std::optional<BitRange> range;
  const Expr* init = nullptr;
  SrcLoc loc;
};

struct ParamDecl {
  bool local = false;
  Symbol name = util::kNoSymbol;
  const Expr* value = nullptr;
};

struct ContAssign {
  const Expr* lhs = nullptr;
  const Expr* rhs = nullptr;
  SrcLoc loc;
};

struct SensItem {
  EdgeKind edge = EdgeKind::None;
  Symbol signal = util::kNoSymbol;
};

struct AlwaysBlock {
  bool star = false;
  SrcLoc loc;
  std::span<const SensItem> sensitivity{};
  const Stmt* body = nullptr;

  bool is_sequential() const noexcept {
    for (const SensItem& item : sensitivity) {
      if (item.edge != EdgeKind::None) return true;
    }
    return false;
  }
};

struct InitialBlock {
  const Stmt* body = nullptr;
};

struct PortConnection {
  Symbol port = util::kNoSymbol;  // kNoSymbol => positional connection
  const Expr* actual = nullptr;   // null for unconnected .port()
};

struct Instance {
  Symbol module_name = util::kNoSymbol;
  SrcLoc loc;
  Symbol instance_name = util::kNoSymbol;
  std::span<const PortConnection> connections{};
};

struct Module {
  Symbol name = util::kNoSymbol;
  SrcLoc loc;
  std::span<const ParamDecl> params{};
  std::span<const PortDecl> ports{};
  std::span<const NetDecl> nets{};
  std::span<const ContAssign> assigns{};
  std::span<const AlwaysBlock> always_blocks{};
  std::span<const InitialBlock> initial_blocks{};
  std::span<const Instance> instances{};
};

struct SourceFile {
  std::span<const Module> modules{};
};

}  // namespace noodle::verilog::fast
