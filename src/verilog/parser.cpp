#include "verilog/parser.h"

#include <algorithm>
#include <utility>

#include "verilog/lexer.h"

namespace noodle::verilog {

ParseError::ParseError(const std::string& message, int line, int column)
    : std::runtime_error(message + " at line " + std::to_string(line) + ", column " +
                         std::to_string(column)),
      line_(line),
      column_(column) {}

namespace {

// ---------------------------------------------------------------------------
// Operator tables — generated at compile time from the punct spellings so the
// hot path dispatches on PunctId while the semantics stay written as the
// original per-spelling rules.
// ---------------------------------------------------------------------------

/// Binding powers for binary operators, higher binds tighter. Mirrors the
/// Verilog-2001 precedence table for the supported operator set.
constexpr int binary_precedence_of(std::string_view op) {
  if (op == "||") return 1;
  if (op == "&&") return 2;
  if (op == "|") return 3;
  if (op == "^" || op == "~^" || op == "^~") return 4;
  if (op == "&") return 5;
  if (op == "==" || op == "!=" || op == "===" || op == "!==") return 6;
  if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
  if (op == "<<" || op == ">>" || op == "<<<" || op == ">>>") return 8;
  if (op == "+" || op == "-") return 9;
  if (op == "*" || op == "/" || op == "%") return 10;
  return 0;  // not a binary operator
}

constexpr bool is_unary_op_of(std::string_view op) {
  return op == "!" || op == "~" || op == "&" || op == "|" || op == "^" || op == "~&" ||
         op == "~|" || op == "~^" || op == "-" || op == "+";
}

// Index 0 is the "not a table punct" id.
constexpr auto kBinaryPrecedence = [] {
  std::array<std::uint8_t, kPunctSpellings.size() + 1> table{};
  for (std::size_t i = 0; i < kPunctSpellings.size(); ++i) {
    table[i + 1] = static_cast<std::uint8_t>(binary_precedence_of(kPunctSpellings[i]));
  }
  return table;
}();

constexpr auto kIsUnaryOp = [] {
  std::array<bool, kPunctSpellings.size() + 1> table{};
  for (std::size_t i = 0; i < kPunctSpellings.size(); ++i) {
    table[i + 1] = is_unary_op_of(kPunctSpellings[i]);
  }
  return table;
}();

constexpr PunctId kPLParen = punct_id_of("(");
constexpr PunctId kPRParen = punct_id_of(")");
constexpr PunctId kPLBracket = punct_id_of("[");
constexpr PunctId kPRBracket = punct_id_of("]");
constexpr PunctId kPLBrace = punct_id_of("{");
constexpr PunctId kPRBrace = punct_id_of("}");
constexpr PunctId kPComma = punct_id_of(",");
constexpr PunctId kPSemi = punct_id_of(";");
constexpr PunctId kPColon = punct_id_of(":");
constexpr PunctId kPQuestion = punct_id_of("?");
constexpr PunctId kPAssign = punct_id_of("=");
constexpr PunctId kPLe = punct_id_of("<=");
constexpr PunctId kPAt = punct_id_of("@");
constexpr PunctId kPHash = punct_id_of("#");
constexpr PunctId kPDot = punct_id_of(".");
constexpr PunctId kPStar = punct_id_of("*");
constexpr PunctId kPPlus = punct_id_of("+");
constexpr PunctId kPMinus = punct_id_of("-");
constexpr PunctId kPSlash = punct_id_of("/");
constexpr PunctId kPPercent = punct_id_of("%");
constexpr PunctId kPShl = punct_id_of("<<");
constexpr PunctId kPShr = punct_id_of(">>");
constexpr PunctId kPTilde = punct_id_of("~");
constexpr PunctId kPBang = punct_id_of("!");

std::string spelling_of(PunctId id) { return std::string(kPunctSpellings[id - 1]); }

}  // namespace

// ---------------------------------------------------------------------------
// FastParser — the single grammar implementation. Parses into the arena AST
// through a ParserWorkspace; sibling lists are built on the workspace's
// scratch stacks with a mark/commit discipline (a production records the
// stack size, pushes its children, then copies [mark, end) into the arena
// and pops back to the mark), which nests safely and keeps steady-state
// parsing free of heap traffic.
// ---------------------------------------------------------------------------

class FastParser {
 public:
  FastParser(ParserWorkspace& ws, std::string_view source)
      : ws_(ws), arena_(ws.arena_), symbols_(*ws.symbols_) {
    reset_scratch();
    lex_into(source, ws_.tokens_);
  }

  const fast::SourceFile* parse_file() {
    while (!peek().is(TokenKind::End)) {
      ws_.module_stack_.push_back(parse_module_decl());
    }
    if (ws_.module_stack_.empty()) {
      throw ParseError("source contains no modules", 1, 1);
    }
    auto* file = arena_.create<fast::SourceFile>();
    file->modules = commit(ws_.module_stack_, 0);
    return file;
  }

 private:
  // --- scratch plumbing ---
  void reset_scratch() {
    // A previous parse may have thrown mid-production; start clean. The
    // arena and every stack keep their capacity (grow-only workspace).
    arena_.reset();
    ws_.expr_stack_.clear();
    ws_.stmt_stack_.clear();
    ws_.case_stack_.clear();
    ws_.sens_stack_.clear();
    ws_.param_stack_.clear();
    ws_.port_stack_.clear();
    ws_.net_stack_.clear();
    ws_.assign_stack_.clear();
    ws_.always_stack_.clear();
    ws_.initial_stack_.clear();
    ws_.inst_stack_.clear();
    ws_.conn_stack_.clear();
    ws_.module_stack_.clear();
    ws_.param_values_.clear();
    pos_ = 0;
  }

  template <typename T>
  std::span<const T> commit(std::vector<T>& stack, std::size_t mark) {
    const std::size_t count = stack.size() - mark;
    const T* copy = arena_.copy_array(stack.data() + mark, count);
    stack.resize(mark);
    return std::span<const T>(copy, count);
  }

  std::span<const fast::Expr* const> operands(std::initializer_list<const fast::Expr*> ops) {
    const fast::Expr** arr = arena_.alloc_array<const fast::Expr*>(ops.size());
    std::size_t i = 0;
    for (const fast::Expr* op : ops) arr[i++] = op;
    return std::span<const fast::Expr* const>(arr, ops.size());
  }

  util::Symbol intern(std::string_view text) { return symbols_.intern(text); }

  static fast::SrcLoc loc_of(const Token& t) noexcept { return {t.line, t.column}; }

  // --- token plumbing ---
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, ws_.tokens_.size() - 1);
    return ws_.tokens_[i];
  }
  const Token& advance() {
    const Token& t = ws_.tokens_[pos_];
    if (pos_ + 1 < ws_.tokens_.size()) ++pos_;
    return t;
  }
  [[noreturn]] void fail(const std::string& message) const {
    const Token& t = peek();
    throw ParseError(
        message + " (got '" + (t.is(TokenKind::End) ? "<eof>" : std::string(t.text)) + "')",
        t.line, t.column);
  }
  const Token& expect_punct(PunctId p) {
    if (peek().punct != p) fail("expected '" + spelling_of(p) + "'");
    return advance();
  }
  const Token& expect_keyword(std::string_view kw) {
    if (!peek().is_keyword(kw)) fail("expected '" + std::string(kw) + "'");
    return advance();
  }
  util::Symbol expect_identifier(std::string_view what) {
    // string_view parameter: the error message is only materialized on the
    // failure path, so the hot path stays allocation-free even for long
    // diagnostics like "sensitivity signal".
    if (!peek().is(TokenKind::Identifier)) fail("expected " + std::string(what));
    return intern(advance().text);
  }
  bool accept_punct(PunctId p) {
    if (peek().punct == p) {
      advance();
      return true;
    }
    return false;
  }
  bool accept_keyword(std::string_view kw) {
    if (peek().is_keyword(kw)) {
      advance();
      return true;
    }
    return false;
  }

  // --- constant evaluation (for ranges and parameter values) ---
  std::int64_t* param_value(util::Symbol name) {
    // Linear scan: module parameter lists are tiny, and a flat vector keeps
    // the steady-state parse allocation-free (unlike a node-based map).
    for (auto& [sym, value] : ws_.param_values_) {
      if (sym == name) return &value;
    }
    return nullptr;
  }

  std::int64_t eval_const(const fast::Expr& e) const {
    switch (e.kind) {
      case ExprKind::Number:
        return static_cast<std::int64_t>(e.value);
      case ExprKind::Identifier: {
        for (const auto& [sym, value] : ws_.param_values_) {
          if (sym == e.name) return value;
        }
        throw ParseError("'" + std::string(symbols_.text(e.name)) +
                             "' is not a constant parameter",
                         peek().line, peek().column);
      }
      case ExprKind::Unary: {
        const std::int64_t v = eval_const(*e.operands[0]);
        if (e.op == kPMinus) return -v;
        if (e.op == kPPlus) return v;
        if (e.op == kPTilde) return ~v;
        if (e.op == kPBang) return v == 0 ? 1 : 0;
        break;
      }
      case ExprKind::Binary: {
        const std::int64_t a = eval_const(*e.operands[0]);
        const std::int64_t b = eval_const(*e.operands[1]);
        if (e.op == kPPlus) return a + b;
        if (e.op == kPMinus) return a - b;
        if (e.op == kPStar) return a * b;
        if (e.op == kPSlash) return b == 0 ? 0 : a / b;
        if (e.op == kPPercent) return b == 0 ? 0 : a % b;
        if (e.op == kPShl) return a << b;
        if (e.op == kPShr) return a >> b;
        break;
      }
      case ExprKind::Ternary:
        return eval_const(*e.operands[0]) != 0 ? eval_const(*e.operands[1])
                                               : eval_const(*e.operands[2]);
      default:
        break;
    }
    throw ParseError("expression is not constant", peek().line, peek().column);
  }

  // --- expressions ---
  const fast::Expr* parse_primary() {
    const Token& t = peek();
    if (t.is(TokenKind::Number)) {
      advance();
      auto* e = arena_.create<fast::Expr>();
      e->kind = ExprKind::Number;
      e->value = t.value;
      e->width = t.width;
      e->loc = loc_of(t);
      return e;
    }
    if (t.is(TokenKind::Identifier)) {
      advance();
      auto* ident = arena_.create<fast::Expr>();
      ident->kind = ExprKind::Identifier;
      ident->name = intern(t.text);
      ident->loc = loc_of(t);
      const fast::Expr* e = ident;
      // Postfix selects: a[3], a[7:0], possibly chained (a[i][j] is outside
      // the subset because memories are, but indexing a range result isn't).
      while (peek().punct == kPLBracket) {
        advance();
        const fast::Expr* first = parse_expression();
        if (accept_punct(kPColon)) {
          const fast::Expr* lsb = parse_expression();
          expect_punct(kPRBracket);
          auto* range = arena_.create<fast::Expr>();
          range->kind = ExprKind::Range;
          range->loc = e->loc;
          range->operands = operands({e, first, lsb});
          e = range;
        } else {
          expect_punct(kPRBracket);
          auto* index = arena_.create<fast::Expr>();
          index->kind = ExprKind::Index;
          index->loc = e->loc;
          index->operands = operands({e, first});
          e = index;
        }
      }
      return e;
    }
    if (t.punct == kPLParen) {
      advance();
      const fast::Expr* e = parse_expression();
      expect_punct(kPRParen);
      return e;
    }
    if (t.punct == kPLBrace) {
      advance();
      const fast::Expr* first = parse_expression();
      if (peek().punct == kPLBrace) {
        // Replication {N{expr}}
        advance();
        const fast::Expr* part = parse_expression();
        expect_punct(kPRBrace);
        expect_punct(kPRBrace);
        auto* rep = arena_.create<fast::Expr>();
        rep->kind = ExprKind::Replicate;
        rep->loc = loc_of(t);
        rep->operands = operands({first, part});
        return rep;
      }
      const std::size_t mark = ws_.expr_stack_.size();
      ws_.expr_stack_.push_back(first);
      while (accept_punct(kPComma)) ws_.expr_stack_.push_back(parse_expression());
      expect_punct(kPRBrace);
      auto* concat = arena_.create<fast::Expr>();
      concat->kind = ExprKind::Concat;
      concat->loc = loc_of(t);
      concat->operands = commit(ws_.expr_stack_, mark);
      return concat;
    }
    fail("expected expression");
  }

  const fast::Expr* parse_unary() {
    const Token& t = peek();
    if (t.is(TokenKind::Punct) && kIsUnaryOp[t.punct]) {
      const PunctId op = advance().punct;
      auto* e = arena_.create<fast::Expr>();
      e->kind = ExprKind::Unary;
      e->op = op;
      e->loc = loc_of(t);
      e->operands = operands({parse_unary()});
      return e;
    }
    return parse_primary();
  }

  const fast::Expr* parse_binary(int min_precedence) {
    const fast::Expr* lhs = parse_unary();
    while (true) {
      const Token& t = peek();
      if (!t.is(TokenKind::Punct)) return lhs;
      const int prec = kBinaryPrecedence[t.punct];
      if (prec == 0 || prec < min_precedence) return lhs;
      const PunctId op = advance().punct;
      const fast::Expr* rhs = parse_binary(prec + 1);  // left associative
      auto* e = arena_.create<fast::Expr>();
      e->kind = ExprKind::Binary;
      e->op = op;
      e->loc = lhs->loc;
      e->operands = operands({lhs, rhs});
      lhs = e;
    }
  }

  const fast::Expr* parse_expression() {
    const fast::Expr* cond = parse_binary(1);
    if (accept_punct(kPQuestion)) {
      const fast::Expr* then_e = parse_expression();
      expect_punct(kPColon);
      const fast::Expr* else_e = parse_expression();
      auto* e = arena_.create<fast::Expr>();
      e->kind = ExprKind::Ternary;
      e->loc = cond->loc;
      e->operands = operands({cond, then_e, else_e});
      return e;
    }
    return cond;
  }

  // --- ranges / declarations ---
  std::optional<BitRange> parse_optional_range() {
    if (peek().punct != kPLBracket) return std::nullopt;
    advance();
    const fast::Expr* msb_expr = parse_expression();
    expect_punct(kPColon);
    const fast::Expr* lsb_expr = parse_expression();
    expect_punct(kPRBracket);
    BitRange range;
    range.msb = static_cast<int>(eval_const(*msb_expr));
    range.lsb = static_cast<int>(eval_const(*lsb_expr));
    return range;
  }

  // --- statements ---
  const fast::Stmt* new_stmt(StmtKind kind) {
    auto* s = arena_.create<fast::Stmt>();
    s->kind = kind;
    return s;
  }

  const fast::Stmt* parse_statement() {
    const Token& t = peek();

    if (t.is_keyword("begin")) {
      advance();
      const std::size_t mark = ws_.stmt_stack_.size();
      while (!peek().is_keyword("end")) {
        if (peek().is(TokenKind::End)) fail("unterminated begin block");
        ws_.stmt_stack_.push_back(parse_statement());
      }
      advance();  // end
      auto* s = arena_.create<fast::Stmt>();
      s->kind = StmtKind::Block;
      s->loc = loc_of(t);
      s->body = commit(ws_.stmt_stack_, mark);
      return s;
    }

    if (t.is_keyword("if")) {
      advance();
      expect_punct(kPLParen);
      const fast::Expr* cond = parse_expression();
      expect_punct(kPRParen);
      const fast::Stmt* then_branch = parse_statement();
      const fast::Stmt* else_branch = nullptr;
      if (accept_keyword("else")) else_branch = parse_statement();
      auto* s = arena_.create<fast::Stmt>();
      s->kind = StmtKind::If;
      s->loc = loc_of(t);
      s->cond = cond;
      s->then_branch = then_branch;
      s->else_branch = else_branch;
      return s;
    }

    if (t.is_keyword("case") || t.is_keyword("casez") || t.is_keyword("casex")) {
      advance();
      expect_punct(kPLParen);
      const fast::Expr* subject = parse_expression();
      expect_punct(kPRParen);
      const std::size_t item_mark = ws_.case_stack_.size();
      while (!peek().is_keyword("endcase")) {
        if (peek().is(TokenKind::End)) fail("unterminated case statement");
        fast::CaseItem item;
        if (accept_keyword("default")) {
          accept_punct(kPColon);
        } else {
          const std::size_t label_mark = ws_.expr_stack_.size();
          ws_.expr_stack_.push_back(parse_expression());
          while (accept_punct(kPComma)) ws_.expr_stack_.push_back(parse_expression());
          expect_punct(kPColon);
          // Commit before the body parse so nested cases nest their marks.
          item.labels = commit(ws_.expr_stack_, label_mark);
        }
        item.body = parse_statement();
        ws_.case_stack_.push_back(item);
      }
      advance();  // endcase
      auto* s = arena_.create<fast::Stmt>();
      s->kind = StmtKind::Case;
      s->loc = loc_of(t);
      s->cond = subject;
      s->case_items = commit(ws_.case_stack_, item_mark);
      return s;
    }

    if (t.is_keyword("for")) {
      advance();
      expect_punct(kPLParen);
      const fast::Stmt* init = parse_assign_core();
      expect_punct(kPSemi);
      const fast::Expr* cond = parse_expression();
      expect_punct(kPSemi);
      const fast::Stmt* step = parse_assign_core();
      expect_punct(kPRParen);
      const std::size_t mark = ws_.stmt_stack_.size();
      ws_.stmt_stack_.push_back(parse_statement());
      auto* s = arena_.create<fast::Stmt>();
      s->kind = StmtKind::For;
      s->loc = loc_of(t);
      s->for_init = init;
      s->cond = cond;
      s->for_step = step;
      s->body = commit(ws_.stmt_stack_, mark);  // single element, as in ast.h
      return s;
    }

    if (t.is(TokenKind::SystemName)) {
      // System tasks ($display, $finish, ...) carry no structural signal for
      // detection; consume through the terminating semicolon.
      advance();
      if (accept_punct(kPLParen)) {
        int depth = 1;
        while (depth > 0) {
          if (peek().is(TokenKind::End)) fail("unterminated system task call");
          if (peek().punct == kPLParen) ++depth;
          if (peek().punct == kPRParen) --depth;
          advance();
        }
      }
      expect_punct(kPSemi);
      return new_stmt(StmtKind::Null);
    }

    if (t.punct == kPSemi) {
      advance();
      return new_stmt(StmtKind::Null);
    }

    const fast::Stmt* assign = parse_assign_core();
    expect_punct(kPSemi);
    return assign;
  }

  /// Parses `lhs = rhs` or `lhs <= rhs` without the trailing semicolon
  /// (shared by statements and for-loop init/step).
  const fast::Stmt* parse_assign_core() {
    const fast::Expr* lhs = parse_primary();  // identifier/select/concat targets
    if (accept_punct(kPAssign)) {
      auto* s = arena_.create<fast::Stmt>();
      s->kind = StmtKind::BlockingAssign;
      s->loc = lhs->loc;
      s->lhs = lhs;
      s->rhs = parse_expression();
      return s;
    }
    if (accept_punct(kPLe)) {
      auto* s = arena_.create<fast::Stmt>();
      s->kind = StmtKind::NonBlockingAssign;
      s->loc = lhs->loc;
      s->lhs = lhs;
      s->rhs = parse_expression();
      return s;
    }
    fail("expected '=' or '<=' in assignment");
  }

  // --- module items ---
  PortDir parse_port_dir() {
    if (accept_keyword("input")) return PortDir::Input;
    if (accept_keyword("output")) return PortDir::Output;
    if (accept_keyword("inout")) return PortDir::Inout;
    fail("expected port direction");
  }

  void parse_param_assignment(bool local) {
    fast::ParamDecl param;
    param.local = local;
    param.name = expect_identifier("parameter name");
    expect_punct(kPAssign);
    param.value = parse_expression();
    const std::int64_t value = eval_const(*param.value);
    if (std::int64_t* existing = param_value(param.name)) {
      *existing = value;
    } else {
      ws_.param_values_.emplace_back(param.name, value);
    }
    ws_.param_stack_.push_back(param);
  }

  void parse_always_block(fast::SrcLoc loc) {
    fast::AlwaysBlock block;
    block.loc = loc;
    expect_punct(kPAt);
    if (accept_punct(kPStar)) {
      block.star = true;
    } else {
      expect_punct(kPLParen);
      if (accept_punct(kPStar)) {
        block.star = true;
      } else {
        const std::size_t mark = ws_.sens_stack_.size();
        while (true) {
          fast::SensItem item;
          if (accept_keyword("posedge")) item.edge = EdgeKind::Posedge;
          else if (accept_keyword("negedge")) item.edge = EdgeKind::Negedge;
          item.signal = expect_identifier("sensitivity signal");
          ws_.sens_stack_.push_back(item);
          if (accept_keyword("or") || accept_punct(kPComma)) continue;
          break;
        }
        block.sensitivity = commit(ws_.sens_stack_, mark);
      }
      expect_punct(kPRParen);
    }
    block.body = parse_statement();
    ws_.always_stack_.push_back(block);
  }

  void parse_net_decl(NetKind kind) {
    std::optional<BitRange> range;
    if (kind != NetKind::Integer) {
      accept_keyword("signed");
      range = parse_optional_range();
    }
    while (true) {
      fast::NetDecl net;
      net.kind = kind;
      net.range = range;
      net.loc = loc_of(peek());
      net.name = expect_identifier("net name");
      if (accept_punct(kPAssign)) net.init = parse_expression();
      ws_.net_stack_.push_back(net);
      if (!accept_punct(kPComma)) break;
    }
    expect_punct(kPSemi);
  }

  /// Non-ANSI in-body port direction declaration: `input [7:0] a, b;`
  /// Also upgrades header-declared ports with their direction/range, and
  /// registers an `output reg` as both port and reg net.
  void parse_port_direction_decl(std::size_t port_mark, PortDir dir) {
    NetKind net = NetKind::Wire;
    if (accept_keyword("reg")) net = NetKind::Reg;
    else accept_keyword("wire");
    accept_keyword("signed");
    const std::optional<BitRange> range = parse_optional_range();
    while (true) {
      const fast::SrcLoc name_loc = loc_of(peek());
      const util::Symbol name = expect_identifier("port name");
      bool found = false;
      for (std::size_t i = port_mark; i < ws_.port_stack_.size(); ++i) {
        fast::PortDecl& port = ws_.port_stack_[i];
        if (port.name == name) {
          port.dir = dir;
          port.net = net;
          port.range = range;
          port.loc = name_loc;
          found = true;
          break;
        }
      }
      if (!found) {
        ws_.port_stack_.push_back(fast::PortDecl{dir, net, name, range, name_loc});
      }
      if (net == NetKind::Reg) {
        fast::NetDecl decl;
        decl.kind = NetKind::Reg;
        decl.name = name;
        decl.range = range;
        decl.loc = name_loc;
        ws_.net_stack_.push_back(decl);
      }
      if (!accept_punct(kPComma)) break;
    }
    expect_punct(kPSemi);
  }

  void parse_instance() {
    fast::Instance inst;
    inst.loc = loc_of(peek());
    inst.module_name = intern(advance().text);  // already verified Identifier
    inst.instance_name = expect_identifier("instance name");
    expect_punct(kPLParen);
    const std::size_t mark = ws_.conn_stack_.size();
    if (peek().punct != kPRParen) {
      while (true) {
        fast::PortConnection conn;
        if (accept_punct(kPDot)) {
          conn.port = expect_identifier("port name");
          expect_punct(kPLParen);
          if (peek().punct != kPRParen) conn.actual = parse_expression();
          expect_punct(kPRParen);
        } else {
          conn.actual = parse_expression();  // positional
        }
        ws_.conn_stack_.push_back(conn);
        if (!accept_punct(kPComma)) break;
      }
    }
    expect_punct(kPRParen);
    expect_punct(kPSemi);
    inst.connections = commit(ws_.conn_stack_, mark);
    ws_.inst_stack_.push_back(inst);
  }

  fast::Module parse_module_decl() {
    ws_.param_values_.clear();
    const fast::SrcLoc loc = loc_of(peek());
    expect_keyword("module");
    fast::Module module;
    module.loc = loc;
    module.name = expect_identifier("module name");

    const std::size_t param_mark = ws_.param_stack_.size();
    const std::size_t port_mark = ws_.port_stack_.size();
    const std::size_t net_mark = ws_.net_stack_.size();
    const std::size_t assign_mark = ws_.assign_stack_.size();
    const std::size_t always_mark = ws_.always_stack_.size();
    const std::size_t initial_mark = ws_.initial_stack_.size();
    const std::size_t inst_mark = ws_.inst_stack_.size();

    // Optional parameter header: #(parameter W = 8, ...)
    if (accept_punct(kPHash)) {
      expect_punct(kPLParen);
      while (true) {
        accept_keyword("parameter");
        parse_param_assignment(/*local=*/false);
        if (!accept_punct(kPComma)) break;
      }
      expect_punct(kPRParen);
    }

    // Port header: ANSI declarations or a plain name list.
    if (accept_punct(kPLParen)) {
      if (peek().punct != kPRParen) {
        const bool ansi = peek().is(TokenKind::Keyword) &&
                          (peek().is_keyword("input") || peek().is_keyword("output") ||
                           peek().is_keyword("inout"));
        if (ansi) {
          PortDir dir = PortDir::Input;
          NetKind net = NetKind::Wire;
          std::optional<BitRange> range;
          while (true) {
            if (peek().is_keyword("input") || peek().is_keyword("output") ||
                peek().is_keyword("inout")) {
              dir = parse_port_dir();
              net = NetKind::Wire;
              if (accept_keyword("reg")) net = NetKind::Reg;
              else accept_keyword("wire");
              accept_keyword("signed");
              range = parse_optional_range();
            }
            const fast::SrcLoc name_loc = loc_of(peek());
            const util::Symbol name = expect_identifier("port name");
            ws_.port_stack_.push_back(fast::PortDecl{dir, net, name, range, name_loc});
            if (net == NetKind::Reg) {
              fast::NetDecl decl;
              decl.kind = NetKind::Reg;
              decl.name = name;
              decl.range = range;
              decl.loc = name_loc;
              ws_.net_stack_.push_back(decl);
            }
            if (!accept_punct(kPComma)) break;
          }
        } else {
          while (true) {
            const fast::SrcLoc name_loc = loc_of(peek());
            const util::Symbol name = expect_identifier("port name");
            ws_.port_stack_.push_back(
                fast::PortDecl{PortDir::Input, NetKind::Wire, name, std::nullopt, name_loc});
            if (!accept_punct(kPComma)) break;
          }
        }
      }
      expect_punct(kPRParen);
    }
    expect_punct(kPSemi);

    // Module body.
    while (!peek().is_keyword("endmodule")) {
      const Token& t = peek();
      if (t.is(TokenKind::End)) fail("unterminated module");

      if (t.is_keyword("parameter") || t.is_keyword("localparam")) {
        const bool local = t.is_keyword("localparam");
        advance();
        while (true) {
          parse_param_assignment(local);
          if (!accept_punct(kPComma)) break;
        }
        expect_punct(kPSemi);
      } else if (t.is_keyword("input")) {
        advance();
        parse_port_direction_decl(port_mark, PortDir::Input);
      } else if (t.is_keyword("output")) {
        advance();
        parse_port_direction_decl(port_mark, PortDir::Output);
      } else if (t.is_keyword("inout")) {
        advance();
        parse_port_direction_decl(port_mark, PortDir::Inout);
      } else if (t.is_keyword("wire")) {
        advance();
        parse_net_decl(NetKind::Wire);
      } else if (t.is_keyword("reg")) {
        advance();
        parse_net_decl(NetKind::Reg);
      } else if (t.is_keyword("integer")) {
        advance();
        parse_net_decl(NetKind::Integer);
      } else if (t.is_keyword("assign")) {
        advance();
        while (true) {
          fast::ContAssign assign;
          assign.loc = loc_of(peek());
          assign.lhs = parse_primary();
          expect_punct(kPAssign);
          assign.rhs = parse_expression();
          ws_.assign_stack_.push_back(assign);
          if (!accept_punct(kPComma)) break;
        }
        expect_punct(kPSemi);
      } else if (t.is_keyword("always")) {
        advance();
        parse_always_block(loc_of(t));
      } else if (t.is_keyword("initial")) {
        advance();
        fast::InitialBlock block;
        block.body = parse_statement();
        ws_.initial_stack_.push_back(block);
      } else if (t.is(TokenKind::Identifier)) {
        parse_instance();
      } else {
        fail("unexpected token in module body");
      }
    }
    advance();  // endmodule

    module.params = commit(ws_.param_stack_, param_mark);
    module.ports = commit(ws_.port_stack_, port_mark);
    module.nets = commit(ws_.net_stack_, net_mark);
    module.assigns = commit(ws_.assign_stack_, assign_mark);
    module.always_blocks = commit(ws_.always_stack_, always_mark);
    module.initial_blocks = commit(ws_.initial_stack_, initial_mark);
    module.instances = commit(ws_.inst_stack_, inst_mark);
    return module;
  }

  ParserWorkspace& ws_;
  util::Arena& arena_;
  util::SymbolTable& symbols_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// ParserWorkspace
// ---------------------------------------------------------------------------

ParserWorkspace::ParserWorkspace(std::size_t max_retained_symbols)
    : symbols_(std::make_shared<util::SymbolTable>()),
      max_retained_symbols_(std::max(max_retained_symbols,
                                     std::size_t{kPreinternedSymbolCount} + 1)) {
  preintern_verilog_symbols(*symbols_);
}

void ParserWorkspace::reset_symbols() {
  symbols_->reset();
  preintern_verilog_symbols(*symbols_);
}

const fast::SourceFile& ParserWorkspace::parse(std::string_view source) {
  // Retention trim between parses (never mid-parse, so every symbol a
  // parse mints stays valid for its tree's whole lifetime). Keeps a
  // long-lived worker's pool bounded under arbitrarily diverse inputs.
  if (symbols_->size() > max_retained_symbols_) reset_symbols();
  return *FastParser(*this, source).parse_file();
}

const fast::Module& ParserWorkspace::parse_single(std::string_view source) {
  const fast::SourceFile& file = parse(source);
  if (file.modules.size() != 1) {
    throw ParseError("expected exactly one module, found " +
                         std::to_string(file.modules.size()),
                     1, 1);
  }
  return file.modules.front();
}

// ---------------------------------------------------------------------------
// Arena AST -> owning AST conversion (the classic entry points).
// ---------------------------------------------------------------------------

namespace {

std::string sym_text(const util::SymbolTable& sy, util::Symbol sym) {
  return sym == util::kNoSymbol ? std::string() : std::string(sy.text(sym));
}

ExprPtr convert(const fast::Expr& e, const util::SymbolTable& sy) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->value = e.value;
  out->width = e.width;
  if (e.kind == ExprKind::Identifier) {
    out->name = sym_text(sy, e.name);
  } else if (e.kind == ExprKind::Unary || e.kind == ExprKind::Binary) {
    out->name = spelling_of(e.op);
  }
  out->operands.reserve(e.operands.size());
  for (const fast::Expr* child : e.operands) {
    out->operands.push_back(child ? convert(*child, sy) : nullptr);
  }
  return out;
}

StmtPtr convert(const fast::Stmt& s, const util::SymbolTable& sy) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  if (s.cond) out->cond = convert(*s.cond, sy);
  if (s.then_branch) out->then_branch = convert(*s.then_branch, sy);
  if (s.else_branch) out->else_branch = convert(*s.else_branch, sy);
  out->body.reserve(s.body.size());
  for (const fast::Stmt* child : s.body) {
    out->body.push_back(child ? convert(*child, sy) : nullptr);
  }
  out->case_items.reserve(s.case_items.size());
  for (const fast::CaseItem& item : s.case_items) {
    CaseItem owned;
    owned.labels.reserve(item.labels.size());
    for (const fast::Expr* label : item.labels) {
      owned.labels.push_back(label ? convert(*label, sy) : nullptr);
    }
    if (item.body) owned.body = convert(*item.body, sy);
    out->case_items.push_back(std::move(owned));
  }
  if (s.lhs) out->lhs = convert(*s.lhs, sy);
  if (s.rhs) out->rhs = convert(*s.rhs, sy);
  if (s.for_init) out->for_init = convert(*s.for_init, sy);
  if (s.for_step) out->for_step = convert(*s.for_step, sy);
  return out;
}

}  // namespace

Module to_owned(const fast::Module& m, const util::SymbolTable& sy) {
  Module out;
  out.name = sym_text(sy, m.name);
  out.params.reserve(m.params.size());
  for (const fast::ParamDecl& p : m.params) {
    ParamDecl owned;
    owned.local = p.local;
    owned.name = sym_text(sy, p.name);
    if (p.value) owned.value = convert(*p.value, sy);
    out.params.push_back(std::move(owned));
  }
  out.ports.reserve(m.ports.size());
  for (const fast::PortDecl& p : m.ports) {
    out.ports.push_back(PortDecl{p.dir, p.net, sym_text(sy, p.name), p.range});
  }
  out.nets.reserve(m.nets.size());
  for (const fast::NetDecl& n : m.nets) {
    NetDecl owned;
    owned.kind = n.kind;
    owned.name = sym_text(sy, n.name);
    owned.range = n.range;
    if (n.init) owned.init = convert(*n.init, sy);
    out.nets.push_back(std::move(owned));
  }
  out.assigns.reserve(m.assigns.size());
  for (const fast::ContAssign& a : m.assigns) {
    ContAssign owned;
    if (a.lhs) owned.lhs = convert(*a.lhs, sy);
    if (a.rhs) owned.rhs = convert(*a.rhs, sy);
    out.assigns.push_back(std::move(owned));
  }
  out.always_blocks.reserve(m.always_blocks.size());
  for (const fast::AlwaysBlock& b : m.always_blocks) {
    AlwaysBlock owned;
    owned.star = b.star;
    owned.sensitivity.reserve(b.sensitivity.size());
    for (const fast::SensItem& item : b.sensitivity) {
      owned.sensitivity.push_back(SensItem{item.edge, sym_text(sy, item.signal)});
    }
    if (b.body) owned.body = convert(*b.body, sy);
    out.always_blocks.push_back(std::move(owned));
  }
  out.initial_blocks.reserve(m.initial_blocks.size());
  for (const fast::InitialBlock& b : m.initial_blocks) {
    InitialBlock owned;
    if (b.body) owned.body = convert(*b.body, sy);
    out.initial_blocks.push_back(std::move(owned));
  }
  out.instances.reserve(m.instances.size());
  for (const fast::Instance& inst : m.instances) {
    Instance owned;
    owned.module_name = sym_text(sy, inst.module_name);
    owned.instance_name = sym_text(sy, inst.instance_name);
    owned.connections.reserve(inst.connections.size());
    for (const fast::PortConnection& conn : inst.connections) {
      owned.connections.push_back(PortConnection{
          sym_text(sy, conn.port), conn.actual ? convert(*conn.actual, sy) : nullptr});
    }
    out.instances.push_back(std::move(owned));
  }
  return out;
}

SourceFile to_owned(const fast::SourceFile& file, const util::SymbolTable& sy) {
  SourceFile out;
  out.modules.reserve(file.modules.size());
  for (const fast::Module& m : file.modules) out.modules.push_back(to_owned(m, sy));
  return out;
}

namespace {

ParserWorkspace& thread_parser_workspace() {
  // One workspace per thread: the classic owning entry points reuse its
  // token buffer/arena across calls, so even they stop re-heap-allocating
  // the front end. The returned owned AST copies everything it needs.
  thread_local ParserWorkspace workspace;
  return workspace;
}

}  // namespace

SourceFile parse_source(std::string_view source) {
  ParserWorkspace& ws = thread_parser_workspace();
  return to_owned(ws.parse(source), *ws.symbols());
}

Module parse_module(std::string_view source) {
  ParserWorkspace& ws = thread_parser_workspace();
  return to_owned(ws.parse_single(source), *ws.symbols());
}

}  // namespace noodle::verilog
