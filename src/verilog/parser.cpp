#include "verilog/parser.h"

#include <map>
#include <utility>

#include "verilog/lexer.h"

namespace noodle::verilog {

ParseError::ParseError(const std::string& message, int line, int column)
    : std::runtime_error(message + " at line " + std::to_string(line) + ", column " +
                         std::to_string(column)),
      line_(line),
      column_(column) {}

namespace {

/// Binding powers for binary operators, higher binds tighter. Mirrors the
/// Verilog-2001 precedence table for the supported operator set.
int binary_precedence(const std::string& op) {
  if (op == "||") return 1;
  if (op == "&&") return 2;
  if (op == "|") return 3;
  if (op == "^" || op == "~^" || op == "^~") return 4;
  if (op == "&") return 5;
  if (op == "==" || op == "!=" || op == "===" || op == "!==") return 6;
  if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
  if (op == "<<" || op == ">>" || op == "<<<" || op == ">>>") return 8;
  if (op == "+" || op == "-") return 9;
  if (op == "*" || op == "/" || op == "%") return 10;
  return 0;  // not a binary operator
}

bool is_unary_op(const std::string& op) {
  return op == "!" || op == "~" || op == "&" || op == "|" || op == "^" || op == "~&" ||
         op == "~|" || op == "~^" || op == "-" || op == "+";
}

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex(source)) {}

  SourceFile parse_file() {
    SourceFile file;
    while (!peek().is(TokenKind::End)) {
      file.modules.push_back(parse_module_decl());
    }
    if (file.modules.empty()) {
      throw ParseError("source contains no modules", 1, 1);
    }
    return file;
  }

 private:
  // --- token plumbing ---
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  [[noreturn]] void fail(const std::string& message) const {
    const Token& t = peek();
    throw ParseError(message + " (got '" + (t.is(TokenKind::End) ? "<eof>" : t.text) + "')",
                     t.line, t.column);
  }
  const Token& expect_punct(const std::string& p) {
    if (!peek().is_punct(p)) fail("expected '" + p + "'");
    return advance();
  }
  const Token& expect_keyword(const std::string& kw) {
    if (!peek().is_keyword(kw)) fail("expected '" + kw + "'");
    return advance();
  }
  std::string expect_identifier(const std::string& what) {
    if (!peek().is(TokenKind::Identifier)) fail("expected " + what);
    return advance().text;
  }
  bool accept_punct(const std::string& p) {
    if (peek().is_punct(p)) {
      advance();
      return true;
    }
    return false;
  }
  bool accept_keyword(const std::string& kw) {
    if (peek().is_keyword(kw)) {
      advance();
      return true;
    }
    return false;
  }

  // --- constant evaluation (for ranges and parameter values) ---
  std::int64_t eval_const(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::Number:
        return static_cast<std::int64_t>(e.value);
      case ExprKind::Identifier: {
        const auto it = param_values_.find(e.name);
        if (it == param_values_.end()) {
          throw ParseError("'" + e.name + "' is not a constant parameter", peek().line,
                           peek().column);
        }
        return it->second;
      }
      case ExprKind::Unary: {
        const std::int64_t v = eval_const(*e.operands[0]);
        if (e.name == "-") return -v;
        if (e.name == "+") return v;
        if (e.name == "~") return ~v;
        if (e.name == "!") return v == 0 ? 1 : 0;
        break;
      }
      case ExprKind::Binary: {
        const std::int64_t a = eval_const(*e.operands[0]);
        const std::int64_t b = eval_const(*e.operands[1]);
        if (e.name == "+") return a + b;
        if (e.name == "-") return a - b;
        if (e.name == "*") return a * b;
        if (e.name == "/") return b == 0 ? 0 : a / b;
        if (e.name == "%") return b == 0 ? 0 : a % b;
        if (e.name == "<<") return a << b;
        if (e.name == ">>") return a >> b;
        break;
      }
      case ExprKind::Ternary:
        return eval_const(*e.operands[0]) != 0 ? eval_const(*e.operands[1])
                                               : eval_const(*e.operands[2]);
      default:
        break;
    }
    throw ParseError("expression is not constant", peek().line, peek().column);
  }

  // --- expressions ---
  ExprPtr parse_primary() {
    const Token& t = peek();
    if (t.is(TokenKind::Number)) {
      advance();
      return Expr::number(t.value, t.width);
    }
    if (t.is(TokenKind::Identifier)) {
      advance();
      ExprPtr e = Expr::ident(t.text);
      // Postfix selects: a[3], a[7:0], possibly chained (a[i][j] is outside
      // the subset because memories are, but indexing a range result isn't).
      while (peek().is_punct("[")) {
        advance();
        ExprPtr first = parse_expression();
        if (accept_punct(":")) {
          ExprPtr lsb = parse_expression();
          expect_punct("]");
          e = Expr::range(std::move(e), std::move(first), std::move(lsb));
        } else {
          expect_punct("]");
          e = Expr::index(std::move(e), std::move(first));
        }
      }
      return e;
    }
    if (t.is_punct("(")) {
      advance();
      ExprPtr e = parse_expression();
      expect_punct(")");
      return e;
    }
    if (t.is_punct("{")) {
      advance();
      ExprPtr first = parse_expression();
      if (peek().is_punct("{")) {
        // Replication {N{expr}}
        advance();
        ExprPtr part = parse_expression();
        expect_punct("}");
        expect_punct("}");
        return Expr::replicate(std::move(first), std::move(part));
      }
      std::vector<ExprPtr> parts;
      parts.push_back(std::move(first));
      while (accept_punct(",")) parts.push_back(parse_expression());
      expect_punct("}");
      return Expr::concat(std::move(parts));
    }
    fail("expected expression");
  }

  ExprPtr parse_unary() {
    const Token& t = peek();
    if (t.is(TokenKind::Punct) && is_unary_op(t.text)) {
      const std::string op = advance().text;
      return Expr::unary(op, parse_unary());
    }
    return parse_primary();
  }

  ExprPtr parse_binary(int min_precedence) {
    ExprPtr lhs = parse_unary();
    while (true) {
      const Token& t = peek();
      if (!t.is(TokenKind::Punct)) return lhs;
      const int prec = binary_precedence(t.text);
      if (prec == 0 || prec < min_precedence) return lhs;
      const std::string op = advance().text;
      ExprPtr rhs = parse_binary(prec + 1);  // left associative
      lhs = Expr::binary(op, std::move(lhs), std::move(rhs));
    }
  }

  ExprPtr parse_expression() {
    ExprPtr cond = parse_binary(1);
    if (accept_punct("?")) {
      ExprPtr then_e = parse_expression();
      expect_punct(":");
      ExprPtr else_e = parse_expression();
      return Expr::ternary(std::move(cond), std::move(then_e), std::move(else_e));
    }
    return cond;
  }

  // --- ranges / declarations ---
  std::optional<BitRange> parse_optional_range() {
    if (!peek().is_punct("[")) return std::nullopt;
    advance();
    ExprPtr msb_expr = parse_expression();
    expect_punct(":");
    ExprPtr lsb_expr = parse_expression();
    expect_punct("]");
    BitRange range;
    range.msb = static_cast<int>(eval_const(*msb_expr));
    range.lsb = static_cast<int>(eval_const(*lsb_expr));
    return range;
  }

  // --- statements ---
  StmtPtr parse_statement() {
    const Token& t = peek();

    if (t.is_keyword("begin")) {
      advance();
      std::vector<StmtPtr> stmts;
      while (!peek().is_keyword("end")) {
        if (peek().is(TokenKind::End)) fail("unterminated begin block");
        stmts.push_back(parse_statement());
      }
      advance();  // end
      return Stmt::block(std::move(stmts));
    }

    if (t.is_keyword("if")) {
      advance();
      expect_punct("(");
      ExprPtr cond = parse_expression();
      expect_punct(")");
      StmtPtr then_branch = parse_statement();
      StmtPtr else_branch;
      if (accept_keyword("else")) else_branch = parse_statement();
      return Stmt::if_stmt(std::move(cond), std::move(then_branch), std::move(else_branch));
    }

    if (t.is_keyword("case") || t.is_keyword("casez") || t.is_keyword("casex")) {
      advance();
      expect_punct("(");
      ExprPtr subject = parse_expression();
      expect_punct(")");
      std::vector<CaseItem> items;
      while (!peek().is_keyword("endcase")) {
        if (peek().is(TokenKind::End)) fail("unterminated case statement");
        CaseItem item;
        if (accept_keyword("default")) {
          accept_punct(":");
        } else {
          item.labels.push_back(parse_expression());
          while (accept_punct(",")) item.labels.push_back(parse_expression());
          expect_punct(":");
        }
        item.body = parse_statement();
        items.push_back(std::move(item));
      }
      advance();  // endcase
      return Stmt::case_stmt(std::move(subject), std::move(items));
    }

    if (t.is_keyword("for")) {
      advance();
      expect_punct("(");
      StmtPtr init = parse_assign_core();
      expect_punct(";");
      ExprPtr cond = parse_expression();
      expect_punct(";");
      StmtPtr step = parse_assign_core();
      expect_punct(")");
      StmtPtr body = parse_statement();
      return Stmt::for_stmt(std::move(init), std::move(cond), std::move(step),
                            std::move(body));
    }

    if (t.is(TokenKind::SystemName)) {
      // System tasks ($display, $finish, ...) carry no structural signal for
      // detection; consume through the terminating semicolon.
      advance();
      if (accept_punct("(")) {
        int depth = 1;
        while (depth > 0) {
          if (peek().is(TokenKind::End)) fail("unterminated system task call");
          if (peek().is_punct("(")) ++depth;
          if (peek().is_punct(")")) --depth;
          advance();
        }
      }
      expect_punct(";");
      return Stmt::null_stmt();
    }

    if (t.is_punct(";")) {
      advance();
      return Stmt::null_stmt();
    }

    StmtPtr assign = parse_assign_core();
    expect_punct(";");
    return assign;
  }

  /// Parses `lhs = rhs` or `lhs <= rhs` without the trailing semicolon
  /// (shared by statements and for-loop init/step).
  StmtPtr parse_assign_core() {
    ExprPtr lhs = parse_primary();  // identifier/select/concat targets
    if (accept_punct("=")) {
      return Stmt::blocking(std::move(lhs), parse_expression());
    }
    if (accept_punct("<=")) {
      return Stmt::non_blocking(std::move(lhs), parse_expression());
    }
    fail("expected '=' or '<=' in assignment");
  }

  // --- module items ---
  PortDir parse_port_dir() {
    if (accept_keyword("input")) return PortDir::Input;
    if (accept_keyword("output")) return PortDir::Output;
    if (accept_keyword("inout")) return PortDir::Inout;
    fail("expected port direction");
  }

  void parse_param_assignment(Module& module, bool local) {
    ParamDecl param;
    param.local = local;
    param.name = expect_identifier("parameter name");
    expect_punct("=");
    param.value = parse_expression();
    param_values_[param.name] = eval_const(*param.value);
    module.params.push_back(std::move(param));
  }

  void parse_always_block(Module& module) {
    AlwaysBlock block;
    expect_punct("@");
    if (accept_punct("*")) {
      block.star = true;
    } else {
      expect_punct("(");
      if (accept_punct("*")) {
        block.star = true;
      } else {
        while (true) {
          SensItem item;
          if (accept_keyword("posedge")) item.edge = EdgeKind::Posedge;
          else if (accept_keyword("negedge")) item.edge = EdgeKind::Negedge;
          item.signal = expect_identifier("sensitivity signal");
          block.sensitivity.push_back(std::move(item));
          if (accept_keyword("or") || accept_punct(",")) continue;
          break;
        }
      }
      expect_punct(")");
    }
    block.body = parse_statement();
    module.always_blocks.push_back(std::move(block));
  }

  void parse_net_decl(Module& module, NetKind kind) {
    std::optional<BitRange> range;
    if (kind != NetKind::Integer) {
      accept_keyword("signed");
      range = parse_optional_range();
    }
    while (true) {
      NetDecl net;
      net.kind = kind;
      net.range = range;
      net.name = expect_identifier("net name");
      if (accept_punct("=")) net.init = parse_expression();
      module.nets.push_back(std::move(net));
      if (!accept_punct(",")) break;
    }
    expect_punct(";");
  }

  /// Non-ANSI in-body port direction declaration: `input [7:0] a, b;`
  /// Also upgrades header-declared ports with their direction/range, and
  /// registers an `output reg` as both port and reg net.
  void parse_port_direction_decl(Module& module, PortDir dir) {
    NetKind net = NetKind::Wire;
    if (accept_keyword("reg")) net = NetKind::Reg;
    else accept_keyword("wire");
    accept_keyword("signed");
    const std::optional<BitRange> range = parse_optional_range();
    while (true) {
      const std::string name = expect_identifier("port name");
      bool found = false;
      for (auto& port : module.ports) {
        if (port.name == name) {
          port.dir = dir;
          port.net = net;
          port.range = range;
          found = true;
          break;
        }
      }
      if (!found) {
        module.ports.push_back(PortDecl{dir, net, name, range});
      }
      if (net == NetKind::Reg) {
        NetDecl decl;
        decl.kind = NetKind::Reg;
        decl.name = name;
        decl.range = range;
        module.nets.push_back(std::move(decl));
      }
      if (!accept_punct(",")) break;
    }
    expect_punct(";");
  }

  void parse_instance(Module& module) {
    Instance inst;
    inst.module_name = advance().text;  // already verified Identifier
    inst.instance_name = expect_identifier("instance name");
    expect_punct("(");
    if (!peek().is_punct(")")) {
      while (true) {
        PortConnection conn;
        if (accept_punct(".")) {
          conn.port = expect_identifier("port name");
          expect_punct("(");
          if (!peek().is_punct(")")) conn.actual = parse_expression();
          expect_punct(")");
        } else {
          conn.actual = parse_expression();  // positional
        }
        inst.connections.push_back(std::move(conn));
        if (!accept_punct(",")) break;
      }
    }
    expect_punct(")");
    expect_punct(";");
    module.instances.push_back(std::move(inst));
  }

  Module parse_module_decl() {
    param_values_.clear();
    expect_keyword("module");
    Module module;
    module.name = expect_identifier("module name");

    // Optional parameter header: #(parameter W = 8, ...)
    if (accept_punct("#")) {
      expect_punct("(");
      while (true) {
        accept_keyword("parameter");
        parse_param_assignment(module, /*local=*/false);
        if (!accept_punct(",")) break;
      }
      expect_punct(")");
    }

    // Port header: ANSI declarations or a plain name list.
    if (accept_punct("(")) {
      if (!peek().is_punct(")")) {
        bool ansi = peek().is(TokenKind::Keyword) &&
                    (peek().is_keyword("input") || peek().is_keyword("output") ||
                     peek().is_keyword("inout"));
        if (ansi) {
          PortDir dir = PortDir::Input;
          NetKind net = NetKind::Wire;
          std::optional<BitRange> range;
          while (true) {
            if (peek().is_keyword("input") || peek().is_keyword("output") ||
                peek().is_keyword("inout")) {
              dir = parse_port_dir();
              net = NetKind::Wire;
              if (accept_keyword("reg")) net = NetKind::Reg;
              else accept_keyword("wire");
              accept_keyword("signed");
              range = parse_optional_range();
            }
            const std::string name = expect_identifier("port name");
            module.ports.push_back(PortDecl{dir, net, name, range});
            if (net == NetKind::Reg) {
              NetDecl decl;
              decl.kind = NetKind::Reg;
              decl.name = name;
              decl.range = range;
              module.nets.push_back(std::move(decl));
            }
            if (!accept_punct(",")) break;
          }
        } else {
          while (true) {
            const std::string name = expect_identifier("port name");
            module.ports.push_back(PortDecl{PortDir::Input, NetKind::Wire, name, std::nullopt});
            if (!accept_punct(",")) break;
          }
        }
      }
      expect_punct(")");
    }
    expect_punct(";");

    // Module body.
    while (!peek().is_keyword("endmodule")) {
      const Token& t = peek();
      if (t.is(TokenKind::End)) fail("unterminated module");

      if (t.is_keyword("parameter") || t.is_keyword("localparam")) {
        const bool local = t.is_keyword("localparam");
        advance();
        while (true) {
          parse_param_assignment(module, local);
          if (!accept_punct(",")) break;
        }
        expect_punct(";");
      } else if (t.is_keyword("input")) {
        advance();
        parse_port_direction_decl(module, PortDir::Input);
      } else if (t.is_keyword("output")) {
        advance();
        parse_port_direction_decl(module, PortDir::Output);
      } else if (t.is_keyword("inout")) {
        advance();
        parse_port_direction_decl(module, PortDir::Inout);
      } else if (t.is_keyword("wire")) {
        advance();
        parse_net_decl(module, NetKind::Wire);
      } else if (t.is_keyword("reg")) {
        advance();
        parse_net_decl(module, NetKind::Reg);
      } else if (t.is_keyword("integer")) {
        advance();
        parse_net_decl(module, NetKind::Integer);
      } else if (t.is_keyword("assign")) {
        advance();
        while (true) {
          ContAssign assign;
          assign.lhs = parse_primary();
          expect_punct("=");
          assign.rhs = parse_expression();
          module.assigns.push_back(std::move(assign));
          if (!accept_punct(",")) break;
        }
        expect_punct(";");
      } else if (t.is_keyword("always")) {
        advance();
        parse_always_block(module);
      } else if (t.is_keyword("initial")) {
        advance();
        InitialBlock block;
        block.body = parse_statement();
        module.initial_blocks.push_back(std::move(block));
      } else if (t.is(TokenKind::Identifier)) {
        parse_instance(module);
      } else {
        fail("unexpected token in module body");
      }
    }
    advance();  // endmodule
    return module;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::map<std::string, std::int64_t> param_values_;
};

}  // namespace

SourceFile parse_source(std::string_view source) { return Parser(source).parse_file(); }

Module parse_module(std::string_view source) {
  SourceFile file = parse_source(source);
  if (file.modules.size() != 1) {
    throw ParseError("expected exactly one module, found " +
                         std::to_string(file.modules.size()),
                     1, 1);
  }
  return std::move(file.modules.front());
}

}  // namespace noodle::verilog
