#include "verilog/printer.h"

#include <sstream>

namespace noodle::verilog {

namespace {

int print_precedence(const Expr& e) {
  if (e.kind != ExprKind::Binary) return 100;
  const std::string& op = e.name;
  if (op == "||") return 1;
  if (op == "&&") return 2;
  if (op == "|") return 3;
  if (op == "^" || op == "~^" || op == "^~") return 4;
  if (op == "&") return 5;
  if (op == "==" || op == "!=" || op == "===" || op == "!==") return 6;
  if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
  if (op == "<<" || op == ">>" || op == "<<<" || op == ">>>") return 8;
  if (op == "+" || op == "-") return 9;
  return 10;
}

std::string print_child(const Expr& parent, const Expr& child, bool right_side) {
  const int pp = print_precedence(parent);
  const int cp = print_precedence(child);
  // Parenthesize when the child binds looser, or equally on the right side
  // (operators are left-associative).
  const bool parens =
      child.kind == ExprKind::Binary && (cp < pp || (cp == pp && right_side));
  const std::string text = print_expr(child);
  return parens ? "(" + text + ")" : text;
}

std::string indent_of(int depth) { return std::string(static_cast<std::size_t>(depth) * 2, ' '); }

std::string range_text(const std::optional<BitRange>& range) {
  if (!range) return "";
  return "[" + std::to_string(range->msb) + ":" + std::to_string(range->lsb) + "] ";
}

const char* dir_text(PortDir dir) {
  switch (dir) {
    case PortDir::Input: return "input";
    case PortDir::Output: return "output";
    case PortDir::Inout: return "inout";
  }
  return "input";
}

}  // namespace

std::string print_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Number:
      if (e.width > 0) {
        // Hex for wide constants, decimal for narrow ones: matches the
        // corpus generator's style and keeps literals readable.
        std::ostringstream os;
        if (e.width > 4) {
          os << e.width << "'h" << std::hex << e.value;
        } else {
          os << e.width << "'d" << std::dec << e.value;
        }
        return os.str();
      }
      return std::to_string(e.value);
    case ExprKind::Identifier:
      return e.name;
    case ExprKind::Unary: {
      const Expr& operand = *e.operands[0];
      const bool parens = operand.kind == ExprKind::Binary ||
                          operand.kind == ExprKind::Ternary ||
                          operand.kind == ExprKind::Unary;
      const std::string text = print_expr(operand);
      return e.name + (parens ? "(" + text + ")" : text);
    }
    case ExprKind::Binary:
      return print_child(e, *e.operands[0], false) + " " + e.name + " " +
             print_child(e, *e.operands[1], true);
    case ExprKind::Ternary: {
      auto wrap = [](const Expr& x) {
        const std::string text = print_expr(x);
        return (x.kind == ExprKind::Ternary || x.kind == ExprKind::Binary)
                   ? "(" + text + ")"
                   : text;
      };
      return wrap(*e.operands[0]) + " ? " + wrap(*e.operands[1]) + " : " +
             wrap(*e.operands[2]);
    }
    case ExprKind::Index:
      return print_expr(*e.operands[0]) + "[" + print_expr(*e.operands[1]) + "]";
    case ExprKind::Range:
      return print_expr(*e.operands[0]) + "[" + print_expr(*e.operands[1]) + ":" +
             print_expr(*e.operands[2]) + "]";
    case ExprKind::Concat: {
      std::string out = "{";
      for (std::size_t i = 0; i < e.operands.size(); ++i) {
        if (i != 0) out += ", ";
        out += print_expr(*e.operands[i]);
      }
      return out + "}";
    }
    case ExprKind::Replicate:
      return "{" + print_expr(*e.operands[0]) + "{" + print_expr(*e.operands[1]) + "}}";
  }
  return "/*invalid*/0";
}

std::string print_stmt(const Stmt& s, int indent) {
  const std::string pad = indent_of(indent);
  std::ostringstream os;
  switch (s.kind) {
    case StmtKind::Block:
      os << pad << "begin\n";
      for (const auto& child : s.body) os << print_stmt(*child, indent + 1);
      os << pad << "end\n";
      break;
    case StmtKind::If:
      os << pad << "if (" << print_expr(*s.cond) << ")\n";
      os << print_stmt(*s.then_branch, indent + 1);
      if (s.else_branch) {
        os << pad << "else\n";
        os << print_stmt(*s.else_branch, indent + 1);
      }
      break;
    case StmtKind::Case:
      os << pad << "case (" << print_expr(*s.cond) << ")\n";
      for (const auto& item : s.case_items) {
        os << indent_of(indent + 1);
        if (item.labels.empty()) {
          os << "default:";
        } else {
          for (std::size_t i = 0; i < item.labels.size(); ++i) {
            if (i != 0) os << ", ";
            os << print_expr(*item.labels[i]);
          }
          os << ":";
        }
        os << "\n" << print_stmt(*item.body, indent + 2);
      }
      os << pad << "endcase\n";
      break;
    case StmtKind::For: {
      auto inline_assign = [](const Stmt& a) {
        const char* op = a.kind == StmtKind::NonBlockingAssign ? " <= " : " = ";
        return print_expr(*a.lhs) + op + print_expr(*a.rhs);
      };
      os << pad << "for (" << inline_assign(*s.for_init) << "; " << print_expr(*s.cond)
         << "; " << inline_assign(*s.for_step) << ")\n";
      os << print_stmt(*s.body[0], indent + 1);
      break;
    }
    case StmtKind::BlockingAssign:
      os << pad << print_expr(*s.lhs) << " = " << print_expr(*s.rhs) << ";\n";
      break;
    case StmtKind::NonBlockingAssign:
      os << pad << print_expr(*s.lhs) << " <= " << print_expr(*s.rhs) << ";\n";
      break;
    case StmtKind::Null:
      os << pad << ";\n";
      break;
  }
  return os.str();
}

std::string print_module(const Module& m) {
  std::ostringstream os;
  os << "module " << m.name;

  // Header parameters (non-local only).
  bool any_param = false;
  for (const auto& p : m.params) {
    if (!p.local) {
      any_param = true;
      break;
    }
  }
  if (any_param) {
    os << " #(\n";
    bool first = true;
    for (const auto& p : m.params) {
      if (p.local) continue;
      if (!first) os << ",\n";
      first = false;
      os << "  parameter " << p.name << " = " << print_expr(*p.value);
    }
    os << "\n)";
  }

  os << " (\n";
  for (std::size_t i = 0; i < m.ports.size(); ++i) {
    const PortDecl& port = m.ports[i];
    os << "  " << dir_text(port.dir);
    if (port.net == NetKind::Reg) os << " reg";
    os << " " << range_text(port.range) << port.name;
    if (i + 1 != m.ports.size()) os << ",";
    os << "\n";
  }
  os << ");\n";

  for (const auto& p : m.params) {
    if (p.local) os << "  localparam " << p.name << " = " << print_expr(*p.value) << ";\n";
  }

  for (const auto& net : m.nets) {
    // Reg ports were already declared in the ANSI header.
    bool is_port_reg = false;
    if (net.kind == NetKind::Reg) {
      if (const PortDecl* port = m.find_port(net.name)) {
        is_port_reg = port->net == NetKind::Reg;
      }
    }
    if (is_port_reg) continue;
    switch (net.kind) {
      case NetKind::Wire: os << "  wire "; break;
      case NetKind::Reg: os << "  reg "; break;
      case NetKind::Integer: os << "  integer "; break;
    }
    if (net.kind != NetKind::Integer) os << range_text(net.range);
    os << net.name;
    if (net.init) os << " = " << print_expr(*net.init);
    os << ";\n";
  }

  for (const auto& assign : m.assigns) {
    os << "  assign " << print_expr(*assign.lhs) << " = " << print_expr(*assign.rhs)
       << ";\n";
  }

  for (const auto& block : m.always_blocks) {
    os << "  always @(";
    if (block.star) {
      os << "*";
    } else {
      for (std::size_t i = 0; i < block.sensitivity.size(); ++i) {
        if (i != 0) os << " or ";
        const SensItem& item = block.sensitivity[i];
        if (item.edge == EdgeKind::Posedge) os << "posedge ";
        if (item.edge == EdgeKind::Negedge) os << "negedge ";
        os << item.signal;
      }
    }
    os << ")\n" << print_stmt(*block.body, 2);
  }

  for (const auto& block : m.initial_blocks) {
    os << "  initial\n" << print_stmt(*block.body, 2);
  }

  for (const auto& inst : m.instances) {
    os << "  " << inst.module_name << " " << inst.instance_name << " (\n";
    for (std::size_t i = 0; i < inst.connections.size(); ++i) {
      const PortConnection& conn = inst.connections[i];
      os << "    ";
      if (conn.port.empty()) {
        os << (conn.actual ? print_expr(*conn.actual) : "");
      } else {
        os << "." << conn.port << "(" << (conn.actual ? print_expr(*conn.actual) : "")
           << ")";
      }
      if (i + 1 != inst.connections.size()) os << ",";
      os << "\n";
    }
    os << "  );\n";
  }

  os << "endmodule\n";
  return os.str();
}

std::string print_source(const SourceFile& file) {
  std::string out;
  for (std::size_t i = 0; i < file.modules.size(); ++i) {
    if (i != 0) out += "\n";
    out += print_module(file.modules[i]);
  }
  return out;
}

}  // namespace noodle::verilog
