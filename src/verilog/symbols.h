#pragma once
// The interned-symbol contract shared by the verilog front end and the
// graph layer.
//
// Every SymbolTable that backs a parse or a NetGraph is seeded with the
// same fixed vocabulary in the same order: first the 42 operator/punct
// spellings (symbol id == PunctId - 1), then the synthetic node labels the
// graph lowering emits. Because the ids are fixed at compile time, hot
// paths classify operators with a table lookup on the symbol id instead of
// chains of string comparisons (graph::op_bucket), and a parse arena can
// hand its symbols straight to a NetGraph without translation.

#include "util/intern.h"
#include "verilog/token.h"

namespace noodle::verilog {

/// Symbol of a table punct (operators included). Only valid for id != 0.
constexpr util::Symbol punct_symbol(PunctId id) noexcept {
  return static_cast<util::Symbol>(id - 1);
}

// Synthetic labels used by the graph lowering, in preintern order.
inline constexpr util::Symbol kSymLhsConcat =
    static_cast<util::Symbol>(kPunctSpellings.size() + 0);  // "{lhs}"
inline constexpr util::Symbol kSymConcat =
    static_cast<util::Symbol>(kPunctSpellings.size() + 1);  // "{}"
inline constexpr util::Symbol kSymSelect =
    static_cast<util::Symbol>(kPunctSpellings.size() + 2);  // "[]"
inline constexpr util::Symbol kSymTernaryMux =
    static_cast<util::Symbol>(kPunctSpellings.size() + 3);  // "?:"
inline constexpr util::Symbol kSymBadLhs =
    static_cast<util::Symbol>(kPunctSpellings.size() + 4);  // "__bad_lhs__"
inline constexpr util::Symbol kSymBadExpr =
    static_cast<util::Symbol>(kPunctSpellings.size() + 5);  // "__bad_expr__"

/// Number of preinterned symbols; ids below this are the fixed vocabulary.
inline constexpr util::Symbol kPreinternedSymbolCount =
    static_cast<util::Symbol>(kPunctSpellings.size() + 6);

/// Seeds `table` with the fixed vocabulary. Must be called on an empty
/// table (asserts the resulting ids match the constants above).
void preintern_verilog_symbols(util::SymbolTable& table);

}  // namespace noodle::verilog
