#pragma once
// Recursive-descent parser for the supported Verilog-2001 subset:
// modules with ANSI or non-ANSI port declarations, wire/reg/integer nets,
// parameters, continuous assigns, always/initial blocks (begin/end, if/else,
// case/casez, for), module instantiation with named connections, and the
// full synthesizable expression grammar with standard precedence.
//
// Out-of-subset constructs (4-state literals, memories, functions, generate)
// raise ParseError with a source location; the corpus generator never emits
// them, and user-supplied files get a clear diagnostic instead of a silently
// wrong feature vector.

#include <stdexcept>
#include <string>
#include <string_view>

#include "verilog/ast.h"

namespace noodle::verilog {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column);
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Parses one source file (one or more modules). Throws LexError/ParseError.
SourceFile parse_source(std::string_view source);

/// Parses a file expected to contain exactly one module.
Module parse_module(std::string_view source);

}  // namespace noodle::verilog
