#pragma once
// Recursive-descent parser for the supported Verilog-2001 subset:
// modules with ANSI or non-ANSI port declarations, wire/reg/integer nets,
// parameters, continuous assigns, always/initial blocks (begin/end, if/else,
// case/casez, for), module instantiation with named connections, and the
// full synthesizable expression grammar with standard precedence.
//
// Out-of-subset constructs (4-state literals, memories, functions, generate)
// raise ParseError with a source location; the corpus generator never emits
// them, and user-supplied files get a clear diagnostic instead of a silently
// wrong feature vector.
//
// There is one grammar implementation: it parses into the arena AST
// (fast_ast.h) through a reusable ParserWorkspace. The classic owning
// entry points parse_source()/parse_module() are thin wrappers that convert
// the arena tree into the mutable ast.h form for consumers that rewrite RTL.

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/arena.h"
#include "util/intern.h"
#include "verilog/ast.h"
#include "verilog/fast_ast.h"
#include "verilog/token.h"

namespace noodle::verilog {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column);
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Reusable parsing state: token buffer, AST arena, intern pool, and the
/// scratch stacks the parser builds sibling lists on. Grow-only — after the
/// first few parses every subsequent parse of similar-sized RTL performs
/// zero heap allocations. One workspace per thread; never share one across
/// threads, and never let a returned fast::SourceFile/Module outlive the
/// next parse() (it lives in the arena, which parse() resets).
class ParserWorkspace {
 public:
  /// Distinct spellings retained across parses before the intern pool is
  /// reset and re-seeded (at the start of the *next* parse). Bounds the
  /// memory of a long-lived worker featurizing arbitrarily diverse RTL —
  /// without the trim, every net name and constant spelling ever seen
  /// would stay interned forever. Far above any single design's
  /// vocabulary, so steady-state reuse on similar inputs never trips it.
  static constexpr std::size_t kDefaultMaxRetainedSymbols = 1u << 16;

  explicit ParserWorkspace(
      std::size_t max_retained_symbols = kDefaultMaxRetainedSymbols);

  ParserWorkspace(const ParserWorkspace&) = delete;
  ParserWorkspace& operator=(const ParserWorkspace&) = delete;

  /// Parses one source file into the arena. The returned reference (and
  /// every node it reaches) is valid until the next parse()/reset() — as
  /// are all symbols minted for it (the retention trim only runs before a
  /// parse, never during one).
  const fast::SourceFile& parse(std::string_view source);

  /// Parses a file expected to contain exactly one module.
  const fast::Module& parse_single(std::string_view source);

  /// The intern pool backing identifier symbols. Pre-seeded with the fixed
  /// verilog vocabulary (symbols.h), shared so a NetGraph can adopt it.
  const std::shared_ptr<util::SymbolTable>& symbols() const noexcept { return symbols_; }

  const util::Arena& arena() const noexcept { return arena_; }

  /// Drops every non-vocabulary symbol now (normally automatic via the
  /// retention limit). Invalidates symbols held by anything produced by
  /// earlier parses — the same lifetime rule as the arena itself.
  void reset_symbols();

 private:
  friend class FastParser;

  std::vector<Token> tokens_;
  util::Arena arena_;
  std::shared_ptr<util::SymbolTable> symbols_;

  // Scratch stacks for sibling lists (mark/commit discipline; see parser.cpp).
  std::vector<const fast::Expr*> expr_stack_;
  std::vector<const fast::Stmt*> stmt_stack_;
  std::vector<fast::CaseItem> case_stack_;
  std::vector<fast::SensItem> sens_stack_;
  std::vector<fast::ParamDecl> param_stack_;
  std::vector<fast::PortDecl> port_stack_;
  std::vector<fast::NetDecl> net_stack_;
  std::vector<fast::ContAssign> assign_stack_;
  std::vector<fast::AlwaysBlock> always_stack_;
  std::vector<fast::InitialBlock> initial_stack_;
  std::vector<fast::Instance> inst_stack_;
  std::vector<fast::PortConnection> conn_stack_;
  std::vector<fast::Module> module_stack_;
  std::vector<std::pair<util::Symbol, std::int64_t>> param_values_;
  std::size_t max_retained_symbols_;
};

/// Parses one source file (one or more modules). Throws LexError/ParseError.
SourceFile parse_source(std::string_view source);

/// Parses a file expected to contain exactly one module.
Module parse_module(std::string_view source);

/// Converts an arena tree into the owning ast.h form (deep copy; the result
/// is independent of the workspace).
SourceFile to_owned(const fast::SourceFile& file, const util::SymbolTable& symbols);
Module to_owned(const fast::Module& module, const util::SymbolTable& symbols);

}  // namespace noodle::verilog
