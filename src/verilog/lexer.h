#pragma once
// Hand-written lexer for the supported Verilog subset. Produces the full
// token stream eagerly; circuits in this domain are small (kilobytes), so
// the simplicity of a materialized vector outweighs streaming.
//
// Tokens are views into `source` (see token.h) — the caller keeps the
// source buffer alive for as long as it uses the tokens. lex_into() reuses
// the caller's vector so a warm buffer lexes with zero heap allocations.

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "verilog/token.h"

namespace noodle::verilog {

/// Thrown on malformed input (unterminated comment, bad number, stray char).
/// The message includes line/column of the offending text.
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line, int column);
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Tokenizes `source` into `tokens` (cleared first); the final token is
/// always TokenKind::End. Line (//) and block comments are skipped; block
/// comments may span lines.
void lex_into(std::string_view source, std::vector<Token>& tokens);

/// Convenience wrapper allocating a fresh vector.
std::vector<Token> lex(std::string_view source);

}  // namespace noodle::verilog
