#pragma once
// AST -> Verilog source emission. print(parse(text)) re-parses to an
// equivalent AST (round-trip property covered by tests), which lets the
// Trojan inserter operate on ASTs and still hand real Verilog text to the
// rest of the pipeline — exactly what a Trust-Hub style corpus provides.

#include <string>

#include "verilog/ast.h"

namespace noodle::verilog {

/// Renders an expression with minimal parenthesization (children of a
/// binary operator are parenthesized when their precedence is lower).
std::string print_expr(const Expr& e);

/// Renders a statement at the given indentation depth (2 spaces per level).
std::string print_stmt(const Stmt& s, int indent = 0);

/// Renders a complete module (ANSI port style).
std::string print_module(const Module& m);

/// Renders all modules in the file, separated by blank lines.
std::string print_source(const SourceFile& file);

}  // namespace noodle::verilog
