#include "verilog/symbols.h"

#include <stdexcept>

namespace noodle::verilog {

void preintern_verilog_symbols(util::SymbolTable& table) {
  if (table.size() != 0) {
    throw std::logic_error("preintern_verilog_symbols: table is not empty");
  }
  for (const std::string_view spelling : kPunctSpellings) table.intern(spelling);
  table.intern("{lhs}");
  table.intern("{}");
  table.intern("[]");
  table.intern("?:");
  table.intern("__bad_lhs__");
  table.intern("__bad_expr__");
  if (table.size() != kPreinternedSymbolCount ||
      table.text(kSymBadExpr) != "__bad_expr__") {
    throw std::logic_error("preintern_verilog_symbols: id contract violated");
  }
}

}  // namespace noodle::verilog
