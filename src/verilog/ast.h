#pragma once
// Abstract syntax tree for the supported Verilog subset.
//
// The AST is the hub of the whole system: the parser produces it, the Trojan
// inserter rewrites it, the tabular feature extractor walks it, the graph
// builder lowers it to a data-flow graph, and the printer turns it back into
// Verilog text. Nodes are owned via std::unique_ptr and deep-clonable so the
// inserter can derive an infected variant without mutating the original.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace noodle::verilog {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  Number,      // 8'hFF, 42
  Identifier,  // foo
  Unary,       // !a, ~a, &a, |a, ^a, -a
  Binary,      // a + b, a == b, ...
  Ternary,     // c ? a : b
  Index,       // a[3]
  Range,       // a[7:0]
  Concat,      // {a, b, c}
  Replicate,   // {4{a}}
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::Number;

  // Number payload.
  std::uint64_t value = 0;
  int width = 0;  // 0 = unsized literal

  // Identifier name, or operator spelling for Unary/Binary ("+", "&&", ...).
  std::string name;

  // Children. Layout by kind:
  //   Unary:     [operand]
  //   Binary:    [lhs, rhs]
  //   Ternary:   [cond, then, else]
  //   Index:     [base, index]
  //   Range:     [base, msb, lsb]
  //   Concat:    [parts...]
  //   Replicate: [count, part]
  std::vector<ExprPtr> operands;

  ExprPtr clone() const;

  // --- Factory helpers (used heavily by the design generators) ---
  static ExprPtr number(std::uint64_t value, int width = 0);
  static ExprPtr ident(std::string name);
  static ExprPtr unary(std::string op, ExprPtr operand);
  static ExprPtr binary(std::string op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr ternary(ExprPtr cond, ExprPtr then_e, ExprPtr else_e);
  static ExprPtr index(ExprPtr base, ExprPtr idx);
  static ExprPtr range(ExprPtr base, ExprPtr msb, ExprPtr lsb);
  static ExprPtr concat(std::vector<ExprPtr> parts);
  static ExprPtr replicate(ExprPtr count, ExprPtr part);
};

// ---------------------------------------------------------------------------
// Statements (inside always/initial blocks)
// ---------------------------------------------------------------------------

enum class StmtKind {
  Block,             // begin ... end
  If,                // if (c) s [else s]
  Case,              // case (x) items endcase
  For,               // for (init; cond; step) body
  BlockingAssign,    // a = b;
  NonBlockingAssign, // a <= b;
  Null,              // ;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct CaseItem {
  std::vector<ExprPtr> labels;  // empty => default
  StmtPtr body;

  CaseItem clone() const;
};

struct Stmt {
  StmtKind kind = StmtKind::Null;

  ExprPtr cond;               // If condition / Case subject / For condition
  StmtPtr then_branch;        // If
  StmtPtr else_branch;        // If (may be null)
  std::vector<StmtPtr> body;  // Block children / For body (single element)
  std::vector<CaseItem> case_items;

  ExprPtr lhs;  // assignments; For init/step are stored as child statements
  ExprPtr rhs;
  StmtPtr for_init;  // For: blocking assign
  StmtPtr for_step;  // For: blocking assign

  StmtPtr clone() const;

  static StmtPtr block(std::vector<StmtPtr> stmts);
  static StmtPtr if_stmt(ExprPtr cond, StmtPtr then_branch, StmtPtr else_branch = nullptr);
  static StmtPtr case_stmt(ExprPtr subject, std::vector<CaseItem> items);
  static StmtPtr for_stmt(StmtPtr init, ExprPtr cond, StmtPtr step, StmtPtr body);
  static StmtPtr blocking(ExprPtr lhs, ExprPtr rhs);
  static StmtPtr non_blocking(ExprPtr lhs, ExprPtr rhs);
  static StmtPtr null_stmt();
};

// ---------------------------------------------------------------------------
// Module items
// ---------------------------------------------------------------------------

enum class PortDir { Input, Output, Inout };
enum class NetKind { Wire, Reg, Integer };

/// A declared range like [7:0]; msb/lsb are constant expressions in the
/// supported subset and stored as plain integers after parsing.
struct BitRange {
  int msb = 0;
  int lsb = 0;

  int width() const noexcept { return msb - lsb + 1; }
  bool is_scalar() const noexcept { return msb == 0 && lsb == 0; }
};

struct PortDecl {
  PortDir dir = PortDir::Input;
  NetKind net = NetKind::Wire;  // `output reg` => Reg
  std::string name;
  std::optional<BitRange> range;
};

struct NetDecl {
  NetKind kind = NetKind::Wire;
  std::string name;
  std::optional<BitRange> range;
  ExprPtr init;  // optional `wire x = expr;`

  NetDecl clone() const;
};

struct ParamDecl {
  bool local = false;  // localparam vs parameter
  std::string name;
  ExprPtr value;

  ParamDecl clone() const;
};

struct ContAssign {
  ExprPtr lhs;
  ExprPtr rhs;

  ContAssign clone() const;
};

enum class EdgeKind { None, Posedge, Negedge };

struct SensItem {
  EdgeKind edge = EdgeKind::None;
  std::string signal;
};

struct AlwaysBlock {
  bool star = false;  // always @(*)
  std::vector<SensItem> sensitivity;
  StmtPtr body;

  AlwaysBlock clone() const;

  /// True when any sensitivity item is edge-triggered (sequential logic).
  bool is_sequential() const noexcept;
};

struct InitialBlock {
  StmtPtr body;

  InitialBlock clone() const;
};

struct PortConnection {
  std::string port;  // formal name
  ExprPtr actual;    // may be null for unconnected .port()
};

struct Instance {
  std::string module_name;
  std::string instance_name;
  std::vector<PortConnection> connections;

  Instance clone() const;
};

struct Module {
  std::string name;
  std::vector<ParamDecl> params;
  std::vector<PortDecl> ports;
  std::vector<NetDecl> nets;
  std::vector<ContAssign> assigns;
  std::vector<AlwaysBlock> always_blocks;
  std::vector<InitialBlock> initial_blocks;
  std::vector<Instance> instances;

  Module clone() const;

  const PortDecl* find_port(const std::string& name) const;
  const NetDecl* find_net(const std::string& name) const;

  /// Width of a named port or net (1 for scalars); 0 if the name is unknown.
  int width_of(const std::string& name) const;
};

/// A source file: one or more modules. The first module is the design top
/// by convention of the corpus generator.
struct SourceFile {
  std::vector<Module> modules;

  SourceFile clone() const;

  const Module* find_module(const std::string& name) const;
};

// ---------------------------------------------------------------------------
// Traversal helpers
// ---------------------------------------------------------------------------

/// Invokes fn on every expression in the tree rooted at e (pre-order).
void for_each_expr(const Expr& e, const std::function<void(const Expr&)>& fn);

/// Invokes fn on every statement under s (pre-order), then descends into
/// nested statements; expressions are not visited.
void for_each_stmt(const Stmt& s, const std::function<void(const Stmt&)>& fn);

/// Visits every expression in the module: declarations, assigns, always and
/// initial bodies, and instance connections.
void for_each_module_expr(const Module& m, const std::function<void(const Expr&)>& fn);

/// Visits every statement in all always/initial bodies of the module.
void for_each_module_stmt(const Module& m, const std::function<void(const Stmt&)>& fn);

/// Collects every identifier mentioned in an expression tree.
void collect_identifiers(const Expr& e, std::vector<std::string>& out);

}  // namespace noodle::verilog
