#pragma once
// AST-level hardware-Trojan insertion engine.
//
// This is the corpus side of the Trust-Hub substitution (see DESIGN.md):
// given a Trojan-free module, it plants a stealthy trigger + payload pair of
// the kinds the Trust-Hub RTL benchmarks exhibit:
//
//   Triggers  — TimeBomb   : free-running counter compared against a rare
//                            constant (classic time bomb),
//               CheatCode  : input vector compared against a magic constant,
//                            optionally with a registered arming stage,
//               Sequence   : small FSM that fires only after a specific
//                            multi-cycle input sequence.
//   Payloads  — Corrupt    : XORs a victim output with a constant mask,
//               Leak       : XORs internal state into a victim output
//                            (information leakage),
//               Disable    : forces a victim output to zero (denial).
//
// All insertions are pure AST rewrites; the result re-prints as valid
// Verilog, so downstream feature extraction sees exactly what it would see
// on a real infected netlist: extra low-activity nets, one more always
// block, and a rare branch guarding the payload mux.

#include <string>
#include <vector>

#include "util/rng.h"
#include "verilog/ast.h"

namespace noodle::trojan {

enum class TriggerKind { TimeBomb, CheatCode, Sequence };
enum class PayloadKind { Corrupt, Leak, Disable };

const char* to_string(TriggerKind kind) noexcept;
const char* to_string(PayloadKind kind) noexcept;

struct TrojanConfig {
  TriggerKind trigger = TriggerKind::TimeBomb;
  PayloadKind payload = PayloadKind::Corrupt;
  /// TimeBomb counter width; wider means rarer activation.
  int counter_width = 24;
  /// Sequence trigger length (number of matched input values), 2..4.
  int sequence_length = 3;
};

/// What was inserted, for labeling and for tests that assert structure.
struct TrojanReport {
  TriggerKind trigger = TriggerKind::TimeBomb;
  PayloadKind payload = PayloadKind::Corrupt;
  std::string trigger_net;             // combinational trigger wire
  std::string victim_output;           // corrupted output port
  std::vector<std::string> added_nets; // every net the Trojan introduced
};

/// True if the module has an edge-usable clock input (required by the
/// sequential triggers). The inserter falls back to CheatCode otherwise.
bool has_clock(const verilog::Module& m);

/// Name of the clock input ("clk"/"clock", else the first scalar input).
/// Throws std::runtime_error if the module has no scalar input at all.
std::string find_clock(const verilog::Module& m);

/// Optional synchronous reset input name ("rst"/"reset"/"rst_n"), or empty.
std::string find_reset(const verilog::Module& m);

/// Inserts a Trojan into `m` in place. Throws std::runtime_error when the
/// module has no output port to victimize or no inputs to trigger from.
TrojanReport insert_trojan(verilog::Module& m, const TrojanConfig& config,
                           util::Rng& rng);

/// Reroutes output port `port` through a fresh internal net: every existing
/// occurrence of the name is renamed to the returned internal net, the port
/// becomes a plain wire output, and callers add `assign port = ...` taps.
/// Exposed for tests and for building custom payloads.
std::string redirect_output(verilog::Module& m, const std::string& port);

}  // namespace noodle::trojan
