#include "trojan/inserter.h"

#include <algorithm>
#include <stdexcept>

#include "util/string_util.h"

namespace noodle::trojan {

using verilog::AlwaysBlock;
using verilog::BitRange;
using verilog::CaseItem;
using verilog::ContAssign;
using verilog::EdgeKind;
using verilog::Expr;
using verilog::ExprKind;
using verilog::ExprPtr;
using verilog::Module;
using verilog::NetDecl;
using verilog::NetKind;
using verilog::PortDecl;
using verilog::PortDir;
using verilog::SensItem;
using verilog::Stmt;
using verilog::StmtPtr;

const char* to_string(TriggerKind kind) noexcept {
  switch (kind) {
    case TriggerKind::TimeBomb: return "time_bomb";
    case TriggerKind::CheatCode: return "cheat_code";
    case TriggerKind::Sequence: return "sequence";
  }
  return "unknown";
}

const char* to_string(PayloadKind kind) noexcept {
  switch (kind) {
    case PayloadKind::Corrupt: return "corrupt";
    case PayloadKind::Leak: return "leak";
    case PayloadKind::Disable: return "disable";
  }
  return "unknown";
}

namespace {

// ---------------------------------------------------------------------------
// Mutable identifier renaming across the whole module
// ---------------------------------------------------------------------------

void rename_in_expr(Expr& e, const std::string& from, const std::string& to) {
  if (e.kind == ExprKind::Identifier && e.name == from) e.name = to;
  for (auto& child : e.operands) {
    if (child) rename_in_expr(*child, from, to);
  }
}

void rename_in_stmt(Stmt& s, const std::string& from, const std::string& to) {
  if (s.cond) rename_in_expr(*s.cond, from, to);
  if (s.lhs) rename_in_expr(*s.lhs, from, to);
  if (s.rhs) rename_in_expr(*s.rhs, from, to);
  if (s.then_branch) rename_in_stmt(*s.then_branch, from, to);
  if (s.else_branch) rename_in_stmt(*s.else_branch, from, to);
  for (auto& child : s.body) {
    if (child) rename_in_stmt(*child, from, to);
  }
  for (auto& item : s.case_items) {
    for (auto& label : item.labels) {
      if (label) rename_in_expr(*label, from, to);
    }
    if (item.body) rename_in_stmt(*item.body, from, to);
  }
  if (s.for_init) rename_in_stmt(*s.for_init, from, to);
  if (s.for_step) rename_in_stmt(*s.for_step, from, to);
}

void rename_identifier(Module& m, const std::string& from, const std::string& to) {
  for (auto& net : m.nets) {
    if (net.init) rename_in_expr(*net.init, from, to);
  }
  for (auto& assign : m.assigns) {
    rename_in_expr(*assign.lhs, from, to);
    rename_in_expr(*assign.rhs, from, to);
  }
  for (auto& block : m.always_blocks) {
    for (auto& item : block.sensitivity) {
      if (item.signal == from) item.signal = to;
    }
    if (block.body) rename_in_stmt(*block.body, from, to);
  }
  for (auto& block : m.initial_blocks) {
    if (block.body) rename_in_stmt(*block.body, from, to);
  }
  for (auto& inst : m.instances) {
    for (auto& conn : inst.connections) {
      if (conn.actual) rename_in_expr(*conn.actual, from, to);
    }
  }
}

// ---------------------------------------------------------------------------
// Structural queries
// ---------------------------------------------------------------------------

bool name_taken(const Module& m, const std::string& name) {
  return m.find_port(name) != nullptr || m.find_net(name) != nullptr;
}

std::string fresh_name(const Module& m, const std::string& stem) {
  if (!name_taken(m, stem)) return stem;
  for (int i = 0; i < 1000; ++i) {
    const std::string candidate = stem + "_" + std::to_string(i);
    if (!name_taken(m, candidate)) return candidate;
  }
  throw std::runtime_error("fresh_name: cannot find unused name for " + stem);
}

bool is_reset_name(const std::string& name) {
  const std::string lower = util::to_lower(name);
  return lower == "rst" || lower == "reset" || lower == "rst_n" || lower == "resetn" ||
         lower == "arst";
}

bool is_clock_name(const std::string& name) {
  const std::string lower = util::to_lower(name);
  return lower == "clk" || lower == "clock";
}

/// Data inputs: inputs that are neither clock nor reset.
std::vector<const PortDecl*> data_inputs(const Module& m) {
  std::vector<const PortDecl*> inputs;
  for (const auto& port : m.ports) {
    if (port.dir != PortDir::Input) continue;
    if (is_clock_name(port.name) || is_reset_name(port.name)) continue;
    inputs.push_back(&port);
  }
  return inputs;
}

int port_width(const PortDecl& port) { return port.range ? port.range->width() : 1; }

std::uint64_t mask_to_width(std::uint64_t value, int width) {
  if (width >= 64) return value;
  return value & ((1ULL << width) - 1ULL);
}

/// Random nonzero constant of the given width.
std::uint64_t random_magic(util::Rng& rng, int width) {
  const std::uint64_t value = mask_to_width(rng(), width);
  return value == 0 ? 1 : value;
}

/// Wraps a statement body with `if (rst) <reset_assigns> else <body>` when a
/// reset exists; otherwise returns the body unchanged.
StmtPtr with_reset(const std::string& reset, StmtPtr reset_branch, StmtPtr body) {
  if (reset.empty()) return body;
  ExprPtr cond = Expr::ident(reset);
  if (util::ends_with(reset, "_n") || util::ends_with(reset, "n")) {
    // Active-low resets in our corpora end in _n / n (rst_n, resetn).
    if (is_reset_name(reset) && (util::ends_with(reset, "_n") || reset == "resetn")) {
      cond = Expr::unary("!", std::move(cond));
    }
  }
  return Stmt::if_stmt(std::move(cond), std::move(reset_branch), std::move(body));
}

struct TriggerResult {
  std::string trig_net;
  std::vector<std::string> added_nets;
  /// Registers added by the trigger, usable as leak sources.
  std::vector<std::string> state_regs;
};

// ---------------------------------------------------------------------------
// Triggers
// ---------------------------------------------------------------------------

TriggerResult build_time_bomb(Module& m, const TrojanConfig& config, util::Rng& rng) {
  const std::string clk = find_clock(m);
  const std::string rst = find_reset(m);
  const int width = std::clamp(config.counter_width, 8, 62);

  TriggerResult result;
  const std::string counter = fresh_name(m, "tj_cnt");
  const std::string trig = fresh_name(m, "tj_trig");

  NetDecl counter_decl;
  counter_decl.kind = NetKind::Reg;
  counter_decl.name = counter;
  counter_decl.range = BitRange{width - 1, 0};
  m.nets.push_back(std::move(counter_decl));

  NetDecl trig_decl;
  trig_decl.kind = NetKind::Wire;
  trig_decl.name = trig;
  m.nets.push_back(std::move(trig_decl));

  // always @(posedge clk) if (rst) tj_cnt <= 0; else tj_cnt <= tj_cnt + 1;
  StmtPtr increment = Stmt::non_blocking(
      Expr::ident(counter), Expr::binary("+", Expr::ident(counter), Expr::number(1)));
  StmtPtr body = with_reset(
      rst, Stmt::non_blocking(Expr::ident(counter), Expr::number(0, width)),
      std::move(increment));

  AlwaysBlock block;
  block.sensitivity.push_back(SensItem{EdgeKind::Posedge, clk});
  block.body = Stmt::block([&] {
    std::vector<StmtPtr> stmts;
    stmts.push_back(std::move(body));
    return stmts;
  }());
  m.always_blocks.push_back(std::move(block));

  // assign tj_trig = tj_cnt == MAGIC;
  const std::uint64_t magic = random_magic(rng, width);
  ContAssign assign;
  assign.lhs = Expr::ident(trig);
  assign.rhs = Expr::binary("==", Expr::ident(counter), Expr::number(magic, width));
  m.assigns.push_back(std::move(assign));

  result.trig_net = trig;
  result.added_nets = {counter, trig};
  result.state_regs = {counter};
  return result;
}

/// Builds the comparison `inputs == magic` over a concatenation of data
/// inputs wide enough (>= 4 bits when possible) to keep activation rare.
ExprPtr build_input_match(util::Rng& rng,
                          const std::vector<const PortDecl*>& inputs) {
  std::vector<const PortDecl*> chosen;
  int total_width = 0;
  std::vector<std::size_t> order = rng.sample_indices(inputs.size(), inputs.size());
  for (const std::size_t idx : order) {
    chosen.push_back(inputs[idx]);
    total_width += port_width(*inputs[idx]);
    if (total_width >= 8 || chosen.size() >= 3) break;
  }

  ExprPtr subject;
  if (chosen.size() == 1) {
    subject = Expr::ident(chosen[0]->name);
  } else {
    std::vector<ExprPtr> parts;
    parts.reserve(chosen.size());
    for (const PortDecl* port : chosen) parts.push_back(Expr::ident(port->name));
    subject = Expr::concat(std::move(parts));
  }
  const int width = std::min(total_width, 62);
  const std::uint64_t magic = random_magic(rng, width);
  return Expr::binary("==", std::move(subject), Expr::number(magic, width));
}

TriggerResult build_cheat_code(Module& m, util::Rng& rng) {
  const auto inputs = data_inputs(m);
  if (inputs.empty()) throw std::runtime_error("cheat_code trigger: no data inputs");

  TriggerResult result;
  const std::string trig = fresh_name(m, "tj_trig");
  ExprPtr match = build_input_match(rng, inputs);

  const bool armed = has_clock(m) && rng.bernoulli(0.5);
  if (armed) {
    // Two-stage cheat code: a first magic value arms a register, a second
    // fires the trigger. Harder to hit in random functional test.
    const std::string clk = find_clock(m);
    const std::string rst = find_reset(m);
    const std::string arm = fresh_name(m, "tj_arm");

    NetDecl arm_decl;
    arm_decl.kind = NetKind::Reg;
    arm_decl.name = arm;
    m.nets.push_back(std::move(arm_decl));

    ExprPtr arm_match = build_input_match(rng, inputs);
    StmtPtr set_arm = Stmt::if_stmt(std::move(arm_match),
                                    Stmt::non_blocking(Expr::ident(arm), Expr::number(1, 1)));
    StmtPtr body = with_reset(rst,
                              Stmt::non_blocking(Expr::ident(arm), Expr::number(0, 1)),
                              std::move(set_arm));
    AlwaysBlock block;
    block.sensitivity.push_back(SensItem{EdgeKind::Posedge, clk});
    std::vector<StmtPtr> stmts;
    stmts.push_back(std::move(body));
    block.body = Stmt::block(std::move(stmts));
    m.always_blocks.push_back(std::move(block));

    match = Expr::binary("&&", Expr::ident(arm), std::move(match));
    result.added_nets.push_back(arm);
    result.state_regs.push_back(arm);
  }

  NetDecl trig_decl;
  trig_decl.kind = NetKind::Wire;
  trig_decl.name = trig;
  m.nets.push_back(std::move(trig_decl));

  ContAssign assign;
  assign.lhs = Expr::ident(trig);
  assign.rhs = std::move(match);
  m.assigns.push_back(std::move(assign));

  result.trig_net = trig;
  result.added_nets.push_back(trig);
  return result;
}

TriggerResult build_sequence(Module& m, const TrojanConfig& config, util::Rng& rng) {
  const auto inputs = data_inputs(m);
  if (inputs.empty()) throw std::runtime_error("sequence trigger: no data inputs");
  const std::string clk = find_clock(m);
  const std::string rst = find_reset(m);

  // Follow a single data input through K magic values.
  const PortDecl* input = inputs[rng.sample_indices(inputs.size(), 1)[0]];
  const int in_width = std::min(port_width(*input), 62);
  const int length = std::clamp(config.sequence_length, 2, 4);

  TriggerResult result;
  const std::string state = fresh_name(m, "tj_seq");
  const std::string trig = fresh_name(m, "tj_trig");
  const int state_width = 3;  // up to 4 matched stages + fired state

  NetDecl state_decl;
  state_decl.kind = NetKind::Reg;
  state_decl.name = state;
  state_decl.range = BitRange{state_width - 1, 0};
  m.nets.push_back(std::move(state_decl));

  NetDecl trig_decl;
  trig_decl.kind = NetKind::Wire;
  trig_decl.name = trig;
  m.nets.push_back(std::move(trig_decl));

  std::vector<std::uint64_t> sequence(static_cast<std::size_t>(length));
  for (auto& v : sequence) v = random_magic(rng, in_width);

  // case (tj_seq)
  //   i: tj_seq <= (in == V_i) ? i+1 : ((in == V_0) ? 1 : 0);
  //   length: tj_seq <= length;   // latched fired state
  //   default: tj_seq <= 0;
  std::vector<CaseItem> items;
  for (int i = 0; i < length; ++i) {
    CaseItem item;
    item.labels.push_back(Expr::number(static_cast<std::uint64_t>(i), state_width));
    ExprPtr on_match = Expr::number(static_cast<std::uint64_t>(i + 1), state_width);
    ExprPtr restart = Expr::ternary(
        Expr::binary("==", Expr::ident(input->name), Expr::number(sequence[0], in_width)),
        Expr::number(1, state_width), Expr::number(0, state_width));
    ExprPtr next = Expr::ternary(
        Expr::binary("==", Expr::ident(input->name), Expr::number(sequence[static_cast<std::size_t>(i)], in_width)),
        std::move(on_match), std::move(restart));
    item.body = Stmt::non_blocking(Expr::ident(state), std::move(next));
    items.push_back(std::move(item));
  }
  {
    CaseItem fired;
    fired.labels.push_back(Expr::number(static_cast<std::uint64_t>(length), state_width));
    fired.body = Stmt::non_blocking(Expr::ident(state),
                                    Expr::number(static_cast<std::uint64_t>(length), state_width));
    items.push_back(std::move(fired));
  }
  {
    CaseItem dflt;
    dflt.body = Stmt::non_blocking(Expr::ident(state), Expr::number(0, state_width));
    items.push_back(std::move(dflt));
  }

  StmtPtr fsm = Stmt::case_stmt(Expr::ident(state), std::move(items));
  StmtPtr body = with_reset(
      rst, Stmt::non_blocking(Expr::ident(state), Expr::number(0, state_width)),
      std::move(fsm));

  AlwaysBlock block;
  block.sensitivity.push_back(SensItem{EdgeKind::Posedge, clk});
  std::vector<StmtPtr> stmts;
  stmts.push_back(std::move(body));
  block.body = Stmt::block(std::move(stmts));
  m.always_blocks.push_back(std::move(block));

  ContAssign assign;
  assign.lhs = Expr::ident(trig);
  assign.rhs = Expr::binary("==", Expr::ident(state),
                            Expr::number(static_cast<std::uint64_t>(length), state_width));
  m.assigns.push_back(std::move(assign));

  result.trig_net = trig;
  result.added_nets = {state, trig};
  result.state_regs = {state};
  return result;
}

// ---------------------------------------------------------------------------
// Payloads
// ---------------------------------------------------------------------------

const PortDecl* pick_victim_output(const Module& m, util::Rng& rng) {
  std::vector<const PortDecl*> outputs;
  for (const auto& port : m.ports) {
    if (port.dir == PortDir::Output) outputs.push_back(&port);
  }
  if (outputs.empty()) return nullptr;
  // Prefer vector outputs: corrupting a bus is the common Trust-Hub pattern.
  std::vector<const PortDecl*> buses;
  for (const PortDecl* port : outputs) {
    if (port_width(*port) > 1) buses.push_back(port);
  }
  const auto& pool = buses.empty() ? outputs : buses;
  return pool[rng.sample_indices(pool.size(), 1)[0]];
}

/// XOR source used by the Leak payload: one bit of internal Trojan state,
/// replicated across the victim width.
ExprPtr leak_expr(const Module& m, const std::string& source_reg,
                  const std::string& carrier, int width) {
  ExprPtr bit;
  const int source_width = m.width_of(source_reg);
  if (source_width > 1) {
    bit = Expr::index(Expr::ident(source_reg), Expr::number(0));
  } else {
    bit = Expr::ident(source_reg);
  }
  ExprPtr mask;
  if (width > 1) {
    mask = Expr::replicate(Expr::number(static_cast<std::uint64_t>(width)), std::move(bit));
  } else {
    mask = std::move(bit);
  }
  return Expr::binary("^", Expr::ident(carrier), std::move(mask));
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

bool has_clock(const verilog::Module& m) {
  for (const auto& port : m.ports) {
    if (port.dir == PortDir::Input && port_width(port) == 1 && is_clock_name(port.name))
      return true;
  }
  return false;
}

std::string find_clock(const verilog::Module& m) {
  for (const auto& port : m.ports) {
    if (port.dir == PortDir::Input && port_width(port) == 1 && is_clock_name(port.name))
      return port.name;
  }
  for (const auto& port : m.ports) {
    if (port.dir == PortDir::Input && port_width(port) == 1) return port.name;
  }
  throw std::runtime_error("find_clock: module '" + m.name + "' has no scalar input");
}

std::string find_reset(const verilog::Module& m) {
  for (const auto& port : m.ports) {
    if (port.dir == PortDir::Input && port_width(port) == 1 && is_reset_name(port.name))
      return port.name;
  }
  return {};
}

std::string redirect_output(verilog::Module& m, const std::string& port_name) {
  PortDecl* port = nullptr;
  for (auto& p : m.ports) {
    if (p.name == port_name) {
      port = &p;
      break;
    }
  }
  if (port == nullptr || port->dir != PortDir::Output) {
    throw std::runtime_error("redirect_output: '" + port_name + "' is not an output");
  }

  const std::string internal = fresh_name(m, port_name + "_pre");
  rename_identifier(m, port_name, internal);

  bool had_net_decl = false;
  for (auto& net : m.nets) {
    if (net.name == port_name) {
      net.name = internal;
      had_net_decl = true;
      break;
    }
  }
  if (!had_net_decl) {
    NetDecl decl;
    decl.kind = NetKind::Wire;
    decl.name = internal;
    decl.range = port->range;
    m.nets.push_back(std::move(decl));
  }
  port->net = NetKind::Wire;  // now driven by the tap assign
  return internal;
}

TrojanReport insert_trojan(verilog::Module& m, const TrojanConfig& config,
                           util::Rng& rng) {
  TrojanReport report;
  report.payload = config.payload;

  // Sequential triggers need a clock; degrade gracefully to a cheat code.
  TriggerKind trigger = config.trigger;
  if (!has_clock(m) &&
      (trigger == TriggerKind::TimeBomb || trigger == TriggerKind::Sequence)) {
    trigger = TriggerKind::CheatCode;
  }
  report.trigger = trigger;

  const PortDecl* victim = pick_victim_output(m, rng);
  if (victim == nullptr) {
    throw std::runtime_error("insert_trojan: module '" + m.name + "' has no output port");
  }
  report.victim_output = victim->name;
  const int width = port_width(*victim);

  TriggerResult trig;
  switch (trigger) {
    case TriggerKind::TimeBomb: trig = build_time_bomb(m, config, rng); break;
    case TriggerKind::CheatCode: trig = build_cheat_code(m, rng); break;
    case TriggerKind::Sequence: trig = build_sequence(m, config, rng); break;
  }
  report.trigger_net = trig.trig_net;
  report.added_nets = trig.added_nets;

  const std::string carrier = redirect_output(m, report.victim_output);
  report.added_nets.push_back(carrier);

  ExprPtr when_triggered;
  switch (config.payload) {
    case PayloadKind::Corrupt: {
      const std::uint64_t mask = random_magic(rng, std::min(width, 62));
      when_triggered = Expr::binary("^", Expr::ident(carrier),
                                    Expr::number(mask, std::min(width, 62)));
      break;
    }
    case PayloadKind::Leak: {
      // Leak internal Trojan state; cheat-code triggers without state fall
      // back to leaking the trigger wire itself (still data-dependent).
      const std::string source =
          trig.state_regs.empty() ? trig.trig_net : trig.state_regs.front();
      when_triggered = leak_expr(m, source, carrier, width);
      break;
    }
    case PayloadKind::Disable:
      when_triggered = Expr::number(0, width);
      break;
  }

  ContAssign tap;
  tap.lhs = Expr::ident(report.victim_output);
  tap.rhs = Expr::ternary(Expr::ident(trig.trig_net), std::move(when_triggered),
                          Expr::ident(carrier));
  m.assigns.push_back(std::move(tap));
  return report;
}

}  // namespace noodle::trojan
