#include "serve/service.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "data/dataset.h"
#include "feat/featurize.h"
#include "util/binary_io.h"

namespace noodle::serve {

// ---------------------------------------------------------------------------
// StatsBook
// ---------------------------------------------------------------------------

template <typename Fn>
void StatsBook::update(const std::string& model, Fn&& fn) {
  // One mutex covers the aggregate and every per-model cell, so any
  // snapshot() taken between updates sees a mutually consistent state.
  std::lock_guard<std::mutex> lock(mu_);
  fn(total_);
  auto it = per_model_.find(model);
  if (it == per_model_.end()) {
    // Bound the map against attacker-chosen names: overflow names share
    // one cell, and a given name maps to the same cell for its lifetime
    // (the map only grows), so per-cell invariants survive.
    it = per_model_.size() < kMaxTrackedModels
             ? per_model_.try_emplace(model).first
             : per_model_.try_emplace(kOverflowCell).first;
  }
  fn(it->second);
}

void StatsBook::record_request(const std::string& model) {
  update(model, [](ServiceStats& s) { ++s.requests; });
}

void StatsBook::record_cache_hit(const std::string& model) {
  update(model, [](ServiceStats& s) { ++s.cache_hits; });
}

void StatsBook::record_disk_hit(const std::string& model) {
  update(model, [](ServiceStats& s) { ++s.disk_hits; });
}

void StatsBook::record_model_miss(const std::string& model) {
  update(model, [](ServiceStats& s) { ++s.model_misses; });
}

void StatsBook::record_deadline_timeout(const std::string& model) {
  update(model, [](ServiceStats& s) { ++s.deadline_timeouts; });
}

void StatsBook::record_batch(const std::string& model, std::uint64_t scans,
                             std::uint64_t parse_failures, std::uint64_t batch_size,
                             std::uint64_t scan_micros) {
  update(model, [&](ServiceStats& s) {
    ++s.batches;
    s.scans += scans;
    s.parse_failures += parse_failures;
    s.scan_micros += scan_micros;
    s.max_batch_size = std::max(s.max_batch_size, batch_size);
  });
}

void StatsBook::record_lint(const std::string& model, std::uint64_t runs,
                            const std::array<std::uint64_t, lint::kRuleCount>& by_rule) {
  update(model, [&](ServiceStats& s) {
    s.lint_runs += runs;
    for (std::size_t r = 0; r < lint::kRuleCount; ++r) {
      s.lint_by_rule[r] += by_rule[r];
      s.lint_findings += by_rule[r];
    }
  });
}

ServiceStats StatsBook::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

ServiceStats StatsBook::snapshot(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = per_model_.find(model);
  return it == per_model_.end() ? ServiceStats{} : it->second;
}

std::map<std::string, ServiceStats> StatsBook::by_model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return per_model_;
}

std::pair<ServiceStats, std::map<std::string, ServiceStats>> StatsBook::snapshot_all()
    const {
  // One lock acquisition: the aggregate equals the sum of the cells in the
  // returned pair (every update() touches total_ and exactly one cell under
  // this mutex), which the Prometheus mirror relies on.
  std::lock_guard<std::mutex> lock(mu_);
  return {total_, per_model_};
}

// ---------------------------------------------------------------------------
// DetectionService
// ---------------------------------------------------------------------------

namespace {

std::shared_ptr<ModelRegistry> require_registry(std::shared_ptr<ModelRegistry> registry) {
  if (!registry) {
    throw std::invalid_argument("DetectionService: registry must not be null");
  }
  return registry;
}

ServiceConfig validate(ServiceConfig config) {
  if (config.max_batch == 0) {
    throw std::invalid_argument("DetectionService: max_batch must be positive");
  }
  if (config.workers == 0) {
    throw std::invalid_argument("DetectionService: workers must be positive");
  }
  return config;
}

std::shared_ptr<ModelRegistry> single_model_registry(core::NoodleDetector detector) {
  std::shared_ptr<const core::FittedModel> model = detector.fitted_model();
  if (!model) {
    throw std::invalid_argument("DetectionService: detector must be fitted");
  }
  auto registry = std::make_shared<ModelRegistry>();
  registry->publish(kDefaultModelName, std::move(model));
  return registry;
}

std::shared_ptr<ModelRegistry> single_model_registry(const std::filesystem::path& snapshot) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->reload_from(kDefaultModelName, snapshot);
  return registry;
}

}  // namespace

DetectionService::DetectionService(std::shared_ptr<ModelRegistry> registry,
                                   std::string default_model, ServiceConfig config)
    : registry_(require_registry(std::move(registry))),
      default_model_(std::move(default_model)),
      config_(validate(config)),
      lint_(config_.lint),
      pool_(config_.workers),
      dispatcher_([this] { dispatcher_loop(); }) {
  // Runs before any request can exist (submit() requires a constructed
  // service), so the hot paths always see registered metric handles.
  register_metrics();
  pool_.attach_gauges(&pool_queue_depth_->cell(), &pool_in_flight_->cell());
  if (!config_.disk_cache.directory.empty()) {
    // After register_metrics() and before any request: the disk tier scans
    // its directory here, off the serving path (there is none yet).
    disk_cache_ = std::make_unique<PersistentVerdictCache>(config_.disk_cache);
  }
}

void DetectionService::register_metrics() {
  static constexpr std::array<const char*, kStageCount> kStageNames = {
      "queue_wait", "featurize", "infer", "lint", "cache_lookup", "total"};
  for (std::size_t stage = 0; stage < kStageCount; ++stage) {
    stage_hist_[stage] = &metrics_.histogram(
        "noodle_stage_duration_seconds",
        "Per-stage request latency; infer is recorded once per batch.",
        {{"stage", kStageNames[stage]}});
  }
  static constexpr std::array<const char*,
                              static_cast<std::size_t>(CacheProbe::kProbeCount)>
      kProbeNames = {"hit", "disk_hit", "miss_absent", "miss_collision",
                     "miss_lint_state", "miss_bypass"};
  for (std::size_t probe = 0; probe < probe_counters_.size(); ++probe) {
    probe_counters_[probe] = &metrics_.counter(
        "noodle_cache_probes_total",
        "Submit-time verdict-cache probes by outcome; outcomes sum to requests.",
        {{"outcome", kProbeNames[probe]}});
  }
  pool_queue_depth_ = &metrics_.gauge("noodle_pool_queue_depth",
                                      "Batches queued on the scan thread pool.");
  pool_in_flight_ = &metrics_.gauge("noodle_pool_inflight",
                                    "Batches executing on the scan thread pool.");
}

DetectionService::DetectionService(core::NoodleDetector detector, ServiceConfig config)
    : DetectionService(single_model_registry(std::move(detector)), kDefaultModelName,
                       config) {}

DetectionService::DetectionService(const std::filesystem::path& snapshot,
                                   ServiceConfig config)
    : DetectionService(single_model_registry(snapshot), kDefaultModelName, config) {}

DetectionService::~DetectionService() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
  // pool_ destruction drains any batches still in flight; promises for
  // requests queued after stopping_ never exist because submit() rejects
  // them up front.
}

std::future<core::DetectionReport> DetectionService::submit(std::string verilog_source) {
  return submit_request(ModelSpec{default_model_, 0}, std::move(verilog_source), {}, {});
}

std::future<core::DetectionReport> DetectionService::submit(const std::string& model_spec,
                                                            std::string verilog_source) {
  return submit_request(parse_model_spec(model_spec), std::move(verilog_source), {}, {});
}

std::future<core::DetectionReport> DetectionService::submit(const std::string& model_spec,
                                                            std::string verilog_source,
                                                            SubmitOptions options) {
  return submit_request(parse_model_spec(model_spec), std::move(verilog_source), options,
                        {});
}

void DetectionService::submit_async(std::string verilog_source, SubmitOptions options,
                                    CompletionFn on_complete) {
  submit_request(ModelSpec{default_model_, 0}, std::move(verilog_source), options,
                 std::move(on_complete));
}

void DetectionService::submit_async(const std::string& model_spec,
                                    std::string verilog_source, SubmitOptions options,
                                    CompletionFn on_complete) {
  submit_request(parse_model_spec(model_spec), std::move(verilog_source), options,
                 std::move(on_complete));
}

std::future<core::DetectionReport> DetectionService::submit_request(
    ModelSpec spec, std::string source, SubmitOptions options,
    CompletionFn on_complete) {
  const std::uint64_t submit_nanos = obs::now_nanos();
  const std::uint64_t trace_id = obs::next_trace_id();
  const std::uint64_t hash = util::fnv1a64(source);
  // Sampling the lint flag here (not at dispatch) makes set_lint() order
  // deterministically with submission: a toggle affects exactly the
  // requests submitted after it, however the dispatcher batches them.
  const bool want_lint = lint_.load(std::memory_order_relaxed);
  stats_.record_request(spec.name);

  // Cache probe against the generation the spec resolves to right now; the
  // generation id in the key means a reload in between can only cause a
  // miss (and a fresh scan), never a cross-generation verdict.
  CacheProbe probe = CacheProbe::kMissBypass;
  core::DetectionReport cached;
  std::uint64_t lookup_micros = 0;
  if (ModelHandle handle = registry_->try_resolve(spec)) {
    obs::TraceSpan lookup_span(stage_hist_[kStageCacheLookup], &lookup_micros);
    probe = cache_lookup(CacheKey{handle->id(), hash}, source, want_lint, cached);
    if (probe != CacheProbe::kHit && disk_cache_ != nullptr && !want_lint) {
      // Disk tier: consulted only on an in-memory miss, where the
      // alternative is a full featurize+scan. One synchronous record read;
      // lookup() verifies checksum AND full source bytes, and never throws.
      // Lint-on requests skip it — only lint-off verdicts persist.
      const PersistentVerdictCache::Key disk_key{
          feat::kFeatureVersion, handle->model().content_digest(), hash};
      if (disk_cache_->lookup(disk_key, source, cached)) {
        cached.served_by = handle->label();
        // Promote into the in-memory tier: the next probe for this source
        // hits the LRU without touching the disk again.
        cache_store(CacheKey{handle->id(), hash}, source, cached);
        probe = CacheProbe::kDiskHit;
      }
    }
  }
  // Exactly one probe outcome per request: hits and every miss reason
  // (including lint-state mismatches) sum to requests, so `!lint` toggles
  // can never skew the hit/miss accounting (see tests/test_serve.cpp).
  probe_counters_[static_cast<std::size_t>(probe)]->inc();
  if (probe == CacheProbe::kHit || probe == CacheProbe::kDiskHit) {
    // The hit is recorded only now — after the probe validated the source
    // bytes AND the entry's lint state — never before.
    if (probe == CacheProbe::kHit) {
      stats_.record_cache_hit(spec.name);
    } else {
      stats_.record_disk_hit(spec.name);
    }
    cached.timing = core::RequestTiming{};
    cached.timing.trace_id = trace_id;
    cached.timing.from_cache = true;
    cached.timing.cache_lookup_us = lookup_micros;
    const std::uint64_t total_nanos = obs::now_nanos() - submit_nanos;
    cached.timing.total_us = total_nanos / 1000;
    stage_hist_[kStageTotal]->record(total_nanos);
    std::promise<core::DetectionReport> ready;
    ready.set_value(std::move(cached));
    if (on_complete) {
      // Cache hits complete synchronously on the submitting thread — the
      // documented submit_async contract (a reactor caller's handler runs
      // inline, exactly like a future that is ready on return).
      on_complete(ready.get_future());
      return {};
    }
    return ready.get_future();
  }
  // An unresolvable spec is not failed here: the batch-time resolve is
  // authoritative (the model may be published microseconds from now).

  Request request;
  request.spec = std::move(spec);
  request.source = std::move(source);
  request.key = hash;
  request.lint = want_lint;
  request.submit_nanos = submit_nanos;
  if (options.deadline.count() > 0) {
    request.deadline_nanos =
        submit_nanos + static_cast<std::uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               options.deadline)
                               .count());
  }
  request.timing.trace_id = trace_id;
  request.timing.cache_lookup_us = lookup_micros;
  std::future<core::DetectionReport> future = request.promise.get_future();
  if (on_complete) {
    request.future = std::move(future);
    request.on_complete = std::move(on_complete);
    future = {};
  }
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      if (!request.on_complete) {
        throw std::runtime_error("DetectionService::submit: service is shutting down");
      }
      rejected = true;  // callback fires below, outside the queue lock
    } else {
      queue_.push_back(std::move(request));
      ++outstanding_;
    }
  }
  if (rejected) {
    // Async callers get the rejection through the callback — a reactor
    // must not need try/catch around every enqueue during shutdown.
    request.fail(std::make_exception_ptr(
        std::runtime_error("DetectionService::submit: service is shutting down")));
    return {};
  }
  queue_cv_.notify_one();
  return future;
}

core::DetectionReport DetectionService::scan(std::string verilog_source) {
  return submit(std::move(verilog_source)).get();
}

core::DetectionReport DetectionService::scan(const std::string& model_spec,
                                             std::string verilog_source) {
  return submit(model_spec, std::move(verilog_source)).get();
}

void DetectionService::drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drained_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

ServiceStats DetectionService::stats() const { return stats_.snapshot(); }

ServiceStats DetectionService::stats(const std::string& model_name) const {
  return stats_.snapshot(model_name);
}

std::map<std::string, ServiceStats> DetectionService::stats_by_model() const {
  return stats_.by_model();
}

DiskCacheStats DetectionService::disk_cache_stats() const {
  if (!disk_cache_) {
    DiskCacheStats none;
    none.enabled = false;
    return none;
  }
  return disk_cache_->stats();
}

void DetectionService::render_prometheus(std::ostream& os) {
  sync_mirrored_metrics();
  metrics_.render_prometheus(os);
}

std::vector<obs::MetricsRegistry::Sample> DetectionService::metrics_snapshot() {
  sync_mirrored_metrics();
  return metrics_.snapshot();
}

void DetectionService::sync_mirrored_metrics() {
  // One consistent StatsBook snapshot feeds every mirrored sample, so the
  // exposition can never disagree with a `!stats` line printed from the
  // same instant's counters (satellite: StatsBook mirrored, ServiceStats
  // API unchanged). Registration is get-or-create and the source counters
  // are monotone, so set() is safe here.
  const auto [total, by_model] = stats_.snapshot_all();
  const auto mirror = [this](const char* name, const char* help,
                             const std::string& model, std::uint64_t value) {
    metrics_.counter(name, help, {{"model", model}}).set(value);
  };
  for (const auto& [model, cell] : by_model) {
    mirror("noodle_requests_total", "submit() calls.", model, cell.requests);
    mirror("noodle_cache_hits_total", "Requests answered from the LRU verdict cache.",
           model, cell.cache_hits);
    mirror("noodle_disk_hits_total",
           "Requests answered from the persistent disk cache tier.", model,
           cell.disk_hits);
    mirror("noodle_scans_total", "Verdicts computed by a detector.", model,
           cell.scans);
    mirror("noodle_parse_failures_total", "Requests rejected with a parse error.",
           model, cell.parse_failures);
    mirror("noodle_model_misses_total", "Requests naming an unknown model/version.",
           model, cell.model_misses);
    mirror("noodle_deadline_timeouts_total",
           "Requests failed with DeadlineError before being scanned.", model,
           cell.deadline_timeouts);
    mirror("noodle_batches_total", "Single-generation batch groups dispatched.",
           model, cell.batches);
    mirror("noodle_scan_busy_microseconds_total",
           "Wall time spent inside detector batch scans.", model, cell.scan_micros);
    mirror("noodle_lint_runs_total", "Sources the static-analysis pass covered.",
           model, cell.lint_runs);
    for (std::size_t rule = 0; rule < lint::kRuleCount; ++rule) {
      if (cell.lint_by_rule[rule] == 0) continue;  // bound label cardinality
      metrics_
          .counter("noodle_lint_findings_total", "Lint findings by rule.",
                   {{"model", model},
                    {"rule", lint::rule_info(static_cast<lint::RuleId>(rule)).code}})
          .set(cell.lint_by_rule[rule]);
    }
  }
  metrics_.gauge("noodle_max_batch_size", "Largest coalesced batch group so far.")
      .set(static_cast<std::int64_t>(total.max_batch_size));
  metrics_.gauge("noodle_cache_entries", "Live verdict-cache entries.")
      .set(static_cast<std::int64_t>(cache_size()));
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    metrics_.gauge("noodle_dispatch_queue_depth", "Requests awaiting the dispatcher.")
        .set(static_cast<std::int64_t>(queue_.size()));
    metrics_.gauge("noodle_requests_outstanding", "Submitted but unanswered requests.")
        .set(static_cast<std::int64_t>(outstanding_));
  }
  metrics_.gauge("noodle_models_loaded", "Live generations in the registry.")
      .set(static_cast<std::int64_t>(registry_->size()));
  const ReloadStats reloads = registry_->reload_stats();
  metrics_
      .counter("noodle_reloads_total", "Model publish/reload attempts by result.",
               {{"result", "ok"}})
      .set(reloads.ok);
  metrics_
      .counter("noodle_reloads_total", "Model publish/reload attempts by result.",
               {{"result", "error"}})
      .set(reloads.errors);
  metrics_
      .counter("noodle_reload_busy_microseconds_total",
               "Wall time spent loading and validating snapshots.")
      .set(reloads.load_micros_total);

  if (disk_cache_) {
    // One consistent DiskCacheStats snapshot feeds every disk-tier sample —
    // the same snapshot `!stats` renders, so the two can never disagree.
    const DiskCacheStats disk = disk_cache_->stats();
    const auto disk_counter = [this](const char* name, const char* help,
                                     std::uint64_t value) {
      metrics_.counter(name, help).set(value);
    };
    disk_counter("noodle_disk_cache_hits_total",
                 "Disk-tier lookups answered from a verified record.", disk.hits);
    disk_counter("noodle_disk_cache_misses_total",
                 "Disk-tier lookups that found no usable record.", disk.misses);
    disk_counter("noodle_disk_cache_stores_total",
                 "Verdict records durably published to disk.", disk.stores);
    disk_counter("noodle_disk_cache_drops_total",
                 "Disk stores dropped (full queue, degraded, or shutdown).",
                 disk.drops);
    disk_counter("noodle_disk_cache_corrupt_total",
                 "Record files refused by validation (sum over reasons).",
                 disk.corrupt);
    disk_counter("noodle_disk_cache_evictions_total",
                 "Records unlinked by byte-budget LRU eviction.", disk.evictions);
    disk_counter("noodle_disk_cache_collisions_total",
                 "Disk-tier key hits whose full source bytes differed.",
                 disk.collisions);
    disk_counter("noodle_disk_cache_temps_swept_total",
                 "Crash-orphaned temp files swept at startup.", disk.temps_swept);
    for (std::size_t r = 0; r < disk.skipped.size(); ++r) {
      metrics_
          .counter("noodle_disk_cache_skipped_total",
                   "Record files refused by validation, by reason.",
                   {{"reason", to_string(static_cast<DiskCacheSkip>(r))}})
          .set(disk.skipped[r]);
    }
    metrics_.gauge("noodle_disk_cache_entries", "Live indexed disk records.")
        .set(static_cast<std::int64_t>(disk.entries));
    metrics_.gauge("noodle_disk_cache_bytes", "Total bytes of live disk records.")
        .set(static_cast<std::int64_t>(disk.bytes));
    metrics_
        .gauge("noodle_disk_cache_degraded",
               "1 when a disk failure flipped the tier to memory-only mode.")
        .set(disk.degraded ? 1 : 0);
    metrics_
        .gauge("noodle_disk_cache_enabled",
               "1 while the disk tier accepts lookups and stores.")
        .set(disk.enabled ? 1 : 0);
  }
}

ModelHandle DetectionService::reload(const std::string& name,
                                     const std::filesystem::path& path) {
  return registry_->reload_from(name, path);
}

std::size_t DetectionService::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void DetectionService::dispatcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      if (!stopping_ && queue_.size() < config_.max_batch &&
          config_.batch_linger.count() > 0) {
        // Linger briefly so concurrent callers coalesce into one batch.
        queue_cv_.wait_for(lock, config_.batch_linger, [this] {
          return stopping_ || queue_.size() >= config_.max_batch;
        });
      }
      const std::size_t take = std::min(config_.max_batch, queue_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    pool_.submit(
        [this, shared = std::make_shared<std::vector<Request>>(std::move(batch))] {
          process_batch(std::move(*shared));
        });
  }
}

void DetectionService::process_batch(std::vector<Request> batch) {
  // Partition by requested spec: each group resolves one registry handle
  // and is answered entirely by that generation, so a concurrent
  // reload_from can never mix generations inside a group.
  std::map<std::string, std::vector<Request>> groups;
  for (Request& request : batch) {
    groups[request.spec.to_string()].push_back(std::move(request));
  }
  for (auto& [label, group] : groups) process_group(label, std::move(group));
}

void DetectionService::process_group(const std::string& group_label,
                                     std::vector<Request> group) {
  const std::string model_name = group.front().spec.name;
  const std::size_t submitted = group.size();
  // Queue wait: submit() to this pickup, per request, on the one monotonic
  // clock every span uses.
  const std::uint64_t pickup_nanos = obs::now_nanos();
  for (Request& request : group) {
    const std::uint64_t wait_nanos = pickup_nanos - request.submit_nanos;
    stage_hist_[kStageQueueWait]->record(wait_nanos);
    request.timing.queue_wait_us = wait_nanos / 1000;
  }

  // Deadline sweep — BEFORE resolve and featurize: a request nobody is
  // waiting for anymore must not cost a scan (that is the whole point of
  // deadlines under overload), and expiry answers even when the model
  // does not exist.
  if (std::any_of(group.begin(), group.end(),
                  [&](const Request& r) {
                    return r.deadline_nanos != 0 && pickup_nanos >= r.deadline_nanos;
                  })) {
    std::vector<Request> live;
    live.reserve(group.size());
    for (Request& request : group) {
      if (request.deadline_nanos != 0 && pickup_nanos >= request.deadline_nanos) {
        stats_.record_deadline_timeout(model_name);
        request.fail(std::make_exception_ptr(DeadlineError(
            "DetectionService: deadline expired before dispatch")));
      } else {
        live.push_back(std::move(request));
      }
    }
    group = std::move(live);
    if (group.empty()) {
      finish_requests(submitted);
      return;
    }
  }

  const ModelHandle handle = registry_->try_resolve(group.front().spec);
  if (!handle) {
    const auto error = std::make_exception_ptr(
        RegistryError("DetectionService: no model '" + group_label + "'"));
    for (Request& request : group) {
      stats_.record_model_miss(model_name);
      request.fail(error);
    }
    finish_requests(submitted);
    return;
  }

  // Featurize per request so one malformed source fails only its own
  // future; the surviving samples still share one scan_many pass.
  std::vector<data::FeatureSample> samples;
  std::vector<std::size_t> sample_owner;  // index into group
  std::vector<std::vector<lint::OwnedFinding>> findings;  // parallel to samples
  std::vector<std::pair<std::size_t, std::exception_ptr>> rejected;
  samples.reserve(group.size());
  // The dispatcher's pool threads are long-lived, so each worker's
  // thread-local FeaturizeWorkspace (and LintWorkspace) reaches a warm
  // steady state and processes request sources with zero front-end heap
  // allocations. The lint pass must run right after each featurize, while
  // the workspace's arena still holds that parse; each request carries its
  // own submit-time lint flag, so one batch can mix linted and plain scans
  // across a set_lint() toggle.
  feat::FeaturizeWorkspace& workspace = feat::thread_workspace();
  for (std::size_t i = 0; i < group.size(); ++i) {
    try {
      {
        obs::TraceSpan span(stage_hist_[kStageFeaturize],
                            &group[i].timing.featurize_us);
        samples.push_back(data::featurize_source(group[i].source, workspace));
      }
      if (group[i].lint) {
        obs::TraceSpan span(stage_hist_[kStageLint], &group[i].timing.lint_us);
        findings.push_back(core::lint_last_parse(workspace));
      } else {
        findings.emplace_back();
      }
      sample_owner.push_back(i);
    } catch (...) {
      rejected.emplace_back(i, std::current_exception());
    }
  }

  std::uint64_t scan_nanos = 0;
  std::vector<core::DetectionReport> reports;
  std::exception_ptr batch_error;
  if (!samples.empty()) {
    try {
      // The handle pins this generation for the whole batch: a reload
      // swapping `latest` right now neither blocks this scan nor changes
      // its verdicts. The span records the whole-batch scan once into the
      // infer histogram; per-request shares land in timing.infer_us.
      obs::TraceSpan span(stage_hist_[kStageInfer]);
      reports = handle->model().scan_many(samples, config_.scan_threads);
      scan_nanos = span.finish();
    } catch (...) {
      // A batch-level failure must not leave futures dangling (a task
      // escaping into the pool would terminate the process).
      batch_error = std::current_exception();
    }
  }
  const std::uint64_t elapsed_micros = scan_nanos / 1000;
  for (core::DetectionReport& report : reports) report.served_by = handle->label();
  std::uint64_t lint_runs = 0;
  for (std::size_t s = 0; s < reports.size(); ++s) {
    reports[s].lint_ran = group[sample_owner[s]].lint;
    reports[s].lint_findings = std::move(findings[s]);
    lint_runs += reports[s].lint_ran ? 1 : 0;
  }

  // Stamp per-request timing before counters/cache publication so cached
  // entries and fulfilled futures carry identical breakdowns. infer_us is
  // the request's amortized share of the one batched scan.
  const std::uint64_t resolve_nanos = obs::now_nanos();
  const std::uint64_t infer_share_micros =
      reports.empty() ? 0 : scan_nanos / 1000 / reports.size();
  for (std::size_t s = 0; s < reports.size(); ++s) {
    Request& owner = group[sample_owner[s]];
    owner.timing.infer_us = infer_share_micros;
    const std::uint64_t total_nanos = resolve_nanos - owner.submit_nanos;
    owner.timing.total_us = total_nanos / 1000;
    stage_hist_[kStageTotal]->record(total_nanos);
    reports[s].timing = owner.timing;
  }

  // Publish counters and cache entries BEFORE fulfilling any promise, so a
  // caller who has observed a verdict also observes its counters.
  stats_.record_batch(model_name, reports.size(), rejected.size(), group.size(),
                      elapsed_micros);
  if (lint_runs > 0) {
    std::array<std::uint64_t, lint::kRuleCount> by_rule{};
    for (const core::DetectionReport& report : reports) {
      for (const lint::OwnedFinding& finding : report.lint_findings) {
        ++by_rule[static_cast<std::size_t>(finding.rule)];
      }
    }
    stats_.record_lint(model_name, lint_runs, by_rule);
  }
  for (std::size_t s = 0; s < reports.size(); ++s) {
    cache_store(CacheKey{handle->id(), group[sample_owner[s]].key},
                group[sample_owner[s]].source, reports[s]);
  }
  if (disk_cache_ != nullptr) {
    // Queue for the disk tier's background writer: the handoff is a queue
    // push, never a disk write, so promise fulfillment below is not held
    // up by persistence. store() itself refuses lint-bearing reports.
    const std::uint64_t digest = handle->model().content_digest();
    for (std::size_t s = 0; s < reports.size(); ++s) {
      disk_cache_->store(
          PersistentVerdictCache::Key{feat::kFeatureVersion, digest,
                                      group[sample_owner[s]].key},
          group[sample_owner[s]].source, reports[s]);
    }
  }

  for (auto& [owner, error] : rejected) group[owner].fail(error);
  if (batch_error) {
    for (const std::size_t owner : sample_owner) {
      group[owner].fail(batch_error);
    }
  } else {
    for (std::size_t s = 0; s < reports.size(); ++s) {
      group[sample_owner[s]].deliver(std::move(reports[s]));
    }
  }
  finish_requests(submitted);
}

void DetectionService::finish_requests(std::size_t count) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    outstanding_ -= count;
    if (outstanding_ != 0) return;
  }
  drained_cv_.notify_all();
}

DetectionService::CacheProbe DetectionService::cache_lookup(
    const CacheKey& key, const std::string& source, bool want_lint,
    core::DetectionReport& report) {
  if (config_.cache_capacity == 0) return CacheProbe::kMissBypass;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) return CacheProbe::kMissAbsent;
  if (it->second.source != source) return CacheProbe::kMissCollision;
  // A toggled lint setting makes older entries non-answers: a lint-on
  // caller must get findings, a lint-off caller must not pay for stale
  // ones. The check runs BEFORE any hit side effect (LRU bump, report
  // copy) — and the caller counts the hit only on kHit — so `!lint`
  // toggles can never produce a phantom hit. The rescan re-stores the
  // entry under the current setting.
  if (it->second.report.lint_ran != want_lint) return CacheProbe::kMissLintState;
  lru_.splice(lru_.begin(), lru_, it->second.position);  // bump to most-recent
  report = it->second.report;
  return CacheProbe::kHit;
}

void DetectionService::cache_store(const CacheKey& key, const std::string& source,
                                   const core::DetectionReport& report) {
  if (config_.cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.position);
    it->second.source = source;
    it->second.report = report;
    return;
  }
  lru_.push_front(key);
  cache_.emplace(key, CacheEntry{source, report, lru_.begin()});
  while (cache_.size() > config_.cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace noodle::serve
