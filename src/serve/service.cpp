#include "serve/service.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "util/binary_io.h"

namespace noodle::serve {

namespace {

core::NoodleDetector require_fitted(core::NoodleDetector detector) {
  if (!detector.fitted()) {
    throw std::invalid_argument("DetectionService: detector must be fitted");
  }
  return detector;
}

ServiceConfig validate(ServiceConfig config) {
  if (config.max_batch == 0) {
    throw std::invalid_argument("DetectionService: max_batch must be positive");
  }
  if (config.workers == 0) {
    throw std::invalid_argument("DetectionService: workers must be positive");
  }
  return config;
}

}  // namespace

DetectionService::DetectionService(core::NoodleDetector detector, ServiceConfig config)
    : detector_(require_fitted(std::move(detector))),
      config_(validate(config)),
      pool_(config_.workers),
      dispatcher_([this] { dispatcher_loop(); }) {}

DetectionService::DetectionService(const std::filesystem::path& snapshot,
                                   ServiceConfig config)
    : DetectionService(core::NoodleDetector::from_snapshot(snapshot), config) {}

DetectionService::~DetectionService() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
  // pool_ destruction drains any batches still in flight; promises for
  // requests queued after stopping_ never exist because submit() rejects
  // them up front.
}

std::future<core::DetectionReport> DetectionService::submit(std::string verilog_source) {
  const std::uint64_t key = util::fnv1a64(verilog_source);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }

  core::DetectionReport cached;
  if (cache_lookup(key, verilog_source, cached)) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.cache_hits;
    }
    std::promise<core::DetectionReport> ready;
    ready.set_value(std::move(cached));
    return ready.get_future();
  }

  Request request;
  request.source = std::move(verilog_source);
  request.key = key;
  std::future<core::DetectionReport> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      throw std::runtime_error("DetectionService::submit: service is shutting down");
    }
    queue_.push_back(std::move(request));
    ++outstanding_;
  }
  queue_cv_.notify_one();
  return future;
}

core::DetectionReport DetectionService::scan(std::string verilog_source) {
  return submit(std::move(verilog_source)).get();
}

void DetectionService::drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drained_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

ServiceStats DetectionService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::size_t DetectionService::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void DetectionService::dispatcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      if (!stopping_ && queue_.size() < config_.max_batch &&
          config_.batch_linger.count() > 0) {
        // Linger briefly so concurrent callers coalesce into one batch.
        queue_cv_.wait_for(lock, config_.batch_linger, [this] {
          return stopping_ || queue_.size() >= config_.max_batch;
        });
      }
      const std::size_t take = std::min(config_.max_batch, queue_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    pool_.submit(
        [this, shared = std::make_shared<std::vector<Request>>(std::move(batch))] {
          process_batch(std::move(*shared));
        });
  }
}

void DetectionService::process_batch(std::vector<Request> batch) {
  // Featurize per request so one malformed source fails only its own
  // future; the surviving samples still share one scan_many pass.
  std::vector<data::FeatureSample> samples;
  std::vector<std::size_t> sample_owner;  // index into batch
  std::vector<std::pair<std::size_t, std::exception_ptr>> rejected;
  samples.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    try {
      data::CircuitSample circuit;
      circuit.verilog = batch[i].source;
      samples.push_back(data::featurize(circuit));
      sample_owner.push_back(i);
    } catch (...) {
      rejected.emplace_back(i, std::current_exception());
    }
  }

  std::uint64_t elapsed_micros = 0;
  std::vector<core::DetectionReport> reports;
  std::exception_ptr batch_error;
  if (!samples.empty()) {
    try {
      const auto start = std::chrono::steady_clock::now();
      reports = detector_.scan_many(samples, config_.scan_threads);
      elapsed_micros = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    } catch (...) {
      // A batch-level failure must not leave futures dangling (a task
      // escaping into the pool would terminate the process).
      batch_error = std::current_exception();
    }
  }

  // Publish counters and cache entries BEFORE fulfilling any promise, so a
  // caller who has observed a verdict also observes its counters.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
    stats_.scans += reports.size();
    stats_.parse_failures += rejected.size();
    stats_.scan_micros += elapsed_micros;
    stats_.max_batch_size = std::max<std::uint64_t>(stats_.max_batch_size, batch.size());
  }
  for (std::size_t s = 0; s < reports.size(); ++s) {
    cache_store(batch[sample_owner[s]].key, batch[sample_owner[s]].source, reports[s]);
  }

  for (auto& [owner, error] : rejected) batch[owner].promise.set_exception(error);
  if (batch_error) {
    for (const std::size_t owner : sample_owner) {
      batch[owner].promise.set_exception(batch_error);
    }
  } else {
    for (std::size_t s = 0; s < reports.size(); ++s) {
      batch[sample_owner[s]].promise.set_value(std::move(reports[s]));
    }
  }
  finish_requests(batch.size());
}

void DetectionService::finish_requests(std::size_t count) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    outstanding_ -= count;
    if (outstanding_ != 0) return;
  }
  drained_cv_.notify_all();
}

bool DetectionService::cache_lookup(std::uint64_t key, const std::string& source,
                                    core::DetectionReport& report) {
  if (config_.cache_capacity == 0) return false;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_.find(key);
  if (it == cache_.end() || it->second.source != source) return false;
  lru_.splice(lru_.begin(), lru_, it->second.position);  // bump to most-recent
  report = it->second.report;
  return true;
}

void DetectionService::cache_store(std::uint64_t key, const std::string& source,
                                   const core::DetectionReport& report) {
  if (config_.cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.position);
    it->second.source = source;
    it->second.report = report;
    return;
  }
  lru_.push_front(key);
  cache_.emplace(key, CacheEntry{source, report, lru_.begin()});
  while (cache_.size() > config_.cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace noodle::serve
