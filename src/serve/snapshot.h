#pragma once
// Versioned binary snapshot archive — the container format behind
// NoodleDetector::save()/load(). A snapshot is what turns a fitted detector
// into a deployable artifact: train once, write the archive, and any number
// of serving processes can load it without paying the corpus → GAN → CNN →
// ICP fit again (see serve::DetectionService).
//
// Archive layout (all integers little-endian, doubles as IEEE-754 bits):
//
//   u64  magic      "NOODSNP1" — rejects non-snapshot files immediately
//   u32  version    format version; readers accept [kSnapshotVersionMin,
//                   kSnapshotVersion] and reject anything newer or older
//   u32  sections   section count
//   per section:
//     4 bytes tag   e.g. "CONF", "EARL", "LATE", "META"
//     u64   length  body byte count
//     ...   body    component-owned encoding (nn weights, ICP scores, ...)
//   u64  checksum   FNV-1a over every preceding byte
//
// The trailing checksum plus per-section length framing means truncation,
// bit corruption, and wrong-version files all fail with SnapshotError
// before any component state is touched.

#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace noodle::serve {

/// Raised on any malformed, truncated, corrupted, or version-mismatched
/// snapshot; the message says which check failed.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// Little-endian u64 whose on-disk bytes spell "NOODSNP1".
inline constexpr std::uint64_t kSnapshotMagic = 0x31504e53444f4f4eULL;
/// Version 1: f64 weight blobs only. Version 2: weight sections may carry
/// the compact f32 encoding (nn::WeightPrecision::F32, ~2x smaller) — the
/// blob's own magic says which, so v1 archives still load. Version 3:
/// weight sections may carry the per-buffer-scaled int8 encoding
/// (nn::WeightPrecision::I8, ~8x smaller), and the META section carries
/// the feat::kFeatureVersion the model was fitted against.
inline constexpr std::uint32_t kSnapshotVersionMin = 1;
inline constexpr std::uint32_t kSnapshotVersion = 3;

/// Accumulates tagged sections in memory, then writes the framed, checksummed
/// archive in one pass. Usage:
///
///   SnapshotWriter writer;
///   component.save(writer.begin_section("CONF"));
///   other.save(writer.begin_section("EARL"));
///   writer.write_file(path);
///
/// `version` is the format version stamped into the header. Writers should
/// stamp the LOWEST version whose features the payload actually uses (e.g.
/// kSnapshotVersionMin for pure-f64 archives), so older readers keep
/// loading archives they are perfectly able to parse.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::uint32_t version = kSnapshotVersion);

  /// Starts a new section (tag must be exactly 4 bytes) and returns the
  /// stream its body is written to. The previous section, if any, is sealed.
  std::ostream& begin_section(std::string_view tag);

  /// Serializes header + all sections + checksum.
  void write_to(std::ostream& os);
  void write_file(const std::filesystem::path& path);

 private:
  void seal_current();

  std::uint32_t version_;
  struct Section {
    std::string tag;
    std::string body;
  };
  std::vector<Section> sections_;
  std::string current_tag_;
  std::ostringstream current_;
  bool in_section_ = false;
};

/// Parses and fully validates an archive up front (magic, version, framing,
/// checksum), then hands out per-section body streams by tag.
class SnapshotReader {
 public:
  /// Throws SnapshotError if the bytes are not a valid version-matched
  /// archive.
  explicit SnapshotReader(std::istream& is);

  static SnapshotReader from_file(const std::filesystem::path& path);

  bool has_section(std::string_view tag) const;

  /// Stream over the named section's body. Each section may be opened once;
  /// a missing or already-consumed tag throws SnapshotError.
  std::istream& section(std::string_view tag);

  std::size_t section_count() const noexcept { return sections_.size(); }

 private:
  struct Section {
    std::string tag;
    std::string body;
    bool consumed = false;
  };
  std::vector<Section> sections_;
  std::istringstream current_;
};

}  // namespace noodle::serve
