#pragma once
// serve::SnapshotStore — a content-addressed drop directory that feeds
// ModelRegistry. Operators (or a training pipeline) copy snapshot archives
// into the store directory; noodled polls it (and rescans immediately on
// SIGHUP / `!reload store`) and publishes every NEW archive through
// ModelRegistry::reload_from. "New" is decided by content, not mtime: the
// store remembers the FNV-1a digest of every file it has judged, so a
// re-copied identical archive is a no-op and an overwritten one is picked
// up even when the filesystem clock went backwards.
//
// Failure contract (the whole point of the store):
//
//   * validation happens entirely off the serving path —
//     ModelRegistry::reload_from loads + fully validates the archive before
//     touching any registry lock, so a corrupt or truncated drop can never
//     stall or crash a scan;
//   * a rejected archive is counted, recorded in the registry's reload
//     event log (reload_from records the failure before throwing), and
//     REMEMBERED by digest — the store does not retry the same bad bytes
//     every poll tick. Fixing the file (new bytes, new digest) retries it;
//   * the previously published generation keeps serving throughout — the
//     registry swap is atomic and only happens after validation succeeds.
//
// Model naming: an archive dropped as `<name>.snap` (any extension works)
// publishes as the next version of `<name>`. Names must match the
// registry's [A-Za-z0-9._-]+ rule; files with invalid stems, directories,
// and util::AtomicFile temps (a publisher crashed mid-copy) are skipped.

#include <condition_variable>
#include <cstdint>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace noodle::obs {
class Counter;
class MetricsRegistry;
}  // namespace noodle::obs

namespace noodle::serve {

class ModelRegistry;

struct SnapshotStoreConfig {
  std::filesystem::path directory;
  /// Poll period; SIGHUP-driven rescan_now() cuts ahead of it.
  std::chrono::milliseconds poll_interval{2000};
};

/// One consistent counter snapshot (all fields read under one lock).
struct SnapshotStoreStats {
  std::uint64_t scans = 0;     ///< directory sweeps completed
  std::uint64_t accepted = 0;  ///< archives validated and published
  std::uint64_t rejected = 0;  ///< archives refused by validation
  std::uint64_t known = 0;     ///< digests currently remembered
  std::string last_error;      ///< what() of the most recent rejection
};

class SnapshotStore {
 public:
  /// `registry` must outlive the store. `metrics` (optional) receives
  /// noodle_snapshot_store_{accepted,rejected}_total counters. The
  /// constructor neither scans nor starts a thread — call start() (or
  /// rescan_now() for a one-shot synchronous sweep, used by tests).
  SnapshotStore(SnapshotStoreConfig config, ModelRegistry& registry,
                obs::MetricsRegistry* metrics = nullptr);
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Starts the background poll thread (idempotent).
  void start();
  /// Stops and joins the poll thread (idempotent; also run by ~SnapshotStore).
  void stop();

  /// Sweeps the directory once, synchronously, on the caller's thread.
  /// Returns the number of archives accepted this sweep. Never throws:
  /// rejections are counted and logged, an unreadable directory just
  /// yields an empty sweep. Safe to call concurrently with the poll
  /// thread (sweeps serialize on an internal mutex).
  std::size_t rescan_now();

  /// Wakes the poll thread to sweep immediately (the SIGHUP hook —
  /// async-signal-UNSAFE, so noodled calls it from its signal-watcher
  /// thread, not the handler itself).
  void poke();

  SnapshotStoreStats stats() const;

  const std::filesystem::path& directory() const noexcept { return config_.directory; }

 private:
  std::size_t sweep();
  /// True when `stem` satisfies the registry's model-name rule.
  static bool valid_model_name(const std::string& stem);

  SnapshotStoreConfig config_;
  ModelRegistry& registry_;

  /// Serializes sweeps and guards the digest memory + counters, so stats()
  /// is one consistent snapshot.
  mutable std::mutex mu_;
  /// Every digest this store has judged (accepted or rejected), keyed by
  /// filename so an overwritten file re-validates.
  std::unordered_map<std::string, std::uint64_t> judged_;
  SnapshotStoreStats counters_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool poke_ = false;
  bool stopping_ = false;
  std::thread poller_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* accepted_counter_ = nullptr;  ///< registered at construction
  obs::Counter* rejected_counter_ = nullptr;
};

}  // namespace noodle::serve
