#pragma once
// serve::PersistentVerdictCache — the disk tier under DetectionService's
// in-memory LRU verdict cache. A verdict computed once survives restarts
// and can be shared by a fleet of workers pointed at one directory: the
// cache key is (feature version, model content digest, source hash), all
// three stable across processes — unlike the registry's process-unique
// generation id that keys the in-memory tier.
//
// Layout: one checksummed record file per entry, named after its key
// ("<feat>-<digest>-<hash>.ndc"), each published via util::AtomicFile so a
// crash at any instant leaves either the complete old record, the complete
// new record, or a sweepable temp — never a torn entry. Record format in
// DESIGN.md §10 (magic, record/feature versions, key echo, source bytes,
// verdict payload, trailing FNV-1a checksum).
//
// Concurrency & failure contract:
//
//   * store() never touches the disk on the caller's thread: it moves the
//     entry onto a bounded queue drained by one background writer thread.
//     A full queue DROPS the store (counted) — persistence is best-effort,
//     the serving path is not;
//   * lookup() reads one record file synchronously — it only runs on an
//     in-memory miss, where the alternative is a full featurize+scan that
//     costs orders of magnitude more;
//   * the startup scanner indexes every valid record and SKIPS — never
//     throws on — anything else: truncated, bit-flipped, stale-versioned,
//     foreign, or empty files each bump their own counter (the corruption
//     matrix in tests/test_disk_cache.cpp). Crash-orphaned AtomicFile
//     temps are swept;
//   * any disk failure (ENOSPC, EIO, unreadable directory) flips the tier
//     into DEGRADED mode: lookups and stores become immediate no-ops, the
//     service keeps answering from memory, and the degraded flag is
//     exported as a gauge. Requests are never failed by persistence;
//   * total size is bounded: stores beyond max_bytes evict
//     least-recently-used entries (their files are unlinked).

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/fitted_model.h"

namespace noodle::serve {

/// Little-endian u64 whose on-disk bytes spell "NOODVC01".
inline constexpr std::uint64_t kDiskCacheMagic = 0x31304356444f4f4eULL;
/// Bump when the record payload changes shape; readers skip other versions.
inline constexpr std::uint32_t kDiskCacheRecordVersion = 1;

struct DiskCacheConfig {
  std::filesystem::path directory;
  /// Total bytes of record files kept; LRU entries are evicted beyond it.
  std::uint64_t max_bytes = 64ull << 20;
  /// Bounded writer queue; stores arriving when it is full are dropped.
  std::size_t queue_capacity = 1024;
};

/// Why the scanner (or a runtime lookup) refused a record file.
enum class DiskCacheSkip : std::size_t {
  kEmpty = 0,        ///< zero-length file
  kTruncated,        ///< shorter/longer than its recorded size
  kChecksum,         ///< trailing FNV-1a mismatch (any bit flip lands here)
  kForeign,          ///< not a record: wrong magic or alien filename
  kStaleRecord,      ///< record format version from another build
  kStaleFeature,     ///< featurizer version the current build cannot serve
  kKeyMismatch,      ///< header key disagrees with the filename key
  kCount,
};
const char* to_string(DiskCacheSkip reason) noexcept;

/// One consistent counter snapshot (all fields read under one lock).
struct DiskCacheStats {
  std::uint64_t hits = 0;        ///< lookups answered from a verified record
  std::uint64_t misses = 0;      ///< lookups that found no usable record
  std::uint64_t stores = 0;      ///< records durably published
  std::uint64_t drops = 0;       ///< stores dropped on a full queue
  std::uint64_t corrupt = 0;     ///< records refused (sum of skipped[])
  std::uint64_t evictions = 0;   ///< LRU entries unlinked for space
  std::uint64_t collisions = 0;  ///< key hit but source bytes differed
  std::uint64_t temps_swept = 0; ///< crash-orphaned temp files removed
  std::uint64_t loaded = 0;      ///< valid records indexed at startup
  std::uint64_t entries = 0;     ///< live indexed records
  std::uint64_t bytes = 0;       ///< total size of live records
  bool degraded = false;
  bool enabled = true;
  std::array<std::uint64_t, static_cast<std::size_t>(DiskCacheSkip::kCount)> skipped{};
};

class PersistentVerdictCache {
 public:
  /// Restart-stable cache key. Every component must match for a hit.
  struct Key {
    std::uint32_t feature_version = 0;
    std::uint64_t model_digest = 0;
    std::uint64_t source_hash = 0;
    bool operator==(const Key&) const = default;
  };

  /// Creates the directory if needed and scans existing records into the
  /// index. Never throws on I/O problems — an unusable directory starts
  /// the tier degraded instead.
  explicit PersistentVerdictCache(DiskCacheConfig config);

  /// Stops the writer thread AFTER it drains the (bounded) queue: an
  /// orderly shutdown publishes every store already accepted — only a
  /// crash loses queued entries. Bounded work: at most queue_capacity
  /// records.
  ~PersistentVerdictCache();

  PersistentVerdictCache(const PersistentVerdictCache&) = delete;
  PersistentVerdictCache& operator=(const PersistentVerdictCache&) = delete;

  /// Reads the record for `key`, verifies it byte-for-byte (checksum AND
  /// full source comparison — a 64-bit source hash collision must never
  /// serve another circuit's verdict), and fills `out` with the persisted
  /// verdict fields (timing zeroed, served_by empty — the caller stamps
  /// the live generation). Returns false on absence, mismatch, disabled,
  /// or degraded. Never throws.
  bool lookup(const Key& key, const std::string& source, core::DetectionReport& out);

  /// Enqueues the entry for the background writer. Never blocks on disk;
  /// drops (and counts) when the queue is full or the tier is disabled or
  /// degraded. Lint-bearing reports are refused: only lint-off verdicts
  /// persist (the in-memory tier handles lint-state separation).
  void store(const Key& key, std::string source, const core::DetectionReport& report);

  /// Blocks until every store enqueued so far is durably published or
  /// dropped (tests and orderly shutdown paths).
  void flush();

  /// Runtime toggle (`noodled !cache persist on|off`). Disabling stops
  /// lookups and stores; the writer keeps draining what was already queued.
  void set_enabled(bool enabled);
  bool enabled() const;
  bool degraded() const;

  DiskCacheStats stats() const;

  const std::filesystem::path& directory() const noexcept { return config_.directory; }

  /// The record filename for a key — exposed for tests and operators.
  static std::string record_filename(const Key& key);
  /// Parses a record filename back into its key; false for alien names.
  static bool parse_record_filename(const std::string& name, Key& key);

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };
  struct IndexEntry {
    std::uint64_t bytes = 0;
    std::list<Key>::iterator position;  ///< into lru_, most-recent first
  };
  struct PendingStore {
    Key key;
    std::string source;
    core::DetectionReport report;
  };

  void scan_directory_locked();
  void writer_loop();
  /// Serializes and atomically publishes one record; false => degrade.
  bool write_record_locked_free(const PendingStore& entry, std::uint64_t& bytes);
  void index_insert_locked(const Key& key, std::uint64_t bytes);
  void evict_over_budget_locked();
  void enter_degraded_locked(const char* what, const std::error_code& ec);

  DiskCacheConfig config_;

  /// One mutex guards index, LRU order, counters, and the degraded flag,
  /// so stats() snapshots are internally consistent (the PR 7 invariant:
  /// `!stats` and `!metrics` read the same numbers).
  mutable std::mutex mu_;
  std::unordered_map<Key, IndexEntry, KeyHash> index_;
  std::list<Key> lru_;  ///< most-recent at front
  DiskCacheStats counters_;
  bool enabled_ = true;
  bool degraded_ = false;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<PendingStore> queue_;
  std::size_t writing_ = 0;  ///< entries popped but not yet published
  bool stopping_ = false;

  std::thread writer_;
};

}  // namespace noodle::serve
