#pragma once
// serve::ModelRegistry — named, versioned, atomically-swappable detector
// generations. The registry is what turns one-process/one-model serving
// into fleet-style serving: a single noodled process can hold several
// detector generations side by side (A/B tests, per-customer models) and
// hot-swap any of them without dropping or blocking queued requests.
//
// Ownership model (built on core::FittedModel's immutability):
//
//   * a published generation is a LoadedModel — an immutable record binding
//     `name@version` to a shared FittedModel handle and a process-unique
//     generation id (the verdict-cache key component);
//   * publish()/reload_from() build the replacement completely outside the
//     registry locks, then repoint the name's `latest` slot with ONE atomic
//     shared_ptr store — readers see either the old generation or the new
//     one, never a mixture;
//   * resolve() pins a generation: callers holding the returned handle keep
//     it alive and bit-stable regardless of later swaps or retires, so an
//     in-flight scan_many batch is always answered by exactly one
//     generation (DetectionService resolves once per batch group — the
//     cost is amortized over the batch and is negligible next to a scan);
//   * embedders that resolve per request (e.g. a future socket front end)
//     can pin a LatestView instead: get() is a single atomic load on the
//     name's epoch slot, never touching a registry mutex.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/fitted_model.h"

namespace noodle::serve {

/// Raised on unknown names/versions, malformed specs, and null publishes.
/// (Snapshot problems during reload_from surface as SnapshotError.)
class RegistryError : public std::runtime_error {
 public:
  explicit RegistryError(const std::string& what) : std::runtime_error(what) {}
};

/// A model request: `version == 0` means "latest published".
struct ModelSpec {
  std::string name;
  std::uint64_t version = 0;

  std::string to_string() const;
};

/// Parses "name" or "name@version". Names are [A-Za-z0-9._-]+; versions are
/// positive decimal integers. Throws RegistryError on anything else.
ModelSpec parse_model_spec(std::string_view spec);

/// One immutable published generation: `name@version` plus the shared
/// fitted-model handle. The id is process-unique across every publish (two
/// generations never share one), which is what keys cached verdicts so
/// different generations can never collide.
class LoadedModel {
 public:
  LoadedModel(std::string name, std::uint64_t version, std::uint64_t id,
              std::shared_ptr<const core::FittedModel> model,
              std::filesystem::path source);

  const std::string& name() const noexcept { return name_; }
  std::uint64_t version() const noexcept { return version_; }
  std::uint64_t id() const noexcept { return id_; }
  /// Snapshot path this generation was loaded from; empty for in-memory
  /// publishes.
  const std::filesystem::path& source() const noexcept { return source_; }
  const core::FittedModel& model() const noexcept { return *model_; }
  std::shared_ptr<const core::FittedModel> model_ptr() const noexcept { return model_; }
  /// "name@version" — the label stamped into DetectionReport::served_by.
  std::string label() const;

 private:
  std::string name_;
  std::uint64_t version_;
  std::uint64_t id_;
  std::shared_ptr<const core::FittedModel> model_;
  std::filesystem::path source_;
};

using ModelHandle = std::shared_ptr<const LoadedModel>;

/// One entry in the registry's bounded reload/publish event log: every
/// publish(), every reload_from() — including the ones that failed — with
/// a wall-clock timestamp and the load+validate cost. The log is what
/// `noodled !models` and the metrics surface read to answer "what changed
/// on this server, when, and how long did the swap take".
struct ReloadEvent {
  std::chrono::system_clock::time_point when;
  std::string name;
  std::uint64_t version = 0;     ///< 0 for failed loads (nothing published)
  std::uint64_t generation = 0;  ///< process-unique id; 0 for failures
  std::uint64_t load_micros = 0; ///< snapshot load+validate wall time; 0 for
                                 ///< in-memory publishes
  bool ok = false;
  std::string error;             ///< what() of the failure; empty when ok
};

/// Monotone totals across the registry's lifetime (the event log itself is
/// bounded, so counts are kept separately).
struct ReloadStats {
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t load_micros_total = 0;
};

class ModelRegistry {
 private:
  struct NameEntry;

 public:
  /// Pinned view of one name's atomically-published latest generation.
  /// get() is a single atomic shared_ptr load — it never touches registry
  /// locks, so publish/reload_from/retire can never block a scan path that
  /// resolves through a view. Returns nullptr once every version of the
  /// name has been retired. Valid for the registry's lifetime.
  class LatestView {
   public:
    LatestView() = default;
    ModelHandle get() const noexcept;
    explicit operator bool() const noexcept { return entry_ != nullptr; }

   private:
    friend class ModelRegistry;
    explicit LatestView(std::shared_ptr<const NameEntry> entry)
        : entry_(std::move(entry)) {}
    std::shared_ptr<const NameEntry> entry_;
  };

  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Publishes `model` as the next version of `name` (versions start at 1
  /// and never repeat, even after retires) and atomically repoints the
  /// name's latest slot. Throws RegistryError on a null model or bad name.
  ModelHandle publish(const std::string& name,
                      std::shared_ptr<const core::FittedModel> model,
                      std::filesystem::path source = {});

  /// Loads and fully validates the snapshot at `path` (outside every
  /// registry lock — concurrent resolves keep being served by the current
  /// generation), then publishes it as the next version of `name`. Throws
  /// SnapshotError on a bad archive, leaving the name untouched.
  ModelHandle reload_from(const std::string& name, const std::filesystem::path& path);

  /// Pins a generation. version == 0 resolves the latest. Throws
  /// RegistryError when the name or version is unknown.
  ModelHandle resolve(const ModelSpec& spec) const;
  ModelHandle resolve(std::string_view spec) const;
  /// Like resolve(), but returns nullptr instead of throwing.
  ModelHandle try_resolve(const ModelSpec& spec) const noexcept;

  /// The wait-free per-name fast path (see LatestView). Throws
  /// RegistryError if the name was never published.
  LatestView latest_view(const std::string& name) const;

  /// Removes one version (version == 0 removes the current latest). If the
  /// removed version was the latest, the slot repoints to the highest
  /// remaining version; pinned handles stay alive and scannable. Returns
  /// false when the name/version is unknown.
  bool retire(const std::string& name, std::uint64_t version = 0);

  /// The most recent publish/reload events, oldest first, bounded at
  /// kMaxReloadEvents (older events age out; totals survive in
  /// reload_stats()).
  static constexpr std::size_t kMaxReloadEvents = 64;
  std::vector<ReloadEvent> reload_events() const;
  /// Monotone ok/error counts and cumulative load time.
  ReloadStats reload_stats() const;

  /// Names with at least one live version, sorted.
  std::vector<std::string> names() const;
  /// Every live generation, sorted by name then version.
  std::vector<ModelHandle> catalog() const;
  /// Live generation count across all names.
  std::size_t size() const;

 private:
  struct NameEntry {
    /// The epoch slot: repointed by exactly one atomic store per publish.
    std::atomic<ModelHandle> latest{nullptr};
    /// Guards versions/next_version (slow path only).
    mutable std::mutex mu;
    std::map<std::uint64_t, ModelHandle> versions;
    std::uint64_t next_version = 1;
  };

  std::shared_ptr<NameEntry> find_entry(const std::string& name) const;
  ModelHandle publish_timed(const std::string& name,
                            std::shared_ptr<const core::FittedModel> model,
                            std::filesystem::path source, std::uint64_t load_micros);
  void record_event(ReloadEvent event);

  mutable std::shared_mutex names_mu_;
  std::unordered_map<std::string, std::shared_ptr<NameEntry>> names_;
  std::atomic<std::uint64_t> next_id_{1};

  mutable std::mutex events_mu_;
  std::deque<ReloadEvent> events_;  ///< bounded ring, oldest at front
  ReloadStats reload_stats_;
};

}  // namespace noodle::serve
