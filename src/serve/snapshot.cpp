#include "serve/snapshot.h"

#include <fstream>

#include "util/binary_io.h"

namespace noodle::serve {

// ---------------------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------------------

SnapshotWriter::SnapshotWriter(std::uint32_t version) : version_(version) {
  if (version < kSnapshotVersionMin || version > kSnapshotVersion) {
    throw SnapshotError("snapshot: writer version " + std::to_string(version) +
                        " outside supported range");
  }
}

std::ostream& SnapshotWriter::begin_section(std::string_view tag) {
  if (tag.size() != 4) {
    throw SnapshotError("snapshot: section tag must be exactly 4 bytes, got '" +
                        std::string(tag) + "'");
  }
  seal_current();
  current_tag_ = std::string(tag);
  current_.str({});
  current_.clear();
  in_section_ = true;
  return current_;
}

void SnapshotWriter::seal_current() {
  if (!in_section_) return;
  sections_.push_back({current_tag_, current_.str()});
  in_section_ = false;
}

void SnapshotWriter::write_to(std::ostream& os) {
  seal_current();
  // Build the full byte image first so the trailing checksum covers the
  // header and every section exactly as written.
  std::ostringstream image;
  util::write_u64(image, kSnapshotMagic);
  util::write_u32(image, version_);
  util::write_u32(image, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& section : sections_) {
    image.write(section.tag.data(), 4);
    util::write_u64(image, section.body.size());
    image.write(section.body.data(), static_cast<std::streamsize>(section.body.size()));
  }
  const std::string bytes = image.str();
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  util::write_u64(os, util::fnv1a64(bytes));
  if (!os) throw SnapshotError("snapshot: write failed");
}

void SnapshotWriter::write_file(const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw SnapshotError("snapshot: cannot open " + path.string() + " for write");
  write_to(os);
}

// ---------------------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------------------

SnapshotReader::SnapshotReader(std::istream& is) {
  std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  constexpr std::size_t kHeaderSize = 8 + 4 + 4;
  constexpr std::size_t kChecksumSize = 8;
  if (bytes.size() < kHeaderSize + kChecksumSize) {
    throw SnapshotError("snapshot: file too small to be an archive");
  }
  const std::size_t payload_size = bytes.size() - kChecksumSize;
  const std::uint64_t computed_checksum = util::fnv1a64(bytes.data(), payload_size);

  // C++20 move construction: the archive is held once, by the stream.
  std::istringstream image(std::move(bytes));
  if (util::read_u64(image) != kSnapshotMagic) {
    throw SnapshotError("snapshot: bad magic (not a detector snapshot)");
  }
  const std::uint32_t version = util::read_u32(image);
  if (version < kSnapshotVersionMin || version > kSnapshotVersion) {
    throw SnapshotError("snapshot: format version " + std::to_string(version) +
                        " outside reader range [" + std::to_string(kSnapshotVersionMin) +
                        ", " + std::to_string(kSnapshotVersion) + "]");
  }
  const std::uint32_t count = util::read_u32(image);
  // Offsets are validated against payload_size before every read, so the
  // stream reads below can never hit EOF or stray into the checksum.
  std::size_t offset = kHeaderSize;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (offset + 4 + 8 > payload_size) {
      throw SnapshotError("snapshot: truncated section header");
    }
    Section section;
    section.tag.resize(4);
    image.read(section.tag.data(), 4);
    const std::uint64_t length = util::read_u64(image);
    offset += 4 + 8;
    if (length > payload_size - offset) {
      throw SnapshotError("snapshot: truncated section '" + section.tag + "'");
    }
    section.body.resize(static_cast<std::size_t>(length));
    image.read(section.body.data(), static_cast<std::streamsize>(length));
    offset += static_cast<std::size_t>(length);
    sections_.push_back(std::move(section));
  }
  if (offset != payload_size) {
    throw SnapshotError("snapshot: trailing bytes after last section");
  }
  if (util::read_u64(image) != computed_checksum) {
    throw SnapshotError("snapshot: checksum mismatch (file corrupted)");
  }
}

SnapshotReader SnapshotReader::from_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SnapshotError("snapshot: cannot open " + path.string());
  return SnapshotReader(is);
}

bool SnapshotReader::has_section(std::string_view tag) const {
  for (const Section& section : sections_) {
    if (section.tag == tag) return true;
  }
  return false;
}

std::istream& SnapshotReader::section(std::string_view tag) {
  for (Section& section : sections_) {
    if (section.tag != tag) continue;
    if (section.consumed) {
      throw SnapshotError("snapshot: section '" + std::string(tag) +
                          "' already consumed");
    }
    section.consumed = true;
    current_.str(section.body);
    current_.clear();
    return current_;
  }
  throw SnapshotError("snapshot: missing section '" + std::string(tag) + "'");
}

}  // namespace noodle::serve
