#include "serve/disk_cache.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "feat/featurize.h"
#include "util/atomic_file.h"
#include "util/binary_io.h"

namespace noodle::serve {

namespace {

/// Fixed frame: magic (8) + record version (4) + record size (8) up front,
/// FNV-1a checksum (8) at the back. The prefix layout is stable across
/// record versions, so a future build can still classify old records.
constexpr std::uint64_t kPrefixBytes = 8 + 4 + 8;
constexpr std::uint64_t kChecksumBytes = 8;
constexpr std::uint64_t kMinRecordBytes = kPrefixBytes + kChecksumBytes;

/// Serializes the persisted verdict fields. Everything a cold scan would
/// recompute bit-identically; served_by, lint, and timing are stamped (or
/// zeroed) by the service at hit time.
void write_verdict(std::ostream& os, const core::DetectionReport& report) {
  util::write_u32(os, static_cast<std::uint32_t>(report.predicted_label));
  util::write_f64(os, report.probability);
  util::write_f64(os, report.p_values[0]);
  util::write_f64(os, report.p_values[1]);
  util::write_f64(os, report.region.p[0]);
  util::write_f64(os, report.region.p[1]);
  util::write_u8(os, report.region.contains[0] ? 1 : 0);
  util::write_u8(os, report.region.contains[1] ? 1 : 0);
  util::write_u32(os, static_cast<std::uint32_t>(report.region.point_prediction));
  util::write_f64(os, report.region.confidence);
  util::write_f64(os, report.region.credibility);
  util::write_string(os, report.fusion_used);
}

core::DetectionReport read_verdict(std::istream& is) {
  core::DetectionReport report;
  report.predicted_label = static_cast<int>(util::read_u32(is));
  report.probability = util::read_f64(is);
  report.p_values[0] = util::read_f64(is);
  report.p_values[1] = util::read_f64(is);
  report.region.p[0] = util::read_f64(is);
  report.region.p[1] = util::read_f64(is);
  report.region.contains[0] = util::read_u8(is) != 0;
  report.region.contains[1] = util::read_u8(is) != 0;
  report.region.point_prediction = static_cast<int>(util::read_u32(is));
  report.region.confidence = util::read_f64(is);
  report.region.credibility = util::read_f64(is);
  report.fusion_used = util::read_string(is);
  return report;
}

std::string encode_record(const PersistentVerdictCache::Key& key,
                          const std::string& source,
                          const core::DetectionReport& report) {
  std::ostringstream body(std::ios::binary);
  util::write_u32(body, key.feature_version);
  util::write_u64(body, key.model_digest);
  util::write_u64(body, key.source_hash);
  util::write_string(body, source);
  write_verdict(body, report);
  const std::string body_bytes = body.str();

  std::ostringstream os(std::ios::binary);
  util::write_u64(os, kDiskCacheMagic);
  util::write_u32(os, kDiskCacheRecordVersion);
  util::write_u64(os, kPrefixBytes + body_bytes.size() + kChecksumBytes);
  os.write(body_bytes.data(), static_cast<std::streamsize>(body_bytes.size()));
  const std::string framed = os.str();
  util::write_u64(os, util::fnv1a64(framed));
  return os.str();
}

struct DecodedRecord {
  PersistentVerdictCache::Key key;
  std::string source;
  core::DetectionReport report;
};

/// Full validation + decode of one record file's bytes. Returns kCount on
/// success; any other value is the reason the record must be skipped.
/// `expected` is the key the filename promises — a mismatching header is a
/// record that cannot belong here (e.g. a stale model digest renamed or
/// tampered into place).
DiskCacheSkip decode_record(const std::string& bytes,
                            const PersistentVerdictCache::Key& expected,
                            DecodedRecord& out) {
  if (bytes.empty()) return DiskCacheSkip::kEmpty;
  if (bytes.size() < kMinRecordBytes) return DiskCacheSkip::kTruncated;
  std::istringstream is(bytes);
  std::uint64_t magic = 0;
  std::uint32_t record_version = 0;
  std::uint64_t record_size = 0;
  try {
    magic = util::read_u64(is);
    record_version = util::read_u32(is);
    record_size = util::read_u64(is);
  } catch (const std::exception&) {
    return DiskCacheSkip::kTruncated;  // unreachable given the size guard
  }
  if (magic != kDiskCacheMagic) return DiskCacheSkip::kForeign;
  if (record_size != bytes.size()) return DiskCacheSkip::kTruncated;
  // Checksum before any field interpretation: a bit flip anywhere —
  // payload or the checksum itself — lands here, not in a version gate.
  const std::uint64_t want =
      util::fnv1a64(bytes.data(), bytes.size() - kChecksumBytes);
  std::uint64_t got = 0;
  {
    // The trailing checksum was written little-endian by write_u64; decode
    // it the same way instead of trusting host endianness.
    std::istringstream tail(bytes.substr(bytes.size() - kChecksumBytes));
    got = util::read_u64(tail);
  }
  if (got != want) return DiskCacheSkip::kChecksum;
  if (record_version != kDiskCacheRecordVersion) return DiskCacheSkip::kStaleRecord;
  try {
    out.key.feature_version = util::read_u32(is);
    out.key.model_digest = util::read_u64(is);
    out.key.source_hash = util::read_u64(is);
    if (out.key.feature_version != feat::kFeatureVersion) {
      return DiskCacheSkip::kStaleFeature;
    }
    if (!(out.key == expected)) return DiskCacheSkip::kKeyMismatch;
    out.source = util::read_string(is, 1u << 26);
    out.report = read_verdict(is);
  } catch (const std::exception&) {
    return DiskCacheSkip::kTruncated;  // checksummed yet unparsable: framing bug
  }
  return DiskCacheSkip::kCount;
}

}  // namespace

const char* to_string(DiskCacheSkip reason) noexcept {
  switch (reason) {
    case DiskCacheSkip::kEmpty: return "empty";
    case DiskCacheSkip::kTruncated: return "truncated";
    case DiskCacheSkip::kChecksum: return "checksum";
    case DiskCacheSkip::kForeign: return "foreign";
    case DiskCacheSkip::kStaleRecord: return "stale_record";
    case DiskCacheSkip::kStaleFeature: return "stale_feature";
    case DiskCacheSkip::kKeyMismatch: return "key_mismatch";
    case DiskCacheSkip::kCount: break;
  }
  return "ok";
}

std::size_t PersistentVerdictCache::KeyHash::operator()(const Key& key) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t word :
       {static_cast<std::uint64_t>(key.feature_version), key.model_digest,
        key.source_hash}) {
    h = (h ^ word) * 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

std::string PersistentVerdictCache::record_filename(const Key& key) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%08x-%016llx-%016llx.ndc", key.feature_version,
                static_cast<unsigned long long>(key.model_digest),
                static_cast<unsigned long long>(key.source_hash));
  return buf;
}

bool PersistentVerdictCache::parse_record_filename(const std::string& name, Key& key) {
  // Exactly "<8 hex>-<16 hex>-<16 hex>.ndc".
  if (name.size() != 8 + 1 + 16 + 1 + 16 + 4) return false;
  if (name[8] != '-' || name[25] != '-' || name.compare(42, 4, ".ndc") != 0) {
    return false;
  }
  const auto hex = [&](std::size_t begin, std::size_t count, std::uint64_t& out) {
    const char* first = name.data() + begin;
    const char* last = first + count;
    const auto [end, ec] = std::from_chars(first, last, out, 16);
    return ec == std::errc{} && end == last;
  };
  std::uint64_t feature = 0;
  if (!hex(0, 8, feature) || !hex(9, 16, key.model_digest) ||
      !hex(26, 16, key.source_hash)) {
    return false;
  }
  key.feature_version = static_cast<std::uint32_t>(feature);
  return true;
}

PersistentVerdictCache::PersistentVerdictCache(DiskCacheConfig config)
    : config_(std::move(config)) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::error_code ec;
    std::filesystem::create_directories(config_.directory, ec);
    if (ec) {
      enter_degraded_locked("create_directories", ec);
    } else {
      scan_directory_locked();
    }
  }
  writer_ = std::thread([this] { writer_loop(); });
}

PersistentVerdictCache::~PersistentVerdictCache() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // The writer drains the queue before exiting: a clean shutdown publishes
  // every verdict already handed over, so only a crash loses queued
  // stores. The queue is bounded (queue_capacity), so this is a bounded
  // amount of work, not an unbounded stall.
  writer_.join();
}

void PersistentVerdictCache::enter_degraded_locked(const char* what,
                                                   const std::error_code& ec) {
  (void)what;
  (void)ec;
  degraded_ = true;
  counters_.degraded = true;
}

void PersistentVerdictCache::scan_directory_locked() {
  struct Found {
    Key key;
    std::uint64_t bytes = 0;
    std::filesystem::file_time_type mtime;
  };
  std::vector<Found> found;
  std::error_code ec;
  std::filesystem::directory_iterator it(config_.directory, ec);
  if (ec) {
    enter_degraded_locked("directory_iterator", ec);
    return;
  }
  for (const auto& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    const std::filesystem::path& path = entry.path();
    if (util::AtomicFile::is_temp_path(path)) {
      // A crash mid-publish leaves the temp; the rename never happened, so
      // the entry simply does not exist. Sweep it.
      std::filesystem::remove(path, entry_ec);
      ++counters_.temps_swept;
      continue;
    }
    Key key;
    if (!parse_record_filename(path.filename().string(), key)) {
      ++counters_.skipped[static_cast<std::size_t>(DiskCacheSkip::kForeign)];
      ++counters_.corrupt;
      continue;  // not ours to touch
    }
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    DecodedRecord decoded;
    const DiskCacheSkip verdict =
        in ? decode_record(bytes, key, decoded) : DiskCacheSkip::kTruncated;
    if (verdict != DiskCacheSkip::kCount) {
      ++counters_.skipped[static_cast<std::size_t>(verdict)];
      ++counters_.corrupt;
      // Our record, but unserveable by this build: reclaim the space.
      std::filesystem::remove(path, entry_ec);
      continue;
    }
    const auto mtime = entry.last_write_time(entry_ec);
    found.push_back({key, bytes.size(), entry_ec ? std::filesystem::file_time_type{} : mtime});
  }
  // Oldest first; push_front then leaves the newest at the LRU front.
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime < b.mtime; });
  for (const Found& record : found) {
    index_insert_locked(record.key, record.bytes);
    ++counters_.loaded;
  }
  evict_over_budget_locked();
}

void PersistentVerdictCache::index_insert_locked(const Key& key, std::uint64_t bytes) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    counters_.bytes += bytes;
    counters_.bytes -= it->second.bytes;
    it->second.bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second.position);
  } else {
    lru_.push_front(key);
    index_.emplace(key, IndexEntry{bytes, lru_.begin()});
    counters_.bytes += bytes;
  }
  counters_.entries = index_.size();
}

void PersistentVerdictCache::evict_over_budget_locked() {
  while (counters_.bytes > config_.max_bytes && !lru_.empty()) {
    const Key victim = lru_.back();
    const auto it = index_.find(victim);
    if (it != index_.end()) {
      counters_.bytes -= it->second.bytes;
      index_.erase(it);
    }
    lru_.pop_back();
    std::error_code ec;
    std::filesystem::remove(config_.directory / record_filename(victim), ec);
    ++counters_.evictions;
  }
  counters_.entries = index_.size();
}

bool PersistentVerdictCache::lookup(const Key& key, const std::string& source,
                                    core::DetectionReport& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_ || degraded_) return false;  // not probed: neither hit nor miss
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return false;
  }

  const std::filesystem::path path = config_.directory / record_filename(key);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  DecodedRecord decoded;
  const DiskCacheSkip verdict =
      in ? decode_record(buffer.str(), key, decoded) : DiskCacheSkip::kTruncated;
  if (verdict != DiskCacheSkip::kCount) {
    // The file under an indexed entry went bad at runtime (external
    // tampering, disk fault). Expel it; the request falls through to a
    // fresh scan — never a crash, never a wrong verdict.
    ++counters_.skipped[static_cast<std::size_t>(verdict)];
    ++counters_.corrupt;
    counters_.bytes -= it->second.bytes;
    lru_.erase(it->second.position);
    index_.erase(it);
    counters_.entries = index_.size();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    ++counters_.misses;
    return false;
  }
  if (decoded.source != source) {
    // 64-bit hash collision between different circuits: the persisted
    // verdict belongs to someone else. Full-source comparison is the same
    // policy the in-memory tier enforces.
    ++counters_.collisions;
    ++counters_.misses;
    return false;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.position);
  out = std::move(decoded.report);
  out.served_by.clear();
  out.lint_ran = false;
  out.timing = core::RequestTiming{};
  return true;
}

void PersistentVerdictCache::store(const Key& key, std::string source,
                                   const core::DetectionReport& report) {
  if (report.lint_ran) return;  // only lint-off verdicts persist
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_ || degraded_) {
      // The caller wanted persistence and is not getting it; that is a
      // drop, visible in the counters, not a silent no-op.
      ++counters_.drops;
      return;
    }
  }
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ || queue_.size() >= config_.queue_capacity) {
      dropped = true;
    } else {
      PendingStore pending;
      pending.key = key;
      pending.source = std::move(source);
      pending.report = report;
      pending.report.lint_findings.clear();
      queue_.push_back(std::move(pending));
    }
  }
  if (dropped) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.drops;
    return;
  }
  queue_cv_.notify_one();
}

void PersistentVerdictCache::flush() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && writing_ == 0; });
}

void PersistentVerdictCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
  counters_.enabled = enabled;
}

bool PersistentVerdictCache::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

bool PersistentVerdictCache::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

DiskCacheStats PersistentVerdictCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DiskCacheStats snapshot = counters_;
  snapshot.entries = index_.size();
  snapshot.degraded = degraded_;
  snapshot.enabled = enabled_;
  return snapshot;
}

void PersistentVerdictCache::writer_loop() {
  for (;;) {
    PendingStore entry;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-then-stop: stopping_ only ends the loop once the queue is
      // empty, so an orderly shutdown publishes every accepted store.
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      entry = std::move(queue_.front());
      queue_.pop_front();
      ++writing_;
    }
    std::uint64_t bytes = 0;
    const bool wrote = write_record_locked_free(entry, bytes);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (wrote) {
        ++counters_.stores;
        index_insert_locked(entry.key, bytes);
        evict_over_budget_locked();
      } else {
        ++counters_.drops;
      }
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --writing_;
      if (queue_.empty() && writing_ == 0) idle_cv_.notify_all();
    }
  }
}

bool PersistentVerdictCache::write_record_locked_free(const PendingStore& entry,
                                                      std::uint64_t& bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (degraded_ || !enabled_) return false;
  }
  const std::string record = encode_record(entry.key, entry.source, entry.report);
  bytes = record.size();
  util::AtomicFile file(config_.directory / record_filename(entry.key));
  if (!file.write(record) || file.commit()) {
    // ENOSPC, EIO, unwritable directory — whatever it was, persistence is
    // now untrustworthy here. Flip to memory-only; never fail a request.
    std::lock_guard<std::mutex> lock(mu_);
    enter_degraded_locked("write_record", file.error());
    return false;
  }
  return true;
}

}  // namespace noodle::serve
