#include "serve/snapshot_store.h"

#include <exception>
#include <fstream>
#include <system_error>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "serve/registry.h"
#include "util/atomic_file.h"
#include "util/binary_io.h"

namespace noodle::serve {

namespace {

/// Digest of the file's bytes; false when the file vanished or is
/// unreadable (a publisher may still be copying it — next sweep retries).
bool digest_file(const std::filesystem::path& path, std::uint64_t& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash = kOffset;
  std::vector<char> buffer(1u << 16);
  while (is) {
    is.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const std::streamsize got = is.gcount();
    for (std::streamsize i = 0; i < got; ++i) {
      hash ^= static_cast<unsigned char>(buffer[static_cast<std::size_t>(i)]);
      hash *= kPrime;
    }
  }
  if (is.bad()) return false;
  out = hash;
  return true;
}

}  // namespace

SnapshotStore::SnapshotStore(SnapshotStoreConfig config, ModelRegistry& registry,
                             obs::MetricsRegistry* metrics)
    : config_(std::move(config)), registry_(registry), metrics_(metrics) {
  if (metrics_ != nullptr) {
    // Register both families up front so exposition shows zeros before the
    // first sweep and sweeps only touch pre-registered handles.
    accepted_counter_ = &metrics_->counter(
        "noodle_snapshot_store_accepted_total",
        "Snapshot archives validated and published from the store");
    rejected_counter_ = &metrics_->counter(
        "noodle_snapshot_store_rejected_total",
        "Snapshot archives refused by validation");
  }
}

SnapshotStore::~SnapshotStore() { stop(); }

void SnapshotStore::start() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    if (poller_.joinable()) return;
    stopping_ = false;
  }
  poller_ = std::thread([this] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(wake_mu_);
        wake_cv_.wait_for(lock, config_.poll_interval,
                          [this] { return stopping_ || poke_; });
        if (stopping_) return;
        poke_ = false;
      }
      sweep();
    }
  });
}

void SnapshotStore::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    if (!poller_.joinable()) return;
    stopping_ = true;
  }
  wake_cv_.notify_all();
  poller_.join();
}

std::size_t SnapshotStore::rescan_now() { return sweep(); }

void SnapshotStore::poke() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    poke_ = true;
  }
  wake_cv_.notify_all();
}

SnapshotStoreStats SnapshotStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

bool SnapshotStore::valid_model_name(const std::string& stem) {
  if (stem.empty()) return false;
  for (const char c : stem) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::size_t SnapshotStore::sweep() {
  std::lock_guard<std::mutex> lock(mu_);

  std::size_t accepted_this_sweep = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(config_.directory, ec);
  if (!ec) {
    for (const auto& entry : it) {
      std::error_code type_ec;
      if (!entry.is_regular_file(type_ec) || type_ec) continue;
      const std::filesystem::path& path = entry.path();
      if (util::AtomicFile::is_temp_path(path)) continue;
      const std::string stem = path.stem().string();
      if (!valid_model_name(stem)) continue;

      std::uint64_t digest = 0;
      if (!digest_file(path, digest)) continue;
      const std::string filename = path.filename().string();
      const auto judged = judged_.find(filename);
      if (judged != judged_.end() && judged->second == digest) continue;

      // New bytes under this name: validate + publish. reload_from loads
      // and validates outside every registry lock and records the attempt
      // (pass or fail) in the registry's reload event log.
      try {
        registry_.reload_from(stem, path);
        ++counters_.accepted;
        ++accepted_this_sweep;
        if (accepted_counter_ != nullptr) accepted_counter_->inc();
      } catch (const std::exception& error) {
        ++counters_.rejected;
        counters_.last_error = filename + ": " + error.what();
        if (rejected_counter_ != nullptr) rejected_counter_->inc();
      }
      // Remember the digest either way — a bad archive is not retried
      // until its bytes change.
      judged_[filename] = digest;
    }
  }
  ++counters_.scans;
  counters_.known = judged_.size();
  return accepted_this_sweep;
}

}  // namespace noodle::serve
