#include "serve/registry.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace noodle::serve {

namespace {

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '.' || c == '_' || c == '-';
  });
}

}  // namespace

std::string ModelSpec::to_string() const {
  return version == 0 ? name : name + "@" + std::to_string(version);
}

ModelSpec parse_model_spec(std::string_view spec) {
  ModelSpec parsed;
  const std::size_t at = spec.find('@');
  const std::string_view name = spec.substr(0, at);
  if (!valid_name(name)) {
    throw RegistryError("registry: bad model name in spec '" + std::string(spec) + "'");
  }
  parsed.name = std::string(name);
  if (at == std::string_view::npos) return parsed;
  const std::string_view version = spec.substr(at + 1);
  const auto [end, ec] =
      std::from_chars(version.data(), version.data() + version.size(), parsed.version);
  if (ec != std::errc{} || end != version.data() + version.size() ||
      parsed.version == 0) {
    throw RegistryError("registry: bad model version in spec '" + std::string(spec) +
                        "' (want name@N with N >= 1)");
  }
  return parsed;
}

// ---------------------------------------------------------------------------
// LoadedModel
// ---------------------------------------------------------------------------

LoadedModel::LoadedModel(std::string name, std::uint64_t version, std::uint64_t id,
                         std::shared_ptr<const core::FittedModel> model,
                         std::filesystem::path source)
    : name_(std::move(name)),
      version_(version),
      id_(id),
      model_(std::move(model)),
      source_(std::move(source)) {}

std::string LoadedModel::label() const {
  return name_ + "@" + std::to_string(version_);
}

// ---------------------------------------------------------------------------
// ModelRegistry
// ---------------------------------------------------------------------------

ModelHandle ModelRegistry::LatestView::get() const noexcept {
  return entry_ ? entry_->latest.load() : nullptr;
}

std::shared_ptr<ModelRegistry::NameEntry> ModelRegistry::find_entry(
    const std::string& name) const {
  std::shared_lock lock(names_mu_);
  const auto it = names_.find(name);
  return it == names_.end() ? nullptr : it->second;
}

ModelHandle ModelRegistry::publish(const std::string& name,
                                   std::shared_ptr<const core::FittedModel> model,
                                   std::filesystem::path source) {
  return publish_timed(name, std::move(model), std::move(source), 0);
}

ModelHandle ModelRegistry::publish_timed(const std::string& name,
                                         std::shared_ptr<const core::FittedModel> model,
                                         std::filesystem::path source,
                                         std::uint64_t load_micros) {
  if (!valid_name(name)) {
    throw RegistryError("registry: bad model name '" + name + "'");
  }
  if (!model) {
    throw RegistryError("registry: publish of null model for '" + name + "'");
  }
  std::shared_ptr<NameEntry> entry;
  {
    std::unique_lock lock(names_mu_);
    std::shared_ptr<NameEntry>& slot = names_[name];
    if (!slot) slot = std::make_shared<NameEntry>();
    entry = slot;
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  const std::uint64_t version = entry->next_version++;
  auto loaded = std::make_shared<const LoadedModel>(
      name, version, next_id_.fetch_add(1, std::memory_order_relaxed),
      std::move(model), std::move(source));
  entry->versions.emplace(version, loaded);
  // The swap: one atomic store repoints the epoch slot. Readers on the fast
  // path (LatestView::get / resolve-latest) see the previous generation or
  // this one — no torn state, no blocking.
  entry->latest.store(loaded);
  record_event(ReloadEvent{std::chrono::system_clock::now(), name, loaded->version(),
                           loaded->id(), load_micros, true, {}});
  return loaded;
}

ModelHandle ModelRegistry::reload_from(const std::string& name,
                                       const std::filesystem::path& path) {
  // Load and validate before taking any registry lock: a slow or corrupt
  // snapshot never stalls resolves, and a failed load changes nothing —
  // except an error entry in the reload event log, so an operator can see
  // the rejected swap attempt after the fact.
  const std::uint64_t start_nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  const auto elapsed_micros = [start_nanos] {
    const auto now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    return (now - start_nanos) / 1000;
  };
  std::shared_ptr<const core::FittedModel> model;
  try {
    model = core::FittedModel::load(path);
  } catch (const std::exception& e) {
    record_event(ReloadEvent{std::chrono::system_clock::now(), name, 0, 0,
                             elapsed_micros(), false, e.what()});
    throw;
  }
  return publish_timed(name, std::move(model), path, elapsed_micros());
}

void ModelRegistry::record_event(ReloadEvent event) {
  std::lock_guard<std::mutex> lock(events_mu_);
  if (event.ok) {
    ++reload_stats_.ok;
  } else {
    ++reload_stats_.errors;
  }
  reload_stats_.load_micros_total += event.load_micros;
  events_.push_back(std::move(event));
  while (events_.size() > kMaxReloadEvents) events_.pop_front();
}

std::vector<ReloadEvent> ModelRegistry::reload_events() const {
  std::lock_guard<std::mutex> lock(events_mu_);
  return {events_.begin(), events_.end()};
}

ReloadStats ModelRegistry::reload_stats() const {
  std::lock_guard<std::mutex> lock(events_mu_);
  return reload_stats_;
}

ModelHandle ModelRegistry::try_resolve(const ModelSpec& spec) const noexcept {
  const std::shared_ptr<NameEntry> entry = find_entry(spec.name);
  if (!entry) return nullptr;
  if (spec.version == 0) return entry->latest.load();
  std::lock_guard<std::mutex> lock(entry->mu);
  const auto it = entry->versions.find(spec.version);
  return it == entry->versions.end() ? nullptr : it->second;
}

ModelHandle ModelRegistry::resolve(const ModelSpec& spec) const {
  ModelHandle handle = try_resolve(spec);
  if (!handle) {
    throw RegistryError("registry: no model '" + spec.to_string() + "'");
  }
  return handle;
}

ModelHandle ModelRegistry::resolve(std::string_view spec) const {
  return resolve(parse_model_spec(spec));
}

ModelRegistry::LatestView ModelRegistry::latest_view(const std::string& name) const {
  std::shared_ptr<NameEntry> entry = find_entry(name);
  if (!entry) {
    throw RegistryError("registry: no model '" + name + "'");
  }
  return LatestView(std::move(entry));
}

bool ModelRegistry::retire(const std::string& name, std::uint64_t version) {
  const std::shared_ptr<NameEntry> entry = find_entry(name);
  if (!entry) return false;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->versions.empty()) return false;
  const auto it = version == 0 ? std::prev(entry->versions.end())
                               : entry->versions.find(version);
  if (it == entry->versions.end()) return false;
  entry->versions.erase(it);
  // Repoint latest to the highest survivor (nullptr when none). Handles
  // already resolved stay alive — retire only stops new resolutions.
  entry->latest.store(entry->versions.empty() ? nullptr
                                              : entry->versions.rbegin()->second);
  return true;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> result;
  {
    std::shared_lock lock(names_mu_);
    for (const auto& [name, entry] : names_) {
      if (entry->latest.load() != nullptr) result.push_back(name);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<ModelHandle> ModelRegistry::catalog() const {
  std::vector<ModelHandle> result;
  std::vector<std::shared_ptr<NameEntry>> entries;
  {
    std::shared_lock lock(names_mu_);
    entries.reserve(names_.size());
    for (const auto& [name, entry] : names_) entries.push_back(entry);
  }
  for (const auto& entry : entries) {
    std::lock_guard<std::mutex> lock(entry->mu);
    for (const auto& [version, handle] : entry->versions) result.push_back(handle);
  }
  std::sort(result.begin(), result.end(), [](const ModelHandle& a, const ModelHandle& b) {
    return a->name() != b->name() ? a->name() < b->name() : a->version() < b->version();
  });
  return result;
}

std::size_t ModelRegistry::size() const {
  std::size_t count = 0;
  std::vector<std::shared_ptr<NameEntry>> entries;
  {
    std::shared_lock lock(names_mu_);
    for (const auto& [name, entry] : names_) entries.push_back(entry);
  }
  for (const auto& entry : entries) {
    std::lock_guard<std::mutex> lock(entry->mu);
    count += entry->versions.size();
  }
  return count;
}

}  // namespace noodle::serve
