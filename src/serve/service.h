#pragma once
// DetectionService — a long-lived serving front end over a ModelRegistry of
// fitted detector generations. This is the piece that turns the library
// into the ROADMAP's "train once, serve heavy traffic" shape:
//
//   * requests enter through an async submit() returning a future, naming a
//     model as "name" or "name@version" (or using the service default);
//   * a dispatcher coalesces concurrent requests into scan_many batches
//     executed on a util::ThreadPool; each batch group resolves its
//     registry handle ONCE, so every verdict in a group comes from exactly
//     one generation even while reload_from() swaps models live;
//   * verdicts are memoized in an LRU cache keyed by (generation id,
//     fnv1a64(source)) — cached verdicts from different generations of the
//     same name can never collide, and stale generations simply age out;
//   * counters are kept per model name plus an aggregate, and every read
//     goes through StatsBook::snapshot() so a reported ServiceStats is
//     internally consistent (never torn totals like hits > requests).
//
// FittedModel generations are immutable, which is what makes batching
// across threads safe and verdicts independent of arrival order: a service
// answer is always bit-identical to a direct scan on the same generation.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/detector.h"
#include "lint/lint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/disk_cache.h"
#include "serve/registry.h"
#include "util/thread_pool.h"

namespace noodle::serve {

/// Model name used by the single-model convenience constructors and by
/// submit() overloads that don't name a model.
inline constexpr const char* kDefaultModelName = "default";

/// Fails a request whose deadline expired before any detector scanned it:
/// the dispatcher sweeps expired requests out of a batch group BEFORE the
/// (expensive) featurize+scan, so under overload the service sheds exactly
/// the work nobody is waiting for anymore instead of scanning into the
/// void. Carried by the request's future like every other failure.
class DeadlineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-request knobs for submit()/submit_async(); default-constructed
/// options reproduce the plain submit() behaviour exactly.
struct SubmitOptions {
  /// Relative deadline measured from submit; zero = none. Expiry fails the
  /// future with DeadlineError. The deadline is enforced at batch dispatch
  /// (the latest point where skipping the scan still saves the work); a
  /// request already inside scan_many runs to completion.
  std::chrono::milliseconds deadline{0};
};

struct ServiceConfig {
  /// Most requests coalesced into one detector batch.
  std::size_t max_batch = 16;
  /// How long the dispatcher lingers for more arrivals once a request is
  /// pending, before dispatching a partial batch.
  std::chrono::milliseconds batch_linger{2};
  /// LRU verdict-cache capacity in entries; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Worker threads executing detector batches (the batch itself fans out
  /// further via FittedModel::scan_many).
  std::size_t workers = 1;
  /// Thread count forwarded to scan_many inside one batch (0 = hardware).
  std::size_t scan_threads = 1;
  /// Run the lint:: static-analysis pass on every scanned source and attach
  /// the findings to the report (verdicts are unaffected). Toggleable at
  /// runtime via DetectionService::set_lint().
  bool lint = false;
  /// Disk tier under the in-memory LRU (serve::PersistentVerdictCache).
  /// Active iff `disk_cache.directory` is non-empty; with it unset the
  /// serving path is byte-for-byte the memory-only fast path (one null
  /// check). Keys are restart-stable, so a warm directory answers across
  /// restarts and can be shared by a fleet of workers.
  DiskCacheConfig disk_cache;
};

/// One consistent counters snapshot (see StatsBook). Monotonic except that
/// a snapshot as a whole is taken atomically: invariants like
/// cache_hits + scans + parse_failures + model_misses + deadline_timeouts
/// <= requests hold in every copy handed out.
struct ServiceStats {
  std::uint64_t requests = 0;       ///< total submit() calls
  std::uint64_t cache_hits = 0;     ///< answered from the LRU without a scan
  std::uint64_t disk_hits = 0;      ///< answered from the persistent disk tier
  std::uint64_t scans = 0;          ///< verdicts computed by a detector
  std::uint64_t parse_failures = 0; ///< requests rejected with ParseError
  std::uint64_t model_misses = 0;   ///< requests naming an unknown model/version
  std::uint64_t deadline_timeouts = 0;  ///< requests failed with DeadlineError unscanned
  std::uint64_t batches = 0;        ///< single-generation batch groups dispatched
  std::uint64_t max_batch_size = 0; ///< largest coalesced batch group so far
  std::uint64_t scan_micros = 0;    ///< wall time inside detector batches
  std::uint64_t lint_runs = 0;      ///< sources the static-analysis pass covered
  std::uint64_t lint_findings = 0;  ///< findings across all lint runs
  /// Per-rule finding counts, indexed by lint::RuleId.
  std::array<std::uint64_t, lint::kRuleCount> lint_by_rule{};

  double cache_hit_rate() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(cache_hits) / static_cast<double>(requests);
  }
  double average_batch_size() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(scans) / static_cast<double>(batches);
  }
  double average_scan_micros() const noexcept {
    return scans == 0 ? 0.0
                      : static_cast<double>(scan_micros) / static_cast<double>(scans);
  }
};

/// Aggregate + per-model-name service counters. Every mutation and every
/// read happens under one mutex, so snapshot() returns a copy whose
/// counters are mutually consistent — a caller can never observe a torn
/// total (e.g. a cache hit counted before the request that caused it).
///
/// Model names come from client-supplied request specs, so the per-name
/// map is bounded: once kMaxTrackedModels distinct names exist, further
/// new names share one "(other)" cell (a name is routed consistently, so
/// per-cell invariants still hold). This keeps a long-lived service from
/// growing without bound under a stream of bogus model names.
class StatsBook {
 public:
  static constexpr std::size_t kMaxTrackedModels = 256;
  static constexpr const char* kOverflowCell = "(other)";

  /// Consistent aggregate snapshot.
  ServiceStats snapshot() const;
  /// Consistent snapshot for one model name (zeros if never seen).
  ServiceStats snapshot(const std::string& model) const;
  /// Consistent snapshot of every model's counters.
  std::map<std::string, ServiceStats> by_model() const;
  /// Aggregate and per-model snapshots taken under ONE lock acquisition —
  /// the pair is mutually consistent (total == sum of cells), which is what
  /// the Prometheus mirror needs so `!stats` and `!metrics` can never
  /// disagree.
  std::pair<ServiceStats, std::map<std::string, ServiceStats>> snapshot_all() const;

  void record_request(const std::string& model);
  void record_cache_hit(const std::string& model);
  void record_disk_hit(const std::string& model);
  void record_model_miss(const std::string& model);
  void record_deadline_timeout(const std::string& model);
  void record_batch(const std::string& model, std::uint64_t scans,
                    std::uint64_t parse_failures, std::uint64_t batch_size,
                    std::uint64_t scan_micros);
  void record_lint(const std::string& model, std::uint64_t runs,
                   const std::array<std::uint64_t, lint::kRuleCount>& by_rule);

 private:
  template <typename Fn>
  void update(const std::string& model, Fn&& fn);

  mutable std::mutex mu_;
  ServiceStats total_;
  std::map<std::string, ServiceStats> per_model_;
};

class DetectionService {
 public:
  /// Serves every model published in `registry` (which may keep changing —
  /// publishes, reloads, and retires take effect live). Throws
  /// std::invalid_argument on a null registry or degenerate config; the
  /// default model does not have to exist yet.
  DetectionService(std::shared_ptr<ModelRegistry> registry,
                   std::string default_model = kDefaultModelName,
                   ServiceConfig config = {});

  /// Single-model convenience: adopts an already-fitted detector into a
  /// private registry as "default"@1. Throws std::invalid_argument if the
  /// detector is unfitted or the config is degenerate.
  explicit DetectionService(core::NoodleDetector detector, ServiceConfig config = {});

  /// Single-model convenience: loads "default"@1 from a snapshot archive.
  explicit DetectionService(const std::filesystem::path& snapshot,
                            ServiceConfig config = {});

  /// Drains every outstanding request, then stops the workers.
  ~DetectionService();

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Queues one Verilog source for scanning by the default model. The
  /// future carries the verdict (DetectionReport::served_by says which
  /// generation answered), the parse error, or a RegistryError when the
  /// model is unknown; a cache hit resolves it immediately. Thread-safe.
  std::future<core::DetectionReport> submit(std::string verilog_source);

  /// Same, naming a model as "name" or "name@version" (version omitted =
  /// latest at batch-dispatch time). Throws RegistryError only on a
  /// malformed spec; an unknown model fails the future, not the call.
  std::future<core::DetectionReport> submit(const std::string& model_spec,
                                            std::string verilog_source);

  /// submit() with per-request options; a deadline that expires before
  /// batch dispatch fails the future with DeadlineError.
  std::future<core::DetectionReport> submit(const std::string& model_spec,
                                            std::string verilog_source,
                                            SubmitOptions options);

  /// Synchronous convenience wrappers around submit().get().
  core::DetectionReport scan(std::string verilog_source);
  core::DetectionReport scan(const std::string& model_spec, std::string verilog_source);

  /// Invoked exactly once per submit_async() request with the READY future
  /// (get() returns or throws immediately — no completion ever blocks in
  /// it). Runs on whichever thread finished the request: a pool worker for
  /// scanned verdicts, the submitting thread for cache hits and
  /// shutdown rejections. Event-loop callers marshal back with post().
  using CompletionFn = std::function<void(std::future<core::DetectionReport>)>;

  /// Callback-style submit for reactor front ends (noodled's socket mode):
  /// same semantics as submit() — including the immediate cache-hit path —
  /// but the verdict is delivered to `on_complete` instead of a returned
  /// future, so an event loop never parks a thread on future.get(). A
  /// request past `options.deadline` at batch dispatch fails with
  /// DeadlineError instead of being scanned. During shutdown the callback
  /// still fires (with the shutdown error) rather than throwing.
  void submit_async(std::string verilog_source, SubmitOptions options,
                    CompletionFn on_complete);
  /// Same, naming a model as "name" or "name@version". Throws RegistryError
  /// only on a malformed spec (before any callback is registered).
  void submit_async(const std::string& model_spec, std::string verilog_source,
                    SubmitOptions options, CompletionFn on_complete);

  /// Blocks until every request submitted so far has been answered.
  void drain();

  /// Consistent aggregate counters (see StatsBook).
  ServiceStats stats() const;
  /// Consistent counters for one model name.
  ServiceStats stats(const std::string& model_name) const;
  /// Consistent counters for every model name seen so far.
  std::map<std::string, ServiceStats> stats_by_model() const;

  /// The service's observability surface: per-stage latency histograms
  /// (noodle_stage_duration_seconds{stage=...}), cache miss-reason
  /// counters, thread-pool gauges — plus, after sync via
  /// render_prometheus()/metrics_snapshot(), a mirror of every StatsBook
  /// counter. Embedders may register their own metrics here too.
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Mirrors StatsBook/registry/cache state into the metrics registry
  /// (one consistent StatsBook snapshot — `!stats` and `!metrics` can
  /// never disagree), then renders the Prometheus text exposition.
  /// Thread-safe; callable while the service runs.
  void render_prometheus(std::ostream& os);
  /// Same sync, returning the raw samples instead of rendering.
  std::vector<obs::MetricsRegistry::Sample> metrics_snapshot();

  /// The live registry: publish/reload/retire take effect on the next
  /// dispatched batch without pausing the service.
  ModelRegistry& registry() noexcept { return *registry_; }
  const ModelRegistry& registry() const noexcept { return *registry_; }

  /// Convenience for the hot-reload control path: load the snapshot at
  /// `path` and atomically publish it as the next version of `name`.
  ModelHandle reload(const std::string& name, const std::filesystem::path& path);

  const std::string& default_model() const noexcept { return default_model_; }
  std::size_t cache_size() const;

  /// Runtime toggle for the static-analysis pass (the `!lint` control line
  /// in noodled). Each request samples the flag at submit time, so the
  /// toggle orders deterministically with request submission: everything
  /// submitted before it keeps the old setting even if batching coalesces
  /// them with later requests.
  void set_lint(bool enabled) noexcept { lint_.store(enabled, std::memory_order_relaxed); }
  bool lint_enabled() const noexcept { return lint_.load(std::memory_order_relaxed); }

  /// The persistent disk tier; nullptr when config_.disk_cache.directory
  /// was empty. Exposed for the `!cache persist on|off` control line and
  /// for tests/operators reading its counters.
  PersistentVerdictCache* disk_cache() noexcept { return disk_cache_.get(); }
  const PersistentVerdictCache* disk_cache() const noexcept { return disk_cache_.get(); }
  /// One consistent disk-tier counter snapshot; all-zero (enabled=false)
  /// when no disk tier is configured, so callers need no null check.
  DiskCacheStats disk_cache_stats() const;

 private:
  struct Request {
    ModelSpec spec;
    std::string source;
    std::uint64_t key = 0;
    bool lint = false;  // lint_ sampled at submit time
    std::uint64_t submit_nanos = 0;  ///< obs::now_nanos() at submit (queue wait)
    std::uint64_t deadline_nanos = 0;  ///< absolute; 0 = no deadline
    core::RequestTiming timing;      ///< filled stage by stage, moved into the report
    std::promise<core::DetectionReport> promise;
    /// Async-path plumbing: the future is parked here at submit and handed
    /// (ready) to on_complete right after the promise is fulfilled. Sync
    /// submits leave both empty — deliver()/fail() then reduce to the
    /// plain promise operations.
    std::future<core::DetectionReport> future;
    CompletionFn on_complete;

    void deliver(core::DetectionReport report) {
      promise.set_value(std::move(report));
      notify();
    }
    void fail(std::exception_ptr error) {
      promise.set_exception(std::move(error));
      notify();
    }
    void notify() {
      if (on_complete) on_complete(std::move(future));
    }
  };

  /// Per-stage latency histograms; indexes into stage_hist_.
  enum Stage : std::size_t {
    kStageQueueWait = 0,
    kStageFeaturize,
    kStageInfer,
    kStageLint,
    kStageCacheLookup,
    kStageTotal,
    kStageCount,
  };

  /// Why a submit-time cache probe did not answer the request; each reason
  /// has its own counter so hit/miss accounting stays exact under `!lint`
  /// toggles (a lint-state mismatch is a distinct, visible miss, not a
  /// phantom hit — see tests/test_serve.cpp).
  enum class CacheProbe : std::size_t {
    kHit = 0,
    kDiskHit,        ///< in-memory miss answered by the persistent disk tier
    kMissAbsent,     ///< no entry for (generation, hash)
    kMissCollision,  ///< hash matched, full source compare did not
    kMissLintState,  ///< entry exists but was scanned with the other lint setting
    kMissBypass,     ///< cache disabled, or the spec is not resolvable yet
    kProbeCount,
  };

  /// Verdict-cache key: the generation id scopes the source hash, so two
  /// generations of one name (or two names) can never serve each other's
  /// cached verdicts.
  struct CacheKey {
    std::uint64_t model_id = 0;
    std::uint64_t source_hash = 0;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const noexcept {
      // fnv1a-style mix of the two words.
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (std::uint64_t word : {key.model_id, key.source_hash}) {
        h = (h ^ word) * 0x100000001b3ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };

  /// The one enqueue path behind submit()/submit_async(). With a null
  /// `on_complete` behaves exactly like the PR-5 submit (returns the
  /// future, throws when stopping); with one, delivers through the
  /// callback and returns an empty future.
  std::future<core::DetectionReport> submit_request(ModelSpec spec, std::string source,
                                                    SubmitOptions options,
                                                    CompletionFn on_complete);
  void dispatcher_loop();
  void process_batch(std::vector<Request> batch);
  void process_group(const std::string& group_label, std::vector<Request> group);
  CacheProbe cache_lookup(const CacheKey& key, const std::string& source,
                          bool want_lint, core::DetectionReport& report);
  void cache_store(const CacheKey& key, const std::string& source,
                   const core::DetectionReport& report);
  void finish_requests(std::size_t count);
  /// Registers the service's own metrics (constructor only).
  void register_metrics();
  /// Pushes one consistent StatsBook snapshot plus registry/cache/pool
  /// state into the metrics registry (render path, not hot path).
  void sync_mirrored_metrics();

  std::shared_ptr<ModelRegistry> registry_;
  std::string default_model_;
  ServiceConfig config_;
  std::atomic<bool> lint_{false};  // seeded from config_.lint

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Request> queue_;
  std::size_t outstanding_ = 0;  ///< submitted but not yet answered
  bool stopping_ = false;

  // LRU cache: most-recent at the front of lru_; the map holds the verdict
  // and the entry's position in lru_. The full source is kept and compared
  // on hit: the source hash is a non-cryptographic 64-bit hash of
  // attacker-supplied RTL, and a collision must never serve another
  // circuit's verdict.
  struct CacheEntry {
    std::string source;
    core::DetectionReport report;
    std::list<CacheKey>::iterator position;
  };
  mutable std::mutex cache_mutex_;
  std::list<CacheKey> lru_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;

  StatsBook stats_;

  /// Disk tier under the LRU; null when not configured. Declared before
  /// pool_/dispatcher_ because their threads store into it; its own writer
  /// thread never touches service state, so destruction order is safe.
  std::unique_ptr<PersistentVerdictCache> disk_cache_;

  // Declared before pool_/dispatcher_ so the gauges and histograms outlive
  // every thread that records into them (members destroy in reverse order).
  obs::MetricsRegistry metrics_;
  std::array<obs::Histogram*, kStageCount> stage_hist_{};
  std::array<obs::Counter*, static_cast<std::size_t>(CacheProbe::kProbeCount)>
      probe_counters_{};
  obs::Gauge* pool_queue_depth_ = nullptr;
  obs::Gauge* pool_in_flight_ = nullptr;

  util::ThreadPool pool_;
  std::thread dispatcher_;
};

}  // namespace noodle::serve
