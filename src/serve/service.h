#pragma once
// DetectionService — a long-lived serving front end over one fitted
// NoodleDetector. This is the piece that turns the library into the
// ROADMAP's "train once, serve heavy traffic" shape:
//
//   * requests enter through an async submit() returning a future;
//   * a dispatcher coalesces concurrent requests into scan_many batches
//     executed on a util::ThreadPool, so the CNN/ICP inference cost is
//     amortized across callers;
//   * verdicts are memoized in an LRU cache keyed by a 64-bit FNV-1a hash
//     of the Verilog source, so re-scanning unchanged RTL is O(1);
//   * counters (requests, cache hits, batch sizes, scan latency) are
//     exported through ServiceStats for operational metering.
//
// The detector itself is immutable after construction (scan_features on a
// fitted detector is stateless), which is what makes batching across
// threads safe and verdicts independent of arrival order: a service answer
// is always bit-identical to a direct scan_verilog() call on the same
// detector.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <future>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/detector.h"
#include "util/thread_pool.h"

namespace noodle::serve {

struct ServiceConfig {
  /// Most requests coalesced into one detector batch.
  std::size_t max_batch = 16;
  /// How long the dispatcher lingers for more arrivals once a request is
  /// pending, before dispatching a partial batch.
  std::chrono::milliseconds batch_linger{2};
  /// LRU verdict-cache capacity in entries; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Worker threads executing detector batches (the batch itself fans out
  /// further via NoodleDetector::scan_many).
  std::size_t workers = 1;
  /// Thread count forwarded to scan_many inside one batch (0 = hardware).
  std::size_t scan_threads = 1;
};

/// Monotonic counters snapshot; taken atomically enough for metering (each
/// counter is individually consistent).
struct ServiceStats {
  std::uint64_t requests = 0;       ///< total submit() calls
  std::uint64_t cache_hits = 0;     ///< answered from the LRU without a scan
  std::uint64_t scans = 0;          ///< verdicts computed by the detector
  std::uint64_t parse_failures = 0; ///< requests rejected with ParseError
  std::uint64_t batches = 0;        ///< detector batches dispatched
  std::uint64_t max_batch_size = 0; ///< largest coalesced batch so far
  std::uint64_t scan_micros = 0;    ///< wall time inside detector batches

  double cache_hit_rate() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(cache_hits) / static_cast<double>(requests);
  }
  double average_batch_size() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(scans) / static_cast<double>(batches);
  }
  double average_scan_micros() const noexcept {
    return scans == 0 ? 0.0
                      : static_cast<double>(scan_micros) / static_cast<double>(scans);
  }
};

class DetectionService {
 public:
  /// Adopts an already-fitted detector. Throws std::invalid_argument if the
  /// detector is unfitted or the config is degenerate.
  explicit DetectionService(core::NoodleDetector detector, ServiceConfig config = {});

  /// Loads the detector from a snapshot archive (NoodleDetector::save).
  explicit DetectionService(const std::filesystem::path& snapshot,
                            ServiceConfig config = {});

  /// Drains every outstanding request, then stops the workers.
  ~DetectionService();

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Queues one Verilog source for scanning. The future carries the verdict
  /// or the parse error; a cache hit resolves it immediately. Thread-safe.
  std::future<core::DetectionReport> submit(std::string verilog_source);

  /// Synchronous convenience wrapper around submit().get().
  core::DetectionReport scan(std::string verilog_source);

  /// Blocks until every request submitted so far has been answered.
  void drain();

  ServiceStats stats() const;

  const core::NoodleDetector& detector() const noexcept { return detector_; }
  std::size_t cache_size() const;

 private:
  struct Request {
    std::string source;
    std::uint64_t key = 0;
    std::promise<core::DetectionReport> promise;
  };

  void dispatcher_loop();
  void process_batch(std::vector<Request> batch);
  bool cache_lookup(std::uint64_t key, const std::string& source,
                    core::DetectionReport& report);
  void cache_store(std::uint64_t key, const std::string& source,
                   const core::DetectionReport& report);
  void finish_requests(std::size_t count);

  core::NoodleDetector detector_;
  ServiceConfig config_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Request> queue_;
  std::size_t outstanding_ = 0;  ///< submitted but not yet answered
  bool stopping_ = false;

  // LRU cache: most-recent at the front of lru_; the map holds the verdict
  // and the entry's position in lru_. The full source is kept and compared
  // on hit: the key is a non-cryptographic 64-bit hash of attacker-supplied
  // RTL, and a collision must never serve another circuit's verdict.
  struct CacheEntry {
    std::string source;
    core::DetectionReport report;
    std::list<std::uint64_t>::iterator position;
  };
  mutable std::mutex cache_mutex_;
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, CacheEntry> cache_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;

  util::ThreadPool pool_;
  std::thread dispatcher_;
};

}  // namespace noodle::serve
