#pragma once
// Lowers a parsed Verilog module to its data-flow NetGraph.
//
// Lowering rules:
//  * one node per declared signal (Input/Output/Wire/Reg by declaration),
//  * one node per constant occurrence and per operator occurrence,
//  * `assign lhs = rhs`  =>  rhs-expression subgraph -> lhs signal node,
//  * procedural assignment  =>  rhs subgraph -> lhs, plus a control edge
//    from every enclosing if/case condition node (the implicit mux select),
//  * instances become Instance nodes wired between their actuals
//    (inputs feed the instance; the instance feeds outputs),
//  * edge-triggered blocks add an edge from the clock signal to each
//    assigned register, capturing the sequential skeleton.
//
// One templated lowering serves both AST forms (ast.h and fast_ast.h), so
// the owning and arena paths cannot drift apart. The arena entry point
// reuses the caller's graph and scratch, performing zero heap allocations
// in steady state.

#include "graph/netgraph.h"
#include "verilog/ast.h"
#include "verilog/fast_ast.h"

namespace noodle::graph {

/// Reusable lowering state: the signal-name index (flat hash on symbol id)
/// and the enclosing-condition stack. Grow-only, one per thread.
struct BuildScratch {
  util::SymbolMap<NetGraph::NodeId> signals;
  std::vector<NetGraph::NodeId> conditions;
};

/// Builds the data-flow graph of one module. Identifiers that were never
/// declared (outside the generated corpus this can happen in hand-written
/// files) get implicit Wire nodes rather than failing, matching how
/// synthesis treats undeclared nets.
NetGraph build_netgraph(const verilog::Module& m);

/// Arena-AST form: clears and rebuilds `graph` in place. `graph` must share
/// the symbol table of the ParserWorkspace that produced `m` (a
/// feat::FeaturizeWorkspace wires this up).
void build_netgraph(const verilog::fast::Module& m, NetGraph& graph,
                    BuildScratch& scratch);

}  // namespace noodle::graph
