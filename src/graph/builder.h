#pragma once
// Lowers a parsed Verilog module to its data-flow NetGraph.
//
// Lowering rules:
//  * one node per declared signal (Input/Output/Wire/Reg by declaration),
//  * one node per constant occurrence and per operator occurrence,
//  * `assign lhs = rhs`  =>  rhs-expression subgraph -> lhs signal node,
//  * procedural assignment  =>  rhs subgraph -> lhs, plus a control edge
//    from every enclosing if/case condition node (the implicit mux select),
//  * instances become Instance nodes wired between their actuals
//    (inputs feed the instance; the instance feeds outputs),
//  * edge-triggered blocks add an edge from the clock signal to each
//    assigned register, capturing the sequential skeleton.

#include "graph/netgraph.h"
#include "verilog/ast.h"

namespace noodle::graph {

/// Builds the data-flow graph of one module. Identifiers that were never
/// declared (outside the generated corpus this can happen in hand-written
/// files) get implicit Wire nodes rather than failing, matching how
/// synthesis treats undeclared nets.
NetGraph build_netgraph(const verilog::Module& m);

}  // namespace noodle::graph
