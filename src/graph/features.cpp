#include "graph/features.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "util/stats.h"
#include "verilog/symbols.h"

namespace noodle::graph {

namespace {

double safe_log1p(double x) { return std::log1p(std::max(0.0, x)); }

/// Operator buckets tracked by the embedding; anything else lands in
/// "other". Comparators and XORs are listed first because Trojan triggers
/// and leak payloads disproportionately use them. This spelling-level rule
/// is the single source of truth; the hot path consults the id-indexed
/// table derived from it below.
constexpr int op_bucket_of(std::string_view op) {
  if (op == "==" || op == "!=" || op == "===" || op == "!==") return 0;  // equality
  if (op == "<" || op == "<=" || op == ">" || op == ">=") return 1;      // relational
  if (op == "^" || op == "~^" || op == "^~") return 2;                   // xor
  if (op == "&" || op == "~&") return 3;                                 // and
  if (op == "|" || op == "~|") return 4;                                 // or
  if (op == "+" || op == "-") return 5;                                  // add/sub
  if (op == "*" || op == "/" || op == "%") return 6;                     // mul/div
  if (op == "<<" || op == ">>" || op == "<<<" || op == ">>>") return 7;  // shift
  if (op == "!" || op == "~") return 8;                                  // not
  return 9;                                                              // other
}

// Indexed by interned symbol id; operator labels always come from the
// preinterned punct vocabulary, so the table covers every possible Op node.
constexpr auto kOpBucketBySymbol = [] {
  std::array<std::uint8_t, verilog::kPreinternedSymbolCount> table{};
  for (auto& bucket : table) bucket = 9;
  for (std::size_t i = 0; i < verilog::kPunctSpellings.size(); ++i) {
    table[i] = static_cast<std::uint8_t>(op_bucket_of(verilog::kPunctSpellings[i]));
  }
  return table;
}();

constexpr std::size_t kOpBuckets = 10;

}  // namespace

int op_bucket(util::Symbol op) noexcept {
  return op < kOpBucketBySymbol.size() ? kOpBucketBySymbol[op] : 9;
}

std::vector<double> graph_features(const NetGraph& g) {
  std::vector<double> features(kGraphFeatureDim, 0.0);
  FeatureScratch scratch;
  graph_features(g, features, scratch);
  return features;
}

void graph_features(const NetGraph& g, std::span<double> out, FeatureScratch& scratch) {
  if (out.size() != kGraphFeatureDim) {
    throw std::invalid_argument("graph_features: output size != kGraphFeatureDim");
  }

  const std::size_t n = g.node_count();
  const std::size_t e = g.edge_count();
  std::size_t next = 0;
  const auto push = [&out, &next](double value) { out[next++] = value; };

  // [0..9] node-type histogram.
  g.type_histogram(out.subspan(0, kNodeTypeCount));
  next = kNodeTypeCount;

  // [10..19] operator-bucket histogram over Op nodes (normalized by node
  // count so absolute operator density is preserved).
  double op_hist[kOpBuckets] = {};
  for (NetGraph::NodeId id = 0; id < n; ++id) {
    const Node& node = g.node(id);
    if (node.type == NodeType::Op) {
      op_hist[static_cast<std::size_t>(op_bucket(node.label))] += 1.0;
    }
  }
  if (n > 0) {
    for (double& bin : op_hist) bin /= static_cast<double>(n);
  }
  for (const double bin : op_hist) push(bin);

  // [20..25] degree statistics.
  std::vector<double>& in_degrees = scratch.in_degrees;
  std::vector<double>& out_degrees = scratch.out_degrees;
  in_degrees.clear();
  out_degrees.clear();
  in_degrees.reserve(n);
  out_degrees.reserve(n);
  for (NetGraph::NodeId id = 0; id < n; ++id) {
    in_degrees.push_back(static_cast<double>(g.in_degree(id)));
    out_degrees.push_back(static_cast<double>(g.out_degree(id)));
  }
  push(n == 0 ? 0.0 : util::mean(in_degrees));
  push(n == 0 ? 0.0 : util::mean(out_degrees));
  push(n == 0 ? 0.0 : safe_log1p(util::max_value(in_degrees)));
  push(n == 0 ? 0.0 : safe_log1p(util::max_value(out_degrees)));
  push(n == 0 ? 0.0 : util::stddev(out_degrees));
  // Fraction of single-fanout nets: Trojan trigger wires typically feed
  // exactly one mux, inflating this tail.
  double single_fanout = 0.0;
  for (const double d : out_degrees) {
    if (d == 1.0) single_fanout += 1.0;
  }
  push(n == 0 ? 0.0 : single_fanout / static_cast<double>(n));

  // [26..30] global structure.
  push(safe_log1p(static_cast<double>(n)));
  push(safe_log1p(static_cast<double>(e)));
  push(n <= 1 ? 0.0
              : static_cast<double>(e) /
                    (static_cast<double>(n) * static_cast<double>(n - 1)));
  push(static_cast<double>(g.component_count(scratch.analysis)));
  push(safe_log1p(static_cast<double>(g.depth_from_inputs(scratch.analysis))));

  // [31..33] spectral sketch.
  g.spectral_sketch(std::span<double>(scratch.spectrum, 3),
                    NetGraph::kSpectralSketchIterations, scratch.analysis);
  for (const double eigenvalue : scratch.spectrum) push(safe_log1p(eigenvalue));

  // [34..39] trigger-motif counts.
  double wide_eq_const = 0.0;   // equality ops with a constant operand >= 8 bits
  double mux_count = 0.0;       // muxes in the design
  double mux_rare_select = 0.0; // muxes whose first predecessor has fanout 1
  double wide_regs = 0.0;       // registers of width >= 16 (bomb counters)
  double const_nodes = 0.0;
  double reg_feedback = 0.0;    // registers feeding themselves (counters/FSMs)
  for (NetGraph::NodeId id = 0; id < n; ++id) {
    const Node& node = g.node(id);
    switch (node.type) {
      case NodeType::Op: {
        if (op_bucket(node.label) == 0) {
          for (const NetGraph::NodeId pred : g.predecessors(id)) {
            if (g.node(pred).type == NodeType::Const && g.node(pred).width >= 8) {
              wide_eq_const += 1.0;
              break;
            }
          }
        }
        break;
      }
      case NodeType::Mux: {
        mux_count += 1.0;
        const auto& preds = g.predecessors(id);
        if (!preds.empty() && g.out_degree(preds.front()) == 1) {
          mux_rare_select += 1.0;
        }
        break;
      }
      case NodeType::Reg: {
        if (node.width >= 16) wide_regs += 1.0;
        for (const NetGraph::NodeId succ : g.successors(id)) {
          if (succ == id) {
            reg_feedback += 1.0;
            break;
          }
        }
        break;
      }
      case NodeType::Const:
        const_nodes += 1.0;
        break;
      default:
        break;
    }
  }
  const double denom = n == 0 ? 1.0 : static_cast<double>(n);
  push(wide_eq_const / denom);
  push(mux_count / denom);
  push(mux_rare_select / denom);
  push(wide_regs / denom);
  push(const_nodes / denom);
  push(reg_feedback / denom);

  if (next != kGraphFeatureDim) {
    throw std::logic_error("graph_features: dimension drift");
  }
}

const std::vector<std::string>& graph_feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < kNodeTypeCount; ++i) {
      out.push_back(std::string("type_frac_") + to_string(static_cast<NodeType>(i)));
    }
    const char* buckets[] = {"eq", "rel", "xor", "and", "or",
                             "addsub", "muldiv", "shift", "not", "other"};
    for (const char* b : buckets) out.push_back(std::string("op_frac_") + b);
    out.insert(out.end(), {"mean_in_degree", "mean_out_degree", "log_max_in_degree",
                           "log_max_out_degree", "out_degree_stddev",
                           "single_fanout_frac"});
    out.insert(out.end(), {"log_nodes", "log_edges", "density", "components",
                           "log_depth"});
    out.insert(out.end(), {"log_eig1", "log_eig2", "log_eig3"});
    out.insert(out.end(), {"wide_eq_const_frac", "mux_frac", "mux_rare_select_frac",
                           "wide_reg_frac", "const_frac", "reg_feedback_frac"});
    return out;
  }();
  return names;
}

}  // namespace noodle::graph
