#include "graph/features.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.h"

namespace noodle::graph {

namespace {

double safe_log1p(double x) { return std::log1p(std::max(0.0, x)); }

/// Operator buckets tracked by the embedding; anything else lands in
/// "other". Comparators and XORs are listed first because Trojan triggers
/// and leak payloads disproportionately use them.
int op_bucket(const std::string& op) {
  if (op == "==" || op == "!=" || op == "===" || op == "!==") return 0;  // equality
  if (op == "<" || op == "<=" || op == ">" || op == ">=") return 1;      // relational
  if (op == "^" || op == "~^" || op == "^~") return 2;                   // xor
  if (op == "&" || op == "~&") return 3;                                 // and
  if (op == "|" || op == "~|") return 4;                                 // or
  if (op == "+" || op == "-") return 5;                                  // add/sub
  if (op == "*" || op == "/" || op == "%") return 6;                     // mul/div
  if (op == "<<" || op == ">>" || op == "<<<" || op == ">>>") return 7;  // shift
  if (op == "!" || op == "~") return 8;                                  // not
  return 9;                                                              // other
}

constexpr std::size_t kOpBuckets = 10;

}  // namespace

std::vector<double> graph_features(const NetGraph& g) {
  std::vector<double> features;
  features.reserve(kGraphFeatureDim);

  const std::size_t n = g.node_count();
  const std::size_t e = g.edge_count();

  // [0..9] node-type histogram.
  const std::vector<double> type_hist = g.type_histogram();
  features.insert(features.end(), type_hist.begin(), type_hist.end());

  // [10..19] operator-bucket histogram over Op nodes (normalized by node
  // count so absolute operator density is preserved).
  std::vector<double> op_hist(kOpBuckets, 0.0);
  for (NetGraph::NodeId id = 0; id < n; ++id) {
    const Node& node = g.node(id);
    if (node.type == NodeType::Op) {
      op_hist[static_cast<std::size_t>(op_bucket(node.label))] += 1.0;
    }
  }
  if (n > 0) {
    for (double& bin : op_hist) bin /= static_cast<double>(n);
  }
  features.insert(features.end(), op_hist.begin(), op_hist.end());

  // [20..25] degree statistics.
  std::vector<double> in_degrees, out_degrees;
  in_degrees.reserve(n);
  out_degrees.reserve(n);
  for (NetGraph::NodeId id = 0; id < n; ++id) {
    in_degrees.push_back(static_cast<double>(g.in_degree(id)));
    out_degrees.push_back(static_cast<double>(g.out_degree(id)));
  }
  features.push_back(n == 0 ? 0.0 : util::mean(in_degrees));
  features.push_back(n == 0 ? 0.0 : util::mean(out_degrees));
  features.push_back(n == 0 ? 0.0 : safe_log1p(util::max_value(in_degrees)));
  features.push_back(n == 0 ? 0.0 : safe_log1p(util::max_value(out_degrees)));
  features.push_back(n == 0 ? 0.0 : util::stddev(out_degrees));
  // Fraction of single-fanout nets: Trojan trigger wires typically feed
  // exactly one mux, inflating this tail.
  double single_fanout = 0.0;
  for (const double d : out_degrees) {
    if (d == 1.0) single_fanout += 1.0;
  }
  features.push_back(n == 0 ? 0.0 : single_fanout / static_cast<double>(n));

  // [26..30] global structure.
  features.push_back(safe_log1p(static_cast<double>(n)));
  features.push_back(safe_log1p(static_cast<double>(e)));
  features.push_back(n <= 1 ? 0.0
                            : static_cast<double>(e) /
                                  (static_cast<double>(n) * static_cast<double>(n - 1)));
  features.push_back(static_cast<double>(g.component_count()));
  features.push_back(safe_log1p(static_cast<double>(g.depth_from_inputs())));

  // [31..33] spectral sketch.
  const std::vector<double> spectrum = g.spectral_sketch(3);
  for (const double eigenvalue : spectrum) features.push_back(safe_log1p(eigenvalue));

  // [34..39] trigger-motif counts.
  double wide_eq_const = 0.0;   // equality ops with a constant operand >= 8 bits
  double mux_count = 0.0;       // muxes in the design
  double mux_rare_select = 0.0; // muxes whose first predecessor has fanout 1
  double wide_regs = 0.0;       // registers of width >= 16 (bomb counters)
  double const_nodes = 0.0;
  double reg_feedback = 0.0;    // registers feeding themselves (counters/FSMs)
  for (NetGraph::NodeId id = 0; id < n; ++id) {
    const Node& node = g.node(id);
    switch (node.type) {
      case NodeType::Op: {
        if (op_bucket(node.label) == 0) {
          for (const NetGraph::NodeId pred : g.predecessors(id)) {
            if (g.node(pred).type == NodeType::Const && g.node(pred).width >= 8) {
              wide_eq_const += 1.0;
              break;
            }
          }
        }
        break;
      }
      case NodeType::Mux: {
        mux_count += 1.0;
        const auto& preds = g.predecessors(id);
        if (!preds.empty() && g.out_degree(preds.front()) == 1) {
          mux_rare_select += 1.0;
        }
        break;
      }
      case NodeType::Reg: {
        if (node.width >= 16) wide_regs += 1.0;
        for (const NetGraph::NodeId succ : g.successors(id)) {
          if (succ == id) {
            reg_feedback += 1.0;
            break;
          }
        }
        break;
      }
      case NodeType::Const:
        const_nodes += 1.0;
        break;
      default:
        break;
    }
  }
  const double denom = n == 0 ? 1.0 : static_cast<double>(n);
  features.push_back(wide_eq_const / denom);
  features.push_back(mux_count / denom);
  features.push_back(mux_rare_select / denom);
  features.push_back(wide_regs / denom);
  features.push_back(const_nodes / denom);
  features.push_back(reg_feedback / denom);

  if (features.size() != kGraphFeatureDim) {
    throw std::logic_error("graph_features: dimension drift");
  }
  return features;
}

const std::vector<std::string>& graph_feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < kNodeTypeCount; ++i) {
      out.push_back(std::string("type_frac_") + to_string(static_cast<NodeType>(i)));
    }
    const char* buckets[] = {"eq", "rel", "xor", "and", "or",
                             "addsub", "muldiv", "shift", "not", "other"};
    for (const char* b : buckets) out.push_back(std::string("op_frac_") + b);
    out.insert(out.end(), {"mean_in_degree", "mean_out_degree", "log_max_in_degree",
                           "log_max_out_degree", "out_degree_stddev",
                           "single_fanout_frac"});
    out.insert(out.end(), {"log_nodes", "log_edges", "density", "components",
                           "log_depth"});
    out.insert(out.end(), {"log_eig1", "log_eig2", "log_eig3"});
    out.insert(out.end(), {"wide_eq_const_frac", "mux_frac", "mux_rare_select_frac",
                           "wide_reg_frac", "const_frac", "reg_feedback_frac"});
    return out;
  }();
  return names;
}

}  // namespace noodle::graph
