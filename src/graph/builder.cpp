#include "graph/builder.h"

#include <map>
#include <string>

namespace noodle::graph {

using verilog::AlwaysBlock;
using verilog::EdgeKind;
using verilog::Expr;
using verilog::ExprKind;
using verilog::Module;
using verilog::NetKind;
using verilog::PortDir;
using verilog::Stmt;
using verilog::StmtKind;

namespace {

class Lowering {
 public:
  explicit Lowering(const Module& m) : module_(m) {}

  NetGraph run() {
    declare_signals();
    for (const auto& net : module_.nets) {
      if (net.init) {
        const NetGraph::NodeId value = lower_expr(*net.init);
        graph_.add_edge(value, signal(net.name));
      }
    }
    for (const auto& assign : module_.assigns) {
      const NetGraph::NodeId value = lower_expr(*assign.rhs);
      graph_.add_edge(value, lhs_target(*assign.lhs));
    }
    for (const auto& block : module_.always_blocks) lower_always(block);
    for (const auto& inst : module_.instances) lower_instance(inst);
    return std::move(graph_);
  }

 private:
  void declare_signals() {
    for (const auto& port : module_.ports) {
      NodeType type = NodeType::Wire;
      switch (port.dir) {
        case PortDir::Input: type = NodeType::Input; break;
        case PortDir::Output: type = NodeType::Output; break;
        case PortDir::Inout: type = NodeType::Wire; break;
      }
      const int width = port.range ? port.range->width() : 1;
      signals_[port.name] = graph_.add_node(type, port.name, width);
    }
    for (const auto& net : module_.nets) {
      if (signals_.count(net.name) != 0) continue;  // output reg: port wins
      const NodeType type = net.kind == NetKind::Wire ? NodeType::Wire : NodeType::Reg;
      const int width = net.range ? net.range->width() : (net.kind == NetKind::Integer ? 32 : 1);
      signals_[net.name] = graph_.add_node(type, net.name, width);
    }
  }

  NetGraph::NodeId signal(const std::string& name) {
    const auto it = signals_.find(name);
    if (it != signals_.end()) return it->second;
    // Implicitly declared net (legal Verilog for scalar wires).
    const NetGraph::NodeId id = graph_.add_node(NodeType::Wire, name, 1);
    signals_[name] = id;
    return id;
  }

  /// The signal node assigned by an lvalue expression (the base identifier
  /// of selects/concats; concat targets fan in to every member).
  NetGraph::NodeId lhs_target(const Expr& lhs) {
    switch (lhs.kind) {
      case ExprKind::Identifier:
        return signal(lhs.name);
      case ExprKind::Index:
      case ExprKind::Range:
        return lhs_target(*lhs.operands[0]);
      case ExprKind::Concat: {
        // Represent a concat target as a Concat node feeding each member.
        const NetGraph::NodeId hub = graph_.add_node(NodeType::Concat, "{lhs}");
        for (const auto& part : lhs.operands) {
          graph_.add_edge(hub, lhs_target(*part));
        }
        return hub;
      }
      default:
        return signal("__bad_lhs__");
    }
  }

  NetGraph::NodeId lower_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Number:
        return graph_.add_node(NodeType::Const, std::to_string(e.value),
                               e.width > 0 ? e.width : 32);
      case ExprKind::Identifier:
        return signal(e.name);
      case ExprKind::Unary: {
        const NetGraph::NodeId op = graph_.add_node(NodeType::Op, e.name);
        graph_.add_edge(lower_expr(*e.operands[0]), op);
        return op;
      }
      case ExprKind::Binary: {
        const NetGraph::NodeId op = graph_.add_node(NodeType::Op, e.name);
        graph_.add_edge(lower_expr(*e.operands[0]), op);
        graph_.add_edge(lower_expr(*e.operands[1]), op);
        return op;
      }
      case ExprKind::Ternary: {
        const NetGraph::NodeId mux = graph_.add_node(NodeType::Mux, "?:");
        graph_.add_edge(lower_expr(*e.operands[0]), mux);
        graph_.add_edge(lower_expr(*e.operands[1]), mux);
        graph_.add_edge(lower_expr(*e.operands[2]), mux);
        return mux;
      }
      case ExprKind::Index:
      case ExprKind::Range: {
        const NetGraph::NodeId select = graph_.add_node(NodeType::Select, "[]");
        graph_.add_edge(lower_expr(*e.operands[0]), select);
        // Dynamic indices contribute data flow; constant bounds do not.
        for (std::size_t i = 1; i < e.operands.size(); ++i) {
          if (e.operands[i]->kind != ExprKind::Number) {
            graph_.add_edge(lower_expr(*e.operands[i]), select);
          }
        }
        return select;
      }
      case ExprKind::Concat:
      case ExprKind::Replicate: {
        const NetGraph::NodeId concat = graph_.add_node(NodeType::Concat, "{}");
        for (const auto& part : e.operands) {
          graph_.add_edge(lower_expr(*part), concat);
        }
        return concat;
      }
    }
    return signal("__bad_expr__");
  }

  void lower_stmt(const Stmt& s, std::vector<NetGraph::NodeId>& conditions,
                  const std::string& clock) {
    switch (s.kind) {
      case StmtKind::Block:
        for (const auto& child : s.body) lower_stmt(*child, conditions, clock);
        break;
      case StmtKind::If: {
        const NetGraph::NodeId cond = lower_expr(*s.cond);
        conditions.push_back(cond);
        lower_stmt(*s.then_branch, conditions, clock);
        if (s.else_branch) lower_stmt(*s.else_branch, conditions, clock);
        conditions.pop_back();
        break;
      }
      case StmtKind::Case: {
        const NetGraph::NodeId subject = lower_expr(*s.cond);
        conditions.push_back(subject);
        for (const auto& item : s.case_items) {
          if (item.body) lower_stmt(*item.body, conditions, clock);
        }
        conditions.pop_back();
        break;
      }
      case StmtKind::For: {
        // Loop bounds are elaboration-time; only the body carries data flow.
        if (s.for_init) lower_stmt(*s.for_init, conditions, clock);
        if (s.for_step) lower_stmt(*s.for_step, conditions, clock);
        for (const auto& child : s.body) lower_stmt(*child, conditions, clock);
        break;
      }
      case StmtKind::BlockingAssign:
      case StmtKind::NonBlockingAssign: {
        const NetGraph::NodeId target = lhs_target(*s.lhs);
        graph_.add_edge(lower_expr(*s.rhs), target);
        for (const NetGraph::NodeId cond : conditions) {
          graph_.add_edge(cond, target);  // control dependency (mux select)
        }
        if (!clock.empty()) {
          graph_.add_edge(signal(clock), target);  // sequential skeleton
        }
        break;
      }
      case StmtKind::Null:
        break;
    }
  }

  void lower_always(const AlwaysBlock& block) {
    if (!block.body) return;
    std::string clock;
    for (const auto& item : block.sensitivity) {
      if (item.edge != EdgeKind::None) {
        clock = item.signal;
        break;
      }
    }
    std::vector<NetGraph::NodeId> conditions;
    lower_stmt(*block.body, conditions, clock);
  }

  void lower_instance(const verilog::Instance& inst) {
    const NetGraph::NodeId node =
        graph_.add_node(NodeType::Instance, inst.module_name);
    // Without the instantiated module's interface, use the Trust-Hub
    // convention: connections are bidirectionally coupled through the
    // instance so the DFG stays connected.
    for (const auto& conn : inst.connections) {
      if (!conn.actual) continue;
      const NetGraph::NodeId actual = lower_expr(*conn.actual);
      graph_.add_edge(actual, node);
      graph_.add_edge(node, actual);
    }
  }

  const Module& module_;
  NetGraph graph_;
  std::map<std::string, NetGraph::NodeId> signals_;
};

}  // namespace

NetGraph build_netgraph(const verilog::Module& m) { return Lowering(m).run(); }

}  // namespace noodle::graph
