#include "graph/builder.h"

#include <charconv>
#include <string>

#include "verilog/symbols.h"

namespace noodle::graph {

using verilog::EdgeKind;
using verilog::ExprKind;
using verilog::NetKind;
using verilog::PortDir;
using verilog::StmtKind;

namespace {

// Representation adapters — the only places the two AST forms differ.

util::Symbol name_symbol(util::SymbolTable& symbols, const std::string& name) {
  return symbols.intern(name);
}
util::Symbol name_symbol(util::SymbolTable&, util::Symbol name) { return name; }

util::Symbol op_symbol(util::SymbolTable& symbols, const verilog::Expr& e) {
  return symbols.intern(e.name);
}
util::Symbol op_symbol(util::SymbolTable&, const verilog::fast::Expr& e) {
  return verilog::punct_symbol(e.op);
}

/// One lowering for both AST forms; ModuleT is verilog::Module or
/// verilog::fast::Module (field names deliberately coincide).
template <typename ModuleT>
class Lowering {
 public:
  Lowering(const ModuleT& m, NetGraph& graph, BuildScratch& scratch)
      : module_(m), graph_(graph), scratch_(scratch), symbols_(graph.symbols()) {}

  void run() {
    declare_signals();
    for (const auto& net : module_.nets) {
      if (net.init) {
        const NetGraph::NodeId value = lower_expr(*net.init);
        graph_.add_edge(value, signal(name_symbol(symbols_, net.name)));
      }
    }
    for (const auto& assign : module_.assigns) {
      const NetGraph::NodeId value = lower_expr(*assign.rhs);
      graph_.add_edge(value, lhs_target(*assign.lhs));
    }
    for (const auto& block : module_.always_blocks) lower_always(block);
    for (const auto& inst : module_.instances) lower_instance(inst);
  }

 private:
  void declare_signals() {
    for (const auto& port : module_.ports) {
      NodeType type = NodeType::Wire;
      switch (port.dir) {
        case PortDir::Input: type = NodeType::Input; break;
        case PortDir::Output: type = NodeType::Output; break;
        case PortDir::Inout: type = NodeType::Wire; break;
      }
      const int width = port.range ? port.range->width() : 1;
      const util::Symbol name = name_symbol(symbols_, port.name);
      scratch_.signals.put(name, graph_.add_node(type, name, width));
    }
    for (const auto& net : module_.nets) {
      const util::Symbol name = name_symbol(symbols_, net.name);
      if (scratch_.signals.find(name) != nullptr) continue;  // output reg: port wins
      const NodeType type = net.kind == NetKind::Wire ? NodeType::Wire : NodeType::Reg;
      const int width = net.range ? net.range->width() : (net.kind == NetKind::Integer ? 32 : 1);
      scratch_.signals.put(name, graph_.add_node(type, name, width));
    }
  }

  NetGraph::NodeId signal(util::Symbol name) {
    if (const NetGraph::NodeId* id = scratch_.signals.find(name)) return *id;
    // Implicitly declared net (legal Verilog for scalar wires).
    const NetGraph::NodeId id = graph_.add_node(NodeType::Wire, name, 1);
    scratch_.signals.put(name, id);
    return id;
  }

  util::Symbol const_symbol(std::uint64_t value) {
    // Decimal spelling without a heap round trip; steady state interning
    // of an already-seen constant allocates nothing.
    char buffer[24];
    const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
    return symbols_.intern(std::string_view(buffer, static_cast<std::size_t>(end - buffer)));
  }

  /// The signal node assigned by an lvalue expression (the base identifier
  /// of selects/concats; concat targets fan in to every member).
  template <typename E>
  NetGraph::NodeId lhs_target(const E& lhs) {
    switch (lhs.kind) {
      case ExprKind::Identifier:
        return signal(name_symbol(symbols_, lhs.name));
      case ExprKind::Index:
      case ExprKind::Range:
        return lhs_target(*lhs.operands[0]);
      case ExprKind::Concat: {
        // Represent a concat target as a Concat node feeding each member.
        const NetGraph::NodeId hub =
            graph_.add_node(NodeType::Concat, verilog::kSymLhsConcat);
        for (const auto& part : lhs.operands) {
          graph_.add_edge(hub, lhs_target(*part));
        }
        return hub;
      }
      default:
        return signal(verilog::kSymBadLhs);
    }
  }

  template <typename E>
  NetGraph::NodeId lower_expr(const E& e) {
    switch (e.kind) {
      case ExprKind::Number:
        return graph_.add_node(NodeType::Const, const_symbol(e.value),
                               e.width > 0 ? e.width : 32);
      case ExprKind::Identifier:
        return signal(name_symbol(symbols_, e.name));
      case ExprKind::Unary: {
        const NetGraph::NodeId op = graph_.add_node(NodeType::Op, op_symbol(symbols_, e));
        graph_.add_edge(lower_expr(*e.operands[0]), op);
        return op;
      }
      case ExprKind::Binary: {
        const NetGraph::NodeId op = graph_.add_node(NodeType::Op, op_symbol(symbols_, e));
        graph_.add_edge(lower_expr(*e.operands[0]), op);
        graph_.add_edge(lower_expr(*e.operands[1]), op);
        return op;
      }
      case ExprKind::Ternary: {
        const NetGraph::NodeId mux = graph_.add_node(NodeType::Mux, verilog::kSymTernaryMux);
        graph_.add_edge(lower_expr(*e.operands[0]), mux);
        graph_.add_edge(lower_expr(*e.operands[1]), mux);
        graph_.add_edge(lower_expr(*e.operands[2]), mux);
        return mux;
      }
      case ExprKind::Index:
      case ExprKind::Range: {
        const NetGraph::NodeId select = graph_.add_node(NodeType::Select, verilog::kSymSelect);
        graph_.add_edge(lower_expr(*e.operands[0]), select);
        // Dynamic indices contribute data flow; constant bounds do not.
        for (std::size_t i = 1; i < e.operands.size(); ++i) {
          if (e.operands[i]->kind != ExprKind::Number) {
            graph_.add_edge(lower_expr(*e.operands[i]), select);
          }
        }
        return select;
      }
      case ExprKind::Concat:
      case ExprKind::Replicate: {
        const NetGraph::NodeId concat = graph_.add_node(NodeType::Concat, verilog::kSymConcat);
        for (const auto& part : e.operands) {
          graph_.add_edge(lower_expr(*part), concat);
        }
        return concat;
      }
    }
    return signal(verilog::kSymBadExpr);
  }

  template <typename S>
  void lower_stmt(const S& s, util::Symbol clock) {
    switch (s.kind) {
      case StmtKind::Block:
        for (const auto& child : s.body) lower_stmt(*child, clock);
        break;
      case StmtKind::If: {
        const NetGraph::NodeId cond = lower_expr(*s.cond);
        scratch_.conditions.push_back(cond);
        lower_stmt(*s.then_branch, clock);
        if (s.else_branch) lower_stmt(*s.else_branch, clock);
        scratch_.conditions.pop_back();
        break;
      }
      case StmtKind::Case: {
        const NetGraph::NodeId subject = lower_expr(*s.cond);
        scratch_.conditions.push_back(subject);
        for (const auto& item : s.case_items) {
          if (item.body) lower_stmt(*item.body, clock);
        }
        scratch_.conditions.pop_back();
        break;
      }
      case StmtKind::For: {
        // Loop bounds are elaboration-time; only the body carries data flow.
        if (s.for_init) lower_stmt(*s.for_init, clock);
        if (s.for_step) lower_stmt(*s.for_step, clock);
        for (const auto& child : s.body) lower_stmt(*child, clock);
        break;
      }
      case StmtKind::BlockingAssign:
      case StmtKind::NonBlockingAssign: {
        const NetGraph::NodeId target = lhs_target(*s.lhs);
        graph_.add_edge(lower_expr(*s.rhs), target);
        for (const NetGraph::NodeId cond : scratch_.conditions) {
          graph_.add_edge(cond, target);  // control dependency (mux select)
        }
        if (clock != util::kNoSymbol) {
          graph_.add_edge(signal(clock), target);  // sequential skeleton
        }
        break;
      }
      case StmtKind::Null:
        break;
    }
  }

  template <typename B>
  void lower_always(const B& block) {
    if (!block.body) return;
    util::Symbol clock = util::kNoSymbol;
    for (const auto& item : block.sensitivity) {
      if (item.edge != EdgeKind::None) {
        clock = name_symbol(symbols_, item.signal);
        break;
      }
    }
    scratch_.conditions.clear();
    lower_stmt(*block.body, clock);
  }

  template <typename I>
  void lower_instance(const I& inst) {
    const NetGraph::NodeId node =
        graph_.add_node(NodeType::Instance, name_symbol(symbols_, inst.module_name));
    // Without the instantiated module's interface, use the Trust-Hub
    // convention: connections are bidirectionally coupled through the
    // instance so the DFG stays connected.
    for (const auto& conn : inst.connections) {
      if (!conn.actual) continue;
      const NetGraph::NodeId actual = lower_expr(*conn.actual);
      graph_.add_edge(actual, node);
      graph_.add_edge(node, actual);
    }
  }

  const ModuleT& module_;
  NetGraph& graph_;
  BuildScratch& scratch_;
  util::SymbolTable& symbols_;
};

}  // namespace

NetGraph build_netgraph(const verilog::Module& m) {
  NetGraph graph;
  BuildScratch scratch;
  Lowering<verilog::Module>(m, graph, scratch).run();
  return graph;
}

void build_netgraph(const verilog::fast::Module& m, NetGraph& graph,
                    BuildScratch& scratch) {
  graph.clear();
  scratch.signals.clear();
  scratch.conditions.clear();
  Lowering<verilog::fast::Module>(m, graph, scratch).run();
}

}  // namespace noodle::graph
