#pragma once
// Typed data-flow graph (DFG) lowered from a Verilog module — the graph
// modality of NOODLE, mirroring what hw2vec extracts from RTL. Nodes are
// signals, constants, and operator occurrences; directed edges follow data
// flow (operand -> operator -> assigned signal) plus control edges from
// branch conditions to the signals assigned under them.

#include <cstddef>
#include <string>
#include <vector>

namespace noodle::graph {

enum class NodeType {
  Input,     // module input port
  Output,    // module output port
  Wire,      // internal wire
  Reg,       // internal register
  Const,     // literal constant occurrence
  Op,        // unary/binary operator occurrence (label = spelling)
  Mux,       // ternary / conditional
  Concat,    // concatenation / replication
  Select,    // bit/part select
  Instance,  // submodule instance
};

const char* to_string(NodeType type) noexcept;

/// Number of distinct NodeType values (histogram size).
inline constexpr std::size_t kNodeTypeCount = 10;

struct Node {
  NodeType type = NodeType::Wire;
  std::string label;  // signal name, operator spelling, or constant text
  int width = 1;      // bit width where known (signals, constants)
};

/// Directed multigraph with stable integer node ids.
class NetGraph {
 public:
  using NodeId = std::size_t;

  NodeId add_node(NodeType type, std::string label, int width = 1);

  /// Adds a directed edge src -> dst. Parallel edges are allowed (a signal
  /// can feed the same operator twice); self-loops are allowed (feedback
  /// registers). Throws std::out_of_range on invalid ids.
  void add_edge(NodeId src, NodeId dst);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  const Node& node(NodeId id) const { return nodes_.at(id); }
  const std::vector<NodeId>& successors(NodeId id) const { return out_.at(id); }
  const std::vector<NodeId>& predecessors(NodeId id) const { return in_.at(id); }

  std::size_t out_degree(NodeId id) const { return out_.at(id).size(); }
  std::size_t in_degree(NodeId id) const { return in_.at(id).size(); }

  /// All node ids of a given type.
  std::vector<NodeId> nodes_of_type(NodeType type) const;

  // --- analyses ---

  /// Number of weakly connected components.
  std::size_t component_count() const;

  /// Longest shortest-path distance (in edges) from any Input node,
  /// following edge direction; a proxy for logic depth. 0 for graphs
  /// without inputs.
  std::size_t depth_from_inputs() const;

  /// Histogram of node types, normalized to sum 1 (all zeros when empty).
  std::vector<double> type_histogram() const;

  /// Largest eigenvalue estimates of the symmetrized adjacency matrix via
  /// deflated power iteration; a cheap spectral signature of the topology.
  std::vector<double> spectral_sketch(std::size_t count, std::size_t iterations = 50) const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::size_t edge_count_ = 0;
};

}  // namespace noodle::graph
