#pragma once
// Typed data-flow graph (DFG) lowered from a Verilog module — the graph
// modality of NOODLE, mirroring what hw2vec extracts from RTL. Nodes are
// signals, constants, and operator occurrences; directed edges follow data
// flow (operand -> operator -> assigned signal) plus control edges from
// branch conditions to the signals assigned under them.
//
// Node labels are interned symbols (util::SymbolTable) rather than owned
// strings: operator labels land on the fixed ids of the shared verilog
// vocabulary (verilog/symbols.h), so feature extraction classifies them
// with a table lookup, and a graph built inside a feat::FeaturizeWorkspace
// shares the workspace's intern pool. label(id) resolves the spelling for
// printers and debug output. clear() keeps all node/edge capacity, which is
// what makes a reused graph allocation-free in steady state.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "util/intern.h"

namespace noodle::graph {

enum class NodeType {
  Input,     // module input port
  Output,    // module output port
  Wire,      // internal wire
  Reg,       // internal register
  Const,     // literal constant occurrence
  Op,        // unary/binary operator occurrence (label = spelling)
  Mux,       // ternary / conditional
  Concat,    // concatenation / replication
  Select,    // bit/part select
  Instance,  // submodule instance
};

const char* to_string(NodeType type) noexcept;

/// Number of distinct NodeType values (histogram size).
inline constexpr std::size_t kNodeTypeCount = 10;

/// Bit for `type` in a NodeType bitmask (find_cycle_node's preference set).
constexpr std::uint32_t type_mask(NodeType type) noexcept {
  return 1u << static_cast<std::uint32_t>(type);
}

struct Node {
  NodeType type = NodeType::Wire;
  util::Symbol label = util::kNoSymbol;  // resolve via NetGraph::label()
  int width = 1;                         // bit width where known
};

/// Reusable scratch for the graph analyses (BFS frontiers, visit flags,
/// power-iteration vectors). Grow-only; one per thread, like the graphs it
/// serves.
struct AnalysisScratch {
  std::vector<std::uint8_t> seen;
  std::vector<std::size_t> queue;  // BFS ring buffer (head index, no pops)
  std::vector<std::size_t> dist;
  std::vector<double> vec_a;         // blocked-iteration block V (n x width)
  std::vector<double> vec_b;         // blocked-iteration block A·V
  std::vector<double> sketch_small;  // norms / Gram / Cholesky small scratch
  // CSR image of the symmetrized adjacency A + Aᵀ, materialized once per
  // spectral_sketch call: row i concatenates successors(i) then
  // predecessors(i), so every SpMV is one contiguous sweep instead of a
  // scatter over out_'s vector-of-vectors. Column indices are u32 — the
  // SpMV gathers are bound on index traffic, and module-scale netlists are
  // nowhere near 2^32 nodes (enforced with a range check at build time).
  std::vector<std::size_t> csr_offsets;   // size n + 1
  std::vector<std::uint32_t> csr_adj;     // size 2 · edge_count
};

/// The calling thread's shared AnalysisScratch (created on first use,
/// reused for the thread's lifetime). Backs the allocating convenience
/// overloads of the graph analyses, so casual callers get the same
/// allocation-free steady state as the workspace-threaded hot path.
AnalysisScratch& thread_analysis_scratch() noexcept;

/// Directed multigraph with stable integer node ids.
class NetGraph {
 public:
  using NodeId = std::size_t;

  /// A fresh graph owning a new intern pool seeded with the verilog
  /// vocabulary (so operator labels get their fixed ids).
  NetGraph();

  /// A graph adopting an existing pool (e.g. a FeaturizeWorkspace's). The
  /// pool must already contain the verilog vocabulary at the fixed ids —
  /// ParserWorkspace and the default constructor both guarantee that.
  explicit NetGraph(std::shared_ptr<util::SymbolTable> symbols);

  NodeId add_node(NodeType type, util::Symbol label, int width = 1);
  /// Interns `label` into this graph's pool first.
  NodeId add_node(NodeType type, std::string_view label, int width = 1);

  /// Adds a directed edge src -> dst. Parallel edges are allowed (a signal
  /// can feed the same operator twice); self-loops are allowed (feedback
  /// registers). Throws std::out_of_range on invalid ids.
  void add_edge(NodeId src, NodeId dst);

  /// Removes all nodes and edges but keeps every capacity (adjacency lists
  /// included), so rebuilding a graph of similar size allocates nothing.
  /// The intern pool is untouched — symbols are stable for the pool's life.
  void clear() noexcept;

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  const Node& node(NodeId id) const { return nodes_.at(id); }
  /// The spelling behind a node's interned label.
  std::string_view label(NodeId id) const { return symbols_->text(nodes_.at(id).label); }
  const util::SymbolTable& symbols() const noexcept { return *symbols_; }
  util::SymbolTable& symbols() noexcept { return *symbols_; }
  const std::shared_ptr<util::SymbolTable>& symbols_handle() const noexcept {
    return symbols_;
  }

  const std::vector<NodeId>& successors(NodeId id) const {
    check_id(id);
    return out_[id];
  }
  const std::vector<NodeId>& predecessors(NodeId id) const {
    check_id(id);
    return in_[id];
  }

  std::size_t out_degree(NodeId id) const { return successors(id).size(); }
  std::size_t in_degree(NodeId id) const { return predecessors(id).size(); }

  /// All node ids of a given type.
  std::vector<NodeId> nodes_of_type(NodeType type) const;

  // --- analyses ---
  // Each analysis has a convenience form and a scratch-taking form; the
  // former delegates to the latter through thread_analysis_scratch(), so
  // results are identical by construction and BOTH forms are
  // allocation-free in steady state.

  /// Number of weakly connected components.
  std::size_t component_count() const;
  std::size_t component_count(AnalysisScratch& scratch) const;

  /// Longest shortest-path distance (in edges) from any Input node,
  /// following edge direction; a proxy for logic depth. 0 for graphs
  /// without inputs.
  std::size_t depth_from_inputs() const;
  std::size_t depth_from_inputs(AnalysisScratch& scratch) const;

  /// Histogram of node types, normalized to sum 1 (all zeros when empty).
  std::vector<double> type_histogram() const;
  /// In-place form: writes the histogram into `out` (size kNodeTypeCount).
  void type_histogram(std::span<double> out) const;

  /// Default pass budget for spectral_sketch. 24 blocked passes put the
  /// Ritz values ~30x closer to a dense eigensolve than the v1 deflated
  /// power iteration managed in 50 (asserted in tests/test_graph.cpp), so
  /// the budget buys strictly better estimates at under half the sweeps.
  static constexpr std::size_t kSpectralSketchIterations = 24;

  /// Largest eigenvalue magnitudes of the symmetrized adjacency A + Aᵀ — a
  /// cheap spectral signature of the topology. Computed by blocked subspace
  /// iteration over a CSR adjacency built once per call: one fused CSR pass
  /// per iteration drives a fixed 4-wide block, with periodic Cholesky-QR
  /// orthonormalization and a final Rayleigh-Ritz projection (v2 sketch,
  /// feat::kFeatureVersion 2). `iterations` is a cap: the loop exits early
  /// once every column-norm estimate is stationary to a relative 1e-13 for
  /// two consecutive passes (well-separated spectra exit within a handful
  /// of passes; near-degenerate ones run the full budget).
  std::vector<double> spectral_sketch(
      std::size_t count, std::size_t iterations = kSpectralSketchIterations) const;
  /// In-place form: writes `out.size()` eigenvalues.
  void spectral_sketch(std::span<double> out, std::size_t iterations,
                       AnalysisScratch& scratch) const;

  /// Sentinel for "no cycle" from find_cycle_node.
  static constexpr NodeId kNoNode = static_cast<NodeId>(-1);

  /// Searches for a directed cycle that avoids every node whose byte in
  /// `excluded` is nonzero (`excluded` may be empty or node_count() long)
  /// and returns one node on that cycle, preferring a node whose type bit
  /// is set in `preferred_types` (build the mask with type_mask). Returns
  /// kNoNode when the surviving subgraph is acyclic. Used by the lint layer
  /// to report combinational loops against a signal rather than an
  /// operator occurrence.
  NodeId find_cycle_node(std::span<const std::uint8_t> excluded,
                         std::uint32_t preferred_types) const;
  NodeId find_cycle_node(std::span<const std::uint8_t> excluded,
                         std::uint32_t preferred_types,
                         AnalysisScratch& scratch) const;

 private:
  void check_id(NodeId id) const;

  std::shared_ptr<util::SymbolTable> symbols_;
  std::vector<Node> nodes_;
  // Sized to the high-water node count; entries past nodes_.size() are kept
  // empty so clear() can preserve inner-vector capacity.
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::size_t edge_count_ = 0;
};

}  // namespace noodle::graph
