#include "graph/netgraph.h"

#include <cmath>
#include <queue>
#include <stdexcept>

namespace noodle::graph {

const char* to_string(NodeType type) noexcept {
  switch (type) {
    case NodeType::Input: return "input";
    case NodeType::Output: return "output";
    case NodeType::Wire: return "wire";
    case NodeType::Reg: return "reg";
    case NodeType::Const: return "const";
    case NodeType::Op: return "op";
    case NodeType::Mux: return "mux";
    case NodeType::Concat: return "concat";
    case NodeType::Select: return "select";
    case NodeType::Instance: return "instance";
  }
  return "unknown";
}

NetGraph::NodeId NetGraph::add_node(NodeType type, std::string label, int width) {
  nodes_.push_back(Node{type, std::move(label), width});
  out_.emplace_back();
  in_.emplace_back();
  return nodes_.size() - 1;
}

void NetGraph::add_edge(NodeId src, NodeId dst) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::out_of_range("NetGraph::add_edge: invalid node id");
  }
  out_[src].push_back(dst);
  in_[dst].push_back(src);
  ++edge_count_;
}

std::vector<NetGraph::NodeId> NetGraph::nodes_of_type(NodeType type) const {
  std::vector<NodeId> result;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].type == type) result.push_back(id);
  }
  return result;
}

std::size_t NetGraph::component_count() const {
  if (nodes_.empty()) return 0;
  std::vector<bool> seen(nodes_.size(), false);
  std::size_t components = 0;
  for (NodeId start = 0; start < nodes_.size(); ++start) {
    if (seen[start]) continue;
    ++components;
    std::queue<NodeId> frontier;
    frontier.push(start);
    seen[start] = true;
    while (!frontier.empty()) {
      const NodeId id = frontier.front();
      frontier.pop();
      for (const NodeId next : out_[id]) {
        if (!seen[next]) {
          seen[next] = true;
          frontier.push(next);
        }
      }
      for (const NodeId next : in_[id]) {
        if (!seen[next]) {
          seen[next] = true;
          frontier.push(next);
        }
      }
    }
  }
  return components;
}

std::size_t NetGraph::depth_from_inputs() const {
  std::vector<std::size_t> dist(nodes_.size(), static_cast<std::size_t>(-1));
  std::queue<NodeId> frontier;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].type == NodeType::Input) {
      dist[id] = 0;
      frontier.push(id);
    }
  }
  std::size_t depth = 0;
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop();
    depth = std::max(depth, dist[id]);
    for (const NodeId next : out_[id]) {
      if (dist[next] == static_cast<std::size_t>(-1)) {
        dist[next] = dist[id] + 1;
        frontier.push(next);
      }
    }
  }
  return depth;
}

std::vector<double> NetGraph::type_histogram() const {
  std::vector<double> histogram(kNodeTypeCount, 0.0);
  if (nodes_.empty()) return histogram;
  for (const Node& n : nodes_) {
    histogram[static_cast<std::size_t>(n.type)] += 1.0;
  }
  for (double& bin : histogram) bin /= static_cast<double>(nodes_.size());
  return histogram;
}

std::vector<double> NetGraph::spectral_sketch(std::size_t count,
                                              std::size_t iterations) const {
  std::vector<double> eigenvalues;
  const std::size_t n = nodes_.size();
  if (n == 0 || count == 0) return std::vector<double>(count, 0.0);

  // Power iteration with deflation on the symmetrized adjacency A + A^T.
  // Deterministic start vectors (index-based) keep results reproducible.
  std::vector<std::vector<double>> found;
  for (std::size_t k = 0; k < count; ++k) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = 1.0 + 0.1 * static_cast<double>((i + k + 1) % 7);
    }
    double eigenvalue = 0.0;
    for (std::size_t iter = 0; iter < iterations; ++iter) {
      // Orthogonalize against previously found eigenvectors (deflation).
      for (const auto& u : found) {
        double dot = 0.0;
        for (std::size_t i = 0; i < n; ++i) dot += v[i] * u[i];
        for (std::size_t i = 0; i < n; ++i) v[i] -= dot * u[i];
      }
      std::vector<double> w(n, 0.0);
      for (NodeId src = 0; src < n; ++src) {
        for (const NodeId dst : out_[src]) {
          w[dst] += v[src];
          w[src] += v[dst];  // symmetrize
        }
      }
      double norm = 0.0;
      for (const double x : w) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-12) {
        eigenvalue = 0.0;
        v.assign(n, 0.0);
        break;
      }
      eigenvalue = norm;
      for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / norm;
    }
    eigenvalues.push_back(eigenvalue);
    found.push_back(v);
  }
  return eigenvalues;
}

}  // namespace noodle::graph
