#include "graph/netgraph.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "verilog/symbols.h"

namespace noodle::graph {

const char* to_string(NodeType type) noexcept {
  switch (type) {
    case NodeType::Input: return "input";
    case NodeType::Output: return "output";
    case NodeType::Wire: return "wire";
    case NodeType::Reg: return "reg";
    case NodeType::Const: return "const";
    case NodeType::Op: return "op";
    case NodeType::Mux: return "mux";
    case NodeType::Concat: return "concat";
    case NodeType::Select: return "select";
    case NodeType::Instance: return "instance";
  }
  return "unknown";
}

AnalysisScratch& thread_analysis_scratch() noexcept {
  thread_local AnalysisScratch scratch;
  return scratch;
}

NetGraph::NetGraph() : symbols_(std::make_shared<util::SymbolTable>()) {
  verilog::preintern_verilog_symbols(*symbols_);
}

NetGraph::NetGraph(std::shared_ptr<util::SymbolTable> symbols)
    : symbols_(std::move(symbols)) {
  if (!symbols_) throw std::invalid_argument("NetGraph: null symbol table");
  if (symbols_->size() < verilog::kPreinternedSymbolCount) {
    throw std::invalid_argument("NetGraph: symbol table lacks the verilog vocabulary");
  }
}

void NetGraph::check_id(NodeId id) const {
  // out_/in_ may be longer than nodes_ (capacity kept across clear()), so
  // range-check against the live node count, not the vector sizes.
  if (id >= nodes_.size()) throw std::out_of_range("NetGraph: invalid node id");
}

NetGraph::NodeId NetGraph::add_node(NodeType type, util::Symbol label, int width) {
  nodes_.push_back(Node{type, label, width});
  if (out_.size() < nodes_.size()) {
    out_.emplace_back();
    in_.emplace_back();
  }
  return nodes_.size() - 1;
}

NetGraph::NodeId NetGraph::add_node(NodeType type, std::string_view label, int width) {
  return add_node(type, symbols_->intern(label), width);
}

void NetGraph::add_edge(NodeId src, NodeId dst) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::out_of_range("NetGraph::add_edge: invalid node id");
  }
  out_[src].push_back(dst);
  in_[dst].push_back(src);
  ++edge_count_;
}

void NetGraph::clear() noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out_[i].clear();  // keeps each adjacency list's capacity
    in_[i].clear();
  }
  nodes_.clear();
  edge_count_ = 0;
}

std::vector<NetGraph::NodeId> NetGraph::nodes_of_type(NodeType type) const {
  std::vector<NodeId> result;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].type == type) result.push_back(id);
  }
  return result;
}

std::size_t NetGraph::component_count() const {
  return component_count(thread_analysis_scratch());
}

std::size_t NetGraph::component_count(AnalysisScratch& scratch) const {
  if (nodes_.empty()) return 0;
  scratch.seen.assign(nodes_.size(), 0);
  std::size_t components = 0;
  for (NodeId start = 0; start < nodes_.size(); ++start) {
    if (scratch.seen[start]) continue;
    ++components;
    scratch.queue.clear();
    scratch.queue.push_back(start);
    scratch.seen[start] = 1;
    for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
      const NodeId id = scratch.queue[head];
      for (const NodeId next : out_[id]) {
        if (!scratch.seen[next]) {
          scratch.seen[next] = 1;
          scratch.queue.push_back(next);
        }
      }
      for (const NodeId next : in_[id]) {
        if (!scratch.seen[next]) {
          scratch.seen[next] = 1;
          scratch.queue.push_back(next);
        }
      }
    }
  }
  return components;
}

std::size_t NetGraph::depth_from_inputs() const {
  return depth_from_inputs(thread_analysis_scratch());
}

std::size_t NetGraph::depth_from_inputs(AnalysisScratch& scratch) const {
  scratch.dist.assign(nodes_.size(), static_cast<std::size_t>(-1));
  scratch.queue.clear();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].type == NodeType::Input) {
      scratch.dist[id] = 0;
      scratch.queue.push_back(id);
    }
  }
  std::size_t depth = 0;
  for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
    const NodeId id = scratch.queue[head];
    depth = std::max(depth, scratch.dist[id]);
    for (const NodeId next : out_[id]) {
      if (scratch.dist[next] == static_cast<std::size_t>(-1)) {
        scratch.dist[next] = scratch.dist[id] + 1;
        scratch.queue.push_back(next);
      }
    }
  }
  return depth;
}

std::vector<double> NetGraph::type_histogram() const {
  std::vector<double> histogram(kNodeTypeCount, 0.0);
  type_histogram(histogram);
  return histogram;
}

void NetGraph::type_histogram(std::span<double> out) const {
  if (out.size() != kNodeTypeCount) {
    throw std::invalid_argument("NetGraph::type_histogram: bad output size");
  }
  std::fill(out.begin(), out.end(), 0.0);
  if (nodes_.empty()) return;
  for (const Node& n : nodes_) {
    out[static_cast<std::size_t>(n.type)] += 1.0;
  }
  for (double& bin : out) bin /= static_cast<double>(nodes_.size());
}

std::vector<double> NetGraph::spectral_sketch(std::size_t count,
                                              std::size_t iterations) const {
  std::vector<double> eigenvalues(count, 0.0);
  spectral_sketch(eigenvalues, iterations, thread_analysis_scratch());
  return eigenvalues;
}

namespace {

/// Stationarity threshold for the blocked-iteration early exit: once every
/// column-norm eigenvalue estimate moves by at most this (relative) for
/// kSpectralConvergenceStreak consecutive passes, the subspace has stopped
/// turning and the remaining budget cannot change the Ritz values beyond
/// rounding. Well-separated spectra (stars, chains) exit within a handful
/// of passes; near-degenerate circuit spectra simply run the full budget.
/// Unlike single-vector power iteration, the blocked subspace absorbs the
/// ±λ pairs of near-bipartite netlists (both signs live in the subspace),
/// so the norms genuinely settle instead of oscillating forever.
constexpr double kSpectralConvergenceTol = 1e-13;
constexpr int kSpectralConvergenceStreak = 2;

/// Block width of the subspace iteration. One CSR pass drives all four
/// iterate columns, so the adjacency is walked once per pass instead of
/// once per eigenvector — and the fixed width lets every inner loop unroll
/// into four independent accumulator lanes.
constexpr std::size_t kSketchBlock = 4;

/// Deterministic decorrelated seed for iterate column c at node i (an
/// integer hash mapped into [0.5, 1.5)). The v1 sketch seeded every vector
/// from the same 7-periodic ramp, which made the start block nearly rank-1
/// and cost the subdominant eigenvalues most of their accuracy.
double sketch_seed(std::size_t i, std::size_t c) {
  std::uint64_t h = (static_cast<std::uint64_t>(i) * 2654435761ULL) ^
                    ((static_cast<std::uint64_t>(c) + 1) * 0x9e3779b97f4a7c15ULL);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return 0.5 + static_cast<double>(h & 0xffffff) / static_cast<double>(0x1000000);
}

/// Cyclic Jacobi eigensolver for the m x m symmetric Rayleigh-Ritz matrix
/// (m is the block width, so this is a few sweeps over a 4x4). noinline so
/// the target-cloned sketch bodies below share ONE compiled copy — if the
/// AVX2 clone inlined and re-vectorized it, the two clones could disagree
/// at ulp level and the cross-machine determinism claim would be gone.
[[gnu::noinline]] void jacobi_eigenvalues(double* s, std::size_t m, double* eig) {
  for (int sweep = 0; sweep < 50; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < m; ++p) {
      for (std::size_t q = p + 1; q < m; ++q) off += s[p * m + q] * s[p * m + q];
    }
    if (off < 1e-24) break;
    for (std::size_t p = 0; p < m; ++p) {
      for (std::size_t q = p + 1; q < m; ++q) {
        const double spq = s[p * m + q];
        if (std::abs(spq) < 1e-18) continue;
        const double tau = (s[q * m + q] - s[p * m + p]) / (2.0 * spq);
        const double t =
            (tau >= 0.0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = t * c;
        for (std::size_t i = 0; i < m; ++i) {
          const double sip = s[i * m + p];
          const double siq = s[i * m + q];
          s[i * m + p] = c * sip - sn * siq;
          s[i * m + q] = sn * sip + c * siq;
        }
        for (std::size_t i = 0; i < m; ++i) {
          const double spi = s[p * m + i];
          const double sqi = s[q * m + i];
          s[p * m + i] = c * spi - sn * sqi;
          s[q * m + i] = sn * spi + c * sqi;
        }
      }
    }
  }
  for (std::size_t i = 0; i < m; ++i) eig[i] = s[i * m + i];
}

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define NOODLE_SKETCH_X86 1
#else
#define NOODLE_SKETCH_X86 0
#endif

/// The entire fixed-width-4 blocked iteration, shared verbatim by the
/// baseline and AVX2 wrappers below. always_inline so each wrapper compiles
/// its own copy under its own ISA: the four accumulator lanes map one-to-one
/// onto block columns, so wider vectors never reassociate any per-column sum
/// (SLP packs the lanes, it does not split a reduction), and the AVX2 clone
/// is compiled WITHOUT fma, so contraction is impossible. Both wrappers are
/// therefore bit-identical — the same determinism argument as the nn GEMM
/// kernels (src/nn/kernels.cpp).
///
/// `small` is the caller's sketch_small scratch laid out as
/// norms[4] | prev[4] | gram[4x4] | chol[4x4].
[[gnu::always_inline]] inline void sketch_w4_body(
    const std::size_t* offsets, const std::uint32_t* adj, std::size_t n,
    std::size_t iterations, double* vp, double* wp, double* small,
    std::span<double> out) {
  constexpr std::size_t W = kSketchBlock;
  double* norms = small;
  double* prev = norms + W;
  double* gram = prev + W;
  double* chol = gram + W * W;
  std::fill(prev, prev + W, -1.0);

  int stationary_streak = 0;
  for (std::size_t pass = 0; pass < iterations; ++pass) {
    const bool orthonormalize = (pass % 4 == 3) || pass + 1 == iterations;
    if (!orthonormalize) {
      // Fused SpMV + column square-norms, then one row-major rescale pass.
      double n0 = 0.0, n1 = 0.0, n2 = 0.0, n3 = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        for (std::size_t idx = offsets[i]; idx < offsets[i + 1]; ++idx) {
          const double* vr = vp + adj[idx] * 4;
          a0 += vr[0];
          a1 += vr[1];
          a2 += vr[2];
          a3 += vr[3];
        }
        double* wr = wp + i * 4;
        wr[0] = a0;
        wr[1] = a1;
        wr[2] = a2;
        wr[3] = a3;
        n0 += a0 * a0;
        n1 += a1 * a1;
        n2 += a2 * a2;
        n3 += a3 * a3;
      }
      norms[0] = std::sqrt(n0);
      norms[1] = std::sqrt(n1);
      norms[2] = std::sqrt(n2);
      norms[3] = std::sqrt(n3);
      const double i0 = norms[0] < 1e-12 ? 0.0 : 1.0 / norms[0];
      const double i1 = norms[1] < 1e-12 ? 0.0 : 1.0 / norms[1];
      const double i2 = norms[2] < 1e-12 ? 0.0 : 1.0 / norms[2];
      const double i3 = norms[3] < 1e-12 ? 0.0 : 1.0 / norms[3];
      for (std::size_t i = 0; i < n; ++i) {
        double* wr = wp + i * 4;
        wr[0] *= i0;
        wr[1] *= i1;
        wr[2] *= i2;
        wr[3] *= i3;
      }
    } else {
      // Fused SpMV + full 4x4 Gram, then Cholesky-QR (see the runtime-width
      // path in spectral_sketch for the commented reference version).
      std::array<double, 10> g{};
      for (std::size_t i = 0; i < n; ++i) {
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        for (std::size_t idx = offsets[i]; idx < offsets[i + 1]; ++idx) {
          const double* vr = vp + adj[idx] * 4;
          a0 += vr[0];
          a1 += vr[1];
          a2 += vr[2];
          a3 += vr[3];
        }
        double* wr = wp + i * 4;
        wr[0] = a0;
        wr[1] = a1;
        wr[2] = a2;
        wr[3] = a3;
        g[0] += a0 * a0;
        g[1] += a0 * a1;
        g[2] += a0 * a2;
        g[3] += a0 * a3;
        g[4] += a1 * a1;
        g[5] += a1 * a2;
        g[6] += a1 * a3;
        g[7] += a2 * a2;
        g[8] += a2 * a3;
        g[9] += a3 * a3;
      }
      gram[0] = g[0];
      gram[1] = g[1];
      gram[2] = g[2];
      gram[3] = g[3];
      gram[5] = g[4];
      gram[6] = g[5];
      gram[7] = g[6];
      gram[10] = g[7];
      gram[11] = g[8];
      gram[15] = g[9];
      norms[0] = std::sqrt(gram[0]);
      norms[1] = std::sqrt(gram[5]);
      norms[2] = std::sqrt(gram[10]);
      norms[3] = std::sqrt(gram[15]);
      std::fill(chol, chol + W * W, 0.0);
      for (std::size_t c = 0; c < W; ++c) {
        double d = gram[c * W + c];
        for (std::size_t p = 0; p < c; ++p) d -= chol[c * W + p] * chol[c * W + p];
        if (!(d > 1e-24)) {
          chol[c * W + c] = 0.0;  // sentinel: dead column
          continue;
        }
        chol[c * W + c] = std::sqrt(d);
        for (std::size_t r = c + 1; r < W; ++r) {
          double s = gram[c * W + r];
          for (std::size_t p = 0; p < c; ++p) s -= chol[r * W + p] * chol[c * W + p];
          chol[r * W + c] = s / chol[c * W + c];
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        double* wr = wp + i * 4;
        for (std::size_t c = 0; c < W; ++c) {
          if (chol[c * W + c] == 0.0) {
            wr[c] = 0.0;
            continue;
          }
          double q = wr[c];
          for (std::size_t p = 0; p < c; ++p) q -= chol[c * W + p] * wr[p];
          wr[c] = q / chol[c * W + c];
        }
      }
    }
    std::swap(vp, wp);
    bool stationary = true;
    for (std::size_t c = 0; c < W; ++c) {
      if (std::abs(norms[c] - prev[c]) >
          kSpectralConvergenceTol * std::max(norms[c], 1.0)) {
        stationary = false;
        break;
      }
    }
    if (stationary) {
      if (++stationary_streak >= kSpectralConvergenceStreak) break;
    } else {
      stationary_streak = 0;
    }
    std::copy(norms, norms + W, prev);
  }

  // Rayleigh-Ritz: one more fused CSR pass computes S = Vᵀ(A·V) directly.
  std::array<double, 10> s{};
  for (std::size_t i = 0; i < n; ++i) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t idx = offsets[i]; idx < offsets[i + 1]; ++idx) {
      const double* vr = vp + adj[idx] * 4;
      a0 += vr[0];
      a1 += vr[1];
      a2 += vr[2];
      a3 += vr[3];
    }
    const double* vr = vp + i * 4;
    s[0] += vr[0] * a0;
    s[1] += vr[0] * a1;
    s[2] += vr[0] * a2;
    s[3] += vr[0] * a3;
    s[4] += vr[1] * a1;
    s[5] += vr[1] * a2;
    s[6] += vr[1] * a3;
    s[7] += vr[2] * a2;
    s[8] += vr[2] * a3;
    s[9] += vr[3] * a3;
  }
  gram[0] = s[0];
  gram[1] = gram[4] = s[1];
  gram[2] = gram[8] = s[2];
  gram[3] = gram[12] = s[3];
  gram[5] = s[4];
  gram[6] = gram[9] = s[5];
  gram[7] = gram[13] = s[6];
  gram[10] = s[7];
  gram[11] = gram[14] = s[8];
  gram[15] = s[9];
  jacobi_eigenvalues(gram, W, chol);  // chol doubles as eigenvalue storage
  for (std::size_t c = 0; c < W; ++c) chol[c] = std::abs(chol[c]);
  std::sort(chol, chol + W, std::greater<>());
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = chol[k];
}

void sketch_w4_baseline(const std::size_t* offsets, const std::uint32_t* adj,
                        std::size_t n, std::size_t iterations, double* vp,
                        double* wp, double* small, std::span<double> out) {
  sketch_w4_body(offsets, adj, n, iterations, vp, wp, small, out);
}

#if NOODLE_SKETCH_X86
// target("avx2") only — deliberately no fma, same as the AVX2 GEMM kernel.
__attribute__((target("avx2"))) void sketch_w4_avx2(
    const std::size_t* offsets, const std::uint32_t* adj, std::size_t n,
    std::size_t iterations, double* vp, double* wp, double* small,
    std::span<double> out) {
  sketch_w4_body(offsets, adj, n, iterations, vp, wp, small, out);
}
#endif

/// Runtime dispatch for the width-4 sketch: one cpuid probe, cached.
void sketch_w4(const std::size_t* offsets, const std::uint32_t* adj, std::size_t n,
               std::size_t iterations, double* vp, double* wp, double* small,
               std::span<double> out) {
#if NOODLE_SKETCH_X86
  static const bool have_avx2 = __builtin_cpu_supports("avx2") != 0;
  if (have_avx2) {
    sketch_w4_avx2(offsets, adj, n, iterations, vp, wp, small, out);
    return;
  }
#endif
  sketch_w4_baseline(offsets, adj, n, iterations, vp, wp, small, out);
}

}  // namespace

void NetGraph::spectral_sketch(std::span<double> out, std::size_t iterations,
                               AnalysisScratch& scratch) const {
  const std::size_t n = nodes_.size();
  const std::size_t count = out.size();
  std::fill(out.begin(), out.end(), 0.0);
  if (n == 0 || count == 0) return;

  // Materialize the symmetrized adjacency A + Aᵀ as CSR once: row i is
  // successors(i) then predecessors(i), so parallel edges and self-loops
  // keep their multiplicity (a self-loop appears in both halves, weight 2,
  // exactly as the old edge-scatter double-counted it). Every SpMV below is
  // then one contiguous gather per row instead of two indirections through
  // the vector-of-vectors adjacency — and the per-iteration w.assign(n, 0)
  // wipe disappears because each w[i] is written exactly once.
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("NetGraph::spectral_sketch: node count exceeds u32 CSR");
  }
  scratch.csr_offsets.resize(n + 1);
  scratch.csr_adj.resize(2 * edge_count_);
  {
    std::size_t pos = 0;
    for (NodeId i = 0; i < n; ++i) {
      scratch.csr_offsets[i] = pos;
      for (const NodeId dst : out_[i]) {
        scratch.csr_adj[pos++] = static_cast<std::uint32_t>(dst);
      }
      for (const NodeId src : in_[i]) {
        scratch.csr_adj[pos++] = static_cast<std::uint32_t>(src);
      }
    }
    scratch.csr_offsets[n] = pos;
  }
  const std::size_t* offsets = scratch.csr_offsets.data();
  const std::uint32_t* adj = scratch.csr_adj.data();

  // Blocked subspace iteration over a fixed 4-wide block (v2 sketch). Every
  // pass is one fused CSR sweep: the gather drives all four columns through
  // row-major 4-lane accumulators, and the column square-norms (regular
  // pass) or the full 4x4 Gram matrix (orthonormalization pass, every 4th
  // and the last) fall out of the same loop. Orthonormalization is
  // Cholesky-QR — one Gram pass plus one row-wise forward-substitution pass
  // instead of the strided dot/axpy ladder of Gram-Schmidt. Eigenvalue
  // magnitudes come from a final Rayleigh-Ritz projection (4x4 Jacobi),
  // which extracts the optimal estimates the iterated subspace supports —
  // including both halves of the ±λ pairs that near-bipartite netlists
  // produce and that single-vector deflated power iteration never pins
  // down. At the default 24-pass budget the Ritz values track a dense
  // eigensolve ~30x tighter than the v1 deflated sketch at 50 passes while
  // walking the adjacency ~6x fewer times (asserted in tests/test_graph.cpp
  // against a dense Jacobi ground truth).
  //
  // Blocks wider than kSketchBlock (count > 4, unused by the feature
  // pipeline) reuse the same algorithm at runtime width.
  const std::size_t width = std::max(count, kSketchBlock);
  std::vector<double>& v_block = scratch.vec_a;
  std::vector<double>& w_block = scratch.vec_b;
  v_block.resize(n * width);
  w_block.resize(n * width);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < width; ++c) {
      v_block[i * width + c] = sketch_seed(i, c);
    }
  }
  double* vp = v_block.data();
  double* wp = w_block.data();

  scratch.sketch_small.resize(2 * width + 2 * width * width);
  if (width == kSketchBlock) {
    // The production shape (count <= 4): runtime-dispatched fixed-width
    // kernel, AVX2 when the machine has it, bit-identical either way.
    sketch_w4(offsets, adj, n, iterations, vp, wp, scratch.sketch_small.data(),
              out);
    return;
  }

  double* norms = scratch.sketch_small.data();
  double* prev = norms + width;
  double* gram = prev + width;            // upper-packed: [p * width + q], p <= q
  double* chol = gram + width * width;    // lower-triangular L
  std::fill(prev, prev + width, -1.0);

  // One fused CSR pass: gather A·V row by row; accumulate either the column
  // square-norms or the full Gram matrix of the result in the same loop.
  // This is the runtime-width reference of the fixed-width-4 kernel above.
  const auto spmv_pass = [&](bool want_gram) {
    std::fill(gram, gram + width * width, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double* wr = wp + i * width;
      std::fill(wr, wr + width, 0.0);
      for (std::size_t idx = offsets[i]; idx < offsets[i + 1]; ++idx) {
        const double* vr = vp + adj[idx] * width;
        for (std::size_t c = 0; c < width; ++c) wr[c] += vr[c];
      }
      if (want_gram) {
        for (std::size_t p = 0; p < width; ++p) {
          for (std::size_t q = p; q < width; ++q) {
            gram[p * width + q] += wr[p] * wr[q];
          }
        }
      } else {
        for (std::size_t c = 0; c < width; ++c) {
          gram[c * width + c] += wr[c] * wr[c];
        }
      }
    }
    for (std::size_t c = 0; c < width; ++c) {
      norms[c] = std::sqrt(gram[c * width + c]);
    }
  };

  int stationary_streak = 0;
  for (std::size_t pass = 0; pass < iterations; ++pass) {
    const bool orthonormalize = (pass % 4 == 3) || pass + 1 == iterations;
    spmv_pass(orthonormalize);
    if (!orthonormalize) {
      // Cheap pass: renormalize each column independently.
      for (std::size_t c = 0; c < width; ++c) {
        const double inv = norms[c] < 1e-12 ? 0.0 : 1.0 / norms[c];
        for (std::size_t i = 0; i < n; ++i) wp[i * width + c] *= inv;
      }
    } else {
      // Cholesky-QR: factor the Gram matrix and apply L⁻ᵀ row-wise. A
      // column whose pivot collapses is rank-deficient (the graph has
      // fewer independent spectral directions than the block is wide) and
      // is zeroed, mirroring the v1 norm < 1e-12 cutoff.
      std::fill(chol, chol + width * width, 0.0);
      for (std::size_t c = 0; c < width; ++c) {
        double d = gram[c * width + c];
        for (std::size_t p = 0; p < c; ++p) d -= chol[c * width + p] * chol[c * width + p];
        if (!(d > 1e-24)) {
          chol[c * width + c] = 0.0;  // sentinel: dead column
          continue;
        }
        chol[c * width + c] = std::sqrt(d);
        for (std::size_t r = c + 1; r < width; ++r) {
          double s = gram[c * width + r];
          for (std::size_t p = 0; p < c; ++p) s -= chol[r * width + p] * chol[c * width + p];
          chol[r * width + c] = s / chol[c * width + c];
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        double* wr = wp + i * width;
        for (std::size_t c = 0; c < width; ++c) {
          if (chol[c * width + c] == 0.0) {
            wr[c] = 0.0;
            continue;
          }
          double q = wr[c];
          for (std::size_t p = 0; p < c; ++p) q -= chol[c * width + p] * wr[p];
          wr[c] = q / chol[c * width + c];
        }
      }
    }
    std::swap(vp, wp);
    bool stationary = true;
    for (std::size_t c = 0; c < width; ++c) {
      if (std::abs(norms[c] - prev[c]) >
          kSpectralConvergenceTol * std::max(norms[c], 1.0)) {
        stationary = false;
        break;
      }
    }
    if (stationary) {
      if (++stationary_streak >= kSpectralConvergenceStreak) break;
    } else {
      stationary_streak = 0;
    }
    std::copy(norms, norms + width, prev);
  }

  // Rayleigh-Ritz: S = Vᵀ(A·V) over the final orthonormal block, then a
  // small Jacobi sweep; the Ritz magnitudes, sorted descending, are the
  // sketch. One more fused CSR pass computes A·V and the projection.
  std::fill(gram, gram + width * width, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double* wr = wp + i * width;
    std::fill(wr, wr + width, 0.0);
    for (std::size_t idx = offsets[i]; idx < offsets[i + 1]; ++idx) {
      const double* vr = vp + adj[idx] * width;
      for (std::size_t c = 0; c < width; ++c) wr[c] += vr[c];
    }
    const double* vr = vp + i * width;
    for (std::size_t p = 0; p < width; ++p) {
      for (std::size_t q = p; q < width; ++q) {
        gram[p * width + q] += vr[p] * wr[q];
      }
    }
  }
  for (std::size_t p = 0; p < width; ++p) {
    for (std::size_t q = p + 1; q < width; ++q) {
      gram[q * width + p] = gram[p * width + q];
    }
  }
  jacobi_eigenvalues(gram, width, chol);  // chol doubles as eigenvalue storage
  for (std::size_t c = 0; c < width; ++c) chol[c] = std::abs(chol[c]);
  std::sort(chol, chol + width, std::greater<>());
  for (std::size_t k = 0; k < count; ++k) out[k] = chol[k];
}

NetGraph::NodeId NetGraph::find_cycle_node(std::span<const std::uint8_t> excluded,
                                           std::uint32_t preferred_types) const {
  return find_cycle_node(excluded, preferred_types, thread_analysis_scratch());
}

NetGraph::NodeId NetGraph::find_cycle_node(std::span<const std::uint8_t> excluded,
                                           std::uint32_t preferred_types,
                                           AnalysisScratch& scratch) const {
  const std::size_t n = nodes_.size();
  auto skip = [&](NodeId id) { return id < excluded.size() && excluded[id] != 0; };

  // Iterative colored DFS: seen 0 = unvisited, 1 = on the current path,
  // 2 = finished. queue doubles as the explicit path stack and dist as the
  // per-node successor cursor, so a warm scratch allocates nothing.
  scratch.seen.assign(n, 0);
  scratch.dist.assign(n, 0);
  scratch.queue.clear();
  for (NodeId root = 0; root < n; ++root) {
    if (scratch.seen[root] != 0 || skip(root)) continue;
    scratch.queue.push_back(root);
    scratch.seen[root] = 1;
    while (!scratch.queue.empty()) {
      const NodeId v = scratch.queue.back();
      const std::vector<NodeId>& succ = out_[v];
      bool descended = false;
      while (scratch.dist[v] < succ.size()) {
        const NodeId w = succ[scratch.dist[v]++];
        if (skip(w)) continue;
        if (scratch.seen[w] == 1) {
          // Back edge: the cycle is the path-stack suffix starting at w.
          std::size_t start = scratch.queue.size() - 1;
          while (start > 0 && scratch.queue[start] != w) --start;
          for (std::size_t i = start; i < scratch.queue.size(); ++i) {
            const NodeId candidate = scratch.queue[i];
            if ((type_mask(nodes_[candidate].type) & preferred_types) != 0) {
              return candidate;
            }
          }
          return w;
        }
        if (scratch.seen[w] == 0) {
          scratch.seen[w] = 1;
          scratch.queue.push_back(w);
          descended = true;
          break;
        }
      }
      if (!descended) {
        scratch.seen[v] = 2;
        scratch.queue.pop_back();
      }
    }
  }
  return kNoNode;
}

}  // namespace noodle::graph
