#include "graph/netgraph.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "verilog/symbols.h"

namespace noodle::graph {

const char* to_string(NodeType type) noexcept {
  switch (type) {
    case NodeType::Input: return "input";
    case NodeType::Output: return "output";
    case NodeType::Wire: return "wire";
    case NodeType::Reg: return "reg";
    case NodeType::Const: return "const";
    case NodeType::Op: return "op";
    case NodeType::Mux: return "mux";
    case NodeType::Concat: return "concat";
    case NodeType::Select: return "select";
    case NodeType::Instance: return "instance";
  }
  return "unknown";
}

NetGraph::NetGraph() : symbols_(std::make_shared<util::SymbolTable>()) {
  verilog::preintern_verilog_symbols(*symbols_);
}

NetGraph::NetGraph(std::shared_ptr<util::SymbolTable> symbols)
    : symbols_(std::move(symbols)) {
  if (!symbols_) throw std::invalid_argument("NetGraph: null symbol table");
  if (symbols_->size() < verilog::kPreinternedSymbolCount) {
    throw std::invalid_argument("NetGraph: symbol table lacks the verilog vocabulary");
  }
}

void NetGraph::check_id(NodeId id) const {
  // out_/in_ may be longer than nodes_ (capacity kept across clear()), so
  // range-check against the live node count, not the vector sizes.
  if (id >= nodes_.size()) throw std::out_of_range("NetGraph: invalid node id");
}

NetGraph::NodeId NetGraph::add_node(NodeType type, util::Symbol label, int width) {
  nodes_.push_back(Node{type, label, width});
  if (out_.size() < nodes_.size()) {
    out_.emplace_back();
    in_.emplace_back();
  }
  return nodes_.size() - 1;
}

NetGraph::NodeId NetGraph::add_node(NodeType type, std::string_view label, int width) {
  return add_node(type, symbols_->intern(label), width);
}

void NetGraph::add_edge(NodeId src, NodeId dst) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::out_of_range("NetGraph::add_edge: invalid node id");
  }
  out_[src].push_back(dst);
  in_[dst].push_back(src);
  ++edge_count_;
}

void NetGraph::clear() noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out_[i].clear();  // keeps each adjacency list's capacity
    in_[i].clear();
  }
  nodes_.clear();
  edge_count_ = 0;
}

std::vector<NetGraph::NodeId> NetGraph::nodes_of_type(NodeType type) const {
  std::vector<NodeId> result;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].type == type) result.push_back(id);
  }
  return result;
}

std::size_t NetGraph::component_count() const {
  AnalysisScratch scratch;
  return component_count(scratch);
}

std::size_t NetGraph::component_count(AnalysisScratch& scratch) const {
  if (nodes_.empty()) return 0;
  scratch.seen.assign(nodes_.size(), 0);
  std::size_t components = 0;
  for (NodeId start = 0; start < nodes_.size(); ++start) {
    if (scratch.seen[start]) continue;
    ++components;
    scratch.queue.clear();
    scratch.queue.push_back(start);
    scratch.seen[start] = 1;
    for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
      const NodeId id = scratch.queue[head];
      for (const NodeId next : out_[id]) {
        if (!scratch.seen[next]) {
          scratch.seen[next] = 1;
          scratch.queue.push_back(next);
        }
      }
      for (const NodeId next : in_[id]) {
        if (!scratch.seen[next]) {
          scratch.seen[next] = 1;
          scratch.queue.push_back(next);
        }
      }
    }
  }
  return components;
}

std::size_t NetGraph::depth_from_inputs() const {
  AnalysisScratch scratch;
  return depth_from_inputs(scratch);
}

std::size_t NetGraph::depth_from_inputs(AnalysisScratch& scratch) const {
  scratch.dist.assign(nodes_.size(), static_cast<std::size_t>(-1));
  scratch.queue.clear();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].type == NodeType::Input) {
      scratch.dist[id] = 0;
      scratch.queue.push_back(id);
    }
  }
  std::size_t depth = 0;
  for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
    const NodeId id = scratch.queue[head];
    depth = std::max(depth, scratch.dist[id]);
    for (const NodeId next : out_[id]) {
      if (scratch.dist[next] == static_cast<std::size_t>(-1)) {
        scratch.dist[next] = scratch.dist[id] + 1;
        scratch.queue.push_back(next);
      }
    }
  }
  return depth;
}

std::vector<double> NetGraph::type_histogram() const {
  std::vector<double> histogram(kNodeTypeCount, 0.0);
  type_histogram(histogram);
  return histogram;
}

void NetGraph::type_histogram(std::span<double> out) const {
  if (out.size() != kNodeTypeCount) {
    throw std::invalid_argument("NetGraph::type_histogram: bad output size");
  }
  std::fill(out.begin(), out.end(), 0.0);
  if (nodes_.empty()) return;
  for (const Node& n : nodes_) {
    out[static_cast<std::size_t>(n.type)] += 1.0;
  }
  for (double& bin : out) bin /= static_cast<double>(nodes_.size());
}

std::vector<double> NetGraph::spectral_sketch(std::size_t count,
                                              std::size_t iterations) const {
  std::vector<double> eigenvalues(count, 0.0);
  AnalysisScratch scratch;
  spectral_sketch(eigenvalues, iterations, scratch);
  return eigenvalues;
}

void NetGraph::spectral_sketch(std::span<double> out, std::size_t iterations,
                               AnalysisScratch& scratch) const {
  const std::size_t n = nodes_.size();
  const std::size_t count = out.size();
  std::fill(out.begin(), out.end(), 0.0);
  if (n == 0 || count == 0) return;

  // Power iteration with deflation on the symmetrized adjacency A + A^T.
  // Deterministic start vectors (index-based) keep results reproducible.
  if (scratch.basis.size() < count) scratch.basis.resize(count);
  std::vector<double>& v = scratch.vec_a;
  std::vector<double>& w = scratch.vec_b;
  for (std::size_t k = 0; k < count; ++k) {
    v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = 1.0 + 0.1 * static_cast<double>((i + k + 1) % 7);
    }
    double eigenvalue = 0.0;
    for (std::size_t iter = 0; iter < iterations; ++iter) {
      // Orthogonalize against previously found eigenvectors (deflation).
      for (std::size_t f = 0; f < k; ++f) {
        const std::vector<double>& u = scratch.basis[f];
        double dot = 0.0;
        for (std::size_t i = 0; i < n; ++i) dot += v[i] * u[i];
        for (std::size_t i = 0; i < n; ++i) v[i] -= dot * u[i];
      }
      w.assign(n, 0.0);
      for (NodeId src = 0; src < n; ++src) {
        for (const NodeId dst : out_[src]) {
          w[dst] += v[src];
          w[src] += v[dst];  // symmetrize
        }
      }
      double norm = 0.0;
      for (const double x : w) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-12) {
        eigenvalue = 0.0;
        v.assign(n, 0.0);
        break;
      }
      eigenvalue = norm;
      for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / norm;
    }
    out[k] = eigenvalue;
    scratch.basis[k].assign(v.begin(), v.end());
  }
}

NetGraph::NodeId NetGraph::find_cycle_node(std::span<const std::uint8_t> excluded,
                                           std::uint32_t preferred_types) const {
  AnalysisScratch scratch;
  return find_cycle_node(excluded, preferred_types, scratch);
}

NetGraph::NodeId NetGraph::find_cycle_node(std::span<const std::uint8_t> excluded,
                                           std::uint32_t preferred_types,
                                           AnalysisScratch& scratch) const {
  const std::size_t n = nodes_.size();
  auto skip = [&](NodeId id) { return id < excluded.size() && excluded[id] != 0; };

  // Iterative colored DFS: seen 0 = unvisited, 1 = on the current path,
  // 2 = finished. queue doubles as the explicit path stack and dist as the
  // per-node successor cursor, so a warm scratch allocates nothing.
  scratch.seen.assign(n, 0);
  scratch.dist.assign(n, 0);
  scratch.queue.clear();
  for (NodeId root = 0; root < n; ++root) {
    if (scratch.seen[root] != 0 || skip(root)) continue;
    scratch.queue.push_back(root);
    scratch.seen[root] = 1;
    while (!scratch.queue.empty()) {
      const NodeId v = scratch.queue.back();
      const std::vector<NodeId>& succ = out_[v];
      bool descended = false;
      while (scratch.dist[v] < succ.size()) {
        const NodeId w = succ[scratch.dist[v]++];
        if (skip(w)) continue;
        if (scratch.seen[w] == 1) {
          // Back edge: the cycle is the path-stack suffix starting at w.
          std::size_t start = scratch.queue.size() - 1;
          while (start > 0 && scratch.queue[start] != w) --start;
          for (std::size_t i = start; i < scratch.queue.size(); ++i) {
            const NodeId candidate = scratch.queue[i];
            if ((type_mask(nodes_[candidate].type) & preferred_types) != 0) {
              return candidate;
            }
          }
          return w;
        }
        if (scratch.seen[w] == 0) {
          scratch.seen[w] = 1;
          scratch.queue.push_back(w);
          descended = true;
          break;
        }
      }
      if (!descended) {
        scratch.seen[v] = 2;
        scratch.queue.pop_back();
      }
    }
  }
  return kNoNode;
}

}  // namespace noodle::graph
