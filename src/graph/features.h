#pragma once
// Fixed-length embedding of a NetGraph — the vector handed to the graph-
// modality CNN. Deterministic, size kGraphFeatureDim, layout documented by
// graph_feature_names().
//
// The embedding mixes:
//  * node-type composition (what the circuit is made of),
//  * operator mix (comparators, XORs, muxes — Trojan triggers skew these),
//  * degree/fanout topology statistics,
//  * global structure (size, density, depth, components),
//  * a spectral sketch (top eigenvalues of the symmetrized adjacency),
//  * trigger-motif counts: wide equality-against-constant comparators and
//    muxes selected by low-fanout nets, the structural fingerprints of
//    time bombs and cheat codes.
//
// Operator classification dispatches on the node's interned label id (the
// fixed verilog vocabulary of symbols.h) — a table lookup, not a chain of
// string compares. The scratch-taking overload writes into a caller buffer
// and allocates nothing in steady state; the allocating overload delegates
// to it, so both produce bit-identical vectors.

#include <span>
#include <string>
#include <vector>

#include "graph/netgraph.h"

namespace noodle::graph {

inline constexpr std::size_t kGraphFeatureDim = 40;

/// Operator bucket of an interned operator label (0 equality, 1 relational,
/// 2 xor, 3 and, 4 or, 5 add/sub, 6 mul/div, 7 shift, 8 not, 9 other).
int op_bucket(util::Symbol op) noexcept;

/// Reusable scratch for the embedding (degree arrays + analysis scratch).
struct FeatureScratch {
  AnalysisScratch analysis;
  std::vector<double> in_degrees;
  std::vector<double> out_degrees;
  double spectrum[3] = {0.0, 0.0, 0.0};
};

/// Embeds a graph into R^kGraphFeatureDim.
std::vector<double> graph_features(const NetGraph& g);

/// In-place form: writes into `out` (size kGraphFeatureDim) using `scratch`.
void graph_features(const NetGraph& g, std::span<double> out, FeatureScratch& scratch);

/// Human-readable name of each embedding dimension (size kGraphFeatureDim).
const std::vector<std::string>& graph_feature_names();

}  // namespace noodle::graph
