#pragma once
// Fixed-length embedding of a NetGraph — the vector handed to the graph-
// modality CNN. Deterministic, size kGraphFeatureDim, layout documented by
// graph_feature_names().
//
// The embedding mixes:
//  * node-type composition (what the circuit is made of),
//  * operator mix (comparators, XORs, muxes — Trojan triggers skew these),
//  * degree/fanout topology statistics,
//  * global structure (size, density, depth, components),
//  * a spectral sketch (top eigenvalues of the symmetrized adjacency),
//  * trigger-motif counts: wide equality-against-constant comparators and
//    muxes selected by low-fanout nets, the structural fingerprints of
//    time bombs and cheat codes.

#include <string>
#include <vector>

#include "graph/netgraph.h"

namespace noodle::graph {

inline constexpr std::size_t kGraphFeatureDim = 40;

/// Embeds a graph into R^kGraphFeatureDim.
std::vector<double> graph_features(const NetGraph& g);

/// Human-readable name of each embedding dimension (size kGraphFeatureDim).
const std::vector<std::string>& graph_feature_names();

}  // namespace noodle::graph
