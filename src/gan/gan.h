#pragma once
// Vanilla GAN over tabular feature rows (MLP generator + discriminator,
// non-saturating generator loss). Used as the paper uses it: amplify the
// scarce class-conditional data to a target count, training one GAN per
// class so synthetic samples stay on-label (Sec. III).
//
// Feature rows are standardized internally; samples come back in the
// original feature space.

#include <vector>

#include "feat/normalize.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace noodle::gan {

struct GanConfig {
  std::size_t latent_dim = 16;
  std::size_t hidden = 48;
  std::size_t epochs = 240;
  std::size_t batch_size = 24;
  double generator_lr = 2e-3;
  double discriminator_lr = 1e-3;
  /// Std-dev of Gaussian noise added to samples in standardized feature
  /// space. Models the fidelity of a small GAN trained on tens of points:
  /// synthetic circuits are class-consistent but blurry, so the amplified
  /// dataset keeps the original task's irreducible overlap instead of
  /// collapsing onto two clean manifolds.
  double sample_noise = 0.45;  // applied with pooled spread in augment_with_gan
  std::uint64_t seed = 5;
};

struct GanTrainTrace {
  std::vector<double> discriminator_loss;
  std::vector<double> generator_loss;
};

class TabularGan {
 public:
  TabularGan(std::size_t feature_dim, const GanConfig& config);

  /// Trains on real rows (each of size feature_dim). Throws
  /// std::invalid_argument on empty/ragged input.
  GanTrainTrace fit(const std::vector<std::vector<double>>& rows);

  /// Draws n synthetic rows in the original feature space. Requires fit().
  std::vector<std::vector<double>> sample(std::size_t n);

  std::size_t feature_dim() const noexcept { return feature_dim_; }
  bool trained() const noexcept { return trained_; }

 private:
  nn::Matrix sample_latent(std::size_t n);

  std::size_t feature_dim_;
  GanConfig config_;
  util::Rng rng_;
  feat::Standardizer scaler_;
  nn::Sequential generator_;
  nn::Sequential discriminator_;
  bool trained_ = false;
};

}  // namespace noodle::gan
