#include "gan/gan.h"

#include <algorithm>
#include <stdexcept>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace noodle::gan {

TabularGan::TabularGan(std::size_t feature_dim, const GanConfig& config)
    : feature_dim_(feature_dim), config_(config), rng_(config.seed) {
  if (feature_dim == 0) throw std::invalid_argument("TabularGan: zero feature_dim");
  // Generator: latent -> hidden -> hidden -> features (linear output in
  // standardized space).
  generator_ = nn::make_mlp(config_.latent_dim,
                            {config_.hidden, config_.hidden}, feature_dim_, rng_);
  // Discriminator: features -> hidden -> 1 logit.
  discriminator_ = nn::make_mlp(feature_dim_, {config_.hidden}, 1, rng_);
}

nn::Matrix TabularGan::sample_latent(std::size_t n) {
  nn::Matrix z(n, config_.latent_dim);
  for (double& v : z.data()) v = rng_.normal();
  return z;
}

GanTrainTrace TabularGan::fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) throw std::invalid_argument("TabularGan::fit: no rows");
  for (const auto& row : rows) {
    if (row.size() != feature_dim_) {
      throw std::invalid_argument("TabularGan::fit: row dimension mismatch");
    }
  }
  scaler_.fit(rows);
  const nn::Matrix real_all = nn::Matrix::from_rows(scaler_.transform_all(rows));

  nn::Adam g_optimizer(config_.generator_lr, 0.5, 0.999);
  nn::Adam d_optimizer(config_.discriminator_lr, 0.5, 0.999);

  GanTrainTrace trace;
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const std::size_t batch = std::min(config_.batch_size, rows.size());
  const std::vector<int> ones(batch, 1);
  const std::vector<int> zeros(batch, 0);

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.shuffle(order);
    double d_loss_sum = 0.0, g_loss_sum = 0.0;
    std::size_t steps = 0;

    for (std::size_t start = 0; start + batch <= order.size() || start == 0;
         start += batch) {
      const std::size_t end = std::min(start + batch, order.size());
      if (end - start == 0) break;
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
      // Pad the last short batch by resampling (keeps label vectors fixed).
      while (idx.size() < batch) {
        idx.push_back(order[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(order.size()) - 1))]);
      }
      const nn::Matrix real = real_all.gather_rows(idx);

      // --- Discriminator step: real -> 1, fake -> 0.
      const nn::Matrix fake = generator_.forward(sample_latent(batch), /*train=*/true);
      discriminator_.zero_grad();
      nn::Matrix grad;
      const nn::Matrix d_real = discriminator_.forward(real, /*train=*/true);
      double d_loss = nn::bce_with_logits_loss(d_real, ones, grad);
      discriminator_.backward(grad);
      const nn::Matrix d_fake = discriminator_.forward(fake, /*train=*/true);
      d_loss += nn::bce_with_logits_loss(d_fake, zeros, grad);
      discriminator_.backward(grad);
      d_optimizer.step(discriminator_.params());

      // --- Generator step (non-saturating): make D call fakes real.
      generator_.zero_grad();
      discriminator_.zero_grad();  // D grads accumulate below but are discarded
      const nn::Matrix fake2 = generator_.forward(sample_latent(batch), /*train=*/true);
      const nn::Matrix d_fake2 = discriminator_.forward(fake2, /*train=*/true);
      const double g_loss = nn::bce_with_logits_loss(d_fake2, ones, grad);
      const nn::Matrix grad_into_g = discriminator_.backward(grad);
      generator_.backward(grad_into_g);
      g_optimizer.step(generator_.params());

      d_loss_sum += d_loss;
      g_loss_sum += g_loss;
      ++steps;
      if (end == order.size()) break;
    }
    trace.discriminator_loss.push_back(d_loss_sum / static_cast<double>(std::max<std::size_t>(1, steps)));
    trace.generator_loss.push_back(g_loss_sum / static_cast<double>(std::max<std::size_t>(1, steps)));
  }
  trained_ = true;
  return trace;
}

std::vector<std::vector<double>> TabularGan::sample(std::size_t n) {
  if (!trained_) throw std::logic_error("TabularGan::sample: fit() first");
  nn::Matrix out = generator_.forward(sample_latent(n), /*train=*/false);
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    rows.push_back(scaler_.inverse(out.row(r)));
  }
  return rows;
}

}  // namespace noodle::gan
