#pragma once
// GAN-based dataset amplification (Algorithm 2, step "perform GAN") and the
// cross-modal imputer for missing modalities.
//
// Amplification trains one GAN per class over the *joint* modality vector
// [graph || tabular] so a synthetic circuit's two views stay coherent, then
// splits samples back into modalities. The paper grows the dataset to 500
// points; the target is a parameter here.

#include "data/dataset.h"
#include "gan/gan.h"

namespace noodle::gan {

/// Grows `train` so each class has at least `target_per_class` samples by
/// appending GAN samples (trained per class on the joint modality vector).
/// Classes already at/above target are untouched. Samples flagged as
/// missing a modality are excluded from GAN training. Throws
/// std::invalid_argument if a class has fewer than 4 complete samples.
data::FeatureDataset augment_with_gan(const data::FeatureDataset& train,
                                      std::size_t target_per_class,
                                      const GanConfig& config);

/// MLP regressors graph->tabular and tabular->graph, trained on complete
/// samples, used to fill whichever modality is missing (the multimodal-
/// autoencoder alternative the paper mentions, realized with the same NN
/// substrate).
class CrossModalImputer {
 public:
  explicit CrossModalImputer(std::uint64_t seed = 11);

  /// Fits both direction regressors on samples with both modalities.
  void fit(const data::FeatureDataset& train);

  /// Fills every missing modality in place and clears the missing flags.
  void impute(data::FeatureDataset& dataset) const;

  bool fitted() const noexcept { return fitted_; }

 private:
  std::uint64_t seed_;
  feat::Standardizer graph_scaler_, tabular_scaler_;
  nn::Sequential graph_to_tabular_;
  nn::Sequential tabular_to_graph_;
  bool fitted_ = false;
};

}  // namespace noodle::gan
