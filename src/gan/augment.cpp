#include "gan/augment.h"

#include <stdexcept>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace noodle::gan {

data::FeatureDataset augment_with_gan(const data::FeatureDataset& train,
                                      std::size_t target_per_class,
                                      const GanConfig& config) {
  data::FeatureDataset out = train;
  if (train.samples.empty()) {
    throw std::invalid_argument("augment_with_gan: empty training set");
  }
  const std::size_t graph_dim = train.samples.front().graph.size();
  const std::size_t tabular_dim = train.samples.front().tabular.size();

  // Pooled per-dimension spread across *both* classes. Synthetic-sample
  // blur must be scaled by this, not by within-class spread: a feature
  // that is constant within each class but differs between classes would
  // otherwise be reproduced exactly and make synthetic points trivially
  // separable (unlike anything a real small-data GAN produces).
  std::vector<std::vector<double>> all_rows;
  for (const auto& sample : train.samples) {
    if (sample.graph_missing || sample.tabular_missing) continue;
    std::vector<double> joint = sample.graph;
    joint.insert(joint.end(), sample.tabular.begin(), sample.tabular.end());
    all_rows.push_back(std::move(joint));
  }
  feat::Standardizer pooled;
  pooled.fit(all_rows);
  util::Rng noise_rng(config.seed + 0x9e3779b9ULL);

  for (const int label : {data::kTrojanFree, data::kTrojanInfected}) {
    std::vector<std::vector<double>> joint_rows;
    std::size_t class_count = 0;
    for (const auto& sample : train.samples) {
      if (sample.label != label) continue;
      ++class_count;
      if (sample.graph_missing || sample.tabular_missing) continue;
      std::vector<double> joint = sample.graph;
      joint.insert(joint.end(), sample.tabular.begin(), sample.tabular.end());
      joint_rows.push_back(std::move(joint));
    }
    if (class_count >= target_per_class) continue;
    if (joint_rows.size() < 4) {
      throw std::invalid_argument(
          "augment_with_gan: class " + std::to_string(label) +
          " has fewer than 4 complete samples; cannot train a GAN");
    }

    GanConfig class_config = config;
    class_config.seed = config.seed + static_cast<std::uint64_t>(label) * 7919;
    TabularGan gan(graph_dim + tabular_dim, class_config);
    gan.fit(joint_rows);

    const std::size_t needed = target_per_class - class_count;
    for (auto& joint : gan.sample(needed)) {
      // Anchor blending: a vanilla GAN fitted on tens of rows mode-collapses
      // onto the class majority and would erase minority structure (e.g. the
      // benign Trojan-lookalike mode), leaving synthetic points artificially
      // easy to classify. Anchoring each draw at a real same-class row keeps
      // every real mode at its natural frequency while the generator output
      // contributes distributional smoothing between modes.
      const std::vector<double>& anchor = joint_rows[static_cast<std::size_t>(
          noise_rng.uniform_int(0, static_cast<std::int64_t>(joint_rows.size()) - 1))];
      const double beta = noise_rng.uniform(0.05, 0.35);
      const std::vector<double>& spread = pooled.stddevs();
      for (std::size_t d = 0; d < joint.size(); ++d) {
        joint[d] = anchor[d] + beta * (joint[d] - anchor[d]);
        if (config.sample_noise > 0.0) {
          joint[d] += noise_rng.normal(0.0, config.sample_noise * spread[d]);
        }
      }
      data::FeatureSample synthetic;
      synthetic.graph.assign(joint.begin(),
                             joint.begin() + static_cast<std::ptrdiff_t>(graph_dim));
      synthetic.tabular.assign(joint.begin() + static_cast<std::ptrdiff_t>(graph_dim),
                               joint.end());
      synthetic.label = label;
      out.samples.push_back(std::move(synthetic));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// CrossModalImputer
// ---------------------------------------------------------------------------

namespace {

/// Trains `model` to regress targets from inputs with Adam + MSE.
void train_regressor(nn::Sequential& model, const nn::Matrix& inputs,
                     const nn::Matrix& targets, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Adam optimizer(1e-3);
  std::vector<std::size_t> order(inputs.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  constexpr std::size_t kEpochs = 200;
  constexpr std::size_t kBatch = 16;
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += kBatch) {
      const std::size_t end = std::min(start + kBatch, order.size());
      const std::span<const std::size_t> batch(order.data() + start, end - start);
      const nn::Matrix x = inputs.gather_rows(batch);
      const nn::Matrix y = targets.gather_rows(batch);
      model.zero_grad();
      const nn::Matrix pred = model.forward(x, /*train=*/true);
      nn::Matrix grad;
      nn::mse_loss(pred, y, grad);
      model.backward(grad);
      optimizer.step(model.params());
    }
  }
}

}  // namespace

CrossModalImputer::CrossModalImputer(std::uint64_t seed) : seed_(seed) {}

void CrossModalImputer::fit(const data::FeatureDataset& train) {
  std::vector<std::vector<double>> graph_rows, tabular_rows;
  for (const auto& sample : train.samples) {
    if (sample.graph_missing || sample.tabular_missing) continue;
    graph_rows.push_back(sample.graph);
    tabular_rows.push_back(sample.tabular);
  }
  if (graph_rows.size() < 4) {
    throw std::invalid_argument(
        "CrossModalImputer::fit: need at least 4 complete samples");
  }
  graph_scaler_.fit(graph_rows);
  tabular_scaler_.fit(tabular_rows);

  const nn::Matrix g = nn::Matrix::from_rows(graph_scaler_.transform_all(graph_rows));
  const nn::Matrix t =
      nn::Matrix::from_rows(tabular_scaler_.transform_all(tabular_rows));

  util::Rng rng(seed_);
  graph_to_tabular_ = nn::make_mlp(g.cols(), {48}, t.cols(), rng);
  tabular_to_graph_ = nn::make_mlp(t.cols(), {48}, g.cols(), rng);
  train_regressor(graph_to_tabular_, g, t, seed_ + 1);
  train_regressor(tabular_to_graph_, t, g, seed_ + 2);
  fitted_ = true;
}

void CrossModalImputer::impute(data::FeatureDataset& dataset) const {
  if (!fitted_) throw std::logic_error("CrossModalImputer::impute: fit() first");
  for (auto& sample : dataset.samples) {
    if (sample.graph_missing && sample.tabular_missing) {
      throw std::invalid_argument(
          "CrossModalImputer::impute: sample missing both modalities");
    }
    if (sample.tabular_missing) {
      const std::vector<double> g = graph_scaler_.transform(sample.graph);
      nn::Matrix input(1, g.size());
      for (std::size_t i = 0; i < g.size(); ++i) input(0, i) = g[i];
      const nn::Matrix out = graph_to_tabular_.infer(input);
      sample.tabular = tabular_scaler_.inverse(out.row(0));
      sample.tabular_missing = false;
    } else if (sample.graph_missing) {
      const std::vector<double> t = tabular_scaler_.transform(sample.tabular);
      nn::Matrix input(1, t.size());
      for (std::size_t i = 0; i < t.size(); ++i) input(0, i) = t[i];
      const nn::Matrix out = tabular_to_graph_.infer(input);
      sample.graph = graph_scaler_.inverse(out.row(0));
      sample.graph_missing = false;
    }
  }
}

}  // namespace noodle::gan
