#include "sim/simulator.h"

#include <stdexcept>

#include "util/rng.h"

namespace noodle::sim {

using verilog::EdgeKind;
using verilog::Expr;
using verilog::ExprKind;
using verilog::Module;
using verilog::NetKind;
using verilog::PortDir;
using verilog::Stmt;
using verilog::StmtKind;

namespace {

int expr_result_width(const Expr& e, const std::map<std::string, int>& widths);

/// Width of a concat/replicate, needed for correct part placement.
int concat_width(const Expr& e, const std::map<std::string, int>& widths) {
  int total = 0;
  if (e.kind == ExprKind::Replicate) {
    const int count = static_cast<int>(e.operands[0]->value);
    return count * expr_result_width(*e.operands[1], widths);
  }
  for (const auto& part : e.operands) total += expr_result_width(*part, widths);
  return total;
}

int expr_result_width(const Expr& e, const std::map<std::string, int>& widths) {
  switch (e.kind) {
    case ExprKind::Number:
      return e.width > 0 ? e.width : 32;
    case ExprKind::Identifier: {
      const auto it = widths.find(e.name);
      return it != widths.end() ? it->second : 1;
    }
    case ExprKind::Index:
      return 1;
    case ExprKind::Range: {
      const auto msb = static_cast<int>(e.operands[1]->value);
      const auto lsb = static_cast<int>(e.operands[2]->value);
      return msb - lsb + 1;
    }
    case ExprKind::Concat:
    case ExprKind::Replicate:
      return concat_width(e, widths);
    case ExprKind::Unary:
      if (e.name == "!" || e.name == "&" || e.name == "|" || e.name == "^" ||
          e.name == "~&" || e.name == "~|" || e.name == "~^") {
        return 1;
      }
      return expr_result_width(*e.operands[0], widths);
    case ExprKind::Binary: {
      const std::string& op = e.name;
      if (op == "==" || op == "!=" || op == "===" || op == "!==" || op == "<" ||
          op == "<=" || op == ">" || op == ">=" || op == "&&" || op == "||") {
        return 1;
      }
      return std::max(expr_result_width(*e.operands[0], widths),
                      expr_result_width(*e.operands[1], widths));
    }
    case ExprKind::Ternary:
      return std::max(expr_result_width(*e.operands[1], widths),
                      expr_result_width(*e.operands[2], widths));
  }
  return 1;
}

std::uint64_t width_mask(int width) {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1ULL);
}

}  // namespace

Simulator::Simulator(const Module& m) : module_(m) {
  for (const auto& port : m.ports) {
    widths_[port.name] = port.range ? port.range->width() : 1;
    state_[port.name] = 0;
  }
  for (const auto& net : m.nets) {
    if (widths_.count(net.name)) continue;
    widths_[net.name] =
        net.range ? net.range->width() : (net.kind == NetKind::Integer ? 32 : 1);
    state_[net.name] = 0;
  }
  for (const auto& block : m.always_blocks) {
    if (block.is_sequential()) sequential_ = true;
  }
  settle();
}

int Simulator::width_of(const std::string& name) const {
  const auto it = widths_.find(name);
  return it != widths_.end() ? it->second : 1;
}

std::uint64_t Simulator::masked(std::uint64_t value, int width) const {
  return value & width_mask(width);
}

std::uint64_t Simulator::eval(const Expr& e) const {
  switch (e.kind) {
    case ExprKind::Number:
      return e.value;
    case ExprKind::Identifier: {
      const auto it = state_.find(e.name);
      if (it == state_.end()) {
        throw std::out_of_range("Simulator: unknown signal '" + e.name + "'");
      }
      return it->second;
    }
    case ExprKind::Unary: {
      const std::uint64_t v = eval(*e.operands[0]);
      const int w = expr_result_width(*e.operands[0], widths_);
      const std::uint64_t mask = width_mask(w);
      if (e.name == "!") return v == 0 ? 1 : 0;
      if (e.name == "~") return (~v) & mask;
      if (e.name == "-") return (~v + 1) & mask;
      if (e.name == "+") return v;
      if (e.name == "&") return (v & mask) == mask ? 1 : 0;
      if (e.name == "~&") return (v & mask) == mask ? 0 : 1;
      if (e.name == "|") return v != 0 ? 1 : 0;
      if (e.name == "~|") return v != 0 ? 0 : 1;
      if (e.name == "^" || e.name == "~^") {
        const int parity = __builtin_popcountll(v & mask) & 1;
        return e.name == "^" ? static_cast<std::uint64_t>(parity)
                             : static_cast<std::uint64_t>(parity ^ 1);
      }
      throw std::logic_error("Simulator: unary op " + e.name);
    }
    case ExprKind::Binary: {
      const std::uint64_t a = eval(*e.operands[0]);
      const std::uint64_t b = eval(*e.operands[1]);
      const int w = expr_result_width(e, widths_);
      const std::uint64_t mask = width_mask(w);
      const std::string& op = e.name;
      if (op == "+") return (a + b) & mask;
      if (op == "-") return (a - b) & mask;
      if (op == "*") return (a * b) & mask;
      if (op == "/") return b == 0 ? mask : (a / b) & mask;  // x -> all ones
      if (op == "%") return b == 0 ? mask : (a % b) & mask;
      if (op == "&") return (a & b) & mask;
      if (op == "|") return (a | b) & mask;
      if (op == "^") return (a ^ b) & mask;
      if (op == "~^" || op == "^~") return (~(a ^ b)) & mask;
      if (op == "<<" || op == "<<<") return b >= 64 ? 0 : (a << b) & mask;
      if (op == ">>" || op == ">>>") return b >= 64 ? 0 : (a >> b);
      if (op == "==" || op == "===") return a == b ? 1 : 0;
      if (op == "!=" || op == "!==") return a != b ? 1 : 0;
      if (op == "<") return a < b ? 1 : 0;
      if (op == "<=") return a <= b ? 1 : 0;
      if (op == ">") return a > b ? 1 : 0;
      if (op == ">=") return a >= b ? 1 : 0;
      if (op == "&&") return (a != 0 && b != 0) ? 1 : 0;
      if (op == "||") return (a != 0 || b != 0) ? 1 : 0;
      throw std::logic_error("Simulator: binary op " + op);
    }
    case ExprKind::Ternary:
      return eval(*e.operands[0]) != 0 ? eval(*e.operands[1]) : eval(*e.operands[2]);
    case ExprKind::Index: {
      const std::uint64_t base = eval(*e.operands[0]);
      const std::uint64_t bit = eval(*e.operands[1]);
      return bit >= 64 ? 0 : (base >> bit) & 1ULL;
    }
    case ExprKind::Range: {
      const std::uint64_t base = eval(*e.operands[0]);
      const auto msb = static_cast<int>(eval(*e.operands[1]));
      const auto lsb = static_cast<int>(eval(*e.operands[2]));
      const int w = msb - lsb + 1;
      return (base >> lsb) & width_mask(w);
    }
    case ExprKind::Concat: {
      std::uint64_t out = 0;
      for (const auto& part : e.operands) {
        const int w = expr_result_width(*part, widths_);
        out = (out << w) | (eval(*part) & width_mask(w));
      }
      return out;
    }
    case ExprKind::Replicate: {
      const auto count = static_cast<int>(eval(*e.operands[0]));
      const int w = expr_result_width(*e.operands[1], widths_);
      const std::uint64_t v = eval(*e.operands[1]) & width_mask(w);
      std::uint64_t out = 0;
      for (int i = 0; i < count && i * w < 64; ++i) out = (out << w) | v;
      return out;
    }
  }
  throw std::logic_error("Simulator: unreachable expression kind");
}

void Simulator::assign_lvalue(const Expr& lhs, std::uint64_t value) {
  assign_lvalue_into(lhs, value, state_);
}

void Simulator::assign_lvalue_into(const Expr& lhs, std::uint64_t value,
                                   std::map<std::string, std::uint64_t>& target) {
  switch (lhs.kind) {
    case ExprKind::Identifier: {
      target[lhs.name] = masked(value, width_of(lhs.name));
      return;
    }
    case ExprKind::Index: {
      const std::string& name = lhs.operands[0]->name;
      const std::uint64_t bit = eval(*lhs.operands[1]);
      if (bit >= 64) return;
      const std::uint64_t current =
          target.count(name) ? target[name] : state_.at(name);
      const std::uint64_t cleared = current & ~(1ULL << bit);
      target[name] = masked(cleared | ((value & 1ULL) << bit), width_of(name));
      return;
    }
    case ExprKind::Range: {
      const std::string& name = lhs.operands[0]->name;
      const auto msb = static_cast<int>(eval(*lhs.operands[1]));
      const auto lsb = static_cast<int>(eval(*lhs.operands[2]));
      const std::uint64_t mask = width_mask(msb - lsb + 1) << lsb;
      const std::uint64_t current =
          target.count(name) ? target[name] : state_.at(name);
      target[name] =
          masked((current & ~mask) | ((value << lsb) & mask), width_of(name));
      return;
    }
    case ExprKind::Concat: {
      // Assign from the rightmost (least significant) part upward.
      int offset = 0;
      for (auto it = lhs.operands.rbegin(); it != lhs.operands.rend(); ++it) {
        const int w = expr_result_width(**it, widths_);
        assign_lvalue_into(**it, (value >> offset) & width_mask(w), target);
        offset += w;
      }
      return;
    }
    default:
      throw std::logic_error("Simulator: unsupported lvalue");
  }
}

void Simulator::exec_blocking(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Block:
      for (const auto& child : s.body) exec_blocking(*child);
      return;
    case StmtKind::If:
      if (eval(*s.cond) != 0) {
        exec_blocking(*s.then_branch);
      } else if (s.else_branch) {
        exec_blocking(*s.else_branch);
      }
      return;
    case StmtKind::Case: {
      const std::uint64_t subject = eval(*s.cond);
      const verilog::CaseItem* default_item = nullptr;
      for (const auto& item : s.case_items) {
        if (item.labels.empty()) {
          default_item = &item;
          continue;
        }
        for (const auto& label : item.labels) {
          if (eval(*label) == subject) {
            exec_blocking(*item.body);
            return;
          }
        }
      }
      if (default_item) exec_blocking(*default_item->body);
      return;
    }
    case StmtKind::For: {
      exec_blocking(*s.for_init);
      std::size_t guard = 0;
      while (eval(*s.cond) != 0 && guard++ < kMaxLoopIterations) {
        for (const auto& child : s.body) exec_blocking(*child);
        exec_blocking(*s.for_step);
      }
      return;
    }
    case StmtKind::BlockingAssign:
    case StmtKind::NonBlockingAssign:
      // Inside combinational blocks, NBAs behave as blocking for our
      // single-pass settle model.
      assign_lvalue(*s.lhs, eval(*s.rhs));
      return;
    case StmtKind::Null:
      return;
  }
}

void Simulator::exec_nonblocking(const Stmt& s,
                                 std::map<std::string, std::uint64_t>& pending) {
  switch (s.kind) {
    case StmtKind::Block:
      for (const auto& child : s.body) exec_nonblocking(*child, pending);
      return;
    case StmtKind::If:
      if (eval(*s.cond) != 0) {
        exec_nonblocking(*s.then_branch, pending);
      } else if (s.else_branch) {
        exec_nonblocking(*s.else_branch, pending);
      }
      return;
    case StmtKind::Case: {
      const std::uint64_t subject = eval(*s.cond);
      const verilog::CaseItem* default_item = nullptr;
      for (const auto& item : s.case_items) {
        if (item.labels.empty()) {
          default_item = &item;
          continue;
        }
        for (const auto& label : item.labels) {
          if (eval(*label) == subject) {
            exec_nonblocking(*item.body, pending);
            return;
          }
        }
      }
      if (default_item) exec_nonblocking(*default_item->body, pending);
      return;
    }
    case StmtKind::For: {
      // For loops in sequential blocks: execute with immediate init/step
      // (loop variables are integers) but nonblocking body assignments.
      exec_blocking(*s.for_init);
      std::size_t guard = 0;
      while (eval(*s.cond) != 0 && guard++ < kMaxLoopIterations) {
        for (const auto& child : s.body) exec_nonblocking(*child, pending);
        exec_blocking(*s.for_step);
      }
      return;
    }
    case StmtKind::BlockingAssign:
      assign_lvalue(*s.lhs, eval(*s.rhs));
      return;
    case StmtKind::NonBlockingAssign:
      assign_lvalue_into(*s.lhs, eval(*s.rhs), pending);
      return;
    case StmtKind::Null:
      return;
  }
}

void Simulator::set_input(const std::string& name, std::uint64_t value) {
  const verilog::PortDecl* port = module_.find_port(name);
  if (port == nullptr || port->dir != PortDir::Input) {
    throw std::invalid_argument("Simulator::set_input: '" + name +
                                "' is not an input port");
  }
  state_[name] = masked(value, width_of(name));
}

void Simulator::settle() {
  for (std::size_t iteration = 0; iteration < kMaxSettleIterations; ++iteration) {
    const auto before = state_;
    for (const auto& net : module_.nets) {
      if (net.init) assign_lvalue_into(*Expr::ident(net.name), eval(*net.init), state_);
    }
    for (const auto& assign : module_.assigns) {
      assign_lvalue(*assign.lhs, eval(*assign.rhs));
    }
    for (const auto& block : module_.always_blocks) {
      if (!block.is_sequential() && block.body) exec_blocking(*block.body);
    }
    if (state_ == before) return;
  }
  // Combinational oscillation (possible with pathological feedback): leave
  // the last state; detection features never depend on simulation, so this
  // is acceptable for a QA tool.
}

void Simulator::step(std::size_t cycles) {
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    settle();
    std::map<std::string, std::uint64_t> pending;
    for (const auto& block : module_.always_blocks) {
      if (block.is_sequential() && block.body) {
        exec_nonblocking(*block.body, pending);
      }
    }
    for (const auto& [name, value] : pending) {
      state_[name] = masked(value, width_of(name));
    }
    settle();
  }
}

std::uint64_t Simulator::get(const std::string& name) const {
  const auto it = state_.find(name);
  if (it == state_.end()) {
    throw std::out_of_range("Simulator::get: unknown signal '" + name + "'");
  }
  return it->second;
}

void Simulator::pulse_reset(const std::string& reset_name, std::size_t cycles) {
  set_input(reset_name, 1);
  step(cycles);
  set_input(reset_name, 0);
  settle();
}

std::size_t count_output_divergences(const Module& a, const Module& b,
                                     std::uint64_t seed, std::size_t cycles) {
  Simulator sim_a(a), sim_b(b);
  util::Rng rng(seed);

  // Shared outputs by name.
  std::vector<std::string> outputs;
  for (const auto& port : a.ports) {
    if (port.dir == PortDir::Output && b.find_port(port.name) != nullptr) {
      outputs.push_back(port.name);
    }
  }
  // Shared data inputs driven identically; clock/reset are handled by the
  // step() protocol, not random stimulus.
  const auto is_clock_or_reset = [](const std::string& name) {
    return name == "clk" || name == "clock" || name == "rst" || name == "reset" ||
           name == "rst_n" || name == "resetn";
  };
  std::vector<const verilog::PortDecl*> inputs;
  for (const auto& port : a.ports) {
    if (port.dir == PortDir::Input && b.find_port(port.name) != nullptr &&
        !is_clock_or_reset(port.name)) {
      inputs.push_back(&port);
    }
  }
  for (const auto& port : a.ports) {
    if (port.dir == PortDir::Input && (port.name == "rst" || port.name == "reset")) {
      sim_a.pulse_reset(port.name);
      sim_b.pulse_reset(port.name);
    }
  }

  std::size_t divergences = 0;
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    for (const auto* port : inputs) {
      const std::uint64_t value = rng();
      sim_a.set_input(port->name, value);
      sim_b.set_input(port->name, value);
    }
    if (sim_a.is_sequential()) {
      sim_a.step();
      sim_b.step();
    } else {
      sim_a.settle();
      sim_b.settle();
    }
    for (const auto& name : outputs) {
      if (sim_a.get(name) != sim_b.get(name)) {
        ++divergences;
        break;
      }
    }
  }
  return divergences;
}

}  // namespace noodle::sim
