#pragma once
// Two-state (0/1) cycle-accurate simulator for the supported Verilog
// subset. This is the functional-validation substrate for the Trojan
// engine: it executes both the clean and the infected variant of a design
// and shows that they behave identically until the trigger condition
// occurs, and differ exactly when it fires — the defining property of a
// hardware Trojan that feature-level tests cannot check.
//
// Semantics implemented:
//  * values are unsigned bit vectors up to 64 bits, masked to their width;
//  * continuous assigns and always @(*) blocks settle to a fixed point
//    after every input change and every clock edge;
//  * edge-triggered always blocks use nonblocking semantics: all RHS are
//    evaluated against pre-edge state, then committed together;
//  * blocking assignments inside a block update immediately (local order);
//  * for loops run at most kMaxLoopIterations to bound elaboration.

#include <cstdint>
#include <map>
#include <string>

#include "verilog/ast.h"

namespace noodle::sim {

class Simulator {
 public:
  /// Binds to a module (kept by reference — must outlive the simulator).
  /// All signals start at 0; call settle() or step() before reading.
  explicit Simulator(const verilog::Module& m);

  /// Sets an input port (value is masked to the port width). Throws
  /// std::invalid_argument for non-input names.
  void set_input(const std::string& name, std::uint64_t value);

  /// Propagates combinational logic to a fixed point.
  void settle();

  /// One clock cycle: fires every edge-triggered always block once
  /// (posedge semantics), then settles combinational logic. Inputs hold
  /// their last set value.
  void step(std::size_t cycles = 1);

  /// Current value of any signal (port or internal). Throws
  /// std::out_of_range for unknown names.
  std::uint64_t get(const std::string& name) const;

  /// True if the module has at least one edge-triggered always block.
  bool is_sequential() const noexcept { return sequential_; }

  /// Convenience: pulse an active-high reset input for `cycles` cycles
  /// (sets it to 1, steps, sets back to 0, settles).
  void pulse_reset(const std::string& reset_name, std::size_t cycles = 2);

  static constexpr std::size_t kMaxLoopIterations = 4096;
  static constexpr std::size_t kMaxSettleIterations = 64;

 private:
  std::uint64_t eval(const verilog::Expr& e) const;
  void exec_blocking(const verilog::Stmt& s);
  void exec_nonblocking(const verilog::Stmt& s,
                        std::map<std::string, std::uint64_t>& pending);
  void assign_lvalue(const verilog::Expr& lhs, std::uint64_t value);
  void assign_lvalue_into(const verilog::Expr& lhs, std::uint64_t value,
                          std::map<std::string, std::uint64_t>& target);
  int width_of(const std::string& name) const;
  std::uint64_t masked(std::uint64_t value, int width) const;

  const verilog::Module& module_;
  std::map<std::string, std::uint64_t> state_;
  std::map<std::string, int> widths_;
  bool sequential_ = false;
};

/// Functional-equivalence probe used by the Trojan validation tests and the
/// corpus QA example: drives both modules with the same `cycles` random
/// input cycles (seeded) and returns the number of cycles on which any
/// shared output differed.
std::size_t count_output_divergences(const verilog::Module& a,
                                     const verilog::Module& b,
                                     std::uint64_t seed, std::size_t cycles);

}  // namespace noodle::sim
